// Package pastas is a Go reproduction of the ICDE 2016 system "Visual
// exploration and cohort identification of acute patient histories
// aggregated from heterogeneous sources" (Sætre, Nytrø, Nordbø, Steinsbekk;
// NTNU) — the PAsTAs workbench.
//
// The package re-exports the library's public surface: loading registry
// bundles into an indexed workbench, cohort identification with
// regex-over-hierarchy queries, alignment, the interactive session (extract
// / filter / align / sort / zoom / details-on-demand, audited against the
// 0.1 s budget), and the SVG renderers for the paper's timeline and
// NSEPter graph views. See README.md for a tour and DESIGN.md for the
// architecture and experiment index.
package pastas

import (
	"io"
	"time"

	"pastas/internal/abstraction"
	"pastas/internal/align"
	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/perception"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/sources"
	"pastas/internal/stats"
	"pastas/internal/store"
	"pastas/internal/synth"
	"pastas/internal/temporal"
	"pastas/internal/webapp"
)

// --- data model ---------------------------------------------------------

type (
	// Time is minutes since 2000-01-01T00:00Z.
	Time = model.Time
	// Period is a half-open time range.
	Period = model.Period
	// PatientID is the pseudonymized linkage key.
	PatientID = model.PatientID
	// Patient is the demographic record.
	Patient = model.Patient
	// Entry is one point event or interval in a history.
	Entry = model.Entry
	// History is one patient's trajectory.
	History = model.History
	// Collection is an ordered set of histories.
	Collection = model.Collection
	// Code is a terminology reference (ICPC2 / ICD10 / ATC).
	Code = model.Code
)

// Re-exported model constants (entry kinds, sources, types).
const (
	Point    = model.Point
	Interval = model.Interval

	SourceGP         = model.SourceGP
	SourceHospital   = model.SourceHospital
	SourceMunicipal  = model.SourceMunicipal
	SourceSpecialist = model.SourceSpecialist
	SourcePhysio     = model.SourcePhysio

	TypeContact     = model.TypeContact
	TypeDiagnosis   = model.TypeDiagnosis
	TypeMeasurement = model.TypeMeasurement
	TypeMedication  = model.TypeMedication
	TypeStay        = model.TypeStay
	TypeService     = model.TypeService

	Day   = model.Day
	Month = model.Month
	Year  = model.Year
)

// Date builds a day-resolution Time from a calendar date (month 1-12).
func Date(year, month, day int) Time {
	return model.Date(year, time.Month(month), day)
}

// --- workbench ----------------------------------------------------------

type (
	// Workbench is a loaded, indexed data set.
	Workbench = core.Workbench
	// Session is one analyst's interactive state.
	Session = core.Session
	// Bundle is one extract from every registry.
	Bundle = sources.Bundle
	// SynthConfig parameterizes the synthetic registry generator.
	SynthConfig = synth.Config
	// Store is the indexed collection.
	Store = store.Store
	// Engine is the sharded query planner/executor.
	Engine = engine.Engine
	// EngineOptions tunes shard count, worker pool and plan cache.
	EngineOptions = engine.Options
)

// NewEngine builds a standalone planner/executor over a store (workbenches
// already carry one as Workbench.Engine).
func NewEngine(st *Store, opts EngineOptions) *Engine { return engine.New(st, opts) }

// DefaultEngineOptions sizes an engine to the machine.
func DefaultEngineOptions() EngineOptions { return engine.DefaultOptions() }

// Synthesize generates, integrates and indexes a synthetic population.
func Synthesize(cfg SynthConfig) (*Workbench, error) { return core.Synthesize(cfg) }

// DefaultSynthConfig returns the calibrated generator config for n patients.
func DefaultSynthConfig(n int) SynthConfig { return synth.DefaultConfig(n) }

// FromBundle integrates a registry bundle into a workbench.
func FromBundle(b *Bundle, window Period) (*Workbench, error) {
	return core.FromBundle(b, integrate.DefaultOptions(), window)
}

// NewSession opens an interactive session over a workbench. On a
// workbench connected to remote shard servers (ConnectShards) the session
// starts with an empty view and the first Extract pages the matching
// histories in from their shards.
func NewSession(wb *Workbench) (*Session, error) { return core.NewSession(wb) }

// --- snapshot persistence -------------------------------------------------

type (
	// SnapshotOptions tunes Workbench.Save (shard count of the written
	// snapshot).
	SnapshotOptions = core.SnapshotOptions
	// SnapshotInfo is the provenance of a saved or reopened snapshot:
	// format version, shard layout, sizes and checksums.
	SnapshotInfo = store.SnapshotInfo
)

// Open reopens a workbench from a saved snapshot (sharded v2 snapshots
// decode shard-parallel; legacy v1 single-gob snapshots are detected
// transparently).
func Open(r io.Reader, window Period) (*Workbench, error) { return core.Open(r, window) }

// InspectSnapshot reads a snapshot's provenance without materializing
// the collection (header-only for sharded snapshots).
func InspectSnapshot(r io.Reader) (*SnapshotInfo, error) { return store.Inspect(r) }

// --- distributed execution -------------------------------------------------

type (
	// ShardBackend evaluates plan fragments over one contiguous shard of
	// the population, local or remote.
	ShardBackend = engine.ShardBackend
	// ShardMeta describes one shard: id, global ordinal offset, sizes and
	// the transport serving it.
	ShardMeta = engine.ShardMeta
	// RemoteOptions tunes the shard wire protocol's client side (per-call
	// timeout, redial-retry budget).
	RemoteOptions = engine.RemoteOptions
	// ShardServer serves shards of a sharded snapshot over the wire
	// protocol.
	ShardServer = engine.ShardServer
	// OpenedShard is one lazily loaded shard of a sharded snapshot.
	OpenedShard = store.OpenedShard
	// ReplicaBackend fronts N same-shard backends with health-checked
	// failover and load-balanced reads.
	ReplicaBackend = engine.ReplicaBackend
	// ReplicaOptions tunes a replica set's health checking and failover.
	ReplicaOptions = engine.ReplicaOptions
	// Policy selects strict vs degraded failure semantics for a
	// coordinating engine.
	Policy = engine.Policy
	// QueryStatus reports which shards contributed to a degraded answer.
	QueryStatus = engine.QueryStatus
)

// Failure-semantics policies for coordinating engines: strict fails any
// operation that cannot reach every shard (the default); degraded
// answers over the reachable shards and names the missing ones.
const (
	PolicyStrict   = engine.PolicyStrict
	PolicyDegraded = engine.PolicyDegraded
)

// NewReplicaBackend fronts several backends serving the same shard with
// one that health-checks them, balances reads and fails over mid-query.
func NewReplicaBackend(replicas []ShardBackend, opts ReplicaOptions) (*ReplicaBackend, error) {
	return engine.NewReplicaBackend(replicas, opts)
}

// OpenShards pages the given shards (no ids = all) of a sharded v2
// snapshot into memory, reading only the header and those segments.
func OpenShards(path string, ids ...int) ([]*OpenedShard, *SnapshotInfo, error) {
	return store.OpenShards(path, ids...)
}

// NewShardServer opens the given shards of a sharded snapshot and builds
// a wire-protocol server over them (serve it with ShardServer.Serve).
func NewShardServer(snapshotPath string, ids []int, opts EngineOptions) (*ShardServer, error) {
	return engine.NewShardServer(snapshotPath, ids, opts)
}

// DialShards connects to a shard server and returns one backend per
// shard it serves, plus the total population of the snapshot it loads
// from (for topology-completeness checks).
func DialShards(addr string, opts RemoteOptions) ([]ShardBackend, int, error) {
	return engine.DialShards(addr, opts)
}

// NewEngineFromBackends builds a coordinating engine over an explicit
// backend set; the backends must tile the population contiguously.
func NewEngineFromBackends(backends []ShardBackend, opts EngineOptions) (*Engine, error) {
	return engine.NewFromBackends(backends, opts)
}

// ConnectShards builds a workbench over remote shard servers. Cohort
// queries, history fetches (Workbench.History/Histories, sessions,
// timeline renders) and indicator aggregation (Workbench.Indicators)
// all execute across the servers with bit-identical results to a local
// workbench over the same snapshot. An address element may be a replica
// group ("host-a:7070|host-b:7070") naming servers that serve the same
// shards; each shard then fails over between its replicas.
func ConnectShards(addrs []string, window Period) (*Workbench, error) {
	return core.Connect(addrs, engine.RemoteOptions{}, engine.DefaultOptions(), window)
}

// --- querying and cohorts -------------------------------------------------

type (
	// Query is a history-level cohort expression.
	Query = query.Expr
	// QuerySpec is the serializable Query-Builder tree (Fig. 4).
	QuerySpec = query.Spec
	// QueryBuilder accumulates criteria fluently.
	QueryBuilder = query.Builder
	// Cohort is a named patient set.
	Cohort = cohort.Cohort
	// Anchor selects the alignment point for aligned views.
	Anchor = align.Anchor
)

// NewQueryBuilder starts an empty conjunctive query.
func NewQueryBuilder() *QueryBuilder { return query.NewBuilder() }

// ParseQuerySpec decodes a JSON query tree.
func ParseQuerySpec(data []byte) (*QuerySpec, error) { return query.ParseSpec(data) }

// NewCohort evaluates a query into a cohort on the workbench's engine.
func NewCohort(wb *Workbench, name string, q Query) (*Cohort, error) {
	return cohort.FromEngine(wb.Engine, name, q)
}

// StudyCriteria returns the paper's predefined-characteristics selection
// (the 168k→13k query) for an observation window.
func StudyCriteria(window Period) Query { return cohort.StudyCriteria(window) }

// --- cohort workspace -------------------------------------------------------

type (
	// CohortInfo describes one materialized cohort in the workspace:
	// name, saved expression, generation and cardinality.
	CohortInfo = engine.CohortInfo
	// Refinement reports how a refined cohort was computed: exact /
	// narrow / widen / scratch, the seeding cohort, and whether the seed
	// mask was pushed down to remote shards.
	Refinement = engine.Refinement
	// CohortProfile is the mergeable dimension breakdown (sex, age
	// bands, entries by source and type) cohort comparison renders.
	CohortProfile = stats.CohortProfile
	// CohortComparison is two cohorts side by side: profiles plus
	// membership overlap.
	CohortComparison = core.CohortComparison
)

// SaveNamedCohort materializes a query and saves it in the workbench's
// cohort workspace at the current store generation (an append
// invalidates it). Later refinements of the query execute only their
// delta, masked by the saved bitset.
func SaveNamedCohort(wb *Workbench, name string, q Query) (CohortInfo, error) {
	return wb.SaveCohort(name, q)
}

// RefineCohort evaluates a query seeded by the workspace's materialized
// cohorts and saves the result under the given name.
func RefineCohort(wb *Workbench, name string, q Query) (CohortInfo, Refinement, error) {
	return wb.RefineCohort(name, q)
}

// CompareCohorts profiles two saved cohorts and reports their overlap.
func CompareCohorts(wb *Workbench, a, b string) (*CohortComparison, error) {
	return wb.CompareCohorts(a, b)
}

// --- cohort analytics -------------------------------------------------------
//
// Analytics are keyed by saved cohort name and execute through the
// engine's generic Analyze map-reduce: per-history map steps run on the
// shard holding each history (only the cohort mask and fixed-size
// integer partials cross the wire) and the coordinator finalizes the
// ratios once from the exactly-merged integers, so a connected workbench
// answers byte-for-byte what a local one would. Direct-collection forms
// (mining.CoOccurrence / mining.Sequential over extracted sequences,
// Session.DiagnosisSequences) remain available but are local-only
// conveniences: they require every history in coordinator memory and do
// not distribute.

type (
	// MineParams selects what the distributed rule miner counts per
	// history (co-occurrence vs sequential, coding system, chapter
	// granularity). Thresholds live in MiningOptions and apply once at
	// finalization, never in the map step.
	MineParams = engine.MineParams
	// MiningOptions bounds rule finalization (support/count floors).
	MiningOptions = mining.Options
	// MiningRule is one mined association rule with its exact counts.
	MiningRule = mining.Rule
	// EpisodeTally is the merged per-cohort episode summary.
	EpisodeTally = abstraction.EpisodeTally
	// Scenario is a temporal pattern over episode steps constrained by
	// Allen relations.
	Scenario = temporal.Scenario
	// StepRel constrains two scenario steps with an Allen relation set.
	StepRel = temporal.StepRel
	// ScenarioTally counts how many cohort histories bind and match a
	// scenario.
	ScenarioTally = temporal.ScenarioTally
	// CohortClusters groups a cohort's members by diagnosis-sequence
	// similarity (coordinator-side; clustering is cross-history).
	CohortClusters = core.CohortClusters
)

// ParseAllenRel parses comma-separated Allen relation names ("before" or
// "b,m") into a relation set for Scenario constraints.
func ParseAllenRel(s string) (temporal.Rel, error) { return temporal.ParseRel(s) }

// MineCohortRules mines association rules over a saved cohort,
// distributing the support counting to the shards holding the histories.
func MineCohortRules(wb *Workbench, cohort string, p MineParams, opt MiningOptions) ([]MiningRule, CohortInfo, QueryStatus, error) {
	return wb.MineRules(cohort, p, opt)
}

// CohortEpisodes tallies care episodes (contacts closer than gap fused)
// across a saved cohort without shipping any history to the coordinator.
func CohortEpisodes(wb *Workbench, cohort string, gap Time) (*EpisodeTally, CohortInfo, QueryStatus, error) {
	return wb.Episodes(cohort, gap)
}

// MatchCohortScenario matches an Allen-relation scenario against every
// history in a saved cohort, server-side per shard.
func MatchCohortScenario(wb *Workbench, cohort string, gap Time, sc Scenario) (*ScenarioTally, CohortInfo, QueryStatus, error) {
	return wb.MatchScenario(cohort, gap, sc)
}

// ClusterCohort clusters a saved cohort's members by diagnosis-sequence
// alignment distance (pages the histories in; quadratic in cohort size).
func ClusterCohort(wb *Workbench, cohort string, k int) (*CohortClusters, CohortInfo, error) {
	return wb.ClusterCohort(cohort, k)
}

// AlignFirst anchors histories on the first entry whose diagnosis code
// matches the anchored regular expression pattern.
func AlignFirst(pattern string) (Anchor, error) {
	c, err := query.NewCode("", pattern)
	if err != nil {
		return Anchor{}, err
	}
	return align.First(query.AllOf{query.TypeIs(model.TypeDiagnosis), c}), nil
}

// --- rendering ------------------------------------------------------------

type (
	// TimelineOptions configures the Fig. 1 view.
	TimelineOptions = render.TimelineOptions
	// GraphOptions configures the Fig. 2 view.
	GraphOptions = render.GraphOptions
)

// RenderTimeline draws a collection as the workbench timeline SVG.
func RenderTimeline(col *Collection, opt TimelineOptions) string {
	return render.Timeline(col, opt)
}

// Details returns details-on-demand lines for a history around a time.
func Details(h *History, at Time, radius Time) []string {
	return render.Details(h, at, radius)
}

// --- services ---------------------------------------------------------------

type (
	// WebConfig tunes the personal-timeline web service.
	WebConfig = webapp.Config
	// WebServer serves personal timelines and the cohort API.
	WebServer = webapp.Server
	// SurveyParams configures the recognition-survey model.
	SurveyParams = stats.SurveyParams
	// SurveyResult aggregates survey outcomes.
	SurveyResult = stats.SurveyResult
	// Indicators is the utilization summary registry reports compute
	// (rates per 100 patient-years).
	Indicators = stats.Indicators
	// IndicatorCounts is the mergeable integral tally behind Indicators;
	// shard backends return it so partial aggregates combine exactly.
	IndicatorCounts = stats.IndicatorCounts
)

// ComputeIndicators derives the utilization summary for a collection over
// a window. For cohorts on a workbench — local or connected to shard
// servers — prefer Workbench.Indicators, which aggregates where the
// histories live.
func ComputeIndicators(col *Collection, window Period) Indicators {
	return stats.ComputeIndicators(col, window)
}

// NewWebServer builds the HTTP service over a workbench.
func NewWebServer(wb *Workbench, cfg WebConfig) *WebServer { return webapp.NewServer(wb, cfg) }

// DefaultWebConfig mirrors the paper's demo deployment (sample password).
func DefaultWebConfig() WebConfig { return webapp.DefaultConfig() }

// SimulateSurvey runs the recognition-survey model over a collection.
func SimulateSurvey(col *Collection, p SurveyParams) SurveyResult {
	return stats.SimulateSurvey(col, p)
}

// DefaultSurveyParams returns the calibrated survey model.
func DefaultSurveyParams() SurveyParams { return stats.DefaultSurveyParams() }

// ShneidermanLimit is the 0.1 s interactive response budget.
const ShneidermanLimit = perception.ShneidermanLimit

// MedicationBands derives Fig. 1's medication interval concepts.
func MedicationBands(h *History) []abstraction.Band {
	return abstraction.MedicationBands(h, abstraction.ATCTherapeutic, 14*model.Day)
}
