// Package align implements alignment of histories on an index event and
// the display orderings of the timeline view. "In an aligned diagram, the
// axis shows the number of months before and after the alignment point" —
// alignment turns absolute calendar time into time relative to a chosen
// event (e.g. first stroke), which is how cohort-level patterns around an
// index event become visible.
package align

import (
	"fmt"

	"pastas/internal/model"
	"pastas/internal/query"
)

// Anchor selects the alignment point within a history: the Occurrence-th
// entry matching Pred (1-based; -1 means the last occurrence).
type Anchor struct {
	Pred       query.EventPred
	Occurrence int
}

// First anchors at the first entry matching pred.
func First(pred query.EventPred) Anchor { return Anchor{Pred: pred, Occurrence: 1} }

// Last anchors at the last entry matching pred.
func Last(pred query.EventPred) Anchor { return Anchor{Pred: pred, Occurrence: -1} }

// Nth anchors at the n-th (1-based) entry matching pred.
func Nth(pred query.EventPred, n int) Anchor { return Anchor{Pred: pred, Occurrence: n} }

// Time returns the anchor time within the history, ok=false if the history
// has no such event.
func (a Anchor) Time(h *model.History) (model.Time, bool) {
	match := func(e *model.Entry) bool { return a.Pred.Match(e) }
	var e *model.Entry
	switch {
	case a.Occurrence == -1:
		e = h.Last(match)
	case a.Occurrence <= 1:
		e = h.First(match)
	default:
		e = h.Nth(a.Occurrence, match)
	}
	if e == nil {
		return model.NoTime, false
	}
	return e.Start, true
}

func (a Anchor) String() string {
	switch {
	case a.Occurrence == -1:
		return fmt.Sprintf("last(%s)", a.Pred)
	case a.Occurrence <= 1:
		return fmt.Sprintf("first(%s)", a.Pred)
	default:
		return fmt.Sprintf("nth(%d, %s)", a.Occurrence, a.Pred)
	}
}

// Result is an aligned view over a collection: the sub-collection of
// histories that have the anchor, their per-patient offsets, and the ones
// left out.
type Result struct {
	Anchor  Anchor
	Col     *model.Collection
	Offsets map[model.PatientID]model.Time
	Missing []model.PatientID
}

// Align computes the aligned view of a collection.
func Align(col *model.Collection, anchor Anchor) *Result {
	r := &Result{
		Anchor:  anchor,
		Offsets: make(map[model.PatientID]model.Time),
	}
	kept := make([]*model.History, 0, col.Len())
	for _, h := range col.Histories() {
		t, ok := anchor.Time(h)
		if !ok {
			r.Missing = append(r.Missing, h.Patient.ID)
			continue
		}
		r.Offsets[h.Patient.ID] = t
		kept = append(kept, h)
	}
	r.Col = model.MustCollection(kept...)
	return r
}

// Rel converts an absolute time to time-relative-to-anchor for a patient.
func (r *Result) Rel(id model.PatientID, t model.Time) model.Time {
	return t - r.Offsets[id]
}

// RelMonths expresses an absolute time as months before/after the anchor,
// the unit of the aligned horizontal axis.
func (r *Result) RelMonths(id model.PatientID, t model.Time) float64 {
	return t.Months(r.Offsets[id])
}

// Span returns the covering period in relative time: [min rel start,
// max rel end) over all kept histories.
func (r *Result) Span() model.Period {
	var span model.Period
	first := true
	for _, h := range r.Col.Histories() {
		off := r.Offsets[h.Patient.ID]
		s := h.Span()
		rel := model.Period{Start: s.Start - off, End: s.End - off}
		if first {
			span = rel
			first = false
			continue
		}
		if rel.Start < span.Start {
			span.Start = rel.Start
		}
		if rel.End > span.End {
			span.End = rel.End
		}
	}
	return span
}

// --- display orderings ------------------------------------------------------

// Less is a display-order comparator over histories.
type Less func(a, b *model.History) bool

// ByID orders by patient ID (the default vertical axis).
func ByID() Less {
	return func(a, b *model.History) bool { return a.Patient.ID < b.Patient.ID }
}

// ByEntryCount orders densest history first.
func ByEntryCount() Less {
	return func(a, b *model.History) bool { return a.Len() > b.Len() }
}

// BySpanLength orders longest observation span first.
func BySpanLength() Less {
	return func(a, b *model.History) bool {
		return a.Span().Duration() > b.Span().Duration()
	}
}

// ByFirst orders by time of first entry.
func ByFirst() Less {
	return func(a, b *model.History) bool {
		as, bs := a.Span(), b.Span()
		return as.Start < bs.Start
	}
}

// ByAnchor orders by the (absolute) anchor time, so aligned views stack
// early index events on top.
func (r *Result) ByAnchor() Less {
	return func(a, b *model.History) bool {
		return r.Offsets[a.Patient.ID] < r.Offsets[b.Patient.ID]
	}
}

// Sort applies an ordering to the aligned collection.
func (r *Result) Sort(less Less) { r.Col.SortBy(less) }
