package align

import (
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
)

func day(n int) model.Time { return model.Date(2010, time.January, 1).AddDays(n) }

func histWith(id model.PatientID, days []int, codes []string) *model.History {
	h := model.NewHistory(model.Patient{ID: id, Birth: model.Date(1950, time.June, 1)})
	for i, d := range days {
		h.Add(model.Entry{
			ID: uint64(id)*100 + uint64(i), Kind: model.Point,
			Start: day(d), End: day(d),
			Source: model.SourceGP, Type: model.TypeDiagnosis,
			Code: model.Code{System: "ICPC2", Value: codes[i]},
		})
	}
	h.Sort()
	return h
}

func TestAnchorOccurrences(t *testing.T) {
	h := histWith(1, []int{0, 10, 20, 30}, []string{"A04", "T90", "K86", "T90"})
	t90 := query.MustCode("", "T90")

	if at, ok := First(t90).Time(h); !ok || at != day(10) {
		t.Errorf("First = %v %v", at, ok)
	}
	if at, ok := Last(t90).Time(h); !ok || at != day(30) {
		t.Errorf("Last = %v %v", at, ok)
	}
	if at, ok := Nth(t90, 2).Time(h); !ok || at != day(30) {
		t.Errorf("Nth(2) = %v %v", at, ok)
	}
	if _, ok := Nth(t90, 3).Time(h); ok {
		t.Error("Nth(3) should miss")
	}
	if _, ok := First(query.MustCode("", "Z99")).Time(h); ok {
		t.Error("missing code should miss")
	}
}

func TestAlignPartition(t *testing.T) {
	col := model.MustCollection(
		histWith(1, []int{0, 100}, []string{"A04", "T90"}),
		histWith(2, []int{50}, []string{"T90"}),
		histWith(3, []int{10}, []string{"K86"}), // no anchor
	)
	r := Align(col, First(query.MustCode("", "T90")))
	if r.Col.Len() != 2 {
		t.Fatalf("aligned = %d", r.Col.Len())
	}
	if len(r.Missing) != 1 || r.Missing[0] != 3 {
		t.Errorf("missing = %v", r.Missing)
	}
	if r.Offsets[1] != day(100) || r.Offsets[2] != day(50) {
		t.Errorf("offsets = %v", r.Offsets)
	}
}

func TestRelativeTime(t *testing.T) {
	col := model.MustCollection(
		histWith(1, []int{0, 100}, []string{"A04", "T90"}),
	)
	r := Align(col, First(query.MustCode("", "T90")))
	if got := r.Rel(1, day(100)); got != 0 {
		t.Errorf("anchor rel = %v", got)
	}
	if got := r.Rel(1, day(0)); got != -100*model.Day {
		t.Errorf("rel = %v", got)
	}
	if got := r.RelMonths(1, day(130)); got != 1 {
		t.Errorf("rel months = %v", got)
	}
}

func TestAlignedSpan(t *testing.T) {
	col := model.MustCollection(
		histWith(1, []int{0, 100}, []string{"A04", "T90"}), // rel span [-100d, 0]
		histWith(2, []int{50, 80}, []string{"T90", "K86"}), // rel span [0, 30d]
	)
	r := Align(col, First(query.MustCode("", "T90")))
	span := r.Span()
	if span.Start != -100*model.Day {
		t.Errorf("span start = %v", span.Start)
	}
	if span.End != 30*model.Day {
		t.Errorf("span end = %v", span.End)
	}
}

func TestOrderings(t *testing.T) {
	a := histWith(1, []int{10, 20, 30}, []string{"A04", "A04", "A04"}) // 3 entries, starts day 10
	b := histWith(2, []int{0, 90}, []string{"T90", "A04"})             // 2 entries, starts day 0, span 90
	col := model.MustCollection(a, b)

	col.SortBy(ByEntryCount())
	if col.At(0).Patient.ID != 1 {
		t.Error("ByEntryCount wrong")
	}
	col.SortBy(ByFirst())
	if col.At(0).Patient.ID != 2 {
		t.Error("ByFirst wrong")
	}
	col.SortBy(BySpanLength())
	if col.At(0).Patient.ID != 2 {
		t.Error("BySpanLength wrong")
	}
	col.SortBy(ByID())
	if col.At(0).Patient.ID != 1 {
		t.Error("ByID wrong")
	}
}

func TestSortByAnchor(t *testing.T) {
	col := model.MustCollection(
		histWith(1, []int{100}, []string{"T90"}),
		histWith(2, []int{50}, []string{"T90"}),
	)
	r := Align(col, First(query.MustCode("", "T90")))
	r.Sort(r.ByAnchor())
	if r.Col.At(0).Patient.ID != 2 {
		t.Error("ByAnchor ordering wrong")
	}
}

func TestAnchorStringer(t *testing.T) {
	p := query.MustCode("", "T90")
	if First(p).String() == "" || Last(p).String() == "" || Nth(p, 2).String() == "" {
		t.Error("stringers empty")
	}
}
