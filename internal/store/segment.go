package store

// The v2 per-shard segment codec. Each shard of a sharded snapshot is one
// independently decodable byte segment holding a contiguous run of
// histories, encoded with hand-rolled varints instead of gob: entry
// structure is fixed, so skipping gob's per-value reflection and type
// descriptors makes decode several times faster — which is what lets a
// reopened 168k workbench beat the legacy single-gob load even before the
// per-shard decode fan-out kicks in (and codes are dictionary-compressed
// on first occurrence, so the segment is smaller too).
//
// Wire form of a segment (all integers varint unless noted):
//
//	historyCount
//	per history:
//	  patientID  birth(signed)  sex(byte)  municipality(signed)
//	  entryCount
//	  per entry (chronological):
//	    flags(byte)  id  startΔ(signed, from previous start)  endΔ(signed, from start)
//	    source(byte)  type(byte)
//	    [code: dictionary ref; first occurrence inlines system+value]
//	    [value float64] [aux float64] [text string]  — present per flags
//
// Decoding is defensive end to end: every count and string length is
// validated against the bytes remaining before any allocation, so a
// crafted segment (the checksum only protects against corruption, not a
// hostile writer) errors instead of panicking or ballooning memory.

import (
	"encoding/binary"
	"fmt"
	"math"

	"pastas/internal/model"
)

// Entry flag bits.
const (
	segInterval = 1 << iota
	segHasCode
	segHasValue
	segHasAux
	segHasText
	segOpenEnd
)

// Minimum encoded sizes, used to bound count-driven preallocation by the
// bytes actually present.
const (
	minHistoryBytes = 5 // id + birth + sex + municipality + entryCount
	minEntryBytes   = 6 // flags + id + startΔ + endΔ + source + type
)

// segWriter accumulates one shard segment.
type segWriter struct {
	buf   []byte
	codes map[model.Code]uint64 // dictionary: code -> first-occurrence index
}

func (w *segWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *segWriter) svarint(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *segWriter) byte(b byte)      { w.buf = append(w.buf, b) }

func (w *segWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *segWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// code writes a dictionary reference; the first occurrence of a code
// inlines its strings so the decoder grows the same table in step.
func (w *segWriter) code(c model.Code) {
	if idx, ok := w.codes[c]; ok {
		w.uvarint(idx)
		return
	}
	idx := uint64(len(w.codes))
	w.codes[c] = idx
	w.uvarint(idx)
	w.str(c.System)
	w.str(c.Value)
}

// encodeSegment serializes a contiguous run of histories. Entries are
// written in chronological order via SortedEntries, which never reorders
// the shared live slice (save is read-only; see the store.Save fix).
func encodeSegment(hs []*model.History) []byte {
	w := &segWriter{
		buf:   make([]byte, 0, 64*len(hs)),
		codes: make(map[model.Code]uint64),
	}
	w.uvarint(uint64(len(hs)))
	for _, h := range hs {
		p := h.Patient
		w.uvarint(uint64(p.ID))
		w.svarint(int64(p.Birth))
		w.byte(byte(p.Sex))
		w.svarint(int64(p.Municipality))
		entries := h.SortedEntries()
		w.uvarint(uint64(len(entries)))
		prev := int64(0)
		for i := range entries {
			e := &entries[i]
			var flags byte
			if e.Kind == model.Interval {
				flags |= segInterval
			}
			if !e.Code.IsZero() {
				flags |= segHasCode
			}
			// Presence is decided at the bit level so -0.0 (whose bits are
			// non-zero but which compares equal to 0) round-trips exactly.
			if math.Float64bits(e.Value) != 0 {
				flags |= segHasValue
			}
			if math.Float64bits(e.Aux) != 0 {
				flags |= segHasAux
			}
			if e.Text != "" {
				flags |= segHasText
			}
			if e.OpenEnd {
				flags |= segOpenEnd
			}
			w.byte(flags)
			w.uvarint(e.ID)
			w.svarint(int64(e.Start) - prev)
			prev = int64(e.Start)
			w.svarint(int64(e.End) - int64(e.Start))
			w.byte(byte(e.Source))
			w.byte(byte(e.Type))
			if flags&segHasCode != 0 {
				w.code(e.Code)
			}
			if flags&segHasValue != 0 {
				w.f64(e.Value)
			}
			if flags&segHasAux != 0 {
				w.f64(e.Aux)
			}
			if flags&segHasText != 0 {
				w.str(e.Text)
			}
		}
	}
	return w.buf
}

// segReader walks a segment with sticky error state; every read is
// bounds-checked so corrupt input can never index past the buffer.
type segReader struct {
	buf []byte
	off int
	err error
}

func (r *segReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *segReader) rem() int { return len(r.buf) - r.off }

func (r *segReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *segReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.fail("string length %d exceeds %d remaining bytes", n, r.rem())
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *segReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.rem() < 8 {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// decodeSegment parses one shard segment back into histories. wantHist is
// the history count the snapshot header promised for this shard; a
// mismatch is a hard error so the header and payload can never disagree
// silently. Returns the histories and the total entry count.
func decodeSegment(buf []byte, wantHist int) ([]*model.History, int, error) {
	r := &segReader{buf: buf}
	nh := r.uvarint()
	if r.err != nil {
		return nil, 0, r.err
	}
	if nh != uint64(wantHist) {
		return nil, 0, fmt.Errorf("segment holds %d histories, header promised %d", nh, wantHist)
	}
	if nh > uint64(r.rem()/minHistoryBytes)+1 {
		return nil, 0, fmt.Errorf("history count %d exceeds segment size %d", nh, len(buf))
	}
	var codes []model.Code
	hs := make([]*model.History, 0, nh)
	totalEntries := 0
	for i := uint64(0); i < nh; i++ {
		p := model.Patient{
			ID:           model.PatientID(r.uvarint()),
			Birth:        model.Time(r.svarint()),
			Sex:          model.Sex(r.byte()),
			Municipality: int(r.svarint()),
		}
		ne := r.uvarint()
		if r.err != nil {
			return nil, 0, r.err
		}
		if ne > uint64(r.rem()/minEntryBytes)+1 {
			return nil, 0, fmt.Errorf("history %s: entry count %d exceeds %d remaining bytes", p.ID, ne, r.rem())
		}
		entries := make([]model.Entry, ne)
		prev := int64(0)
		for j := range entries {
			e := &entries[j]
			flags := r.byte()
			e.ID = r.uvarint()
			start := prev + r.svarint()
			prev = start
			e.Start = model.Time(start)
			e.End = model.Time(start + r.svarint())
			e.Source = model.Source(r.byte())
			e.Type = model.Type(r.byte())
			if flags&segInterval != 0 {
				e.Kind = model.Interval
			}
			if flags&segHasCode != 0 {
				idx := r.uvarint()
				switch {
				case r.err != nil:
				case idx < uint64(len(codes)):
					e.Code = codes[idx]
				case idx == uint64(len(codes)):
					e.Code = model.Code{System: r.str(), Value: r.str()}
					codes = append(codes, e.Code)
				default:
					r.fail("code index %d ahead of dictionary size %d", idx, len(codes))
				}
			}
			if flags&segHasValue != 0 {
				e.Value = r.f64()
			}
			if flags&segHasAux != 0 {
				e.Aux = r.f64()
			}
			if flags&segHasText != 0 {
				e.Text = r.str()
			}
			e.OpenEnd = flags&segOpenEnd != 0
			if r.err != nil {
				return nil, 0, r.err
			}
		}
		totalEntries += len(entries)
		hs = append(hs, model.RestoreHistory(p, entries))
	}
	if r.rem() != 0 {
		return nil, 0, fmt.Errorf("%d trailing bytes after last history", r.rem())
	}
	return hs, totalEntries, nil
}
