package store

import (
	"hash/crc32"
	"strings"
	"testing"

	"pastas/internal/model"
)

// crcOf stamps arbitrary test bytes with a valid checksum so the
// validation under test is the structural one, not the crc.
func crcOf(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

func codecFixture(n int) []*model.History {
	hs := make([]*model.History, 0, n)
	for i := 0; i < n; i++ {
		h := model.NewHistory(model.Patient{
			ID:           model.PatientID(i + 1),
			Birth:        model.Date(1950+i%40, 1, 1),
			Sex:          model.Sex(i % 3),
			Municipality: 1900 + i%30,
		})
		for j := 0; j < 1+i%5; j++ {
			h.Add(model.Entry{
				ID:     uint64(j + 1),
				Kind:   model.Kind(j % 2),
				Start:  model.Date(2010, 1, 1) + model.Time(j)*model.Week,
				End:    model.Date(2010, 1, 1) + model.Time(j)*model.Week + model.Day,
				Source: model.Source(j % 5),
				Type:   model.Type(j % 6),
				Code:   model.Code{System: "ICPC2", Value: "T90"},
				Value:  float64(j) * 1.5,
				Text:   strings.Repeat("x", j),
			})
		}
		h.Sort()
		hs = append(hs, h)
	}
	return hs
}

func TestHistoryCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 50} {
		hs := codecFixture(n)
		payload, sum := EncodeHistories(hs)
		got, err := DecodeHistories(payload, sum, n)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d histories", n, len(got))
		}
		for i := range hs {
			if hs[i].Patient != got[i].Patient {
				t.Fatalf("n=%d: patient %d: %+v vs %+v", n, i, hs[i].Patient, got[i].Patient)
			}
			a, b := hs[i].SortedEntries(), got[i].SortedEntries()
			if len(a) != len(b) {
				t.Fatalf("n=%d: history %d entry count %d vs %d", n, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("n=%d: history %d entry %d: %+v vs %+v", n, i, j, a[j], b[j])
				}
			}
		}
	}
}

func TestHistoryCodecRejectsHostilePayloads(t *testing.T) {
	hs := codecFixture(10)
	payload, sum := EncodeHistories(hs)

	t.Run("checksum mismatch", func(t *testing.T) {
		if _, err := DecodeHistories(payload, sum^1, 10); err == nil {
			t.Fatal("bad checksum accepted")
		}
	})
	t.Run("count lie", func(t *testing.T) {
		if _, err := DecodeHistories(payload, sum, 11); err == nil {
			t.Fatal("count mismatch accepted")
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for cut := 1; cut < len(payload); cut += 7 {
			trunc := payload[:cut]
			if _, err := DecodeHistories(trunc, crcOf(trunc), 10); err == nil {
				t.Fatalf("truncated payload (%d of %d bytes) accepted", cut, len(payload))
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		// A flip may decode to different-but-valid data; the property is
		// that decoding never panics on any single-bit corruption.
		for i := 0; i < len(payload); i += 3 {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0x80
			_, _ = DecodeHistories(mut, crcOf(mut), 10)
		}
	})
}

// FuzzDecodeHistories holds the decoder to errors-never-panics on
// arbitrary payloads (the checksum is recomputed so fuzzing exercises the
// structural validation, not crc collisions).
func FuzzDecodeHistories(f *testing.F) {
	hs := codecFixture(5)
	payload, _ := EncodeHistories(hs)
	f.Add(payload, 5)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, 1)
	f.Fuzz(func(t *testing.T, data []byte, want int) {
		if want < 0 || want > 1<<20 {
			return
		}
		got, err := DecodeHistories(data, crcOf(data), want)
		if err == nil && len(got) != want {
			t.Fatalf("decoded %d histories, promised %d, no error", len(got), want)
		}
	})
}
