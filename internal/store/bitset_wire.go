package store

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitset wire codec.
//
// The containerized format opens with a 0x00 tag byte, then the bit
// capacity as a uvarint, then one record per 65,536-bit container. Each
// container is written in whichever physical encoding is smallest for its
// contents — the wire form need not match the in-memory form:
//
//	0x00  empty   (no payload)
//	0x01  array   uvarint cardinality, then sorted uint16 positions (LE)
//	0x02  bitmap  1024 words = 8192 bytes (LE)
//	0x03  run     uvarint run count, then [lo, hi] uint16 pairs (LE)
//
// The legacy flat format (uvarint capacity + LE words) opened with the
// capacity varint, whose first byte is 0x00 only for the 1-byte empty
// encoding — so the tag byte is unambiguous and UnmarshalBinary accepts
// both: snapshots and RPC peers written before containerization still load.

// Wire container types.
const (
	wireEmpty  = 0x00
	wireArray  = 0x01
	wireBitmap = 0x02
	wireRun    = 0x03
)

const bitmapWireBytes = containerWords * 8

// ContainerStats describes the physical composition of a bitset (or, when
// aggregated with Add, of a whole index): how many containers of each
// kind it holds and how many bytes its wire encoding takes. Snapshot
// inspection reports these per shard so compression wins are observable.
type ContainerStats struct {
	Containers  int // total 65,536-bit chunks
	Empties     int
	Arrays      int
	Bitmaps     int
	Runs        int
	Cardinality int // total set bits
	WireBytes   int // size under MarshalBinary (smallest encoding per chunk)
}

// Add accumulates other into s.
func (s *ContainerStats) Add(other ContainerStats) {
	s.Containers += other.Containers
	s.Empties += other.Empties
	s.Arrays += other.Arrays
	s.Bitmaps += other.Bitmaps
	s.Runs += other.Runs
	s.Cardinality += other.Cardinality
	s.WireBytes += other.WireBytes
}

// ContainerStats reports the bitset's physical composition. The per-kind
// counts reflect the wire encoding MarshalBinary would choose — the
// number snapshot readers will observe — not the transient in-memory form.
func (b *Bitset) ContainerStats() ContainerStats {
	st := ContainerStats{
		Containers: len(b.cs),
		WireBytes:  1 + uvarintLen(uint64(b.n)),
	}
	for i := range b.cs {
		c := &b.cs[i]
		st.Cardinality += c.card
		if c.card == 0 {
			st.Empties++
			st.WireBytes++
			continue
		}
		arrBytes := 2 * c.card
		nr := c.numRuns()
		runBytes := 4 * nr
		switch {
		case runBytes < arrBytes && runBytes < bitmapWireBytes:
			st.Runs++
			st.WireBytes += 1 + uvarintLen(uint64(nr)) + runBytes
		case arrBytes <= bitmapWireBytes:
			st.Arrays++
			st.WireBytes += 1 + uvarintLen(uint64(c.card)) + arrBytes
		default:
			st.Bitmaps++
			st.WireBytes += 1 + bitmapWireBytes
		}
	}
	return st
}

// uvarintLen returns the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// MarshalBinary encodes the bitset for the shard wire protocol and the
// snapshot postings block, choosing the smallest container encoding.
func (b *Bitset) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 16+len(b.cs))
	out = append(out, wireEmpty) // format tag
	out = binary.AppendUvarint(out, uint64(b.n))
	var scratch []uint64
	for i := range b.cs {
		c := &b.cs[i]
		if c.card == 0 {
			out = append(out, wireEmpty)
			continue
		}
		arrBytes := 2 * c.card
		runBytes := 4 * c.numRuns()
		switch {
		case runBytes < arrBytes && runBytes < bitmapWireBytes:
			runs := c.toRuns()
			out = append(out, wireRun)
			out = binary.AppendUvarint(out, uint64(len(runs)))
			for _, r := range runs {
				out = binary.LittleEndian.AppendUint16(out, r.lo)
				out = binary.LittleEndian.AppendUint16(out, r.hi)
			}
		case arrBytes <= bitmapWireBytes:
			out = append(out, wireArray)
			out = binary.AppendUvarint(out, uint64(c.card))
			if c.typ == ctArray {
				for _, v := range c.arr {
					out = binary.LittleEndian.AppendUint16(out, v)
				}
			} else {
				c.iterate(0, func(v int) bool {
					out = binary.LittleEndian.AppendUint16(out, uint16(v))
					return true
				})
			}
		default:
			if scratch == nil {
				scratch = make([]uint64, containerWords)
			}
			out = append(out, wireBitmap)
			for _, w := range c.words(scratch) {
				out = binary.LittleEndian.AppendUint64(out, w)
			}
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a bitset written by MarshalBinary — current
// container format or the legacy flat-word format. Every length is
// validated against the bytes actually present, every container against
// its capacity span, so a truncated or hostile payload errors instead of
// allocating from a lie or leaking bits beyond the declared capacity.
func (b *Bitset) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("store: bitset: truncated capacity")
	}
	if data[0] == wireEmpty && len(data) > 1 {
		return b.unmarshalContainers(data[1:])
	}
	return b.unmarshalLegacy(data)
}

func (b *Bitset) unmarshalContainers(data []byte) error {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("store: bitset: truncated capacity")
	}
	data = data[k:]
	// Each container record is at least one byte, which bounds the
	// decodable capacity by the payload size: a 2^63-bit claim can
	// neither overflow nor allocate.
	if n > uint64(len(data))*containerBits {
		return fmt.Errorf("store: bitset: capacity %d exceeds %d payload bytes", n, len(data))
	}
	nc := int((n + containerBits - 1) / containerBits)
	cs := make([]container, 0, nc)
	for ci := 0; ci < nc; ci++ {
		span := int(n) - ci<<16
		if span > containerBits {
			span = containerBits
		}
		c, rest, err := decodeContainer(data, span)
		if err != nil {
			return err
		}
		cs = append(cs, c)
		data = rest
	}
	if len(data) != 0 {
		return fmt.Errorf("store: bitset: %d trailing bytes", len(data))
	}
	b.n = int(n)
	b.cs = cs
	return nil
}

// decodeContainer decodes one container record, enforcing that every set
// position is below span (the container's share of the bit capacity).
func decodeContainer(data []byte, span int) (container, []byte, error) {
	if len(data) == 0 {
		return container{}, nil, fmt.Errorf("store: bitset: truncated container header")
	}
	typ, data := data[0], data[1:]
	switch typ {
	case wireEmpty:
		return container{}, data, nil
	case wireArray:
		card, k := binary.Uvarint(data)
		if k <= 0 || card == 0 || card > arrayMaxCard {
			return container{}, nil, fmt.Errorf("store: bitset: bad array cardinality %d", card)
		}
		data = data[k:]
		if len(data) < 2*int(card) {
			return container{}, nil, fmt.Errorf("store: bitset: array container needs %d bytes, have %d", 2*card, len(data))
		}
		arr := make([]uint16, card)
		for i := range arr {
			arr[i] = binary.LittleEndian.Uint16(data[2*i:])
			if i > 0 && arr[i] <= arr[i-1] {
				return container{}, nil, fmt.Errorf("store: bitset: array container not strictly increasing")
			}
		}
		if int(arr[card-1]) >= span {
			return container{}, nil, fmt.Errorf("store: bitset: set bits beyond capacity")
		}
		return container{typ: ctArray, card: int(card), arr: arr}, data[2*card:], nil
	case wireBitmap:
		if len(data) < bitmapWireBytes {
			return container{}, nil, fmt.Errorf("store: bitset: bitmap container needs %d bytes, have %d", bitmapWireBytes, len(data))
		}
		bmp := make([]uint64, containerWords)
		card := 0
		for i := range bmp {
			bmp[i] = binary.LittleEndian.Uint64(data[8*i:])
			card += bits.OnesCount64(bmp[i])
		}
		if span < containerBits {
			tail := append([]uint64(nil), bmp...)
			maskTailWords(tail, span)
			for i, w := range tail {
				if w != bmp[i] {
					return container{}, nil, fmt.Errorf("store: bitset: set bits beyond capacity")
				}
			}
		}
		c := container{typ: ctBitmap, card: card, bmp: bmp}
		c.optimize() // hostile encoders may ship sparse bitmaps; demote
		return c, data[bitmapWireBytes:], nil
	case wireRun:
		nr, k := binary.Uvarint(data)
		if k <= 0 || nr == 0 || nr > containerBits/2 {
			return container{}, nil, fmt.Errorf("store: bitset: bad run count %d", nr)
		}
		data = data[k:]
		if len(data) < 4*int(nr) {
			return container{}, nil, fmt.Errorf("store: bitset: run container needs %d bytes, have %d", 4*nr, len(data))
		}
		runs := make([]interval16, nr)
		card := 0
		for i := range runs {
			runs[i].lo = binary.LittleEndian.Uint16(data[4*i:])
			runs[i].hi = binary.LittleEndian.Uint16(data[4*i+2:])
			if runs[i].hi < runs[i].lo {
				return container{}, nil, fmt.Errorf("store: bitset: inverted run")
			}
			if i > 0 && runs[i].lo <= runs[i-1].hi {
				return container{}, nil, fmt.Errorf("store: bitset: overlapping runs")
			}
			card += int(runs[i].hi) - int(runs[i].lo) + 1
		}
		if int(runs[nr-1].hi) >= span {
			return container{}, nil, fmt.Errorf("store: bitset: set bits beyond capacity")
		}
		return container{typ: ctRun, card: card, runs: runs}, data[4*nr:], nil
	default:
		return container{}, nil, fmt.Errorf("store: bitset: unknown container type 0x%02x", typ)
	}
}

// unmarshalLegacy decodes the pre-container flat format: uvarint bit
// capacity followed by little-endian payload words.
func (b *Bitset) unmarshalLegacy(data []byte) error {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("store: bitset: truncated capacity")
	}
	data = data[k:]
	// Bound the capacity by the bytes present before converting to int,
	// so a 2^63-bit claim can neither overflow nor allocate.
	if n > uint64(len(data))*8+63 {
		return fmt.Errorf("store: bitset: capacity %d exceeds %d payload bytes", n, len(data))
	}
	words := (int(n) + 63) / 64
	if len(data) != 8*words {
		return fmt.Errorf("store: bitset: capacity %d needs %d payload words, have %d bytes", n, words, len(data))
	}
	out := NewBitset(int(n))
	for wi := 0; wi < words; wi++ {
		w := binary.LittleEndian.Uint64(data[8*wi:])
		if w == 0 {
			continue
		}
		// Reject set bits beyond the declared capacity: they would
		// silently leak into ordinal space after an OrAt merge.
		if wi == words-1 {
			if rem := int(n) & 63; rem != 0 && w&^((1<<uint(rem))-1) != 0 {
				return fmt.Errorf("store: bitset: set bits beyond capacity %d", n)
			}
		}
		out.orWord(wi, w)
	}
	for i := range out.cs {
		out.cs[i].optimize()
	}
	b.n = out.n
	b.cs = out.cs
	return nil
}
