package store

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"testing"

	"pastas/internal/model"
)

// snapCollection builds a small deterministic collection exercising every
// entry field the codec must round-trip: intervals, codes, values, aux,
// text, open ends, and patients with zero entries.
func snapCollection(n int) *model.Collection {
	base := model.Date(2011, 3, 1)
	codes := []model.Code{
		{System: "ICPC2", Value: "T90"}, {System: "ICD10", Value: "E11.9"},
		{System: "ATC", Value: "A10BA02"}, {System: "", Value: "X99"},
	}
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{
			ID: model.PatientID(i + 1), Birth: model.Date(1940+i%60, 1, 1),
			Sex: model.Sex(i % 3), Municipality: 1900 + i%30,
		})
		for j := 0; j < i%7; j++ {
			e := model.Entry{
				ID: uint64(i*100 + j), Kind: model.Point,
				Start: base.AddDays(j * 11), End: base.AddDays(j * 11),
				Source: model.Source(1 + (i+j)%5), Type: model.TypeContact,
			}
			switch j % 4 {
			case 1:
				e.Type = model.TypeDiagnosis
				e.Code = codes[(i+j)%len(codes)]
			case 2:
				e.Type = model.TypeMeasurement
				e.Value = 120 + float64(j)
				e.Aux = 80 + float64(j)
				e.Text = "bp reading"
			case 3:
				e.Kind = model.Interval
				e.End = e.Start + 14*model.Day
				e.Type = model.TypeStay
				e.OpenEnd = j == 3
			}
			h.Add(e)
		}
		hs[i] = h
	}
	return model.MustCollection(hs...)
}

// historiesEqual compares two collections per history: same patient
// records in the same order, identical chronological entry slices.
func historiesEqual(t *testing.T, want, got *model.Collection) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("patients = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w, g := want.At(i), got.At(i)
		if w.Patient != g.Patient {
			t.Fatalf("history %d: patient %+v, want %+v", i, g.Patient, w.Patient)
		}
		we, ge := w.SortedEntries(), g.SortedEntries()
		if len(we) != len(ge) {
			t.Fatalf("history %d: %d entries, want %d", i, len(ge), len(we))
		}
		for j := range we {
			if !reflect.DeepEqual(we[j], ge[j]) {
				t.Fatalf("history %d entry %d:\n got %+v\nwant %+v", i, j, ge[j], we[j])
			}
		}
	}
}

func TestShardedRoundTripParity(t *testing.T) {
	col := snapCollection(103) // not a multiple of any shard count
	for _, shards := range []int{1, 4, 16, 1000} {
		var buf bytes.Buffer
		info, err := SaveSharded(&buf, col, shards)
		if err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}
		// Same chunking as the engine: ceil(n/shards) patients per shard,
		// which can yield fewer shards than requested (and never more).
		clamped := min(shards, col.Len())
		chunk := (col.Len() + clamped - 1) / clamped
		wantShards := (col.Len() + chunk - 1) / chunk
		if info.Shards != wantShards {
			t.Errorf("shards=%d: wrote %d shards, want %d", shards, info.Shards, wantShards)
		}
		if info.Bytes != int64(buf.Len()) {
			t.Errorf("shards=%d: info.Bytes = %d, file is %d", shards, info.Bytes, buf.Len())
		}
		got, gotInfo, err := LoadSharded(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: load: %v", shards, err)
		}
		historiesEqual(t, col, got)
		if gotInfo.Shards != info.Shards || gotInfo.Patients != col.Len() {
			t.Errorf("shards=%d: info mismatch: %+v", shards, gotInfo)
		}
		if gotInfo.Legacy {
			t.Errorf("shards=%d: sharded snapshot flagged legacy", shards)
		}
		// The generic Load must auto-detect the sharded format too.
		viaLoad, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: Load auto-detect: %v", shards, err)
		}
		historiesEqual(t, col, viaLoad)
	}
}

func TestShardedEmptyCollection(t *testing.T) {
	col := model.MustCollection()
	var buf bytes.Buffer
	info, err := SaveSharded(&buf, col, 8)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 1 || info.Patients != 0 {
		t.Errorf("empty save info = %+v", info)
	}
	got, _, err := LoadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty round trip produced %d patients", got.Len())
	}
}

func TestLegacyV1RoundTripCompat(t *testing.T) {
	col := snapCollection(60)
	var buf bytes.Buffer
	if err := Save(&buf, col); err != nil {
		t.Fatal(err)
	}
	// A legacy stream must not be mistaken for a sharded one.
	if bytes.HasPrefix(buf.Bytes(), []byte(snapshotMagic)) {
		t.Fatal("legacy snapshot starts with the sharded magic")
	}
	got, info, err := LoadInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	historiesEqual(t, col, got)
	if !info.Legacy || info.Version != 1 || info.Format() != "legacy-v1" {
		t.Errorf("legacy info = %+v", info)
	}
}

func TestSaveIsReadOnly(t *testing.T) {
	// Build a history whose entries are deliberately out of order and
	// assert neither save path reorders the live slice.
	h := model.NewHistory(model.Patient{ID: 7, Birth: model.Date(1950, 1, 1)})
	for j := 5; j >= 1; j-- {
		h.Add(model.Entry{ID: uint64(j), Kind: model.Point,
			Start: model.Date(2011, 1, j), End: model.Date(2011, 1, j),
			Source: model.SourceGP, Type: model.TypeContact})
	}
	col := model.MustCollection(h)
	wantIDs := func() []uint64 {
		ids := make([]uint64, len(h.Entries))
		for i := range h.Entries {
			ids[i] = h.Entries[i].ID
		}
		return ids
	}
	before := wantIDs()
	if h.Sorted() {
		t.Fatal("fixture must start unsorted")
	}

	var legacy, sharded bytes.Buffer
	if err := Save(&legacy, col); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveSharded(&sharded, col, 2); err != nil {
		t.Fatal(err)
	}

	if h.Sorted() {
		t.Error("save flipped the history's sorted flag")
	}
	if got := wantIDs(); !reflect.DeepEqual(got, before) {
		t.Errorf("save reordered live entries: %v, want %v", got, before)
	}
	// Both snapshots must still load with chronologically sorted entries.
	for name, buf := range map[string]*bytes.Buffer{"legacy": &legacy, "sharded": &sharded} {
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gh := got.At(0)
		if !gh.Sorted() {
			t.Errorf("%s: loaded history not sorted", name)
		}
		for i := 1; i < len(gh.Entries); i++ {
			if gh.Entries[i].Start < gh.Entries[i-1].Start {
				t.Errorf("%s: loaded entries out of order", name)
			}
		}
	}
}

// shardedSnapshot returns a valid sharded snapshot of n patients.
func shardedSnapshot(t *testing.T, n, shards int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := SaveSharded(&buf, snapCollection(n), shards); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadShardedWrongMagic(t *testing.T) {
	snap := shardedSnapshot(t, 20, 4)
	bad := append([]byte{}, snap...)
	bad[0] ^= 0xFF
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
	// The generic Load falls back to the legacy decoder, which must also
	// error (it is not a gob stream) rather than return garbage.
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted by Load fallback")
	}
}

func TestLoadShardedUnsupportedVersion(t *testing.T) {
	snap := shardedSnapshot(t, 20, 4)
	bad := append([]byte{}, snap...)
	binary.BigEndian.PutUint32(bad[8:], 99)
	_, _, err := LoadSharded(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("future version accepted")
	}
	if want := "unsupported version 99"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}

func TestLoadShardedZeroShardCount(t *testing.T) {
	snap := shardedSnapshot(t, 20, 4)
	bad := append([]byte{}, snap...)
	binary.BigEndian.PutUint32(bad[12:], 0)
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("shard count 0 accepted")
	}
	binary.BigEndian.PutUint32(bad[12:], maxSnapshotShards+1)
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("absurd shard count accepted")
	}
}

func TestLoadShardedTruncated(t *testing.T) {
	snap := shardedSnapshot(t, 40, 4)
	// Cut inside the fixed header, the shard table, and the segments.
	for _, cut := range []int{0, 5, snapshotHeaderFixed - 1, snapshotHeaderFixed + 10, len(snap) / 2, len(snap) - 1} {
		if _, _, err := LoadSharded(bytes.NewReader(snap[:cut])); err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(snap))
		}
	}
}

func TestLoadShardedChecksumMismatch(t *testing.T) {
	snap := shardedSnapshot(t, 40, 4)
	bad := append([]byte{}, snap...)
	bad[len(bad)-3] ^= 0x40 // flip a payload bit in the last segment
	_, _, err := LoadSharded(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("corrupt segment accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("checksum")) {
		t.Errorf("err = %v, want a checksum mismatch", err)
	}
}

func TestLoadShardedHeaderPayloadDisagreement(t *testing.T) {
	// Forge a header that claims more patients than the (checksummed)
	// segment holds: recompute nothing, just bump both patient fields so
	// the table stays self-consistent; decode must catch the lie.
	snap := shardedSnapshot(t, 10, 1)
	bad := append([]byte{}, snap...)
	binary.BigEndian.PutUint64(bad[16:], 11)                     // header total
	binary.BigEndian.PutUint64(bad[snapshotHeaderFixed+16:], 11) // shard row
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("header/payload patient disagreement accepted")
	}
}

func TestLoadShardedHostilePatientCount(t *testing.T) {
	// A self-consistent header (total and shard row agree, checksums
	// valid) claiming an absurd patient count must produce a clean error
	// — allocation has to be driven by what the segments decode to, not
	// by the header.
	snap := shardedSnapshot(t, 10, 1)
	bad := append([]byte{}, snap...)
	huge := uint64(1) << 40
	binary.BigEndian.PutUint64(bad[16:], huge)                     // header total
	binary.BigEndian.PutUint64(bad[snapshotHeaderFixed+16:], huge) // shard row
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("hostile patient count accepted")
	}
}

func TestShardBoundsClampedToLoadableRange(t *testing.T) {
	// Save must never write a shard count Load refuses (readHeader caps
	// at maxSnapshotShards).
	bounds := shardBounds(10*maxSnapshotShards, 10*maxSnapshotShards)
	if len(bounds) > maxSnapshotShards {
		t.Errorf("shardBounds produced %d shards, loader cap is %d", len(bounds), maxSnapshotShards)
	}
	if last := bounds[len(bounds)-1][1]; last != 10*maxSnapshotShards {
		t.Errorf("clamped bounds cover %d of %d patients", last, 10*maxSnapshotShards)
	}
}

func TestNegativeZeroValueRoundTrip(t *testing.T) {
	// -0.0 compares equal to 0 but has different bits; the codec must
	// preserve it exactly (presence flags are decided at the bit level).
	h := model.NewHistory(model.Patient{ID: 1, Birth: model.Date(1950, 1, 1)})
	h.Add(model.Entry{ID: 1, Kind: model.Point,
		Start: model.Date(2011, 1, 1), End: model.Date(2011, 1, 1),
		Source: model.SourceGP, Type: model.TypeMeasurement,
		Value: math.Copysign(0, -1), Aux: math.Copysign(0, -1)})
	var buf bytes.Buffer
	if _, err := SaveSharded(&buf, model.MustCollection(h), 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e := got.At(0).Entries[0]
	if math.Signbit(e.Value) != true || math.Signbit(e.Aux) != true {
		t.Errorf("negative zero canonicalized: Value %v, Aux %v",
			math.Float64bits(e.Value), math.Float64bits(e.Aux))
	}
}

func TestInspectShardedIsHeaderOnly(t *testing.T) {
	snap := shardedSnapshot(t, 50, 4)
	info, err := Inspect(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if info.Legacy || info.Shards != 4 || info.Patients != 50 {
		t.Errorf("info = %+v", info)
	}
	if len(info.ShardDetail) != 4 {
		t.Fatalf("shard detail = %d rows", len(info.ShardDetail))
	}
	if info.Bytes != int64(len(snap)) {
		t.Errorf("info.Bytes = %d, file is %d", info.Bytes, len(snap))
	}
	// Header-only: inspecting just the header+table bytes (payload cut
	// off) still succeeds on a plain stream, whose total size cannot be
	// known — no payload byte is ever read.
	headerLen := int(info.headerLen())
	if _, err := Inspect(io.MultiReader(bytes.NewReader(snap[:headerLen]))); err != nil {
		t.Errorf("header-only inspect failed: %v", err)
	}
	// But a sized reader (file, in-memory buffer) exposes the truncation:
	// the shard table promises more bytes than exist, and Inspect reports
	// it at header time.
	if _, err := Inspect(bytes.NewReader(snap[:headerLen])); err == nil {
		t.Error("inspect of sized truncated snapshot succeeded, want truncation error")
	}
	if _, err := Inspect(bytes.NewReader(snap[:len(snap)-1])); err == nil {
		t.Error("inspect of sized snapshot missing last byte succeeded, want truncation error")
	}
}

func TestInspectLegacy(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, snapCollection(15)); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Legacy || info.Patients != 15 {
		t.Errorf("legacy inspect = %+v", info)
	}
}

// FuzzLoadSharded throws arbitrary bytes at the sharded loader (and the
// sniffing Load wrapper): any input may error but must never panic or
// balloon memory, even with self-consistent checksums over a hostile
// payload.
func FuzzLoadSharded(f *testing.F) {
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("not a snapshot at all"))
	var buf bytes.Buffer
	if _, err := SaveSharded(&buf, snapCollection(9), 3); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	var legacy bytes.Buffer
	if err := Save(&legacy, snapCollection(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		col, _, err := LoadSharded(bytes.NewReader(data))
		if err == nil && col == nil {
			t.Error("nil collection without error")
		}
		col2, err2 := Load(bytes.NewReader(data))
		if err2 == nil && col2 == nil {
			t.Error("nil collection without error (Load)")
		}
	})
}
