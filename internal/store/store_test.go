package store

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/synth"
)

func testCollection(t testing.TB) *model.Collection {
	t.Helper()
	base := model.Date(2010, time.June, 1)
	mk := func(id model.PatientID, codes ...model.Code) *model.History {
		h := model.NewHistory(model.Patient{ID: id, Birth: model.Date(1950, time.January, 1)})
		for i, c := range codes {
			sys := model.SourceGP
			typ := model.TypeDiagnosis
			if c.System == "ATC" {
				typ = model.TypeMedication
			}
			if c.System == "ICD10" {
				sys = model.SourceHospital
			}
			kind := model.Point
			end := base.AddDays(i)
			if typ == model.TypeMedication {
				kind = model.Interval
				end = base.AddDays(i + 30)
			}
			h.Add(model.Entry{
				ID: uint64(id)*100 + uint64(i), Kind: kind,
				Start: base.AddDays(i), End: end,
				Source: sys, Type: typ, Code: c,
			})
		}
		return h
	}
	icpc := func(v string) model.Code { return model.Code{System: "ICPC2", Value: v} }
	icd := func(v string) model.Code { return model.Code{System: "ICD10", Value: v} }
	atc := func(v string) model.Code { return model.Code{System: "ATC", Value: v} }
	return model.MustCollection(
		mk(1, icpc("T90"), icpc("K86"), atc("A10BA02")),
		mk(2, icpc("K86")),
		mk(3, icd("E11.9"), icpc("T90")),
		mk(4, icpc("R74")),
		mk(5), // empty history
	)
}

func TestIndexLookups(t *testing.T) {
	s := New(testCollection(t))

	bs := s.WithCode("ICPC2", "T90")
	if got := s.IDsOf(bs); !reflect.DeepEqual(got, []model.PatientID{1, 3}) {
		t.Errorf("WithCode(T90) = %v", got)
	}

	// Any-system lookup.
	bs = s.WithCode("", "T90")
	if bs.Count() != 2 {
		t.Errorf("any-system T90 count = %d", bs.Count())
	}

	bs = s.WithCode("ICPC2", "NOPE")
	if bs.Count() != 0 {
		t.Error("unknown code must be empty")
	}

	if got := s.WithType(model.TypeMedication).Count(); got != 1 {
		t.Errorf("WithType(medication) = %d", got)
	}
	if got := s.WithSource(model.SourceHospital).Count(); got != 1 {
		t.Errorf("WithSource(hospital) = %d", got)
	}
}

func TestWithCodeRegexMatchesScan(t *testing.T) {
	s := New(testCollection(t))
	for _, pattern := range []string{`T9.`, `K8.|T90`, `.*`, `E11.*`} {
		idx, err := s.WithCodeRegex("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := s.WithCodeRegexScan("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.IDsOf(idx), s.IDsOf(scan)) {
			t.Errorf("index and scan disagree for %q: %v vs %v",
				pattern, s.IDsOf(idx), s.IDsOf(scan))
		}
	}
}

func TestWithCodeRegexSystemFilter(t *testing.T) {
	s := New(testCollection(t))
	icpcOnly, err := s.WithCodeRegex("ICPC2", `T90`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.IDsOf(icpcOnly); !reflect.DeepEqual(got, []model.PatientID{1, 3}) {
		t.Errorf("ICPC2 T90 = %v", got)
	}
	icdOnly, err := s.WithCodeRegex("ICD10", `E11.*`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.IDsOf(icdOnly); !reflect.DeepEqual(got, []model.PatientID{3}) {
		t.Errorf("ICD10 E11.* = %v", got)
	}
}

func TestWithCodeRegexBadPattern(t *testing.T) {
	s := New(testCollection(t))
	if _, err := s.WithCodeRegex("", `(`); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := s.WithCodeRegexScan("", `(`); err == nil {
		t.Error("bad pattern accepted by scan")
	}
}

func TestWhereAndSubset(t *testing.T) {
	s := New(testCollection(t))
	busy := s.Where(func(h *model.History) bool { return h.Len() >= 2 })
	sub := s.Subset(busy)
	if sub.Len() != 2 {
		t.Errorf("subset len = %d", sub.Len())
	}
	if sub.Get(1) == nil || sub.Get(3) == nil {
		t.Error("wrong subset membership")
	}
}

func TestSetAlgebra(t *testing.T) {
	s := New(testCollection(t))
	t90 := s.WithCode("ICPC2", "T90")
	k86 := s.WithCode("ICPC2", "K86")

	both := t90.Clone().And(k86)
	if got := s.IDsOf(both); !reflect.DeepEqual(got, []model.PatientID{1}) {
		t.Errorf("T90∩K86 = %v", got)
	}
	either := t90.Clone().Or(k86)
	if either.Count() != 3 {
		t.Errorf("T90∪K86 count = %d", either.Count())
	}
	only := k86.Clone().AndNot(t90)
	if got := s.IDsOf(only); !reflect.DeepEqual(got, []model.PatientID{2}) {
		t.Errorf("K86∖T90 = %v", got)
	}
	none := s.All().Not()
	if none.Count() != 0 {
		t.Error("complement of all must be empty")
	}
	if s.All().Count() != 5 {
		t.Errorf("All = %d", s.All().Count())
	}
}

func TestDistinctCodesSorted(t *testing.T) {
	s := New(testCollection(t))
	codes := s.DistinctCodes()
	// T90, K86, R74 (ICPC2) + E11.9 (ICD10) + A10BA02 (ATC).
	if len(codes) != 5 {
		t.Fatalf("distinct codes = %v", codes)
	}
	for i := 1; i < len(codes); i++ {
		a, b := codes[i-1], codes[i]
		if a.System > b.System || (a.System == b.System && a.Value >= b.Value) {
			t.Fatalf("codes not sorted: %v", codes)
		}
	}
}

func TestOrdinalRoundTrip(t *testing.T) {
	s := New(testCollection(t))
	for i := 0; i < s.Len(); i++ {
		id := s.PatientAt(i)
		o, ok := s.Ordinal(id)
		if !ok || o != i {
			t.Fatalf("ordinal round trip broken at %d", i)
		}
	}
	if _, ok := s.Ordinal(999); ok {
		t.Error("unknown patient has ordinal")
	}
}

func TestBitsetProperties(t *testing.T) {
	// De Morgan over random index sets.
	f := func(xs, ys []uint8) bool {
		a := NewBitset(256)
		b := NewBitset(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		lhs := a.Clone().Or(b).Not()
		rhs := a.Clone().Not().And(b.Clone().Not())
		return reflect.DeepEqual(lhs.Ones(), rhs.Ones())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetTailMasking(t *testing.T) {
	b := NewBitset(70) // not a multiple of 64
	b.Not()
	if b.Count() != 70 {
		t.Errorf("Not count = %d, want 70", b.Count())
	}
	ones := b.Ones()
	if ones[len(ones)-1] != 69 {
		t.Errorf("tail bit leaked: %v", ones[len(ones)-5:])
	}
	b.Clear(69)
	if b.Get(69) || b.Count() != 69 {
		t.Error("Clear broken")
	}
}

func TestBitsetRangeEarlyStop(t *testing.T) {
	b := NewBitset(100)
	for _, i := range []int{3, 50, 99} {
		b.Set(i)
	}
	var seen []int
	b.Range(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{3, 50}) {
		t.Errorf("Range early stop = %v", seen)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(80))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, col); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() || got.TotalEntries() != col.TotalEntries() {
		t.Fatalf("snapshot round trip: %d/%d patients, %d/%d entries",
			got.Len(), col.Len(), got.TotalEntries(), col.TotalEntries())
	}
	for _, h := range col.Histories() {
		g := got.Get(h.Patient.ID)
		if g == nil {
			t.Fatalf("patient %s lost", h.Patient.ID)
		}
		if !reflect.DeepEqual(g.Patient, h.Patient) {
			t.Fatalf("patient record changed: %+v vs %+v", g.Patient, h.Patient)
		}
		if !reflect.DeepEqual(g.Entries, h.Entries) {
			t.Fatalf("entries changed for %s", h.Patient.ID)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestStoreOverSyntheticData(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(400))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(col)
	// Diabetics via ICPC T90 or ICD E11*: index and scan must agree.
	idx, err := s.WithCodeRegex("", `T90|E11(\..*)?`)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := s.WithCodeRegexScan("", `T90|E11(\..*)?`)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() == 0 {
		t.Error("no diabetics in 400-patient population is implausible")
	}
	if !reflect.DeepEqual(idx.Ones(), scan.Ones()) {
		t.Error("index and scan disagree on synthetic data")
	}
}
