package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"pastas/internal/model"
)

// Statistics and shard views.
//
// Stats are the exact per-index cardinalities a cost-based planner needs,
// collected once per store revision (one popcount per posting list at
// build time; appends maintain them incrementally). View is a contiguous
// ordinal slice pinned to one revision: it answers index lookups by
// slicing that revision's layered postings on the fly instead of
// rebuilding the inverted indexes per shard, and — because the revision is
// immutable — every call on a view answers from the same generation even
// while appends land on the owning store.

// Stats holds exact cardinalities over one store's population. All counts
// are patient-level (a patient with five T90 entries counts once), which
// is exactly the selectivity a cohort planner wants.
type Stats struct {
	// Patients is the population size.
	Patients int
	// Entries is the total entry count across all histories.
	Entries int
	// DistinctCodes is the size of the code vocabulary.
	DistinctCodes int

	codeCard   map[codeKey]int
	typeCard   map[model.Type]int
	sourceCard map[model.Source]int
	codes      []model.Code // shared with the owning revision; do not mutate
}

// collectStats popcounts every posting list of a revision once, summing
// the base and delta layers (additive by the disjointness invariant).
func collectStats(r *storeRev) *Stats {
	st := &Stats{
		Patients:      len(r.hists),
		Entries:       r.entries,
		DistinctCodes: len(r.codes),
		codeCard:      make(map[codeKey]int, len(r.base.byCodeValue)),
		typeCard:      make(map[model.Type]int, len(r.base.byType)),
		sourceCard:    make(map[model.Source]int, len(r.base.bySource)),
		codes:         r.codes,
	}
	addCounts(st.codeCard, r.base.byCodeValue)
	addCounts(st.codeCard, r.delta.byCodeValue)
	addCounts(st.typeCard, r.base.byType)
	addCounts(st.typeCard, r.delta.byType)
	addCounts(st.sourceCard, r.base.bySource)
	addCounts(st.sourceCard, r.delta.bySource)
	return st
}

func addCounts[K comparable](dst map[K]int, layer map[K]*Bitset) {
	for k, bs := range layer {
		if n := bs.Count(); n > 0 {
			dst[k] += n
		}
	}
}

// clone deep-copies the cardinality maps so an append can increment them
// without mutating the Stats published with the previous revision.
func (st *Stats) clone() *Stats {
	out := &Stats{
		Patients:      st.Patients,
		Entries:       st.Entries,
		DistinctCodes: st.DistinctCodes,
		codeCard:      make(map[codeKey]int, len(st.codeCard)+8),
		typeCard:      make(map[model.Type]int, len(st.typeCard)),
		sourceCard:    make(map[model.Source]int, len(st.sourceCard)),
		codes:         st.codes,
	}
	for k, v := range st.codeCard {
		out.codeCard[k] = v
	}
	for k, v := range st.typeCard {
		out.typeCard[k] = v
	}
	for k, v := range st.sourceCard {
		out.sourceCard[k] = v
	}
	return out
}

// AvgEntries returns the mean entries per history — the calibration input
// for the planner's per-history scan cost.
func (st *Stats) AvgEntries() float64 {
	if st.Patients == 0 {
		return 0
	}
	return float64(st.Entries) / float64(st.Patients)
}

// TypeCard returns how many patients have at least one entry of the type.
func (st *Stats) TypeCard(t model.Type) int { return st.typeCard[t] }

// SourceCard returns how many patients have at least one entry from the
// source.
func (st *Stats) SourceCard(src model.Source) int { return st.sourceCard[src] }

// CodeCard returns how many patients carry the exact code (any system if
// system == "").
func (st *Stats) CodeCard(system, value string) int {
	if system != "" {
		return st.codeCard[codeKey{system, value}]
	}
	n := 0
	for k, c := range st.codeCard {
		if k.value == value {
			n += c
		}
	}
	return n
}

// CodePatternCard returns an upper bound on how many patients have a code
// (in the system; "" = any) matching the anchored pattern: the sum of the
// matching codes' cardinalities, capped at the population. It is exact
// when a single code matches, an independence-free union bound otherwise.
func (st *Stats) CodePatternCard(system, pattern string) (int, error) {
	n := 0
	err := matchCodes(st.codes, system, pattern, func(c model.Code) {
		n += st.codeCard[codeKey{c.System, c.Value}]
	})
	if err != nil {
		return 0, err
	}
	if n > st.Patients {
		n = st.Patients
	}
	return n, nil
}

// statsWire is the gob wire form of Stats: cardinalities keyed by the
// sorted code vocabulary so encode/decode is deterministic.
type statsWire struct {
	Patients, Entries int
	Codes             []model.Code
	CodeCard          []int // parallel to Codes
	TypeCard          map[model.Type]int
	SourceCard        map[model.Source]int
}

// MarshalBinary encodes the statistics for the shard wire protocol, so a
// remote shard backend can hand its exact cardinalities to a coordinating
// planner.
func (st *Stats) MarshalBinary() ([]byte, error) {
	w := statsWire{
		Patients:   st.Patients,
		Entries:    st.Entries,
		Codes:      st.codes,
		CodeCard:   make([]int, len(st.codes)),
		TypeCard:   st.typeCard,
		SourceCard: st.sourceCard,
	}
	for i, c := range st.codes {
		w.CodeCard[i] = st.codeCard[codeKey{c.System, c.Value}]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("store: marshal stats: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes statistics written by MarshalBinary.
func (st *Stats) UnmarshalBinary(data []byte) error {
	var w statsWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("store: unmarshal stats: %w", err)
	}
	if len(w.CodeCard) != len(w.Codes) {
		return fmt.Errorf("store: unmarshal stats: %d cardinalities for %d codes", len(w.CodeCard), len(w.Codes))
	}
	st.Patients, st.Entries = w.Patients, w.Entries
	st.DistinctCodes = len(w.Codes)
	st.codes = w.Codes
	st.codeCard = make(map[codeKey]int, len(w.Codes))
	for i, c := range w.Codes {
		st.codeCard[codeKey{c.System, c.Value}] = w.CodeCard[i]
	}
	st.typeCard = w.TypeCard
	if st.typeCard == nil {
		st.typeCard = map[model.Type]int{}
	}
	st.sourceCard = w.SourceCard
	if st.sourceCard == nil {
		st.sourceCard = map[model.Source]int{}
	}
	return nil
}

// MergeStats combines statistics over disjoint populations (the shards of
// one collection) into statistics over their union. Patient-level counts
// are additive across disjoint shards, so the merge is exact — the
// coordinating planner estimates from the same cardinalities a single
// global store would have collected.
func MergeStats(parts ...*Stats) *Stats {
	out := &Stats{
		codeCard:   make(map[codeKey]int),
		typeCard:   make(map[model.Type]int),
		sourceCard: make(map[model.Source]int),
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Patients += p.Patients
		out.Entries += p.Entries
		for _, c := range p.codes {
			out.codeCard[codeKey{c.System, c.Value}] += p.codeCard[codeKey{c.System, c.Value}]
		}
		for t, n := range p.typeCard {
			out.typeCard[t] += n
		}
		for s, n := range p.sourceCard {
			out.sourceCard[s] += n
		}
	}
	out.codes = make([]model.Code, 0, len(out.codeCard))
	for k := range out.codeCard {
		out.codes = append(out.codes, model.Code{System: k.system, Value: k.value})
	}
	sort.Slice(out.codes, func(i, j int) bool {
		if out.codes[i].System != out.codes[j].System {
			return out.codes[i].System < out.codes[j].System
		}
		return out.codes[i].Value < out.codes[j].Value
	})
	out.DistinctCodes = len(out.codes)
	return out
}

// View is a contiguous ordinal slice [Lo, Hi) of one store revision. It
// answers the same index lookups as a dedicated shard store, in the
// shard's local ordinal space (local bit i is revision bit Lo+i), by
// slicing the revision's layered postings — no per-shard index memory,
// and an empty slice of a posting list is detected in O(words) without
// materializing anything.
//
// A view is pinned: it keeps answering from the revision it was created
// on, untouched by later appends to the owning store. The engine rebuilds
// its views when the store generation advances, so one query always runs
// against one generation.
type View struct {
	r      *storeRev
	lo, hi int
}

// Slice returns a view over ordinals [lo, hi) of the current revision;
// bounds are clamped to the population.
func (s *Store) Slice(lo, hi int) *View {
	r := s.loadRev()
	return sliceRev(r, lo, hi)
}

func sliceRev(r *storeRev, lo, hi int) *View {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.hists) {
		hi = len(r.hists)
	}
	if hi < lo {
		hi = lo
	}
	return &View{r: r, lo: lo, hi: hi}
}

// Sub returns a view over ordinals [lo, hi) of the same revision as v
// (absolute ordinals, independent of v's own range) — how the engine
// carves shard views out of one pinned full-population view.
func (v *View) Sub(lo, hi int) *View { return sliceRev(v.r, lo, hi) }

// Generation returns the generation of the revision the view is pinned to.
func (v *View) Generation() uint64 { return v.r.gen }

// Len returns the number of patients in the view.
func (v *View) Len() int { return v.hi - v.lo }

// Offset returns the view's first global ordinal.
func (v *View) Offset() int { return v.lo }

// Histories returns the view's histories in display order. Like
// Collection.Histories, the slice must not be structurally mutated.
func (v *View) Histories() []*model.History {
	return v.r.hists[v.lo:v.hi]
}

// Entries returns the total entry count inside the view.
func (v *View) Entries() int {
	if v.lo == 0 && v.hi == len(v.r.hists) {
		return v.r.entries
	}
	n := 0
	for _, h := range v.Histories() {
		n += len(h.Entries)
	}
	return n
}

// Empty returns a fresh empty bitset sized to the view.
func (v *View) Empty() *Bitset { return NewBitset(v.Len()) }

// PatientAt returns the patient ID at a local bit position.
func (v *View) PatientAt(local int) model.PatientID { return v.r.ids[v.lo+local] }

// Ordinal returns the local bit position of a patient within the view;
// ok=false when the patient is absent or lives outside the view's range.
func (v *View) Ordinal(id model.PatientID) (int, bool) {
	o, ok := v.r.ordinalOf(id)
	if !ok || o < v.lo || o >= v.hi {
		return 0, false
	}
	return o - v.lo, true
}

// HistoryAt returns the history at a local bit position.
func (v *View) HistoryAt(local int) *model.History {
	return v.r.hists[v.lo+local]
}

// Stats collects the view's exact cardinalities by popcounting the
// revision's layered postings over the view's ordinal range — the
// per-shard statistics a shard backend reports without owning dedicated
// indexes. The full-population view returns the revision's precomputed
// statistics directly.
func (v *View) Stats() *Stats {
	if v.lo == 0 && v.hi == len(v.r.hists) {
		return v.r.stats
	}
	st := &Stats{
		Patients:   v.Len(),
		Entries:    v.Entries(),
		codeCard:   make(map[codeKey]int),
		typeCard:   make(map[model.Type]int),
		sourceCard: make(map[model.Source]int),
	}
	for _, c := range v.r.codes {
		k := codeKey{c.System, c.Value}
		base, delta := v.r.codeBits(k)
		n := layerCountRange(base, v.lo, v.hi) + layerCountRange(delta, v.lo, v.hi)
		if n > 0 {
			st.codeCard[k] = n
			st.codes = append(st.codes, c) // revision vocabulary is sorted
		}
	}
	st.DistinctCodes = len(st.codes)
	for t := range layerKeys(v.r.base.byType, v.r.delta.byType) {
		n := layerCountRange(v.r.base.byType[t], v.lo, v.hi) +
			layerCountRange(v.r.delta.byType[t], v.lo, v.hi)
		if n > 0 {
			st.typeCard[t] = n
		}
	}
	for src := range layerKeys(v.r.base.bySource, v.r.delta.bySource) {
		n := layerCountRange(v.r.base.bySource[src], v.lo, v.hi) +
			layerCountRange(v.r.delta.bySource[src], v.lo, v.hi)
		if n > 0 {
			st.sourceCard[src] = n
		}
	}
	return st
}

// layerKeys returns the union of both layers' key sets.
func layerKeys[K comparable](base, delta map[K]*Bitset) map[K]struct{} {
	out := make(map[K]struct{}, len(base)+len(delta))
	for k := range base {
		out[k] = struct{}{}
	}
	for k := range delta {
		out[k] = struct{}{}
	}
	return out
}

// slice extracts a layered posting into local ordinal space, fast-pathing
// the empty range (the per-shard zero-cardinality skip).
func (v *View) slice(base, delta *Bitset) *Bitset {
	anyBase := layerAnyInRange(base, v.lo, v.hi)
	anyDelta := layerAnyInRange(delta, v.lo, v.hi)
	out := v.Empty()
	if !anyBase && !anyDelta {
		return out
	}
	if anyBase {
		layerOrSlice(out, base, v.lo, v.hi)
	}
	if anyDelta {
		layerOrSlice(out, delta, v.lo, v.hi)
	}
	return out
}

// WithType returns the view's patients having at least one entry of the
// type, in local ordinal space.
func (v *View) WithType(t model.Type) *Bitset {
	return v.slice(v.r.base.byType[t], v.r.delta.byType[t])
}

// WithSource returns the view's patients having at least one entry from
// the source, in local ordinal space.
func (v *View) WithSource(src model.Source) *Bitset {
	return v.slice(v.r.base.bySource[src], v.r.delta.bySource[src])
}

// WithCodeRegex returns the view's patients with a code (in the system;
// "" = any) matching the anchored pattern, in local ordinal space. The
// pattern is matched against the revision's distinct-code vocabulary;
// codes absent from the slice contribute no bits, so the result is
// identical to a dedicated shard index.
func (v *View) WithCodeRegex(system, pattern string) (*Bitset, error) {
	out := v.Empty()
	err := matchCodes(v.r.codes, system, pattern, func(c model.Code) {
		base, delta := v.r.codeBits(codeKey{c.System, c.Value})
		layerOrSlice(out, base, v.lo, v.hi)
		layerOrSlice(out, delta, v.lo, v.hi)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
