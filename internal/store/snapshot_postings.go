package store

// Snapshot postings block (format v3). A v3 sharded snapshot carries,
// after the history segments, one postings segment per shard: the shard's
// inverted indexes (code/type/source → patients) in the containerized
// bitset wire encoding. The header's postings table stores each segment's
// size, checksum, and container-type histogram, so `snapshot info` can
// report per-shard compression without decoding anything, and a shard
// server can restore its indexes from the file instead of re-walking
// every entry. v2 snapshots simply lack the block — loaders fall back to
// rebuilding indexes — and v3 history segments are byte-identical to v2.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pastas/internal/model"
)

// PostingsInfo describes one shard's postings segment: its size and
// checksum, and the container composition of its bitset encodings — the
// per-shard compression stats `snapshot info` reports.
type PostingsInfo struct {
	Shard    int    `json:"shard"`
	Bytes    int64  `json:"bytes"`
	Lists    int    `json:"lists"` // posting lists (codes + types + sources)
	Arrays   int    `json:"arrays"`
	Bitmaps  int    `json:"bitmaps"`
	Runs     int    `json:"runs"`
	Checksum uint32 `json:"checksum"`
}

// postings list kinds on the wire.
const (
	postCode   = 0x00
	postType   = 0x01
	postSource = 0x02
)

// maxPostingLists bounds the list count one postings segment may claim.
const maxPostingLists = 1 << 24

// ShardPostings holds one shard's decoded inverted indexes in shard-local
// ordinal space.
type ShardPostings struct {
	Patients int
	Codes    []CodePosting // sorted by system, then value
	Types    map[model.Type]*Bitset
	Sources  map[model.Source]*Bitset
}

// CodePosting is one code's patient set.
type CodePosting struct {
	Code model.Code
	Bits *Bitset
}

// Stats aggregates the container composition across every posting list.
func (sp *ShardPostings) Stats() ContainerStats {
	var st ContainerStats
	for _, cp := range sp.Codes {
		st.Add(cp.Bits.ContainerStats())
	}
	for _, bs := range sp.Types {
		st.Add(bs.ContainerStats())
	}
	for _, bs := range sp.Sources {
		st.Add(bs.ContainerStats())
	}
	return st
}

// buildShardPostings walks a shard's histories once and builds its
// inverted indexes — the same index semantics as New (entries with a zero
// code contribute no code posting), in shard-local ordinal space.
func buildShardPostings(hs []*model.History) *ShardPostings {
	n := len(hs)
	sp := &ShardPostings{
		Patients: n,
		Types:    make(map[model.Type]*Bitset),
		Sources:  make(map[model.Source]*Bitset),
	}
	byCode := make(map[codeKey]*Bitset)
	for i, h := range hs {
		for j := range h.Entries {
			e := &h.Entries[j]
			if !e.Code.IsZero() {
				k := codeKey{e.Code.System, e.Code.Value}
				bs := byCode[k]
				if bs == nil {
					bs = NewBitset(n)
					byCode[k] = bs
				}
				bs.Set(i)
			}
			tb := sp.Types[e.Type]
			if tb == nil {
				tb = NewBitset(n)
				sp.Types[e.Type] = tb
			}
			tb.Set(i)
			sb := sp.Sources[e.Source]
			if sb == nil {
				sb = NewBitset(n)
				sp.Sources[e.Source] = sb
			}
			sb.Set(i)
		}
	}
	sp.Codes = make([]CodePosting, 0, len(byCode))
	for k, bs := range byCode {
		sp.Codes = append(sp.Codes, CodePosting{Code: model.Code{System: k.system, Value: k.value}, Bits: bs})
	}
	sort.Slice(sp.Codes, func(i, j int) bool {
		if sp.Codes[i].Code.System != sp.Codes[j].Code.System {
			return sp.Codes[i].Code.System < sp.Codes[j].Code.System
		}
		return sp.Codes[i].Code.Value < sp.Codes[j].Code.Value
	})
	return sp
}

// encodePostings serializes a shard's postings deterministically: codes
// in vocabulary order, then types, then sources in ascending scalar
// order, each list as kind + key + length-prefixed container-encoded
// bitset. Returns the segment and its PostingsInfo histogram (Checksum
// left for the caller).
func encodePostings(sp *ShardPostings) ([]byte, PostingsInfo, error) {
	var pi PostingsInfo
	lists := len(sp.Codes) + len(sp.Types) + len(sp.Sources)
	out := binary.AppendUvarint(nil, uint64(lists))
	appendBits := func(bs *Bitset) error {
		data, err := bs.MarshalBinary()
		if err != nil {
			return err
		}
		st := bs.ContainerStats()
		pi.Arrays += st.Arrays
		pi.Bitmaps += st.Bitmaps
		pi.Runs += st.Runs
		out = binary.AppendUvarint(out, uint64(len(data)))
		out = append(out, data...)
		return nil
	}
	appendString := func(s string) {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	for _, cp := range sp.Codes {
		out = append(out, postCode)
		appendString(cp.Code.System)
		appendString(cp.Code.Value)
		if err := appendBits(cp.Bits); err != nil {
			return nil, pi, err
		}
	}
	for _, t := range sortedKeys(sp.Types) {
		out = append(out, postType, byte(t))
		if err := appendBits(sp.Types[t]); err != nil {
			return nil, pi, err
		}
	}
	for _, s := range sortedKeys(sp.Sources) {
		out = append(out, postSource, byte(s))
		if err := appendBits(sp.Sources[s]); err != nil {
			return nil, pi, err
		}
	}
	pi.Lists = lists
	pi.Bytes = int64(len(out))
	return out, pi, nil
}

// sortedKeys returns a map's uint8-valued keys in ascending order.
func sortedKeys[K ~uint8, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// decodePostings decodes a postings segment for a shard of `patients`
// patients. Every length is bounded by the bytes present and every bitset
// must declare exactly the shard's capacity, so a corrupt or hostile
// segment errors instead of allocating from a lie.
func decodePostings(data []byte, patients int) (*ShardPostings, error) {
	lists, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("store: postings: truncated list count")
	}
	data = data[k:]
	if lists > maxPostingLists || lists > uint64(len(data)) {
		return nil, fmt.Errorf("store: postings: %d lists exceed %d payload bytes", lists, len(data))
	}
	readString := func() (string, error) {
		l, k := binary.Uvarint(data)
		if k <= 0 || l > uint64(len(data)-k) {
			return "", fmt.Errorf("store: postings: truncated string")
		}
		s := string(data[k : k+int(l)])
		data = data[k+int(l):]
		return s, nil
	}
	readBits := func() (*Bitset, error) {
		l, k := binary.Uvarint(data)
		if k <= 0 || l > uint64(len(data)-k) {
			return nil, fmt.Errorf("store: postings: truncated bitset")
		}
		var bs Bitset
		if err := bs.UnmarshalBinary(data[k : k+int(l)]); err != nil {
			return nil, err
		}
		data = data[k+int(l):]
		if bs.Len() != patients {
			return nil, fmt.Errorf("store: postings: bitset capacity %d, shard has %d patients", bs.Len(), patients)
		}
		return &bs, nil
	}
	sp := &ShardPostings{
		Patients: patients,
		Types:    make(map[model.Type]*Bitset),
		Sources:  make(map[model.Source]*Bitset),
	}
	for i := uint64(0); i < lists; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("store: postings: truncated at list %d of %d", i, lists)
		}
		kind := data[0]
		data = data[1:]
		switch kind {
		case postCode:
			system, err := readString()
			if err != nil {
				return nil, err
			}
			value, err := readString()
			if err != nil {
				return nil, err
			}
			bs, err := readBits()
			if err != nil {
				return nil, err
			}
			if n := len(sp.Codes); n > 0 {
				prev := sp.Codes[n-1].Code
				if prev.System > system || (prev.System == system && prev.Value >= value) {
					return nil, fmt.Errorf("store: postings: code vocabulary out of order")
				}
			}
			sp.Codes = append(sp.Codes, CodePosting{Code: model.Code{System: system, Value: value}, Bits: bs})
		case postType:
			if len(data) == 0 {
				return nil, fmt.Errorf("store: postings: truncated type key")
			}
			t := model.Type(data[0])
			data = data[1:]
			if _, dup := sp.Types[t]; dup {
				return nil, fmt.Errorf("store: postings: duplicate type %d", t)
			}
			bs, err := readBits()
			if err != nil {
				return nil, err
			}
			sp.Types[t] = bs
		case postSource:
			if len(data) == 0 {
				return nil, fmt.Errorf("store: postings: truncated source key")
			}
			s := model.Source(data[0])
			data = data[1:]
			if _, dup := sp.Sources[s]; dup {
				return nil, fmt.Errorf("store: postings: duplicate source %d", s)
			}
			bs, err := readBits()
			if err != nil {
				return nil, err
			}
			sp.Sources[s] = bs
		default:
			return nil, fmt.Errorf("store: postings: unknown list kind 0x%02x", kind)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("store: postings: %d trailing bytes", len(data))
	}
	return sp, nil
}

// NewFromPostings indexes a collection using pre-built postings (a v3
// snapshot's postings block) instead of re-walking every entry; the
// entry walk is the dominant cost of New on a loaded shard. The postings
// must cover exactly this collection — decodePostings has already
// enforced capacity; cardinality statistics are read off the container
// metadata.
func NewFromPostings(col *model.Collection, sp *ShardPostings) (*Store, error) {
	n := col.Len()
	if sp.Patients != n {
		return nil, fmt.Errorf("store: postings cover %d patients, collection has %d", sp.Patients, n)
	}
	base := &postings{
		byCodeValue: make(map[codeKey]*Bitset, len(sp.Codes)),
		byType:      sp.Types,
		bySource:    sp.Sources,
	}
	codes := make([]model.Code, len(sp.Codes))
	for i, cp := range sp.Codes {
		codes[i] = cp.Code
		base.byCodeValue[codeKey{cp.Code.System, cp.Code.Value}] = cp.Bits
	}
	return finishStore(col, base, codes), nil
}
