package store

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// flatBits is the pre-container flat-word Bitset, kept verbatim as the
// differential-testing oracle: every containerized operation must agree
// with it bit for bit.
type flatBits struct {
	words []uint64
	n     int
}

func newFlat(n int) *flatBits { return &flatBits{words: make([]uint64, (n+63)/64), n: n} }

func (f *flatBits) set(i int)      { f.words[i>>6] |= 1 << (uint(i) & 63) }
func (f *flatBits) clear(i int)    { f.words[i>>6] &^= 1 << (uint(i) & 63) }
func (f *flatBits) get(i int) bool { return f.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (f *flatBits) count() int {
	c := 0
	for i := 0; i < f.n; i++ {
		if f.get(i) {
			c++
		}
	}
	return c
}

func (f *flatBits) and(o *flatBits) {
	for i := range f.words {
		f.words[i] &= o.words[i]
	}
}

func (f *flatBits) or(o *flatBits) {
	for i := range f.words {
		f.words[i] |= o.words[i]
	}
}

func (f *flatBits) andNot(o *flatBits) {
	for i := range f.words {
		f.words[i] &^= o.words[i]
	}
}

func (f *flatBits) not() {
	for i := range f.words {
		f.words[i] = ^f.words[i]
	}
	if rem := f.n & 63; rem != 0 && len(f.words) > 0 {
		f.words[len(f.words)-1] &= (1 << uint(rem)) - 1
	}
}

func (f *flatBits) clone() *flatBits {
	c := newFlat(f.n)
	copy(c.words, f.words)
	return c
}

// mustEqual fails unless b and f hold exactly the same set.
func mustEqual(t *testing.T, label string, b *Bitset, f *flatBits) {
	t.Helper()
	if b.Len() != f.n {
		t.Fatalf("%s: capacity %d, oracle %d", label, b.Len(), f.n)
	}
	if got, want := b.Count(), f.count(); got != want {
		t.Fatalf("%s: Count=%d, oracle %d", label, got, want)
	}
	for i := 0; i < f.n; i++ {
		if b.Get(i) != f.get(i) {
			t.Fatalf("%s: bit %d: containerized=%v oracle=%v", label, i, b.Get(i), f.get(i))
		}
	}
	checkInvariants(t, label, b)
}

// checkInvariants verifies the container bookkeeping the public API
// relies on: cached cardinalities are exact, arrays stay sorted and
// within the promotion threshold, runs stay canonical, and no bit lives
// beyond the declared capacity.
func checkInvariants(t *testing.T, label string, b *Bitset) {
	t.Helper()
	if len(b.cs) != (b.n+containerBits-1)/containerBits {
		t.Fatalf("%s: %d containers for capacity %d", label, len(b.cs), b.n)
	}
	for ci := range b.cs {
		c := &b.cs[ci]
		span := b.containerSpan(ci)
		card := 0
		last := -1
		c.iterate(0, func(v int) bool {
			if v <= last {
				t.Fatalf("%s: container %d iterates out of order (%d after %d)", label, ci, v, last)
			}
			last = v
			card++
			return true
		})
		if card != c.card {
			t.Fatalf("%s: container %d cached card %d, actual %d", label, ci, c.card, card)
		}
		if last >= span {
			t.Fatalf("%s: container %d holds bit %d beyond span %d", label, ci, last, span)
		}
		switch c.typ {
		case ctArray:
			if len(c.arr) > arrayMaxCard {
				t.Fatalf("%s: container %d array over threshold: %d", label, ci, len(c.arr))
			}
		case ctRun:
			for i := 1; i < len(c.runs); i++ {
				if c.runs[i].lo <= c.runs[i-1].hi {
					t.Fatalf("%s: container %d has overlapping runs", label, ci)
				}
			}
		}
	}
}

func TestContainerPromotionDemotion(t *testing.T) {
	b := NewBitset(containerBits)
	// Ascending fill stays an array through the threshold...
	for i := 0; i < arrayMaxCard; i++ {
		b.Set(i * 2) // spread out so the run encoding isn't chosen
	}
	if b.cs[0].typ != ctArray {
		t.Fatalf("at threshold: typ=%d, want array", b.cs[0].typ)
	}
	// ...and one more bit promotes to bitmap.
	b.Set(arrayMaxCard * 2)
	if b.cs[0].typ != ctBitmap {
		t.Fatalf("past threshold: typ=%d, want bitmap", b.cs[0].typ)
	}
	if b.Count() != arrayMaxCard+1 {
		t.Fatalf("count after promote: %d", b.Count())
	}
	// Clearing back to the threshold demotes to array.
	b.Clear(arrayMaxCard * 2)
	if b.cs[0].typ != ctArray {
		t.Fatalf("after demote: typ=%d, want array", b.cs[0].typ)
	}
	if b.Count() != arrayMaxCard {
		t.Fatalf("count after demote: %d", b.Count())
	}
	checkInvariants(t, "promote/demote", b)

	// A full complement produces a run container; mutating it falls back
	// to bitmap form.
	full := NewBitset(containerBits).Not()
	if full.cs[0].typ != ctRun || !full.cs[0].isFull() {
		t.Fatalf("Not() of empty: typ=%d card=%d, want full run", full.cs[0].typ, full.cs[0].card)
	}
	full.Clear(12345)
	if full.cs[0].typ != ctBitmap {
		t.Fatalf("mutated run: typ=%d, want bitmap", full.cs[0].typ)
	}
	if full.Count() != containerBits-1 {
		t.Fatalf("mutated run count: %d", full.Count())
	}
}

func TestContainerEmptyAndFullRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, containerBits - 1, containerBits, containerBits + 1, 3*containerBits + 100} {
		b := NewBitset(n)
		if b.Count() != 0 || b.AnyInRange(0, n) {
			t.Fatalf("n=%d: fresh bitset not empty", n)
		}
		b.Not()
		if b.Count() != n {
			t.Fatalf("n=%d: Not() of empty has %d bits", n, b.Count())
		}
		if n > 0 && (!b.Get(0) || !b.Get(n-1)) {
			t.Fatalf("n=%d: full bitset missing endpoints", n)
		}
		if b.CountRange(0, n) != n {
			t.Fatalf("n=%d: CountRange over full = %d", n, b.CountRange(0, n))
		}
		checkInvariants(t, "full", b)
		b.Not()
		if b.Count() != 0 {
			t.Fatalf("n=%d: double complement has %d bits", n, b.Count())
		}
		checkInvariants(t, "double-not", b)
	}
}

func TestContainerWordAndChunkBoundaries(t *testing.T) {
	n := 2*containerBits + 100
	b := NewBitset(n)
	f := newFlat(n)
	edges := []int{0, 1, 62, 63, 64, 65, 127, 128,
		containerBits - 65, containerBits - 64, containerBits - 1, containerBits, containerBits + 1,
		2*containerBits - 1, 2 * containerBits, n - 2, n - 1}
	for _, i := range edges {
		b.Set(i)
		f.set(i)
	}
	mustEqual(t, "edges", b, f)

	for _, lo := range []int{0, 1, 63, 64, containerBits - 1, containerBits, containerBits + 1} {
		for _, hi := range []int{lo, lo + 1, lo + 64, containerBits, 2 * containerBits, n} {
			if hi > n || hi < lo {
				continue
			}
			want := 0
			any := false
			for i := lo; i < hi; i++ {
				if f.get(i) {
					want++
					any = true
				}
			}
			if got := b.CountRange(lo, hi); got != want {
				t.Fatalf("CountRange(%d,%d)=%d, want %d", lo, hi, got, want)
			}
			if got := b.AnyInRange(lo, hi); got != any {
				t.Fatalf("AnyInRange(%d,%d)=%v, want %v", lo, hi, got, any)
			}
		}
	}

	// Slices and offset merges across chunk boundaries.
	for _, lo := range []int{0, 50, containerBits - 3, containerBits + 7} {
		hi := lo + containerBits + 90
		if hi > n {
			hi = n
		}
		s := b.SliceRange(lo, hi)
		for i := lo; i < hi; i++ {
			if s.Get(i-lo) != f.get(i) {
				t.Fatalf("SliceRange(%d,%d): bit %d wrong", lo, hi, i-lo)
			}
		}
		back := NewBitset(n).OrAt(s, lo)
		for i := 0; i < n; i++ {
			want := i >= lo && i < hi && f.get(i)
			if back.Get(i) != want {
				t.Fatalf("OrAt(SliceRange(%d,%d), %d): bit %d wrong", lo, hi, lo, i)
			}
		}
	}
}

func TestContainerKernelMatrix(t *testing.T) {
	// One operand of each physical kind, And/Or/AndNot across the full
	// type × type matrix, checked against the flat oracle.
	n := containerBits
	mk := map[string]func() (*Bitset, *flatBits){
		"empty": func() (*Bitset, *flatBits) { return NewBitset(n), newFlat(n) },
		"array": func() (*Bitset, *flatBits) {
			b, f := NewBitset(n), newFlat(n)
			for i := 0; i < 3000; i++ {
				b.Set(i * 7 % n)
				f.set(i * 7 % n)
			}
			return b, f
		},
		"bitmap": func() (*Bitset, *flatBits) {
			b, f := NewBitset(n), newFlat(n)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				v := r.Intn(n)
				b.Set(v)
				f.set(v)
			}
			return b, f
		},
		"run": func() (*Bitset, *flatBits) {
			b, f := NewBitset(n), newFlat(n)
			for i := 0; i < 200; i++ { // sparse → complement is runs
				b.Set(i * 300)
				f.set(i * 300)
			}
			b.Not()
			f.not()
			return b, f
		},
		"full": func() (*Bitset, *flatBits) {
			b, f := NewBitset(n), newFlat(n)
			b.Not()
			f.not()
			return b, f
		},
	}
	for aName, mkA := range mk {
		for bName, mkB := range mk {
			for _, op := range []string{"and", "or", "andnot"} {
				a, fa := mkA()
				b, fb := mkB()
				switch op {
				case "and":
					a.And(b)
					fa.and(fb)
				case "or":
					a.Or(b)
					fa.or(fb)
				case "andnot":
					a.AndNot(b)
					fa.andNot(fb)
				}
				mustEqual(t, aName+" "+op+" "+bName, a, fa)
			}
		}
	}
}

func TestContainerWireFormats(t *testing.T) {
	n := 2*containerBits + 500
	cases := map[string]func(*Bitset){
		"empty": func(b *Bitset) {},
		"sparse-arrays": func(b *Bitset) {
			for i := 0; i < n; i += 97 {
				b.Set(i)
			}
		},
		"dense-bitmaps": func(b *Bitset) {
			r := rand.New(rand.NewSource(11))
			for i := 0; i < n/2; i++ {
				b.Set(r.Intn(n))
			}
		},
		"runs": func(b *Bitset) { b.Not() },
		"mixed": func(b *Bitset) {
			for i := 0; i < 100; i++ {
				b.Set(i * 11)
			}
			b.setRange(containerBits, 2*containerBits)
			r := rand.New(rand.NewSource(13))
			for i := 0; i < 400; i++ {
				b.Set(2*containerBits + r.Intn(500))
			}
		},
	}
	for name, fill := range cases {
		b := NewBitset(n)
		fill(b)
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var got Bitset
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !got.Equal(b) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		checkInvariants(t, name, &got)
		st := b.ContainerStats()
		if st.WireBytes != len(data) {
			t.Fatalf("%s: ContainerStats.WireBytes=%d, encoded %d", name, st.WireBytes, len(data))
		}
		if st.Cardinality != b.Count() {
			t.Fatalf("%s: ContainerStats.Cardinality=%d, Count %d", name, st.Cardinality, b.Count())
		}
	}

	// The run-heavy case must actually compress.
	full := NewBitset(n).Not()
	data, _ := full.MarshalBinary()
	if len(data) > 64 {
		t.Fatalf("full bitset encodes to %d bytes, want runs", len(data))
	}
}

func TestLegacyWireDecode(t *testing.T) {
	// Payloads written by the flat-word MarshalBinary must still decode.
	n := containerBits + 130
	f := newFlat(n)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		f.set(r.Intn(n))
	}
	legacy := binary.AppendUvarint(nil, uint64(n))
	for _, w := range f.words {
		legacy = binary.LittleEndian.AppendUint64(legacy, w)
	}
	var b Bitset
	if err := b.UnmarshalBinary(legacy); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	mustEqual(t, "legacy", &b, f)

	// Legacy empty bitset: bare uvarint 0, one byte.
	var empty Bitset
	if err := empty.UnmarshalBinary([]byte{0x00}); err != nil {
		t.Fatalf("legacy empty: %v", err)
	}
	if empty.Len() != 0 || empty.Count() != 0 {
		t.Fatalf("legacy empty decoded to n=%d count=%d", empty.Len(), empty.Count())
	}
}

func TestContainerWireHostilePayloads(t *testing.T) {
	good, err := func() ([]byte, error) {
		b := NewBitset(300)
		for i := 0; i < 300; i += 3 {
			b.Set(i)
		}
		return b.MarshalBinary()
	}()
	if err != nil {
		t.Fatal(err)
	}
	le16 := binary.LittleEndian.AppendUint16
	cases := map[string][]byte{
		"empty input":       nil,
		"capacity lie":      append([]byte{0x00}, binary.AppendUvarint(nil, 1<<40)...),
		"truncated":         good[:len(good)-3],
		"trailing garbage":  append(append([]byte{}, good...), 0xFF),
		"unknown container": append(binary.AppendUvarint([]byte{0x00}, 70000), 0x07, 0x07),
		"array unsorted": append(
			binary.AppendUvarint(append(binary.AppendUvarint([]byte{0x00}, 70000), wireArray), 2),
			5, 0, 3, 0),
		"array beyond span": append(
			binary.AppendUvarint(append(binary.AppendUvarint([]byte{0x00}, 100), wireArray), 1),
			200, 0),
		"run inverted": le16(le16(
			binary.AppendUvarint(append(binary.AppendUvarint([]byte{0x00}, 70000), wireRun), 1),
			9), 3),
		"run overlap": le16(le16(le16(le16(
			binary.AppendUvarint(append(binary.AppendUvarint([]byte{0x00}, 70000), wireRun), 2),
			1), 10), 5), 20),
		"run beyond span": le16(le16(
			binary.AppendUvarint(append(binary.AppendUvarint([]byte{0x00}, 100), wireRun), 1),
			0), 150),
		"bitmap short": append(binary.AppendUvarint([]byte{0x00}, 70000), wireBitmap, 1, 2, 3),
	}
	// Bitmap with bits beyond the capacity span.
	bm := append(binary.AppendUvarint([]byte{0x00}, 10), wireBitmap)
	pay := make([]byte, bitmapWireBytes)
	pay[100] = 0xFF // bits ~800, capacity 10
	cases["bitmap beyond span"] = append(bm, pay...)

	for name, data := range cases {
		var b Bitset
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Control: the good payload decodes.
	var b Bitset
	if err := b.UnmarshalBinary(good); err != nil {
		t.Fatalf("control payload rejected: %v", err)
	}
}

// FuzzContainerOps drives random operation sequences through the
// containerized Bitset and the flat-word oracle in lockstep; any
// divergence in counts, membership, slicing, merging, or wire round
// trips is a kernel bug.
func FuzzContainerOps(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, uint32(100))
	f.Add([]byte{0x05, 0x04, 0x03, 0x02, 0x01, 0x00, 0xFF, 0xFE}, uint32(containerBits))
	f.Add([]byte{0xAA, 0x55, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60}, uint32(2*containerBits+77))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint32) {
		n := int(seed)%(2*containerBits+1000) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		a, fa := NewBitset(n), newFlat(n)
		b, fb := NewBitset(n), newFlat(n)
		for _, op := range ops {
			switch op % 10 {
			case 0, 1: // grow a (two weights: sets dominate)
				for k := 0; k < 50; k++ {
					v := r.Intn(n)
					a.Set(v)
					fa.set(v)
				}
			case 2:
				for k := 0; k < 50; k++ {
					v := r.Intn(n)
					b.Set(v)
					fb.set(v)
				}
			case 3:
				v := r.Intn(n)
				a.Clear(v)
				fa.clear(v)
			case 4:
				a.And(b)
				fa.and(fb)
			case 5:
				a.Or(b)
				fa.or(fb)
			case 6:
				a.AndNot(b)
				fa.andNot(fb)
			case 7:
				a.Not()
				fa.not()
			case 8: // wire round trip replaces a
				data, err := a.MarshalBinary()
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var back Bitset
				if err := back.UnmarshalBinary(data); err != nil {
					t.Fatalf("unmarshal own encoding: %v", err)
				}
				if !back.Equal(a) {
					t.Fatal("wire round trip changed contents")
				}
				a = &back
			case 9: // slice out of a, merge back at an offset
				lo := r.Intn(n)
				hi := lo + r.Intn(n-lo) + 1
				s := a.SliceRange(lo, hi)
				off := r.Intn(n - (hi - lo) + 1)
				merged := NewBitset(n).OrAt(s, off)
				for i := 0; i < hi-lo; i++ {
					if s.Get(i) != fa.get(lo+i) {
						t.Fatalf("slice [%d,%d) bit %d diverges", lo, hi, i)
					}
					if merged.Get(off+i) != fa.get(lo+i) {
						t.Fatalf("OrAt off=%d bit %d diverges", off, i)
					}
				}
			}
			if a.Count() != fa.count() || b.Count() != fb.count() {
				t.Fatalf("count diverged after op %d: a=%d/%d b=%d/%d",
					op%10, a.Count(), fa.count(), b.Count(), fb.count())
			}
		}
		mustEqual(t, "final a", a, fa)
		mustEqual(t, "final b", b, fb)
	})
}
