package store

// History payloads on the wire. The fetch-histories RPC ships runs of
// histories between shard servers and coordinators in the same varint
// segment encoding the sharded snapshot uses (segment.go): the structure
// is fixed, codes are dictionary-compressed, and the decoder is already
// hardened against hostile bytes — every count and length is validated
// against the bytes remaining before any allocation, so a malicious or
// corrupt peer produces an error, never a panic or a memory balloon.
//
// A crc32c (Castagnoli, the snapshot checksum) travels with each payload.
// It guards the transport against corruption; the defensive decoder is
// what guards against an actively hostile writer, exactly as in the
// snapshot loader.

import (
	"fmt"
	"hash/crc32"

	"pastas/internal/model"
)

// EncodeHistories serializes a run of histories into one segment-codec
// payload plus its crc32c. Encoding is read-only on the histories (entries
// go through SortedEntries), so live collections can be encoded while
// queries are in flight.
func EncodeHistories(hs []*model.History) (payload []byte, checksum uint32) {
	payload = encodeSegment(hs)
	return payload, crc32.Checksum(payload, crcTable)
}

// DecodeHistories parses a payload produced by EncodeHistories, verifying
// the checksum first and then the payload's internal consistency against
// the promised history count. All validation errors are returned; the
// decoder never panics on hostile input.
func DecodeHistories(payload []byte, checksum uint32, wantHist int) ([]*model.History, error) {
	if got := crc32.Checksum(payload, crcTable); got != checksum {
		return nil, fmt.Errorf("store: history payload checksum mismatch: got %08x, want %08x", got, checksum)
	}
	hs, _, err := decodeSegment(payload, wantHist)
	if err != nil {
		return nil, fmt.Errorf("store: history payload: %w", err)
	}
	return hs, nil
}
