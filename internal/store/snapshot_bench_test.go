package store

import (
	"bytes"
	"fmt"
	"testing"

	"pastas/internal/model"
)

// benchCollection hand-builds a deterministic collection (no synth
// dependency in the hot loop) sized like a mid-size extract: n patients,
// ~12 entries each.
func benchCollection(n int) *model.Collection {
	base := model.Date(2010, 1, 1)
	codes := []model.Code{
		{System: "ICPC2", Value: "T90"}, {System: "ICPC2", Value: "K86"},
		{System: "ICD10", Value: "E11.9"}, {System: "ATC", Value: "A10BA02"},
	}
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, 1, 1)})
		for j := 0; j < 12; j++ {
			e := model.Entry{
				ID: uint64(i*100 + j), Kind: model.Point,
				Start: base.AddDays(j * 30), End: base.AddDays(j * 30),
				Source: model.SourceGP, Type: model.TypeContact,
			}
			if j%3 == 0 {
				e.Type = model.TypeDiagnosis
				e.Code = codes[(i+j)%len(codes)]
			}
			h.Add(e)
		}
		hs[i] = h
	}
	return model.MustCollection(hs...)
}

// BenchmarkSnapshotRoundTrip pins the snapshot persistence numbers on the
// 5k fixture: the legacy single-gob baseline (save ~98 MB/s, load
// ~69 MB/s when the sharded format landed) against the sharded v2 format
// at 1, 4 and 16 shards. The sharded wins come from two places: the
// hand-rolled varint segment codec skips gob's per-value reflection
// (which is why even shards=1 beats the baseline wall-clock), and
// independent segments decode on a worker pool (which is what scales
// with cores). b.SetBytes uses each variant's own on-disk size, so MB/s
// throughputs are honest per format — but the sharded file is also ~3×
// smaller than the gob one, so MB/s understates the win; the
// format-independent patients/s metric (and time/op) is what compares
// the same logical collection across variants.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	col := benchCollection(5000)
	patientsPerSec := func(b *testing.B) {
		b.Helper()
		secPerOp := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(col.Len())/secPerOp, "patients/s")
	}

	b.Run("save/legacy-v1", func(b *testing.B) {
		var buf bytes.Buffer
		if err := Save(&buf, col); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := Save(&buf, col); err != nil {
				b.Fatal(err)
			}
		}
		patientsPerSec(b)
	})
	b.Run("load/legacy-v1", func(b *testing.B) {
		var snap bytes.Buffer
		if err := Save(&snap, col); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(snap.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := Load(bytes.NewReader(snap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != col.Len() {
				b.Fatal("round trip lost patients")
			}
		}
		patientsPerSec(b)
	})

	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("save/shards=%d", shards), func(b *testing.B) {
			var buf bytes.Buffer
			if _, err := SaveSharded(&buf, col, shards); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := SaveSharded(&buf, col, shards); err != nil {
					b.Fatal(err)
				}
			}
			patientsPerSec(b)
		})
		b.Run(fmt.Sprintf("load/shards=%d", shards), func(b *testing.B) {
			var snap bytes.Buffer
			if _, err := SaveSharded(&snap, col, shards); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(snap.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := LoadSharded(bytes.NewReader(snap.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				if got.Len() != col.Len() {
					b.Fatal("round trip lost patients")
				}
			}
			patientsPerSec(b)
		})
	}
}
