package store

import (
	"bytes"
	"testing"

	"pastas/internal/model"
)

// benchCollection hand-builds a deterministic collection (no synth
// dependency in the hot loop) sized like a mid-size extract: n patients,
// ~12 entries each.
func benchCollection(n int) *model.Collection {
	base := model.Date(2010, 1, 1)
	codes := []model.Code{
		{System: "ICPC2", Value: "T90"}, {System: "ICPC2", Value: "K86"},
		{System: "ICD10", Value: "E11.9"}, {System: "ATC", Value: "A10BA02"},
	}
	hs := make([]*model.History, n)
	for i := range hs {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, 1, 1)})
		for j := 0; j < 12; j++ {
			e := model.Entry{
				ID: uint64(i*100 + j), Kind: model.Point,
				Start: base.AddDays(j * 30), End: base.AddDays(j * 30),
				Source: model.SourceGP, Type: model.TypeContact,
			}
			if j%3 == 0 {
				e.Type = model.TypeDiagnosis
				e.Code = codes[(i+j)%len(codes)]
			}
			h.Add(e)
		}
		hs[i] = h
	}
	return model.MustCollection(hs...)
}

// BenchmarkSnapshotRoundTrip is the baseline the planned snapshot-per-shard
// persistence will be measured against: gob encode and decode of an
// integrated collection through the buffered snapshot path.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	col := benchCollection(5000)
	var buf bytes.Buffer
	if err := Save(&buf, col); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.Run("save", func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := Save(&buf, col); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		var snap bytes.Buffer
		if err := Save(&snap, col); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(snap.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := Load(bytes.NewReader(snap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != col.Len() {
				b.Fatal("round trip lost patients")
			}
		}
	})
}
