package store

import (
	"math/rand"
	"testing"
)

func TestOrAtMatchesManualMerge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(300)
		global := NewBitset(n)
		want := NewBitset(n)
		// Split [0, n) into contiguous chunks at arbitrary (non-aligned)
		// offsets, as the engine's shards do.
		for off := 0; off < n; {
			size := 1 + r.Intn(n-off)
			local := NewBitset(size)
			for i := 0; i < size; i++ {
				if r.Intn(3) == 0 {
					local.Set(i)
					want.Set(off + i)
				}
			}
			global.OrAt(local, off)
			off += size
		}
		if !global.Equal(want) {
			t.Fatalf("trial %d: OrAt merge diverges from per-bit merge", trial)
		}
	}
}

func TestOrAtEmptyOther(t *testing.T) {
	b := NewBitset(10)
	b.Set(3)
	if got := b.OrAt(NewBitset(0), 5); got.Count() != 1 {
		t.Errorf("OrAt with empty bitset changed contents: %d", got.Count())
	}
}

func TestEqual(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(64)
	if a.Equal(b) {
		t.Error("unequal bitsets reported equal")
	}
	b.Set(64)
	if !a.Equal(b) {
		t.Error("equal bitsets reported unequal")
	}
	if a.Equal(NewBitset(101)) {
		t.Error("different capacities reported equal")
	}
}

func TestAnyInRange(t *testing.T) {
	b := NewBitset(200)
	b.Set(130)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 200, true},
		{0, 130, false},
		{130, 131, true},
		{131, 200, false},
		{64, 128, false},
		{128, 192, true},
		{5, 5, false},
	}
	for _, c := range cases {
		if got := b.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}
