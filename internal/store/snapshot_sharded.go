package store

// Sharded snapshot persistence (format v2). The collection is split on
// the same ordinal-contiguous boundaries the engine shards on, each chunk
// encoded as an independently decodable segment (segment.go), and the
// file leads with a fixed header so version and integrity are checked
// before a single payload byte is decoded:
//
//	offset  field
//	0       magic "PASTSNP2" (8 bytes)
//	8       version  uint32 (= 2)
//	12      shards   uint32
//	16      patients uint64 (total)
//	24      entries  uint64 (total)
//	32      shard table, one row per shard:
//	          offset   uint64 (from the end of the header)
//	          bytes    uint64
//	          patients uint64
//	          entries  uint64
//	          crc32c   uint32 (Castagnoli, over the segment bytes)
//	…       shard segments, back to back
//
// Save encodes segments concurrently; Load reads the segments off the
// stream sequentially (it only needs an io.Reader) but decodes them on a
// worker pool and merges in fixed shard order, so the result is
// deterministic regardless of which decode finishes first.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"

	"pastas/internal/model"
)

// snapshotMagic leads every sharded snapshot; legacy v1 gob streams can
// never start with it (gob's first byte is a small message length).
const snapshotMagic = "PASTSNP2"

// snapshotVersionSharded is the original sharded header version: history
// segments only. Still accepted on load.
const snapshotVersionSharded = 2

// snapshotVersionPostings adds the containerized postings block: a
// postings table after the shard table (size, checksum, and container
// histogram per shard) and one postings segment per shard after the
// history segments (see snapshot_postings.go). Save writes this version;
// history segments are byte-identical to v2.
const snapshotVersionPostings = 3

// snapshotVersionIngest records live-ingest provenance: a 32-byte
// extension after the fixed header (generation, pending delta entries and
// patients, compaction runs) describing the store revision the snapshot
// was taken from. The payload is unchanged from v3 — histories are saved
// fully merged, base ∪ delta — so the counters are provenance, not
// reconstruction state: a reload starts a fresh generation 0 over the
// merged data. Save writes this version only for stores that have
// actually ingested (generation > 0); pristine batch-built stores keep
// writing v3.
const snapshotVersionIngest = 4

// snapshotIngestExt is the v4 header extension size.
const snapshotIngestExt = 8 + 8 + 8 + 8

// maxSnapshotShards bounds the shard count a header may claim, so a
// corrupt or hostile header cannot demand a gigantic shard table.
const maxSnapshotShards = 1 << 16

const (
	snapshotHeaderFixed = 8 + 4 + 4 + 8 + 8     // magic, version, shards, patients, entries
	snapshotShardRow    = 8 + 8 + 8 + 8 + 4     // offset, bytes, patients, entries, crc
	snapshotPostingsRow = 8 + 4 + 4 + 4 + 4 + 4 // bytes, crc, lists, arrays, bitmaps, runs
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ShardInfo describes one segment of a sharded snapshot.
type ShardInfo struct {
	Shard    int    `json:"shard"`
	Offset   int64  `json:"offset"` // from the end of the header
	Bytes    int64  `json:"bytes"`
	Patients int    `json:"patients"`
	Entries  int    `json:"entries"`
	Checksum uint32 `json:"checksum"`
}

// SnapshotInfo is the provenance of a decoded (or inspected) snapshot.
type SnapshotInfo struct {
	Version  int  `json:"version"`
	Legacy   bool `json:"legacy"` // true for v1 single-gob snapshots
	Shards   int  `json:"shards"`
	Patients int  `json:"patients"`
	Entries  int  `json:"entries"`
	// Bytes is the total snapshot size (header + segments); 0 for legacy
	// snapshots, whose gob stream carries no length.
	Bytes       int64       `json:"bytes"`
	ShardDetail []ShardInfo `json:"shard_detail,omitempty"`
	// Postings describes the per-shard containerized postings segments
	// (v3+ snapshots only): sizes, checksums, and container histograms.
	Postings []PostingsInfo `json:"postings,omitempty"`
	// Live-ingest provenance (v4 snapshots only): the generation of the
	// store revision the snapshot was taken from, the delta still pending
	// compaction at that moment, and how many compactions had run. The
	// snapshot payload is always fully merged; these are informational.
	Generation    uint64 `json:"generation,omitempty"`
	DeltaEntries  int    `json:"delta_entries,omitempty"`
	DeltaPatients int    `json:"delta_patients,omitempty"`
	Compactions   uint64 `json:"compactions,omitempty"`
	// Materialized cohorts persisted with the snapshot (v5 only): record
	// count, segment size, and the segment's crc32c.
	Cohorts        int    `json:"cohorts,omitempty"`
	CohortBytes    int64  `json:"cohort_bytes,omitempty"`
	CohortChecksum uint32 `json:"cohort_checksum,omitempty"`
}

// headerLen returns the full header size: fixed part, shard table, and —
// for snapshots carrying a postings block — the postings table. Segment
// offsets are relative to this point.
func (si *SnapshotInfo) headerLen() int64 {
	l := int64(snapshotHeaderFixed) + int64(si.Shards)*snapshotShardRow
	if si.Version >= snapshotVersionIngest {
		l += snapshotIngestExt
	}
	if si.Version >= snapshotVersionCohorts {
		l += snapshotCohortExt
	}
	if si.Version >= snapshotVersionPostings {
		l += int64(si.Shards) * snapshotPostingsRow
	}
	return l
}

// Format names the wire format for display.
func (si *SnapshotInfo) Format() string {
	if si.Legacy {
		return "legacy-v1"
	}
	return fmt.Sprintf("sharded-v%d", si.Version)
}

// shardBounds splits n patients into the engine's ordinal-contiguous
// chunks: ceil(n/shards) per shard, clamped to [1, min(n,
// maxSnapshotShards)] — the upper clamp guarantees Save can never write
// a shard count Load refuses. A zero-patient collection still gets one
// (empty) shard so the header stays regular.
func shardBounds(n, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if shards > maxSnapshotShards {
		shards = maxSnapshotShards
	}
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	chunk := (n + shards - 1) / shards
	var bounds [][2]int
	for off := 0; off < n; off += chunk {
		bounds = append(bounds, [2]int{off, min(off+chunk, n)})
	}
	return bounds
}

// SaveSharded writes the collection as a sharded v3 snapshot with the
// given shard count (clamped to [1, patients]): history segments exactly
// as v2 wrote them, plus one containerized postings segment per shard.
// Segments are encoded concurrently on a worker pool; like Save, it is
// read-only on the collection. Returns the layout it wrote.
func SaveSharded(w io.Writer, col *model.Collection, shards int) (*SnapshotInfo, error) {
	return saveSharded(w, col, shards, nil, nil)
}

// SaveShardedStore snapshots a store: the current revision is pinned
// once, its histories (fully merged, base ∪ delta) are saved like
// SaveSharded, and — when the store has ingested (generation > 0) — the
// header is written as v4 with the revision's ingest provenance. A
// pristine store produces a byte-identical v3 snapshot to
// SaveSharded(w, s.Collection(), shards). Safe while appends and queries
// run: the pinned revision is immutable.
func SaveShardedStore(w io.Writer, s *Store, shards int) (*SnapshotInfo, error) {
	r := s.loadRev()
	col := r.collection()
	if r.gen == 0 {
		return saveSharded(w, col, shards, nil, nil)
	}
	return saveSharded(w, col, shards, &ingestProvenance{
		generation:    r.gen,
		deltaEntries:  r.deltaEntries,
		deltaPatients: r.deltaPatients,
		compactions:   r.compaction.Runs,
	}, nil)
}

// ingestProvenance is the v4 header extension's content.
type ingestProvenance struct {
	generation    uint64
	deltaEntries  int
	deltaPatients int
	compactions   uint64
}

func saveSharded(w io.Writer, col *model.Collection, shards int, prov *ingestProvenance, cohorts []CohortRecord) (*SnapshotInfo, error) {
	hs := col.Histories()
	if len(cohorts) > maxSnapshotCohorts {
		return nil, fmt.Errorf("store: save snapshot: %d cohorts exceeds limit %d", len(cohorts), maxSnapshotCohorts)
	}
	for _, c := range cohorts {
		if c.Bits == nil || c.Bits.Len() != len(hs) {
			return nil, fmt.Errorf("store: save snapshot: cohort %q bitset does not cover the %d-patient population", c.Name, len(hs))
		}
	}
	bounds := shardBounds(len(hs), shards)
	segs := make([][]byte, len(bounds))
	postSegs := make([][]byte, len(bounds))
	postInfos := make([]PostingsInfo, len(bounds))
	postErrs := make([]error, len(bounds))

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, b := range bounds {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			segs[i] = encodeSegment(hs[lo:hi])
			seg, pi, err := encodePostings(buildShardPostings(hs[lo:hi]))
			if err != nil {
				postErrs[i] = err
				return
			}
			pi.Shard = i
			pi.Checksum = crc32.Checksum(seg, crcTable)
			postSegs[i], postInfos[i] = seg, pi
		}(i, b[0], b[1])
	}
	wg.Wait()
	for _, err := range postErrs {
		if err != nil {
			return nil, fmt.Errorf("store: save snapshot: postings: %w", err)
		}
	}

	// Version selection preserves byte-identity for cohortless saves: a
	// pristine store stays v3, an ingested one v4, and only a snapshot
	// actually carrying cohorts is promoted to v5 (whose header always
	// includes the ingest extension, zeroed for a pristine store).
	version := uint32(snapshotVersionPostings)
	if prov != nil {
		version = snapshotVersionIngest
	}
	var cohortSeg []byte
	if len(cohorts) > 0 {
		version = snapshotVersionCohorts
		var err error
		if cohortSeg, err = encodeCohortSegment(cohorts); err != nil {
			return nil, fmt.Errorf("store: save snapshot: %w", err)
		}
	}
	info := &SnapshotInfo{
		Version:  int(version),
		Shards:   len(bounds),
		Patients: len(hs),
		Entries:  col.TotalEntries(),
		Postings: postInfos,
	}
	header := make([]byte, 0, snapshotHeaderFixed+snapshotIngestExt+snapshotCohortExt+len(bounds)*(snapshotShardRow+snapshotPostingsRow))
	header = append(header, snapshotMagic...)
	header = binary.BigEndian.AppendUint32(header, version)
	header = binary.BigEndian.AppendUint32(header, uint32(len(bounds)))
	header = binary.BigEndian.AppendUint64(header, uint64(info.Patients))
	header = binary.BigEndian.AppendUint64(header, uint64(info.Entries))
	if version >= snapshotVersionIngest {
		p := ingestProvenance{}
		if prov != nil {
			p = *prov
			info.Generation = p.generation
			info.DeltaEntries = p.deltaEntries
			info.DeltaPatients = p.deltaPatients
			info.Compactions = p.compactions
		}
		header = binary.BigEndian.AppendUint64(header, p.generation)
		header = binary.BigEndian.AppendUint64(header, uint64(p.deltaEntries))
		header = binary.BigEndian.AppendUint64(header, uint64(p.deltaPatients))
		header = binary.BigEndian.AppendUint64(header, p.compactions)
	}
	if version >= snapshotVersionCohorts {
		info.Cohorts = len(cohorts)
		info.CohortBytes = int64(len(cohortSeg))
		info.CohortChecksum = crc32.Checksum(cohortSeg, crcTable)
		header = binary.BigEndian.AppendUint32(header, uint32(info.Cohorts))
		header = binary.BigEndian.AppendUint64(header, uint64(info.CohortBytes))
		header = binary.BigEndian.AppendUint32(header, info.CohortChecksum)
	}
	offset := int64(0)
	for i, b := range bounds {
		entries := 0
		for _, h := range hs[b[0]:b[1]] {
			entries += h.Len()
		}
		si := ShardInfo{
			Shard:    i,
			Offset:   offset,
			Bytes:    int64(len(segs[i])),
			Patients: b[1] - b[0],
			Entries:  entries,
			Checksum: crc32.Checksum(segs[i], crcTable),
		}
		info.ShardDetail = append(info.ShardDetail, si)
		header = binary.BigEndian.AppendUint64(header, uint64(si.Offset))
		header = binary.BigEndian.AppendUint64(header, uint64(si.Bytes))
		header = binary.BigEndian.AppendUint64(header, uint64(si.Patients))
		header = binary.BigEndian.AppendUint64(header, uint64(si.Entries))
		header = binary.BigEndian.AppendUint32(header, si.Checksum)
		offset += si.Bytes
	}
	postBytes := int64(0)
	for _, pi := range postInfos {
		header = binary.BigEndian.AppendUint64(header, uint64(pi.Bytes))
		header = binary.BigEndian.AppendUint32(header, pi.Checksum)
		header = binary.BigEndian.AppendUint32(header, uint32(pi.Lists))
		header = binary.BigEndian.AppendUint32(header, uint32(pi.Arrays))
		header = binary.BigEndian.AppendUint32(header, uint32(pi.Bitmaps))
		header = binary.BigEndian.AppendUint32(header, uint32(pi.Runs))
		postBytes += pi.Bytes
	}
	info.Bytes = int64(len(header)) + offset + postBytes + int64(len(cohortSeg))

	if _, err := w.Write(header); err != nil {
		return nil, fmt.Errorf("store: save snapshot: %w", err)
	}
	for _, seg := range segs {
		if _, err := w.Write(seg); err != nil {
			return nil, fmt.Errorf("store: save snapshot: %w", err)
		}
	}
	for _, seg := range postSegs {
		if _, err := w.Write(seg); err != nil {
			return nil, fmt.Errorf("store: save snapshot: %w", err)
		}
	}
	if len(cohortSeg) > 0 {
		if _, err := w.Write(cohortSeg); err != nil {
			return nil, fmt.Errorf("store: save snapshot: %w", err)
		}
	}
	return info, nil
}

// LoadSharded reads a sharded v2 snapshot. The header is validated first
// — magic, version, shard count, table consistency — so an incompatible
// file errors before any payload decode; then segments are checksummed
// and decoded concurrently and merged in shard order.
func LoadSharded(r io.Reader) (*model.Collection, *SnapshotInfo, error) {
	return loadSharded(bufio.NewReaderSize(r, snapshotBufSize))
}

// readHeader reads and validates the fixed header and shard table.
func readHeader(r io.Reader) (*SnapshotInfo, error) {
	fixed := make([]byte, snapshotHeaderFixed)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, fmt.Errorf("store: load snapshot: header: %w", err)
	}
	if string(fixed[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: load snapshot: bad magic %q", fixed[:len(snapshotMagic)])
	}
	version := binary.BigEndian.Uint32(fixed[8:])
	if version < snapshotVersionSharded || version > snapshotVersionCohorts {
		return nil, fmt.Errorf("store: load snapshot: unsupported version %d", version)
	}
	shards := binary.BigEndian.Uint32(fixed[12:])
	if shards == 0 {
		return nil, fmt.Errorf("store: load snapshot: shard count 0")
	}
	if shards > maxSnapshotShards {
		return nil, fmt.Errorf("store: load snapshot: shard count %d exceeds limit %d", shards, maxSnapshotShards)
	}
	patients := binary.BigEndian.Uint64(fixed[16:])
	entries := binary.BigEndian.Uint64(fixed[24:])

	var prov ingestProvenance
	if version >= snapshotVersionIngest {
		ext := make([]byte, snapshotIngestExt)
		if _, err := io.ReadFull(r, ext); err != nil {
			return nil, fmt.Errorf("store: load snapshot: ingest header: %w", err)
		}
		prov.generation = binary.BigEndian.Uint64(ext[0:])
		de := binary.BigEndian.Uint64(ext[8:])
		dp := binary.BigEndian.Uint64(ext[16:])
		prov.compactions = binary.BigEndian.Uint64(ext[24:])
		if de > entries || dp > patients {
			return nil, fmt.Errorf("store: load snapshot: ingest header claims delta %d/%d larger than totals %d/%d",
				de, dp, entries, patients)
		}
		prov.deltaEntries = int(de)
		prov.deltaPatients = int(dp)
	}

	var cohortCount uint32
	var cohortBytes uint64
	var cohortCRC uint32
	if version >= snapshotVersionCohorts {
		ext := make([]byte, snapshotCohortExt)
		if _, err := io.ReadFull(r, ext); err != nil {
			return nil, fmt.Errorf("store: load snapshot: cohort header: %w", err)
		}
		cohortCount = binary.BigEndian.Uint32(ext[0:])
		cohortBytes = binary.BigEndian.Uint64(ext[4:])
		cohortCRC = binary.BigEndian.Uint32(ext[12:])
		if cohortCount > maxSnapshotCohorts {
			return nil, fmt.Errorf("store: load snapshot: cohort count %d exceeds limit %d", cohortCount, maxSnapshotCohorts)
		}
		if (cohortCount == 0) != (cohortBytes == 0) {
			return nil, fmt.Errorf("store: load snapshot: cohort header claims %d cohorts in %d bytes", cohortCount, cohortBytes)
		}
	}

	table := make([]byte, int(shards)*snapshotShardRow)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("store: load snapshot: shard table: %w", err)
	}
	info := &SnapshotInfo{
		Version:       int(version),
		Shards:        int(shards),
		Patients:      int(patients),
		Entries:       int(entries),
		Generation:    prov.generation,
		DeltaEntries:  prov.deltaEntries,
		DeltaPatients: prov.deltaPatients,
		Compactions:   prov.compactions,

		Cohorts:        int(cohortCount),
		CohortBytes:    int64(cohortBytes),
		CohortChecksum: cohortCRC,
	}
	// maxPayload caps the summed segment sizes so info.Bytes (header +
	// payload) can never overflow int64 — a hostile shard table claiming
	// 2^63-scale segments must error here, not wrap negative and slip
	// past the size validation into a giant allocation.
	headerLen := info.headerLen()
	maxPayload := uint64(1<<63-1) - uint64(headerLen)
	sumPatients, sumEntries, offset := uint64(0), uint64(0), uint64(0)
	for i := 0; i < int(shards); i++ {
		row := table[i*snapshotShardRow:]
		si := ShardInfo{
			Shard:    i,
			Offset:   int64(binary.BigEndian.Uint64(row[0:])),
			Bytes:    int64(binary.BigEndian.Uint64(row[8:])),
			Patients: int(binary.BigEndian.Uint64(row[16:])),
			Entries:  int(binary.BigEndian.Uint64(row[24:])),
			Checksum: binary.BigEndian.Uint32(row[32:]),
		}
		if uint64(si.Offset) != offset {
			return nil, fmt.Errorf("store: load snapshot: shard %d: offset %d, want %d (segments must be contiguous)", i, si.Offset, offset)
		}
		if si.Bytes < 0 || si.Patients < 0 || si.Entries < 0 {
			return nil, fmt.Errorf("store: load snapshot: shard %d: negative size", i)
		}
		if uint64(si.Bytes) > maxPayload-offset {
			return nil, fmt.Errorf("store: load snapshot: shard %d: segment sizes overflow", i)
		}
		offset += uint64(si.Bytes)
		sumPatients += uint64(si.Patients)
		sumEntries += uint64(si.Entries)
		info.ShardDetail = append(info.ShardDetail, si)
	}
	if sumPatients != patients {
		return nil, fmt.Errorf("store: load snapshot: shard table sums to %d patients, header says %d", sumPatients, patients)
	}
	if sumEntries != entries {
		return nil, fmt.Errorf("store: load snapshot: shard table sums to %d entries, header says %d", sumEntries, entries)
	}
	if version >= snapshotVersionPostings {
		ptable := make([]byte, int(shards)*snapshotPostingsRow)
		if _, err := io.ReadFull(r, ptable); err != nil {
			return nil, fmt.Errorf("store: load snapshot: postings table: %w", err)
		}
		for i := 0; i < int(shards); i++ {
			row := ptable[i*snapshotPostingsRow:]
			pi := PostingsInfo{
				Shard:    i,
				Bytes:    int64(binary.BigEndian.Uint64(row[0:])),
				Checksum: binary.BigEndian.Uint32(row[8:]),
				Lists:    int(binary.BigEndian.Uint32(row[12:])),
				Arrays:   int(binary.BigEndian.Uint32(row[16:])),
				Bitmaps:  int(binary.BigEndian.Uint32(row[20:])),
				Runs:     int(binary.BigEndian.Uint32(row[24:])),
			}
			if pi.Bytes < 0 {
				return nil, fmt.Errorf("store: load snapshot: postings %d: negative size", i)
			}
			if uint64(pi.Bytes) > maxPayload-offset {
				return nil, fmt.Errorf("store: load snapshot: postings %d: segment sizes overflow", i)
			}
			offset += uint64(pi.Bytes)
			info.Postings = append(info.Postings, pi)
		}
	}
	if cohortBytes > maxPayload-offset {
		return nil, fmt.Errorf("store: load snapshot: cohort segment size overflows")
	}
	offset += cohortBytes
	info.Bytes = headerLen + int64(offset)
	return info, nil
}

// loadSharded reads header + segments off the (buffered) stream. Segment
// bytes are read sequentially — io.Reader has no random access — but
// each segment's checksum + decode is handed to the worker pool the
// moment its bytes arrive, so decode overlaps both the remaining reads
// and the other shards' decodes.
func loadSharded(r io.Reader) (*model.Collection, *SnapshotInfo, error) {
	col, _, info, err := loadShardedFull(r)
	return col, info, err
}

// loadShardedFull is loadSharded plus the decoded cohort records. The
// cohort segment is always drained, checksummed, and parsed when present
// — even callers that discard cohorts get the whole-file integrity
// check.
func loadShardedFull(r io.Reader) (*model.Collection, []CohortRecord, *SnapshotInfo, error) {
	info, err := readHeader(r)
	if err != nil {
		return nil, nil, nil, err
	}
	type result struct {
		hs      []*model.History
		entries int
		err     error
	}
	results := make([]result, info.Shards)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < info.Shards; i++ {
		si := info.ShardDetail[i]
		// CopyN grows the buffer only as bytes actually arrive, so a
		// crafted length plus a short stream errors without ballooning.
		var buf bytes.Buffer
		buf.Grow(int(min(si.Bytes, 4<<20)))
		if _, err := io.CopyN(&buf, r, si.Bytes); err != nil {
			wg.Wait()
			return nil, nil, nil, fmt.Errorf("store: load snapshot: shard %d: read %d bytes: %w", i, si.Bytes, err)
		}
		wg.Add(1)
		go func(i int, si ShardInfo, seg []byte) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if got := crc32.Checksum(seg, crcTable); got != si.Checksum {
				results[i].err = fmt.Errorf("store: load snapshot: shard %d: checksum mismatch (got %08x, want %08x)", i, got, si.Checksum)
				return
			}
			hs, entries, err := decodeSegment(seg, si.Patients)
			if err != nil {
				results[i].err = fmt.Errorf("store: load snapshot: shard %d: %w", i, err)
				return
			}
			if entries != si.Entries {
				results[i].err = fmt.Errorf("store: load snapshot: shard %d: %d entries, header promised %d", i, entries, si.Entries)
				return
			}
			results[i].hs, results[i].entries = hs, entries
		}(i, si, buf.Bytes())
	}
	// Drain and checksum the postings segments (v3): the streaming loader
	// rebuilds its indexes from the merged collection, but the stream's
	// integrity contract — every byte the header promises is present and
	// checksummed — must hold for the whole file, not just the histories.
	for i := 0; i < len(info.Postings); i++ {
		pi := info.Postings[i]
		var buf bytes.Buffer
		buf.Grow(int(min(pi.Bytes, 4<<20)))
		if _, err := io.CopyN(&buf, r, pi.Bytes); err != nil {
			wg.Wait()
			return nil, nil, nil, fmt.Errorf("store: load snapshot: postings %d: read %d bytes: %w", i, pi.Bytes, err)
		}
		if got := crc32.Checksum(buf.Bytes(), crcTable); got != pi.Checksum {
			wg.Wait()
			return nil, nil, nil, fmt.Errorf("store: load snapshot: postings %d: checksum mismatch (got %08x, want %08x)", i, got, pi.Checksum)
		}
	}
	// The cohort segment (v5) trails the postings; drain, verify, and
	// decode it whether or not the caller wants the records.
	cohorts, cohortErr := readCohortSegment(r, info)
	if cohortErr != nil {
		wg.Wait()
		return nil, nil, nil, cohortErr
	}
	wg.Wait()

	// Surface decode failures before sizing the merge: the header's
	// patient total is untrusted, so the merge slice is allocated from
	// what the segments actually decoded to (per-shard counts were
	// already verified against the header), never from the header alone
	// — a hostile patient count must error, not OOM.
	total := 0
	for i := range results {
		if results[i].err != nil {
			return nil, nil, nil, results[i].err
		}
		total += len(results[i].hs)
	}
	// Deterministic fixed-order merge: shard 0's histories first, then
	// shard 1's, … — exactly the ordinal order they were saved in.
	all := make([]*model.History, 0, total)
	for i := range results {
		for _, h := range results[i].hs {
			h.Sort() // no-op for well-formed snapshots
		}
		all = append(all, results[i].hs...)
	}
	col, err := model.NewCollection(all...)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	return col, cohorts, info, nil
}

// Inspect reads a snapshot's provenance without materializing the
// collection: header-only for sharded snapshots; legacy v1 snapshots
// carry no header, so inspecting one costs a full decode. When the
// reader's total size is discoverable (files, in-memory readers), the
// shard table is validated against it, so a truncated file is reported
// here — at header time — rather than by a mid-read failure in OpenShards
// or LoadSharded.
func Inspect(r io.Reader) (*SnapshotInfo, error) {
	size, sized := readerSize(r)
	br := bufio.NewReaderSize(r, snapshotBufSize)
	head, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(head, []byte(snapshotMagic)) {
		info, err := readHeader(br)
		if err != nil {
			return nil, err
		}
		if sized {
			if err := validateSnapshotSize(info, size); err != nil {
				return nil, err
			}
		}
		return info, nil
	}
	_, info, err := loadLegacy(br)
	return info, err
}
