package store

// Random access into sharded v2 snapshots. The v2 header's shard table
// carries every segment's offset and size, so a process that is assigned a
// subset of the shards — a shard server in a distributed deployment — can
// page in exactly its segments with io.ReaderAt instead of streaming the
// whole file: the on-disk half of cross-process shard distribution.

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"pastas/internal/model"
)

// OpenedShard is one lazily loaded shard of a sharded snapshot.
type OpenedShard struct {
	// Shard is the shard id (its index in the snapshot's shard table).
	Shard int
	// Offset is the global patient ordinal of the shard's first history:
	// local ordinal i within the shard is global ordinal Offset+i.
	Offset int
	// Col holds the shard's histories, in the order they were saved.
	Col *model.Collection
	// Postings holds the shard's decoded inverted indexes when the
	// snapshot carries a postings block (v3+); nil for v2 snapshots, in
	// which case the opener rebuilds indexes with New.
	Postings *ShardPostings
}

// Store indexes the opened shard: from the snapshot's postings block when
// present, by re-walking the entries otherwise.
func (os *OpenedShard) Store() (*Store, error) {
	if os.Postings != nil {
		return NewFromPostings(os.Col, os.Postings)
	}
	return New(os.Col), nil
}

// OpenShards opens the given shards of a sharded snapshot, reading only
// the header and those shards' segments (checksummed, decoded in
// parallel) — never the rest of the file. On v3 snapshots each shard's
// postings segment is read and decoded too, so the caller can index the
// shard without re-walking its entries. No ids means every shard. The
// shard table is validated against the file size up front, so a truncated
// file errors at header time instead of mid-read; out-of-range or
// duplicate shard ids are refused.
func OpenShards(path string, ids ...int) ([]*OpenedShard, *SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open shards: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("store: open shards: %w", err)
	}
	size := fi.Size()
	info, err := readHeader(io.NewSectionReader(f, 0, size))
	if err != nil {
		return nil, nil, err
	}
	if err := validateSnapshotSize(info, size); err != nil {
		return nil, nil, err
	}
	if len(ids) == 0 {
		ids = make([]int, info.Shards)
		for i := range ids {
			ids[i] = i
		}
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= info.Shards {
			return nil, nil, fmt.Errorf("store: open shards: shard %d out of range [0, %d)", id, info.Shards)
		}
		if seen[id] {
			return nil, nil, fmt.Errorf("store: open shards: shard %d requested twice", id)
		}
		seen[id] = true
	}

	// Global patient offsets come from the shard table: each shard starts
	// where the patients of all preceding shards end.
	starts := make([]int, info.Shards)
	for i := 1; i < info.Shards; i++ {
		starts[i] = starts[i-1] + info.ShardDetail[i-1].Patients
	}

	payload := info.headerLen()

	// Postings segments follow the last history segment, packed in shard
	// order; their offsets are the running sum of the table's sizes.
	var postBase int64
	var postOff []int64
	if info.Version >= snapshotVersionPostings {
		postBase = payload
		if info.Shards > 0 {
			last := info.ShardDetail[info.Shards-1]
			postBase += last.Offset + last.Bytes
		}
		postOff = make([]int64, info.Shards)
		for i := 1; i < info.Shards; i++ {
			postOff[i] = postOff[i-1] + info.Postings[i-1].Bytes
		}
	}

	out := make([]*OpenedShard, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			si := info.ShardDetail[id]
			seg := make([]byte, si.Bytes)
			if _, err := f.ReadAt(seg, payload+si.Offset); err != nil {
				errs[i] = fmt.Errorf("store: open shards: shard %d: read %d bytes at %d: %w", id, si.Bytes, payload+si.Offset, err)
				return
			}
			if got := crc32.Checksum(seg, crcTable); got != si.Checksum {
				errs[i] = fmt.Errorf("store: open shards: shard %d: checksum mismatch (got %08x, want %08x)", id, got, si.Checksum)
				return
			}
			hs, entries, err := decodeSegment(seg, si.Patients)
			if err != nil {
				errs[i] = fmt.Errorf("store: open shards: shard %d: %w", id, err)
				return
			}
			if entries != si.Entries {
				errs[i] = fmt.Errorf("store: open shards: shard %d: %d entries, header promised %d", id, entries, si.Entries)
				return
			}
			for _, h := range hs {
				h.Sort() // no-op for well-formed snapshots
			}
			col, err := model.NewCollection(hs...)
			if err != nil {
				errs[i] = fmt.Errorf("store: open shards: shard %d: %w", id, err)
				return
			}
			os := &OpenedShard{Shard: id, Offset: starts[id], Col: col}
			if postOff != nil {
				pi := info.Postings[id]
				pseg := make([]byte, pi.Bytes)
				if _, err := f.ReadAt(pseg, postBase+postOff[id]); err != nil {
					errs[i] = fmt.Errorf("store: open shards: shard %d: read postings (%d bytes at %d): %w", id, pi.Bytes, postBase+postOff[id], err)
					return
				}
				if got := crc32.Checksum(pseg, crcTable); got != pi.Checksum {
					errs[i] = fmt.Errorf("store: open shards: shard %d: postings checksum mismatch (got %08x, want %08x)", id, got, pi.Checksum)
					return
				}
				sp, err := decodePostings(pseg, si.Patients)
				if err != nil {
					errs[i] = fmt.Errorf("store: open shards: shard %d: %w", id, err)
					return
				}
				os.Postings = sp
			}
			out[i] = os
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return out, info, nil
}

// validateSnapshotSize checks the shard table against the file size:
// every segment (offset + size, relative to the end of the header) must
// lie inside the file, i.e. the header's total byte count must fit.
func validateSnapshotSize(info *SnapshotInfo, size int64) error {
	if info.Bytes > size {
		return fmt.Errorf("store: snapshot header promises %d bytes, file has %d (truncated)", info.Bytes, size)
	}
	return nil
}

// readerSize discovers an io.Reader's total size when it can be known
// without disturbing the stream (files via Stat, in-memory readers via
// Size); ok=false otherwise.
func readerSize(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Stat() (os.FileInfo, error) }:
		if fi, err := v.Stat(); err == nil {
			return fi.Size(), true
		}
	case interface{ Size() int64 }:
		return v.Size(), true
	}
	return 0, false
}
