package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/synth"
)

func TestStatsCardinalities(t *testing.T) {
	s := New(testCollection(t))
	st := s.Stats()
	if st.Patients != 5 {
		t.Errorf("Patients = %d", st.Patients)
	}
	if st.Entries != s.Collection().TotalEntries() {
		t.Errorf("Entries = %d, want %d", st.Entries, s.Collection().TotalEntries())
	}
	if st.DistinctCodes != 5 {
		t.Errorf("DistinctCodes = %d", st.DistinctCodes)
	}
	if got := st.CodeCard("ICPC2", "T90"); got != 2 {
		t.Errorf("CodeCard(ICPC2,T90) = %d", got)
	}
	if got := st.CodeCard("", "T90"); got != 2 {
		t.Errorf("CodeCard(any,T90) = %d", got)
	}
	if got := st.TypeCard(model.TypeMedication); got != 1 {
		t.Errorf("TypeCard(medication) = %d", got)
	}
	if got := st.SourceCard(model.SourceHospital); got != 1 {
		t.Errorf("SourceCard(hospital) = %d", got)
	}
	if got := st.TypeCard(model.TypeStay); got != 0 {
		t.Errorf("TypeCard(stay) = %d, want 0", got)
	}
	if avg := st.AvgEntries(); avg != float64(st.Entries)/5 {
		t.Errorf("AvgEntries = %f", avg)
	}
}

// TestCodePatternCardBoundsIndex: the pattern cardinality must upper-bound
// the true patient count (union bound) and be exact for single codes.
func TestCodePatternCardBoundsIndex(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(300))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(col)
	st := s.Stats()
	for _, pattern := range []string{"T90", `K8.`, `T90|E11(\..*)?`, `.*`} {
		bs, err := s.WithCodeRegex("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		card, err := st.CodePatternCard("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		if card < bs.Count() {
			t.Errorf("CodePatternCard(%q) = %d below true count %d", pattern, card, bs.Count())
		}
		if card > st.Patients {
			t.Errorf("CodePatternCard(%q) = %d above population", pattern, card)
		}
	}
	if card, err := st.CodePatternCard("ICPC2", "T90"); err != nil || card != s.WithCode("ICPC2", "T90").Count() {
		t.Errorf("single-code card not exact: %d, %v", card, err)
	}
	if _, err := st.CodePatternCard("", "("); err == nil {
		t.Error("bad pattern accepted")
	}
}

// TestViewMatchesDedicatedShardStore: a View over [lo, hi) must answer
// every index lookup identically to a store built from the sub-collection
// — the property that lets the engine share postings instead of
// duplicating per-shard indexes.
func TestViewMatchesDedicatedShardStore(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(250))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := New(col)
	n := s.Len()
	for _, rng := range [][2]int{{0, n}, {0, 63}, {64, 128}, {37, 101}, {n - 5, n}, {100, 100}} {
		lo, hi := rng[0], rng[1]
		v := s.Slice(lo, hi)
		dedicated := New(model.MustCollection(col.Histories()[lo:hi]...))
		if v.Len() != dedicated.Len() {
			t.Fatalf("view [%d,%d) len %d vs %d", lo, hi, v.Len(), dedicated.Len())
		}
		for ty := model.Type(1); ty <= 6; ty++ {
			if got, want := v.WithType(ty), dedicated.WithType(ty); !reflect.DeepEqual(got.Ones(), want.Ones()) {
				t.Errorf("view [%d,%d) WithType(%v) diverges", lo, hi, ty)
			}
		}
		for src := model.Source(1); src <= 5; src++ {
			if got, want := v.WithSource(src), dedicated.WithSource(src); !reflect.DeepEqual(got.Ones(), want.Ones()) {
				t.Errorf("view [%d,%d) WithSource(%v) diverges", lo, hi, src)
			}
		}
		for _, pattern := range []string{"T90", `K8.`, `T90|E11(\..*)?`, `.*9`} {
			got, err := v.WithCodeRegex("", pattern)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dedicated.WithCodeRegex("", pattern)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Ones(), want.Ones()) {
				t.Errorf("view [%d,%d) WithCodeRegex(%q) diverges", lo, hi, pattern)
			}
		}
		if v.Entries() != dedicated.Collection().TotalEntries() {
			t.Errorf("view [%d,%d) entries %d vs %d", lo, hi, v.Entries(), dedicated.Collection().TotalEntries())
		}
	}
}

// TestSliceRangeProperties: SliceRange/OrSliceOf/CountRange agree with the
// naive bit-by-bit definitions at arbitrary offsets (word-straddling
// included).
func TestSliceRangeProperties(t *testing.T) {
	f := func(xs []uint16, loSeed, spanSeed uint16) bool {
		const n = 400
		b := NewBitset(n)
		for _, x := range xs {
			b.Set(int(x) % n)
		}
		lo := int(loSeed) % n
		hi := lo + int(spanSeed)%(n-lo+1)
		got := b.SliceRange(lo, hi)
		if got.Len() != hi-lo {
			return false
		}
		count := 0
		for i := lo; i < hi; i++ {
			if b.Get(i) != got.Get(i-lo) {
				return false
			}
			if b.Get(i) {
				count++
			}
		}
		return b.CountRange(lo, hi) == count && got.Count() == count
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSliceRangeInvertsOrAt: slicing back out of a merged bitset recovers
// the per-shard local bitsets (SliceRange is OrAt's inverse).
func TestSliceRangeInvertsOrAt(t *testing.T) {
	global := NewBitset(200)
	locals := []*Bitset{NewBitset(70), NewBitset(70), NewBitset(60)}
	offs := []int{0, 70, 140}
	for i, l := range locals {
		for j := i; j < l.Len(); j += 7 {
			l.Set(j)
		}
		global.OrAt(l, offs[i])
	}
	for i, l := range locals {
		back := global.SliceRange(offs[i], offs[i]+l.Len())
		if !back.Equal(l) {
			t.Errorf("shard %d not recovered: %v vs %v", i, back.Ones(), l.Ones())
		}
	}
}
