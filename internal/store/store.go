// Package store holds a loaded collection with the secondary indexes the
// interactive workbench needs. The paper pre-loads "all content to be
// visualized or queried ... into a data structure" precisely "to speed up
// drawing and to become more independent of the database schema"; Store is
// that structure plus code/type/source inverted indexes over patients, and
// snapshot persistence so a 168k-patient load survives process restarts.
package store

import (
	"fmt"
	"sort"

	"pastas/internal/model"
	"pastas/internal/terminology"
)

// Store is an immutable indexed collection.
type Store struct {
	col     *model.Collection
	ordinal map[model.PatientID]int // patient -> bit position
	ids     []model.PatientID       // bit position -> patient

	byCodeValue map[codeKey]*Bitset
	byType      map[model.Type]*Bitset
	bySource    map[model.Source]*Bitset
	codes       []model.Code // distinct codes, sorted

	stats *Stats // exact cardinalities, collected at New time
}

type codeKey struct {
	system string
	value  string
}

// New indexes a collection. The collection must not be mutated afterwards.
func New(col *model.Collection) *Store {
	n := col.Len()
	s := &Store{
		col:         col,
		ordinal:     make(map[model.PatientID]int, n),
		ids:         make([]model.PatientID, n),
		byCodeValue: make(map[codeKey]*Bitset),
		byType:      make(map[model.Type]*Bitset),
		bySource:    make(map[model.Source]*Bitset),
	}
	for i, h := range col.Histories() {
		s.ordinal[h.Patient.ID] = i
		s.ids[i] = h.Patient.ID
	}
	for i, h := range col.Histories() {
		for j := range h.Entries {
			e := &h.Entries[j]
			if !e.Code.IsZero() {
				k := codeKey{e.Code.System, e.Code.Value}
				bs := s.byCodeValue[k]
				if bs == nil {
					bs = NewBitset(n)
					s.byCodeValue[k] = bs
				}
				bs.Set(i)
			}
			tb := s.byType[e.Type]
			if tb == nil {
				tb = NewBitset(n)
				s.byType[e.Type] = tb
			}
			tb.Set(i)
			sb := s.bySource[e.Source]
			if sb == nil {
				sb = NewBitset(n)
				s.bySource[e.Source] = sb
			}
			sb.Set(i)
		}
	}
	for k := range s.byCodeValue {
		s.codes = append(s.codes, model.Code{System: k.system, Value: k.value})
	}
	sort.Slice(s.codes, func(i, j int) bool {
		if s.codes[i].System != s.codes[j].System {
			return s.codes[i].System < s.codes[j].System
		}
		return s.codes[i].Value < s.codes[j].Value
	})
	s.stats = collectStats(s)
	return s
}

// Stats returns the store's exact index cardinalities (immutable, shared).
func (s *Store) Stats() *Stats { return s.stats }

// Collection returns the underlying collection.
func (s *Store) Collection() *model.Collection { return s.col }

// Len returns the number of patients.
func (s *Store) Len() int { return s.col.Len() }

// DistinctCodes returns every code present, sorted by system then value.
func (s *Store) DistinctCodes() []model.Code {
	out := make([]model.Code, len(s.codes))
	copy(out, s.codes)
	return out
}

// Ordinal returns the bit position of a patient (ok=false if absent).
func (s *Store) Ordinal(id model.PatientID) (int, bool) {
	o, ok := s.ordinal[id]
	return o, ok
}

// PatientAt returns the patient ID at a bit position.
func (s *Store) PatientAt(ordinal int) model.PatientID { return s.ids[ordinal] }

// IDsOf materializes a bitset as patient IDs in collection order.
func (s *Store) IDsOf(b *Bitset) []model.PatientID {
	out := make([]model.PatientID, 0, b.Count())
	b.Range(func(i int) bool {
		out = append(out, s.ids[i])
		return true
	})
	return out
}

// Empty returns a fresh empty bitset sized to the store.
func (s *Store) Empty() *Bitset { return NewBitset(s.Len()) }

// All returns a bitset with every patient set.
func (s *Store) All() *Bitset { return s.Empty().Not() }

// WithCode returns the patients carrying an exact code (any system if
// system == "").
func (s *Store) WithCode(system, value string) *Bitset {
	if system != "" {
		if bs := s.byCodeValue[codeKey{system, value}]; bs != nil {
			return bs.Clone()
		}
		return s.Empty()
	}
	out := s.Empty()
	for _, sys := range []string{"ICPC2", "ICD10", "ATC"} {
		if bs := s.byCodeValue[codeKey{sys, value}]; bs != nil {
			out.Or(bs)
		}
	}
	return out
}

// matchCodes calls fn for every distinct code (in system; "" = any system)
// matching the anchored pattern. The single vocabulary-walk shared by the
// store, view and statistics lookups, so pattern semantics can never
// diverge between the executor's postings and the planner's cardinalities.
func matchCodes(codes []model.Code, system, pattern string, fn func(model.Code)) error {
	re, err := terminology.CompileCodePattern(pattern)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, c := range codes {
		if system != "" && c.System != system {
			continue
		}
		if re.MatchString(c.Value) {
			fn(c)
		}
	}
	return nil
}

// WithCodeRegex returns the patients with at least one code (in the given
// system; "" = any) matching the anchored regular expression — the paper's
// cohort-identification primitive. It matches the pattern against the
// distinct-code vocabulary (a few hundred strings) and unions the
// pre-computed patient sets, rather than scanning millions of entries.
func (s *Store) WithCodeRegex(system, pattern string) (*Bitset, error) {
	out := s.Empty()
	err := matchCodes(s.codes, system, pattern, func(c model.Code) {
		out.Or(s.byCodeValue[codeKey{c.System, c.Value}])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WithCodeRegexScan is the index-free variant: it scans every entry of
// every history. Kept for the E3 ablation benchmark quantifying what the
// inverted index buys at 100k+ histories.
func (s *Store) WithCodeRegexScan(system, pattern string) (*Bitset, error) {
	re, err := terminology.CompileCodePattern(pattern)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	out := s.Empty()
	for i, h := range s.col.Histories() {
		for j := range h.Entries {
			e := &h.Entries[j]
			if e.Code.IsZero() {
				continue
			}
			if system != "" && e.Code.System != system {
				continue
			}
			if re.MatchString(e.Code.Value) {
				out.Set(i)
				break
			}
		}
	}
	return out, nil
}

// WithType returns the patients having at least one entry of the type.
func (s *Store) WithType(t model.Type) *Bitset {
	if bs := s.byType[t]; bs != nil {
		return bs.Clone()
	}
	return s.Empty()
}

// WithSource returns the patients having at least one entry from the source.
func (s *Store) WithSource(src model.Source) *Bitset {
	if bs := s.bySource[src]; bs != nil {
		return bs.Clone()
	}
	return s.Empty()
}

// Where returns the patients whose history satisfies pred; the general
// (scan) fallback for predicates the indexes cannot answer.
func (s *Store) Where(pred func(*model.History) bool) *Bitset {
	out := s.Empty()
	for i, h := range s.col.Histories() {
		if pred(h) {
			out.Set(i)
		}
	}
	return out
}

// Subset materializes a bitset as a sub-collection in display order — the
// paper's "extraction of sub-collections".
func (s *Store) Subset(b *Bitset) *model.Collection {
	return s.col.Subset(s.IDsOf(b))
}
