// Package store holds a loaded collection with the secondary indexes the
// interactive workbench needs. The paper pre-loads "all content to be
// visualized or queried ... into a data structure" precisely "to speed up
// drawing and to become more independent of the database schema"; Store is
// that structure plus code/type/source inverted indexes over patients, and
// snapshot persistence so a 168k-patient load survives process restarts.
//
// Since the live-ingest refactor the store is appendable: every batch of
// new entries/patients publishes a fresh immutable revision (see delta.go)
// under an atomic pointer, so readers never block behind writers and never
// observe a half-applied batch. Postings are layered — an immutable base
// fold plus a small mutable-tail delta absorbing appends — and background
// compaction (compact.go) folds the delta back into the base.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pastas/internal/model"
	"pastas/internal/terminology"
)

// Store is an indexed collection. All read methods answer from one
// immutable revision loaded once per call; Append and Compact serialize on
// an internal mutex and publish new revisions atomically. A single method
// call is therefore always generation-consistent, but a *sequence* of
// calls may straddle an append — callers needing multi-call consistency
// (the engine, the reference interpreter under ingest) pin a revision with
// Pin or Freeze.
type Store struct {
	mu  sync.Mutex // serializes Append and Compact
	rev atomic.Pointer[storeRev]
}

// postings is one layer of inverted indexes. Bitsets in a layer may have a
// smaller capacity than the current population (they were built when the
// population was smaller); bits past a bitset's capacity are implicitly
// zero, and every layered read clamps accordingly.
type postings struct {
	byCodeValue map[codeKey]*Bitset
	byType      map[model.Type]*Bitset
	bySource    map[model.Source]*Bitset
}

func newPostings() *postings {
	return &postings{
		byCodeValue: make(map[codeKey]*Bitset),
		byType:      make(map[model.Type]*Bitset),
		bySource:    make(map[model.Source]*Bitset),
	}
}

// lists returns the number of posting lists in the layer.
func (p *postings) lists() int {
	return len(p.byCodeValue) + len(p.byType) + len(p.bySource)
}

// storeRev is one immutable published revision of the store. Everything a
// read needs hangs off the revision, so a reader that loaded it once can
// never see torn state — an in-flight append builds the next revision on
// the side and publishes it with a single pointer store.
type storeRev struct {
	gen   uint64
	hists []*model.History
	ids   []model.PatientID

	// ordBase is the fold-time ordinal map, shared across revisions until
	// the next compaction; ordDelta covers only patients appended since,
	// and is small enough to copy per batch.
	ordBase  map[model.PatientID]int
	ordDelta map[model.PatientID]int

	entries int

	// base holds the compacted postings (capacity baseN); delta absorbs
	// appends since the last compaction. A patient bit lives in exactly
	// one layer (the append path checks base ∪ delta before setting), so
	// per-key cardinalities are additive across layers.
	base  *postings
	baseN int
	delta *postings

	deltaEntries  int // entries absorbed into delta since last compaction
	deltaPatients int // patients appended since last compaction

	codes []model.Code // distinct codes, sorted
	stats *Stats       // exact cardinalities for this revision

	ingest     IngestStats
	compaction CompactionStats

	colOnce sync.Once
	col     *model.Collection

	maxIDOnce  sync.Once
	maxEntryID uint64
}

type codeKey struct {
	system string
	value  string
}

// loadRev returns the current revision.
func (s *Store) loadRev() *storeRev { return s.rev.Load() }

// collection lazily materializes the revision's histories as a Collection
// (appends invalidate the previous revision's, and most revisions are
// never asked for one).
func (r *storeRev) collection() *model.Collection {
	r.colOnce.Do(func() {
		if r.col == nil {
			col, err := model.NewCollection(r.hists...)
			if err != nil {
				// Append validated ID uniqueness before publishing.
				panic(fmt.Sprintf("store: corrupt revision: %v", err))
			}
			r.col = col
		}
	})
	return r.col
}

// ordinalOf resolves a patient to its bit position within the revision.
func (r *storeRev) ordinalOf(id model.PatientID) (int, bool) {
	if o, ok := r.ordDelta[id]; ok {
		return o, true
	}
	o, ok := r.ordBase[id]
	return o, ok
}

// New indexes a collection. The collection must not be mutated afterwards.
func New(col *model.Collection) *Store {
	hists := col.Histories()
	n := len(hists)
	p := newPostings()
	var maxID uint64
	for i, h := range hists {
		for j := range h.Entries {
			e := &h.Entries[j]
			if e.ID > maxID {
				maxID = e.ID
			}
			if !e.Code.IsZero() {
				k := codeKey{e.Code.System, e.Code.Value}
				bs := p.byCodeValue[k]
				if bs == nil {
					bs = NewBitset(n)
					p.byCodeValue[k] = bs
				}
				bs.Set(i)
			}
			tb := p.byType[e.Type]
			if tb == nil {
				tb = NewBitset(n)
				p.byType[e.Type] = tb
			}
			tb.Set(i)
			sb := p.bySource[e.Source]
			if sb == nil {
				sb = NewBitset(n)
				p.bySource[e.Source] = sb
			}
			sb.Set(i)
		}
	}
	codes := make([]model.Code, 0, len(p.byCodeValue))
	for k := range p.byCodeValue {
		codes = append(codes, model.Code{System: k.system, Value: k.value})
	}
	sortCodes(codes)
	s := finishStore(col, p, codes)
	r := s.loadRev()
	r.maxEntryID = maxID
	r.maxIDOnce.Do(func() {})
	return s
}

// finishStore builds a gen-0 revision around base postings that cover the
// whole collection (shared by New and NewFromPostings).
func finishStore(col *model.Collection, base *postings, codes []model.Code) *Store {
	hists := col.Histories()
	n := len(hists)
	r := &storeRev{
		hists:    hists,
		ids:      make([]model.PatientID, n),
		ordBase:  make(map[model.PatientID]int, n),
		ordDelta: map[model.PatientID]int{},
		entries:  col.TotalEntries(),
		base:     base,
		baseN:    n,
		delta:    newPostings(),
		codes:    codes,
		col:      col,
	}
	for i, h := range hists {
		r.ordBase[h.Patient.ID] = i
		r.ids[i] = h.Patient.ID
	}
	r.stats = collectStats(r)
	s := &Store{}
	s.rev.Store(r)
	return s
}

func sortCodes(codes []model.Code) {
	sort.Slice(codes, func(i, j int) bool {
		if codes[i].System != codes[j].System {
			return codes[i].System < codes[j].System
		}
		return codes[i].Value < codes[j].Value
	})
}

// Stats returns the exact index cardinalities of the current revision
// (immutable once published; a later append publishes a new Stats rather
// than mutating this one).
func (s *Store) Stats() *Stats { return s.loadRev().stats }

// Collection returns the underlying collection of the current revision.
func (s *Store) Collection() *model.Collection { return s.loadRev().collection() }

// Len returns the number of patients.
func (s *Store) Len() int { return len(s.loadRev().hists) }

// DistinctCodes returns every code present, sorted by system then value.
func (s *Store) DistinctCodes() []model.Code {
	r := s.loadRev()
	out := make([]model.Code, len(r.codes))
	copy(out, r.codes)
	return out
}

// Ordinal returns the bit position of a patient (ok=false if absent).
func (s *Store) Ordinal(id model.PatientID) (int, bool) {
	return s.loadRev().ordinalOf(id)
}

// PatientAt returns the patient ID at a bit position.
func (s *Store) PatientAt(ordinal int) model.PatientID { return s.loadRev().ids[ordinal] }

// IDsOf materializes a bitset as patient IDs in collection order.
func (s *Store) IDsOf(b *Bitset) []model.PatientID {
	r := s.loadRev()
	out := make([]model.PatientID, 0, b.Count())
	b.Range(func(i int) bool {
		out = append(out, r.ids[i])
		return true
	})
	return out
}

// Empty returns a fresh empty bitset sized to the store.
func (s *Store) Empty() *Bitset { return NewBitset(s.Len()) }

// All returns a bitset with every patient set.
func (s *Store) All() *Bitset { return s.Empty().Not() }

// codeBits returns both layers of one code's posting (either may be nil).
func (r *storeRev) codeBits(k codeKey) (base, delta *Bitset) {
	return r.base.byCodeValue[k], r.delta.byCodeValue[k]
}

// WithCode returns the patients carrying an exact code (any system if
// system == "").
func (s *Store) WithCode(system, value string) *Bitset {
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	if system != "" {
		base, delta := r.codeBits(codeKey{system, value})
		layerOrInto(out, base)
		layerOrInto(out, delta)
		return out
	}
	for _, sys := range []string{"ICPC2", "ICD10", "ATC"} {
		base, delta := r.codeBits(codeKey{sys, value})
		layerOrInto(out, base)
		layerOrInto(out, delta)
	}
	return out
}

// matchCodes calls fn for every distinct code (in system; "" = any system)
// matching the anchored pattern. The single vocabulary-walk shared by the
// store, view and statistics lookups, so pattern semantics can never
// diverge between the executor's postings and the planner's cardinalities.
func matchCodes(codes []model.Code, system, pattern string, fn func(model.Code)) error {
	re, err := terminology.CompileCodePattern(pattern)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, c := range codes {
		if system != "" && c.System != system {
			continue
		}
		if re.MatchString(c.Value) {
			fn(c)
		}
	}
	return nil
}

// WithCodeRegex returns the patients with at least one code (in the given
// system; "" = any) matching the anchored regular expression — the paper's
// cohort-identification primitive. It matches the pattern against the
// distinct-code vocabulary (a few hundred strings) and unions the
// pre-computed patient sets, rather than scanning millions of entries.
func (s *Store) WithCodeRegex(system, pattern string) (*Bitset, error) {
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	err := matchCodes(r.codes, system, pattern, func(c model.Code) {
		base, delta := r.codeBits(codeKey{c.System, c.Value})
		layerOrInto(out, base)
		layerOrInto(out, delta)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WithCodeRegexScan is the index-free variant: it scans every entry of
// every history. Kept for the E3 ablation benchmark quantifying what the
// inverted index buys at 100k+ histories.
func (s *Store) WithCodeRegexScan(system, pattern string) (*Bitset, error) {
	re, err := terminology.CompileCodePattern(pattern)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	for i, h := range r.hists {
		for j := range h.Entries {
			e := &h.Entries[j]
			if e.Code.IsZero() {
				continue
			}
			if system != "" && e.Code.System != system {
				continue
			}
			if re.MatchString(e.Code.Value) {
				out.Set(i)
				break
			}
		}
	}
	return out, nil
}

// WithType returns the patients having at least one entry of the type.
func (s *Store) WithType(t model.Type) *Bitset {
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	layerOrInto(out, r.base.byType[t])
	layerOrInto(out, r.delta.byType[t])
	return out
}

// WithSource returns the patients having at least one entry from the source.
func (s *Store) WithSource(src model.Source) *Bitset {
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	layerOrInto(out, r.base.bySource[src])
	layerOrInto(out, r.delta.bySource[src])
	return out
}

// Where returns the patients whose history satisfies pred; the general
// (scan) fallback for predicates the indexes cannot answer.
func (s *Store) Where(pred func(*model.History) bool) *Bitset {
	r := s.loadRev()
	out := NewBitset(len(r.hists))
	for i, h := range r.hists {
		if pred(h) {
			out.Set(i)
		}
	}
	return out
}

// Subset materializes a bitset as a sub-collection in display order — the
// paper's "extraction of sub-collections".
func (s *Store) Subset(b *Bitset) *model.Collection {
	r := s.loadRev()
	return r.collection().Subset(s.IDsOf(b))
}
