package store

import (
	"encoding/gob"
	"fmt"
	"io"

	"pastas/internal/model"
)

// Snapshot persistence. Loading 168k patients from the raw registry files
// takes orders of magnitude longer than decoding a pre-integrated snapshot;
// the workbench saves the integrated collection once and reopens instantly.

// snapshotHistory is the gob wire form of one history.
type snapshotHistory struct {
	Patient model.Patient
	Entries []model.Entry
}

// snapshotFile is the gob wire form of a collection.
type snapshotFile struct {
	Version   int
	Histories []snapshotHistory
}

const snapshotVersion = 1

// Save writes the collection as a snapshot.
func Save(w io.Writer, col *model.Collection) error {
	f := snapshotFile{Version: snapshotVersion}
	f.Histories = make([]snapshotHistory, 0, col.Len())
	for _, h := range col.Histories() {
		h.Sort()
		f.Histories = append(f.Histories, snapshotHistory{Patient: h.Patient, Entries: h.Entries})
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("store: save snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot back into a collection.
func Load(r io.Reader) (*model.Collection, error) {
	var f snapshotFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("store: load snapshot: unsupported version %d", f.Version)
	}
	col := &model.Collection{}
	for i := range f.Histories {
		sh := &f.Histories[i]
		h := model.NewHistory(sh.Patient)
		for _, e := range sh.Entries {
			h.Add(e)
		}
		h.Sort()
		if err := col.Add(h); err != nil {
			return nil, fmt.Errorf("store: load snapshot: %w", err)
		}
	}
	return col, nil
}
