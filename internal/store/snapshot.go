package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"pastas/internal/model"
)

// Snapshot persistence. Loading 168k patients from the raw registry files
// takes orders of magnitude longer than decoding a pre-integrated snapshot;
// the workbench saves the integrated collection once and reopens instantly.
// Both directions run through a large bufio buffer so gob's many small
// reads/writes never hit the underlying file one token at a time, and the
// decoder preallocates every slice it can size up front — the baseline the
// planned snapshot-per-shard persistence will be measured against (see
// BenchmarkSnapshotRoundTrip).

// snapshotBufSize is the bufio buffer for snapshot I/O.
const snapshotBufSize = 1 << 20

// snapshotHistory is the gob wire form of one history.
type snapshotHistory struct {
	Patient model.Patient
	Entries []model.Entry
}

// snapshotFile is the gob wire form of a collection.
type snapshotFile struct {
	Version   int
	Histories []snapshotHistory
}

const snapshotVersion = 1

// Save writes the collection as a snapshot.
func Save(w io.Writer, col *model.Collection) error {
	f := snapshotFile{Version: snapshotVersion}
	f.Histories = make([]snapshotHistory, 0, col.Len())
	for _, h := range col.Histories() {
		h.Sort()
		f.Histories = append(f.Histories, snapshotHistory{Patient: h.Patient, Entries: h.Entries})
	}
	bw := bufio.NewWriterSize(w, snapshotBufSize)
	if err := gob.NewEncoder(bw).Encode(&f); err != nil {
		return fmt.Errorf("store: save snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: save snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot back into a collection.
func Load(r io.Reader) (*model.Collection, error) {
	var f snapshotFile
	if err := gob.NewDecoder(bufio.NewReaderSize(r, snapshotBufSize)).Decode(&f); err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("store: load snapshot: unsupported version %d", f.Version)
	}
	hs := make([]*model.History, 0, len(f.Histories))
	for i := range f.Histories {
		sh := &f.Histories[i]
		h := model.NewHistory(sh.Patient)
		if len(sh.Entries) > 0 {
			h.Entries = make([]model.Entry, 0, len(sh.Entries))
		}
		for _, e := range sh.Entries {
			h.Add(e)
		}
		h.Sort()
		hs = append(hs, h)
	}
	col, err := model.NewCollection(hs...)
	if err != nil {
		return nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	return col, nil
}
