package store

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"pastas/internal/model"
)

// Snapshot persistence. Loading 168k patients from the raw registry files
// takes orders of magnitude longer than decoding a pre-integrated snapshot;
// the workbench saves the integrated collection once and reopens instantly.
//
// Two formats coexist:
//
//   - v1 (legacy): one monolithic gob stream. Save still writes it and
//     Load still reads it, so snapshots from before the sharded format
//     keep opening transparently.
//   - v2 (sharded): a small binary header (magic, version, shard table
//     with per-shard offsets and checksums) followed by N independently
//     decodable shard segments — see snapshot_sharded.go. Load detects it
//     by peeking the magic without consuming the stream.
//
// Both directions run through a large bufio buffer so many small
// reads/writes never hit the underlying file one token at a time.

// snapshotBufSize is the bufio buffer for snapshot I/O.
const snapshotBufSize = 1 << 20

// snapshotHistory is the gob wire form of one history (v1).
type snapshotHistory struct {
	Patient model.Patient
	Entries []model.Entry
}

// snapshotFile is the gob wire form of a collection (v1).
type snapshotFile struct {
	Version   int
	Histories []snapshotHistory
}

const snapshotVersion = 1

// Save writes the collection in the legacy v1 single-gob format. It is
// strictly read-only on the collection: entries are serialized through
// SortedEntries, which copies before sorting, so saving never reorders a
// history a concurrent engine query may be scanning.
func Save(w io.Writer, col *model.Collection) error {
	f := snapshotFile{Version: snapshotVersion}
	f.Histories = make([]snapshotHistory, 0, col.Len())
	for _, h := range col.Histories() {
		f.Histories = append(f.Histories, snapshotHistory{Patient: h.Patient, Entries: h.SortedEntries()})
	}
	bw := bufio.NewWriterSize(w, snapshotBufSize)
	if err := gob.NewEncoder(bw).Encode(&f); err != nil {
		return fmt.Errorf("store: save snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: save snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot of either format back into a collection.
func Load(r io.Reader) (*model.Collection, error) {
	col, _, err := LoadInfo(r)
	return col, err
}

// LoadInfo is Load plus provenance: which format the snapshot was in, how
// many shards, and the per-shard layout. The format is detected by
// peeking the first bytes — a v2 snapshot leads with its magic, so
// version validation happens before any payload is decoded; anything else
// falls back to the legacy v1 gob decoder with the stream intact.
func LoadInfo(r io.Reader) (*model.Collection, *SnapshotInfo, error) {
	br := bufio.NewReaderSize(r, snapshotBufSize)
	head, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(head, []byte(snapshotMagic)) {
		return loadSharded(br)
	}
	return loadLegacy(br)
}

// LoadInfoCohorts is LoadInfo plus any materialized cohorts persisted in
// the snapshot (v5 sharded snapshots only; earlier versions and legacy
// gob snapshots return nil cohorts).
func LoadInfoCohorts(r io.Reader) (*model.Collection, []CohortRecord, *SnapshotInfo, error) {
	br := bufio.NewReaderSize(r, snapshotBufSize)
	head, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(head, []byte(snapshotMagic)) {
		return loadShardedFull(br)
	}
	col, info, err := loadLegacy(br)
	return col, nil, info, err
}

// loadLegacy decodes a v1 single-gob snapshot.
func loadLegacy(br *bufio.Reader) (*model.Collection, *SnapshotInfo, error) {
	var f snapshotFile
	if err := gob.NewDecoder(br).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, nil, fmt.Errorf("store: load snapshot: unsupported version %d", f.Version)
	}
	hs := make([]*model.History, 0, len(f.Histories))
	entries := 0
	for i := range f.Histories {
		sh := &f.Histories[i]
		entries += len(sh.Entries)
		h := model.RestoreHistory(sh.Patient, sh.Entries)
		h.Sort() // no-op for well-formed snapshots; restores the invariant otherwise
		hs = append(hs, h)
	}
	col, err := model.NewCollection(hs...)
	if err != nil {
		return nil, nil, fmt.Errorf("store: load snapshot: %w", err)
	}
	info := &SnapshotInfo{
		Version:  snapshotVersion,
		Legacy:   true,
		Shards:   1,
		Patients: col.Len(),
		Entries:  entries,
	}
	return col, info, nil
}
