package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pastas/internal/model"
)

// writeShardedSnapshot saves a snapshot to a temp file and returns its
// path along with the collection it encodes.
func writeShardedSnapshot(t *testing.T, n, shards int) (string, *SnapshotInfo) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wb.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := SaveSharded(f, snapCollection(n), shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, info
}

// TestOpenShardsSubsetRoundTrip: a subset-open store answers subset
// queries identically to the full store restricted to those shards.
func TestOpenShardsSubsetRoundTrip(t *testing.T) {
	const n, shards = 61, 4
	path, _ := writeShardedSnapshot(t, n, shards)
	full := New(snapCollection(n))

	opened, info, err := OpenShards(path, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != shards || len(opened) != 2 {
		t.Fatalf("opened %d of %d shards, info %+v", len(opened), shards, info)
	}
	for _, sh := range opened {
		view := full.Slice(sh.Offset, sh.Offset+sh.Col.Len())
		// Per-history identity against the full store's slice.
		want := view.Histories()
		got := sh.Col.Histories()
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d histories, want %d", sh.Shard, len(got), len(want))
		}
		for i := range got {
			if got[i].Patient != want[i].Patient {
				t.Fatalf("shard %d history %d: patient differs", sh.Shard, i)
			}
			ge, we := got[i].SortedEntries(), want[i].SortedEntries()
			if len(ge) != len(we) {
				t.Fatalf("shard %d history %d: %d entries, want %d", sh.Shard, i, len(ge), len(we))
			}
			for j := range ge {
				if !reflect.DeepEqual(ge[j], we[j]) {
					t.Fatalf("shard %d history %d entry %d differs", sh.Shard, i, j)
				}
			}
		}
		// Query identity: a dedicated store over the opened shard answers
		// the same bitsets as the full store's view of that ordinal range.
		sub := New(sh.Col)
		for _, pattern := range []string{"T90", `E11(\..*)?`, `A.*|X.*`} {
			got, err := sub.WithCodeRegex("", pattern)
			if err != nil {
				t.Fatal(err)
			}
			want, err := view.WithCodeRegex("", pattern)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("shard %d: WithCodeRegex(%q) = %d patients, view says %d",
					sh.Shard, pattern, got.Count(), want.Count())
			}
		}
		for _, typ := range []int{1, 2, 3, 4, 5, 6} {
			if got, want := sub.WithType(model.Type(typ)), view.WithType(model.Type(typ)); !got.Equal(want) {
				t.Errorf("shard %d: WithType(%d) differs", sh.Shard, typ)
			}
		}
	}
}

// TestOpenShardsAll: no ids = every shard, concatenating to the full load.
func TestOpenShardsAll(t *testing.T) {
	const n = 37
	path, _ := writeShardedSnapshot(t, n, 5)
	opened, info, err := OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(opened) != info.Shards {
		t.Fatalf("opened %d shards, header says %d", len(opened), info.Shards)
	}
	want := snapCollection(n).Histories()
	off := 0
	for i, sh := range opened {
		if sh.Shard != i || sh.Offset != off {
			t.Fatalf("shard %d: id %d offset %d, want offset %d", i, sh.Shard, sh.Offset, off)
		}
		for j, h := range sh.Col.Histories() {
			if h.Patient.ID != want[off+j].Patient.ID {
				t.Fatalf("shard %d history %d: patient %v, want %v", i, j, h.Patient.ID, want[off+j].Patient.ID)
			}
		}
		off += sh.Col.Len()
	}
	if off != n {
		t.Fatalf("shards cover %d patients, want %d", off, n)
	}
}

func TestOpenShardsRefusesBadIDs(t *testing.T) {
	path, _ := writeShardedSnapshot(t, 40, 4)
	if _, _, err := OpenShards(path, 4); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	if _, _, err := OpenShards(path, -1); err == nil {
		t.Error("negative shard id accepted")
	}
	if _, _, err := OpenShards(path, 1, 1); err == nil {
		t.Error("duplicate shard id accepted")
	}
}

// TestOpenShardsTruncatedErrorsAtHeaderTime: the shard table is checked
// against the file size before any segment read, even when the truncation
// only affects a shard that was not requested.
func TestOpenShardsTruncatedErrorsAtHeaderTime(t *testing.T) {
	path, _ := writeShardedSnapshot(t, 40, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.snap")
	// Cut the last segment short; shard 0 itself is intact.
	if err := os.WriteFile(trunc, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShards(trunc, 0); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestOpenShardsCorruptSegment(t *testing.T) {
	path, info := writeShardedSnapshot(t, 40, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside shard 2's segment.
	si := info.ShardDetail[2]
	data[int(info.headerLen())+int(si.Offset)] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShards(bad, 2); err == nil {
		t.Error("corrupt segment accepted")
	}
	// Other shards remain loadable: corruption is contained per segment.
	if _, _, err := OpenShards(bad, 0, 1, 3); err != nil {
		t.Errorf("intact shards refused: %v", err)
	}
}

// TestHeaderRejectsOverflowingShardTable: a hostile shard table whose
// segment sizes sum past int64 must error at header time — it can
// neither wrap info.Bytes negative (slipping past size validation) nor
// reach a 2^62-byte allocation.
func TestHeaderRejectsOverflowingShardTable(t *testing.T) {
	snap := shardedSnapshot(t, 40, 2)
	bad := append([]byte{}, snap...)
	huge := uint64(1) << 62
	const table = snapshotHeaderFixed
	binary.BigEndian.PutUint64(bad[table+8:], huge)                  // row 0 bytes
	binary.BigEndian.PutUint64(bad[table+snapshotShardRow:], huge)   // row 1 offset (contiguous)
	binary.BigEndian.PutUint64(bad[table+snapshotShardRow+8:], huge) // row 1 bytes
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("overflowing shard table accepted by LoadSharded")
	}
	if _, err := Inspect(bytes.NewReader(bad)); err == nil {
		t.Error("overflowing shard table accepted by Inspect")
	}
	path := filepath.Join(t.TempDir(), "overflow.snap")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShards(path, 0); err == nil {
		t.Error("overflowing shard table accepted by OpenShards")
	}
}

func TestBitsetFirstN(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{3, 64, 65, 130, 199} {
		b.Set(i)
	}
	got := b.FirstN(3)
	if got.Len() != 200 || got.Count() != 3 {
		t.Fatalf("FirstN(3): len %d count %d", got.Len(), got.Count())
	}
	for _, i := range []int{3, 64, 65} {
		if !got.Get(i) {
			t.Errorf("bit %d missing", i)
		}
	}
	if got.Get(130) || got.Get(199) {
		t.Error("FirstN kept bits past the cutoff")
	}
	if b.FirstN(0).Count() != 0 || b.FirstN(-1).Count() != 0 {
		t.Error("FirstN(≤0) kept bits")
	}
	if b.FirstN(100).Count() != 5 {
		t.Error("FirstN larger than population lost bits")
	}
}

// TestBitsetWireRoundTrip covers the shard protocol's bitset codec,
// including odd capacities and hostile payloads.
func TestBitsetWireRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		b := NewBitset(n)
		for i := 0; i < n; i += 3 {
			b.Set(i)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Bitset
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(b) {
			t.Fatalf("n=%d: round-trip differs", n)
		}
	}
	var b Bitset
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := b.UnmarshalBinary([]byte{200, 200, 200, 200, 200, 200, 200, 200, 200, 1}); err == nil {
		t.Error("huge capacity with no payload accepted")
	}
	good, _ := NewBitset(100).MarshalBinary()
	if err := b.UnmarshalBinary(good[:len(good)-3]); err == nil {
		t.Error("truncated payload accepted")
	}
	// Set bits beyond the declared capacity must be rejected.
	evil := append([]byte{65}, bytes.Repeat([]byte{0xFF}, 16)...)
	if err := b.UnmarshalBinary(evil); err == nil {
		t.Error("bits beyond capacity accepted")
	}
}

// TestStatsWireAndMerge: shard stats marshal losslessly, and merging the
// shards' stats reproduces the global store's exact cardinalities.
func TestStatsWireAndMerge(t *testing.T) {
	col := snapCollection(83)
	full := New(col)
	global := full.Stats()

	var parts []*Stats
	for _, b := range [][2]int{{0, 20}, {20, 55}, {55, 83}} {
		st := full.Slice(b[0], b[1]).Stats()
		data, err := st.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var rt Stats
		if err := rt.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if rt.Patients != st.Patients || rt.Entries != st.Entries || rt.DistinctCodes != st.DistinctCodes {
			t.Fatalf("stats round-trip differs: %+v vs %+v", rt, st)
		}
		parts = append(parts, &rt)
	}
	merged := MergeStats(parts...)
	if merged.Patients != global.Patients || merged.Entries != global.Entries {
		t.Fatalf("merged %d patients %d entries, global %d/%d",
			merged.Patients, merged.Entries, global.Patients, global.Entries)
	}
	if merged.DistinctCodes != global.DistinctCodes {
		t.Fatalf("merged %d distinct codes, global %d", merged.DistinctCodes, global.DistinctCodes)
	}
	for _, c := range full.DistinctCodes() {
		if got, want := merged.CodeCard(c.System, c.Value), global.CodeCard(c.System, c.Value); got != want {
			t.Errorf("code %v: merged %d, global %d", c, got, want)
		}
	}
	for i := 0; i < 8; i++ {
		if got, want := merged.TypeCard(model.Type(i)), global.TypeCard(model.Type(i)); got != want {
			t.Errorf("type %d: merged %d, global %d", i, got, want)
		}
	}
	if got, want := merged.AvgEntries(), global.AvgEntries(); got != want {
		t.Errorf("avg entries: merged %v, global %v", got, want)
	}
	// Pattern cardinalities drive the planner; they must agree too.
	for _, pattern := range []string{"T90", `E11(\..*)?`, `.*9`} {
		got, err := merged.CodePatternCard("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		want, err := global.CodePatternCard("", pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("pattern %q: merged %d, global %d", pattern, got, want)
		}
	}
}
