package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pastas/internal/model"
)

// storesEquivalent asserts two stores over the same collection answer
// every index lookup identically: the postings-restored store must be
// indistinguishable from one built by walking the entries.
func storesEquivalent(t *testing.T, want, got *Store) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	wc, gc := want.DistinctCodes(), got.DistinctCodes()
	if !reflect.DeepEqual(wc, gc) {
		t.Fatalf("DistinctCodes = %v, want %v", gc, wc)
	}
	for _, c := range wc {
		if !want.WithCode(c.System, c.Value).Equal(got.WithCode(c.System, c.Value)) {
			t.Errorf("WithCode(%q, %q) differs", c.System, c.Value)
		}
	}
	for ty := 0; ty < 16; ty++ {
		if !want.WithType(model.Type(ty)).Equal(got.WithType(model.Type(ty))) {
			t.Errorf("WithType(%d) differs", ty)
		}
	}
	for src := 0; src < 16; src++ {
		if !want.WithSource(model.Source(src)).Equal(got.WithSource(model.Source(src))) {
			t.Errorf("WithSource(%d) differs", src)
		}
	}
	if !reflect.DeepEqual(want.Stats(), got.Stats()) {
		t.Errorf("Stats differ:\n got %+v\nwant %+v", got.Stats(), want.Stats())
	}
	for i := 0; i < want.Len(); i++ {
		if want.PatientAt(i) != got.PatientAt(i) {
			t.Fatalf("PatientAt(%d) = %v, want %v", i, got.PatientAt(i), want.PatientAt(i))
		}
	}
}

// TestOpenShardsPostingsRoundTrip: a v3 snapshot's postings block
// restores each shard's indexes exactly as New would build them.
func TestOpenShardsPostingsRoundTrip(t *testing.T) {
	path, info := writeShardedSnapshot(t, 73, 4)
	if info.Version != snapshotVersionPostings {
		t.Fatalf("version = %d, want %d", info.Version, snapshotVersionPostings)
	}
	if len(info.Postings) != info.Shards {
		t.Fatalf("postings table has %d rows, want %d", len(info.Postings), info.Shards)
	}
	opened, _, err := OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range opened {
		if sh.Postings == nil {
			t.Fatalf("shard %d: no postings decoded from a v3 snapshot", sh.Shard)
		}
		fromPostings, err := sh.Store()
		if err != nil {
			t.Fatalf("shard %d: %v", sh.Shard, err)
		}
		rebuilt := New(sh.Col)
		storesEquivalent(t, rebuilt, fromPostings)

		// The header's histogram is the decoded block's histogram.
		pi := info.Postings[sh.Shard]
		st := sh.Postings.Stats()
		if lists := len(sh.Postings.Codes) + len(sh.Postings.Types) + len(sh.Postings.Sources); pi.Lists != lists {
			t.Errorf("shard %d: table says %d lists, block has %d", sh.Shard, pi.Lists, lists)
		}
		if pi.Arrays != st.Arrays || pi.Bitmaps != st.Bitmaps || pi.Runs != st.Runs {
			t.Errorf("shard %d: table histogram %d/%d/%d, block %d/%d/%d",
				sh.Shard, pi.Arrays, pi.Bitmaps, pi.Runs, st.Arrays, st.Bitmaps, st.Runs)
		}
	}
}

// stripPostings rewrites a v3 snapshot as its v2 equivalent: same fixed
// header (version 2), same shard table, byte-identical history segments,
// no postings table or block — the format every pre-container release
// wrote.
func stripPostings(t *testing.T, snap []byte, info *SnapshotInfo) []byte {
	t.Helper()
	tableEnd := snapshotHeaderFixed + info.Shards*snapshotShardRow
	last := info.ShardDetail[info.Shards-1]
	histBytes := int(last.Offset + last.Bytes)
	v2 := make([]byte, 0, tableEnd+histBytes)
	v2 = append(v2, snap[:tableEnd]...)
	binary.BigEndian.PutUint32(v2[8:], snapshotVersionSharded)
	body := int(info.headerLen())
	return append(v2, snap[body:body+histBytes]...)
}

// TestSnapshotV2Fallback: v2 snapshots (no postings block) still load —
// streaming and random-access — and OpenShards reports nil Postings so
// callers rebuild indexes from the entries.
func TestSnapshotV2Fallback(t *testing.T) {
	var buf bytes.Buffer
	col := snapCollection(57)
	info, err := SaveSharded(&buf, col, 3)
	if err != nil {
		t.Fatal(err)
	}
	v2 := stripPostings(t, buf.Bytes(), info)

	got, v2info, err := LoadSharded(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if v2info.Version != snapshotVersionSharded || len(v2info.Postings) != 0 {
		t.Fatalf("v2 info = %+v", v2info)
	}
	if v2info.Bytes != int64(len(v2)) {
		t.Errorf("v2 info.Bytes = %d, file is %d", v2info.Bytes, len(v2))
	}
	historiesEqual(t, col, got)

	path := filepath.Join(t.TempDir(), "v2.snap")
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	opened, _, err := OpenShards(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range opened {
		if sh.Postings != nil {
			t.Fatalf("shard %d: postings from a v2 snapshot", sh.Shard)
		}
		st, err := sh.Store()
		if err != nil {
			t.Fatal(err)
		}
		storesEquivalent(t, New(sh.Col), st)
	}
}

// TestSnapshotPostingsCorruption: a flipped bit in a postings segment is
// caught by its checksum — by the streaming loader and by OpenShards for
// the owning shard — while other shards stay loadable.
func TestSnapshotPostingsCorruption(t *testing.T) {
	var buf bytes.Buffer
	info, err := SaveSharded(&buf, snapCollection(73), 4)
	if err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	last := info.ShardDetail[info.Shards-1]
	postBase := info.headerLen() + last.Offset + last.Bytes

	// Corrupt shard 2's postings segment.
	off := postBase + info.Postings[0].Bytes + info.Postings[1].Bytes
	bad := append([]byte{}, snap...)
	bad[off] ^= 0x10
	if _, _, err := LoadSharded(bytes.NewReader(bad)); err == nil {
		t.Error("streaming loader accepted a corrupt postings segment")
	}
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShards(path, 2); err == nil {
		t.Error("OpenShards accepted a corrupt postings segment")
	}
	if _, _, err := OpenShards(path, 0, 1, 3); err != nil {
		t.Errorf("intact shards refused: %v", err)
	}

	// A postings table claiming more bytes than the file holds must fail
	// size validation at header time.
	huge := append([]byte{}, snap...)
	prow := snapshotHeaderFixed + info.Shards*snapshotShardRow
	binary.BigEndian.PutUint64(huge[prow:], 1<<40)
	if _, _, err := OpenShards(writeTemp(t, huge)); err == nil {
		t.Error("postings table byte-count lie accepted")
	}
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDecodePostingsHostile: crafted postings payloads — truncations,
// ordering violations, duplicates, capacity lies — error instead of
// decoding to a wrong index.
func TestDecodePostingsHostile(t *testing.T) {
	hs := snapCollection(40).Histories()
	sp := buildShardPostings(hs)
	good, _, err := encodePostings(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePostings(good, 40); err != nil {
		t.Fatalf("good payload refused: %v", err)
	}

	if _, err := decodePostings(good, 41); err == nil {
		t.Error("capacity mismatch accepted")
	}
	if _, err := decodePostings(good[:len(good)-1], 40); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := decodePostings(append(append([]byte{}, good...), 0x00), 40); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := decodePostings([]byte{}, 40); err == nil {
		t.Error("empty payload accepted")
	}
	// List count exceeding the payload.
	lie := binary.AppendUvarint(nil, 1<<20)
	if _, err := decodePostings(lie, 40); err == nil {
		t.Error("list-count lie accepted")
	}

	encBits := func(bs *Bitset) []byte {
		data, err := bs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		out := binary.AppendUvarint(nil, uint64(len(data)))
		return append(out, data...)
	}
	str := func(s string) []byte {
		return append(binary.AppendUvarint(nil, uint64(len(s))), s...)
	}
	bs := NewBitset(40)
	bs.Set(3)

	// Codes out of vocabulary order.
	var ooo []byte
	ooo = binary.AppendUvarint(ooo, 2)
	for _, v := range []string{"B", "A"} {
		ooo = append(ooo, postCode)
		ooo = append(ooo, str("ICD10")...)
		ooo = append(ooo, str(v)...)
		ooo = append(ooo, encBits(bs)...)
	}
	if _, err := decodePostings(ooo, 40); err == nil {
		t.Error("out-of-order code vocabulary accepted")
	}

	// Duplicate type key.
	var dup []byte
	dup = binary.AppendUvarint(dup, 2)
	for i := 0; i < 2; i++ {
		dup = append(dup, postType, 1)
		dup = append(dup, encBits(bs)...)
	}
	if _, err := decodePostings(dup, 40); err == nil {
		t.Error("duplicate type list accepted")
	}

	// Unknown list kind.
	var unk []byte
	unk = binary.AppendUvarint(unk, 1)
	unk = append(unk, 0x7F)
	unk = append(unk, encBits(bs)...)
	if _, err := decodePostings(unk, 40); err == nil {
		t.Error("unknown list kind accepted")
	}
}
