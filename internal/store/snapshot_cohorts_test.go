package store

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// cohortFixture builds a store plus a few cohort records over it. Expr
// bytes are opaque to this package, so any non-empty blob stands in for
// an engine-encoded expression.
func cohortFixture(t testing.TB, n int) (*Store, []CohortRecord) {
	t.Helper()
	st := New(snapCollection(n))
	every := NewBitset(n)
	for i := 0; i < n; i++ {
		every.Set(i)
	}
	thirds := NewBitset(n)
	for i := 0; i < n; i += 3 {
		thirds.Set(i)
	}
	return st, []CohortRecord{
		{Name: "all", Expr: []byte("expr:true"), Bits: every},
		{Name: "thirds", Expr: []byte{0x00, 0x01, 0xff}, Bits: thirds},
		{Name: "none", Expr: []byte("expr:none"), Bits: NewBitset(n)},
	}
}

// TestCohortSegmentRoundTrip: save with cohorts, load, and get back the
// same histories, the same cohort names/exprs, and bit-identical
// bitsets, across shard counts.
func TestCohortSegmentRoundTrip(t *testing.T) {
	const n = 103
	st, cohorts := cohortFixture(t, n)
	for _, shards := range []int{1, 4, 16} {
		var buf bytes.Buffer
		info, err := SaveShardedStoreCohorts(&buf, st, shards, cohorts)
		if err != nil {
			t.Fatalf("shards=%d save: %v", shards, err)
		}
		if info.Cohorts != len(cohorts) || info.CohortBytes == 0 {
			t.Fatalf("shards=%d info = %+v, want %d cohorts with bytes", shards, info, len(cohorts))
		}
		col, got, info2, err := LoadShardedCohorts(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d load: %v", shards, err)
		}
		if info2.Cohorts != len(cohorts) {
			t.Fatalf("shards=%d loaded info reports %d cohorts", shards, info2.Cohorts)
		}
		historiesEqual(t, st.Collection(), col)
		if len(got) != len(cohorts) {
			t.Fatalf("shards=%d loaded %d cohorts, want %d", shards, len(got), len(cohorts))
		}
		for i, c := range cohorts {
			g := got[i]
			if g.Name != c.Name || !bytes.Equal(g.Expr, c.Expr) {
				t.Errorf("shards=%d cohort %d: (%q, %x), want (%q, %x)", shards, i, g.Name, g.Expr, c.Name, c.Expr)
			}
			if !g.Bits.Equal(c.Bits) {
				t.Errorf("shards=%d cohort %q bits diverge: %d vs %d", shards, c.Name, g.Bits.Count(), c.Bits.Count())
			}
		}
		// The generic loaders must still accept a v5 snapshot.
		if _, _, err := LoadSharded(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("shards=%d LoadSharded rejects v5: %v", shards, err)
		}
	}
}

// TestCohortlessSaveByteIdentity: adding the cohort capability must not
// perturb cohortless snapshots by a single byte — the live-ingest e2e
// diffs batch and incremental snapshots for equality.
func TestCohortlessSaveByteIdentity(t *testing.T) {
	st := New(snapCollection(60))
	var plain, viaCohorts bytes.Buffer
	if _, err := SaveShardedStore(&plain, st, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveShardedStoreCohorts(&viaCohorts, st, 4, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaCohorts.Bytes()) {
		t.Fatal("SaveShardedStoreCohorts(nil) diverges from SaveShardedStore byte-for-byte")
	}
}

// TestCohortSaveDropsStaleBitsets: a record sized for a different
// population than the pinned revision (an append raced the export) is
// silently dropped — the epoch-invalidation semantics — not an error
// and never a corrupted segment.
func TestCohortSaveDropsStaleBitsets(t *testing.T) {
	st, cohorts := cohortFixture(t, 50)
	stale := CohortRecord{Name: "stale", Expr: []byte("x"), Bits: NewBitset(49)}
	var buf bytes.Buffer
	info, err := SaveShardedStoreCohorts(&buf, st, 4, append(cohorts, stale))
	if err != nil {
		t.Fatal(err)
	}
	if info.Cohorts != len(cohorts) {
		t.Fatalf("saved %d cohorts, want the %d current ones (stale dropped)", info.Cohorts, len(cohorts))
	}
	_, got, _, err := LoadShardedCohorts(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c.Name == "stale" {
			t.Fatal("stale cohort crossed the snapshot boundary")
		}
	}
}

// TestCohortSegmentHostile: flipped bytes anywhere in the cohort
// segment fail the crc; truncations fail the read; hostile header
// counts fail validation. Loud errors, never panics, never silently
// short cohort lists.
func TestCohortSegmentHostile(t *testing.T) {
	st, cohorts := cohortFixture(t, 31)
	var buf bytes.Buffer
	info, err := SaveShardedStoreCohorts(&buf, st, 3, cohorts)
	if err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	segStart := len(snap) - int(info.CohortBytes)

	// Flip one byte at several positions inside the segment.
	for _, off := range []int{0, int(info.CohortBytes) / 2, int(info.CohortBytes) - 1} {
		mut := append([]byte(nil), snap...)
		mut[segStart+off] ^= 0x40
		_, _, _, err := LoadShardedCohorts(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipped byte at segment offset %d loaded cleanly", off)
		}
		if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("flipped byte at %d: error %q does not name the checksum", off, err)
		}
	}

	// Truncations anywhere in the cohort segment are read errors.
	for _, keep := range []int{0, 1, int(info.CohortBytes) / 2, int(info.CohortBytes) - 1} {
		mut := snap[:segStart+keep]
		if _, _, _, err := LoadShardedCohorts(bytes.NewReader(mut)); err == nil {
			t.Fatalf("truncation to %d cohort bytes loaded cleanly", keep)
		}
	}

	// Hostile cohort count in the header: count with no bytes, and a
	// count beyond the cap. The v5 header is fixed(32, incl. magic) +
	// ingest ext(32) + cohort ext(16), big-endian.
	mutateHeader := func(f func(ext []byte)) []byte {
		mut := append([]byte(nil), snap...)
		f(mut[snapshotHeaderFixed+snapshotIngestExt : snapshotHeaderFixed+snapshotIngestExt+snapshotCohortExt])
		return mut
	}
	zeroBytes := mutateHeader(func(ext []byte) {
		binary.BigEndian.PutUint64(ext[4:12], 0) // count kept, bytes zeroed
	})
	if _, _, _, err := LoadShardedCohorts(bytes.NewReader(zeroBytes)); err == nil {
		t.Error("cohort count with zero segment bytes loaded cleanly")
	}
	hugeCount := mutateHeader(func(ext []byte) {
		binary.BigEndian.PutUint32(ext[0:4], 1<<31-1)
	})
	if _, _, _, err := LoadShardedCohorts(bytes.NewReader(hugeCount)); err == nil {
		t.Error("cohort count beyond the cap loaded cleanly")
	}
}

// TestCohortSegmentCodecValidation exercises decodeCohortSegment
// directly with malformed records.
func TestCohortSegmentCodecValidation(t *testing.T) {
	bits := NewBitset(9)
	bits.Set(2)
	good, err := encodeCohortSegment([]CohortRecord{{Name: "a", Expr: []byte("e"), Bits: bits}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCohortSegment(good, 1, 9); err != nil {
		t.Fatalf("well-formed segment rejected: %v", err)
	}
	if _, err := decodeCohortSegment(good, 2, 9); err == nil {
		t.Error("count beyond the records decoded cleanly")
	}
	if _, err := decodeCohortSegment(good, 1, 10); err == nil {
		t.Error("population mismatch decoded cleanly")
	}
	if _, err := decodeCohortSegment(append(good, 0xff), 1, 9); err == nil {
		t.Error("trailing bytes decoded cleanly")
	}
	dup, err := encodeCohortSegment([]CohortRecord{
		{Name: "a", Expr: []byte("e"), Bits: bits},
		{Name: "a", Expr: []byte("e"), Bits: bits},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeCohortSegment(dup, 2, 9); err == nil {
		t.Error("duplicate cohort names decoded cleanly")
	}
	if _, err := encodeCohortSegment([]CohortRecord{{Name: "", Expr: []byte("e"), Bits: bits}}); err == nil {
		t.Error("empty name encoded cleanly")
	}
	if _, err := encodeCohortSegment([]CohortRecord{{Name: strings.Repeat("x", 2000), Expr: []byte("e"), Bits: bits}}); err == nil {
		t.Error("oversized name encoded cleanly")
	}
	if _, err := encodeCohortSegment([]CohortRecord{{Name: "nil", Expr: []byte("e"), Bits: nil}}); err == nil {
		t.Error("nil bitset encoded cleanly")
	}
}

// FuzzCohortSegment throws arbitrary bytes at both the segment codec
// and the whole-snapshot loader seeded with a real v5 snapshot: any
// input may error but must never panic.
func FuzzCohortSegment(f *testing.F) {
	st, cohorts := cohortFixture(f, 13)
	var buf bytes.Buffer
	if _, err := SaveShardedStoreCohorts(&buf, st, 3, cohorts); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 3)
	f.Add(buf.Bytes()[:buf.Len()-5], 3)
	seg, err := encodeCohortSegment(cohorts)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg, len(cohorts))
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, 1)
	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > 1<<12 {
			count = 1
		}
		recs, err := decodeCohortSegment(data, count, 13)
		if err == nil {
			for _, r := range recs {
				if r.Bits == nil || r.Bits.Len() != 13 {
					t.Error("decoded cohort with wrong population")
				}
			}
		}
		col, _, _, err := LoadShardedCohorts(bytes.NewReader(data))
		if err == nil && col == nil {
			t.Error("nil collection without error")
		}
	})
}
