package store

import (
	"reflect"
	"testing"
	"time"

	"pastas/internal/model"
)

// deltaEntry builds one point diagnosis for append-path tests.
func deltaEntry(id uint64, code model.Code) model.Entry {
	day := model.Date(2011, time.March, 1)
	return model.Entry{
		ID: id, Kind: model.Point, Start: day, End: day,
		Source: model.SourceGP, Type: model.TypeDiagnosis, Code: code,
	}
}

func TestAppendIndexesNewPatientsAndUpdates(t *testing.T) {
	s := New(testCollection(t))
	if s.Generation() != 0 {
		t.Fatalf("fresh store generation = %d", s.Generation())
	}
	t90 := model.Code{System: "ICPC2", Value: "T90"}

	h := model.NewHistory(model.Patient{ID: 6, Birth: model.Date(1960, time.January, 1)})
	h.Add(deltaEntry(9001, t90))
	gen, err := s.Append(AppendBatch{
		NewHistories: []*model.History{h},
		Updates:      []HistoryUpdate{{ID: 2, Entries: []model.Entry{deltaEntry(9002, t90)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || s.Generation() != 1 {
		t.Fatalf("generation after append = %d / %d, want 1", gen, s.Generation())
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if got := s.IDsOf(s.WithCode("ICPC2", "T90")); !reflect.DeepEqual(got, []model.PatientID{1, 2, 3, 6}) {
		t.Errorf("WithCode(T90) after append = %v", got)
	}
	if i, ok := s.Ordinal(6); !ok || i != 5 {
		t.Errorf("Ordinal(6) = %d, %v", i, ok)
	}
	if got := s.MaxEntryID(); got != 9002 {
		t.Errorf("MaxEntryID = %d, want 9002", got)
	}
	st := s.Ingest()
	if st.Batches != 1 || st.EntriesApplied != 2 || st.PatientsAdded != 1 ||
		st.DeltaEntries != 2 || st.DeltaPatients != 1 {
		t.Errorf("ingest stats = %+v", st)
	}
}

func TestAppendValidationLeavesStoreUntouched(t *testing.T) {
	s := New(testCollection(t))
	fresh := func(id model.PatientID) *model.History {
		h := model.NewHistory(model.Patient{ID: id, Birth: model.Date(1960, time.January, 1)})
		h.Add(deltaEntry(8000+uint64(id), model.Code{System: "ICPC2", Value: "R74"}))
		return h
	}
	bad := map[string]AppendBatch{
		"nil history":       {NewHistories: []*model.History{nil}},
		"existing patient":  {NewHistories: []*model.History{fresh(1)}},
		"dup within batch":  {NewHistories: []*model.History{fresh(7), fresh(7)}},
		"unknown update id": {Updates: []HistoryUpdate{{ID: 99, Entries: []model.Entry{deltaEntry(8099, model.Code{})}}}},
	}
	for name, b := range bad {
		if _, err := s.Append(b); err == nil {
			t.Errorf("%s: append succeeded, want error", name)
		}
	}
	if s.Generation() != 0 || s.Len() != 5 {
		t.Errorf("failed appends mutated the store: gen %d, len %d", s.Generation(), s.Len())
	}
}

// TestAppendDisjointCardinality: an update that re-delivers a code the
// patient already matches must not set a delta bit (the disjointness
// invariant) — cardinalities and posting answers stay exact.
func TestAppendDisjointCardinality(t *testing.T) {
	s := New(testCollection(t))
	before := s.WithCode("ICPC2", "T90").Count()
	// Patient 1 already has T90 in the base layer.
	if _, err := s.Append(AppendBatch{
		Updates: []HistoryUpdate{{ID: 1, Entries: []model.Entry{deltaEntry(9100, model.Code{System: "ICPC2", Value: "T90"})}}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.WithCode("ICPC2", "T90").Count(); got != before {
		t.Errorf("T90 count changed %d -> %d on duplicate-code update", before, got)
	}
	if st := s.Ingest(); st.DeltaLists != 0 {
		t.Errorf("delta lists = %d, want 0 (all bits already present in base)", st.DeltaLists)
	}
	// The entry itself still landed in the history.
	i, _ := s.Ordinal(1)
	if got := len(s.Pin().HistoryAt(i).Entries); got != 4 {
		t.Errorf("patient 1 entries = %d, want 4", got)
	}
}

func TestCompactPreservesAnswersAndGeneration(t *testing.T) {
	s := New(testCollection(t))
	h := model.NewHistory(model.Patient{ID: 6, Birth: model.Date(1960, time.January, 1)})
	h.Add(deltaEntry(9001, model.Code{System: "ICPC2", Value: "T90"}))
	h.Add(deltaEntry(9002, model.Code{System: "ATC", Value: "N02BE01"}))
	if _, err := s.Append(AppendBatch{
		NewHistories: []*model.History{h},
		Updates:      []HistoryUpdate{{ID: 4, Entries: []model.Entry{deltaEntry(9003, model.Code{System: "ICPC2", Value: "K86"})}}},
	}); err != nil {
		t.Fatal(err)
	}

	type answers struct {
		t90, k86 []model.PatientID
		diag     int
		codes    int
	}
	snap := func() answers {
		return answers{
			t90:   s.IDsOf(s.WithCode("ICPC2", "T90")),
			k86:   s.IDsOf(s.WithCode("ICPC2", "K86")),
			diag:  s.WithType(model.TypeDiagnosis).Count(),
			codes: len(s.DistinctCodes()),
		}
	}
	before := snap()
	genBefore := s.Generation()
	deltaBefore := s.Ingest()

	stats := s.Compact()
	if s.Generation() != genBefore {
		t.Fatalf("compaction advanced the generation %d -> %d", genBefore, s.Generation())
	}
	if stats.Runs != 1 || stats.LastEntries != deltaBefore.DeltaEntries || stats.LastPatients != deltaBefore.DeltaPatients {
		t.Errorf("compaction stats = %+v (delta before: %+v)", stats, deltaBefore)
	}
	if st := s.Ingest(); st.DeltaEntries != 0 || st.DeltaPatients != 0 || st.DeltaLists != 0 {
		t.Errorf("delta not emptied by compaction: %+v", st)
	}
	if after := snap(); !reflect.DeepEqual(before, after) {
		t.Errorf("answers changed across compaction:\nbefore %+v\nafter  %+v", before, after)
	}
	// Compacting an empty delta is a no-op.
	if again := s.Compact(); again.Runs != 1 {
		t.Errorf("empty-delta compact ran: %+v", again)
	}
}

func TestPinAndFreezeIsolateAppends(t *testing.T) {
	s := New(testCollection(t))
	frozen := s.Freeze()
	v := s.Pin()

	h := model.NewHistory(model.Patient{ID: 6, Birth: model.Date(1960, time.January, 1)})
	h.Add(deltaEntry(9001, model.Code{System: "ICPC2", Value: "T90"}))
	if _, err := s.Append(AppendBatch{NewHistories: []*model.History{h}}); err != nil {
		t.Fatal(err)
	}

	if s.Len() != 6 || s.Generation() != 1 {
		t.Fatalf("live store: len %d gen %d", s.Len(), s.Generation())
	}
	if frozen.Len() != 5 || frozen.Generation() != 0 {
		t.Errorf("frozen store sees the append: len %d gen %d", frozen.Len(), frozen.Generation())
	}
	if v.Len() != 5 || v.Generation() != 0 {
		t.Errorf("pinned view sees the append: len %d gen %d", v.Len(), v.Generation())
	}
	if _, ok := v.Ordinal(6); ok {
		t.Error("pinned view resolves a patient appended after the pin")
	}
}
