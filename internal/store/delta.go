package store

import (
	"fmt"

	"pastas/internal/model"
)

// This file is the mutable-tail half of the live-ingest design: the
// append path that absorbs new entries and patients into per-key delta
// postings, the clamped layered-read helpers every consumer of
// base ∪ delta goes through, and the revision-pinning API (Pin / Freeze)
// that gives multi-call readers one consistent generation.

// HistoryUpdate appends entries to an existing patient's history.
type HistoryUpdate struct {
	ID      model.PatientID
	Entries []model.Entry
}

// AppendBatch is one unit of ingest: brand-new patients plus new entries
// for patients already in the store. Append takes ownership of the
// histories and entry slices; callers must not retain or mutate them.
type AppendBatch struct {
	NewHistories []*model.History
	Updates      []HistoryUpdate
}

// IngestStats reports cumulative append activity and the pending delta
// size. Snapshotted per revision — read it again after an Append to see
// the new numbers.
type IngestStats struct {
	Generation     uint64 `json:"generation"`
	Batches        uint64 `json:"batches"`
	EntriesApplied uint64 `json:"entries_applied"`
	PatientsAdded  uint64 `json:"patients_added"`
	DeltaEntries   int    `json:"delta_entries"`
	DeltaPatients  int    `json:"delta_patients"`
	DeltaLists     int    `json:"delta_lists"`
	Compactions    uint64 `json:"compactions"`
}

// Generation returns the store's generation counter. It advances on every
// Append (compaction is semantically invisible and does not advance it);
// everything derived from store contents — plan caches, scan bounds,
// planner feedback, memoized stats — is epoched by this value.
func (s *Store) Generation() uint64 { return s.loadRev().gen }

// Ingest returns cumulative ingest counters for the current revision.
func (s *Store) Ingest() IngestStats {
	r := s.loadRev()
	st := r.ingest
	st.Generation = r.gen
	st.DeltaEntries = r.deltaEntries
	st.DeltaPatients = r.deltaPatients
	st.DeltaLists = r.delta.lists()
	st.Compactions = r.compaction.Runs
	return st
}

// LastCompaction reports background-compaction statistics.
func (s *Store) LastCompaction() CompactionStats { return s.loadRev().compaction }

// Pin returns a full-population View over the current revision. Unlike
// the Store's ad-hoc read methods, every call on the returned view
// answers from the same generation.
func (s *Store) Pin() *View {
	r := s.loadRev()
	return &View{r: r, lo: 0, hi: len(r.hists)}
}

// Freeze returns a read-only Store pinned to the current revision —
// appends to the original are invisible to it. Used where an API needs a
// *Store but the caller needs generation consistency across calls (the
// reference interpreter under concurrent ingest). Appending to a frozen
// store diverges it from the original; don't.
func (s *Store) Freeze() *Store {
	out := &Store{}
	out.rev.Store(s.loadRev())
	return out
}

// MaxEntryID returns the largest entry ID present, so an incremental
// consumer can seed its ID counter past everything batch-built. Computed
// lazily per revision (appends track it incrementally).
func (s *Store) MaxEntryID() uint64 { return s.loadRev().computeMaxEntryID() }

// computeMaxEntryID scans for the max entry ID the first time it is
// asked for on a revision whose constructor did not stamp it (snapshot
// loads); constructor- and append-built revisions consume the Once at
// build time so the scan never runs.
func (r *storeRev) computeMaxEntryID() uint64 {
	r.maxIDOnce.Do(func() {
		var max uint64
		for _, h := range r.hists {
			for j := range h.Entries {
				if h.Entries[j].ID > max {
					max = h.Entries[j].ID
				}
			}
		}
		r.maxEntryID = max
	})
	return r.maxEntryID
}

// --- layered read helpers -------------------------------------------------
//
// Bitsets in a layer may be shorter than the current population (they were
// created at an older revision's size), so every helper clamps the range it
// touches to the bitset's own capacity; bits past it are implicitly zero.

// layerOrInto ORs a whole layer bitset into out (out at least as long).
func layerOrInto(out, bs *Bitset) {
	if bs != nil {
		out.OrAt(bs, 0)
	}
}

// layerGet reports bit i across one layer bitset.
func layerGet(bs *Bitset, i int) bool {
	return bs != nil && i < bs.Len() && bs.Get(i)
}

// layeredHas reports bit i across both layers.
func layeredHas(base, delta *Bitset, i int) bool {
	return layerGet(base, i) || layerGet(delta, i)
}

// layerCountRange counts set bits in [lo, hi) of one layer bitset.
func layerCountRange(bs *Bitset, lo, hi int) int {
	if bs == nil {
		return 0
	}
	if n := bs.Len(); hi > n {
		hi = n
	}
	if lo >= hi {
		return 0
	}
	return bs.CountRange(lo, hi)
}

// layerAnyInRange reports whether any bit in [lo, hi) is set in one layer.
func layerAnyInRange(bs *Bitset, lo, hi int) bool {
	if bs == nil {
		return false
	}
	if n := bs.Len(); hi > n {
		hi = n
	}
	return lo < hi && bs.AnyInRange(lo, hi)
}

// layerOrSlice ORs bits [lo, hi) of one layer bitset into out, where out's
// bit 0 corresponds to absolute ordinal lo.
func layerOrSlice(out, bs *Bitset, lo, hi int) {
	if bs == nil {
		return
	}
	if n := bs.Len(); hi > n {
		hi = n
	}
	if lo < hi {
		out.OrSliceOf(bs, lo, hi)
	}
}

// growClone returns a copy of bs with capacity n (bs may be nil or short).
func growClone(bs *Bitset, n int) *Bitset {
	out := NewBitset(n)
	if bs != nil {
		out.OrAt(bs, 0)
	}
	return out
}

// --- append ---------------------------------------------------------------

// deltaWriter copy-on-writes one posting map for an append batch: the map
// itself is cloned up front (shallow — bitset pointers shared with the
// previous revision), and each key's bitset is cloned-with-growth the
// first time the batch touches it.
type mapCOW[K comparable] struct {
	m      map[K]*Bitset
	cloned map[K]bool
	n      int // capacity for grown bitsets
}

func newMapCOW[K comparable](src map[K]*Bitset, n int) *mapCOW[K] {
	m := make(map[K]*Bitset, len(src)+8)
	for k, v := range src {
		m[k] = v
	}
	return &mapCOW[K]{m: m, cloned: make(map[K]bool), n: n}
}

// set sets bit i for key k, cloning the key's bitset on first touch.
func (c *mapCOW[K]) set(k K, i int) {
	if !c.cloned[k] {
		c.m[k] = growClone(c.m[k], c.n)
		c.cloned[k] = true
	}
	c.m[k].Set(i)
}

// Append applies one batch and publishes a new revision with the
// generation advanced by one. New-patient IDs must be absent from the
// store and unique within the batch; update IDs must be present. The
// batch is validated before anything is published, so a failed Append
// leaves the store untouched. Readers are never blocked: they keep
// answering from the previous revision until the atomic publish.
func (s *Store) Append(b AppendBatch) (uint64, error) {
	if len(b.NewHistories) == 0 {
		empty := true
		for _, u := range b.Updates {
			if len(u.Entries) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return s.Generation(), nil
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.loadRev()
	n := len(cur.hists)
	n2 := n + len(b.NewHistories)

	// Validate the whole batch before building anything.
	seen := make(map[model.PatientID]bool, len(b.NewHistories))
	for _, h := range b.NewHistories {
		if h == nil {
			return cur.gen, fmt.Errorf("store: append: nil history")
		}
		id := h.Patient.ID
		if _, ok := cur.ordinalOf(id); ok {
			return cur.gen, fmt.Errorf("store: append: patient %d already present", id)
		}
		if seen[id] {
			return cur.gen, fmt.Errorf("store: append: duplicate new patient %d in batch", id)
		}
		seen[id] = true
	}
	for _, u := range b.Updates {
		if _, ok := cur.ordinalOf(u.ID); !ok {
			return cur.gen, fmt.Errorf("store: append: update for unknown patient %d", u.ID)
		}
	}

	hists2 := make([]*model.History, n, n2)
	copy(hists2, cur.hists)
	ids2 := make([]model.PatientID, n, n2)
	copy(ids2, cur.ids)
	ordDelta2 := make(map[model.PatientID]int, len(cur.ordDelta)+len(b.NewHistories))
	for k, v := range cur.ordDelta {
		ordDelta2[k] = v
	}

	codeCOW := newMapCOW(cur.delta.byCodeValue, n2)
	typeCOW := newMapCOW(cur.delta.byType, n2)
	sourceCOW := newMapCOW(cur.delta.bySource, n2)

	stats2 := cur.stats.clone()
	codes2 := cur.codes
	codesGrown := false
	maxID := cur.computeMaxEntryID()

	added := 0
	// mark indexes one entry at ordinal i, honoring the disjointness
	// invariant: a delta bit is set only when the patient is absent from
	// base ∪ delta for that key, which also makes stats increments exact.
	mark := func(i int, e *model.Entry) {
		if e.ID > maxID {
			maxID = e.ID
		}
		if !e.Code.IsZero() {
			k := codeKey{e.Code.System, e.Code.Value}
			if !layeredHas(cur.base.byCodeValue[k], codeCOW.m[k], i) {
				if _, known := codeCOW.m[k]; !known {
					if _, inBase := cur.base.byCodeValue[k]; !inBase {
						if !codesGrown {
							codes2 = append([]model.Code(nil), cur.codes...)
							codesGrown = true
						}
						codes2 = append(codes2, model.Code{System: k.system, Value: k.value})
					}
				}
				codeCOW.set(k, i)
				stats2.codeCard[k]++
			}
		}
		if !layeredHas(cur.base.byType[e.Type], typeCOW.m[e.Type], i) {
			typeCOW.set(e.Type, i)
			stats2.typeCard[e.Type]++
		}
		if !layeredHas(cur.base.bySource[e.Source], sourceCOW.m[e.Source], i) {
			sourceCOW.set(e.Source, i)
			stats2.sourceCard[e.Source]++
		}
	}

	for _, u := range b.Updates {
		if len(u.Entries) == 0 {
			continue
		}
		i, _ := cur.ordinalOf(u.ID)
		old := hists2[i]
		// Build the merged history through the public History API and
		// sort before publishing: a published history must have its
		// sorted flag set, or concurrent readers calling Sort would race.
		merged := model.NewHistory(old.Patient)
		for j := range old.Entries {
			merged.Add(old.Entries[j])
		}
		for j := range u.Entries {
			merged.Add(u.Entries[j])
			mark(i, &u.Entries[j])
		}
		merged.Sort()
		hists2[i] = merged
		added += len(u.Entries)
	}

	for _, h := range b.NewHistories {
		i := len(hists2)
		h.Sort()
		hists2 = append(hists2, h)
		ids2 = append(ids2, h.Patient.ID)
		ordDelta2[h.Patient.ID] = i
		for j := range h.Entries {
			mark(i, &h.Entries[j])
		}
		added += len(h.Entries)
	}

	if codesGrown {
		sortCodes(codes2)
	}
	stats2.Patients = n2
	stats2.Entries = cur.entries + added
	stats2.codes = codes2
	stats2.DistinctCodes = len(codes2)

	ingest2 := cur.ingest
	ingest2.Batches++
	ingest2.EntriesApplied += uint64(added)
	ingest2.PatientsAdded += uint64(len(b.NewHistories))

	next := &storeRev{
		gen:           cur.gen + 1,
		hists:         hists2,
		ids:           ids2,
		ordBase:       cur.ordBase,
		ordDelta:      ordDelta2,
		entries:       cur.entries + added,
		base:          cur.base,
		baseN:         cur.baseN,
		delta:         &postings{byCodeValue: codeCOW.m, byType: typeCOW.m, bySource: sourceCOW.m},
		deltaEntries:  cur.deltaEntries + added,
		deltaPatients: cur.deltaPatients + len(b.NewHistories),
		codes:         codes2,
		stats:         stats2,
		ingest:        ingest2,
		compaction:    cur.compaction,
		maxEntryID:    maxID,
	}
	next.maxIDOnce.Do(func() {})
	s.rev.Store(next)
	return next.gen, nil
}
