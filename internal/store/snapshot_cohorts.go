package store

// The v5 cohort segment: materialized cohorts persisted inside the
// sharded snapshot, after the postings segments. Each record is a name,
// an opaque expression blob (the engine's wire codec; the store never
// interprets it) and a container-encoded bitset over the full
// population. The header carries the record count, the segment size and
// a crc32c over the whole segment, so a truncated or tampered segment is
// refused before a single record is parsed — and every inner length is
// re-validated against the remaining bytes, so a hostile header can
// never drive an allocation or a slice past the payload.
//
// Snapshots without cohorts keep their previous version (v3 pristine, v4
// ingested) byte for byte; v5 is only written when there is a cohort to
// persist, so live-ingest batch-vs-incremental byte-identity diffs are
// unaffected.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"pastas/internal/model"
)

// snapshotVersionCohorts adds the cohort extension (record count,
// segment size, crc32c) after the ingest extension, and the cohort
// segment after the postings segments. The ingest extension is always
// present in a v5 header (zeros for a pristine store).
const snapshotVersionCohorts = 5

// snapshotCohortExt is the v5 header extension size: count uint32,
// segment bytes uint64, crc32c uint32.
const snapshotCohortExt = 4 + 8 + 4

// maxSnapshotCohorts bounds the cohort count a header may claim.
const maxSnapshotCohorts = 1 << 12

// maxCohortNameLen bounds one persisted cohort name; the engine enforces
// 200 bytes at save time, the decoder allows a little slack but never an
// attacker-sized allocation.
const maxCohortNameLen = 1 << 10

// CohortRecord is one persisted cohort: the saved expression in the
// engine's wire codec (opaque to the store) and the materialized bitset
// over the snapshot's full population.
type CohortRecord struct {
	Name string
	Expr []byte
	Bits *Bitset
}

// encodeCohortSegment renders the records back to back:
// uvarint name length + name, uvarint expr length + expr, uvarint bits
// length + container-encoded bits.
func encodeCohortSegment(cohorts []CohortRecord) ([]byte, error) {
	var out []byte
	for _, c := range cohorts {
		if c.Name == "" || len(c.Name) > maxCohortNameLen {
			return nil, fmt.Errorf("store: cohort name length %d out of range [1, %d]", len(c.Name), maxCohortNameLen)
		}
		if c.Bits == nil {
			return nil, fmt.Errorf("store: cohort %q has no bitset", c.Name)
		}
		bits, err := c.Bits.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("store: cohort %q: %w", c.Name, err)
		}
		out = binary.AppendUvarint(out, uint64(len(c.Name)))
		out = append(out, c.Name...)
		out = binary.AppendUvarint(out, uint64(len(c.Expr)))
		out = append(out, c.Expr...)
		out = binary.AppendUvarint(out, uint64(len(bits)))
		out = append(out, bits...)
	}
	return out, nil
}

// decodeCohortSegment parses a crc-verified cohort segment. count and
// patients come from the (already sanity-checked) header; every record
// field is still validated against the bytes actually present, duplicate
// names and trailing bytes are refused, and each bitset must cover the
// population exactly.
func decodeCohortSegment(data []byte, count, patients int) ([]CohortRecord, error) {
	out := make([]CohortRecord, 0, count)
	seen := make(map[string]bool, count)
	for i := 0; i < count; i++ {
		name, rest, err := readCohortField(data, maxCohortNameLen, "name")
		if err != nil {
			return nil, fmt.Errorf("store: cohort segment: record %d: %w", i, err)
		}
		if len(name) == 0 {
			return nil, fmt.Errorf("store: cohort segment: record %d: empty name", i)
		}
		expr, rest, err := readCohortField(rest, len(rest), "expression")
		if err != nil {
			return nil, fmt.Errorf("store: cohort segment: record %d (%q): %w", i, name, err)
		}
		bits, rest, err := readCohortField(rest, len(rest), "bitset")
		if err != nil {
			return nil, fmt.Errorf("store: cohort segment: record %d (%q): %w", i, name, err)
		}
		b := new(Bitset)
		if err := b.UnmarshalBinary(bits); err != nil {
			return nil, fmt.Errorf("store: cohort segment: record %d (%q): %w", i, name, err)
		}
		if b.Len() != patients {
			return nil, fmt.Errorf("store: cohort segment: record %d (%q): bitset covers %d patients, snapshot has %d",
				i, name, b.Len(), patients)
		}
		if seen[string(name)] {
			return nil, fmt.Errorf("store: cohort segment: duplicate cohort %q", name)
		}
		seen[string(name)] = true
		out = append(out, CohortRecord{
			Name: string(name),
			Expr: append([]byte(nil), expr...),
			Bits: b,
		})
		data = rest
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("store: cohort segment: %d trailing bytes after last record", len(data))
	}
	return out, nil
}

// readCohortField reads one uvarint-length-prefixed field, bounding the
// claimed length by both the caller's cap and the bytes remaining.
func readCohortField(data []byte, maxLen int, what string) (field, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, nil, fmt.Errorf("%s length: truncated varint", what)
	}
	data = data[used:]
	if n > uint64(maxLen) || n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%s length %d exceeds remaining %d bytes", what, n, len(data))
	}
	return data[:n], data[n:], nil
}

// SaveShardedStoreCohorts is SaveShardedStore plus a cohort segment:
// when cohorts is non-empty the snapshot is written as v5, carrying the
// materialized cohorts; with no cohorts it is byte-identical to
// SaveShardedStore.
func SaveShardedStoreCohorts(w io.Writer, s *Store, shards int, cohorts []CohortRecord) (*SnapshotInfo, error) {
	r := s.loadRev()
	col := r.collection()
	// A cohort exported just before a concurrent append no longer covers
	// the pinned population — the very append that outdated it has already
	// invalidated it in the workspace, so it is dropped here too rather
	// than failing the save.
	kept := make([]CohortRecord, 0, len(cohorts))
	for _, c := range cohorts {
		if c.Bits != nil && c.Bits.Len() == col.Len() {
			kept = append(kept, c)
		}
	}
	cohorts = kept
	var prov *ingestProvenance
	if r.gen != 0 {
		prov = &ingestProvenance{
			generation:    r.gen,
			deltaEntries:  r.deltaEntries,
			deltaPatients: r.deltaPatients,
			compactions:   r.compaction.Runs,
		}
	}
	return saveSharded(w, col, shards, prov, cohorts)
}

// LoadShardedCohorts is LoadSharded plus the decoded cohort records
// (nil for pre-v5 snapshots).
func LoadShardedCohorts(r io.Reader) (*model.Collection, []CohortRecord, *SnapshotInfo, error) {
	return loadShardedFull(bufio.NewReaderSize(r, snapshotBufSize))
}

// readCohortSegment drains and decodes the cohort segment off the
// stream; call after the postings segments have been consumed.
func readCohortSegment(r io.Reader, info *SnapshotInfo) ([]CohortRecord, error) {
	if info.Version < snapshotVersionCohorts || info.Cohorts == 0 {
		return nil, nil
	}
	seg := make([]byte, int(info.CohortBytes))
	if _, err := io.ReadFull(r, seg); err != nil {
		return nil, fmt.Errorf("store: load snapshot: cohort segment: read %d bytes: %w", info.CohortBytes, err)
	}
	if got := crc32.Checksum(seg, crcTable); got != info.CohortChecksum {
		return nil, fmt.Errorf("store: load snapshot: cohort segment: checksum mismatch (got %08x, want %08x)", got, info.CohortChecksum)
	}
	return decodeCohortSegment(seg, info.Cohorts, info.Patients)
}
