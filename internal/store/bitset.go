package store

import (
	"fmt"
	"math/bits"
	"sort"
)

// Bitset is a fixed-capacity bit vector over patient ordinals. Cohort
// queries over the 168k-patient data set reduce to AND/OR/ANDNOT over these,
// which is what keeps interactive filtering inside the paper's 100 ms
// budget at full scale.
//
// Storage is containerized (see container.go): the ordinal space is split
// into aligned 65,536-bit chunks, each held as a sorted array, packed
// words, or run list depending on density. Sparse postings cost 2 bytes
// per patient instead of n/8, set operations dispatch to kernels matched
// to the operand densities, and Count reads cached per-container
// cardinalities. The public API is unchanged from the flat-word version.
type Bitset struct {
	cs []container
	n  int // capacity in bits
}

// NewBitset returns an empty set with capacity n.
func NewBitset(n int) *Bitset {
	return &Bitset{cs: make([]container, (n+containerBits-1)/containerBits), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// containerSpan returns the number of valid bits in container ci: a full
// containerBits except for the capacity-truncated tail.
func (b *Bitset) containerSpan(ci int) int {
	span := b.n - ci<<16
	if span > containerBits {
		span = containerBits
	}
	return span
}

// Set marks bit i.
func (b *Bitset) Set(i int) {
	if uint(i) >= uint(b.n) {
		panic(fmt.Sprintf("store: bitset: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.cs[i>>16].set(uint16(i & containerMask))
}

// Clear unmarks bit i.
func (b *Bitset) Clear(i int) {
	if uint(i) >= uint(b.n) {
		panic(fmt.Sprintf("store: bitset: Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.cs[i>>16].clear(uint16(i & containerMask))
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	if uint(i) >= uint(b.n) {
		panic(fmt.Sprintf("store: bitset: Get(%d) out of range [0,%d)", i, b.n))
	}
	return b.cs[i>>16].get(uint16(i & containerMask))
}

// Count returns the number of set bits. Cardinalities are cached per
// container, so this is O(capacity / 2^16), not a popcount over words.
func (b *Bitset) Count() int {
	c := 0
	for i := range b.cs {
		c += b.cs[i].card
	}
	return c
}

// Clone returns a copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{cs: make([]container, len(b.cs)), n: b.n}
	for i := range b.cs {
		c.cs[i] = b.cs[i].clone()
	}
	return c
}

// And intersects in place (receiver ∩= other) and returns the receiver.
func (b *Bitset) And(other *Bitset) *Bitset {
	for i := range b.cs {
		b.cs[i] = andContainers(&b.cs[i], &other.cs[i])
	}
	return b
}

// Or unions in place and returns the receiver.
func (b *Bitset) Or(other *Bitset) *Bitset {
	for i := range b.cs {
		b.cs[i] = orContainers(&b.cs[i], &other.cs[i])
	}
	return b
}

// AndNot removes other's bits in place and returns the receiver.
func (b *Bitset) AndNot(other *Bitset) *Bitset {
	for i := range b.cs {
		b.cs[i] = andNotContainers(&b.cs[i], &other.cs[i])
	}
	return b
}

// Not complements in place (within capacity) and returns the receiver.
func (b *Bitset) Not() *Bitset {
	for i := range b.cs {
		b.cs[i] = notContainer(&b.cs[i], b.containerSpan(i))
	}
	return b
}

// orWord ORs a 64-bit word into the receiver at word index wi (bit
// 64*wi), updating the touched container in whatever form it holds.
func (b *Bitset) orWord(wi int, w uint64) {
	if w == 0 {
		return
	}
	c := &b.cs[wi>>10]
	lw := wi & (containerWords - 1)
	switch c.typ {
	case ctBitmap:
		old := c.bmp[lw]
		if nw := old | w; nw != old {
			c.bmp[lw] = nw
			c.card += bits.OnesCount64(nw &^ old)
		}
	case ctArray:
		if c.card+bits.OnesCount64(w) > arrayMaxCard {
			c.toBitmap()
			b.orWord(wi, w)
			return
		}
		base := uint16(lw << 6)
		for w != 0 {
			c.set(base + uint16(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	default: // run: mutate only if the word adds anything
		if missing := w &^ c.wordAt(lw); missing == 0 {
			return
		}
		c.toBitmap()
		b.orWord(wi, w)
	}
}

// wordAt materializes the container's 64-bit word at local word index lw.
func (c *container) wordAt(lw int) uint64 {
	switch c.typ {
	case ctBitmap:
		return c.bmp[lw]
	case ctArray:
		lo := uint16(lw << 6)
		var w uint64
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= lo })
		for ; i < len(c.arr) && c.arr[i]>>6 == uint16(lw); i++ {
			w |= 1 << (c.arr[i] & 63)
		}
		return w
	default:
		lo, hi := lw<<6, lw<<6+63
		var w uint64
		i := sort.Search(len(c.runs), func(i int) bool { return int(c.runs[i].hi) >= lo })
		for ; i < len(c.runs) && int(c.runs[i].lo) <= hi; i++ {
			s, e := int(c.runs[i].lo), int(c.runs[i].hi)
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			w |= (^uint64(0) >> (63 - uint(e-lo))) &^ ((1 << uint(s-lo)) - 1)
		}
		return w
	}
}

// setRange sets bits [lo, hi) of the receiver.
func (b *Bitset) setRange(lo, hi int) {
	for lo < hi {
		ci := lo >> 16
		cEnd := (ci + 1) << 16
		if cEnd > hi {
			cEnd = hi
		}
		c := &b.cs[ci]
		rLo, rHi := lo-ci<<16, cEnd-ci<<16
		switch {
		case c.card == 0:
			c.typ = ctRun
			c.arr, c.bmp = nil, nil
			c.runs = []interval16{{uint16(rLo), uint16(rHi - 1)}}
			c.card = rHi - rLo
		case c.typ == ctRun:
			c.runs = mergeRuns(c.runs, []interval16{{uint16(rLo), uint16(rHi - 1)}})
			card := 0
			for _, r := range c.runs {
				card += int(r.hi) - int(r.lo) + 1
			}
			c.card = card
		default:
			c.toBitmap()
			c.card += zeroFill(c.bmp, rLo, rHi)
		}
		lo = cEnd
	}
}

// OrAt unions other into the receiver with other's bit 0 mapped to bit off
// of the receiver, and returns the receiver. This is how per-shard results
// merge into a global cohort bitset: each shard owns a contiguous ordinal
// range starting at its offset.
func (b *Bitset) OrAt(other *Bitset, off int) *Bitset {
	if other.n == 0 {
		return b
	}
	baseWord, shift := off>>6, uint(off&63)
	srcWords := (other.n + 63) / 64
	var scratch []uint64
	for ci := range other.cs {
		c := &other.cs[ci]
		if c.card == 0 {
			continue
		}
		var ws []uint64
		if c.typ == ctBitmap {
			ws = c.bmp
		} else {
			if scratch == nil {
				scratch = make([]uint64, containerWords)
			}
			ws = c.words(scratch)
		}
		nw := srcWords - ci*containerWords
		if nw > containerWords {
			nw = containerWords
		}
		cwBase := baseWord + ci*containerWords
		for wi := 0; wi < nw; wi++ {
			w := ws[wi]
			if w == 0 {
				continue
			}
			b.orWord(cwBase+wi, w<<shift)
			if shift != 0 {
				if hw := w >> (64 - shift); hw != 0 {
					b.orWord(cwBase+wi+1, hw)
				}
			}
		}
	}
	return b
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	c := 0
	for ci := lo >> 16; ci <= (hi-1)>>16; ci++ {
		rLo, rHi := 0, containerBits
		if base := ci << 16; base < lo {
			rLo = lo - base
		}
		if base := ci << 16; base+containerBits > hi {
			rHi = hi - base
		}
		c += b.cs[ci].countRange(rLo, rHi)
	}
	return c
}

// OrSliceOf ORs src's bit range [lo, hi) into the receiver, src's bit lo
// mapped to the receiver's bit 0 — the inverse of OrAt. This is how a
// shard view answers index lookups from its parent's postings without
// duplicating them: the parent's bitset is sliced on the fly.
func (b *Bitset) OrSliceOf(src *Bitset, lo, hi int) *Bitset {
	if hi-lo <= 0 {
		return b
	}
	for ci := lo >> 16; ci <= (hi-1)>>16; ci++ {
		c := &src.cs[ci]
		if c.card == 0 {
			continue
		}
		cBase := ci << 16
		rLo, rHi := 0, containerBits
		if cBase < lo {
			rLo = lo - cBase
		}
		if cBase+containerBits > hi {
			rHi = hi - cBase
		}
		switch c.typ {
		case ctArray:
			i := sort.Search(len(c.arr), func(i int) bool { return int(c.arr[i]) >= rLo })
			for ; i < len(c.arr) && int(c.arr[i]) < rHi; i++ {
				b.Set(cBase + int(c.arr[i]) - lo)
			}
		case ctRun:
			for _, r := range c.runs {
				s, e := int(r.lo), int(r.hi)+1
				if s < rLo {
					s = rLo
				}
				if e > rHi {
					e = rHi
				}
				if s < e {
					b.setRange(cBase+s-lo, cBase+e-lo)
				}
			}
		default: // bitmap: shift whole words into place
			for wi := rLo >> 6; wi <= (rHi-1)>>6; wi++ {
				w := c.bmp[wi]
				if wi == rLo>>6 {
					w &= ^uint64(0) << (uint(rLo) & 63)
				}
				if wi == (rHi-1)>>6 {
					if rem := uint(rHi) & 63; rem != 0 {
						w &= (1 << rem) - 1
					}
				}
				if w == 0 {
					continue
				}
				dBit := cBase + wi<<6 - lo
				if dBit < 0 {
					b.orWord(0, w>>uint(-dBit))
					continue
				}
				sh := uint(dBit & 63)
				b.orWord(dBit>>6, w<<sh)
				if sh != 0 {
					if hw := w >> (64 - sh); hw != 0 {
						b.orWord(dBit>>6+1, hw)
					}
				}
			}
		}
	}
	return b
}

// SliceRange extracts the bit range [lo, hi) as a new bitset of capacity
// hi-lo.
func (b *Bitset) SliceRange(lo, hi int) *Bitset {
	if hi < lo {
		hi = lo
	}
	return NewBitset(hi-lo).OrSliceOf(b, lo, hi)
}

// Equal reports whether two bitsets have the same capacity and identical
// contents.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.cs {
		if !eqContainers(&b.cs[i], &other.cs[i]) {
			return false
		}
	}
	return true
}

// AnyInRange reports whether any bit in [lo, hi) is set; used to skip whole
// shards whose candidate mask is empty.
func (b *Bitset) AnyInRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	for ci := lo >> 16; ci <= (hi-1)>>16; ci++ {
		rLo, rHi := 0, containerBits
		if base := ci << 16; base < lo {
			rLo = lo - base
		}
		if base := ci << 16; base+containerBits > hi {
			rHi = hi - base
		}
		if b.cs[ci].anyInRange(rLo, rHi) {
			return true
		}
	}
	return false
}

// Range calls fn for every set bit in ascending order; fn returning false
// stops the iteration.
func (b *Bitset) Range(fn func(i int) bool) {
	for ci := range b.cs {
		if !b.cs[ci].iterate(ci<<16, fn) {
			return
		}
	}
}

// FirstN returns a same-capacity bitset keeping only the first n set
// bits (in ascending order). Callers that need a bounded sample of a
// cohort truncate before resolving ordinals to IDs, so a
// 150k-patient cohort does not ship 150k IDs over the shard wire to
// show 100.
func (b *Bitset) FirstN(n int) *Bitset {
	out := NewBitset(b.n)
	if n <= 0 {
		return out
	}
	kept := 0
	b.Range(func(i int) bool {
		out.Set(i)
		kept++
		return kept < n
	})
	return out
}

// Ones returns the indices of all set bits.
func (b *Bitset) Ones() []int {
	out := make([]int, 0, b.Count())
	b.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
