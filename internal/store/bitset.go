package store

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity bit vector over patient ordinals. Cohort
// queries over the 168k-patient data set reduce to AND/OR/ANDNOT over these,
// which is what keeps interactive filtering inside the paper's 100 ms
// budget at full scale.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty set with capacity n.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set marks bit i.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks bit i.
func (b *Bitset) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// And intersects in place (receiver ∩= other) and returns the receiver.
func (b *Bitset) And(other *Bitset) *Bitset {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
	return b
}

// Or unions in place and returns the receiver.
func (b *Bitset) Or(other *Bitset) *Bitset {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	return b
}

// AndNot removes other's bits in place and returns the receiver.
func (b *Bitset) AndNot(other *Bitset) *Bitset {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
	return b
}

// Not complements in place (within capacity) and returns the receiver.
func (b *Bitset) Not() *Bitset {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	// Mask tail bits beyond capacity.
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
	return b
}

// OrAt unions other into the receiver with other's bit 0 mapped to bit off
// of the receiver, and returns the receiver. This is how per-shard results
// merge into a global cohort bitset: each shard owns a contiguous ordinal
// range starting at its offset.
func (b *Bitset) OrAt(other *Bitset, off int) *Bitset {
	if other.n == 0 {
		return b
	}
	base, shift := off>>6, uint(off&63)
	for i, w := range other.words {
		if w == 0 {
			continue
		}
		b.words[base+i] |= w << shift
		if shift != 0 && base+i+1 < len(b.words) {
			b.words[base+i+1] |= w >> (64 - shift)
		}
	}
	return b
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loWord, hiWord := lo>>6, (hi-1)>>6
	c := 0
	for wi := loWord; wi <= hiWord; wi++ {
		w := b.words[wi]
		if wi == loWord {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiWord {
			if rem := uint(hi) & 63; rem != 0 {
				w &= (1 << rem) - 1
			}
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// OrSliceOf ORs src's bit range [lo, hi) into the receiver, src's bit lo
// mapped to the receiver's bit 0 — the inverse of OrAt. This is how a
// shard view answers index lookups from its parent's postings without
// duplicating them: the parent's bitset is sliced on the fly.
func (b *Bitset) OrSliceOf(src *Bitset, lo, hi int) *Bitset {
	n := hi - lo
	if n <= 0 {
		return b
	}
	base, shift := lo>>6, uint(lo&63)
	words := (n + 63) / 64
	for i := 0; i < words; i++ {
		w := src.words[base+i] >> shift
		if shift != 0 && base+i+1 < len(src.words) {
			w |= src.words[base+i+1] << (64 - shift)
		}
		if i == words-1 {
			if rem := uint(n) & 63; rem != 0 {
				w &= (1 << rem) - 1
			}
		}
		b.words[i] |= w
	}
	return b
}

// SliceRange extracts the bit range [lo, hi) as a new bitset of capacity
// hi-lo.
func (b *Bitset) SliceRange(lo, hi int) *Bitset {
	if hi < lo {
		hi = lo
	}
	return NewBitset(hi-lo).OrSliceOf(b, lo, hi)
}

// Equal reports whether two bitsets have the same capacity and identical
// contents.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// AnyInRange reports whether any bit in [lo, hi) is set; used to skip whole
// shards whose candidate mask is empty.
func (b *Bitset) AnyInRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	loWord, hiWord := lo>>6, (hi-1)>>6
	for wi := loWord; wi <= hiWord; wi++ {
		w := b.words[wi]
		if wi == loWord {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiWord {
			if rem := uint(hi) & 63; rem != 0 {
				w &= (1 << rem) - 1
			}
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// MarshalBinary encodes the bitset for the shard wire protocol: the bit
// capacity as a uvarint followed by the payload words, little-endian.
func (b *Bitset) MarshalBinary() ([]byte, error) {
	out := binary.AppendUvarint(make([]byte, 0, 10+8*len(b.words)), uint64(b.n))
	for _, w := range b.words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

// UnmarshalBinary decodes a bitset written by MarshalBinary. The word
// count is validated against both the declared capacity and the bytes
// actually present, so a truncated or hostile payload errors instead of
// allocating from a lie.
func (b *Bitset) UnmarshalBinary(data []byte) error {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("store: bitset: truncated capacity")
	}
	data = data[k:]
	// Bound the capacity by the bytes present before converting to int,
	// so a 2^63-bit claim can neither overflow nor allocate.
	if n > uint64(len(data))*8+63 {
		return fmt.Errorf("store: bitset: capacity %d exceeds %d payload bytes", n, len(data))
	}
	words := (int(n) + 63) / 64
	if len(data) != 8*words {
		return fmt.Errorf("store: bitset: capacity %d needs %d payload words, have %d bytes", n, words, len(data))
	}
	b.n = int(n)
	b.words = make([]uint64, words)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	// Reject set bits beyond the declared capacity: they would silently
	// leak into ordinal space after an OrAt merge.
	if rem := b.n & 63; rem != 0 && words > 0 {
		if b.words[words-1]&^((1<<uint(rem))-1) != 0 {
			return fmt.Errorf("store: bitset: set bits beyond capacity %d", b.n)
		}
	}
	return nil
}

// Range calls fn for every set bit in ascending order; fn returning false
// stops the iteration.
func (b *Bitset) Range(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// FirstN returns a same-capacity bitset keeping only the first n set
// bits (in ascending order). Callers that need a bounded sample of a
// cohort truncate before resolving ordinals to IDs, so a
// 150k-patient cohort does not ship 150k IDs over the shard wire to
// show 100.
func (b *Bitset) FirstN(n int) *Bitset {
	out := NewBitset(b.n)
	if n <= 0 {
		return out
	}
	kept := 0
	b.Range(func(i int) bool {
		out.Set(i)
		kept++
		return kept < n
	})
	return out
}

// Ones returns the indices of all set bits.
func (b *Bitset) Ones() []int {
	out := make([]int, 0, b.Count())
	b.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
