package store

import (
	"time"

	"pastas/internal/model"
)

// CompactionStats describes the fold history of a store.
type CompactionStats struct {
	Runs         uint64        `json:"runs"`
	LastEntries  int           `json:"last_entries"`  // delta entries folded by the last run
	LastPatients int           `json:"last_patients"` // delta patients folded by the last run
	LastLists    int           `json:"last_lists"`    // delta posting lists folded by the last run
	LastDuration time.Duration `json:"last_duration_ns"`
}

// Compact folds the delta postings into a fresh base layer sized to the
// current population and publishes the result. Queries keep running
// against the previous revision throughout — the fold happens entirely on
// the side, then lands with one atomic pointer store.
//
// Compaction does NOT advance the generation: the folded revision answers
// every query identically to the revision it replaces (base ∪ delta is an
// exact invariant), so caches and pinned views keyed by generation stay
// valid. Only Append advances the generation.
func (s *Store) Compact() CompactionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.loadRev()
	if cur.deltaEntries == 0 && cur.deltaPatients == 0 {
		return cur.compaction
	}
	t0 := time.Now()
	n := len(cur.hists)

	comp := cur.compaction
	comp.Runs++
	comp.LastEntries = cur.deltaEntries
	comp.LastPatients = cur.deltaPatients
	comp.LastLists = cur.delta.lists()

	ordBase := make(map[model.PatientID]int, n)
	for k, v := range cur.ordBase {
		ordBase[k] = v
	}
	for k, v := range cur.ordDelta {
		ordBase[k] = v
	}

	folded := &postings{
		byCodeValue: foldLayer(cur.base.byCodeValue, cur.delta.byCodeValue, cur.baseN, n),
		byType:      foldLayer(cur.base.byType, cur.delta.byType, cur.baseN, n),
		bySource:    foldLayer(cur.base.bySource, cur.delta.bySource, cur.baseN, n),
	}

	comp.LastDuration = time.Since(t0)
	next := &storeRev{
		gen:        cur.gen, // unchanged: the fold is invisible to readers
		hists:      cur.hists,
		ids:        cur.ids,
		ordBase:    ordBase,
		ordDelta:   map[model.PatientID]int{},
		entries:    cur.entries,
		base:       folded,
		baseN:      n,
		delta:      newPostings(),
		codes:      cur.codes,
		stats:      cur.stats,
		ingest:     cur.ingest,
		compaction: comp,
		// col deliberately left nil: reading cur.col here would race its
		// lazy Once-guarded build; the folded revision rebuilds on demand.
		maxEntryID: cur.computeMaxEntryID(),
	}
	next.maxIDOnce.Do(func() {})
	s.rev.Store(next)
	return comp
}

// foldLayer merges base and delta posting maps into one layer at capacity
// n. Keys untouched by the delta keep sharing the base bitset when it is
// already at full capacity; everything else is materialized fresh.
func foldLayer[K comparable](base, delta map[K]*Bitset, baseN, n int) map[K]*Bitset {
	out := make(map[K]*Bitset, len(base)+len(delta))
	for k, bs := range base {
		if delta[k] == nil && baseN == n {
			out[k] = bs
			continue
		}
		nb := growClone(bs, n)
		layerOrInto(nb, delta[k])
		out[k] = nb
	}
	for k, bs := range delta {
		if _, ok := out[k]; ok {
			continue
		}
		out[k] = growClone(bs, n)
	}
	return out
}
