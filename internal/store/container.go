package store

// Roaring-style bitmap containers. A Bitset's ordinal space is split into
// aligned 65,536-bit chunks, each held in whichever of three physical
// forms is cheapest for its density:
//
//   - array:  sorted []uint16 of the set positions — sparse chunks
//     (≤ arrayMaxCard members) cost 2 bytes per member instead of 8 KiB.
//   - bitmap: 1024 packed words — dense chunks keep the flat-word speed.
//   - run:    sorted, non-overlapping [lo, hi] intervals — contiguous
//     chunks (cohort results over ordinal-clustered populations, All()
//     masks) collapse to a few 4-byte pairs.
//
// And/Or/AndNot dispatch on the container-type pair, so a sparse ∧ sparse
// intersection is a two-pointer merge over a few hundred uint16s rather
// than 1024 word ops, and Count reads cached per-container cardinalities
// instead of popcounting. Containers promote (array→bitmap above
// arrayMaxCard) and demote (bitmap→array at or below it) as members come
// and go; run containers appear where complements and the wire decoder
// find contiguity, and mutation of a run falls back to bitmap form first.

import (
	"math/bits"
	"sort"
)

// Container geometry and thresholds.
const (
	containerBits  = 1 << 16            // ordinals per container
	containerWords = containerBits / 64 // 1024
	arrayMaxCard   = 4096               // above this an array promotes to bitmap
	notRunMaxCard  = arrayMaxCard / 2   // array complement stays runs below this
	containerMask  = containerBits - 1
)

// Container physical types. The zero value is an empty array container,
// so a freshly allocated []container is a valid all-empty bitset.
const (
	ctArray = iota
	ctBitmap
	ctRun
)

// interval16 is one run of set bits, inclusive on both ends.
type interval16 struct{ lo, hi uint16 }

// container is one 65,536-bit chunk. card caches the exact cardinality
// and is maintained by every mutation, so Count never re-popcounts.
type container struct {
	typ  uint8
	card int
	arr  []uint16
	bmp  []uint64
	runs []interval16
}

// clone returns a deep copy; the result shares no memory with c.
func (c *container) clone() container {
	out := container{typ: c.typ, card: c.card}
	switch c.typ {
	case ctArray:
		if len(c.arr) > 0 {
			out.arr = append([]uint16(nil), c.arr...)
		}
	case ctBitmap:
		out.bmp = append([]uint64(nil), c.bmp...)
	case ctRun:
		out.runs = append([]interval16(nil), c.runs...)
	}
	return out
}

// isFull reports whether the container holds every one of its 65,536
// positions. (The tail container of a non-multiple capacity can never be
// full: bits beyond the capacity are always zero.)
func (c *container) isFull() bool { return c.card == containerBits }

// full returns the canonical full container: one run covering everything.
func fullContainer() container {
	return container{typ: ctRun, card: containerBits, runs: []interval16{{0, containerBits - 1}}}
}

// get reports whether position x is set.
func (c *container) get(x uint16) bool {
	switch c.typ {
	case ctArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= x })
		return i < len(c.arr) && c.arr[i] == x
	case ctBitmap:
		return c.bmp[x>>6]&(1<<(x&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].hi >= x })
		return i < len(c.runs) && c.runs[i].lo <= x
	}
}

// set marks position x, promoting array→bitmap past arrayMaxCard. Runs
// are mutation-hostile: a set that changes anything converts to bitmap.
func (c *container) set(x uint16) {
	switch c.typ {
	case ctArray:
		n := len(c.arr)
		// Fast path: ascending insertion (index builds walk ordinals in
		// order), which keeps posting construction O(1) amortized.
		if n == 0 || c.arr[n-1] < x {
			c.arr = append(c.arr, x)
		} else {
			i := sort.Search(n, func(i int) bool { return c.arr[i] >= x })
			if i < n && c.arr[i] == x {
				return
			}
			c.arr = append(c.arr, 0)
			copy(c.arr[i+1:], c.arr[i:])
			c.arr[i] = x
		}
		c.card++
		if c.card > arrayMaxCard {
			c.toBitmap()
		}
	case ctBitmap:
		w := &c.bmp[x>>6]
		bit := uint64(1) << (x & 63)
		if *w&bit == 0 {
			*w |= bit
			c.card++
		}
	default:
		if c.get(x) {
			return
		}
		c.toBitmap()
		c.set(x)
	}
}

// clear unmarks position x, demoting bitmap→array when the cardinality
// falls back to the array range.
func (c *container) clear(x uint16) {
	switch c.typ {
	case ctArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= x })
		if i >= len(c.arr) || c.arr[i] != x {
			return
		}
		c.arr = append(c.arr[:i], c.arr[i+1:]...)
		c.card--
	case ctBitmap:
		w := &c.bmp[x>>6]
		bit := uint64(1) << (x & 63)
		if *w&bit == 0 {
			return
		}
		*w &^= bit
		c.card--
		if c.card <= arrayMaxCard {
			c.toArray()
		}
	default:
		if !c.get(x) {
			return
		}
		c.toBitmap()
		c.clear(x)
		// toBitmap + clear may leave card == arrayMaxCard; the bitmap
		// branch above already demoted in that case.
	}
}

// toBitmap converts any container to bitmap form in place.
func (c *container) toBitmap() {
	if c.typ == ctBitmap {
		return
	}
	bmp := make([]uint64, containerWords)
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			bmp[v>>6] |= 1 << (v & 63)
		}
	case ctRun:
		for _, r := range c.runs {
			fillWords(bmp, int(r.lo), int(r.hi)+1)
		}
	}
	c.typ, c.bmp, c.arr, c.runs = ctBitmap, bmp, nil, nil
}

// toArray converts any container to array form in place. The caller is
// responsible for card being array-sized.
func (c *container) toArray() {
	if c.typ == ctArray {
		return
	}
	arr := make([]uint16, 0, c.card)
	switch c.typ {
	case ctBitmap:
		for wi, w := range c.bmp {
			for w != 0 {
				arr = append(arr, uint16(wi<<6+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	case ctRun:
		for _, r := range c.runs {
			for v := int(r.lo); v <= int(r.hi); v++ {
				arr = append(arr, uint16(v))
			}
		}
	}
	c.typ, c.arr, c.bmp, c.runs = ctArray, arr, nil, nil
}

// optimize demotes a bitmap that has drifted into array range; used by
// kernels that compute cardinality anyway.
func (c *container) optimize() {
	if c.card == 0 {
		*c = container{}
		return
	}
	if c.typ == ctBitmap && c.card <= arrayMaxCard {
		c.toArray()
	}
}

// fillWords sets bits [lo, hi) of a word slice.
func fillWords(w []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		w[loW] |= loMask & hiMask
		return
	}
	w[loW] |= loMask
	for i := loW + 1; i < hiW; i++ {
		w[i] = ^uint64(0)
	}
	w[hiW] |= hiMask
}

// zeroWords clears bits [lo, hi) of a word slice and returns how many set
// bits were removed.
func zeroWords(w []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	removed := 0
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		m := loMask & hiMask
		removed = bits.OnesCount64(w[loW] & m)
		w[loW] &^= m
		return removed
	}
	removed += bits.OnesCount64(w[loW] & loMask)
	w[loW] &^= loMask
	for i := loW + 1; i < hiW; i++ {
		removed += bits.OnesCount64(w[i])
		w[i] = 0
	}
	removed += bits.OnesCount64(w[hiW] & hiMask)
	w[hiW] &^= hiMask
	return removed
}

// words materializes the container as 1024 packed words. Bitmap
// containers return their own storage — callers must treat the result as
// read-only; the others render into scratch (which must hold 1024 words).
func (c *container) words(scratch []uint64) []uint64 {
	if c.typ == ctBitmap {
		return c.bmp
	}
	for i := range scratch {
		scratch[i] = 0
	}
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			scratch[v>>6] |= 1 << (v & 63)
		}
	case ctRun:
		for _, r := range c.runs {
			fillWords(scratch, int(r.lo), int(r.hi)+1)
		}
	}
	return scratch
}

// iterate calls fn(base+position) for every set position in ascending
// order; a false return stops the walk and propagates.
func (c *container) iterate(base int, fn func(int) bool) bool {
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			if !fn(base + int(v)) {
				return false
			}
		}
	case ctBitmap:
		for wi, w := range c.bmp {
			for w != 0 {
				if !fn(base + wi<<6 + bits.TrailingZeros64(w)) {
					return false
				}
				w &= w - 1
			}
		}
	default:
		for _, r := range c.runs {
			for v := int(r.lo); v <= int(r.hi); v++ {
				if !fn(base + v) {
					return false
				}
			}
		}
	}
	return true
}

// countRange counts set positions in [lo, hi), 0 ≤ lo ≤ hi ≤ containerBits.
func (c *container) countRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	if lo == 0 && hi == containerBits {
		return c.card
	}
	switch c.typ {
	case ctArray:
		i := sort.Search(len(c.arr), func(i int) bool { return int(c.arr[i]) >= lo })
		j := sort.Search(len(c.arr), func(j int) bool { return int(c.arr[j]) >= hi })
		return j - i
	case ctBitmap:
		n := 0
		loW, hiW := lo>>6, (hi-1)>>6
		for wi := loW; wi <= hiW; wi++ {
			w := c.bmp[wi]
			if wi == loW {
				w &= ^uint64(0) << (uint(lo) & 63)
			}
			if wi == hiW {
				if rem := uint(hi) & 63; rem != 0 {
					w &= (1 << rem) - 1
				}
			}
			n += bits.OnesCount64(w)
		}
		return n
	default:
		n := 0
		for _, r := range c.runs {
			rLo, rHi := int(r.lo), int(r.hi)+1 // half-open
			if rLo < lo {
				rLo = lo
			}
			if rHi > hi {
				rHi = hi
			}
			if rLo < rHi {
				n += rHi - rLo
			}
		}
		return n
	}
}

// anyInRange reports whether any position in [lo, hi) is set.
func (c *container) anyInRange(lo, hi int) bool {
	if lo >= hi || c.card == 0 {
		return false
	}
	if lo == 0 && hi == containerBits {
		return true
	}
	switch c.typ {
	case ctArray:
		i := sort.Search(len(c.arr), func(i int) bool { return int(c.arr[i]) >= lo })
		return i < len(c.arr) && int(c.arr[i]) < hi
	case ctBitmap:
		loW, hiW := lo>>6, (hi-1)>>6
		for wi := loW; wi <= hiW; wi++ {
			w := c.bmp[wi]
			if wi == loW {
				w &= ^uint64(0) << (uint(lo) & 63)
			}
			if wi == hiW {
				if rem := uint(hi) & 63; rem != 0 {
					w &= (1 << rem) - 1
				}
			}
			if w != 0 {
				return true
			}
		}
		return false
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return int(c.runs[i].hi) >= lo })
		return i < len(c.runs) && int(c.runs[i].lo) < hi
	}
}

// --- pairwise kernels --------------------------------------------------

// andContainers returns a ∩ b as a fresh container.
func andContainers(a, b *container) container {
	if a.card == 0 || b.card == 0 {
		return container{}
	}
	if a.isFull() {
		return b.clone()
	}
	if b.isFull() {
		return a.clone()
	}
	// Normalize so the dispatch below only sees (typ(a) ≤ typ(b)) pairs;
	// intersection is symmetric.
	if a.typ > b.typ {
		a, b = b, a
	}
	switch {
	case a.typ == ctArray && b.typ == ctArray:
		out := make([]uint16, 0, min(len(a.arr), len(b.arr)))
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				out = append(out, a.arr[i])
				i++
				j++
			}
		}
		return container{typ: ctArray, card: len(out), arr: out}
	case a.typ == ctArray: // array ∩ bitmap | array ∩ run
		out := make([]uint16, 0, len(a.arr))
		for _, v := range a.arr {
			if b.get(v) {
				out = append(out, v)
			}
		}
		return container{typ: ctArray, card: len(out), arr: out}
	case a.typ == ctBitmap && b.typ == ctBitmap:
		out := make([]uint64, containerWords)
		card := 0
		for i, w := range a.bmp {
			w &= b.bmp[i]
			out[i] = w
			card += bits.OnesCount64(w)
		}
		c := container{typ: ctBitmap, card: card, bmp: out}
		c.optimize()
		return c
	case a.typ == ctBitmap: // bitmap ∩ run
		out := make([]uint64, containerWords)
		card := 0
		for _, r := range b.runs {
			lo, hi := int(r.lo), int(r.hi)+1
			loW, hiW := lo>>6, (hi-1)>>6
			for wi := loW; wi <= hiW; wi++ {
				w := a.bmp[wi]
				if wi == loW {
					w &= ^uint64(0) << (uint(lo) & 63)
				}
				if wi == hiW {
					if rem := uint(hi) & 63; rem != 0 {
						w &= (1 << rem) - 1
					}
				}
				if w != 0 {
					prev := out[wi]
					out[wi] = prev | w
					card += bits.OnesCount64(w &^ prev)
				}
			}
		}
		c := container{typ: ctBitmap, card: card, bmp: out}
		c.optimize()
		return c
	default: // run ∩ run
		var out []interval16
		card := 0
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			lo := maxU16(a.runs[i].lo, b.runs[j].lo)
			hi := minU16(a.runs[i].hi, b.runs[j].hi)
			if lo <= hi {
				out = append(out, interval16{lo, hi})
				card += int(hi) - int(lo) + 1
			}
			if a.runs[i].hi < b.runs[j].hi {
				i++
			} else {
				j++
			}
		}
		return container{typ: ctRun, card: card, runs: out}
	}
}

// orContainers returns a ∪ b as a fresh container.
func orContainers(a, b *container) container {
	if a.card == 0 {
		return b.clone()
	}
	if b.card == 0 {
		return a.clone()
	}
	if a.isFull() || b.isFull() {
		return fullContainer()
	}
	if a.typ > b.typ {
		a, b = b, a
	}
	switch {
	case a.typ == ctArray && b.typ == ctArray:
		out := make([]uint16, 0, len(a.arr)+len(b.arr))
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				out = append(out, a.arr[i])
				i++
			case a.arr[i] > b.arr[j]:
				out = append(out, b.arr[j])
				j++
			default:
				out = append(out, a.arr[i])
				i++
				j++
			}
		}
		out = append(out, a.arr[i:]...)
		out = append(out, b.arr[j:]...)
		c := container{typ: ctArray, card: len(out), arr: out}
		if c.card > arrayMaxCard {
			c.toBitmap()
		}
		return c
	case a.typ == ctArray && b.typ == ctBitmap:
		c := b.clone()
		for _, v := range a.arr {
			w := &c.bmp[v>>6]
			bit := uint64(1) << (v & 63)
			if *w&bit == 0 {
				*w |= bit
				c.card++
			}
		}
		return c
	case a.typ == ctArray: // array ∪ run
		c := b.clone()
		c.toBitmap()
		for _, v := range a.arr {
			w := &c.bmp[v>>6]
			bit := uint64(1) << (v & 63)
			if *w&bit == 0 {
				*w |= bit
				c.card++
			}
		}
		return c
	case a.typ == ctBitmap && b.typ == ctBitmap:
		out := make([]uint64, containerWords)
		card := 0
		for i, w := range a.bmp {
			w |= b.bmp[i]
			out[i] = w
			card += bits.OnesCount64(w)
		}
		return container{typ: ctBitmap, card: card, bmp: out}
	case a.typ == ctBitmap: // bitmap ∪ run
		c := a.clone()
		for _, r := range b.runs {
			c.card += zeroFill(c.bmp, int(r.lo), int(r.hi)+1)
		}
		return c
	default: // run ∪ run
		out := mergeRuns(a.runs, b.runs)
		card := 0
		for _, r := range out {
			card += int(r.hi) - int(r.lo) + 1
		}
		if card == containerBits {
			return fullContainer()
		}
		return container{typ: ctRun, card: card, runs: out}
	}
}

// zeroFill sets bits [lo, hi) of w and returns how many were newly set.
func zeroFill(w []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	added := 0
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	apply := func(wi int, m uint64) {
		added += bits.OnesCount64(m &^ w[wi])
		w[wi] |= m
	}
	if loW == hiW {
		apply(loW, loMask&hiMask)
		return added
	}
	apply(loW, loMask)
	for i := loW + 1; i < hiW; i++ {
		apply(i, ^uint64(0))
	}
	apply(hiW, hiMask)
	return added
}

// mergeRuns unions two canonical run lists into a canonical one
// (adjacent and overlapping runs coalesce).
func mergeRuns(a, b []interval16) []interval16 {
	out := make([]interval16, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(r interval16) {
		if n := len(out); n > 0 && int(r.lo) <= int(out[n-1].hi)+1 {
			if r.hi > out[n-1].hi {
				out[n-1].hi = r.hi
			}
			return
		}
		out = append(out, r)
	}
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].lo <= b[j].lo) {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	return out
}

// andNotContainers returns a \ b as a fresh container.
func andNotContainers(a, b *container) container {
	if a.card == 0 || b.isFull() {
		return container{}
	}
	if b.card == 0 {
		return a.clone()
	}
	switch a.typ {
	case ctArray:
		out := make([]uint16, 0, len(a.arr))
		for _, v := range a.arr {
			if !b.get(v) {
				out = append(out, v)
			}
		}
		return container{typ: ctArray, card: len(out), arr: out}
	case ctBitmap:
		c := a.clone()
		switch b.typ {
		case ctArray:
			for _, v := range b.arr {
				w := &c.bmp[v>>6]
				bit := uint64(1) << (v & 63)
				if *w&bit != 0 {
					*w &^= bit
					c.card--
				}
			}
		case ctBitmap:
			card := 0
			for i := range c.bmp {
				c.bmp[i] &^= b.bmp[i]
				card += bits.OnesCount64(c.bmp[i])
			}
			c.card = card
		default:
			for _, r := range b.runs {
				c.card -= zeroWords(c.bmp, int(r.lo), int(r.hi)+1)
			}
		}
		c.optimize()
		return c
	default: // run \ x: go through bitmap form
		c := a.clone()
		c.toBitmap()
		return andNotContainers(&c, b)
	}
}

// notContainer complements c within its first `bits` positions (bits is
// containerBits except for the capacity-truncated tail container).
func notContainer(c *container, numBits int) container {
	if numBits <= 0 {
		return container{}
	}
	switch c.typ {
	case ctArray:
		if c.card == 0 {
			if numBits == containerBits {
				return fullContainer()
			}
			return container{typ: ctRun, card: numBits, runs: []interval16{{0, uint16(numBits - 1)}}}
		}
		if c.card <= notRunMaxCard {
			// Sparse complement: the gaps between members form few runs.
			out := make([]interval16, 0, c.card+1)
			card := 0
			next := 0
			for _, v := range c.arr {
				if int(v) >= numBits {
					break
				}
				if next < int(v) {
					out = append(out, interval16{uint16(next), v - 1})
					card += int(v) - next
				}
				next = int(v) + 1
			}
			if next < numBits {
				out = append(out, interval16{uint16(next), uint16(numBits - 1)})
				card += numBits - next
			}
			return container{typ: ctRun, card: card, runs: out}
		}
		fallthrough
	default:
		tmp := c.clone()
		tmp.toBitmap()
		card := 0
		for i := range tmp.bmp {
			tmp.bmp[i] = ^tmp.bmp[i]
		}
		maskTailWords(tmp.bmp, numBits)
		for _, w := range tmp.bmp {
			card += bits.OnesCount64(w)
		}
		tmp.card = card
		tmp.optimize()
		return tmp
	}
}

// maskTailWords zeroes every bit at or above position numBits.
func maskTailWords(w []uint64, numBits int) {
	if numBits >= containerBits {
		return
	}
	wi := numBits >> 6
	if rem := uint(numBits) & 63; rem != 0 {
		w[wi] &= (1 << rem) - 1
		wi++
	}
	for ; wi < len(w); wi++ {
		w[wi] = 0
	}
}

// eqContainers reports whether two containers hold the same set.
func eqContainers(a, b *container) bool {
	if a.card != b.card {
		return false
	}
	if a.card == 0 {
		return true
	}
	if a.typ == b.typ {
		switch a.typ {
		case ctArray:
			for i, v := range a.arr {
				if b.arr[i] != v {
					return false
				}
			}
			return true
		case ctBitmap:
			for i, w := range a.bmp {
				if b.bmp[i] != w {
					return false
				}
			}
			return true
		default:
			// Run lists are canonical (sorted, coalesced), so equal sets
			// have identical runs.
			if len(a.runs) != len(b.runs) {
				return false
			}
			for i, r := range a.runs {
				if b.runs[i] != r {
					return false
				}
			}
			return true
		}
	}
	eq := true
	a.iterate(0, func(i int) bool {
		if !b.get(uint16(i)) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// numRuns counts the runs of consecutive set bits — the run-encoding size
// driver — without materializing anything.
func (c *container) numRuns() int {
	switch c.typ {
	case ctRun:
		return len(c.runs)
	case ctArray:
		n := 0
		for i, v := range c.arr {
			if i == 0 || v != c.arr[i-1]+1 {
				n++
			}
		}
		return n
	default:
		n := 0
		var prev uint64 // bit 63 of the previous word
		for _, w := range c.bmp {
			// A run starts at every 0→1 transition.
			n += bits.OnesCount64(w &^ (w<<1 | prev))
			prev = w >> 63
		}
		return n
	}
}

// toRuns renders the container as a canonical run list.
func (c *container) toRuns() []interval16 {
	switch c.typ {
	case ctRun:
		return c.runs
	case ctArray:
		var out []interval16
		for _, v := range c.arr {
			if n := len(out); n > 0 && out[n-1].hi+1 == v {
				out[n-1].hi = v
			} else {
				out = append(out, interval16{v, v})
			}
		}
		return out
	default:
		var out []interval16
		open := -1
		// One trailing zero word acts as a sentinel closing a run that
		// reaches position 65535.
		for wi := 0; wi <= containerWords; wi++ {
			var w uint64
			if wi < containerWords {
				w = c.bmp[wi]
			}
			base := wi << 6
			for pos := 0; pos < 64; {
				if open < 0 {
					ww := w >> uint(pos)
					if ww == 0 {
						break
					}
					pos += bits.TrailingZeros64(ww)
					open = base + pos
				} else {
					ww := ^w >> uint(pos)
					if ww == 0 {
						break // run spans the rest of this word
					}
					pos += bits.TrailingZeros64(ww)
					out = append(out, interval16{uint16(open), uint16(base + pos - 1)})
					open = -1
				}
			}
		}
		return out
	}
}

func minU16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func maxU16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
