package experiments

import (
	"fmt"
	"math/rand"

	"pastas/internal/abstraction"
	"pastas/internal/cluster"
	"pastas/internal/cohort"
	"pastas/internal/graph"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/seqalign"
	"pastas/internal/temporal"
)

// A1MergeNoiseAblation quantifies the NSEPter weakness the paper documents
// ("the merging algorithm was not very noise-resilient. It would miss an
// opportunity to merge nodes if two histories differed in one single
// position") against the alignment-based merging of project [7].
//
// A planted care pathway is replicated across histories; noise codes are
// inserted at rate ε; recovery is the mean fraction of histories a single
// node captures per pathway step.
func (s *Suite) A1MergeNoiseAblation() (Result, error) {
	backbone := []string{"A04", "T90", "K86", "F83", "K77"}
	noiseVocab := []string{"R74", "L03", "D01", "S18", "N01", "U71"}
	histories := 40
	if s.Cfg.Quick {
		histories = 20
	}
	epsilons := []float64{0, 0.05, 0.10, 0.20}

	rng := rand.New(rand.NewSource(s.Cfg.Seed + 11))
	gen := func(eps float64) [][]string {
		out := make([][]string, histories)
		for i := range out {
			var seq []string
			for _, code := range backbone {
				// Insertions before each backbone element.
				for rng.Float64() < eps {
					seq = append(seq, noiseVocab[rng.Intn(len(noiseVocab))])
				}
				seq = append(seq, code)
			}
			for rng.Float64() < eps {
				seq = append(seq, noiseVocab[rng.Intn(len(noiseVocab))])
			}
			out[i] = seq
		}
		return out
	}

	var details []string
	var serialAt0, serialAt20, msaAt20 float64
	for _, eps := range epsilons {
		seqs := gen(eps)
		gSerial, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: len(backbone)})
		if err != nil {
			return Result{}, err
		}
		gMSA := graph.MSAMerge(seqs, seqalign.ChapterCost{System: "ICPC2"})
		serial := msaRecovery(gSerial, backbone, histories)
		msa := msaRecovery(gMSA, backbone, histories)
		details = append(details, fmt.Sprintf("ε=%.2f: serial recovery %.2f, MSA recovery %.2f (serial %d nodes, MSA %d nodes)",
			eps, serial, msa, len(gSerial.Nodes), len(gMSA.Nodes)))
		switch eps {
		case 0:
			serialAt0 = serial
		case 0.20:
			serialAt20, msaAt20 = serial, msa
		}
	}

	r := Result{
		ID:       "A1",
		Title:    "Merge noise resilience: serial vs alignment-based (ablation)",
		Paper:    "serial merging misses merges when histories differ in one position; project [7] employed alignment methods to reduce the amount of noise",
		Measured: fmt.Sprintf("planted 5-step pathway, %d histories: serial recovery %.2f→%.2f as ε 0→0.20; MSA holds %.2f", histories, serialAt0, serialAt20, msaAt20),
		Pass:     serialAt0 > 0.95 && serialAt20 < 0.8 && msaAt20 > serialAt20,
		Details:  details,
	}
	return r, nil
}

// A2IntervalReasoning exercises the CNTRO-style temporal substrate the
// paper says it re-implemented ("we have implemented much of the same
// functionality") and its constraint-reasoning future work: build exact
// Allen networks over derived care episodes, erase edges, and measure what
// path consistency recovers.
func (s *Suite) A2IntervalReasoning() (Result, error) {
	study, err := cohort.FromEngine(s.WB.Engine, "study", cohort.StudyCriteria(s.Window))
	if err != nil {
		return Result{}, err
	}
	sample := study.Sample(60, 7)
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 13))

	networks, erased, narrowed, exact := 0, 0, 0, 0
	inconsistent := 0
	for _, h := range sample.Collection().Histories() {
		eps := abstraction.Episodes(h, 30*model.Day)
		if len(eps) < 3 {
			continue
		}
		if len(eps) > 8 {
			eps = eps[:8]
		}
		net := temporal.FromEpisodes(eps)
		truth := net.Clone()
		networks++

		// Erase 30% of the edges.
		n := net.Size()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.30 {
					net.Erase(i, j)
					erased++
					if !net.PathConsistency() {
						inconsistent++
						continue
					}
					got := net.Relation(i, j)
					if got != temporal.Full {
						narrowed++
					}
					if got == truth.Relation(i, j) {
						exact++
					}
				}
			}
		}
	}
	if erased == 0 {
		return Result{
			ID: "A2", Title: "Interval reasoning over care episodes",
			Paper:    "CNTRO-style temporal reasoning; constraint logic programming for interval reasoning (future work)",
			Measured: "no histories with ≥3 episodes in sample",
			Pass:     false,
		}, nil
	}

	r := Result{
		ID:    "A2",
		Title: "Interval reasoning over care episodes (Allen + path consistency)",
		Paper: "the prototype represents and reasons with patient events ... currently investigating constraint logic programming to handle interval reasoning",
		Measured: fmt.Sprintf("%d episode networks: %d edges erased, %.0f%% narrowed by propagation, %.0f%% recovered exactly, %d inconsistencies",
			networks, erased, 100*float64(narrowed)/float64(erased), 100*float64(exact)/float64(erased), inconsistent),
		Pass: inconsistent == 0 && narrowed > erased/2,
	}
	return r, nil
}

// X1ClusteredOrdering evaluates the clustering extension: ordering the
// timeline's vertical axis by trajectory similarity should place similar
// histories adjacently — measured as the mean alignment distance between
// vertically adjacent rows, ID order vs clustered order. (Extension; the
// paper sorts by ID or anchor, and motivates orderings that expose
// cohort-level patterns.)
func (s *Suite) X1ClusteredOrdering() (Result, error) {
	seqs, err := s.diabeticSequences(60)
	if err != nil {
		return Result{}, err
	}
	if len(seqs) < 8 {
		return Result{
			ID: "X1", Title: "Clustered vertical ordering (extension)",
			Paper: "—", Measured: "too few sequences at this scale", Pass: false,
		}, nil
	}
	cost := seqalign.ChapterCost{System: "ICPC2"}
	dist := cluster.DistanceMatrix(seqs, cost)

	adjacency := func(order []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(order); i++ {
			total += dist[order[i]][order[i+1]]
		}
		return total / float64(len(order)-1)
	}

	idOrder := make([]int, len(seqs))
	for i := range idOrder {
		idOrder[i] = i
	}
	k := len(seqs) / 8
	if k < 2 {
		k = 2
	}
	res, err := cluster.Agglomerative(dist, k)
	if err != nil {
		return Result{}, err
	}
	idMean := adjacency(idOrder)
	clMean := adjacency(res.Order())
	sil := cluster.Silhouette(dist, res)

	r := Result{
		ID:    "X1",
		Title: "Clustered vertical ordering (extension)",
		Paper: "vertical axis is patient IDs; orderings that stack similar histories make cohort patterns visible (motivation, §IV-B)",
		Measured: fmt.Sprintf("%d diabetic trajectories, k=%d: mean adjacent-row distance %.3f (ID order) → %.3f (clustered, −%.0f%%), silhouette %.2f",
			len(seqs), k, idMean, clMean, 100*(1-clMean/idMean), sil),
		Pass: clMean < idMean,
	}
	return r, nil
}

// A3AssociationMining reproduces project [7]'s "mined for relations between
// the diagnosis codes themselves" over the synthetic registry.
func (s *Suite) A3AssociationMining() (Result, error) {
	seqs, err := s.diabeticSequences(2000)
	if err != nil {
		return Result{}, err
	}
	co := mining.CoOccurrence(seqs, mining.Options{MinSupport: 0.05})
	seqRules := mining.Sequential(seqs, mining.Options{MinSupport: 0.05})

	// The diabetes-hypertension comorbidity the generator plants must
	// surface with positive lift.
	var t90k86 *mining.Rule
	for i := range co {
		r := &co[i]
		if (r.A == "K86" && r.B == "T90") || (r.A == "T90" && r.B == "K86") {
			t90k86 = r
			break
		}
	}
	var details []string
	for _, r := range mining.Top(co, 5) {
		details = append(details, "co-occurrence: "+r.String())
	}
	for _, r := range mining.Top(seqRules, 5) {
		details = append(details, "sequential: "+r.String())
	}

	measured := fmt.Sprintf("%d histories: %d co-occurrence rules, %d sequential rules", len(seqs), len(co), len(seqRules))
	pass := len(co) > 0 && len(seqRules) > 0
	if t90k86 != nil {
		measured += fmt.Sprintf("; T90∧K86 lift %.2f", t90k86.Lift)
		pass = pass && t90k86.Lift > 0.9
	}
	r := Result{
		ID:       "A3",
		Title:    "Relations between diagnosis codes (mining)",
		Paper:    "mined for relations between the diagnosis codes themselves [project 7]",
		Measured: measured,
		Pass:     pass,
		Details:  details,
	}
	return r, nil
}
