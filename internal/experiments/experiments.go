// Package experiments regenerates every figure and reported number in the
// paper's evaluation: Figs. 1-4, the Section-IV cohort selection (13,000 of
// 168,000) and recognition survey (92/7/1), the abstract's scale claims
// (100k+ cohort analysis, 10k+ web timelines), the 0.1 s interaction
// budget, and the ablations DESIGN.md calls out (merge noise resilience,
// interval reasoning, code-relation mining). The experiment index lives in
// DESIGN.md §4; measured-vs-paper goes to EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pastas/internal/core"
	"pastas/internal/model"
	"pastas/internal/synth"
)

// Config scales the suite.
type Config struct {
	// Population is the synthetic population size; the paper's full data
	// set is 168,000.
	Population int
	// Seed drives all generation.
	Seed int64
	// OutDir receives SVG/JSON artifacts ("" = skip writing).
	OutDir string
	// Quick trims trial counts and page counts for use inside tests.
	Quick bool
}

// DefaultConfig is the full paper-scale run.
func DefaultConfig() Config {
	return Config{Population: 168000, Seed: 42}
}

// Result is one experiment's outcome.
type Result struct {
	ID       string
	Title    string
	Paper    string // what the paper reports
	Measured string // what this reproduction measures
	Pass     bool   // shape agreement verdict
	Details  []string
}

// Format renders the result block for EXPERIMENTS.md.
func (r Result) Format() string {
	status := "SHAPE OK"
	if !r.Pass {
		status = "SHAPE MISMATCH"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s [%s]\n\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "* paper:    %s\n", r.Paper)
	fmt.Fprintf(&b, "* measured: %s\n", r.Measured)
	for _, d := range r.Details {
		fmt.Fprintf(&b, "  * %s\n", d)
	}
	return b.String()
}

// Suite holds the shared workbench all experiments run against.
type Suite struct {
	Cfg    Config
	WB     *core.Workbench
	Window model.Period

	// BuildTime records how long generation+integration+indexing took —
	// part of the E3 scale story.
	BuildTime time.Duration
}

// NewSuite generates and loads the population once.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Population <= 0 {
		cfg.Population = 168000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	gen := synth.DefaultConfig(cfg.Population)
	gen.Seed = cfg.Seed
	start := time.Now()
	wb, err := core.Synthesize(gen)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Suite{
		Cfg:       cfg,
		WB:        wb,
		Window:    gen.Window(),
		BuildTime: time.Since(start),
	}, nil
}

// RunAll executes every experiment in index order.
func (s *Suite) RunAll() ([]Result, error) {
	runs := []func() (Result, error){
		s.F1Workbench,
		s.F2aMergedGraph,
		s.F2bZoomedOut,
		s.F3Preattentive,
		s.F4QueryBuilder,
		s.E1CohortSelection,
		s.E2RecognitionSurvey,
		s.E3LargeCohortAnalysis,
		s.E4WebTimelines,
		s.E5InteractionBudget,
		s.A1MergeNoiseAblation,
		s.A2IntervalReasoning,
		s.A3AssociationMining,
		s.X1ClusteredOrdering,
	}
	out := make([]Result, 0, len(runs))
	for _, run := range runs {
		r, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// writeArtifact saves content under OutDir (no-op when unset).
func (s *Suite) writeArtifact(name, content string) (string, error) {
	if s.Cfg.OutDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(s.Cfg.OutDir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: %w", err)
	}
	path := filepath.Join(s.Cfg.OutDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", fmt.Errorf("experiments: %w", err)
	}
	return path, nil
}

// scaled maps a full-population count to this run's population.
func (s *Suite) scaled(fullCount int) float64 {
	return float64(fullCount) * float64(s.Cfg.Population) / 168000.0
}

// within reports |got-want|/want <= tol (want > 0).
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d/want <= tol
}
