package experiments

import (
	"fmt"
	"strings"

	"pastas/internal/align"
	"pastas/internal/cohort"
	"pastas/internal/graph"
	"pastas/internal/model"
	"pastas/internal/perception"
	"pastas/internal/query"
	"pastas/internal/render"
)

// F1Workbench regenerates Fig. 1: the main workbench window over a chronic
// sub-cohort — gray history bars, diagnosis rectangles, blood-pressure
// arrows, medication-class colorings, axes and zoom.
func (s *Suite) F1Workbench() (Result, error) {
	study, err := cohort.FromEngine(s.WB.Engine, "study", cohort.StudyCriteria(s.Window))
	if err != nil {
		return Result{}, err
	}
	panel := study.Sample(100, 1)
	col := panel.Collection()

	// The detail panel shows the cursor hovering the first patient's
	// first diagnosis, as in the screenshot's bottom display.
	opt := render.TimelineOptions{Tooltips: true, Legend: true}
	if col.Len() > 0 {
		h := col.At(0)
		if e := h.First(func(e *model.Entry) bool { return e.Type == model.TypeDiagnosis }); e != nil {
			opt.DetailPatient = h.Patient.ID
			opt.DetailAt = e.Start
		}
	}
	svg := render.Timeline(col, opt)
	path, err := s.writeArtifact("fig1_workbench.svg", svg)
	if err != nil {
		return Result{}, err
	}

	// The aligned variant: months relative to first hypertension control.
	res := align.Align(col, align.First(query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "K86|K87|T90")}))
	var alignedPath string
	if res.Col.Len() > 0 {
		alignedSVG := render.Timeline(res.Col, render.TimelineOptions{Aligned: res, Tooltips: true})
		alignedPath, err = s.writeArtifact("fig1_workbench_aligned.svg", alignedSVG)
		if err != nil {
			return Result{}, err
		}
	}

	encodings := []string{
		render.ColorHistoryBar, // gray bars
		render.ColorDiagnosis,  // diagnosis rectangles
		render.ColorArrow,      // BP arrows
		"Medication classes",   // class legend
		"time axis",
	}
	missing := 0
	for _, enc := range encodings {
		if !strings.Contains(svg, enc) {
			missing++
		}
	}

	r := Result{
		ID:    "F1",
		Title: "Workbench timeline view (Fig. 1)",
		Paper: "gray bar per history; rectangles = diagnoses; arrows = blood pressure; colors = medication classes; details under cursor; calendar or aligned axis; two zoom sliders",
		Measured: fmt.Sprintf("%d-patient panel rendered, %d KiB SVG, all %d encodings present, aligned variant with %d/%d histories anchored",
			col.Len(), len(svg)/1024, len(encodings)-missing, res.Col.Len(), col.Len()),
		Pass: missing == 0 && col.Len() > 0,
	}
	if path != "" {
		r.Details = append(r.Details, "artifact: "+path)
	}
	if alignedPath != "" {
		r.Details = append(r.Details, "artifact: "+alignedPath)
	}
	return r, nil
}

// diabeticSequences extracts ICPC-2 diagnosis sequences for patients with
// a T90 diagnosis, NSEPter's Fig. 2 input.
func (s *Suite) diabeticSequences(max int) ([][]string, error) {
	diab, err := cohort.FromEngine(s.WB.Engine, "diabetics", query.Has{
		Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", "T90")},
	})
	if err != nil {
		return nil, err
	}
	sample := diab.Sample(max, 2)
	var seqs [][]string
	for _, h := range sample.Collection().Histories() {
		var seq []string
		for _, c := range h.CodeSequence(model.TypeDiagnosis) {
			if c.System == "ICPC2" {
				seq = append(seq, c.Value)
			}
		}
		if len(seq) >= 2 {
			seqs = append(seqs, seq)
		}
	}
	return seqs, nil
}

// F2aMergedGraph regenerates Fig. 2a: a small diabetes graph merged around
// the first incidence of T90, edge thickness scaling with history count.
func (s *Suite) F2aMergedGraph() (Result, error) {
	seqs, err := s.diabeticSequences(12)
	if err != nil {
		return Result{}, err
	}
	g, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", MaxOccurrences: 1, Depth: 2})
	if err != nil {
		return Result{}, err
	}
	l := graph.Layered(g)
	svg := render.Graph(g, l, render.GraphOptions{Labels: true})
	path, err := s.writeArtifact("fig2a_graph.svg", svg)
	if err != nil {
		return Result{}, err
	}

	anchorHistories := 0
	for _, n := range g.Nodes {
		if n.Anchor && n.Histories() > anchorHistories {
			anchorHistories = n.Histories()
		}
	}
	r := Result{
		ID:    "F2a",
		Title: "NSEPter merged graph around first T90 (Fig. 2a)",
		Paper: "thicker lines indicate several patients follow the same path before and after the diabetes code T90, the first occurrence merged across all histories",
		Measured: fmt.Sprintf("%d histories; anchor merges %d histories; %d nodes, %d edges, compression %.2fx, max edge weight %d",
			len(seqs), anchorHistories, len(g.Nodes), len(g.Edges), g.Compression(), g.MaxEdgeWeight()),
		Pass: anchorHistories == len(seqs) && g.MaxEdgeWeight() > 1,
	}
	if path != "" {
		r.Details = append(r.Details, "artifact: "+path)
	}
	return r, nil
}

// F2bZoomedOut regenerates Fig. 2b: several hundred patients in one merged
// graph, quantifying the crowding that made it "virtually unreadable".
func (s *Suite) F2bZoomedOut() (Result, error) {
	seqs, err := s.diabeticSequences(400)
	if err != nil {
		return Result{}, err
	}
	small := seqs
	if len(small) > 12 {
		small = small[:12]
	}
	gSmall, err := graph.SerialMerge(small, graph.SerialOptions{Pattern: "T90", Depth: 2})
	if err != nil {
		return Result{}, err
	}
	gLarge, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 2})
	if err != nil {
		return Result{}, err
	}
	lSmall, lLarge := graph.Layered(gSmall), graph.Layered(gLarge)
	crossSmall := graph.Crossings(gSmall, lSmall)
	crossLarge := graph.Crossings(gLarge, lLarge)

	svg := render.Graph(gLarge, lLarge, render.GraphOptions{Labels: false, NodeSpacingX: 40, NodeSpacingY: 14})
	path, err := s.writeArtifact("fig2b_zoomed_out.svg", svg)
	if err != nil {
		return Result{}, err
	}

	r := Result{
		ID:    "F2b",
		Title: "Zoomed-out merged graph, several hundred patients (Fig. 2b)",
		Paper: "the graphs quickly became crowded and virtually unreadable ... basically a web of edges; with larger zoom factors context was lost",
		Measured: fmt.Sprintf("%d histories: %d nodes, %d edges, %d crossings, max %d nodes per column (vs %d histories: %d crossings)",
			len(seqs), len(gLarge.Nodes), len(gLarge.Edges), crossLarge, lLarge.MaxPerCol,
			len(small), crossSmall),
		Pass: crossLarge > 10*maxInt(crossSmall, 1) && lLarge.MaxPerCol > 3*lSmall.MaxPerCol,
	}
	if path != "" {
		r.Details = append(r.Details, "artifact: "+path)
	}
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// F3Preattentive regenerates Fig. 3 and the flat-vs-linear search result
// that motivates the encoding rules.
func (s *Suite) F3Preattentive() (Result, error) {
	feat, _ := render.PreattentiveStimulus(render.StimulusOptions{Distractors: 48, Seed: 3})
	conj, _ := render.PreattentiveStimulus(render.StimulusOptions{Distractors: 48, Conjunction: true, Seed: 3})
	p1, err := s.writeArtifact("fig3_feature.svg", feat)
	if err != nil {
		return Result{}, err
	}
	p2, err := s.writeArtifact("fig3_conjunction.svg", conj)
	if err != nil {
		return Result{}, err
	}

	trials := 400
	if s.Cfg.Quick {
		trials = 100
	}
	m := perception.DefaultModel()
	ns := []int{1, 5, 10, 20, 30, 50}
	featSeries := m.Series(perception.Feature, ns, trials, s.Cfg.Seed)
	conjSeries := m.Series(perception.Conjunction, ns, trials, s.Cfg.Seed)
	_, featSlope := perception.FitLine(featSeries)
	_, conjSlope := perception.FitLine(conjSeries)

	r := Result{
		ID:    "F3",
		Title: "Preattentive pop-out vs conjunction search (Fig. 3)",
		Paper: "time to find the red circle is independent of the number of distracting elements; conjunction search time increases linearly",
		Measured: fmt.Sprintf("feature slope %.1f ms/item (flat), conjunction slope %.1f ms/item (linear), %d trials/cell",
			featSlope, conjSlope, trials),
		Pass: featSlope < 5 && conjSlope >= 15 && conjSlope <= 40,
		Details: []string{
			strings.TrimSpace(perception.FormatSeries(perception.Feature, featSeries)),
			strings.TrimSpace(perception.FormatSeries(perception.Conjunction, conjSeries)),
		},
	}
	if p1 != "" {
		r.Details = append(r.Details, "artifact: "+p1, "artifact: "+p2)
	}
	return r, nil
}

// F4QueryBuilder regenerates Fig. 4: the Query-Builder constructing the
// paper's eye-or-ear disjunction, serialized, parsed back and executed.
func (s *Suite) F4QueryBuilder() (Result, error) {
	spec := query.NewBuilder().
		HasCodeIn("ICPC2", `F.*|H.*`).
		MinContacts("gp", 2).
		Spec()
	data, err := spec.MarshalJSONSpec()
	if err != nil {
		return Result{}, err
	}
	path, err := s.writeArtifact("fig4_query.json", string(data))
	if err != nil {
		return Result{}, err
	}

	back, err := query.ParseSpec(data)
	if err != nil {
		return Result{}, err
	}
	expr, err := back.Compile()
	if err != nil {
		return Result{}, err
	}
	bits, err := s.WB.Query(expr)
	if err != nil {
		return Result{}, err
	}
	count := bits.Count()

	// The disjunction must equal the union of its branches.
	eye, err := cohort.FromEngine(s.WB.Engine, "eye", query.Has{
		Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", `F.*`)}})
	if err != nil {
		return Result{}, err
	}
	ear, err := cohort.FromEngine(s.WB.Engine, "ear", query.Has{
		Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", `H.*`)}})
	if err != nil {
		return Result{}, err
	}
	gp2, err := cohort.FromEngine(s.WB.Engine, "gp2", query.Has{
		Pred:     query.AllOf{query.TypeIs(model.TypeContact), query.SourceIs(model.SourceGP)},
		MinCount: 2})
	if err != nil {
		return Result{}, err
	}
	union := eye.Union(ear).Intersect(gp2)

	r := Result{
		ID:    "F4",
		Title: "Query-Builder over code hierarchies (Fig. 4)",
		Paper: "to specify diagnoses concerning the eye (F) or ear (H) one may specify the regular expression F.*|H.*; a graphical user interface fronts the regexes",
		Measured: fmt.Sprintf("builder → JSON → parse → compile round-trip OK; F.*|H.* ∧ ≥2 GP contacts selects %d of %d patients; equals branch-union (%d)",
			count, s.WB.Patients(), union.Count()),
		Pass: count > 0 && count == union.Count(),
	}
	if path != "" {
		r.Details = append(r.Details, "artifact: "+path)
	}
	return r, nil
}

// --- MSA demo shared with A1 ------------------------------------------------

// msaRecovery measures, for each backbone code, the largest fraction of
// histories a single node captures.
func msaRecovery(g *graph.Graph, backbone []string, histories int) float64 {
	if histories == 0 {
		return 0
	}
	total := 0.0
	for _, code := range backbone {
		total += float64(g.LargestMerge(code)) / float64(histories)
	}
	return total / float64(len(backbone))
}
