package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"pastas/internal/align"
	"pastas/internal/cohort"
	"pastas/internal/core"
	"pastas/internal/model"
	"pastas/internal/perception"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/stats"
	"pastas/internal/webapp"
)

// E1CohortSelection reproduces Section IV: "The prototype was used in the
// research project to select 13,000 patients from a data set of 168,000
// patients based on predefined characteristics."
func (s *Suite) E1CohortSelection() (Result, error) {
	start := time.Now()
	study, err := cohort.FromEngine(s.WB.Engine, "study", cohort.StudyCriteria(s.Window))
	if err != nil {
		return Result{}, err
	}
	took := time.Since(start)

	expected := s.scaled(13000)
	got := float64(study.Count())
	r := Result{
		ID:    "E1",
		Title: "Predefined-characteristics selection: 13,000 of 168,000",
		Paper: "13,000 of 168,000 patients selected (7.74%)",
		Measured: fmt.Sprintf("%d of %d selected (%.2f%%; scale-expected %.0f) in %v",
			study.Count(), s.WB.Patients(), 100*got/float64(s.WB.Patients()), expected, took.Round(time.Millisecond)),
		Pass: within(got, expected, 0.15),
		Details: []string{
			"criteria: ≥1 chronic diagnosis (ICPC-2/ICD-10) ∧ ≥6 GP contacts ∧ (admission ∨ ≥2 hospital outpatient visits), all inside the 2-year window",
		},
	}
	return r, nil
}

// E2RecognitionSurvey reproduces the Section-IV patient feedback: "only 1%
// of the patients said that everything was wrong ... while 92% could easily
// recognize their own trajectory and 7% did not remember."
func (s *Suite) E2RecognitionSurvey() (Result, error) {
	study, err := cohort.FromEngine(s.WB.Engine, "study", cohort.StudyCriteria(s.Window))
	if err != nil {
		return Result{}, err
	}
	res := stats.SimulateSurvey(study.Collection(), stats.DefaultSurveyParams())
	rec, notRem, wrong := res.Proportions()

	r := Result{
		ID:       "E2",
		Title:    "Patient recognition survey (92% / 7% / 1%)",
		Paper:    "92% easily recognized their own trajectory, 7% did not remember, 1% said everything was wrong",
		Measured: fmt.Sprintf("n=%d: recognized %.1f%%, did not remember %.1f%%, everything wrong %.1f%%", res.N, 100*rec, 100*notRem, 100*wrong),
		Pass:     res.N > 0 && within(rec, 0.92, 0.04) && within(notRem, 0.07, 0.45) && within(wrong, 0.01, 0.8),
		Details: []string{
			"model: 'everything wrong' ⇐ mislinked records (1.1% per patient); 'did not remember' ⇐ recall decay 0.25·exp(-contacts/12)",
		},
	}
	return r, nil
}

// E3LargeCohortAnalysis reproduces the abstract's "health researchers have
// successfully analyzed large cohorts (over 100,000 individuals)": the full
// query → align → aggregate pipeline at population scale, with the
// index-vs-scan ablation.
func (s *Suite) E3LargeCohortAnalysis() (Result, error) {
	st := s.WB.Store
	pattern := `T90|E11(\..*)?`

	t0 := time.Now()
	idx, err := st.WithCodeRegex("", pattern)
	if err != nil {
		return Result{}, err
	}
	tIndexed := time.Since(t0)

	t0 = time.Now()
	scan, err := st.WithCodeRegexScan("", pattern)
	if err != nil {
		return Result{}, err
	}
	tScan := time.Since(t0)

	if idx.Count() != scan.Count() {
		return Result{}, fmt.Errorf("experiments: index/scan disagree: %d vs %d", idx.Count(), scan.Count())
	}

	diabetics := st.Subset(idx)
	t0 = time.Now()
	aligned := align.Align(diabetics, align.First(query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}))
	tAlign := time.Since(t0)

	t0 = time.Now()
	aligned.Sort(aligned.ByAnchor())
	tSort := time.Since(t0)

	// Aggregate: contacts per month relative to anchor (the cohort-level
	// pattern an analyst reads off the aligned view).
	t0 = time.Now()
	months := make(map[int]int)
	for _, h := range aligned.Col.Histories() {
		off := aligned.Offsets[h.Patient.ID]
		for i := range h.Entries {
			e := &h.Entries[i]
			if e.Type == model.TypeContact {
				months[int((e.Start-off)/model.Month)]++
			}
		}
	}
	tAgg := time.Since(t0)

	speedup := float64(tScan) / float64(maxDuration(tIndexed, time.Microsecond))
	r := Result{
		ID:    "E3",
		Title: "Cohort analysis at 100,000+ individuals",
		Paper: "health researchers have successfully analyzed large cohorts (over 100,000 individuals) using the tool",
		Measured: fmt.Sprintf("population %d (build %v): diabetic query indexed %v vs scan %v (%.0fx), align %d histories %v, sort %v, monthly aggregate %v",
			s.WB.Patients(), s.BuildTime.Round(time.Millisecond),
			tIndexed.Round(time.Microsecond), tScan.Round(time.Millisecond), speedup,
			aligned.Col.Len(), tAlign.Round(time.Millisecond), tSort.Round(time.Millisecond), tAgg.Round(time.Millisecond)),
		Pass: tIndexed <= tScan && len(months) > 0,
	}
	return r, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// E4WebTimelines reproduces the abstract's "interactive personal health
// time-lines (for more than 10,000 individuals) on the web": serve personal
// timeline pages and measure throughput.
func (s *Suite) E4WebTimelines() (Result, error) {
	pages := 10000
	if s.Cfg.Quick {
		pages = 200
	}
	if pages > s.WB.Patients() {
		pages = s.WB.Patients()
	}
	srv := httptest.NewServer(webapp.NewServer(s.WB, webapp.DefaultConfig()))
	defer srv.Close()

	client := srv.Client()
	ids := s.WB.Store.Collection().IDs()
	start := time.Now()
	failures := 0
	for i := 0; i < pages; i++ {
		url := fmt.Sprintf("%s/timeline?patient=%d&pw=tromsø", srv.URL, uint64(ids[i]))
		resp, err := client.Get(url)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: e4: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			failures++
		}
		resp.Body.Close()
	}
	took := time.Since(start)
	perPage := took / time.Duration(pages)

	r := Result{
		ID:    "E4",
		Title: "Personal web timelines for 10,000+ individuals",
		Paper: "interactive personal health time-lines for more than 10,000 individuals on the web (pastas.no)",
		Measured: fmt.Sprintf("%d timeline pages served in %v (%.0f pages/s, %v/page), %d failures",
			pages, took.Round(time.Millisecond), float64(pages)/took.Seconds(), perPage.Round(time.Microsecond), failures),
		Pass: failures == 0 && perPage < 100*time.Millisecond,
	}
	return r, nil
}

// E5InteractionBudget reproduces the responsiveness requirement: "response
// times for mouse and typing actions should be less than 0.1 second", and
// the conclusion's caveat that the tool "can be challenging to use for very
// large data sets".
func (s *Suite) E5InteractionBudget() (Result, error) {
	sizes := []int{1000, 10000, s.WB.Patients()}
	if s.Cfg.Quick {
		sizes = []int{200, s.WB.Patients()}
	}
	var details []string
	pass := true
	for _, size := range sizes {
		if size > s.WB.Patients() {
			continue
		}
		sub := cohort.All(s.WB.Store, "all").Sample(size, 5)
		wb := core.FromCollection(sub.Collection(), s.Window)
		sess, err := core.NewSession(wb)
		if err != nil {
			return Result{}, err
		}

		if err := sess.Extract(query.Has{Pred: query.AllOf{
			query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K8.|T90`)}}); err != nil {
			return Result{}, err
		}
		if err := sess.SortBy("entries", align.ByEntryCount()); err != nil {
			return Result{}, err
		}
		if err := sess.SetZoom(2, 1.5); err != nil {
			return Result{}, err
		}
		if err := sess.FilterEvents(query.TypeIs(model.TypeDiagnosis)); err != nil {
			return Result{}, err
		}
		if err := sess.ClearFilter(); err != nil {
			return Result{}, err
		}
		if err := sess.AlignOn(align.First(query.AllOf{
			query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K8.|T90`)})); err != nil {
			return Result{}, err
		}
		_ = sess.RenderTimeline(render.TimelineOptions{MaxRows: 50})
		if v := sess.View(); v.Len() > 0 {
			h := v.At(0)
			if h.Len() > 0 {
				_ = sess.Details(h.Patient.ID, h.Entries[0].Start)
			}
		}

		violations := sess.Budget().Violations()
		status := "all ops ≤ 100 ms"
		if len(violations) > 0 {
			ops := make([]string, 0, len(violations))
			for _, v := range violations {
				ops = append(ops, fmt.Sprintf("%s max %v", v.Op, v.Max.Round(time.Millisecond)))
			}
			status = fmt.Sprintf("over budget: %v", ops)
		}
		details = append(details, fmt.Sprintf("n=%d: %s", size, status))
		// The shape claim: budget holds at 10k and below; at full scale
		// the paper itself concedes difficulty, so violations there do
		// not fail the experiment.
		if size <= 10000 && len(violations) > 0 {
			pass = false
		}

		// The paper's caveat, demonstrated: an unbounded full-view
		// render at this size (not a violation — the reproduction of
		// "challenging to use for very large data sets").
		if size == s.WB.Patients() && !s.Cfg.Quick {
			start := time.Now()
			_ = sess.RenderTimeline(render.TimelineOptions{MaxRows: 5000})
			full := time.Since(start)
			details = append(details, fmt.Sprintf(
				"n=%d: unbounded 5000-row render %v — the conclusion's 'challenging for very large data sets'",
				size, full.Round(time.Millisecond)))
		}
	}
	r := Result{
		ID:       "E5",
		Title:    "Interactive response budget (<0.1 s)",
		Paper:    "response times for mouse and typing actions should be less than 0.1 second; the tool is usable but challenging for very large data sets",
		Measured: fmt.Sprintf("session ops audited at cohort sizes %v; limit %v", sizes, perception.ShneidermanLimit),
		Pass:     pass,
		Details:  details,
	}
	return r, nil
}
