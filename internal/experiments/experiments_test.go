package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The suite at reduced scale: every experiment must run, and the shape
// verdicts that are scale-independent must pass.
func TestSuiteQuickRun(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSuite(Config{Population: 4000, Seed: 42, OutDir: dir, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("experiments = %d, want 14", len(results))
	}

	byID := map[string]Result{}
	for _, r := range results {
		byID[r.ID] = r
		if r.Paper == "" || r.Measured == "" {
			t.Errorf("%s: empty paper/measured", r.ID)
		}
		if !strings.Contains(r.Format(), r.ID) {
			t.Errorf("%s: Format missing ID", r.ID)
		}
	}

	// Scale-independent shape checks must pass even at 4k.
	for _, id := range []string{"F1", "F2a", "F3", "F4", "E2", "E3", "E4", "A1", "A2", "A3", "X1"} {
		if r := byID[id]; !r.Pass {
			t.Errorf("%s failed at quick scale: %s\n%v", id, r.Measured, r.Details)
		}
	}
	// E1 at 4k has sampling noise but should stay inside its own 15%
	// band most seeds; warn (not fail) to keep the test robust... except
	// gross failures.
	if r := byID["E1"]; !r.Pass {
		t.Logf("E1 outside band at small scale (expected occasionally): %s", r.Measured)
	}

	// Artifacts written.
	for _, name := range []string{
		"fig1_workbench.svg", "fig2a_graph.svg", "fig2b_zoomed_out.svg",
		"fig3_feature.svg", "fig3_conjunction.svg", "fig4_query.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
}

func TestWithin(t *testing.T) {
	if !within(100, 100, 0) || !within(110, 100, 0.1) || within(120, 100, 0.1) {
		t.Error("within broken")
	}
	if !within(0, 0, 0.1) || within(1, 0, 0.1) {
		t.Error("within zero-want broken")
	}
}

func TestScaled(t *testing.T) {
	s := &Suite{Cfg: Config{Population: 84000}}
	if got := s.scaled(13000); got != 6500 {
		t.Errorf("scaled = %f", got)
	}
}

func TestNoArtifactsWithoutOutDir(t *testing.T) {
	s := &Suite{Cfg: Config{}}
	path, err := s.writeArtifact("x.svg", "content")
	if err != nil || path != "" {
		t.Errorf("writeArtifact without OutDir: %q, %v", path, err)
	}
}

func TestWriteReport(t *testing.T) {
	s, err := NewSuite(Config{Population: 500, Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	results := []Result{
		{ID: "F1", Title: "one", Paper: "p", Measured: "m", Pass: true},
		{ID: "E1", Title: "two", Paper: "p", Measured: "m", Pass: false},
	}
	var b strings.Builder
	if err := WriteReport(&b, s, results, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Experiment run record",
		"1/2 shape-consistent",
		"| F1 | one | SHAPE OK |",
		"| E1 | two | MISMATCH |",
		"### F1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
