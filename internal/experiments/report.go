package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteReport renders a full run as the Markdown record cmd/experiments
// emits with -md: the generated counterpart of the hand-annotated
// EXPERIMENTS.md, for diffing a fresh environment against the recorded one.
func WriteReport(w io.Writer, s *Suite, results []Result, elapsed time.Duration) error {
	var b strings.Builder
	b.WriteString("# Experiment run record\n\n")
	fmt.Fprintf(&b, "* population: %d patients, %d entries\n", s.WB.Patients(), s.WB.Entries())
	fmt.Fprintf(&b, "* seed: %d\n", s.Cfg.Seed)
	fmt.Fprintf(&b, "* build time: %v\n", s.BuildTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "* total time: %v\n", elapsed.Round(time.Second))

	pass := 0
	for _, r := range results {
		if r.Pass {
			pass++
		}
	}
	fmt.Fprintf(&b, "* verdict: %d/%d shape-consistent\n\n", pass, len(results))

	b.WriteString("| id | title | verdict |\n|---|---|---|\n")
	for _, r := range results {
		verdict := "SHAPE OK"
		if !r.Pass {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", r.ID, r.Title, verdict)
	}
	b.WriteString("\n")

	for _, r := range results {
		b.WriteString(r.Format())
		b.WriteString("\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("experiments: write report: %w", err)
	}
	return nil
}
