package cluster

import (
	"reflect"
	"testing"

	"pastas/internal/seqalign"
)

// Two obvious groups: diabetes-like and respiratory-like sequences.
func groupedSeqs() [][]string {
	return [][]string{
		{"A04", "T90", "K86", "F83"},
		{"A04", "T90", "K86"},
		{"T90", "K86", "F83"},
		{"R74", "R78", "R95"},
		{"R74", "R95"},
		{"R74", "R78", "R95", "R81"},
	}
}

func TestSequencesRecoversGroups(t *testing.T) {
	r, err := Sequences(groupedSeqs(), seqalign.UnitCost{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 2 {
		t.Fatalf("K = %d", r.K)
	}
	// Items 0-2 together, 3-5 together.
	if r.Assign[0] != r.Assign[1] || r.Assign[1] != r.Assign[2] {
		t.Errorf("diabetes group split: %v", r.Assign)
	}
	if r.Assign[3] != r.Assign[4] || r.Assign[4] != r.Assign[5] {
		t.Errorf("respiratory group split: %v", r.Assign)
	}
	if r.Assign[0] == r.Assign[3] {
		t.Errorf("groups merged: %v", r.Assign)
	}
	sizes := r.Sizes()
	if sizes[0] != 3 || sizes[1] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestOrderGroupsMembers(t *testing.T) {
	r, err := Sequences(groupedSeqs(), seqalign.UnitCost{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	order := r.Order()
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// All members of cluster of order[0] come before the other cluster.
	first := r.Assign[order[0]]
	boundary := -1
	for i, item := range order {
		if r.Assign[item] != first {
			boundary = i
			break
		}
	}
	if boundary != 3 {
		t.Errorf("cluster boundary at %d: %v", boundary, order)
	}
	for _, item := range order[boundary:] {
		if r.Assign[item] == first {
			t.Errorf("interleaved clusters: %v", order)
		}
	}
}

func TestAgglomerativeEdgeCases(t *testing.T) {
	if _, err := Agglomerative(nil, 2); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Agglomerative([][]float64{{0, 1}}, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
	// Single item.
	r, err := Agglomerative([][]float64{{0}}, 1)
	if err != nil || r.K != 1 || r.Assign[0] != 0 {
		t.Errorf("singleton clustering: %+v, %v", r, err)
	}
	// k > n clamps to n; k < 1 clamps to 1.
	d := [][]float64{{0, 1}, {1, 0}}
	if r, _ := Agglomerative(d, 10); r.K != 2 {
		t.Errorf("k>n clamp: %d", r.K)
	}
	if r, _ := Agglomerative(d, 0); r.K != 1 {
		t.Errorf("k<1 clamp: %d", r.K)
	}
}

func TestHeightsMonotoneForUltrametric(t *testing.T) {
	// Average linkage on well-separated groups yields increasing merge
	// heights.
	r, err := Sequences(groupedSeqs(), seqalign.UnitCost{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Heights) != 5 {
		t.Fatalf("heights = %v", r.Heights)
	}
	last := r.Heights[len(r.Heights)-1]
	if last <= r.Heights[0] {
		t.Errorf("final merge not the largest: %v", r.Heights)
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	seqs := groupedSeqs()
	d := DistanceMatrix(seqs, seqalign.UnitCost{})
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("nonzero diagonal at %d", i)
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetry at %d,%d", i, j)
			}
			if d[i][j] < 0 || d[i][j] > 1 {
				t.Fatalf("out of [0,1]: %f", d[i][j])
			}
		}
	}
	// Identical sequences are at distance 0.
	same := DistanceMatrix([][]string{{"A04"}, {"A04"}}, seqalign.UnitCost{})
	if same[0][1] != 0 {
		t.Errorf("identical distance = %f", same[0][1])
	}
	// Empty sequences do not divide by zero.
	empty := DistanceMatrix([][]string{{}, {}}, seqalign.UnitCost{})
	if empty[0][1] != 0 {
		t.Errorf("empty distance = %f", empty[0][1])
	}
}

func TestSilhouettePrefersTrueK(t *testing.T) {
	seqs := groupedSeqs()
	d := DistanceMatrix(seqs, seqalign.UnitCost{})
	r2, err := Agglomerative(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Agglomerative(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Silhouette(d, r2)
	s5 := Silhouette(d, r5)
	if s2 <= s5 {
		t.Errorf("silhouette should prefer the true k=2: s2=%f s5=%f", s2, s5)
	}
	if s2 <= 0.3 {
		t.Errorf("well-separated groups should score high: %f", s2)
	}
	// Degenerate inputs.
	if got := Silhouette(d[:1], &Result{Assign: []int{0}, K: 1}); got != 0 {
		t.Errorf("single-item silhouette = %f", got)
	}
}

func TestMembers(t *testing.T) {
	r := &Result{Assign: []int{0, 1, 0, 1}, K: 2}
	if got := r.Members(0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Members(0) = %v", got)
	}
	if got := r.Members(1); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Members(1) = %v", got)
	}
}
