// Package cluster groups similar trajectories. Project [7] merged "similar
// paths" through alignment; clustering generalizes that: agglomerative
// (average-linkage) clustering over alignment distances yields groups of
// patients with similar diagnosis sequences, and a display order that
// stacks similar histories adjacently — turning the timeline's vertical
// axis from arbitrary IDs into structure, which is how cohort-level
// patterns become visible ("discover new hypotheses or get ideas for the
// best analysis strategies").
package cluster

import (
	"fmt"
	"math"
	"sort"

	"pastas/internal/seqalign"
)

// Result is a clustering of n items (indexed as given to Agglomerative).
type Result struct {
	// Assign maps item index to cluster ID (0..K-1, ordered by
	// decreasing cluster size, ties by smallest member index).
	Assign []int
	// K is the number of clusters.
	K int
	// Heights records the merge distances in order — the dendrogram
	// profile, useful for choosing K.
	Heights []float64
}

// Sizes returns member counts per cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Members returns item indices per cluster.
func (r *Result) Members(cluster int) []int {
	var out []int
	for i, c := range r.Assign {
		if c == cluster {
			out = append(out, i)
		}
	}
	return out
}

// Order returns the display order: clusters by ID, members ascending — the
// vertical arrangement for the clustered timeline.
func (r *Result) Order() []int {
	out := make([]int, 0, len(r.Assign))
	for c := 0; c < r.K; c++ {
		out = append(out, r.Members(c)...)
	}
	return out
}

// DistanceMatrix computes normalized pairwise alignment distances between
// code sequences: Distance(a,b) / max(len(a), len(b)), so values lie in
// [0, 1] regardless of sequence length.
func DistanceMatrix(seqs [][]string, cost seqalign.Cost) [][]float64 {
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			denom := float64(max(len(seqs[i]), len(seqs[j])))
			if denom == 0 {
				continue
			}
			v := seqalign.Distance(seqs[i], seqs[j], cost) / denom
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Agglomerative runs average-linkage hierarchical clustering over a
// distance matrix, cutting when k clusters remain (k ≥ 1). It returns an
// error for ragged or empty input.
func Agglomerative(dist [][]float64, k int) (*Result, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("cluster: ragged distance matrix at row %d", i)
		}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}

	// active clusters as member lists; d holds average-linkage distances.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	var heights []float64
	for aliveCount > k {
		// Find the closest pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		heights = append(heights, best)
		// Merge bj into bi with average-linkage update.
		ni, nj := float64(len(members[bi])), float64(len(members[bj]))
		for x := 0; x < n; x++ {
			if !alive[x] || x == bi || x == bj {
				continue
			}
			d[bi][x] = (ni*d[bi][x] + nj*d[bj][x]) / (ni + nj)
			d[x][bi] = d[bi][x]
		}
		members[bi] = append(members[bi], members[bj]...)
		alive[bj] = false
		aliveCount--
	}

	// Collect clusters, order by size desc then smallest member.
	type cl struct {
		items []int
	}
	var clusters []cl
	for i := 0; i < n; i++ {
		if alive[i] {
			items := append([]int(nil), members[i]...)
			sort.Ints(items)
			clusters = append(clusters, cl{items})
		}
	}
	sort.Slice(clusters, func(a, b int) bool {
		if len(clusters[a].items) != len(clusters[b].items) {
			return len(clusters[a].items) > len(clusters[b].items)
		}
		return clusters[a].items[0] < clusters[b].items[0]
	})

	res := &Result{Assign: make([]int, n), K: len(clusters), Heights: heights}
	for cid, c := range clusters {
		for _, item := range c.items {
			res.Assign[item] = cid
		}
	}
	return res, nil
}

// Sequences is the convenience pipeline: distances then clustering.
func Sequences(seqs [][]string, cost seqalign.Cost, k int) (*Result, error) {
	return Agglomerative(DistanceMatrix(seqs, cost), k)
}

// Silhouette computes the mean silhouette coefficient of a clustering
// (−1..1; higher = tighter, better-separated clusters). Items in singleton
// clusters contribute 0.
func Silhouette(dist [][]float64, r *Result) float64 {
	n := len(r.Assign)
	if n <= 1 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		own := r.Assign[i]
		// a = mean distance to own cluster (excluding self).
		var a, aN float64
		// b = min over other clusters of mean distance.
		bSums := make([]float64, r.K)
		bNs := make([]float64, r.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			c := r.Assign[j]
			if c == own {
				a += dist[i][j]
				aN++
			} else {
				bSums[c] += dist[i][j]
				bNs[c]++
			}
		}
		if aN == 0 {
			continue // singleton
		}
		a /= aN
		b := math.Inf(1)
		for c := 0; c < r.K; c++ {
			if bNs[c] > 0 {
				if v := bSums[c] / bNs[c]; v < b {
					b = v
				}
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}
