package seqalign

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, maxLen int) []string {
	vocab := []string{"T90", "T89", "K86", "R74", "A04"}
	n := rng.Intn(maxLen + 1)
	out := make([]string, n)
	for i := range out {
		out[i] = vocab[rng.Intn(len(vocab))]
	}
	return out
}

// Edit distance with unit costs is a metric: identity, symmetry, triangle
// inequality.
func TestDistanceIsMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSeq(rng, 7)
		b := randomSeq(rng, 7)
		c := randomSeq(rng, 7)
		dab := Distance(a, b, UnitCost{})
		dba := Distance(b, a, UnitCost{})
		dac := Distance(a, c, UnitCost{})
		dbc := Distance(b, c, UnitCost{})
		daa := Distance(a, a, UnitCost{})
		if daa != 0 {
			return false
		}
		if dab != dba {
			return false
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Chapter costs lower-bound nothing below the unit-cost diagonal: chapter
// distance ≤ unit distance (it can only discount substitutions).
func TestChapterCostDiscounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSeq(rng, 7)
		b := randomSeq(rng, 7)
		return Distance(a, b, ChapterCost{System: "ICPC2"}) <= Distance(a, b, UnitCost{})+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The MSA remains structurally consistent for arbitrary inputs (gap
// stripping recovers inputs; equal row widths).
func TestMSAConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		seqs := make([][]string, n)
		for i := range seqs {
			seqs[i] = randomSeq(rng, 6)
		}
		return Align(seqs, UnitCost{}).Consistent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
