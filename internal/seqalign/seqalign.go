// Package seqalign implements sequence alignment over diagnosis-code
// sequences: global (Needleman-Wunsch), local (Smith-Waterman) and
// progressive multiple alignment (center-star). The second predecessor
// project [7] "employed alignment methods and different measures to reduce
// the amount of noise" in NSEPter's merging; this package provides those
// methods, with terminology-aware substitution costs (same chapter =
// cheaper) so clinically adjacent codes align.
package seqalign

import (
	"pastas/internal/terminology"
)

// Cost prices edit operations; 0 means identical.
type Cost interface {
	// Sub is the substitution cost between two codes, in [0, 1].
	Sub(a, b string) float64
	// Gap is the insertion/deletion cost.
	Gap() float64
}

// UnitCost is plain edit distance: substitution 1, gap 1.
type UnitCost struct{}

func (UnitCost) Sub(a, b string) float64 {
	if a == b {
		return 0
	}
	return 1
}

func (UnitCost) Gap() float64 { return 1 }

// ChapterCost discounts substitutions within the same chapter of a code
// system: T89 vs T90 costs 0.5, T90 vs K86 costs 1.
type ChapterCost struct {
	System terminology.System
}

func (c ChapterCost) Sub(a, b string) float64 {
	if a == b {
		return 0
	}
	cs := terminology.For(c.System)
	if cs == nil {
		return 1
	}
	ca, cb := cs.Chapter(a), cs.Chapter(b)
	if ca != "" && ca == cb {
		return 0.5
	}
	return 1
}

func (ChapterCost) Gap() float64 { return 1 }

// Pair is one column of a pairwise alignment; -1 marks a gap.
type Pair struct {
	I, J int
}

// Alignment is an ordered list of pairwise columns.
type Alignment []Pair

// Global computes the optimal Needleman-Wunsch alignment of a and b under
// the cost model, returning the alignment and its total cost.
func Global(a, b []string, c Cost) (Alignment, float64) {
	n, m := len(a), len(b)
	gap := c.Gap()

	// dp[i][j] = min cost aligning a[:i] with b[:j].
	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, m+1)
	}
	for i := 1; i <= n; i++ {
		dp[i][0] = float64(i) * gap
	}
	for j := 1; j <= m; j++ {
		dp[0][j] = float64(j) * gap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := dp[i-1][j-1] + c.Sub(a[i-1], b[j-1])
			del := dp[i-1][j] + gap
			ins := dp[i][j-1] + gap
			dp[i][j] = min3(sub, del, ins)
		}
	}

	// Traceback (prefer substitution, then deletion, then insertion, for
	// deterministic alignments).
	var rev Alignment
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+c.Sub(a[i-1], b[j-1]):
			rev = append(rev, Pair{i - 1, j - 1})
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+gap:
			rev = append(rev, Pair{i - 1, -1})
			i--
		default:
			rev = append(rev, Pair{-1, j - 1})
			j--
		}
	}
	// Reverse.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, dp[n][m]
}

// Distance is the Global alignment cost alone.
func Distance(a, b []string, c Cost) float64 {
	_, d := Global(a, b, c)
	return d
}

// Local computes the best Smith-Waterman local alignment under a similarity
// scoring derived from the cost model (match +2, near-match +0.5, mismatch
// -1, gap -1), returning the aligned region and its score (0 if no positive-
// scoring region exists).
func Local(a, b []string, c Cost) (Alignment, float64) {
	n, m := len(a), len(b)
	sim := func(x, y string) float64 { return 2 - 3*c.Sub(x, y) }
	gap := -c.Gap()

	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, m+1)
	}
	best, bi, bj := 0.0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			v := max4(0,
				dp[i-1][j-1]+sim(a[i-1], b[j-1]),
				dp[i-1][j]+gap,
				dp[i][j-1]+gap)
			dp[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best == 0 {
		return nil, 0
	}
	var rev Alignment
	i, j := bi, bj
	for i > 0 && j > 0 && dp[i][j] > 0 {
		switch {
		case dp[i][j] == dp[i-1][j-1]+sim(a[i-1], b[j-1]):
			rev = append(rev, Pair{i - 1, j - 1})
			i--
			j--
		case dp[i][j] == dp[i-1][j]+gap:
			rev = append(rev, Pair{i - 1, -1})
			i--
		default:
			rev = append(rev, Pair{-1, j - 1})
			j--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, best
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max4(a, b, c, d float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	if d > a {
		a = d
	}
	return a
}
