package seqalign

// Progressive multiple sequence alignment (center-star): pick the sequence
// with minimum summed distance to the rest as the center, align every other
// sequence to it pairwise, and merge under "once a gap, always a gap". The
// result assigns every code occurrence a column; NSEPter's improved merging
// fuses occurrences that share (column, code), which tolerates noise
// insertions that break the original serial merge.

const gapToken = "-"

// MSA is a computed multiple alignment.
type MSA struct {
	// Seqs are the input sequences (referenced, not copied).
	Seqs [][]string
	// Rows are the aligned sequences, padded with "-" to equal length.
	Rows [][]string
	// Center is the index of the center-star sequence.
	Center int
}

// Align computes the center-star MSA under the cost model. Empty input
// returns an empty MSA; single sequences align trivially.
func Align(seqs [][]string, c Cost) *MSA {
	m := &MSA{Seqs: seqs}
	if len(seqs) == 0 {
		return m
	}
	if len(seqs) == 1 {
		m.Rows = [][]string{append([]string(nil), seqs[0]...)}
		return m
	}

	// Choose the center: minimum total pairwise distance.
	total := make([]float64, len(seqs))
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			d := Distance(seqs[i], seqs[j], c)
			total[i] += d
			total[j] += d
		}
	}
	center := 0
	for i, t := range total {
		if t < total[center] {
			center = i
		}
	}
	m.Center = center

	// centerRow accumulates gaps as sequences merge in; rows hold the
	// already-merged sequences in input order (filled progressively).
	centerRow := append([]string(nil), seqs[center]...)
	rows := make([][]string, len(seqs))

	for i := range seqs {
		if i == center {
			continue
		}
		// Align seqs[i] against the *original* center sequence; then
		// replay the alignment against the gapped centerRow.
		aln, _ := Global(stripGaps(centerRow), seqs[i], c)
		newCenter, newRow, inserts := mergeIntoCenter(centerRow, seqs[i], aln)
		// Propagate the new gap positions into every finished row.
		for j := range rows {
			if rows[j] != nil {
				rows[j] = insertGaps(rows[j], inserts)
			}
		}
		centerRow = newCenter
		rows[i] = newRow
	}
	rows[center] = centerRow
	m.Rows = rows
	return m
}

// stripGaps removes gap tokens.
func stripGaps(row []string) []string {
	out := make([]string, 0, len(row))
	for _, t := range row {
		if t != gapToken {
			out = append(out, t)
		}
	}
	return out
}

// mergeIntoCenter replays a (center, seq) pairwise alignment against the
// gapped center row. It returns the new center row, the new aligned row for
// seq, and the columns (indices into the OLD center row, in increasing
// order) where fresh gaps were inserted.
func mergeIntoCenter(centerRow, seq []string, aln Alignment) (newCenter, newRow []string, inserts []int) {
	// Map from center position (ungapped index) to its column in centerRow.
	posToCol := make([]int, 0, len(centerRow))
	for col, t := range centerRow {
		if t != gapToken {
			posToCol = append(posToCol, col)
		}
	}

	newCenter = make([]string, 0, len(centerRow)+len(seq))
	newRow = make([]string, 0, len(centerRow)+len(seq))
	col := 0 // cursor into old centerRow columns

	flushCenterThrough := func(targetCol int) {
		for col <= targetCol {
			newCenter = append(newCenter, centerRow[col])
			newRow = append(newRow, gapToken)
			col++
		}
	}

	for _, pr := range aln {
		switch {
		case pr.I >= 0 && pr.J >= 0:
			// Center position pr.I matches seq position pr.J: emit any
			// intervening old-center gap columns, then the match column.
			flushCenterThrough(posToCol[pr.I] - 1)
			newCenter = append(newCenter, centerRow[posToCol[pr.I]])
			newRow = append(newRow, seq[pr.J])
			col = posToCol[pr.I] + 1
		case pr.I >= 0:
			// Deletion: center position unmatched.
			flushCenterThrough(posToCol[pr.I] - 1)
			newCenter = append(newCenter, centerRow[posToCol[pr.I]])
			newRow = append(newRow, gapToken)
			col = posToCol[pr.I] + 1
		default:
			// Insertion: seq position with no center counterpart — a
			// fresh gap column in the (old) center at position col.
			inserts = append(inserts, col)
			newCenter = append(newCenter, gapToken)
			newRow = append(newRow, seq[pr.J])
		}
	}
	// Trailing old-center columns.
	flushCenterThrough(len(centerRow) - 1)
	return newCenter, newRow, inserts
}

// insertGaps inserts gap tokens into row before the given old-column
// indices (sorted ascending, possibly repeated).
func insertGaps(row []string, inserts []int) []string {
	if len(inserts) == 0 {
		return row
	}
	out := make([]string, 0, len(row)+len(inserts))
	k := 0
	for col := 0; col <= len(row); col++ {
		for k < len(inserts) && inserts[k] == col {
			out = append(out, gapToken)
			k++
		}
		if col < len(row) {
			out = append(out, row[col])
		}
	}
	return out
}

// Columns returns the alignment width (0 when empty).
func (m *MSA) Columns() int {
	if len(m.Rows) == 0 {
		return 0
	}
	return len(m.Rows[0])
}

// ColumnOf returns the column of the pos-th (0-based) code of sequence
// seq, or -1 when out of range.
func (m *MSA) ColumnOf(seq, pos int) int {
	if seq < 0 || seq >= len(m.Rows) {
		return -1
	}
	n := -1
	for col, t := range m.Rows[seq] {
		if t != gapToken {
			n++
			if n == pos {
				return col
			}
		}
	}
	return -1
}

// Consistent verifies structural invariants: equal row lengths and that
// stripping gaps recovers the inputs. Used by tests and as a cheap runtime
// guard in experiments.
func (m *MSA) Consistent() bool {
	if len(m.Rows) != len(m.Seqs) {
		return false
	}
	w := m.Columns()
	for i, row := range m.Rows {
		if len(row) != w {
			return false
		}
		orig := stripGaps(row)
		if len(orig) != len(m.Seqs[i]) {
			return false
		}
		for j := range orig {
			if orig[j] != m.Seqs[i][j] {
				return false
			}
		}
	}
	return true
}
