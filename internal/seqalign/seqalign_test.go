package seqalign

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGlobalIdentical(t *testing.T) {
	a := []string{"T90", "K86", "R74"}
	aln, cost := Global(a, a, UnitCost{})
	if cost != 0 {
		t.Errorf("cost = %f", cost)
	}
	if len(aln) != 3 {
		t.Fatalf("alignment = %v", aln)
	}
	for i, p := range aln {
		if p.I != i || p.J != i {
			t.Errorf("aln[%d] = %v", i, p)
		}
	}
}

func TestGlobalEditDistance(t *testing.T) {
	// Classic: kitten → sitting as tokens.
	a := []string{"k", "i", "t", "t", "e", "n"}
	b := []string{"s", "i", "t", "t", "i", "n", "g"}
	_, cost := Global(a, b, UnitCost{})
	if cost != 3 {
		t.Errorf("edit distance = %f, want 3", cost)
	}
}

func TestGlobalEmptySequences(t *testing.T) {
	aln, cost := Global(nil, []string{"a", "b"}, UnitCost{})
	if cost != 2 || len(aln) != 2 {
		t.Errorf("empty vs ab: %v %f", aln, cost)
	}
	aln, cost = Global(nil, nil, UnitCost{})
	if cost != 0 || len(aln) != 0 {
		t.Errorf("empty vs empty: %v %f", aln, cost)
	}
}

func TestGlobalCoversAllPositions(t *testing.T) {
	f := func(an, bn uint8) bool {
		rng := rand.New(rand.NewSource(int64(an)*256 + int64(bn)))
		vocab := []string{"T90", "K86", "R74", "A04", "L03"}
		a := make([]string, int(an)%8)
		b := make([]string, int(bn)%8)
		for i := range a {
			a[i] = vocab[rng.Intn(len(vocab))]
		}
		for i := range b {
			b[i] = vocab[rng.Intn(len(vocab))]
		}
		aln, cost := Global(a, b, UnitCost{})
		// Every position appears exactly once, in order.
		ai, bi := 0, 0
		for _, p := range aln {
			if p.I >= 0 {
				if p.I != ai {
					return false
				}
				ai++
			}
			if p.J >= 0 {
				if p.J != bi {
					return false
				}
				bi++
			}
		}
		if ai != len(a) || bi != len(b) {
			return false
		}
		// Cost bounded by the trivial alignments.
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return cost <= float64(len(a)+len(b)) && cost >= float64(maxLen-minInt(len(a), len(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDistanceSymmetry(t *testing.T) {
	a := []string{"T90", "K86", "R74"}
	b := []string{"T90", "R74"}
	if Distance(a, b, UnitCost{}) != Distance(b, a, UnitCost{}) {
		t.Error("distance not symmetric")
	}
}

func TestChapterCost(t *testing.T) {
	c := ChapterCost{System: "ICPC2"}
	if c.Sub("T90", "T90") != 0 {
		t.Error("identical should be 0")
	}
	if c.Sub("T90", "T89") != 0.5 {
		t.Error("same chapter should be 0.5")
	}
	if c.Sub("T90", "K86") != 1 {
		t.Error("cross chapter should be 1")
	}
	if c.Sub("???", "!!!") != 1 {
		t.Error("unknown codes should be 1")
	}
	// Chapter-aware alignment prefers pairing T89 with T90.
	a := []string{"A04", "T89", "R74"}
	b := []string{"T90", "R74"}
	aln, _ := Global(a, b, c)
	var pairedT bool
	for _, p := range aln {
		if p.I == 1 && p.J == 0 {
			pairedT = true
		}
	}
	if !pairedT {
		t.Errorf("chapter cost did not pair T89/T90: %v", aln)
	}
}

func TestLocalFindsCommonCore(t *testing.T) {
	a := []string{"X75", "T90", "K86", "K74", "X87"}
	b := []string{"L03", "T90", "K86", "K74", "U71", "R74"}
	aln, score := Local(a, b, UnitCost{})
	if score < 6 { // three matches at +2
		t.Errorf("score = %f", score)
	}
	if len(aln) != 3 {
		t.Fatalf("local alignment = %v", aln)
	}
	if a[aln[0].I] != "T90" || b[aln[0].J] != "T90" {
		t.Errorf("local start = %v", aln[0])
	}
}

func TestLocalNoCommonContent(t *testing.T) {
	aln, score := Local([]string{"A01"}, []string{"B02"}, UnitCost{})
	if aln != nil || score != 0 {
		t.Errorf("expected empty local alignment, got %v %f", aln, score)
	}
}

func TestMSATrivialCases(t *testing.T) {
	if m := Align(nil, UnitCost{}); m.Columns() != 0 || !m.Consistent() {
		t.Error("empty MSA broken")
	}
	m := Align([][]string{{"T90", "K86"}}, UnitCost{})
	if m.Columns() != 2 || !m.Consistent() {
		t.Error("single-sequence MSA broken")
	}
}

func TestMSAIdenticalSequences(t *testing.T) {
	seq := []string{"T90", "K86", "R74"}
	m := Align([][]string{seq, seq, seq}, UnitCost{})
	if !m.Consistent() {
		t.Fatal("inconsistent MSA")
	}
	if m.Columns() != 3 {
		t.Errorf("columns = %d", m.Columns())
	}
	// All rows identical, no gaps.
	for _, row := range m.Rows {
		if !reflect.DeepEqual(row, seq) {
			t.Errorf("row = %v", row)
		}
	}
}

func TestMSAWithInsertions(t *testing.T) {
	// One noisy sequence with an insertion must not break the shared
	// column structure.
	seqs := [][]string{
		{"A04", "T90", "K86"},
		{"A04", "R74", "T90", "K86"}, // R74 inserted
		{"A04", "T90", "K86"},
	}
	m := Align(seqs, UnitCost{})
	if !m.Consistent() {
		t.Fatal("inconsistent MSA")
	}
	// T90 of all three sequences must share a column.
	col0 := m.ColumnOf(0, 1)
	col1 := m.ColumnOf(1, 2)
	col2 := m.ColumnOf(2, 1)
	if col0 != col1 || col1 != col2 {
		t.Errorf("T90 columns differ: %d %d %d\nrows: %v", col0, col1, col2, m.Rows)
	}
}

func TestMSAManyRandomConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"T90", "K86", "R74", "A04", "L03", "P76"}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		seqs := make([][]string, n)
		for i := range seqs {
			l := 1 + rng.Intn(7)
			seqs[i] = make([]string, l)
			for j := range seqs[i] {
				seqs[i][j] = vocab[rng.Intn(len(vocab))]
			}
		}
		m := Align(seqs, UnitCost{})
		if !m.Consistent() {
			t.Fatalf("trial %d inconsistent: seqs=%v rows=%v", trial, seqs, m.Rows)
		}
	}
}

func TestColumnOfBounds(t *testing.T) {
	m := Align([][]string{{"A04"}}, UnitCost{})
	if m.ColumnOf(0, 0) != 0 {
		t.Error("ColumnOf(0,0) wrong")
	}
	if m.ColumnOf(0, 5) != -1 || m.ColumnOf(9, 0) != -1 || m.ColumnOf(-1, 0) != -1 {
		t.Error("ColumnOf bounds broken")
	}
}
