package abstraction

import (
	"testing"
	"time"

	"pastas/internal/model"
)

func day(n int) model.Time { return model.Date(2010, time.January, 1).AddDays(n) }

func TestChapterOf(t *testing.T) {
	cases := []struct {
		code model.Code
		want string
	}{
		{model.Code{System: "ICPC2", Value: "T90"}, "T"},
		{model.Code{System: "ICD10", Value: "E11.9"}, "IV"},
		{model.Code{System: "ATC", Value: "C07AB02"}, "C"},
		{model.Code{System: "ICPC2", Value: "ZZZ"}, ""},
		{model.Code{System: "BOGUS", Value: "X"}, ""},
	}
	for _, c := range cases {
		if got := ChapterOf(c.code); got != c.want {
			t.Errorf("ChapterOf(%v) = %q, want %q", c.code, got, c.want)
		}
	}
}

func TestGroupOf(t *testing.T) {
	if got := GroupOf(model.Code{System: "ICD10", Value: "E11.9"}); got != "E11" {
		t.Errorf("GroupOf(E11.9) = %q", got)
	}
	if got := GroupOf(model.Code{System: "ICPC2", Value: "T"}); got != "T" {
		t.Errorf("GroupOf(chapter) = %q", got)
	}
	if got := GroupOf(model.Code{System: "BOGUS", Value: "X1"}); got != "X1" {
		t.Errorf("GroupOf(unknown system) = %q", got)
	}
}

func TestAbstractCodes(t *testing.T) {
	in := []model.Code{
		{System: "ICPC2", Value: "T89"},
		{System: "ICPC2", Value: "T90"},
		{System: "ICPC2", Value: "K86"},
		{System: "ICPC2", Value: "???"},
	}
	got := AbstractCodes(in)
	want := []string{"T", "T", "K"}
	if len(got) != len(want) {
		t.Fatalf("AbstractCodes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AbstractCodes[%d] = %q", i, got[i])
		}
	}
}

func newHistory(t *testing.T) *model.History {
	t.Helper()
	h := model.NewHistory(model.Patient{ID: 1, Birth: model.Date(1950, time.June, 1)})
	add := func(id uint64, d int, typ model.Type, kind model.Kind, endDay int, code model.Code) {
		end := day(d)
		if kind == model.Interval {
			end = day(endDay)
		}
		h.Add(model.Entry{ID: id, Kind: kind, Start: day(d), End: end, Type: typ, Code: code, Source: model.SourceGP})
	}
	// Episode 1: days 0-2 (contact + two diagnoses, K86 dominant).
	add(1, 0, model.TypeContact, model.Point, 0, model.Code{})
	add(2, 0, model.TypeDiagnosis, model.Point, 0, model.Code{System: "ICPC2", Value: "K86"})
	add(3, 2, model.TypeDiagnosis, model.Point, 0, model.Code{System: "ICPC2", Value: "K86"})
	add(4, 2, model.TypeDiagnosis, model.Point, 0, model.Code{System: "ICPC2", Value: "A04"})
	// Quiet gap > 30 days.
	// Episode 2: hospital stay days 60-67 extends the episode end.
	add(5, 60, model.TypeStay, model.Interval, 67, model.Code{System: "ICD10", Value: "I21.9"})
	add(6, 60, model.TypeDiagnosis, model.Point, 0, model.Code{System: "ICD10", Value: "I21.9"})
	add(7, 65, model.TypeContact, model.Point, 0, model.Code{})
	h.Sort()
	return h
}

func TestEpisodes(t *testing.T) {
	h := newHistory(t)
	eps := Episodes(h, 30*model.Day)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if eps[0].Dominant.Value != "K86" {
		t.Errorf("episode 1 dominant = %v", eps[0].Dominant)
	}
	if eps[0].Period.Start != day(0) {
		t.Errorf("episode 1 start = %v", eps[0].Period.Start)
	}
	if eps[1].Period.End != day(67) {
		t.Errorf("episode 2 end = %v (stay must extend episode)", eps[1].Period.End)
	}
	if len(eps[0].Entries) != 4 || len(eps[1].Entries) != 3 {
		t.Errorf("episode sizes = %d, %d", len(eps[0].Entries), len(eps[1].Entries))
	}
}

func TestEpisodesEmptyAndSingle(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: 0})
	if Episodes(h, model.Day) != nil {
		t.Error("empty history must have no episodes")
	}
	h.Add(model.Entry{ID: 1, Kind: model.Point, Start: day(0), End: day(0), Type: model.TypeContact})
	eps := Episodes(h, model.Day)
	if len(eps) != 1 {
		t.Fatalf("episodes = %d", len(eps))
	}
	if eps[0].Period.Duration() != model.Day {
		t.Errorf("point episode duration = %v", eps[0].Period.Duration())
	}
}

func medEntry(id uint64, d, days int, atc string) model.Entry {
	return model.Entry{
		ID: id, Kind: model.Interval, Start: day(d), End: day(d + days),
		Type: model.TypeMedication, Source: model.SourceGP,
		Code: model.Code{System: "ATC", Value: atc},
	}
}

func TestMedicationBands(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: 0})
	// Two C07 refills with a 5-day gap (bridged), one distant C07, one A10.
	h.Add(medEntry(1, 0, 90, "C07AB02"))
	h.Add(medEntry(2, 95, 90, "C07AB02"))
	h.Add(medEntry(3, 400, 90, "C07AB02"))
	h.Add(medEntry(4, 10, 90, "A10BA02"))
	h.Sort()

	bands := MedicationBands(h, ATCTherapeutic, 14*model.Day)
	if len(bands) != 3 {
		t.Fatalf("bands = %v", bands)
	}
	// Sorted by class: A10 first.
	if bands[0].Class != "A10" || bands[1].Class != "C07" || bands[2].Class != "C07" {
		t.Errorf("band classes = %v %v %v", bands[0].Class, bands[1].Class, bands[2].Class)
	}
	if bands[1].Period.Start != day(0) || bands[1].Period.End != day(185) {
		t.Errorf("bridged band = %v", bands[1].Period)
	}
	if bands[0].Title == "" {
		t.Error("band title missing from terminology")
	}

	// Anatomical level merges C07 with anything C.
	anat := MedicationBands(h, ATCAnatomical, 400*model.Day)
	classes := map[string]bool{}
	for _, b := range anat {
		classes[b.Class] = true
	}
	if !classes["C"] || !classes["A"] || len(classes) != 2 {
		t.Errorf("anatomical classes = %v", classes)
	}
}

func TestMedicationBandsNoMeds(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: 0})
	h.Add(model.Entry{ID: 1, Kind: model.Point, Start: day(0), End: day(0), Type: model.TypeContact})
	if got := MedicationBands(h, ATCTherapeutic, 0); len(got) != 0 {
		t.Errorf("bands = %v", got)
	}
}

func TestServiceBands(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: 0})
	h.Add(model.Entry{ID: 1, Kind: model.Interval, Start: day(0), End: day(10), Type: model.TypeStay, Source: model.SourceHospital})
	h.Add(model.Entry{ID: 2, Kind: model.Interval, Start: day(20), End: day(90), Type: model.TypeService, Source: model.SourceMunicipal})
	h.Add(model.Entry{ID: 3, Kind: model.Point, Start: day(5), End: day(5), Type: model.TypeContact, Source: model.SourceGP})
	h.Sort()
	bands := ServiceBands(h)
	if len(bands) != 2 {
		t.Fatalf("service bands = %v", bands)
	}
	if bands[0].Class != "hospital stay" || bands[1].Class != "municipal service" {
		t.Errorf("labels = %q, %q", bands[0].Class, bands[1].Class)
	}
}
