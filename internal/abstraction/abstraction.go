// Package abstraction computes the higher-level views the paper layers over
// raw entries: code→chapter abstraction ("medications can be shown using a
// name for the group of drugs"), contact→episode derivation, and the
// medication-period interval concepts drawn as background colorings in
// Fig. 1. The previous project [7] "calculated abstractions over sequences
// of diagnosis instances"; this package is that machinery.
package abstraction

import (
	"sort"

	"pastas/internal/model"
	"pastas/internal/terminology"
)

// ChapterOf abstracts a code to its chapter: ICPC-2 chapter letter, ICD-10
// chapter numeral, or ATC anatomical group. Returns "" for unknown codes.
func ChapterOf(c model.Code) string {
	cs := terminology.For(terminology.System(c.System))
	if cs == nil {
		return ""
	}
	return cs.Chapter(c.Value)
}

// GroupOf abstracts a code one level up its hierarchy (the parent), falling
// back to the code itself at the top.
func GroupOf(c model.Code) string {
	cs := terminology.For(terminology.System(c.System))
	if cs == nil {
		return c.Value
	}
	if p := cs.Parent(c.Value); p != "" {
		return p
	}
	return c.Value
}

// AbstractCodes maps a code sequence to chapter level, dropping unknowns.
// This is the abstraction NSEPter's merging benefits from: T89 and T90
// both become T, so near-miss histories merge.
func AbstractCodes(codes []model.Code) []string {
	out := make([]string, 0, len(codes))
	for _, c := range codes {
		if ch := ChapterOf(c); ch != "" {
			out = append(out, ch)
		}
	}
	return out
}

// Episode is a burst of care activity: entries whose starts are separated
// by no more than the gap parameter, summarized by period and dominant
// diagnosis code.
type Episode struct {
	Period   model.Period
	Entries  []*model.Entry
	Dominant model.Code // most frequent diagnosis code, ties by code value
}

// Episodes groups a history's entries into episodes separated by quiet
// gaps of at least gap. Interval entries extend an episode to their end.
// It sorts the history in place, so it is the single-threaded,
// direct-collection form; distributed callers (and anything running
// concurrently over shared histories) go through EpisodesStable, which is
// what cohort-level tallies (core.Workbench.Episodes) use per shard.
func Episodes(h *model.History, gap model.Time) []Episode {
	h.Sort()
	return episodesOf(h.Entries, gap)
}

// EpisodesStable is Episodes without mutating the history: it reads the
// entries through SortedEntries, so concurrent map steps over shared
// histories (a shard server answering several Analyze RPCs at once)
// never reorder entries under each other.
func EpisodesStable(h *model.History, gap model.Time) []Episode {
	return episodesOf(h.SortedEntries(), gap)
}

// episodesOf is the one episode-derivation loop both entry points run;
// entries must already be in chronological order.
func episodesOf(entries []model.Entry, gap model.Time) []Episode {
	if len(entries) == 0 {
		return nil
	}
	var eps []Episode
	var cur *Episode
	for i := range entries {
		e := &entries[i]
		end := e.Start
		if e.Kind == model.Interval {
			end = e.End
		}
		if cur != nil && e.Start-cur.Period.End <= gap {
			cur.Entries = append(cur.Entries, e)
			if end > cur.Period.End {
				cur.Period.End = end
			}
			continue
		}
		eps = append(eps, Episode{Period: model.Period{Start: e.Start, End: end}, Entries: []*model.Entry{e}})
		cur = &eps[len(eps)-1]
	}
	for i := range eps {
		eps[i].Dominant = dominantDiagnosis(eps[i].Entries)
		// A point-only episode still covers its day.
		if eps[i].Period.Empty() {
			eps[i].Period.End = eps[i].Period.Start + model.Day
		}
	}
	return eps
}

func dominantDiagnosis(entries []*model.Entry) model.Code {
	counts := make(map[model.Code]int)
	for _, e := range entries {
		if e.Type == model.TypeDiagnosis && !e.Code.IsZero() {
			counts[e.Code]++
		}
	}
	var best model.Code
	bestN := 0
	for c, n := range counts {
		if n > bestN || (n == bestN && (best.IsZero() || c.Value < best.Value)) {
			best, bestN = c, n
		}
	}
	return best
}

// Band is an interval concept for rendering: a class label with its merged
// period — e.g. "C07 Beta blocking agents" from 2010-02 to 2010-11.
type Band struct {
	Class  string // abstracted class code, e.g. "C07"
	Title  string // class title from the terminology
	Period model.Period
	// OpenEnd marks bands whose true end is unknown (still-running
	// services); renderers fade the tail instead of drawing a hard edge.
	OpenEnd bool
}

// ATCLevel names the abstraction level for medication bands.
type ATCLevel int

const (
	// ATCAnatomical is level 1 (C — cardiovascular system).
	ATCAnatomical ATCLevel = 1
	// ATCTherapeutic is level 2 (C07 — beta blocking agents), the class
	// granularity of Fig. 1's colors.
	ATCTherapeutic ATCLevel = 2
)

// classPrefix truncates an ATC code to the level's code length.
func classPrefix(atc string, level ATCLevel) string {
	n := 1
	if level == ATCTherapeutic {
		n = 3
	}
	if len(atc) < n {
		return atc
	}
	return atc[:n]
}

// MedicationBands merges a history's medication intervals into per-class
// bands: overlapping or touching (within bridge) periods of the same class
// become one band. The result is sorted by class then start.
func MedicationBands(h *model.History, level ATCLevel, bridge model.Time) []Band {
	h.Sort()
	periods := make(map[string][]model.Period)
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Type != model.TypeMedication || e.Kind != model.Interval {
			continue
		}
		cls := classPrefix(e.Code.Value, level)
		if cls == "" {
			continue
		}
		periods[cls] = append(periods[cls], e.Period())
	}

	classes := make([]string, 0, len(periods))
	for cls := range periods {
		classes = append(classes, cls)
	}
	sort.Strings(classes)

	atc := terminology.ForATC()
	var out []Band
	for _, cls := range classes {
		ps := periods[cls]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
		merged := ps[:1]
		for _, p := range ps[1:] {
			last := &merged[len(merged)-1]
			if p.Start <= last.End+bridge {
				if p.End > last.End {
					last.End = p.End
				}
				continue
			}
			merged = append(merged, p)
		}
		for _, p := range merged {
			out = append(out, Band{Class: cls, Title: atc.Title(cls), Period: p})
		}
	}
	return out
}

// EpisodeTally is the mergeable map-step partial for distributed episode
// abstraction: integer sums over disjoint history sets, so per-shard
// partials merged in any grouping equal a sequential pass over the whole
// cohort — the same integral-tally discipline stats.CohortProfile uses.
type EpisodeTally struct {
	// Histories is how many histories were tallied; WithEpisodes how many
	// produced at least one episode.
	Histories    int
	WithEpisodes int
	// Episodes and Entries sum the derived episodes and the entries they
	// absorbed.
	Episodes int
	Entries  int
	// SpanTotal sums every episode's period length — the numerator of the
	// mean episode span.
	SpanTotal model.Time
	// ByDominant counts episodes by the chapter of their dominant
	// diagnosis ("-" when an episode has none).
	ByDominant map[string]int
}

// NewEpisodeTally creates an empty tally.
func NewEpisodeTally() *EpisodeTally {
	return &EpisodeTally{ByDominant: make(map[string]int)}
}

// AddHistory derives one history's episodes (without mutating it) and
// folds them into the tally.
func (t *EpisodeTally) AddHistory(h *model.History, gap model.Time) {
	t.Histories++
	eps := EpisodesStable(h, gap)
	if len(eps) == 0 {
		return
	}
	t.WithEpisodes++
	t.Episodes += len(eps)
	for i := range eps {
		t.Entries += len(eps[i].Entries)
		t.SpanTotal += eps[i].Period.End - eps[i].Period.Start
		key := "-"
		if !eps[i].Dominant.IsZero() {
			if ch := ChapterOf(eps[i].Dominant); ch != "" {
				key = ch
			} else {
				key = eps[i].Dominant.Value
			}
		}
		t.ByDominant[key]++
	}
}

// Merge folds another partial into the receiver; integer sums over
// disjoint histories are exactly associative.
func (t *EpisodeTally) Merge(o *EpisodeTally) {
	if o == nil {
		return
	}
	t.Histories += o.Histories
	t.WithEpisodes += o.WithEpisodes
	t.Episodes += o.Episodes
	t.Entries += o.Entries
	t.SpanTotal += o.SpanTotal
	if t.ByDominant == nil {
		t.ByDominant = make(map[string]int, len(o.ByDominant))
	}
	for k, n := range o.ByDominant {
		t.ByDominant[k] += n
	}
}

// HistoryCount reports how many histories the partial tallied.
func (t *EpisodeTally) HistoryCount() int { return t.Histories }

// ServiceBands extracts stay/service intervals as bands labeled by source,
// for the admission and municipal-care background colorings.
func ServiceBands(h *model.History) []Band {
	h.Sort()
	var out []Band
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Kind != model.Interval {
			continue
		}
		switch e.Type {
		case model.TypeStay, model.TypeService:
			label := e.Source.String() + " " + e.Type.String()
			out = append(out, Band{Class: label, Title: label, Period: e.Period(), OpenEnd: e.OpenEnd})
		}
	}
	return out
}
