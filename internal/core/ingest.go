package core

// Live ingest at the workbench level: Append feeds follow-on registry
// bundles through an incremental integrate.Consumer into the store's
// mutable tail, while queries keep answering — each query runs against
// the generation current when it started, and the engine's caches are
// generation-epoched so no stale answer survives an append. When the
// pending delta grows past compactThreshold entries, Append kicks off a
// single-flight background compaction that folds the delta into
// containerized base postings without advancing the generation (the fold
// is answer-invariant).

import (
	"fmt"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/sources"
	"pastas/internal/store"
)

// compactThreshold is the pending-delta entry count past which Append
// schedules a background compaction. Small enough that delta-side reads
// (linear next to the containerized base) never dominate a query; large
// enough that compaction work amortizes over many appends.
const compactThreshold = 4096

// Append integrates one follow-on bundle into the live store. New
// persons become new patients; event records for already-integrated
// patients extend their histories; linkage, date validation, duplicate
// collapsing and interval derivation follow exactly the batch pipeline's
// rules (see integrate.Consumer). Concurrent queries are never blocked:
// they keep answering over the pre-append generation until the new
// revision is published atomically. Only a workbench with a local store
// can ingest; a connected coordinator returns an error.
func (wb *Workbench) Append(b *sources.Bundle) error {
	if wb.Store == nil {
		return fmt.Errorf("core: append: workbench has no local store (connected to remote shards)")
	}
	wb.ingestMu.Lock()
	defer wb.ingestMu.Unlock()
	if wb.consumer == nil {
		opts := integrate.DefaultOptions()
		if wb.IngestOptions != nil {
			opts = *wb.IngestOptions
		}
		st := wb.Store
		resolve := func(person uint64) (model.Time, bool) {
			v := st.Pin()
			if o, ok := v.Ordinal(model.PatientID(person)); ok {
				return v.HistoryAt(o).Patient.Birth, true
			}
			return 0, false
		}
		wb.consumer = integrate.NewConsumer(opts, resolve, st.MaxEntryID()+1)
	}
	batch, err := wb.consumer.Consume(b)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if batch.Empty() {
		return nil
	}
	ab := store.AppendBatch{NewHistories: batch.NewPatients}
	for _, u := range batch.Updates {
		ab.Updates = append(ab.Updates, store.HistoryUpdate{ID: u.ID, Entries: u.Entries})
	}
	if _, err := wb.Store.Append(ab); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if wb.Store.Ingest().DeltaEntries >= compactThreshold && wb.compacting.CompareAndSwap(false, true) {
		go func() {
			defer wb.compacting.Store(false)
			wb.Store.Compact()
		}()
	}
	return nil
}

// Compact synchronously folds the store's pending delta into its base
// postings. Queries keep running throughout; answers are identical
// before and after (compaction does not advance the generation). Returns
// the compaction statistics, zero-valued when there was nothing to fold.
func (wb *Workbench) Compact() (store.CompactionStats, error) {
	if wb.Store == nil {
		return store.CompactionStats{}, fmt.Errorf("core: compact: workbench has no local store (connected to remote shards)")
	}
	return wb.Store.Compact(), nil
}

// IngestStats reports the store's cumulative ingest counters; ok is
// false on a connected workbench, which has no local store to ingest
// into.
func (wb *Workbench) IngestStats() (store.IngestStats, bool) {
	if wb.Store == nil {
		return store.IngestStats{}, false
	}
	return wb.Store.Ingest(), true
}

// IngestReport returns the incremental consumer's accumulated
// integration report — the Append-side counterpart of Workbench.Report.
// Zero before the first Append.
func (wb *Workbench) IngestReport() integrate.Report {
	wb.ingestMu.Lock()
	defer wb.ingestMu.Unlock()
	if wb.consumer == nil {
		return integrate.Report{}
	}
	return wb.consumer.TotalReport()
}
