package core

import (
	"strings"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
)

func TestSessionEventChart(t *testing.T) {
	wb := testWorkbench(t, 400)
	s := mustSession(t, wb)
	// Stroke admission followed by a GP contact within 90 days.
	seq := query.Sequence{Steps: []query.Step{
		{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", `K90|I63(\..*)?`)}},
		{Pred: query.AllOf{query.TypeIs(model.TypeContact), query.SourceIs(model.SourceGP)}, MaxGap: query.Days(90)},
	}}
	svg := s.RenderEventChart(seq, render.EventChartOptions{Tooltips: true})
	if !strings.Contains(svg, "event chart:") {
		t.Error("event chart header missing")
	}
	found := false
	for _, r := range s.History() {
		if r.Op == "render-eventchart" {
			found = true
		}
	}
	if !found {
		t.Error("event chart not logged")
	}
}

func TestSessionRenderTimelineDiff(t *testing.T) {
	wb := testWorkbench(t, 300)
	s := mustSession(t, wb)
	if err := s.Extract(query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}}); err != nil {
		t.Fatal(err)
	}
	svg, sum := s.RenderTimelineDiff(render.TimelineOptions{MaxRows: 50})
	// Extraction removes histories relative to the full collection.
	if sum.Removed == 0 {
		t.Errorf("diff vs full collection shows no removals: %+v", sum)
	}
	if sum.Added != 0 {
		t.Errorf("extraction cannot add histories: %+v", sum)
	}
	if !strings.Contains(svg, "changes:") {
		t.Error("diff banner missing")
	}
}

func TestSessionDiffNoPriorState(t *testing.T) {
	wb := testWorkbench(t, 50)
	s := mustSession(t, wb)
	_, sum := s.RenderTimelineDiff(render.TimelineOptions{MaxRows: 10})
	if sum.Added != 0 || sum.Removed != 0 || sum.Changed != 0 {
		t.Errorf("fresh session diff must be empty: %+v", sum)
	}
}

func TestCostOfKnowledge(t *testing.T) {
	wb := testWorkbench(t, 200)
	s := mustSession(t, wb)
	if got := s.CostOfKnowledge(); got.Ops != 0 || got.InfoUnits != 0 || got.CostPerUnit != 0 {
		t.Errorf("fresh session foraging = %+v", got)
	}
	_ = s.RenderTimeline(render.TimelineOptions{MaxRows: 25})
	h := s.View().At(0)
	if h.Len() > 0 {
		_ = s.Details(h.Patient.ID, h.Entries[0].Start)
	}
	rep := s.CostOfKnowledge()
	if rep.Ops < 2 {
		t.Errorf("ops = %d", rep.Ops)
	}
	if rep.InfoUnits < 25 {
		t.Errorf("info units = %d, want >= 25 rendered rows", rep.InfoUnits)
	}
	if rep.CostPerUnit <= 0 {
		t.Error("cost per unit not computed")
	}
	if !strings.Contains(rep.String(), "cost of knowledge") {
		t.Error("stringer broken")
	}
}

func TestSortByCluster(t *testing.T) {
	wb := testWorkbench(t, 250)
	s := mustSession(t, wb)
	// Narrow to a manageable view first (clustering is quadratic).
	if err := s.Extract(query.Or{
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}},
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "R95")}},
	}); err != nil {
		t.Fatal(err)
	}
	if s.View().Len() < 4 {
		t.Skip("too few matching histories at this scale")
	}
	before := make([]model.PatientID, 0, s.View().Len())
	for _, h := range s.View().Histories() {
		before = append(before, h.Patient.ID)
	}
	if err := s.SortByCluster(2); err != nil {
		t.Fatal(err)
	}
	after := make([]model.PatientID, 0, s.View().Len())
	for _, h := range s.View().Histories() {
		after = append(after, h.Patient.ID)
	}
	if len(before) != len(after) {
		t.Fatal("clustering changed membership")
	}
	seen := map[model.PatientID]bool{}
	for _, id := range after {
		if seen[id] {
			t.Fatal("duplicate after cluster sort")
		}
		seen[id] = true
	}
	// Undo restores.
	if !s.Undo() {
		t.Fatal("undo failed")
	}
}
