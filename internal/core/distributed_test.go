package core

// Workbench-over-a-backend-set: core.Connect against loopback shard
// servers answers cohort queries bit-identically to the local workbench
// the snapshot was saved from, and refuses the operations that need
// local histories.

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pastas/internal/cohort"
	"pastas/internal/engine"
	"pastas/internal/query"
	"pastas/internal/synth"
)

// startCluster saves wb as a snapshot with `shards` shards and serves it
// from two loopback shard servers; returns their addresses.
func startCluster(t testing.TB, wb *Workbench, shards int) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := wb.Save(f, SnapshotOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var firstHalf, secondHalf []int
	for id := 0; id < info.Shards; id++ {
		if id < info.Shards/2 {
			firstHalf = append(firstHalf, id)
		} else {
			secondHalf = append(secondHalf, id)
		}
	}
	var addrs []string
	for _, ids := range [][]int{firstHalf, secondHalf} {
		if len(ids) == 0 {
			continue
		}
		srv, err := engine.NewShardServer(path, ids, engine.Options{Shards: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		go srv.Serve(lis)
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs
}

func TestConnectParityAndGuards(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, local, 4)
	remote, err := Connect(addrs, engine.RemoteOptions{Timeout: 30 * time.Second},
		engine.Options{Workers: 4, CacheSize: 16}, local.Window)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.Patients() != local.Patients() || remote.Entries() != local.Entries() {
		t.Fatalf("remote sees %d/%d, local %d/%d",
			remote.Patients(), remote.Entries(), local.Patients(), local.Entries())
	}
	exprs := []query.Expr{
		query.TrueExpr{},
		query.Has{Pred: query.MustCode("", `T90|E11(\..*)?`)},
		query.And{
			query.Has{Pred: query.SourceIs(2)},
			query.Not{E: query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2}},
		},
	}
	for _, e := range exprs {
		want, err := local.Query(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Query(e)
		if err != nil {
			t.Fatalf("remote Query(%s): %v", e, err)
		}
		if !got.Equal(want) {
			t.Fatalf("remote diverges for %s: %d vs %d", e, got.Count(), want.Count())
		}
	}

	// History-level operations need a local collection: every guard is
	// an error, never a panic.
	if remote.Store != nil {
		t.Error("connected workbench has a Store")
	}
	if _, err := remote.Save(os.Stderr, SnapshotOptions{}); err == nil {
		t.Error("save over remote shards succeeded")
	}
	if err := remote.SaveSnapshot(os.Stderr); err == nil {
		t.Error("legacy save over remote shards succeeded")
	}
	if _, err := NewSession(remote); err == nil {
		t.Error("session over remote shards succeeded")
	}
	if _, err := cohort.FromEngine(remote.Engine, "x", query.TrueExpr{}); err == nil {
		t.Error("store-backed cohort over remote shards succeeded")
	}
}

func TestConnectRejectsPartialTopology(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, local, 4)
	// Connecting to only one of the two servers leaves a gap in the
	// ordinal space; that is a topology error, not a silent half-answer.
	_, err = Connect(addrs[:1], engine.RemoteOptions{Timeout: 10 * time.Second},
		engine.Options{}, local.Window)
	if err == nil {
		t.Fatal("partial topology accepted")
	}
	if !strings.Contains(err.Error(), "cover") && !strings.Contains(err.Error(), "tile") {
		t.Errorf("error does not explain the missing coverage: %v", err)
	}
}
