package core

// Workbench-over-a-backend-set: core.Connect against loopback shard
// servers answers cohort queries bit-identically to the local workbench
// the snapshot was saved from, and refuses the operations that need
// local histories.

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pastas/internal/cohort"
	"pastas/internal/engine"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/synth"
)

// startCluster saves wb as a snapshot with `shards` shards and serves it
// from two loopback shard servers; returns their addresses.
func startCluster(t testing.TB, wb *Workbench, shards int) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := wb.Save(f, SnapshotOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var firstHalf, secondHalf []int
	for id := 0; id < info.Shards; id++ {
		if id < info.Shards/2 {
			firstHalf = append(firstHalf, id)
		} else {
			secondHalf = append(secondHalf, id)
		}
	}
	var addrs []string
	for _, ids := range [][]int{firstHalf, secondHalf} {
		if len(ids) == 0 {
			continue
		}
		srv, err := engine.NewShardServer(path, ids, engine.Options{Shards: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		go srv.Serve(lis)
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs
}

func TestConnectParityAndGuards(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, local, 4)
	remote, err := Connect(addrs, engine.RemoteOptions{Timeout: 30 * time.Second},
		engine.Options{Workers: 4, CacheSize: 16}, local.Window)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if remote.Patients() != local.Patients() || remote.Entries() != local.Entries() {
		t.Fatalf("remote sees %d/%d, local %d/%d",
			remote.Patients(), remote.Entries(), local.Patients(), local.Entries())
	}
	exprs := []query.Expr{
		query.TrueExpr{},
		query.Has{Pred: query.MustCode("", `T90|E11(\..*)?`)},
		query.And{
			query.Has{Pred: query.SourceIs(2)},
			query.Not{E: query.Has{Pred: query.MustCode("", `K8.`), MinCount: 2}},
		},
	}
	for _, e := range exprs {
		want, err := local.Query(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Query(e)
		if err != nil {
			t.Fatalf("remote Query(%s): %v", e, err)
		}
		if !got.Equal(want) {
			t.Fatalf("remote diverges for %s: %d vs %d", e, got.Count(), want.Count())
		}
	}

	// Snapshot persistence still needs the local collection: every guard
	// is an error, never a panic.
	if remote.Store != nil {
		t.Error("connected workbench has a Store")
	}
	if _, err := remote.Save(os.Stderr, SnapshotOptions{}); err == nil {
		t.Error("save over remote shards succeeded")
	}
	if err := remote.SaveSnapshot(os.Stderr); err == nil {
		t.Error("legacy save over remote shards succeeded")
	}
	if _, err := cohort.FromEngine(remote.Engine, "x", query.TrueExpr{}); err == nil {
		t.Error("store-backed cohort over remote shards succeeded")
	}

	// Sessions now work over remote shards: Extract pages the matching
	// histories in from their shard servers (see TestConnectedSession for
	// the render-parity property).
	sess, err := NewSession(remote)
	if err != nil {
		t.Fatalf("session over remote shards refused: %v", err)
	}
	if sess.View().Len() != 0 {
		t.Errorf("connected session starts with %d histories, want empty base", sess.View().Len())
	}
}

// TestConnectedSession: the interactive session works over remote shard
// servers — Extract pages the cohort in through the fetch RPC, and every
// downstream display operation (timeline render, details, alignment,
// refinement) produces byte-identical output to a local session over the
// same data. History accessors and server-side indicator aggregation
// match too.
func TestConnectedSession(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, local, 4)
	remote, err := Connect(addrs, engine.RemoteOptions{Timeout: 30 * time.Second},
		engine.Options{Workers: 4, CacheSize: 16}, local.Window)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	expr := query.Has{Pred: query.MustCode("", `T90|E11(\..*)?`)}

	// Workbench accessors: one patient, a cohort, the indicator panel.
	wantID := local.Store.Collection().IDs()[0]
	hLocal, err := local.History(wantID)
	if err != nil {
		t.Fatal(err)
	}
	hRemote, err := remote.History(wantID)
	if err != nil {
		t.Fatalf("remote History: %v", err)
	}
	if hRemote.Patient != hLocal.Patient || hRemote.Len() != hLocal.Len() {
		t.Fatalf("remote history diverges: %+v vs %+v", hRemote.Patient, hLocal.Patient)
	}
	bitsL, err := local.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	bitsR, err := remote.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	indL, err := local.Indicators(bitsL)
	if err != nil {
		t.Fatal(err)
	}
	indR, err := remote.Indicators(bitsR)
	if err != nil {
		t.Fatalf("remote Indicators: %v", err)
	}
	if indL != indR {
		t.Fatalf("indicators diverge:\nlocal  %+v\nremote %+v", indL, indR)
	}

	// Sessions: extract, render, refine — same pixels either side.
	opt := render.TimelineOptions{Width: 800, Height: 400, MaxRows: 40}
	sessL, err := NewSession(local)
	if err != nil {
		t.Fatal(err)
	}
	sessR, err := NewSession(remote)
	if err != nil {
		t.Fatal(err)
	}
	for _, sess := range []*Session{sessL, sessR} {
		if err := sess.Extract(expr); err != nil {
			t.Fatalf("extract: %v", err)
		}
	}
	if sessL.View().Len() == 0 {
		t.Fatal("extract matched nothing; fixture too small")
	}
	if sessR.View().Len() != sessL.View().Len() {
		t.Fatalf("remote view has %d histories, local %d", sessR.View().Len(), sessL.View().Len())
	}
	if svgL, svgR := sessL.RenderTimeline(opt), sessR.RenderTimeline(opt); svgL != svgR {
		t.Error("timeline render diverges between local and connected session")
	}
	// A refinement on the fetched view stays local to the session.
	refine := query.Has{Pred: query.SourceIs(1)}
	for _, sess := range []*Session{sessL, sessR} {
		if err := sess.Extract(refine); err != nil {
			t.Fatalf("refine: %v", err)
		}
	}
	if sessR.View().Len() != sessL.View().Len() {
		t.Fatalf("refined remote view has %d histories, local %d", sessR.View().Len(), sessL.View().Len())
	}
	if svgL, svgR := sessL.RenderTimeline(opt), sessR.RenderTimeline(opt); svgL != svgR {
		t.Error("refined timeline render diverges")
	}
	// Details-on-demand against the fetched view.
	id := sessL.View().IDs()[0]
	at := sessL.View().Get(id).Span().Start
	if dL, dR := sessL.Details(id, at), sessR.Details(id, at); len(dL) != len(dR) {
		t.Errorf("details diverge: %d vs %d lines", len(dL), len(dR))
	}
	// Reset returns the connected session to its empty base.
	sessR.Reset()
	if sessR.View().Len() != 0 {
		t.Errorf("reset connected session views %d histories, want 0", sessR.View().Len())
	}
}

// TestConnectToleratesDeadReplicaMember: replication exists so a down
// server is survivable — a replica group with one unreachable member
// must still connect (the survivor carries the load, the dead member
// joins as a deferred backend), and when something comes back on the
// dead member's address serving a DIFFERENT snapshot, the dial-time
// identity re-validation keeps it out of the rotation. Queries stay
// bit-identical to the local workbench throughout.
func TestConnectToleratesDeadReplicaMember(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	saveSnap := func(wb *Workbench, name string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wb.Save(f, SnapshotOptions{Shards: 4}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	serve := func(path, addr string) string {
		t.Helper()
		srv, err := engine.NewShardServer(path, []int{0, 1, 2, 3}, engine.Options{Shards: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		go srv.Serve(lis)
		return lis.Addr().String()
	}
	liveAddr := serve(saveSnap(local, "live.snap"), "127.0.0.1:0")
	// Reserve an address, then free it: the group's second member is
	// down at connect time.
	deadLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLis.Addr().String()
	deadLis.Close()

	remote, err := Connect([]string{liveAddr + "|" + deadAddr},
		engine.RemoteOptions{Timeout: 5 * time.Second},
		engine.Options{Workers: 4, CacheSize: 0}, local.Window)
	if err != nil {
		t.Fatalf("connect with one dead replica member refused: %v", err)
	}
	defer remote.Close()

	expr := query.Has{Pred: query.MustCode("", `T90|E11(\..*)?`)}
	want, err := local.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		t.Helper()
		got, err := remote.Query(expr)
		if err != nil {
			t.Fatalf("%s: remote Query: %v", when, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: remote diverges: %d vs %d", when, got.Count(), want.Count())
		}
	}
	check("dead member down")
	for _, h := range remote.Engine.Health() {
		if len(h.Replicas) != 2 {
			t.Fatalf("shard %d has %d replicas in rotation, want 2 (deferred member missing)", h.Shard, len(h.Replicas))
		}
	}

	// Resurrect the dead address with a server loading a different
	// snapshot: the identity check on its first dial must refuse it and
	// mark it down — never blend the wrong population into a cohort.
	other, err := Synthesize(synth.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	serve(saveSnap(other, "impostor.snap"), deadAddr)
	impostorDown := func() bool {
		for _, h := range remote.Engine.Health() {
			for _, r := range h.Replicas {
				if strings.Contains(r.Backend, deadAddr) && !r.Healthy && r.Failures > 0 {
					return true
				}
			}
		}
		return false
	}
	for deadline := time.Now().Add(10 * time.Second); !impostorDown(); {
		if time.Now().After(deadline) {
			t.Fatal("impostor member never tried and marked down")
		}
		check("impostor serving wrong snapshot")
		time.Sleep(5 * time.Millisecond)
	}
	check("impostor marked down")
}

func TestConnectRejectsPartialTopology(t *testing.T) {
	local, err := Synthesize(synth.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, local, 4)
	// Connecting to only one of the two servers leaves a gap in the
	// ordinal space; that is a topology error, not a silent half-answer.
	_, err = Connect(addrs[:1], engine.RemoteOptions{Timeout: 10 * time.Second},
		engine.Options{}, local.Window)
	if err == nil {
		t.Fatal("partial topology accepted")
	}
	if !strings.Contains(err.Error(), "cover") && !strings.Contains(err.Error(), "tile") {
		t.Errorf("error does not explain the missing coverage: %v", err)
	}
}
