package core

import (
	"fmt"
	"time"

	"pastas/internal/align"
	"pastas/internal/cluster"
	"pastas/internal/graph"
	"pastas/internal/model"
	"pastas/internal/perception"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/seqalign"
)

// Session is one analyst's interactive state over a workbench: the current
// sub-collection, alignment, event filter and zoom. Every operation is
// recorded (Shneiderman's "history" task: "allow users to retrace their
// steps") and timed against the response budget.
type Session struct {
	wb     *Workbench
	budget *perception.Budget

	// base is the session's ground view: the full collection on a local
	// workbench, an empty collection on a connected one (whose population
	// lives in shard servers and is paged in by Extract).
	base    *model.Collection
	view    *model.Collection
	aligned *align.Result
	filter  query.EventPred
	zoomX   float64
	zoomY   float64

	undo []sessionState
	log  []OpRecord

	// infoUnits counts information surfaced to the analyst (rows drawn,
	// detail lines, pattern hits) for the cost-of-knowledge report.
	infoUnits int
}

type sessionState struct {
	view    *model.Collection
	aligned *align.Result
	filter  query.EventPred
	zoomX   float64
	zoomY   float64
}

// OpRecord is one step of the session history.
type OpRecord struct {
	Op     string
	Detail string
	Took   time.Duration
}

// NewSession opens a session. On a local workbench it views the whole
// collection; on one connected to remote shard servers (Connect) it
// starts with an empty view — the population lives in the shard servers
// — and the first Extract runs the query across the servers and pages
// exactly the matching histories in, after which every display-level
// operation (align, sort, filter, render, details) works on the fetched
// sub-collection as it would locally.
func NewSession(wb *Workbench) (*Session, error) {
	base := &model.Collection{}
	if wb.Store != nil {
		base = wb.Store.Collection()
	}
	return &Session{
		wb:     wb,
		budget: perception.NewBudget(perception.ShneidermanLimit),
		base:   base,
		view:   base,
		zoomX:  1,
		zoomY:  1,
	}, nil
}

// Workbench returns the underlying workbench.
func (s *Session) Workbench() *Workbench { return s.wb }

// View returns the current sub-collection.
func (s *Session) View() *model.Collection { return s.view }

// Aligned returns the active alignment, or nil.
func (s *Session) Aligned() *align.Result { return s.aligned }

// Budget returns the latency audit.
func (s *Session) Budget() *perception.Budget { return s.budget }

// History returns the operation log.
func (s *Session) History() []OpRecord { return s.log }

// Zoom returns the current slider values.
func (s *Session) Zoom() (x, y float64) { return s.zoomX, s.zoomY }

func (s *Session) snapshot() {
	s.undo = append(s.undo, sessionState{
		view: s.view, aligned: s.aligned, filter: s.filter,
		zoomX: s.zoomX, zoomY: s.zoomY,
	})
}

func (s *Session) track(op, detail string, mutate bool, fn func() error) error {
	if mutate {
		s.snapshot()
	}
	var err error
	took := s.budget.Track(op, func() { err = fn() })
	if err != nil {
		// Roll the snapshot back off the undo stack: nothing changed.
		if mutate {
			s.undo = s.undo[:len(s.undo)-1]
		}
		return err
	}
	s.log = append(s.log, OpRecord{Op: op, Detail: detail, Took: took})
	return nil
}

// Extract narrows the view to histories matching the expression — the
// paper's "extraction of sub-collections". When the session still views
// its base the engine answers it (sharded indexes plus the plan cache, so
// a refinement loop re-hits its own sub-results); on a connected
// workbench the matching histories are fetched from their shard servers.
// Narrowed views fall back to scans to preserve the analyst's display
// order.
func (s *Session) Extract(e query.Expr) error {
	return s.track("extract", e.String(), true, func() error {
		if s.view == s.base {
			bits, err := s.wb.Engine.Execute(e)
			if err != nil {
				return err
			}
			if s.wb.Store != nil {
				s.view = s.wb.Store.Subset(bits)
			} else {
				col, err := s.wb.Histories(bits)
				if err != nil {
					return err
				}
				s.view = col
			}
		} else {
			s.view = query.Filter(s.view, e)
		}
		s.aligned = nil
		return nil
	})
}

// FilterEvents sets the display-level event filter ("This search could be
// used to hide or show individual nodes").
func (s *Session) FilterEvents(pred query.EventPred) error {
	return s.track("filter-events", pred.String(), true, func() error {
		s.filter = pred
		return nil
	})
}

// ClearFilter removes the event filter.
func (s *Session) ClearFilter() error {
	return s.track("clear-filter", "", true, func() error {
		s.filter = nil
		return nil
	})
}

// AlignOn aligns the view on an index event; histories lacking it drop out
// of the view (they are listed in Aligned().Missing).
func (s *Session) AlignOn(anchor align.Anchor) error {
	return s.track("align", anchor.String(), true, func() error {
		res := align.Align(s.view, anchor)
		s.aligned = res
		s.view = res.Col
		return nil
	})
}

// ClearAlignment returns to calendar time (keeping the current view).
func (s *Session) ClearAlignment() error {
	return s.track("clear-alignment", "", true, func() error {
		s.aligned = nil
		return nil
	})
}

// SortBy reorders the display ("sorting ... histories").
func (s *Session) SortBy(name string, less align.Less) error {
	return s.track("sort", name, true, func() error {
		s.view.SortBy(less)
		return nil
	})
}

// SetZoom moves the two sliders.
func (s *Session) SetZoom(x, y float64) error {
	return s.track("zoom", fmt.Sprintf("x=%.1f y=%.1f", x, y), true, func() error {
		if x < 1 {
			x = 1
		}
		if y < 1 {
			y = 1
		}
		s.zoomX, s.zoomY = x, y
		return nil
	})
}

// Undo reverts the last mutating operation; false when nothing to undo.
func (s *Session) Undo() bool {
	if len(s.undo) == 0 {
		return false
	}
	st := s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	s.view, s.aligned, s.filter = st.view, st.aligned, st.filter
	s.zoomX, s.zoomY = st.zoomX, st.zoomY
	s.log = append(s.log, OpRecord{Op: "undo"})
	return true
}

// Details is details-on-demand at (patient, time).
func (s *Session) Details(id model.PatientID, at model.Time) []string {
	var out []string
	s.budget.Track("details", func() {
		h := s.view.Get(id)
		if h == nil {
			return
		}
		out = render.Details(h, at, 3*model.Day)
	})
	s.infoUnits += len(out)
	s.log = append(s.log, OpRecord{Op: "details", Detail: id.String()})
	return out
}

// SearchPattern runs a temporal-pattern search over the view and returns
// the matching patients ("searching for temporal patterns").
func (s *Session) SearchPattern(seq query.Sequence) []model.PatientID {
	var ids []model.PatientID
	s.budget.Track("pattern-search", func() {
		ids = query.Select(s.view, seq)
	})
	s.infoUnits += len(ids)
	s.log = append(s.log, OpRecord{Op: "pattern-search", Detail: seq.String()})
	return ids
}

// RenderEventChart draws the hits of a temporal pattern as an event chart
// (the Fails et al. view the paper relates its design to): one line per
// hit, matched events as dots, unmatched events counted.
func (s *Session) RenderEventChart(seq query.Sequence, opt render.EventChartOptions) string {
	var svg string
	s.budget.Track("render-eventchart", func() {
		svg = render.EventChart(s.view, seq, opt)
	})
	s.log = append(s.log, OpRecord{Op: "render-eventchart", Detail: seq.String()})
	return svg
}

// RenderTimelineDiff renders the current view with changes since the
// previous session state highlighted (Section II.C's change-blindness
// mitigation). With no prior state it diffs against the session's base
// view.
func (s *Session) RenderTimelineDiff(opt render.TimelineOptions) (string, render.DiffSummary) {
	before := s.base
	if len(s.undo) > 0 {
		before = s.undo[len(s.undo)-1].view
	}
	var svg string
	var sum render.DiffSummary
	s.budget.Track("render-diff", func() {
		opt.Aligned = s.aligned
		opt.ZoomX, opt.ZoomY = s.zoomX, s.zoomY
		svg, sum = render.TimelineDiff(before, s.view, opt)
	})
	s.log = append(s.log, OpRecord{Op: "render-diff", Detail: sum.String()})
	return svg, sum
}

// ForagingReport is the cost-of-knowledge account (Pirolli & Card): what
// the analyst's interactions cost against what they surfaced. "An
// important measure in designing an effective interaction scheme is the
// cost of knowledge: the amount of energy that must be invested to extract
// a certain amount of information."
type ForagingReport struct {
	Ops         int
	TotalTime   time.Duration
	InfoUnits   int
	CostPerUnit time.Duration
}

func (f ForagingReport) String() string {
	return fmt.Sprintf("cost of knowledge: %d ops, %v total, %d info units, %v/unit",
		f.Ops, f.TotalTime.Round(time.Microsecond), f.InfoUnits, f.CostPerUnit.Round(time.Microsecond))
}

// CostOfKnowledge summarizes the session's information-foraging economy.
func (s *Session) CostOfKnowledge() ForagingReport {
	var total time.Duration
	ops := 0
	for _, st := range s.budget.Report() {
		total += st.Mean * time.Duration(st.N)
		ops += st.N
	}
	r := ForagingReport{Ops: ops, TotalTime: total, InfoUnits: s.infoUnits}
	if s.infoUnits > 0 {
		r.CostPerUnit = total / time.Duration(s.infoUnits)
	}
	return r
}

// RenderTimeline draws the current view as the Fig. 1 workbench image,
// applying the session's filter, alignment and zoom.
func (s *Session) RenderTimeline(opt render.TimelineOptions) string {
	var svg string
	s.budget.Track("render-timeline", func() {
		opt.Aligned = s.aligned
		opt.ZoomX, opt.ZoomY = s.zoomX, s.zoomY
		col := s.view
		if s.filter != nil {
			rows := col.Histories()
			if opt.MaxRows > 0 && len(rows) > opt.MaxRows {
				rows = rows[:opt.MaxRows]
			}
			filtered := make([]*model.History, 0, len(rows))
			for _, h := range rows {
				filtered = append(filtered, query.FilterEvents(h, s.filter))
			}
			col = model.MustCollection(filtered...)
		}
		svg = render.Timeline(col, opt)
	})
	rows := s.view.Len()
	if opt.MaxRows > 0 && rows > opt.MaxRows {
		rows = opt.MaxRows
	}
	s.infoUnits += rows
	s.log = append(s.log, OpRecord{Op: "render-timeline"})
	return svg
}

// DiagnosisSequences extracts the view's ICPC-2 diagnosis-code sequences —
// NSEPter's input. This is the direct-collection form: it reads the
// histories already paged into the session's view, so it is local-only by
// construction. For cohort-scale sequence analytics that must not ship
// histories, use Workbench.MineRules, which counts server-side per shard.
func (s *Session) DiagnosisSequences() [][]string {
	out := make([][]string, 0, s.view.Len())
	for _, h := range s.view.Histories() {
		var seq []string
		for _, c := range h.CodeSequence(model.TypeDiagnosis) {
			if c.System == "ICPC2" {
				seq = append(seq, c.Value)
			}
		}
		if len(seq) > 0 {
			out = append(out, seq)
		}
	}
	return out
}

// RenderGraph builds and draws the NSEPter merged-graph view of the
// current sub-collection (Fig. 2).
func (s *Session) RenderGraph(pattern string, depth int, opt render.GraphOptions) (string, error) {
	var svg string
	var err error
	s.budget.Track("render-graph", func() {
		seqs := s.DiagnosisSequences()
		var g *graph.Graph
		g, err = graph.SerialMerge(seqs, graph.SerialOptions{
			Pattern:        pattern,
			MaxOccurrences: 1,
			Depth:          depth,
		})
		if err != nil {
			return
		}
		svg = render.Graph(g, graph.Layered(g), opt)
	})
	if err != nil {
		return "", fmt.Errorf("core: render graph: %w", err)
	}
	s.log = append(s.log, OpRecord{Op: "render-graph", Detail: pattern})
	return svg, nil
}

// RenderGraphMSA is the noise-resilient variant using alignment-based
// merging.
func (s *Session) RenderGraphMSA(opt render.GraphOptions) string {
	var svg string
	s.budget.Track("render-graph-msa", func() {
		seqs := s.DiagnosisSequences()
		g := graph.MSAMerge(seqs, seqalign.ChapterCost{System: "ICPC2"})
		svg = render.Graph(g, graph.Layered(g), opt)
	})
	s.log = append(s.log, OpRecord{Op: "render-graph-msa"})
	return svg
}

// SortByCluster reorders the view so patients with similar diagnosis
// sequences stack adjacently: agglomerative clustering over alignment
// distances (project [7]'s similarity machinery turned into a display
// order). k is the cluster count; histories without ICPC-2 diagnoses sink
// to the bottom. Quadratic in view size — intended for extracted
// sub-collections, not the full population.
func (s *Session) SortByCluster(k int) error {
	return s.track("sort-cluster", fmt.Sprintf("k=%d", k), true, func() error {
		type seqOf struct {
			id  model.PatientID
			seq []string
		}
		var withSeq []seqOf
		for _, h := range s.view.Histories() {
			var seq []string
			for _, c := range h.CodeSequence(model.TypeDiagnosis) {
				if c.System == "ICPC2" {
					seq = append(seq, c.Value)
				}
			}
			if len(seq) > 0 {
				withSeq = append(withSeq, seqOf{h.Patient.ID, seq})
			}
		}
		if len(withSeq) == 0 {
			return nil
		}
		seqs := make([][]string, len(withSeq))
		for i, ws := range withSeq {
			seqs[i] = ws.seq
		}
		res, err := cluster.Sequences(seqs, seqalign.ChapterCost{System: "ICPC2"}, k)
		if err != nil {
			return err
		}
		rank := make(map[model.PatientID]int, len(withSeq))
		for pos, item := range res.Order() {
			rank[withSeq[item].id] = pos
		}
		noSeq := len(withSeq)
		s.view.SortBy(func(a, b *model.History) bool {
			ra, oka := rank[a.Patient.ID]
			rb, okb := rank[b.Patient.ID]
			if !oka {
				ra = noSeq
			}
			if !okb {
				rb = noSeq
			}
			return ra < rb
		})
		return nil
	})
}

// Reset returns the session to its base view with defaults.
func (s *Session) Reset() {
	s.snapshot()
	s.view = s.base
	s.aligned = nil
	s.filter = nil
	s.zoomX, s.zoomY = 1, 1
	s.log = append(s.log, OpRecord{Op: "reset"})
}
