package core

// Cohort-keyed analytics at the workbench level — the characterization
// half of the paper's workflow, seeded from the cohort workspace instead
// of requiring a local collection. Per-history work (rule support
// counting, episode abstraction, scenario matching) rides the engine's
// Analyze map-reduce: each shard maps over only its masked-in histories
// and the integer partials merge exactly, so a connected workbench
// reports bit-identical results to a local one at any shard count.
// Genuinely cross-history work (clustering over alignment distances)
// pages the cohort's histories in through the engine's strict fetch path
// and runs coordinator-side.

import (
	"context"
	"fmt"

	"pastas/internal/abstraction"
	"pastas/internal/cluster"
	"pastas/internal/engine"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/seqalign"
	"pastas/internal/temporal"
)

// analyze resolves a saved cohort and runs one registered map step over
// it — the shared plumbing under MineRules, Episodes and MatchScenario.
func (wb *Workbench) analyze(name string, req engine.AnalyzeRequest, err error) (engine.Partial, engine.CohortInfo, engine.QueryStatus, error) {
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, fmt.Errorf("core: %w", err)
	}
	bits, info, err := wb.Engine.CohortBits(name)
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, fmt.Errorf("core: %w", err)
	}
	part, status, err := wb.Engine.AnalyzeStatus(context.Background(), bits, req)
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, fmt.Errorf("core: %w", err)
	}
	return part, info, status, nil
}

// MineRules mines co-occurrence or sequential diagnosis rules over a
// saved cohort. The support counting runs server-side per shard; the
// thresholds in opt apply once, at finalization here, so they can never
// change what the shards count.
func (wb *Workbench) MineRules(name string, p engine.MineParams, opt mining.Options) ([]mining.Rule, engine.CohortInfo, engine.QueryStatus, error) {
	req, err := engine.MineRequest(p)
	part, info, status, err := wb.analyze(name, req, err)
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, err
	}
	return part.(*mining.Counts).Rules(opt), info, status, nil
}

// Episodes derives care episodes for every history in a saved cohort and
// returns the merged tally — counts, spans, and the dominant-diagnosis
// breakdown — without a single history leaving its shard.
func (wb *Workbench) Episodes(name string, gap model.Time) (*abstraction.EpisodeTally, engine.CohortInfo, engine.QueryStatus, error) {
	req, err := engine.EpisodesRequest(engine.EpisodeParams{Gap: gap})
	part, info, status, err := wb.analyze(name, req, err)
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, err
	}
	return part.(*abstraction.EpisodeTally), info, status, nil
}

// MatchScenario matches an Allen-relation scenario against every history
// in a saved cohort, tallying how many bind the steps and how many
// satisfy the relations.
func (wb *Workbench) MatchScenario(name string, gap model.Time, sc temporal.Scenario) (*temporal.ScenarioTally, engine.CohortInfo, engine.QueryStatus, error) {
	req, err := engine.ScenarioRequest(engine.ScenarioParams{Gap: gap, Scenario: sc})
	part, info, status, err := wb.analyze(name, req, err)
	if err != nil {
		return nil, engine.CohortInfo{}, engine.QueryStatus{}, err
	}
	return part.(*temporal.ScenarioTally), info, status, nil
}

// CohortClusters is the coordinator-side clustering result for a saved
// cohort: members grouped by diagnosis-sequence similarity.
type CohortClusters struct {
	// Histories is the cohort size; Clustered how many members carried an
	// ICPC-2 diagnosis sequence and took part.
	Histories int `json:"histories"`
	Clustered int `json:"clustered"`
	// Sizes are the cluster sizes, largest first (the cluster.Result
	// order); Members the patient IDs per cluster, same order.
	Sizes      []int               `json:"sizes"`
	Members    [][]model.PatientID `json:"members"`
	Silhouette float64             `json:"silhouette"`
}

// ClusterCohort clusters a saved cohort's members by diagnosis-sequence
// alignment distance. Clustering is genuinely cross-history — every
// pairwise distance matters — so it cannot ride the map-reduce: the
// cohort's histories are paged in through the engine's strict fetch path
// (candidate sets, not populations) and clustered coordinator-side.
// Quadratic in cohort size; intended for refined cohorts, not raw
// populations.
func (wb *Workbench) ClusterCohort(name string, k int) (*CohortClusters, engine.CohortInfo, error) {
	if k < 1 {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: cluster: k must be at least 1, got %d", k)
	}
	bits, info, err := wb.Engine.CohortBits(name)
	if err != nil {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	hs, err := wb.Engine.Histories(bits)
	if err != nil {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	var ids []model.PatientID
	var seqs [][]string
	for _, h := range hs {
		var seq []string
		for _, c := range h.CodeSequenceStable(model.TypeDiagnosis) {
			if c.System == "ICPC2" {
				seq = append(seq, c.Value)
			}
		}
		if len(seq) > 0 {
			ids = append(ids, h.Patient.ID)
			seqs = append(seqs, seq)
		}
	}
	out := &CohortClusters{Histories: len(hs), Clustered: len(seqs)}
	if len(seqs) == 0 {
		return out, info, nil
	}
	if k > len(seqs) {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: cluster: k=%d exceeds the %d cohort members with diagnosis sequences", k, len(seqs))
	}
	cost := seqalign.ChapterCost{System: "ICPC2"}
	dist := cluster.DistanceMatrix(seqs, cost)
	res, err := cluster.Agglomerative(dist, k)
	if err != nil {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: cluster: %w", err)
	}
	out.Sizes = res.Sizes()
	out.Silhouette = cluster.Silhouette(dist, res)
	for c := range out.Sizes {
		members := res.Members(c)
		row := make([]model.PatientID, len(members))
		for i, m := range members {
			row[i] = ids[m]
		}
		out.Members = append(out.Members, row)
	}
	return out, info, nil
}
