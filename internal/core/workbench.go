// Package core is the workbench: it wires sources → integration → store →
// query/cohort → views into the "common workbench" the paper describes,
// and exposes the interactive session with the paper's operations —
// extraction of sub-collections, sorting and aligning histories, filtering
// events, temporal-pattern search, details-on-demand, and the two zoom
// sliders — each audited against the 0.1 s response budget.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/stats"
	"pastas/internal/store"
	"pastas/internal/synth"
)

// Workbench is a loaded, indexed data set — or, when connected to remote
// shard servers, a coordinating front over one.
type Workbench struct {
	// Store is the local indexed collection. It is nil for a workbench
	// built over remote shard backends (Connect), where the histories
	// live in the shard servers; both cohort evaluation and the
	// history-level operations (History, Histories, Indicators, sessions)
	// work through the Engine there — histories are fetched from their
	// shards on demand and indicators aggregate server-side.
	Store *store.Store
	// Engine is the sharded query planner/executor every cohort
	// evaluation goes through.
	Engine *engine.Engine
	// Report is the integration accounting (nil when loaded from a
	// snapshot).
	Report *integrate.Report
	// Snapshot is the provenance of the snapshot this workbench was
	// reopened from (nil when built from sources): format version, shard
	// layout and sizes. The webapp surfaces it in GET /api/stats.
	Snapshot *store.SnapshotInfo
	// Window is the observation window the data covers.
	Window model.Period
	// IngestOptions, when non-nil, configures the incremental consumer
	// the first Append builds (pin OpenIntervalEnd here when an
	// incremental run must agree with a batch Build). Nil means
	// integrate.DefaultOptions(). Changing it after the first Append has
	// no effect — the consumer's linkage state is built once.
	IngestOptions *integrate.Options

	// ingestMu serializes Append and the consumer it lazily builds;
	// queries never take it.
	ingestMu sync.Mutex
	consumer *integrate.Consumer
	// compacting makes background compaction single-flight.
	compacting atomic.Bool
}

// FromBundle integrates a registry bundle and indexes it.
func FromBundle(b *sources.Bundle, opts integrate.Options, window model.Period) (*Workbench, error) {
	col, rep, err := integrate.Build(b, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wb := FromCollection(col, window)
	wb.Report = rep
	return wb, nil
}

// FromCollection wraps an already-built collection.
func FromCollection(col *model.Collection, window model.Period) *Workbench {
	st := store.New(col)
	return &Workbench{
		Store:  st,
		Engine: engine.New(st, engine.DefaultOptions()),
		Window: window,
	}
}

// Query evaluates a cohort expression through the engine.
func (wb *Workbench) Query(e query.Expr) (*store.Bitset, error) {
	return wb.Engine.Execute(e)
}

// QueryStatus evaluates a cohort expression and reports completeness:
// under engine.PolicyDegraded the status names the shards that were
// unreachable and therefore absent from the cohort (under the default
// strict policy it is always complete — incompleteness is an error).
func (wb *Workbench) QueryStatus(e query.Expr) (*store.Bitset, engine.QueryStatus, error) {
	return wb.Engine.ExecuteStatus(context.Background(), e)
}

// History returns one patient's history: off the local store, or fetched
// from the shard server holding the patient for a connected workbench.
// Absence is an error wrapping engine.ErrNoPatient; a down shard server
// is a loud failure, never a false "not found".
func (wb *Workbench) History(id model.PatientID) (*model.History, error) {
	h, err := wb.Engine.HistoryByID(id)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return h, nil
}

// Histories materializes the cohort a bitset selects as a collection in
// display (ordinal) order. On a connected workbench the selected
// histories — and only those — ship from their shard servers in the
// checksummed segment codec; for cohort-wide statistics prefer
// Indicators, which aggregates server-side instead of shipping anything.
func (wb *Workbench) Histories(bits *store.Bitset) (*model.Collection, error) {
	hs, err := wb.Engine.Histories(bits)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	col, err := model.NewCollection(hs...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return col, nil
}

// Indicators computes the utilization-indicator summary for the cohort a
// bitset selects, over the workbench window. Each shard tallies its slice
// where the histories live (a fixed-size partial per shard, whatever the
// cohort size) and the partials merge exactly, so a connected workbench
// reports bit-identical indicators to a local one.
func (wb *Workbench) Indicators(bits *store.Bitset) (stats.Indicators, error) {
	ind, err := wb.Engine.Indicators(bits, wb.Window)
	if err != nil {
		return stats.Indicators{}, fmt.Errorf("core: %w", err)
	}
	return ind, nil
}

// IndicatorsStatus is Indicators plus the completeness report — under
// engine.PolicyDegraded the aggregate may omit unreachable shards, and
// the status names them.
func (wb *Workbench) IndicatorsStatus(bits *store.Bitset) (stats.Indicators, engine.QueryStatus, error) {
	ind, st, err := wb.Engine.IndicatorsStatus(context.Background(), bits, wb.Window)
	if err != nil {
		return stats.Indicators{}, engine.QueryStatus{}, fmt.Errorf("core: %w", err)
	}
	return ind, st, nil
}

// Connect builds a workbench over remote shard servers: each address is a
// cohortctl shard-server, every shard it serves becomes a backend, and
// together they must tile the snapshot's population. An address element
// may also be a replica group — "host-a:7070|host-b:7070" — naming
// servers that serve the same shards from the same snapshot; each shard
// then gets a replicated backend that health-checks its members, load-
// balances reads and fails over between them mid-query. The workbench
// has no local Store — queries, history fetches and indicator aggregation
// all execute across the servers with bit-identical semantics to a local
// workbench over the same snapshot.
func Connect(addrs []string, ropts engine.RemoteOptions, opts engine.Options, window model.Period) (*Workbench, error) {
	var backends []engine.ShardBackend
	closeAll := func() {
		for _, b := range backends {
			b.Close()
		}
	}
	total := -1
	checkTotal := func(addr string, serverTotal int) error {
		if total == -1 {
			total = serverTotal
			return nil
		}
		if serverTotal != total {
			return fmt.Errorf("core: connect %s: server's snapshot has %d patients, others have %d (different snapshots?)",
				addr, serverTotal, total)
		}
		return nil
	}
	for _, elem := range addrs {
		members, err := splitReplicaGroup(elem)
		if err != nil {
			closeAll()
			return nil, err
		}
		if len(members) == 1 {
			bs, serverTotal, err := engine.DialShards(members[0], ropts)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("core: connect %s: %w", members[0], err)
			}
			backends = append(backends, bs...)
			if err := checkTotal(members[0], serverTotal); err != nil {
				closeAll()
				return nil, err
			}
			continue
		}
		bs, err := connectGroup(elem, members, ropts, checkTotal, closeAll)
		if err != nil {
			return nil, err
		}
		backends = append(backends, bs...)
	}
	eng, err := engine.NewFromBackends(backends, opts)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("core: %w", err)
	}
	// NewFromBackends proved the shards tile [0, N) contiguously; the
	// servers' snapshot total proves N is the whole population, so a
	// missing tail server cannot silently shrink the cohort universe.
	if eng.Patients() != total {
		eng.Close()
		return nil, fmt.Errorf("core: connected shards cover %d of %d patients; add the missing shard servers",
			eng.Patients(), total)
	}
	return &Workbench{Engine: eng, Window: window}, nil
}

// splitReplicaGroup splits one address element into its replica-group
// members: "a|b" names two servers serving the same shards. Whitespace
// around members is ignored; an empty member ("a||b") is an error.
func splitReplicaGroup(elem string) ([]string, error) {
	parts := strings.Split(elem, "|")
	members := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("core: replica group %q: empty member (want \"addr\" or \"addr|addr\")", elem)
		}
		members = append(members, p)
	}
	return members, nil
}

// connectGroup dials every member of one replica group and builds one
// replicated backend per shard the group serves. All members must serve
// identical shard sets with identical geometry — a group is N copies of
// the same data, not a way to mix shards. A member that is simply
// unreachable does NOT fail the group (replication exists precisely so
// a down server is survivable): as long as at least one member answers,
// the dead ones join their replica sets as deferred backends that
// re-validate the server's identity when it comes back (see
// engine.DeferredShards) — so a rolling restart or an outage at connect
// time degrades to fewer live replicas, not a refused session. Only
// answering-but-wrong members (identity validation, mixed snapshots,
// mismatched shard sets) are hard errors. On error every connection the
// group opened is closed, then closeAll releases the backends
// accumulated before this group.
func connectGroup(elem string, members []string, ropts engine.RemoteOptions,
	checkTotal func(string, int) error, closeAll func()) ([]engine.ShardBackend, error) {
	groups := make(map[int][]engine.ShardBackend)
	var order []int // shard ids in first-live-member order
	var refAddr string
	var liveBackends []engine.ShardBackend
	liveTotal := 0
	var unreachable []string
	var dialErrs []error
	var dialed []engine.ShardBackend
	closeDialed := func() {
		for _, b := range dialed {
			b.Close()
		}
	}
	for _, addr := range members {
		bs, serverTotal, err := engine.DialShards(addr, ropts)
		if err != nil {
			if engine.IsUnavailable(err) {
				unreachable = append(unreachable, addr)
				dialErrs = append(dialErrs, err)
				continue
			}
			closeDialed()
			closeAll()
			return nil, fmt.Errorf("core: connect %s: %w", addr, err)
		}
		dialed = append(dialed, bs...)
		if err := checkTotal(addr, serverTotal); err != nil {
			closeDialed()
			closeAll()
			return nil, err
		}
		ids := shardIDs(bs)
		if order == nil {
			order, refAddr, liveBackends, liveTotal = ids, addr, bs, serverTotal
		} else if !sameShardSet(order, ids) {
			closeDialed()
			closeAll()
			return nil, fmt.Errorf("core: replica group %q: %s serves shards %v, %s serves %v (group members must serve identical shard sets)",
				elem, refAddr, order, addr, ids)
		}
		for _, b := range bs {
			groups[b.Meta().Shard] = append(groups[b.Meta().Shard], b)
		}
	}
	if order == nil {
		closeAll()
		return nil, fmt.Errorf("core: replica group %q: no member reachable: %w", elem, errors.Join(dialErrs...))
	}
	for _, addr := range unreachable {
		for _, b := range engine.DeferredShards(addr, ropts, liveBackends, liveTotal) {
			dialed = append(dialed, b)
			groups[b.Meta().Shard] = append(groups[b.Meta().Shard], b)
		}
	}
	out := make([]engine.ShardBackend, 0, len(order))
	for k, shard := range order {
		rb, err := engine.NewReplicaBackend(groups[shard], engine.ReplicaOptions{})
		if err != nil {
			// Built replica backends own their members (Close stops their
			// health loops too); the rest are still raw connections.
			for _, b := range out {
				b.Close()
			}
			for _, s := range order[k:] {
				for _, m := range groups[s] {
					m.Close()
				}
			}
			closeAll()
			return nil, fmt.Errorf("core: replica group %q: %w", elem, err)
		}
		out = append(out, rb)
	}
	return out, nil
}

func shardIDs(bs []engine.ShardBackend) []int {
	ids := make([]int, len(bs))
	for i, b := range bs {
		ids[i] = b.Meta().Shard
	}
	return ids
}

func sameShardSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Close releases the engine's backends (remote connections; a no-op for
// a local workbench).
func (wb *Workbench) Close() error { return wb.Engine.Close() }

// Synthesize generates, integrates and indexes a synthetic population —
// the one-call path the examples and benchmarks use.
func Synthesize(cfg synth.Config) (*Workbench, error) {
	bundle := synth.Generate(cfg)
	return FromBundle(bundle, integrate.DefaultOptions(), cfg.Window())
}

// SnapshotOptions tunes Workbench.Save.
type SnapshotOptions struct {
	// Shards is the number of independently decodable segments the
	// snapshot is split into (the parallelism available to Open). 0
	// means match the engine's shard count.
	Shards int
}

// Save persists the collection as a sharded snapshot and returns the
// layout written. A store that has ingested (generation > 0) is saved
// fully merged with its ingest provenance in the v4 header; otherwise
// the format is v3. Materialized cohorts valid at the current generation
// are persisted alongside (promoting the snapshot to v5); with none the
// output is byte-identical to before cohorts existed. Saving pins one
// revision, so it is safe while queries — and further appends — are in
// flight.
func (wb *Workbench) Save(w io.Writer, opts SnapshotOptions) (*store.SnapshotInfo, error) {
	if wb.Store == nil {
		return nil, fmt.Errorf("core: save: workbench has no local collection (connected to remote shards)")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = wb.Engine.NumShards()
	}
	cohorts, err := cohortRecords(wb.Engine.ExportCohorts())
	if err != nil {
		return nil, err
	}
	info, err := store.SaveShardedStoreCohorts(w, wb.Store, shards, cohorts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return info, nil
}

// Open reopens a previously saved workbench from a snapshot of either
// format: sharded v2 snapshots decode shard-parallel; legacy v1 single-
// gob snapshots are detected transparently and fall back to the gob
// decoder. The resulting workbench records the snapshot's provenance.
func Open(r io.Reader, window model.Period) (*Workbench, error) {
	col, cohorts, info, err := store.LoadInfoCohorts(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wb := FromCollection(col, window)
	wb.Snapshot = info
	// Re-adopt the persisted cohorts into the fresh engine's workspace:
	// the expressions round-trip through the engine's wire codec (re-
	// validated on decode) and the bitsets were crc-checked with the rest
	// of the snapshot.
	for _, c := range cohorts {
		e, err := engine.DecodeExpr(c.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: open: cohort %q: %w", c.Name, err)
		}
		if err := wb.Engine.AdoptCohort(c.Name, e, c.Bits); err != nil {
			return nil, fmt.Errorf("core: open: %w", err)
		}
	}
	return wb, nil
}

// LoadSnapshot reopens a previously saved workbench. Kept as an alias
// for Open so existing callers keep compiling.
func LoadSnapshot(r io.Reader, window model.Period) (*Workbench, error) {
	return Open(r, window)
}

// SaveSnapshot persists the collection in the legacy v1 single-gob
// format. New code should prefer Save, which writes the sharded format
// Open decodes in parallel.
func (wb *Workbench) SaveSnapshot(w io.Writer) error {
	if wb.Store == nil {
		return fmt.Errorf("core: save: workbench has no local collection (connected to remote shards)")
	}
	if err := store.Save(w, wb.Store.Collection()); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Patients returns the population size (summed across shard backends for
// a connected workbench).
func (wb *Workbench) Patients() int { return wb.Engine.Patients() }

// Entries returns the total entry count.
func (wb *Workbench) Entries() int { return wb.Engine.TotalEntries() }
