// Package core is the workbench: it wires sources → integration → store →
// query/cohort → views into the "common workbench" the paper describes,
// and exposes the interactive session with the paper's operations —
// extraction of sub-collections, sorting and aligning histories, filtering
// events, temporal-pattern search, details-on-demand, and the two zoom
// sliders — each audited against the 0.1 s response budget.
package core

import (
	"fmt"
	"io"

	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/store"
	"pastas/internal/synth"
)

// Workbench is a loaded, indexed data set.
type Workbench struct {
	Store *store.Store
	// Engine is the sharded query planner/executor every cohort
	// evaluation goes through.
	Engine *engine.Engine
	// Report is the integration accounting (nil when loaded from a
	// snapshot).
	Report *integrate.Report
	// Window is the observation window the data covers.
	Window model.Period
}

// FromBundle integrates a registry bundle and indexes it.
func FromBundle(b *sources.Bundle, opts integrate.Options, window model.Period) (*Workbench, error) {
	col, rep, err := integrate.Build(b, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wb := FromCollection(col, window)
	wb.Report = rep
	return wb, nil
}

// FromCollection wraps an already-built collection.
func FromCollection(col *model.Collection, window model.Period) *Workbench {
	st := store.New(col)
	return &Workbench{
		Store:  st,
		Engine: engine.New(st, engine.DefaultOptions()),
		Window: window,
	}
}

// Query evaluates a cohort expression through the engine.
func (wb *Workbench) Query(e query.Expr) (*store.Bitset, error) {
	return wb.Engine.Execute(e)
}

// Synthesize generates, integrates and indexes a synthetic population —
// the one-call path the examples and benchmarks use.
func Synthesize(cfg synth.Config) (*Workbench, error) {
	bundle := synth.Generate(cfg)
	return FromBundle(bundle, integrate.DefaultOptions(), cfg.Window())
}

// LoadSnapshot reopens a previously saved workbench.
func LoadSnapshot(r io.Reader, window model.Period) (*Workbench, error) {
	col, err := store.Load(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return FromCollection(col, window), nil
}

// SaveSnapshot persists the collection.
func (wb *Workbench) SaveSnapshot(w io.Writer) error {
	if err := store.Save(w, wb.Store.Collection()); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Patients returns the population size.
func (wb *Workbench) Patients() int { return wb.Store.Len() }

// Entries returns the total entry count.
func (wb *Workbench) Entries() int { return wb.Store.Collection().TotalEntries() }
