// Package core is the workbench: it wires sources → integration → store →
// query/cohort → views into the "common workbench" the paper describes,
// and exposes the interactive session with the paper's operations —
// extraction of sub-collections, sorting and aligning histories, filtering
// events, temporal-pattern search, details-on-demand, and the two zoom
// sliders — each audited against the 0.1 s response budget.
package core

import (
	"fmt"
	"io"

	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/stats"
	"pastas/internal/store"
	"pastas/internal/synth"
)

// Workbench is a loaded, indexed data set — or, when connected to remote
// shard servers, a coordinating front over one.
type Workbench struct {
	// Store is the local indexed collection. It is nil for a workbench
	// built over remote shard backends (Connect), where the histories
	// live in the shard servers; both cohort evaluation and the
	// history-level operations (History, Histories, Indicators, sessions)
	// work through the Engine there — histories are fetched from their
	// shards on demand and indicators aggregate server-side.
	Store *store.Store
	// Engine is the sharded query planner/executor every cohort
	// evaluation goes through.
	Engine *engine.Engine
	// Report is the integration accounting (nil when loaded from a
	// snapshot).
	Report *integrate.Report
	// Snapshot is the provenance of the snapshot this workbench was
	// reopened from (nil when built from sources): format version, shard
	// layout and sizes. The webapp surfaces it in GET /api/stats.
	Snapshot *store.SnapshotInfo
	// Window is the observation window the data covers.
	Window model.Period
}

// FromBundle integrates a registry bundle and indexes it.
func FromBundle(b *sources.Bundle, opts integrate.Options, window model.Period) (*Workbench, error) {
	col, rep, err := integrate.Build(b, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wb := FromCollection(col, window)
	wb.Report = rep
	return wb, nil
}

// FromCollection wraps an already-built collection.
func FromCollection(col *model.Collection, window model.Period) *Workbench {
	st := store.New(col)
	return &Workbench{
		Store:  st,
		Engine: engine.New(st, engine.DefaultOptions()),
		Window: window,
	}
}

// Query evaluates a cohort expression through the engine.
func (wb *Workbench) Query(e query.Expr) (*store.Bitset, error) {
	return wb.Engine.Execute(e)
}

// History returns one patient's history: off the local store, or fetched
// from the shard server holding the patient for a connected workbench.
// Absence is an error wrapping engine.ErrNoPatient; a down shard server
// is a loud failure, never a false "not found".
func (wb *Workbench) History(id model.PatientID) (*model.History, error) {
	h, err := wb.Engine.HistoryByID(id)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return h, nil
}

// Histories materializes the cohort a bitset selects as a collection in
// display (ordinal) order. On a connected workbench the selected
// histories — and only those — ship from their shard servers in the
// checksummed segment codec; for cohort-wide statistics prefer
// Indicators, which aggregates server-side instead of shipping anything.
func (wb *Workbench) Histories(bits *store.Bitset) (*model.Collection, error) {
	hs, err := wb.Engine.Histories(bits)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	col, err := model.NewCollection(hs...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return col, nil
}

// Indicators computes the utilization-indicator summary for the cohort a
// bitset selects, over the workbench window. Each shard tallies its slice
// where the histories live (a fixed-size partial per shard, whatever the
// cohort size) and the partials merge exactly, so a connected workbench
// reports bit-identical indicators to a local one.
func (wb *Workbench) Indicators(bits *store.Bitset) (stats.Indicators, error) {
	ind, err := wb.Engine.Indicators(bits, wb.Window)
	if err != nil {
		return stats.Indicators{}, fmt.Errorf("core: %w", err)
	}
	return ind, nil
}

// Connect builds a workbench over remote shard servers: each address is a
// cohortctl shard-server, every shard it serves becomes a backend, and
// together they must tile the snapshot's population. The workbench has no
// local Store — queries, history fetches and indicator aggregation all
// execute across the servers with bit-identical semantics to a local
// workbench over the same snapshot.
func Connect(addrs []string, ropts engine.RemoteOptions, opts engine.Options, window model.Period) (*Workbench, error) {
	var backends []engine.ShardBackend
	closeAll := func() {
		for _, b := range backends {
			b.Close()
		}
	}
	total := -1
	for _, addr := range addrs {
		bs, serverTotal, err := engine.DialShards(addr, ropts)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: connect %s: %w", addr, err)
		}
		if total == -1 {
			total = serverTotal
		} else if serverTotal != total {
			closeAll()
			return nil, fmt.Errorf("core: connect %s: server's snapshot has %d patients, others have %d (different snapshots?)",
				addr, serverTotal, total)
		}
		backends = append(backends, bs...)
	}
	eng, err := engine.NewFromBackends(backends, opts)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("core: %w", err)
	}
	// NewFromBackends proved the shards tile [0, N) contiguously; the
	// servers' snapshot total proves N is the whole population, so a
	// missing tail server cannot silently shrink the cohort universe.
	if eng.Patients() != total {
		eng.Close()
		return nil, fmt.Errorf("core: connected shards cover %d of %d patients; add the missing shard servers",
			eng.Patients(), total)
	}
	return &Workbench{Engine: eng, Window: window}, nil
}

// Close releases the engine's backends (remote connections; a no-op for
// a local workbench).
func (wb *Workbench) Close() error { return wb.Engine.Close() }

// Synthesize generates, integrates and indexes a synthetic population —
// the one-call path the examples and benchmarks use.
func Synthesize(cfg synth.Config) (*Workbench, error) {
	bundle := synth.Generate(cfg)
	return FromBundle(bundle, integrate.DefaultOptions(), cfg.Window())
}

// SnapshotOptions tunes Workbench.Save.
type SnapshotOptions struct {
	// Shards is the number of independently decodable segments the
	// snapshot is split into (the parallelism available to Open). 0
	// means match the engine's shard count.
	Shards int
}

// Save persists the collection as a sharded v2 snapshot and returns the
// layout written. Saving is read-only on the collection, so it is safe
// while queries are in flight.
func (wb *Workbench) Save(w io.Writer, opts SnapshotOptions) (*store.SnapshotInfo, error) {
	if wb.Store == nil {
		return nil, fmt.Errorf("core: save: workbench has no local collection (connected to remote shards)")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = wb.Engine.NumShards()
	}
	info, err := store.SaveSharded(w, wb.Store.Collection(), shards)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return info, nil
}

// Open reopens a previously saved workbench from a snapshot of either
// format: sharded v2 snapshots decode shard-parallel; legacy v1 single-
// gob snapshots are detected transparently and fall back to the gob
// decoder. The resulting workbench records the snapshot's provenance.
func Open(r io.Reader, window model.Period) (*Workbench, error) {
	col, info, err := store.LoadInfo(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	wb := FromCollection(col, window)
	wb.Snapshot = info
	return wb, nil
}

// LoadSnapshot reopens a previously saved workbench. Kept as an alias
// for Open so existing callers keep compiling.
func LoadSnapshot(r io.Reader, window model.Period) (*Workbench, error) {
	return Open(r, window)
}

// SaveSnapshot persists the collection in the legacy v1 single-gob
// format. New code should prefer Save, which writes the sharded format
// Open decodes in parallel.
func (wb *Workbench) SaveSnapshot(w io.Writer) error {
	if wb.Store == nil {
		return fmt.Errorf("core: save: workbench has no local collection (connected to remote shards)")
	}
	if err := store.Save(w, wb.Store.Collection()); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Patients returns the population size (summed across shard backends for
// a connected workbench).
func (wb *Workbench) Patients() int { return wb.Engine.Patients() }

// Entries returns the total entry count.
func (wb *Workbench) Entries() int { return wb.Engine.TotalEntries() }
