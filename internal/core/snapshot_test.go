package core

import (
	"bytes"
	"sync"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
)

// TestSnapshotShardedEngineParity is the round-trip gate CI runs under
// -race: save the workbench sharded at {1, 4, 16}, reopen each snapshot,
// verify the reloaded collection is per-history identical to the
// original, and confirm the reloaded engine answers a mixed index+scan
// cohort query with exactly the same bitset.
func TestSnapshotShardedEngineParity(t *testing.T) {
	wb := testWorkbench(t, 400)
	workload := query.And{
		query.Or{
			query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}},
			query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICD10", `E11(\..*)?`)}},
		},
		query.Has{Pred: query.MustCode("", `K8.|T9.`), MinCount: 1},
	}
	want, err := wb.Query(workload)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 16} {
		var buf bytes.Buffer
		info, err := wb.Save(&buf, SnapshotOptions{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}
		if info.Shards != shards {
			t.Errorf("shards=%d: snapshot has %d shards", shards, info.Shards)
		}
		back, err := Open(bytes.NewReader(buf.Bytes()), wb.Window)
		if err != nil {
			t.Fatalf("shards=%d: open: %v", shards, err)
		}
		if back.Snapshot == nil || back.Snapshot.Legacy || back.Snapshot.Shards != shards {
			t.Errorf("shards=%d: provenance = %+v", shards, back.Snapshot)
		}

		// Per-history parity with the original collection.
		orig, got := wb.Store.Collection(), back.Store.Collection()
		if got.Len() != orig.Len() {
			t.Fatalf("shards=%d: %d patients, want %d", shards, got.Len(), orig.Len())
		}
		for i := 0; i < orig.Len(); i++ {
			oh, gh := orig.At(i), got.At(i)
			if oh.Patient != gh.Patient {
				t.Fatalf("shards=%d: history %d patient drifted", shards, i)
			}
			oe, ge := oh.SortedEntries(), gh.SortedEntries()
			if len(oe) != len(ge) {
				t.Fatalf("shards=%d: history %d has %d entries, want %d", shards, i, len(ge), len(oe))
			}
			for j := range oe {
				if oe[j] != ge[j] {
					t.Fatalf("shards=%d: history %d entry %d drifted:\n got %+v\nwant %+v",
						shards, i, j, ge[j], oe[j])
				}
			}
		}

		// Engine parity on the reloaded store.
		bits, err := back.Query(workload)
		if err != nil {
			t.Fatalf("shards=%d: query: %v", shards, err)
		}
		if !bits.Equal(want) {
			t.Errorf("shards=%d: cohort drifted: %d patients, want %d", shards, bits.Count(), want.Count())
		}
	}
}

// TestOpenLegacyFallback: a v1 single-gob snapshot opens transparently
// through the same Open entry point and is flagged as legacy.
func TestOpenLegacyFallback(t *testing.T) {
	wb := testWorkbench(t, 60)
	var buf bytes.Buffer
	if err := wb.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Open(&buf, wb.Window)
	if err != nil {
		t.Fatal(err)
	}
	if back.Snapshot == nil || !back.Snapshot.Legacy {
		t.Errorf("legacy provenance = %+v", back.Snapshot)
	}
	if back.Patients() != wb.Patients() || back.Entries() != wb.Entries() {
		t.Error("legacy round trip lost data")
	}
}

// TestSaveDuringQueries: saving must be read-only on the collection, so
// snapshotting while engine queries are in flight is race-free (CI runs
// this under -race, which is the actual assertion here).
func TestSaveDuringQueries(t *testing.T) {
	wb := testWorkbench(t, 200)
	expr := query.Has{Pred: query.MustCode("", `K8.`), MinCount: 1}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			wb.Engine.ResetCache() // force re-evaluation (scans walk entries)
			if _, err := wb.Query(expr); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if _, err := wb.Save(&buf, SnapshotOptions{Shards: 4}); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
