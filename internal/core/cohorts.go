package core

// The cohort workspace at the workbench level: save a cohort under a
// name, refine it incrementally (the engine recognizes seed ∧ delta /
// seed ∨ delta and executes only the delta, masked by the saved
// bitset), profile it, and compare two cohorts side by side — the
// iterative explore loop from the paper, O(delta) instead of
// O(population) per step.

import (
	"context"
	"fmt"

	"pastas/internal/engine"
	"pastas/internal/query"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// SaveCohort materializes an expression from scratch and saves it as a
// named cohort at the current store generation. Materialization is
// strict whatever the engine's policy: a degraded answer errors rather
// than saving a silently incomplete cohort.
func (wb *Workbench) SaveCohort(name string, e query.Expr) (engine.CohortInfo, error) {
	info, err := wb.Engine.Materialize(context.Background(), name, e)
	if err != nil {
		return engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	return info, nil
}

// RefineCohort evaluates an expression seeded by the materialized
// cohorts and saves the result under the given name, returning how the
// answer was produced (exact / narrow / widen / scratch, and whether the
// seed mask was pushed down to remote shards).
func (wb *Workbench) RefineCohort(name string, e query.Expr) (engine.CohortInfo, engine.Refinement, error) {
	info, ref, err := wb.Engine.Refine(context.Background(), name, e)
	if err != nil {
		return engine.CohortInfo{}, engine.Refinement{}, fmt.Errorf("core: %w", err)
	}
	return info, ref, nil
}

// Cohorts lists the materialized cohorts valid at the current store
// generation, sorted by name.
func (wb *Workbench) Cohorts() []engine.CohortInfo { return wb.Engine.Cohorts() }

// DropCohort removes a materialized cohort; reports whether it existed.
func (wb *Workbench) DropCohort(name string) bool { return wb.Engine.DropCohort(name) }

// CohortBits returns a caller-owned copy of a saved cohort's bitset.
func (wb *Workbench) CohortBits(name string) (*store.Bitset, engine.CohortInfo, error) {
	bits, info, err := wb.Engine.CohortBits(name)
	if err != nil {
		return nil, engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	return bits, info, nil
}

// CohortProfile aggregates the dimension breakdown (sex, age bands,
// entries by source and type) for a saved cohort over the workbench
// window. Each shard tallies its slice server-side and the integral
// partials merge exactly, so a connected workbench reports bit-identical
// profiles to a local one.
func (wb *Workbench) CohortProfile(name string) (stats.CohortProfile, engine.CohortInfo, error) {
	bits, info, err := wb.Engine.CohortBits(name)
	if err != nil {
		return stats.CohortProfile{}, engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	prof, err := wb.Engine.Profile(bits, wb.Window)
	if err != nil {
		return stats.CohortProfile{}, engine.CohortInfo{}, fmt.Errorf("core: %w", err)
	}
	return prof, info, nil
}

// CohortComparison is two cohorts side by side: their profiles plus the
// set relationship of their memberships.
type CohortComparison struct {
	A        engine.CohortInfo   `json:"a"`
	B        engine.CohortInfo   `json:"b"`
	ProfileA stats.CohortProfile `json:"profile_a"`
	ProfileB stats.CohortProfile `json:"profile_b"`
	// Both / OnlyA / OnlyB partition the union of the two memberships.
	Both  int `json:"both"`
	OnlyA int `json:"only_a"`
	OnlyB int `json:"only_b"`
}

// CompareCohorts profiles two saved cohorts and reports their overlap.
func (wb *Workbench) CompareCohorts(a, b string) (*CohortComparison, error) {
	ba, ia, err := wb.Engine.CohortBits(a)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bb, ib, err := wb.Engine.CohortBits(b)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pa, err := wb.Engine.Profile(ba, wb.Window)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pb, err := wb.Engine.Profile(bb, wb.Window)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	both := ba.Clone()
	both.And(bb)
	n := both.Count()
	return &CohortComparison{
		A: ia, B: ib,
		ProfileA: pa, ProfileB: pb,
		Both:  n,
		OnlyA: ia.Count - n,
		OnlyB: ib.Count - n,
	}, nil
}

// cohortRecords converts the engine's export into the store's persisted
// form, encoding each expression with the engine's wire codec (the store
// treats it as an opaque blob).
func cohortRecords(exports []engine.CohortExport) ([]store.CohortRecord, error) {
	if len(exports) == 0 {
		return nil, nil
	}
	records := make([]store.CohortRecord, 0, len(exports))
	for _, x := range exports {
		blob, err := engine.EncodeExpr(x.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: save: cohort %q: %w", x.Name, err)
		}
		records = append(records, store.CohortRecord{Name: x.Name, Expr: blob, Bits: x.Bits})
	}
	return records, nil
}
