package core

import (
	"bytes"
	"strings"
	"testing"

	"pastas/internal/align"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/synth"
)

func testWorkbench(t testing.TB, n int) *Workbench {
	t.Helper()
	wb, err := Synthesize(synth.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return wb
}

// mustSession opens a session over a store-backed workbench.
func mustSession(t testing.TB, wb *Workbench) *Session {
	t.Helper()
	s, err := NewSession(wb)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSynthesizePipeline(t *testing.T) {
	wb := testWorkbench(t, 120)
	if wb.Patients() != 120 {
		t.Errorf("patients = %d", wb.Patients())
	}
	if wb.Entries() == 0 {
		t.Error("no entries")
	}
	if wb.Report == nil || wb.Report.Patients != 120 {
		t.Error("integration report missing")
	}
	if wb.Window.Empty() {
		t.Error("window missing")
	}
}

func TestSnapshotRoundTripWorkbench(t *testing.T) {
	wb := testWorkbench(t, 40)
	var buf bytes.Buffer
	if err := wb.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf, wb.Window)
	if err != nil {
		t.Fatal(err)
	}
	if back.Patients() != wb.Patients() || back.Entries() != wb.Entries() {
		t.Error("snapshot round trip lost data")
	}
	if _, err := LoadSnapshot(strings.NewReader("garbage"), wb.Window); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSessionExtractAndUndo(t *testing.T) {
	wb := testWorkbench(t, 300)
	s := mustSession(t, wb)
	full := s.View().Len()

	diabetics := query.Or{
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}},
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICD10", `E11(\..*)?`)}},
	}
	if err := s.Extract(diabetics); err != nil {
		t.Fatal(err)
	}
	sub := s.View().Len()
	if sub == 0 || sub >= full {
		t.Fatalf("extract: %d of %d", sub, full)
	}

	// Second extraction on a narrowed view uses the scan path.
	if err := s.Extract(query.SexIs(model.SexFemale)); err != nil {
		t.Fatal(err)
	}
	if s.View().Len() > sub {
		t.Error("second extract grew the view")
	}

	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if s.View().Len() != sub {
		t.Errorf("undo restored %d, want %d", s.View().Len(), sub)
	}
	if !s.Undo() {
		t.Fatal("second undo failed")
	}
	if s.View().Len() != full {
		t.Errorf("undo to full restored %d, want %d", s.View().Len(), full)
	}
	if s.Undo() {
		t.Error("undo on empty stack must fail")
	}
}

func TestSessionAlignment(t *testing.T) {
	wb := testWorkbench(t, 300)
	s := mustSession(t, wb)
	anchor := align.First(query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "K86|K87")})
	if err := s.AlignOn(anchor); err != nil {
		t.Fatal(err)
	}
	if s.Aligned() == nil {
		t.Fatal("no alignment active")
	}
	if s.View().Len()+len(s.Aligned().Missing) != 300 {
		t.Error("alignment partition broken")
	}
	svg := s.RenderTimeline(render.TimelineOptions{MaxRows: 50})
	if !strings.Contains(svg, "alignment point") {
		t.Error("aligned render missing anchor rule")
	}
	if err := s.ClearAlignment(); err != nil {
		t.Fatal(err)
	}
	if s.Aligned() != nil {
		t.Error("alignment not cleared")
	}
}

func TestSessionFilterEvents(t *testing.T) {
	wb := testWorkbench(t, 100)
	s := mustSession(t, wb)
	plain := s.RenderTimeline(render.TimelineOptions{MaxRows: 20})

	if err := s.FilterEvents(query.TypeIs(model.TypeMeasurement)); err != nil {
		t.Fatal(err)
	}
	filtered := s.RenderTimeline(render.TimelineOptions{MaxRows: 20})
	// Diagnosis rectangles are gone; the render shrinks.
	if strings.Count(filtered, render.ColorDiagnosis) >= strings.Count(plain, render.ColorDiagnosis) {
		t.Error("filter did not remove diagnosis marks")
	}
	if err := s.ClearFilter(); err != nil {
		t.Fatal(err)
	}
	back := s.RenderTimeline(render.TimelineOptions{MaxRows: 20})
	if strings.Count(back, render.ColorDiagnosis) != strings.Count(plain, render.ColorDiagnosis) {
		t.Error("clear-filter did not restore marks")
	}
}

func TestSessionSortZoomDetails(t *testing.T) {
	wb := testWorkbench(t, 80)
	s := mustSession(t, wb)
	if err := s.SortBy("by-entries", align.ByEntryCount()); err != nil {
		t.Fatal(err)
	}
	if s.View().At(0).Len() < s.View().At(s.View().Len()-1).Len() {
		t.Error("sort did not order by entry count")
	}
	if err := s.SetZoom(2, 0.5); err != nil { // y clamps to 1
		t.Fatal(err)
	}
	x, y := s.Zoom()
	if x != 2 || y != 1 {
		t.Errorf("zoom = %f, %f", x, y)
	}

	h := s.View().At(0)
	if h.Len() > 0 {
		lines := s.Details(h.Patient.ID, h.Entries[0].Start)
		if len(lines) == 0 {
			t.Error("details empty at an entry")
		}
	}
	if got := s.Details(999999, 0); got != nil {
		t.Error("details for unknown patient must be nil")
	}
}

func TestSessionPatternSearch(t *testing.T) {
	wb := testWorkbench(t, 300)
	s := mustSession(t, wb)
	seq := query.Sequence{Steps: []query.Step{
		{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("", "K86|K87|T90")}},
		{Pred: query.TypeIs(model.TypeMeasurement), MaxGap: query.Days(370)},
	}}
	ids := s.SearchPattern(seq)
	// Hypertensives get BP measurements; some matches are certain at 300.
	if len(ids) == 0 {
		t.Error("pattern search found nothing")
	}
}

func TestSessionGraphViews(t *testing.T) {
	wb := testWorkbench(t, 200)
	s := mustSession(t, wb)
	if err := s.Extract(query.Has{Pred: query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "T90")}}); err != nil {
		t.Fatal(err)
	}
	svg, err := s.RenderGraph("T90", 2, render.GraphOptions{Labels: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "#ffe08a") {
		t.Error("anchor node missing in graph render")
	}
	if _, err := s.RenderGraph("(", 1, render.GraphOptions{}); err == nil {
		t.Error("bad pattern accepted")
	}
	msa := s.RenderGraphMSA(render.GraphOptions{})
	if !strings.Contains(msa, "<ellipse") {
		t.Error("MSA graph render empty")
	}
}

func TestSessionHistoryAndBudget(t *testing.T) {
	wb := testWorkbench(t, 60)
	s := mustSession(t, wb)
	_ = s.RenderTimeline(render.TimelineOptions{MaxRows: 10})
	if err := s.SetZoom(2, 2); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	log := s.History()
	if len(log) < 3 {
		t.Fatalf("history = %v", log)
	}
	ops := map[string]bool{}
	for _, r := range log {
		ops[r.Op] = true
	}
	for _, want := range []string{"render-timeline", "zoom", "reset"} {
		if !ops[want] {
			t.Errorf("history missing %s", want)
		}
	}
	if len(s.Budget().Report()) == 0 {
		t.Error("budget collected nothing")
	}
}

func TestExtractErrorLeavesStateIntact(t *testing.T) {
	wb := testWorkbench(t, 50)
	s := mustSession(t, wb)
	before := s.View()
	// A Has with a predicate whose regex was pre-compiled can't fail; use
	// EvalIndexed failure via bad pattern in Code built by hand.
	bad := query.Has{Pred: &failingPred{}}
	_ = bad
	// Instead: failing path via RenderGraph covered elsewhere; here verify
	// that Undo stack is untouched after a successful no-op extract.
	if err := s.Extract(query.TrueExpr{}); err != nil {
		t.Fatal(err)
	}
	if s.View().Len() != before.Len() {
		t.Error("true extract changed view size")
	}
}

type failingPred struct{}

func (f *failingPred) Match(e *model.Entry) bool { return false }
func (f *failingPred) String() string            { return "failing" }
