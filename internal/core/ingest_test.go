package core

import (
	"reflect"
	"sync"
	"testing"

	"pastas/internal/cohort"
	"pastas/internal/engine"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/sources"
	"pastas/internal/store"
	"pastas/internal/synth"
)

// mergeBundles concatenates extracts in delivery order — what the
// registries would have shipped as one big batch.
func mergeBundles(parts ...*sources.Bundle) *sources.Bundle {
	out := &sources.Bundle{}
	for _, p := range parts {
		out.Persons = append(out.Persons, p.Persons...)
		out.GPClaims = append(out.GPClaims, p.GPClaims...)
		out.Prescriptions = append(out.Prescriptions, p.Prescriptions...)
		out.Episodes = append(out.Episodes, p.Episodes...)
		out.Municipal = append(out.Municipal, p.Municipal...)
		out.Specialist = append(out.Specialist, p.Specialist...)
		out.Physio = append(out.Physio, p.Physio...)
	}
	return out
}

// wbAtShards builds a store-backed workbench with an explicit engine
// shard count and pinned ingest options.
func wbAtShards(t testing.TB, b *sources.Bundle, opts integrate.Options, window model.Period, shards int) *Workbench {
	t.Helper()
	col, _, err := integrate.Build(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(col)
	o := opts
	return &Workbench{
		Store:         st,
		Engine:        engine.New(st, engine.Options{Shards: shards, Workers: 4, CacheSize: 64}),
		Window:        window,
		IngestOptions: &o,
	}
}

func ingestQueries(window model.Period) []query.Expr {
	return []query.Expr{
		cohort.StudyCriteria(window),
		query.Has{Pred: query.MustCode("ICPC2", "T90|K86")},
		query.And{
			query.Has{Pred: query.TypeIs(model.TypeMedication)},
			query.Has{Pred: query.MustCode("ICPC2", ".*")},
		},
		query.Has{Pred: query.SourceIs(model.SourceHospital)},
	}
}

// TestIncrementalMatchesBatch: a workbench that loads the base extract
// and then Appends two follow-on rounds must be query- and
// indicator-identical to one batch-built from the concatenation — at
// shard counts 1, 4 and 16, both before and after compaction.
func TestIncrementalMatchesBatch(t *testing.T) {
	const basePop = 150
	cfg := synth.DefaultConfig(basePop)
	base := synth.Generate(cfg)
	r1 := synth.GenerateAppend(cfg, basePop+1, basePop+10, 1)
	r2 := synth.GenerateAppend(cfg, basePop+11, basePop+18, 2)
	window := cfg.Window()
	// Pin the open-interval horizon: the default moves with each bundle's
	// latest date, which would legitimately diverge the two runs.
	opts := integrate.DefaultOptions()
	opts.OpenIntervalEnd = window.End.AddDays(30)

	combined := mergeBundles(base, r1, r2)
	queries := ingestQueries(window)

	for _, shards := range []int{1, 4, 16} {
		batch := wbAtShards(t, combined, opts, window, shards)
		incr := wbAtShards(t, base, opts, window, shards)
		for _, round := range []*sources.Bundle{r1, r2} {
			if err := incr.Append(round); err != nil {
				t.Fatal(err)
			}
		}
		if g := incr.Engine.Generation(); g != 2 {
			t.Fatalf("shards=%d: generation after two appends = %d", shards, g)
		}
		if incr.Patients() != batch.Patients() || incr.Entries() != batch.Entries() {
			t.Fatalf("shards=%d: incremental %d patients/%d entries, batch %d/%d",
				shards, incr.Patients(), incr.Entries(), batch.Patients(), batch.Entries())
		}

		compare := func(stage string) {
			for qi, q := range queries {
				bb, err := batch.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				ib, err := incr.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				idsB := batch.Store.IDsOf(bb)
				idsI := incr.Store.IDsOf(ib)
				if !reflect.DeepEqual(idsB, idsI) {
					t.Fatalf("shards=%d %s query %d: cohorts diverge (%d batch vs %d incremental)",
						shards, stage, qi, len(idsB), len(idsI))
				}
				indB, err := batch.Indicators(bb)
				if err != nil {
					t.Fatal(err)
				}
				indI, err := incr.Indicators(ib)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(indB, indI) {
					t.Fatalf("shards=%d %s query %d: indicators diverge\nbatch       %+v\nincremental %+v",
						shards, stage, qi, indB, indI)
				}
			}
		}
		compare("pre-compaction")
		if _, err := incr.Compact(); err != nil {
			t.Fatal(err)
		}
		if st, _ := incr.IngestStats(); st.DeltaEntries != 0 {
			t.Fatalf("shards=%d: delta not empty after Compact: %+v", shards, st)
		}
		compare("post-compaction")
	}
}

// TestNoStaleAnswersUnderConcurrentIngest hammers one workbench with
// queries while a writer appends rounds and compacts. Every answer must
// equal the reference interpreter's answer over some generation the
// query's execution overlapped — a stale cache hit or a torn read would
// produce an answer matching no generation. Run with -race in CI.
func TestNoStaleAnswersUnderConcurrentIngest(t *testing.T) {
	const basePop = 120
	const rounds = 8
	cfg := synth.DefaultConfig(basePop)
	window := cfg.Window()
	opts := integrate.DefaultOptions()
	opts.OpenIntervalEnd = window.End.AddDays(30)
	wb := wbAtShards(t, synth.Generate(cfg), opts, window, 4)

	q := query.Has{Pred: query.MustCode("ICPC2", "T90|K86")}

	// refs[g] is the reference answer at generation g, computed by the
	// plain indexed interpreter over a frozen revision. Written only by
	// the writer goroutine; read only after the join.
	refs := make([][]model.PatientID, rounds+1)
	record := func(g uint64) error {
		frozen := wb.Store.Freeze()
		bits, err := query.EvalIndexed(frozen, q)
		if err != nil {
			return err
		}
		refs[g] = frozen.IDsOf(bits)
		return nil
	}
	if err := record(0); err != nil {
		t.Fatal(err)
	}

	type obs struct {
		g0, g1 uint64
		ids    []model.PatientID
	}
	const readers = 4
	samples := make([][]obs, readers)
	errCh := make(chan error, readers+1)
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for round := 1; round <= rounds; round++ {
			first := uint64(basePop + (round-1)*5 + 1)
			b := synth.GenerateAppend(cfg, first, first+4, round)
			if err := wb.Append(b); err != nil {
				errCh <- err
				return
			}
			if err := record(uint64(round)); err != nil {
				errCh <- err
				return
			}
			if round%3 == 0 {
				if _, err := wb.Compact(); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				g0 := wb.Engine.Generation()
				bits, err := wb.Query(q)
				if err != nil {
					errCh <- err
					return
				}
				g1 := wb.Engine.Generation()
				// Ordinals are append-only, so mapping an older bitset
				// through the current revision's ID table is exact.
				samples[r] = append(samples[r], obs{g0, g1, wb.Store.IDsOf(bits)})
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	total := 0
	for r := range samples {
		for _, o := range samples[r] {
			total++
			ok := false
			for g := o.g0; g <= o.g1 && g <= rounds; g++ {
				if reflect.DeepEqual(refs[g], o.ids) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("reader %d: answer (%d ids) matches no generation in [%d, %d] — stale or torn",
					r, len(o.ids), o.g0, o.g1)
			}
		}
	}
	if total == 0 {
		t.Error("no query samples collected")
	}
}
