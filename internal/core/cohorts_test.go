package core

import (
	"bytes"
	"testing"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/synth"
)

// TestCohortSaveReopenAdoption: cohorts saved into a snapshot are
// re-adopted on Open — same names, same cardinalities, and the adopted
// cohorts seed refinements in the fresh engine exactly as the originals
// did.
func TestCohortSaveReopenAdoption(t *testing.T) {
	cfg := synth.DefaultConfig(150)
	window := cfg.Window()
	wb := wbAtShards(t, synth.Generate(cfg), integrate.DefaultOptions(), window, 4)

	parent := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	narrow := query.And{parent, query.SexIs(model.SexFemale)}
	if _, err := wb.SaveCohort("diag", parent); err != nil {
		t.Fatal(err)
	}
	if _, ref, err := wb.RefineCohort("women", narrow); err != nil {
		t.Fatal(err)
	} else if ref.Mode != "narrow" {
		t.Fatalf("refine mode %q, want narrow", ref.Mode)
	}
	wantBits, _, err := wb.CohortBits("women")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	info, err := wb.Save(&buf, SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cohorts != 2 {
		t.Fatalf("snapshot reports %d cohorts, want 2", info.Cohorts)
	}

	re, err := Open(bytes.NewReader(buf.Bytes()), window)
	if err != nil {
		t.Fatal(err)
	}
	cs := re.Cohorts()
	if len(cs) != 2 {
		t.Fatalf("reopened workbench has %d cohorts, want 2: %+v", len(cs), cs)
	}
	gotBits, gotInfo, err := re.CohortBits("women")
	if err != nil {
		t.Fatal(err)
	}
	if !gotBits.Equal(wantBits) {
		t.Fatalf("adopted cohort bits diverge: %d vs %d", gotBits.Count(), wantBits.Count())
	}
	if gotInfo.Count != wantBits.Count() {
		t.Fatalf("adopted cohort count %d, want %d", gotInfo.Count, wantBits.Count())
	}

	// The adopted parent must seed refinements in the fresh engine.
	x, err := re.Engine.Explain(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if x.Seed == nil {
		t.Fatal("adopted cohort does not seed plans after reopen")
	}
	_, ref, err := re.RefineCohort("women2", narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mode == "scratch" {
		t.Fatal("refinement after reopen fell back to scratch")
	}
	b2, _, err := re.CohortBits("women2")
	if err != nil {
		t.Fatal(err)
	}
	if !b2.Equal(wantBits) {
		t.Fatal("refinement after reopen diverges from pre-save bits")
	}
}

// TestCohortCompare: the comparison is exact set algebra plus two
// mergeable profiles.
func TestCohortCompare(t *testing.T) {
	cfg := synth.DefaultConfig(120)
	window := cfg.Window()
	wb := wbAtShards(t, synth.Generate(cfg), integrate.DefaultOptions(), window, 4)

	if _, err := wb.SaveCohort("women", query.SexIs(model.SexFemale)); err != nil {
		t.Fatal(err)
	}
	if _, err := wb.SaveCohort("diag", query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}); err != nil {
		t.Fatal(err)
	}
	cmp, err := wb.CompareCohorts("women", "diag")
	if err != nil {
		t.Fatal(err)
	}
	ba, _, _ := wb.CohortBits("women")
	bb, _, _ := wb.CohortBits("diag")
	inter := ba.Clone()
	inter.And(bb)
	if cmp.Both != inter.Count() {
		t.Fatalf("Both = %d, want %d", cmp.Both, inter.Count())
	}
	if cmp.OnlyA != ba.Count()-inter.Count() || cmp.OnlyB != bb.Count()-inter.Count() {
		t.Fatalf("OnlyA/OnlyB = %d/%d, want %d/%d",
			cmp.OnlyA, cmp.OnlyB, ba.Count()-inter.Count(), bb.Count()-inter.Count())
	}
	if cmp.ProfileA.Patients != ba.Count() || cmp.ProfileB.Patients != bb.Count() {
		t.Fatalf("profile patients %d/%d, want %d/%d",
			cmp.ProfileA.Patients, cmp.ProfileB.Patients, ba.Count(), bb.Count())
	}
	if _, err := wb.CompareCohorts("women", "no-such"); err == nil {
		t.Fatal("comparing against a missing cohort must error")
	}
}

// TestCohortSaveAfterAppendDropsStale: an append invalidates the
// workspace, so a save right after ingest persists no cohorts — and a
// re-materialized cohort at the new generation is saved.
func TestCohortSaveAfterAppendDropsStale(t *testing.T) {
	cfg := synth.DefaultConfig(80)
	window := cfg.Window()
	opts := integrate.DefaultOptions()
	opts.OpenIntervalEnd = window.End.AddDays(30)
	wb := wbAtShards(t, synth.Generate(cfg), opts, window, 4)

	parent := query.Has{Pred: query.TypeIs(model.TypeDiagnosis)}
	if _, err := wb.SaveCohort("diag", parent); err != nil {
		t.Fatal(err)
	}
	if err := wb.Append(synth.GenerateAppend(cfg, 81, 85, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	info, err := wb.Save(&buf, SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cohorts != 0 {
		t.Fatalf("post-append save persisted %d cohorts, want 0 (stale dropped)", info.Cohorts)
	}

	if _, err := wb.SaveCohort("diag", parent); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	info, err = wb.Save(&buf, SnapshotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cohorts != 1 {
		t.Fatalf("re-materialized save persisted %d cohorts, want 1", info.Cohorts)
	}
	re, err := Open(bytes.NewReader(buf.Bytes()), window)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Cohorts(); len(got) != 1 || got[0].Name != "diag" {
		t.Fatalf("reopened cohorts = %+v", got)
	}
}
