package cohort

import (
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/terminology"
)

// The study's "predefined characteristics" (Section IV). The paper does not
// publish the exact inclusion criteria beyond "chronically ill patients ...
// frequently have complex patient histories" in a prospective cohort with
// two years of somatic utilization data; we operationalize that as:
//
//  1. at least one chronic-condition diagnosis (ICPC-2 or its ICD-10
//     counterpart) inside the window, and
//  2. at least six GP contacts inside the window (an ongoing primary-care
//     relationship), and
//  3. substantial specialist-care involvement inside the window: a hospital
//     admission or day treatment, or at least two hospital outpatient
//     visits (the acute-care dimension of the title).
//
// Against the calibrated synthetic population this selects ≈7.75 % —
// 13,000 of 168,000 patients, the paper's reported selection (experiment
// E1).

// chronicICPC matches the chronic-condition ICPC-2 codes.
var chronicICPC = terminology.Disjunction(
	`T89`, `T90`, // diabetes
	`K86`, `K87`, // hypertension
	`K74`, `K75`, `K76`, `K77`, `K78`, // ischaemic heart disease, MI, failure, afib
	`K90`, `K91`, // stroke, cerebrovascular
	`R95`, `R96`, // COPD, asthma
	`P70`, `P76`, // dementia, depression
	`L88`, `L89`, `L90`, `L95`, // arthritis, arthrosis, osteoporosis
	`N86`, `N87`, `N88`, // MS, parkinsonism, epilepsy
	`T86`,        // hypothyroidism
	`X76`, `Y77`, // breast / prostate cancer
)

// chronicICD matches the ICD-10 counterparts (with subcode suffixes).
var chronicICD = terminology.Disjunction(
	`E1[01](\..*)?`,                       // diabetes
	`I1[01]`,                              // hypertensive disease
	`I2[015](\..*)?`, `I48`, `I50(\..*)?`, // IHD, afib, failure
	`I6[1234](\..*)?`, // cerebrovascular
	`J4[45](\..*)?`,   // COPD, asthma
	`F03`, `F32`,      // dementia, depression
	`M1[67]`, `M81`, // arthrosis, osteoporosis
	`G20`, `G35`, `G40`, // parkinson, MS, epilepsy
	`E03`,        // hypothyroidism
	`C50`, `C61`, // breast / prostate cancer
)

// StudyCriteria returns the predefined-characteristics expression used for
// the 168k→13k selection, restricted to the observation window.
func StudyCriteria(window model.Period) query.Expr {
	inWindow := query.InPeriod(window)
	return query.And{
		query.Or{
			query.Has{Pred: query.AllOf{
				query.TypeIs(model.TypeDiagnosis),
				query.MustCode("ICPC2", chronicICPC),
				inWindow,
			}},
			query.Has{Pred: query.AllOf{
				query.TypeIs(model.TypeDiagnosis),
				query.MustCode("ICD10", chronicICD),
				inWindow,
			}},
		},
		query.Has{
			Pred: query.AllOf{
				query.TypeIs(model.TypeContact),
				query.SourceIs(model.SourceGP),
				inWindow,
			},
			MinCount: 6,
		},
		query.Or{
			query.Has{Pred: query.AllOf{
				query.TypeIs(model.TypeStay),
				query.SourceIs(model.SourceHospital),
				inWindow,
			}},
			query.Has{
				Pred: query.AllOf{
					query.TypeIs(model.TypeContact),
					query.SourceIs(model.SourceHospital),
					inWindow,
				},
				MinCount: 2,
			},
		},
	}
}

// ChronicDiagnosis returns the chronic-condition predicate alone (both
// systems), reusable for per-condition breakdowns.
func ChronicDiagnosis() query.Expr {
	return query.Or{
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICPC2", chronicICPC)}},
		query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), query.MustCode("ICD10", chronicICD)}},
	}
}
