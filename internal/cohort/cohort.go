// Package cohort implements cohort identification and manipulation: named
// patient sets over a store, set algebra, sampling, and the paper's
// "predefined characteristics" study selection (Section IV: 13,000 of
// 168,000 patients).
package cohort

import (
	"fmt"

	"pastas/internal/engine"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// Cohort is a named set of patients within a store.
type Cohort struct {
	Name string
	st   *store.Store
	bits *store.Bitset
}

// All returns the cohort of every patient in the store.
func All(st *store.Store, name string) *Cohort {
	return &Cohort{Name: name, st: st, bits: st.All()}
}

// FromExpr evaluates a query expression into a cohort through a throwaway
// single-shard planner (the plan rewrites still apply; no cache). Callers
// holding a workbench should prefer FromEngine, which shares the sharded
// engine and its plan cache across queries.
func FromExpr(st *store.Store, name string, e query.Expr) (*Cohort, error) {
	eng := engine.New(st, engine.Options{Shards: 1, Workers: 1, CacheSize: 0})
	return FromEngine(eng, name, e)
}

// FromEngine evaluates a query expression on a shared planner/executor.
// The engine must be store-backed: a coordinator over remote shard
// backends has no local store for the cohort to resolve IDs and
// sub-collections against (use Engine.Execute/IDsOf directly there).
func FromEngine(eng *engine.Engine, name string, e query.Expr) (*Cohort, error) {
	st := eng.Store()
	if st == nil {
		return nil, fmt.Errorf("cohort %q: engine has no local store (coordinator over remote shards); use Engine.Execute and Engine.IDsOf instead", name)
	}
	bits, err := eng.Execute(e)
	if err != nil {
		return nil, fmt.Errorf("cohort %q: %w", name, err)
	}
	return &Cohort{Name: name, st: st, bits: bits}, nil
}

// FromIDs builds a cohort from explicit patient IDs; unknown IDs are
// ignored.
func FromIDs(st *store.Store, name string, ids []model.PatientID) *Cohort {
	bits := st.Empty()
	for _, id := range ids {
		if o, ok := st.Ordinal(id); ok {
			bits.Set(o)
		}
	}
	return &Cohort{Name: name, st: st, bits: bits}
}

// FromBits wraps an existing bitset (not copied).
func FromBits(st *store.Store, name string, bits *store.Bitset) *Cohort {
	return &Cohort{Name: name, st: st, bits: bits}
}

// Count returns the cohort size.
func (c *Cohort) Count() int { return c.bits.Count() }

// Contains reports membership.
func (c *Cohort) Contains(id model.PatientID) bool {
	o, ok := c.st.Ordinal(id)
	return ok && c.bits.Get(o)
}

// IDs returns the member patient IDs in collection order.
func (c *Cohort) IDs() []model.PatientID { return c.st.IDsOf(c.bits) }

// Bits returns a copy of the underlying bitset.
func (c *Cohort) Bits() *store.Bitset { return c.bits.Clone() }

// Store returns the backing store.
func (c *Cohort) Store() *store.Store { return c.st }

// Collection materializes the cohort as a sub-collection — the paper's
// "extraction of sub-collections" handed to the timeline or graph view.
func (c *Cohort) Collection() *model.Collection { return c.st.Subset(c.bits) }

// Intersect returns c ∩ other.
func (c *Cohort) Intersect(other *Cohort) *Cohort {
	return &Cohort{
		Name: c.Name + "∩" + other.Name,
		st:   c.st,
		bits: c.bits.Clone().And(other.bits),
	}
}

// Union returns c ∪ other.
func (c *Cohort) Union(other *Cohort) *Cohort {
	return &Cohort{
		Name: c.Name + "∪" + other.Name,
		st:   c.st,
		bits: c.bits.Clone().Or(other.bits),
	}
}

// Subtract returns c ∖ other.
func (c *Cohort) Subtract(other *Cohort) *Cohort {
	return &Cohort{
		Name: c.Name + "∖" + other.Name,
		st:   c.st,
		bits: c.bits.Clone().AndNot(other.bits),
	}
}

// Complement returns the store's patients not in c.
func (c *Cohort) Complement() *Cohort {
	return &Cohort{Name: "¬" + c.Name, st: c.st, bits: c.bits.Clone().Not()}
}

// Sample returns a deterministic pseudo-random sub-cohort of size at most n
// (seeded; stable across runs). Used to cut a 13k cohort down to a
// reviewable panel.
func (c *Cohort) Sample(n int, seed int64) *Cohort {
	ids := c.IDs()
	if n >= len(ids) {
		return &Cohort{Name: c.Name + "/all", st: c.st, bits: c.bits.Clone()}
	}
	// Fisher-Yates over a local PRNG (splitmix-style) so package math/rand
	// state elsewhere cannot perturb experiment determinism.
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := len(ids) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		ids[i], ids[j] = ids[j], ids[i]
	}
	return FromIDs(c.st, fmt.Sprintf("%s/sample%d", c.Name, n), ids[:n])
}
