package cohort

import (
	"reflect"
	"testing"
	"time"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
	"pastas/internal/synth"
)

func testStore(t testing.TB, patients int) *store.Store {
	t.Helper()
	bundle := synth.Generate(synth.DefaultConfig(patients))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return store.New(col)
}

func TestSetAlgebra(t *testing.T) {
	st := testStore(t, 300)
	everyone := All(st, "all")
	if everyone.Count() != 300 {
		t.Fatalf("all = %d", everyone.Count())
	}

	women, err := FromExpr(st, "women", query.SexIs(model.SexFemale))
	if err != nil {
		t.Fatal(err)
	}
	men := women.Complement()
	if women.Count()+men.Count() != 300 {
		t.Errorf("complement broken: %d + %d", women.Count(), men.Count())
	}
	if got := women.Intersect(men).Count(); got != 0 {
		t.Errorf("women∩men = %d", got)
	}
	if got := women.Union(men).Count(); got != 300 {
		t.Errorf("women∪men = %d", got)
	}
	if got := everyone.Subtract(women).Count(); got != men.Count() {
		t.Errorf("all∖women = %d, want %d", got, men.Count())
	}
	if men.Name == "" || women.Name == "" {
		t.Error("derived cohorts must keep names")
	}
}

func TestFromIDsAndContains(t *testing.T) {
	st := testStore(t, 50)
	c := FromIDs(st, "picked", []model.PatientID{3, 7, 999})
	if c.Count() != 2 {
		t.Errorf("count = %d (unknown id must be ignored)", c.Count())
	}
	if !c.Contains(3) || c.Contains(4) || c.Contains(999) {
		t.Error("Contains broken")
	}
	ids := c.IDs()
	if !reflect.DeepEqual(ids, []model.PatientID{3, 7}) {
		t.Errorf("IDs = %v", ids)
	}
	col := c.Collection()
	if col.Len() != 2 || col.Get(7) == nil {
		t.Error("Collection materialization broken")
	}
}

func TestSampleDeterministic(t *testing.T) {
	st := testStore(t, 200)
	c := All(st, "all")
	s1 := c.Sample(20, 7)
	s2 := c.Sample(20, 7)
	if !reflect.DeepEqual(s1.IDs(), s2.IDs()) {
		t.Error("sampling must be deterministic per seed")
	}
	s3 := c.Sample(20, 8)
	if reflect.DeepEqual(s1.IDs(), s3.IDs()) {
		t.Error("different seeds should differ")
	}
	if s1.Count() != 20 {
		t.Errorf("sample size = %d", s1.Count())
	}
	// Oversampling returns the whole cohort.
	if got := c.Sample(1000, 1).Count(); got != 200 {
		t.Errorf("oversample = %d", got)
	}
	// Samples are subsets.
	for _, id := range s1.IDs() {
		if !c.Contains(id) {
			t.Fatalf("sample leaked id %v", id)
		}
	}
}

func TestStudyCriteriaSelectsChronicallyIll(t *testing.T) {
	st := testStore(t, 2000)
	window := model.Period{
		Start: model.Date(2010, time.January, 1),
		End:   model.Date(2012, time.January, 1),
	}
	crit := StudyCriteria(window)
	c, err := FromExpr(st, "study", crit)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(c.Count()) / 2000
	// Calibration target: 13k/168k ≈ 7.7%; allow generous slack at this
	// small population size, but catch gross miscalibration.
	if frac < 0.03 || frac > 0.15 {
		t.Errorf("study fraction = %.3f, want ≈ 0.077", frac)
	}

	// Every selected member satisfies the raw expression too
	// (index/scan agreement at the cohort level).
	scan := query.Select(st.Collection(), crit)
	if !reflect.DeepEqual(c.IDs(), scan) {
		t.Errorf("indexed cohort differs from scan: %d vs %d", c.Count(), len(scan))
	}

	// Members must actually be chronically ill with ≥4 GP contacts.
	chronic := ChronicDiagnosis()
	for _, id := range c.IDs()[:min(20, c.Count())] {
		h := st.Collection().Get(id)
		if !chronic.Eval(h) {
			t.Fatalf("selected %v without chronic diagnosis", id)
		}
		gp := h.Count(func(e *model.Entry) bool {
			return e.Type == model.TypeContact && e.Source == model.SourceGP && window.Contains(e.Start)
		})
		if gp < 6 {
			t.Fatalf("selected %v with %d GP contacts", id, gp)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
