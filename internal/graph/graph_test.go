package graph

import (
	"math/rand"
	"testing"

	"pastas/internal/seqalign"
)

// diabetesSeqs mimics Fig. 2a: histories sharing a T90 diagnosis with
// common paths before and after it.
func diabetesSeqs() [][]string {
	return [][]string{
		{"A04", "T90", "K86", "R74"},
		{"A04", "T90", "K86", "L03"},
		{"D01", "T90", "K86", "R74"},
		{"A04", "T90", "F92"},
	}
}

func TestFromSequencesUnmerged(t *testing.T) {
	seqs := diabetesSeqs()
	g := FromSequences(seqs)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != g.TotalPositions() {
		t.Errorf("unmerged graph must have one node per position: %d vs %d",
			len(g.Nodes), g.TotalPositions())
	}
	if g.Compression() != 1 {
		t.Errorf("compression = %f", g.Compression())
	}
	// Chain edges only, all weight 1.
	if g.MaxEdgeWeight() != 1 {
		t.Errorf("max weight = %d", g.MaxEdgeWeight())
	}
	wantEdges := 0
	for _, s := range seqs {
		wantEdges += len(s) - 1
	}
	if len(g.Edges) != wantEdges {
		t.Errorf("edges = %d, want %d", len(g.Edges), wantEdges)
	}
}

func TestSerialMergeAnchor(t *testing.T) {
	g, err := SerialMerge(diabetesSeqs(), SerialOptions{Pattern: "T90", Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One anchor node holding all four T90 occurrences.
	var anchor *Node
	for _, n := range g.Nodes {
		if n.Anchor {
			if anchor != nil {
				t.Fatal("multiple anchors with MaxOccurrences=1")
			}
			anchor = n
		}
	}
	if anchor == nil || anchor.Histories() != 4 {
		t.Fatalf("anchor = %+v", anchor)
	}
}

func TestSerialMergeNeighbourRecursion(t *testing.T) {
	g, err := SerialMerge(diabetesSeqs(), SerialOptions{Pattern: "T90", Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// K86 follows T90 in three histories: must merge.
	if got := g.LargestMerge("K86"); got != 3 {
		t.Errorf("K86 merge = %d, want 3", got)
	}
	// A04 precedes T90 in three histories: must merge.
	if got := g.LargestMerge("A04"); got != 3 {
		t.Errorf("A04 merge = %d, want 3", got)
	}
	// R74 follows K86 in two of those three: second-level recursion.
	if got := g.LargestMerge("R74"); got != 2 {
		t.Errorf("R74 merge = %d, want 2", got)
	}
	// Edge weights scale with histories on the T90→K86 transition.
	var t90ToK86 int
	for _, e := range g.Edges {
		if g.Nodes[e.From].Anchor && g.Nodes[e.To].Label == "K86" {
			t90ToK86 = e.Weight
		}
	}
	if t90ToK86 != 3 {
		t.Errorf("anchor→K86 weight = %d, want 3", t90ToK86)
	}
	// Depth 0 must not merge neighbours.
	g0, _ := SerialMerge(diabetesSeqs(), SerialOptions{Pattern: "T90", Depth: 0})
	if g0.LargestMerge("K86") != 1 {
		t.Error("depth 0 merged neighbours")
	}
}

func TestSerialMergeMultipleOccurrences(t *testing.T) {
	seqs := [][]string{
		{"T90", "A04", "T90"},
		{"T90", "L03", "T90"},
	}
	g, err := SerialMerge(seqs, SerialOptions{Pattern: "T90", MaxOccurrences: 2})
	if err != nil {
		t.Fatal(err)
	}
	anchors := 0
	for _, n := range g.Nodes {
		if n.Anchor {
			anchors++
			if n.Histories() != 2 {
				t.Errorf("anchor %q holds %d histories", n.Label, n.Histories())
			}
		}
	}
	if anchors != 2 {
		t.Errorf("anchors = %d, want 2 (serial rounds)", anchors)
	}
}

func TestSerialMergeBadPattern(t *testing.T) {
	if _, err := SerialMerge(diabetesSeqs(), SerialOptions{Pattern: "("}); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestSerialMergeNoiseFragility(t *testing.T) {
	// The documented weakness: one inserted code before the anchor breaks
	// the predecessor merge (A04 is no longer adjacent to T90 in the
	// noisy history).
	clean := [][]string{
		{"A04", "T90", "K86"},
		{"A04", "T90", "K86"},
		{"A04", "T90", "K86"},
	}
	noisy := [][]string{
		{"A04", "T90", "K86"},
		{"A04", "R74", "T90", "K86"}, // R74 inserted between A04 and T90
		{"A04", "T90", "K86"},
	}
	gClean, _ := SerialMerge(clean, SerialOptions{Pattern: "T90", Depth: 1})
	gNoisy, _ := SerialMerge(noisy, SerialOptions{Pattern: "T90", Depth: 1})
	if gClean.LargestMerge("A04") != 3 {
		t.Fatalf("clean A04 merge = %d", gClean.LargestMerge("A04"))
	}
	if gNoisy.LargestMerge("A04") != 2 {
		t.Errorf("noisy A04 merge = %d: serial merge should have broken", gNoisy.LargestMerge("A04"))
	}

	// MSA merging tolerates the same insertion.
	gMSA := MSAMerge(noisy, seqalign.UnitCost{})
	if err := gMSA.Validate(); err != nil {
		t.Fatal(err)
	}
	if gMSA.LargestMerge("A04") != 3 {
		t.Errorf("MSA A04 merge = %d, want 3", gMSA.LargestMerge("A04"))
	}
	if gMSA.LargestMerge("T90") != 3 {
		t.Errorf("MSA T90 merge = %d, want 3", gMSA.LargestMerge("T90"))
	}
}

func TestMSAMergeCompression(t *testing.T) {
	seqs := diabetesSeqs()
	g := MSAMerge(seqs, seqalign.ChapterCost{System: "ICPC2"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Compression() <= 1 {
		t.Errorf("MSA merge achieved no compression: %f", g.Compression())
	}
	if g.LargestMerge("T90") != 4 {
		t.Errorf("T90 merge = %d", g.LargestMerge("T90"))
	}
}

func TestMergeOrderIndependenceMSA(t *testing.T) {
	seqs := diabetesSeqs()
	rev := make([][]string, len(seqs))
	for i := range seqs {
		rev[i] = seqs[len(seqs)-1-i]
	}
	a := MSAMerge(seqs, seqalign.UnitCost{})
	b := MSAMerge(rev, seqalign.UnitCost{})
	// Structural invariants (node/edge counts and largest merges) must
	// not depend on input order.
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Errorf("MSA merge order-dependent: %d/%d nodes, %d/%d edges",
			len(a.Nodes), len(b.Nodes), len(a.Edges), len(b.Edges))
	}
	for _, label := range []string{"T90", "K86", "A04"} {
		if a.LargestMerge(label) != b.LargestMerge(label) {
			t.Errorf("order-dependent merge for %s", label)
		}
	}
}

func TestLayoutAndCrossings(t *testing.T) {
	g, err := SerialMerge(diabetesSeqs(), SerialOptions{Pattern: "T90", Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := Layered(g)
	if l.Cols < 3 {
		t.Errorf("layout cols = %d", l.Cols)
	}
	// Every node has coordinates.
	for _, n := range g.Nodes {
		if _, ok := l.X[n.ID]; !ok {
			t.Fatalf("node %d missing X", n.ID)
		}
		if _, ok := l.Y[n.ID]; !ok {
			t.Fatalf("node %d missing Y", n.ID)
		}
	}
	if c := Crossings(g, l); c < 0 {
		t.Errorf("crossings = %d", c)
	}
}

func TestCrowdingMetricsGrow(t *testing.T) {
	// Fig. 2b: hundreds of histories make the full graph unreadable.
	// Crossings and node counts must grow sharply with population.
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"A04", "T90", "K86", "R74", "L03", "P76", "D01", "U71"}
	build := func(n int) *Graph {
		seqs := make([][]string, n)
		for i := range seqs {
			l := 3 + rng.Intn(5)
			seqs[i] = make([]string, l)
			for j := range seqs[i] {
				seqs[i][j] = vocab[rng.Intn(len(vocab))]
			}
			// Plant the anchor so the merge creates shared hub nodes,
			// as in the paper's zoomed-out diabetes graph.
			seqs[i][1+rng.Intn(l-1)] = "T90"
		}
		g, err := SerialMerge(seqs, SerialOptions{Pattern: "T90", Depth: 2})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	small := build(10)
	large := build(100)
	ls, ll := Layered(small), Layered(large)
	if Crossings(large, ll) <= Crossings(small, ls) {
		t.Error("crossings did not grow with population")
	}
	if ll.MaxPerCol <= ls.MaxPerCol {
		t.Error("column crowding did not grow")
	}
}

func TestNodeHistories(t *testing.T) {
	n := &Node{Members: []Occurrence{{0, 1}, {0, 3}, {1, 2}}}
	if n.Histories() != 2 {
		t.Errorf("Histories = %d", n.Histories())
	}
}

func TestDensityEdgeCases(t *testing.T) {
	g := FromSequences(nil)
	if g.Density() != 0 || g.Compression() != 0 {
		t.Error("empty graph metrics broken")
	}
	g1 := FromSequences([][]string{{"A04"}})
	if g1.Density() != 0 {
		t.Error("single node density broken")
	}
}
