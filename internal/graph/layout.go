package graph

import "sort"

// Layered layout for the NSEPter views: node x = average sequence position
// of its members (so time flows left to right), nodes at the same rounded
// layer are stacked vertically with a barycenter pass to reduce crossings.
// The crossing count is the readability metric behind Fig. 2b's "virtually
// unreadable" claim.

// Layout holds node coordinates in abstract units (renderers scale them).
type Layout struct {
	X, Y          map[int]float64
	Cols          int // number of layers
	MaxPerCol     int
	layerOf       map[int]int
	orderPerLayer map[int][]int
}

// Layered computes the layout.
func Layered(g *Graph) *Layout {
	l := &Layout{
		X: make(map[int]float64, len(g.Nodes)),
		Y: make(map[int]float64, len(g.Nodes)),

		layerOf:       make(map[int]int, len(g.Nodes)),
		orderPerLayer: make(map[int][]int),
	}

	// Layer = rounded mean member position.
	maxLayer := 0
	for _, n := range g.Nodes {
		sum := 0
		for _, m := range n.Members {
			sum += m.Pos
		}
		layer := 0
		if len(n.Members) > 0 {
			layer = int(float64(sum)/float64(len(n.Members)) + 0.5)
		}
		l.layerOf[n.ID] = layer
		l.orderPerLayer[layer] = append(l.orderPerLayer[layer], n.ID)
		if layer > maxLayer {
			maxLayer = layer
		}
	}
	l.Cols = maxLayer + 1

	// Initial order: node ID (deterministic); then one barycenter pass
	// left-to-right using predecessors' y, and one right-to-left.
	for layer := 0; layer <= maxLayer; layer++ {
		sort.Ints(l.orderPerLayer[layer])
	}
	assignY := func(layer int) {
		ids := l.orderPerLayer[layer]
		for i, id := range ids {
			l.Y[id] = float64(i)
		}
		if len(ids) > l.MaxPerCol {
			l.MaxPerCol = len(ids)
		}
	}
	for layer := 0; layer <= maxLayer; layer++ {
		assignY(layer)
	}

	preds := make(map[int][]int)
	succs := make(map[int][]int)
	for _, e := range g.Edges {
		preds[e.To] = append(preds[e.To], e.From)
		succs[e.From] = append(succs[e.From], e.To)
	}
	barycenter := func(layer int, neighbours map[int][]int) {
		ids := l.orderPerLayer[layer]
		type ranked struct {
			id int
			b  float64
		}
		rs := make([]ranked, len(ids))
		for i, id := range ids {
			ns := neighbours[id]
			if len(ns) == 0 {
				rs[i] = ranked{id, l.Y[id]}
				continue
			}
			sum := 0.0
			for _, n := range ns {
				sum += l.Y[n]
			}
			rs[i] = ranked{id, sum / float64(len(ns))}
		}
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].b < rs[j].b })
		for i, r := range rs {
			ids[i] = r.id
			l.Y[r.id] = float64(i)
		}
	}
	for layer := 1; layer <= maxLayer; layer++ {
		barycenter(layer, preds)
	}
	for layer := maxLayer - 1; layer >= 0; layer-- {
		barycenter(layer, succs)
	}

	for id, layer := range l.layerOf {
		l.X[id] = float64(layer)
	}
	return l
}

// Crossings counts pairwise straight-line edge crossings between edges
// spanning the same pair of adjacent layers — the standard layered-graph
// crossing number.
func Crossings(g *Graph, l *Layout) int {
	type span struct {
		from, to int
		y1, y2   float64
	}
	byGap := make(map[int][]span)
	for _, e := range g.Edges {
		lf, lt := l.layerOf[e.From], l.layerOf[e.To]
		if lt == lf+1 {
			byGap[lf] = append(byGap[lf], span{e.From, e.To, l.Y[e.From], l.Y[e.To]})
		}
	}
	total := 0
	for _, spans := range byGap {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if (a.y1-b.y1)*(a.y2-b.y2) < 0 {
					total++
				}
			}
		}
	}
	return total
}
