package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pastas/internal/seqalign"
)

// randomSeqs builds a deterministic random sequence set from a seed.
func randomSeqs(seed int64, maxHist, maxLen int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"A04", "T90", "K86", "R74", "L03", "P76", "D01"}
	n := 1 + rng.Intn(maxHist)
	seqs := make([][]string, n)
	for i := range seqs {
		l := 1 + rng.Intn(maxLen)
		seqs[i] = make([]string, l)
		for j := range seqs[i] {
			seqs[i][j] = vocab[rng.Intn(len(vocab))]
		}
	}
	return seqs
}

// Property: every merge algorithm yields a structurally valid graph where
// each occurrence belongs to exactly one node and edge weights sum to the
// number of transitions.
func TestMergedGraphInvariants(t *testing.T) {
	check := func(g *Graph) bool {
		if g.Validate() != nil {
			return false
		}
		// Node membership partitions all positions.
		total := 0
		for _, n := range g.Nodes {
			total += len(n.Members)
		}
		if total != g.TotalPositions() {
			return false
		}
		// Edge weights sum to the transition count.
		trans := 0
		for _, s := range g.Seqs() {
			if len(s) > 0 {
				trans += len(s) - 1
			}
		}
		wsum := 0
		for _, e := range g.Edges {
			wsum += e.Weight
		}
		return wsum == trans
	}

	f := func(seed int64) bool {
		seqs := randomSeqs(seed, 6, 8)
		raw := FromSequences(seqs)
		serial, err := SerialMerge(seqs, SerialOptions{Pattern: "T90", Depth: 2})
		if err != nil {
			return false
		}
		msa := MSAMerge(seqs, seqalign.UnitCost{})
		return check(raw) && check(serial) && check(msa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: merging never increases node count beyond the raw graph, and
// compression is monotone ≥ 1.
func TestMergeOnlyShrinks(t *testing.T) {
	f := func(seed int64) bool {
		seqs := randomSeqs(seed, 6, 8)
		raw := FromSequences(seqs)
		msa := MSAMerge(seqs, seqalign.UnitCost{})
		return len(msa.Nodes) <= len(raw.Nodes) && msa.Compression() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: layouts assign coordinates to every node and layer counts never
// exceed the node count.
func TestLayoutTotality(t *testing.T) {
	f := func(seed int64) bool {
		seqs := randomSeqs(seed, 6, 8)
		g, err := SerialMerge(seqs, SerialOptions{Pattern: ".*", Depth: 1})
		if err != nil {
			return false
		}
		l := Layered(g)
		if len(l.X) != len(g.Nodes) || len(l.Y) != len(g.Nodes) {
			return false
		}
		return l.MaxPerCol <= len(g.Nodes) && l.Cols >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
