// Package graph implements NSEPter, the paper's predecessor system for
// portraying collections of diagnosis histories as directed graphs
// (Fig. 2): per-history node chains, regex-driven serial merging with
// recursive neighbour expansion, edge weights scaled by the number of
// histories exhibiting a transition — plus the alignment-based merging the
// second project introduced to fix the serial algorithm's noise fragility,
// and the readability metrics that quantify Fig. 2b's crowding.
package graph

import (
	"fmt"
	"sort"
)

// Occurrence identifies one code instance: position Pos in history Hist.
type Occurrence struct {
	Hist, Pos int
}

// Node is a (possibly merged) graph node: all occurrences drawn as one.
type Node struct {
	ID      int
	Label   string
	Members []Occurrence
	// Anchor marks nodes created by the merge seed (the regex hit),
	// distinguishing them in rendering.
	Anchor bool
}

// Histories returns how many distinct histories pass through the node.
func (n *Node) Histories() int {
	seen := make(map[int]bool, len(n.Members))
	for _, m := range n.Members {
		seen[m.Hist] = true
	}
	return len(seen)
}

// Edge is a weighted transition: Weight histories move directly from node
// From to node To.
type Edge struct {
	From, To int
	Weight   int
}

// Graph is a merged view over diagnosis-code sequences.
type Graph struct {
	Nodes []*Node
	Edges []*Edge

	seqs   [][]string
	nodeOf map[Occurrence]int
}

// Seqs returns the underlying sequences.
func (g *Graph) Seqs() [][]string { return g.seqs }

// NodeOf returns the node ID an occurrence was merged into.
func (g *Graph) NodeOf(o Occurrence) (int, bool) {
	id, ok := g.nodeOf[o]
	return id, ok
}

// newGraph prepares an empty graph over sequences.
func newGraph(seqs [][]string) *Graph {
	return &Graph{seqs: seqs, nodeOf: make(map[Occurrence]int)}
}

// addNode creates a node and assigns its members.
func (g *Graph) addNode(label string, anchor bool, members []Occurrence) *Node {
	n := &Node{ID: len(g.Nodes), Label: label, Members: members, Anchor: anchor}
	g.Nodes = append(g.Nodes, n)
	for _, m := range members {
		g.nodeOf[m] = n.ID
	}
	return n
}

// finish assigns singleton nodes to unmerged positions and builds edges.
func (g *Graph) finish() {
	// Singletons in deterministic order.
	for h, seq := range g.seqs {
		for p := range seq {
			o := Occurrence{h, p}
			if _, done := g.nodeOf[o]; !done {
				g.addNode(seq[p], false, []Occurrence{o})
			}
		}
	}
	// Edges: consecutive positions within each history.
	weights := make(map[[2]int]int)
	for h, seq := range g.seqs {
		for p := 0; p+1 < len(seq); p++ {
			from := g.nodeOf[Occurrence{h, p}]
			to := g.nodeOf[Occurrence{h, p + 1}]
			weights[[2]int{from, to}]++
		}
	}
	keys := make([][2]int, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		g.Edges = append(g.Edges, &Edge{From: k[0], To: k[1], Weight: weights[k]})
	}
}

// FromSequences builds the unmerged graph: one node per code occurrence,
// chains per history — NSEPter's raw view ("each history was laid out on a
// horizontal line").
func FromSequences(seqs [][]string) *Graph {
	g := newGraph(seqs)
	g.finish()
	return g
}

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	for h, seq := range g.seqs {
		for p := range seq {
			id, ok := g.nodeOf[Occurrence{h, p}]
			if !ok {
				return fmt.Errorf("graph: occurrence (%d,%d) unassigned", h, p)
			}
			if g.Nodes[id].Label != seq[p] && !g.Nodes[id].Anchor {
				return fmt.Errorf("graph: occurrence (%d,%d) code %q in node %q", h, p, seq[p], g.Nodes[id].Label)
			}
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("graph: edge %v out of range", e)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("graph: edge %v with non-positive weight", e)
		}
	}
	return nil
}

// --- metrics (the Fig. 2b crowding numbers) ---------------------------------

// TotalPositions counts code occurrences across all histories.
func (g *Graph) TotalPositions() int {
	n := 0
	for _, s := range g.seqs {
		n += len(s)
	}
	return n
}

// Compression is occurrences per node; 1.0 means nothing merged.
func (g *Graph) Compression() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	return float64(g.TotalPositions()) / float64(len(g.Nodes))
}

// MaxEdgeWeight returns the heaviest transition.
func (g *Graph) MaxEdgeWeight() int {
	max := 0
	for _, e := range g.Edges {
		if e.Weight > max {
			max = e.Weight
		}
	}
	return max
}

// Density is edges over possible directed edges.
func (g *Graph) Density() float64 {
	n := len(g.Nodes)
	if n <= 1 {
		return 0
	}
	return float64(len(g.Edges)) / float64(n*(n-1))
}

// LargestMerge returns the maximum number of distinct histories merged into
// any node with the given label — the pathway-recovery measure the noise
// ablation (A1) reports.
func (g *Graph) LargestMerge(label string) int {
	best := 0
	for _, n := range g.Nodes {
		if n.Label == label {
			if h := n.Histories(); h > best {
				best = h
			}
		}
	}
	return best
}
