package graph

import (
	"fmt"
	"sort"

	"pastas/internal/seqalign"
	"pastas/internal/terminology"
)

// SerialOptions configures the paper's original merging algorithm.
type SerialOptions struct {
	// Pattern is the regular expression over codes whose matches seed the
	// merge ("the users specified a regular expression over the ICPC
	// codes, and the application merged nodes with codes matching the
	// given expression into one").
	Pattern string
	// MaxOccurrences bounds how many serial rounds run: the first match
	// of each history merges with the first of all others, the second
	// with the second, and so on. 0 means 1.
	MaxOccurrences int
	// Depth is how far the recursive neighbour merging extends from each
	// seed node in both directions. 0 disables neighbour merging.
	Depth int
	// MinShared is the minimum number of histories that must share a
	// neighbouring code for it to merge (default 2).
	MinShared int
}

// SerialMerge runs NSEPter's serial first-occurrence merging over the
// sequences. Its documented weakness is intentional behaviour here: "It
// would miss an opportunity to merge nodes if two histories differed in one
// single position" — the noise ablation quantifies exactly that against
// MSAMerge.
func SerialMerge(seqs [][]string, opt SerialOptions) (*Graph, error) {
	re, err := terminology.CompileCodePattern(opt.Pattern)
	if err != nil {
		return nil, fmt.Errorf("graph: serial merge: %w", err)
	}
	maxOcc := opt.MaxOccurrences
	if maxOcc <= 0 {
		maxOcc = 1
	}
	minShared := opt.MinShared
	if minShared <= 0 {
		minShared = 2
	}

	g := newGraph(seqs)

	// Per-history match positions, in order.
	matches := make([][]int, len(seqs))
	for h, seq := range seqs {
		for p, code := range seq {
			if re.MatchString(code) {
				matches[h] = append(matches[h], p)
			}
		}
	}

	for k := 0; k < maxOcc; k++ {
		var members []Occurrence
		for h := range seqs {
			if k < len(matches[h]) {
				members = append(members, Occurrence{h, matches[h][k]})
			}
		}
		if len(members) == 0 {
			break
		}
		seed := g.addNode(majorityCode(seqs, members), true, members)
		if opt.Depth > 0 {
			g.expandNeighbours(seed, -1, opt.Depth, minShared)
			g.expandNeighbours(seed, +1, opt.Depth, minShared)
		}
	}

	g.finish()
	return g, nil
}

// majorityCode labels a merged node with its most frequent member code
// (ties broken lexicographically). A T90-seeded anchor is labeled "T90",
// matching Fig. 2a.
func majorityCode(seqs [][]string, members []Occurrence) string {
	counts := make(map[string]int)
	for _, m := range members {
		counts[seqs[m.Hist][m.Pos]]++
	}
	best, bestN := "", 0
	for code, n := range counts {
		if n > bestN || (n == bestN && (best == "" || code < best)) {
			best, bestN = code, n
		}
	}
	return best
}

// expandNeighbours implements the recursive neighbour merging: from each
// merged node, look at the adjacent position (dir -1 = predecessors, +1 =
// successors) of every member history, group unassigned neighbours by
// code, merge groups shared by at least minShared histories, and recurse —
// "in a hope that the histories would exhibit similar patterns before or
// after an important event".
func (g *Graph) expandNeighbours(from *Node, dir, depth, minShared int) {
	if depth <= 0 {
		return
	}
	groups := make(map[string][]Occurrence)
	for _, m := range from.Members {
		p := m.Pos + dir
		if p < 0 || p >= len(g.seqs[m.Hist]) {
			continue
		}
		o := Occurrence{m.Hist, p}
		if _, taken := g.nodeOf[o]; taken {
			continue
		}
		groups[g.seqs[m.Hist][p]] = append(groups[g.seqs[m.Hist][p]], o)
	}

	codes := make([]string, 0, len(groups))
	for code := range groups {
		codes = append(codes, code)
	}
	sort.Strings(codes)

	for _, code := range codes {
		members := groups[code]
		// Count distinct histories (one history can in principle hit the
		// same code twice around two different seed members).
		hist := make(map[int]bool)
		for _, m := range members {
			hist[m.Hist] = true
		}
		if len(hist) < minShared {
			continue
		}
		n := g.addNode(code, false, members)
		g.expandNeighbours(n, dir, depth-1, minShared)
	}
}

// MSAMerge is the alignment-based merging from the second project: align
// all sequences with a progressive multiple alignment, then merge every
// occurrence sharing (column, code). Insertions consume their own columns,
// so one noisy extra code shifts nothing — the noise resilience the serial
// algorithm lacks. Order-independence also follows: the center-star
// alignment does not depend on input order beyond deterministic
// tie-breaking.
func MSAMerge(seqs [][]string, cost seqalign.Cost) *Graph {
	g := newGraph(seqs)
	m := seqalign.Align(seqs, cost)

	type key struct {
		col  int
		code string
	}
	groups := make(map[key][]Occurrence)
	for h, seq := range seqs {
		for p, code := range seq {
			col := m.ColumnOf(h, p)
			groups[key{col, code}] = append(groups[key{col, code}], Occurrence{h, p})
		}
	}

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].col != keys[j].col {
			return keys[i].col < keys[j].col
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		members := groups[k]
		if len(members) < 2 {
			continue // singletons are added by finish()
		}
		g.addNode(k.code, false, members)
	}

	g.finish()
	return g
}
