package ontology

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Turtle serialization: the OWL-facing face of the formalizations. The
// paper "represents and reasons with patient events in different
// OWL-formalizations"; exporting the vocabulary and classified individuals
// as Turtle makes the formalization inspectable by standard tools
// (Protégé, rapper) and is the interchange format the integration
// perspective would publish.

// prefixes used in exports.
var turtlePrefixes = []string{
	"@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .",
	"@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .",
	"@prefix owl: <http://www.w3.org/2002/07/owl#> .",
	"@prefix int: <http://pastas.example/integration#> .",
	"@prefix viz: <http://pastas.example/presentation#> .",
}

// turtleIRI renders our compact IRIs ("int:GPClaim") as CURIEs; anything
// without a known prefix becomes a quoted literal-safe local name.
func turtleIRI(iri IRI) string {
	s := string(iri)
	if strings.HasPrefix(s, "int:") || strings.HasPrefix(s, "viz:") {
		// Slashes are not valid in CURIE local parts; flatten them.
		return strings.ReplaceAll(s, "/", "_")
	}
	return "<" + s + ">"
}

func turtleLiteral(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `"` + r.Replace(v) + `"`
}

// WriteTurtle serializes the ontology vocabulary: classes with subclass
// axioms and properties with domain/range.
func (o *Ontology) WriteTurtle(w io.Writer) error {
	var b strings.Builder
	for _, p := range turtlePrefixes {
		b.WriteString(p + "\n")
	}
	b.WriteString("\n")

	for _, iri := range o.Classes() {
		c := o.Class(iri)
		fmt.Fprintf(&b, "%s a owl:Class", turtleIRI(iri))
		if c.Label != "" {
			fmt.Fprintf(&b, " ;\n    rdfs:label %s", turtleLiteral(c.Label))
		}
		parents := append([]IRI(nil), c.Parents...)
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		for _, p := range parents {
			fmt.Fprintf(&b, " ;\n    rdfs:subClassOf %s", turtleIRI(p))
		}
		b.WriteString(" .\n")
	}
	b.WriteString("\n")

	props := make([]IRI, 0, len(o.properties))
	for iri := range o.properties {
		props = append(props, iri)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	for _, iri := range props {
		p := o.properties[iri]
		fmt.Fprintf(&b, "%s a rdf:Property", turtleIRI(iri))
		if p.Label != "" {
			fmt.Fprintf(&b, " ;\n    rdfs:label %s", turtleLiteral(p.Label))
		}
		if p.Domain != "" {
			fmt.Fprintf(&b, " ;\n    rdfs:domain %s", turtleIRI(p.Domain))
		}
		if p.Range != "" {
			fmt.Fprintf(&b, " ;\n    rdfs:range %s", turtleIRI(p.Range))
		}
		b.WriteString(" .\n")
	}

	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("ontology: write turtle: %w", err)
	}
	return nil
}

// WriteIndividualsTurtle serializes individuals with their asserted types
// and property values (object properties referencing known IRIs stay IRIs,
// everything else becomes a literal).
func (o *Ontology) WriteIndividualsTurtle(w io.Writer, individuals []*Individual) error {
	var b strings.Builder
	for _, p := range turtlePrefixes {
		b.WriteString(p + "\n")
	}
	b.WriteString("\n")

	for _, ind := range individuals {
		if err := o.CheckIndividual(ind); err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s", turtleIRI(ind.IRI))
		types := append([]IRI(nil), ind.Types...)
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for i, t := range types {
			if i == 0 {
				fmt.Fprintf(&b, " a %s", turtleIRI(t))
			} else {
				fmt.Fprintf(&b, ", %s", turtleIRI(t))
			}
		}
		props := make([]IRI, 0, len(ind.Values))
		for p := range ind.Values {
			props = append(props, p)
		}
		sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
		for _, p := range props {
			for _, v := range ind.Values[p] {
				fmt.Fprintf(&b, " ;\n    %s %s", turtleIRI(p), turtleLiteral(v))
			}
		}
		b.WriteString(" .\n")
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("ontology: write individuals: %w", err)
	}
	return nil
}
