package ontology

import (
	"fmt"

	"pastas/internal/model"
)

// This file instantiates the paper's two perspectives and the mapping
// between them. The integration ontology describes *what was recorded where*
// (registry record classes); the presentation ontology describes *what is
// drawn* (visual element classes). The perspective map carries events from
// the first into the second, which is how one event model serves both
// "integration and alignment" and "visual presentation".

// Integration returns the integration-perspective ontology.
func Integration() *Ontology { return integrationOnt }

// Presentation returns the presentation-perspective ontology.
func Presentation() *Ontology { return presentationOnt }

var integrationOnt = MustNew("integration",
	[]Class{
		{IRI: "int:Event", Label: "Patient event"},
		{IRI: "int:Record", Label: "Registry record", Parents: []IRI{"int:Event"}},
		// Claims-based sources (reimbursement).
		{IRI: "int:ClaimRecord", Label: "Reimbursement claim", Parents: []IRI{"int:Record"}},
		{IRI: "int:GPClaim", Label: "General practitioner claim", Parents: []IRI{"int:ClaimRecord"}},
		{IRI: "int:EmergencyGPClaim", Label: "Emergency primary care claim", Parents: []IRI{"int:GPClaim"}},
		{IRI: "int:SpecialistClaim", Label: "Private specialist claim", Parents: []IRI{"int:ClaimRecord"}},
		{IRI: "int:PhysioClaim", Label: "Physiotherapist claim", Parents: []IRI{"int:ClaimRecord"}},
		// Episode-based sources (hospital).
		{IRI: "int:EpisodeRecord", Label: "Hospital episode", Parents: []IRI{"int:Record"}},
		{IRI: "int:InpatientEpisode", Label: "Inpatient stay", Parents: []IRI{"int:EpisodeRecord"}},
		{IRI: "int:OutpatientVisit", Label: "Outpatient visit", Parents: []IRI{"int:EpisodeRecord"}},
		{IRI: "int:DayTreatment", Label: "Day treatment", Parents: []IRI{"int:EpisodeRecord"}},
		// Municipal services.
		{IRI: "int:ServiceRecord", Label: "Municipal service decision", Parents: []IRI{"int:Record"}},
		{IRI: "int:HomeCare", Label: "Home care service", Parents: []IRI{"int:ServiceRecord"}},
		{IRI: "int:NursingHome", Label: "Nursing home stay", Parents: []IRI{"int:ServiceRecord"}},
		// Clinical statements carried by records.
		{IRI: "int:ClinicalStatement", Label: "Clinical statement", Parents: []IRI{"int:Event"}},
		{IRI: "int:Diagnosis", Label: "Coded diagnosis", Parents: []IRI{"int:ClinicalStatement"}},
		{IRI: "int:PrimaryCareDiagnosis", Label: "ICPC-2 diagnosis", Parents: []IRI{"int:Diagnosis"}},
		{IRI: "int:SpecialistDiagnosis", Label: "ICD-10 diagnosis", Parents: []IRI{"int:Diagnosis"}},
		{IRI: "int:Measurement", Label: "Clinical measurement", Parents: []IRI{"int:ClinicalStatement"}},
		{IRI: "int:BloodPressure", Label: "Blood pressure measurement", Parents: []IRI{"int:Measurement"}},
		{IRI: "int:Prescription", Label: "Medication prescription", Parents: []IRI{"int:ClinicalStatement"}},
	},
	[]Property{
		{IRI: "int:hasPatient", Label: "has patient", Domain: "int:Event"},
		{IRI: "int:hasCode", Label: "has clinical code", Domain: "int:ClinicalStatement"},
		{IRI: "int:startsAt", Label: "starts at", Domain: "int:Event"},
		{IRI: "int:endsAt", Label: "ends at", Domain: "int:Event"},
		{IRI: "int:derivedFrom", Label: "derived from record", Domain: "int:ClinicalStatement", Range: "int:Record"},
		{IRI: "int:reportedBy", Label: "reported by source", Domain: "int:Event"},
	},
)

var presentationOnt = MustNew("presentation",
	[]Class{
		{IRI: "viz:VisualElement", Label: "Visual element"},
		// Point marks drawn on the history bar (Fig. 1).
		{IRI: "viz:Mark", Label: "Point mark", Parents: []IRI{"viz:VisualElement"}},
		{IRI: "viz:DiagnosisRect", Label: "Diagnosis rectangle", Parents: []IRI{"viz:Mark"}},
		{IRI: "viz:MeasurementArrow", Label: "Measurement arrow", Parents: []IRI{"viz:Mark"}},
		{IRI: "viz:ContactTick", Label: "Contact tick", Parents: []IRI{"viz:Mark"}},
		// Interval concepts shown as background colorings (Fig. 1).
		{IRI: "viz:Band", Label: "Interval band", Parents: []IRI{"viz:VisualElement"}},
		{IRI: "viz:MedicationBand", Label: "Medication class band", Parents: []IRI{"viz:Band"}},
		{IRI: "viz:StayBand", Label: "Admission band", Parents: []IRI{"viz:Band"}},
		{IRI: "viz:ServiceBand", Label: "Municipal service band", Parents: []IRI{"viz:Band"}},
		// The history bar itself.
		{IRI: "viz:HistoryBar", Label: "Patient history bar", Parents: []IRI{"viz:VisualElement"}},
	},
	[]Property{
		{IRI: "viz:represents", Label: "represents entry", Domain: "viz:VisualElement"},
		{IRI: "viz:hasColor", Label: "has color", Domain: "viz:VisualElement"},
		{IRI: "viz:hasLayer", Label: "has drawing layer", Domain: "viz:VisualElement"},
		{IRI: "viz:hasTooltip", Label: "has details-on-demand text", Domain: "viz:VisualElement"},
	},
)

// perspectiveMap sends leaf integration classes to presentation classes.
var perspectiveMap = map[IRI]IRI{
	"int:GPClaim":              "viz:ContactTick",
	"int:EmergencyGPClaim":     "viz:ContactTick",
	"int:SpecialistClaim":      "viz:ContactTick",
	"int:PhysioClaim":          "viz:ContactTick",
	"int:InpatientEpisode":     "viz:StayBand",
	"int:DayTreatment":         "viz:StayBand",
	"int:OutpatientVisit":      "viz:ContactTick",
	"int:HomeCare":             "viz:ServiceBand",
	"int:NursingHome":          "viz:ServiceBand",
	"int:PrimaryCareDiagnosis": "viz:DiagnosisRect",
	"int:SpecialistDiagnosis":  "viz:DiagnosisRect",
	"int:Diagnosis":            "viz:DiagnosisRect",
	"int:BloodPressure":        "viz:MeasurementArrow",
	"int:Measurement":          "viz:MeasurementArrow",
	"int:Prescription":         "viz:MedicationBand",
}

// PresentationClass maps an integration class to the presentation class
// that draws it, walking up the integration hierarchy until a mapped class
// is found. ok is false if nothing in the chain is mapped.
func PresentationClass(integrationClass IRI) (IRI, bool) {
	o := Integration()
	cur := integrationClass
	for {
		if viz, ok := perspectiveMap[cur]; ok {
			return viz, true
		}
		c := o.Class(cur)
		if c == nil || len(c.Parents) == 0 {
			return "", false
		}
		cur = c.Parents[0]
	}
}

// ClassifyEntry assigns the integration class for a model entry, from its
// type, source and kind — the bridge from the loaded data structure into
// the integration formalization.
func ClassifyEntry(e *model.Entry) IRI {
	switch e.Type {
	case model.TypeDiagnosis:
		if e.Code.System == "ICD10" {
			return "int:SpecialistDiagnosis"
		}
		return "int:PrimaryCareDiagnosis"
	case model.TypeMeasurement:
		return "int:BloodPressure"
	case model.TypeMedication:
		return "int:Prescription"
	case model.TypeStay:
		switch e.Source {
		case model.SourceMunicipal:
			return "int:NursingHome"
		default:
			return "int:InpatientEpisode"
		}
	case model.TypeService:
		return "int:HomeCare"
	case model.TypeContact:
		switch e.Source {
		case model.SourceHospital:
			return "int:OutpatientVisit"
		case model.SourceSpecialist:
			return "int:SpecialistClaim"
		case model.SourcePhysio:
			return "int:PhysioClaim"
		default:
			return "int:GPClaim"
		}
	default:
		return "int:Record"
	}
}

// VisualClassFor composes ClassifyEntry with the perspective map: from an
// entry straight to the presentation class that should draw it.
func VisualClassFor(e *model.Entry) (IRI, error) {
	ic := ClassifyEntry(e)
	vc, ok := PresentationClass(ic)
	if !ok {
		return "", fmt.Errorf("ontology: no presentation class for %s (entry %d)", ic, e.ID)
	}
	return vc, nil
}

// AsIndividual expresses an entry as an integration-perspective individual,
// for ontology-level consistency checks and export.
func AsIndividual(e *model.Entry) *Individual {
	iri := IRI(fmt.Sprintf("int:entry/%d", e.ID))
	ind := &Individual{
		IRI:   iri,
		Types: []IRI{ClassifyEntry(e)},
		Values: map[IRI][]string{
			"int:hasPatient": {e.Patient.String()},
			"int:startsAt":   {e.Start.String()},
			"int:reportedBy": {e.Source.String()},
		},
	}
	if e.Kind == model.Interval {
		ind.Values["int:endsAt"] = []string{e.End.String()}
	}
	// hasCode is only admissible on clinical statements; a coded contact
	// record keeps its code in the model but not as an ontology assertion.
	if !e.Code.IsZero() && Integration().InstanceOf(ind, "int:ClinicalStatement") {
		ind.Values["int:hasCode"] = []string{e.Code.String()}
	}
	return ind
}
