package ontology

import (
	"strings"
	"testing"

	"pastas/internal/model"
)

func TestNewRejectsUnknownParent(t *testing.T) {
	_, err := New("t", []Class{{IRI: "a", Parents: []IRI{"missing"}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown parent") {
		t.Errorf("want unknown-parent error, got %v", err)
	}
}

func TestNewRejectsCycle(t *testing.T) {
	_, err := New("t", []Class{
		{IRI: "a", Parents: []IRI{"b"}},
		{IRI: "b", Parents: []IRI{"a"}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want cycle error, got %v", err)
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	_, err := New("t", []Class{{IRI: "a"}, {IRI: "a"}}, nil)
	if err == nil {
		t.Error("want duplicate-class error")
	}
	_, err = New("t", []Class{{IRI: "a"}}, []Property{{IRI: "p"}, {IRI: "p"}})
	if err == nil {
		t.Error("want duplicate-property error")
	}
}

func TestNewRejectsBadPropertyDomain(t *testing.T) {
	_, err := New("t", []Class{{IRI: "a"}}, []Property{{IRI: "p", Domain: "nope"}})
	if err == nil {
		t.Error("want unknown-domain error")
	}
	_, err = New("t", []Class{{IRI: "a"}}, []Property{{IRI: "p", Range: "nope"}})
	if err == nil {
		t.Error("want unknown-range error")
	}
}

func newDiamond(t *testing.T) *Ontology {
	t.Helper()
	o, err := New("diamond", []Class{
		{IRI: "top"},
		{IRI: "left", Parents: []IRI{"top"}},
		{IRI: "right", Parents: []IRI{"top"}},
		{IRI: "bottom", Parents: []IRI{"left", "right"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSubsumptionDiamond(t *testing.T) {
	o := newDiamond(t)
	if !o.IsSubclassOf("bottom", "top") || !o.IsSubclassOf("bottom", "left") || !o.IsSubclassOf("bottom", "right") {
		t.Error("diamond subsumption broken")
	}
	if !o.IsSubclassOf("bottom", "bottom") {
		t.Error("subsumption must be reflexive")
	}
	if o.IsSubclassOf("left", "right") || o.IsSubclassOf("top", "bottom") {
		t.Error("subsumption over-approximates")
	}
	sup := o.Superclasses("bottom")
	if len(sup) != 4 {
		t.Errorf("Superclasses(bottom) = %v", sup)
	}
	sub := o.Subclasses("top")
	if len(sub) != 4 {
		t.Errorf("Subclasses(top) = %v", sub)
	}
	leaves := o.LeafClasses()
	if len(leaves) != 1 || leaves[0] != "bottom" {
		t.Errorf("LeafClasses = %v", leaves)
	}
}

func TestClassifyIndividual(t *testing.T) {
	o := newDiamond(t)
	ind := &Individual{IRI: "x", Types: []IRI{"bottom"}}
	got := o.Classify(ind)
	if len(got) != 4 {
		t.Errorf("Classify = %v", got)
	}
	if !o.InstanceOf(ind, "left") || o.InstanceOf(ind, "unknown") {
		t.Error("InstanceOf broken")
	}
}

func TestCheckIndividual(t *testing.T) {
	o, err := New("t",
		[]Class{{IRI: "rec"}, {IRI: "other"}},
		[]Property{{IRI: "p", Domain: "rec"}})
	if err != nil {
		t.Fatal(err)
	}
	good := &Individual{IRI: "i", Types: []IRI{"rec"}, Values: map[IRI][]string{"p": {"v"}}}
	if err := o.CheckIndividual(good); err != nil {
		t.Errorf("good individual rejected: %v", err)
	}
	badType := &Individual{IRI: "i", Types: []IRI{"zzz"}}
	if err := o.CheckIndividual(badType); err == nil {
		t.Error("unknown type accepted")
	}
	badProp := &Individual{IRI: "i", Types: []IRI{"rec"}, Values: map[IRI][]string{"q": {"v"}}}
	if err := o.CheckIndividual(badProp); err == nil {
		t.Error("unknown property accepted")
	}
	badDomain := &Individual{IRI: "i", Types: []IRI{"other"}, Values: map[IRI][]string{"p": {"v"}}}
	if err := o.CheckIndividual(badDomain); err == nil {
		t.Error("domain violation accepted")
	}
}

func TestBuiltinOntologiesLoad(t *testing.T) {
	if Integration() == nil || Presentation() == nil {
		t.Fatal("built-in ontologies missing")
	}
	if !Integration().IsSubclassOf("int:EmergencyGPClaim", "int:Record") {
		t.Error("emergency GP claim must be a record")
	}
	if !Presentation().IsSubclassOf("viz:MedicationBand", "viz:VisualElement") {
		t.Error("medication band must be a visual element")
	}
}

func TestPerspectiveMapTotalOnLeaves(t *testing.T) {
	// Every leaf integration class that represents data (i.e. everything
	// except the abstract roots) must reach a presentation class.
	for _, leaf := range Integration().LeafClasses() {
		if _, ok := PresentationClass(leaf); !ok {
			t.Errorf("leaf class %s has no presentation mapping", leaf)
		}
	}
}

func TestPerspectiveMapTargetsExist(t *testing.T) {
	p := Presentation()
	for from, to := range perspectiveMap {
		if Integration().Class(from) == nil {
			t.Errorf("perspective map source %s unknown", from)
		}
		if p.Class(to) == nil {
			t.Errorf("perspective map target %s unknown", to)
		}
	}
}

func TestClassifyEntry(t *testing.T) {
	cases := []struct {
		e    model.Entry
		want IRI
	}{
		{model.Entry{Type: model.TypeDiagnosis, Code: model.Code{System: "ICPC2", Value: "T90"}}, "int:PrimaryCareDiagnosis"},
		{model.Entry{Type: model.TypeDiagnosis, Code: model.Code{System: "ICD10", Value: "E11"}}, "int:SpecialistDiagnosis"},
		{model.Entry{Type: model.TypeMeasurement}, "int:BloodPressure"},
		{model.Entry{Type: model.TypeMedication}, "int:Prescription"},
		{model.Entry{Type: model.TypeStay, Source: model.SourceHospital}, "int:InpatientEpisode"},
		{model.Entry{Type: model.TypeStay, Source: model.SourceMunicipal}, "int:NursingHome"},
		{model.Entry{Type: model.TypeService, Source: model.SourceMunicipal}, "int:HomeCare"},
		{model.Entry{Type: model.TypeContact, Source: model.SourceGP}, "int:GPClaim"},
		{model.Entry{Type: model.TypeContact, Source: model.SourceHospital}, "int:OutpatientVisit"},
		{model.Entry{Type: model.TypeContact, Source: model.SourceSpecialist}, "int:SpecialistClaim"},
		{model.Entry{Type: model.TypeContact, Source: model.SourcePhysio}, "int:PhysioClaim"},
	}
	for _, c := range cases {
		if got := ClassifyEntry(&c.e); got != c.want {
			t.Errorf("ClassifyEntry(%v/%v) = %s, want %s", c.e.Type, c.e.Source, got, c.want)
		}
	}
}

func TestVisualClassFor(t *testing.T) {
	e := model.Entry{Type: model.TypeMedication, Kind: model.Interval, End: 10}
	vc, err := VisualClassFor(&e)
	if err != nil {
		t.Fatal(err)
	}
	if vc != "viz:MedicationBand" {
		t.Errorf("VisualClassFor = %s", vc)
	}
	bp := model.Entry{Type: model.TypeMeasurement}
	vc, err = VisualClassFor(&bp)
	if err != nil || vc != "viz:MeasurementArrow" {
		t.Errorf("VisualClassFor(measurement) = %s, %v", vc, err)
	}
}

func TestAsIndividualValidates(t *testing.T) {
	o := Integration()
	entries := []model.Entry{
		{ID: 1, Type: model.TypeDiagnosis, Code: model.Code{System: "ICPC2", Value: "T90"}, Start: 100, End: 100},
		{ID: 2, Type: model.TypeContact, Source: model.SourceGP, Start: 100, End: 100, Code: model.Code{System: "ICPC2", Value: "A04"}},
		{ID: 3, Type: model.TypeStay, Kind: model.Interval, Source: model.SourceHospital, Start: 100, End: 500},
	}
	for _, e := range entries {
		ind := AsIndividual(&e)
		if err := o.CheckIndividual(ind); err != nil {
			t.Errorf("entry %d individual invalid: %v", e.ID, err)
		}
	}
	// Coded diagnosis carries hasCode; coded contact must not.
	d := AsIndividual(&entries[0])
	if len(d.Values["int:hasCode"]) != 1 {
		t.Error("diagnosis lost its code")
	}
	c := AsIndividual(&entries[1])
	if len(c.Values["int:hasCode"]) != 0 {
		t.Error("contact record must not assert hasCode")
	}
	s := AsIndividual(&entries[2])
	if len(s.Values["int:endsAt"]) != 1 {
		t.Error("interval lost its end")
	}
}

func TestClassesSorted(t *testing.T) {
	o := newDiamond(t)
	cls := o.Classes()
	for i := 1; i < len(cls); i++ {
		if cls[i-1] >= cls[i] {
			t.Fatalf("Classes not sorted: %v", cls)
		}
	}
	if o.Class("left") == nil || o.Class("nope") != nil {
		t.Error("Class lookup broken")
	}
}
