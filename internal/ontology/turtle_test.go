package ontology

import (
	"strings"
	"testing"

	"pastas/internal/model"
)

func TestWriteTurtleVocabulary(t *testing.T) {
	var b strings.Builder
	if err := Integration().WriteTurtle(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"@prefix owl:",
		"int:GPClaim a owl:Class",
		"rdfs:subClassOf int:ClaimRecord",
		`rdfs:label "General practitioner claim"`,
		"int:hasCode a rdf:Property",
		"rdfs:domain int:ClinicalStatement",
		"int:derivedFrom a rdf:Property",
		"rdfs:range int:Record",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("turtle missing %q", want)
		}
	}
	// Every class appears exactly once as a class declaration.
	if got := strings.Count(out, " a owl:Class"); got != len(Integration().Classes()) {
		t.Errorf("class declarations = %d, want %d", got, len(Integration().Classes()))
	}
}

func TestWriteIndividualsTurtle(t *testing.T) {
	e := model.Entry{
		ID: 7, Kind: model.Point, Start: model.Date(2010, 3, 5), End: model.Date(2010, 3, 5),
		Source: model.SourceGP, Type: model.TypeDiagnosis,
		Code: model.Code{System: "ICPC2", Value: "T90"},
	}
	ind := AsIndividual(&e)
	var b strings.Builder
	if err := Integration().WriteIndividualsTurtle(&b, []*Individual{ind}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"int:entry_7 a int:PrimaryCareDiagnosis",
		`int:hasCode "ICPC2:T90"`,
		`int:startsAt "2010-03-05"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("individuals turtle missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteIndividualsValidates(t *testing.T) {
	bad := &Individual{IRI: "int:x", Types: []IRI{"int:Nope"}}
	var b strings.Builder
	if err := Integration().WriteIndividualsTurtle(&b, []*Individual{bad}); err == nil {
		t.Error("invalid individual serialized")
	}
}

func TestTurtleLiteralEscaping(t *testing.T) {
	got := turtleLiteral("line\n\"quoted\" \\slash")
	if strings.Contains(got, "\n") || !strings.Contains(got, `\"quoted\"`) || !strings.Contains(got, `\\slash`) {
		t.Errorf("escaping broken: %s", got)
	}
}

func TestTurtleDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := Presentation().WriteTurtle(&a); err != nil {
		t.Fatal(err)
	}
	if err := Presentation().WriteTurtle(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("turtle output not deterministic")
	}
}
