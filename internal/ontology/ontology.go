// Package ontology implements the paper's two formalizations of patient
// events: "One for integration and alignment of patient records and
// observations; Another for visual presentation of individual or cohort
// trajectories."
//
// The formalization is a lightweight, OWL-inspired ontology language:
// named classes with multiple inheritance, properties with domain/range,
// and individuals with asserted types. The reasoner computes subsumption by
// transitive closure and classifies individuals under every superclass of
// their asserted types — the fragment of OWL reasoning the workbench
// actually exercises (class hierarchies and perspective mapping), kept
// honest by cycle and dangling-reference checks at construction time.
package ontology

import (
	"fmt"
	"sort"
)

// IRI names a class, property or individual. By convention the prefix is
// the ontology name, e.g. "int:HospitalEpisode", "viz:MedicationBand".
type IRI string

// Class is a named class with zero or more direct superclasses.
type Class struct {
	IRI     IRI
	Label   string
	Parents []IRI
}

// Property relates individuals (or an individual to a literal); Domain and
// Range are class IRIs ("" = unconstrained).
type Property struct {
	IRI    IRI
	Label  string
	Domain IRI
	Range  IRI
}

// Individual is an instance with asserted types and property assertions.
type Individual struct {
	IRI   IRI
	Types []IRI
	// Values maps property IRI to object IRIs or literal strings.
	Values map[IRI][]string
}

// Ontology is an immutable class/property vocabulary with a reasoner.
type Ontology struct {
	Name       string
	classes    map[IRI]*Class
	properties map[IRI]*Property
	// ancestors is the memoized transitive closure, including the class
	// itself (reflexive), computed at construction.
	ancestors map[IRI]map[IRI]bool
}

// New constructs an ontology, validating that parent references resolve and
// that the subclass graph is acyclic.
func New(name string, classes []Class, properties []Property) (*Ontology, error) {
	o := &Ontology{
		Name:       name,
		classes:    make(map[IRI]*Class, len(classes)),
		properties: make(map[IRI]*Property, len(properties)),
		ancestors:  make(map[IRI]map[IRI]bool, len(classes)),
	}
	for i := range classes {
		c := &classes[i]
		if _, dup := o.classes[c.IRI]; dup {
			return nil, fmt.Errorf("ontology %s: duplicate class %s", name, c.IRI)
		}
		o.classes[c.IRI] = c
	}
	for _, c := range o.classes {
		for _, p := range c.Parents {
			if _, ok := o.classes[p]; !ok {
				return nil, fmt.Errorf("ontology %s: class %s has unknown parent %s", name, c.IRI, p)
			}
		}
	}
	for i := range properties {
		p := &properties[i]
		if _, dup := o.properties[p.IRI]; dup {
			return nil, fmt.Errorf("ontology %s: duplicate property %s", name, p.IRI)
		}
		if p.Domain != "" {
			if _, ok := o.classes[p.Domain]; !ok {
				return nil, fmt.Errorf("ontology %s: property %s has unknown domain %s", name, p.IRI, p.Domain)
			}
		}
		if p.Range != "" {
			if _, ok := o.classes[p.Range]; !ok {
				return nil, fmt.Errorf("ontology %s: property %s has unknown range %s", name, p.IRI, p.Range)
			}
		}
		o.properties[p.IRI] = p
	}
	// Compute the reflexive-transitive closure, detecting cycles.
	state := make(map[IRI]int, len(o.classes)) // 0 new, 1 visiting, 2 done
	var visit func(IRI) error
	visit = func(c IRI) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("ontology %s: subclass cycle through %s", name, c)
		case 2:
			return nil
		}
		state[c] = 1
		anc := map[IRI]bool{c: true}
		for _, p := range o.classes[c].Parents {
			if err := visit(p); err != nil {
				return err
			}
			for a := range o.ancestors[p] {
				anc[a] = true
			}
		}
		o.ancestors[c] = anc
		state[c] = 2
		return nil
	}
	for iri := range o.classes {
		if err := visit(iri); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// MustNew panics on error; for the package-level built-in ontologies.
func MustNew(name string, classes []Class, properties []Property) *Ontology {
	o, err := New(name, classes, properties)
	if err != nil {
		panic(err)
	}
	return o
}

// Class returns the class for an IRI, or nil.
func (o *Ontology) Class(iri IRI) *Class { return o.classes[iri] }

// Property returns the property for an IRI, or nil.
func (o *Ontology) Property(iri IRI) *Property { return o.properties[iri] }

// Classes returns all class IRIs, sorted.
func (o *Ontology) Classes() []IRI {
	out := make([]IRI, 0, len(o.classes))
	for iri := range o.classes {
		out = append(out, iri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSubclassOf reports whether sub ⊑ super (reflexive).
func (o *Ontology) IsSubclassOf(sub, super IRI) bool {
	return o.ancestors[sub][super]
}

// Superclasses returns every (reflexive) superclass of a class, sorted.
func (o *Ontology) Superclasses(iri IRI) []IRI {
	anc := o.ancestors[iri]
	out := make([]IRI, 0, len(anc))
	for a := range anc {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subclasses returns every class c with c ⊑ super (reflexive), sorted.
func (o *Ontology) Subclasses(super IRI) []IRI {
	var out []IRI
	for iri, anc := range o.ancestors {
		if anc[super] {
			out = append(out, iri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Classify returns every class the individual belongs to: the reflexive-
// transitive closure over its asserted types, sorted.
func (o *Ontology) Classify(ind *Individual) []IRI {
	seen := make(map[IRI]bool)
	for _, t := range ind.Types {
		for a := range o.ancestors[t] {
			seen[a] = true
		}
	}
	out := make([]IRI, 0, len(seen))
	for iri := range seen {
		out = append(out, iri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstanceOf reports whether the individual is (directly or by subsumption)
// an instance of the class.
func (o *Ontology) InstanceOf(ind *Individual, class IRI) bool {
	for _, t := range ind.Types {
		if o.ancestors[t][class] {
			return true
		}
	}
	return false
}

// CheckIndividual validates an individual's types and property assertions
// against the vocabulary (unknown type/property, domain violations).
func (o *Ontology) CheckIndividual(ind *Individual) error {
	for _, t := range ind.Types {
		if _, ok := o.classes[t]; !ok {
			return fmt.Errorf("ontology %s: individual %s has unknown type %s", o.Name, ind.IRI, t)
		}
	}
	for prop := range ind.Values {
		p, ok := o.properties[prop]
		if !ok {
			return fmt.Errorf("ontology %s: individual %s uses unknown property %s", o.Name, ind.IRI, prop)
		}
		if p.Domain != "" && !o.InstanceOf(ind, p.Domain) {
			return fmt.Errorf("ontology %s: individual %s violates domain %s of %s", o.Name, ind.IRI, p.Domain, prop)
		}
	}
	return nil
}

// LeafClasses returns classes with no subclasses other than themselves.
func (o *Ontology) LeafClasses() []IRI {
	hasChild := make(map[IRI]bool)
	for iri, c := range o.classes {
		for _, p := range c.Parents {
			_ = iri
			hasChild[p] = true
		}
	}
	var out []IRI
	for iri := range o.classes {
		if !hasChild[iri] {
			out = append(out, iri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
