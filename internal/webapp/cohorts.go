package webapp

// The cohort-workspace API: save a named cohort, refine it (the engine
// executes only the delta, masked by the saved bitset), list, profile,
// compare, and drop. The Query-Builder front end drives the paper's
// iterative cohort-identification loop through these endpoints.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"pastas/internal/query"
)

// cohortRequest is the body of POST /api/cohorts and
// POST /api/cohorts/refine: a workspace name plus a query spec.
type cohortRequest struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
}

func (s *Server) parseCohortRequest(w http.ResponseWriter, r *http.Request) (string, query.Expr, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.apiInvalid(w, "read body: %v", err)
		return "", nil, false
	}
	var req cohortRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.apiInvalid(w, "bad request: %v", err)
		return "", nil, false
	}
	if req.Name == "" {
		s.apiInvalid(w, `need {"name": ..., "spec": ...}`)
		return "", nil, false
	}
	spec, err := query.ParseSpec(req.Spec)
	if err != nil {
		s.apiInvalid(w, "%v", err)
		return "", nil, false
	}
	expr, err := spec.Compile()
	if err != nil {
		s.apiInvalid(w, "%v", err)
		return "", nil, false
	}
	return req.Name, expr, true
}

// handleCohortList reports the cohorts valid at the current generation.
func (s *Server) handleCohortList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"generation": s.wb.Engine.Generation(),
		"cohorts":    s.wb.Cohorts(),
	})
}

// handleCohortSave materializes a named cohort from scratch. Strict
// whatever the engine's policy: a degraded answer is a 502, never a
// saved cohort.
func (s *Server) handleCohortSave(w http.ResponseWriter, r *http.Request) {
	name, expr, ok := s.parseCohortRequest(w, r)
	if !ok {
		return
	}
	info, err := s.wb.SaveCohort(name, expr)
	if err != nil {
		s.apiError(w, err)
		return
	}
	writeJSON(w, map[string]any{"cohort": info})
}

// handleCohortRefine evaluates an expression seeded by the saved
// cohorts and saves the result, reporting how the answer was produced —
// the mode (exact/narrow/widen/scratch), the seeding cohort, and
// whether the mask was pushed down to remote shards.
func (s *Server) handleCohortRefine(w http.ResponseWriter, r *http.Request) {
	name, expr, ok := s.parseCohortRequest(w, r)
	if !ok {
		return
	}
	info, ref, err := s.wb.RefineCohort(name, expr)
	if err != nil {
		s.apiError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"cohort":     info,
		"refinement": ref,
		"summary":    ref.String(),
	})
}

// handleCohortProfile aggregates the dimension breakdown for one saved
// cohort, server-side per shard.
func (s *Server) handleCohortProfile(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	prof, info, err := s.wb.CohortProfile(name)
	if err != nil {
		s.apiError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"cohort":  info,
		"profile": prof,
		"table":   prof.Table(),
	})
}

// handleCohortCompare profiles two saved cohorts side by side and
// reports their membership overlap.
func (s *Server) handleCohortCompare(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		s.apiInvalid(w, "need ?a=<cohort>&b=<cohort>")
		return
	}
	cmp, err := s.wb.CompareCohorts(a, b)
	if err != nil {
		s.apiError(w, err)
		return
	}
	writeJSON(w, cmp)
}

// handleCohortDrop removes a saved cohort.
func (s *Server) handleCohortDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.wb.DropCohort(name) {
		s.writeAPIError(w, http.StatusNotFound, "no_cohort", fmt.Sprintf("no cohort %q", name), nil)
		return
	}
	writeJSON(w, map[string]any{"dropped": name})
}
