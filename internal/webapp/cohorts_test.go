package webapp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pastas/internal/query"
)

func mustExpr(t *testing.T, specJSON string) query.Expr {
	t.Helper()
	spec, err := query.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestCohortWorkspaceEndpoints walks the save → list → refine →
// compare → drop loop over HTTP.
func TestCohortWorkspaceEndpoints(t *testing.T) {
	s, wb := testServer(t, 200)
	diag := `{"op":"has","type":"diagnosis"}`
	women := `{"op":"sex","sex":"F"}`

	rec := postJSON(t, s, "/api/cohorts?pw=tromsø", `{"name":"diag","spec":`+diag+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("save = %d: %s", rec.Code, rec.Body.String())
	}
	var saved struct {
		Cohort struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"cohort"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &saved); err != nil {
		t.Fatal(err)
	}
	if saved.Cohort.Name != "diag" || saved.Cohort.Count == 0 {
		t.Fatalf("saved cohort %+v", saved.Cohort)
	}

	rec = get(t, s, "/api/cohorts?pw=tromsø")
	if rec.Code != http.StatusOK {
		t.Fatalf("list = %d", rec.Code)
	}
	var list struct {
		Cohorts []struct {
			Name string `json:"name"`
		} `json:"cohorts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Cohorts) != 1 || list.Cohorts[0].Name != "diag" {
		t.Fatalf("list = %+v", list)
	}

	refineSpec := `{"op":"and","children":[` + diag + `,` + women + `]}`
	rec = postJSON(t, s, "/api/cohorts/refine?pw=tromsø", `{"name":"dw","spec":`+refineSpec+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("refine = %d: %s", rec.Code, rec.Body.String())
	}
	var refined struct {
		Cohort struct {
			Name  string `json:"name"`
			Count int    `json:"count"`
		} `json:"cohort"`
		Refinement struct {
			Mode string `json:"mode"`
			Seed string `json:"seed"`
		} `json:"refinement"`
		Summary string `json:"summary"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &refined); err != nil {
		t.Fatal(err)
	}
	if refined.Refinement.Mode != "narrow" || refined.Refinement.Seed != "diag" {
		t.Fatalf("refinement = %+v", refined.Refinement)
	}
	if refined.Summary == "" || !strings.Contains(refined.Summary, "narrow") {
		t.Fatalf("summary %q does not describe the refinement", refined.Summary)
	}
	if refined.Cohort.Count > saved.Cohort.Count {
		t.Fatal("narrowing refinement grew the cohort")
	}
	// Parity with the plain cohort endpoint on the same spec.
	bits, err := wb.Query(mustExpr(t, refineSpec))
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cohort.Count != bits.Count() {
		t.Fatalf("refined count %d, direct query %d", refined.Cohort.Count, bits.Count())
	}

	rec = get(t, s, "/api/cohorts/compare?pw=tromsø&a=diag&b=dw")
	if rec.Code != http.StatusOK {
		t.Fatalf("compare = %d: %s", rec.Code, rec.Body.String())
	}
	var cmp struct {
		Both     int `json:"both"`
		OnlyA    int `json:"only_a"`
		OnlyB    int `json:"only_b"`
		ProfileA struct {
			Patients int `json:"patients"`
		} `json:"profile_a"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cmp); err != nil {
		t.Fatal(err)
	}
	if cmp.Both != refined.Cohort.Count || cmp.OnlyB != 0 {
		t.Fatalf("compare = %+v, want both=%d only_b=0", cmp, refined.Cohort.Count)
	}
	if cmp.ProfileA.Patients != saved.Cohort.Count {
		t.Fatalf("profile_a patients = %d, want %d", cmp.ProfileA.Patients, saved.Cohort.Count)
	}

	// Single-cohort profile fetch.
	rec = get(t, s, "/api/cohorts/diag?pw=tromsø")
	if rec.Code != http.StatusOK {
		t.Fatalf("profile = %d: %s", rec.Code, rec.Body.String())
	}

	// Drop, then 404.
	req := httptest.NewRequest(http.MethodDelete, "/api/cohorts/dw?pw=tromsø", nil)
	drec := httptest.NewRecorder()
	s.ServeHTTP(drec, req)
	if drec.Code != http.StatusOK {
		t.Fatalf("drop = %d", drec.Code)
	}
	if rec := get(t, s, "/api/cohorts/dw?pw=tromsø"); rec.Code != http.StatusNotFound {
		t.Fatalf("profile after drop = %d, want 404", rec.Code)
	}
}

// TestCohortEndpointsHostile: malformed bodies, missing names, unknown
// cohorts and oversized payloads are 4xx, never 500s or panics.
func TestCohortEndpointsHostile(t *testing.T) {
	s, _ := testServer(t, 30)
	for _, body := range []string{
		"{broken", `{}`, `{"name":"x"}`, `{"name":"x","spec":{"op":"zzz"}}`,
		`{"name":"` + strings.Repeat("n", 300) + `","spec":{"op":"true"}}`,
		`{"name":"bad\nname","spec":{"op":"true"}}`,
	} {
		rec := postJSON(t, s, "/api/cohorts?pw=tromsø", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("save %.40q = %d, want 400", body, rec.Code)
		}
	}
	if rec := get(t, s, "/api/cohorts/compare?pw=tromsø&a=missing&b=alsomissing"); rec.Code != http.StatusNotFound {
		t.Errorf("compare of missing cohorts = %d, want 404", rec.Code)
	}
	if rec := get(t, s, "/api/cohorts/missing?pw=tromsø"); rec.Code != http.StatusNotFound {
		t.Errorf("profile of missing cohort = %d, want 404", rec.Code)
	}
	// The workspace endpoints sit behind the password gate.
	if rec := postJSON(t, s, "/api/cohorts", `{"name":"x","spec":{"op":"true"}}`); rec.Code != http.StatusUnauthorized {
		t.Errorf("unauthenticated save = %d, want 401", rec.Code)
	}
}
