package webapp

// The redesigned API surface: /api/cohorts/query is the canonical query
// route with /api/cohort as a byte-identical deprecated alias, every
// cohort/analytics error arrives in the shared JSON envelope, and the
// /api/analytics/{kind} family answers byte-identically whether the
// server fronts a local store or a connected shard cluster.

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestCohortQueryRouteAlias(t *testing.T) {
	s, _ := testServer(t, 60)
	spec := `{"all":[{"has":{"type":"diagnosis"}}]}`
	oldRec := postJSON(t, s, "/api/cohort?pw=tromsø", spec)
	newRec := postJSON(t, s, "/api/cohorts/query?pw=tromsø", spec)
	if oldRec.Code != http.StatusOK || newRec.Code != http.StatusOK {
		t.Fatalf("codes %d/%d: %s / %s", oldRec.Code, newRec.Code, oldRec.Body, newRec.Body)
	}
	if oldRec.Body.String() != newRec.Body.String() {
		t.Fatalf("deprecated alias diverged from canonical route:\n old %s\n new %s", oldRec.Body, newRec.Body)
	}
}

// envelope decodes a response that must carry the shared error envelope
// and checks its code.
func envelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var e struct {
		Error *apiErrorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == nil {
		t.Fatalf("response is not the shared error envelope: %s (%v)", body, err)
	}
	if e.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (%s)", e.Error.Code, wantCode, body)
	}
	if e.Error.Message == "" {
		t.Fatalf("empty error message: %s", body)
	}
}

func TestAnalyticsErrorEnvelope(t *testing.T) {
	s, _ := testServer(t, 40)
	cases := []struct {
		path, body string
		status     int
		code       string
	}{
		{"/api/analytics/mine", `{"cohort":"nope"}`, http.StatusNotFound, "no_cohort"},
		{"/api/analytics/mine", `{}`, http.StatusBadRequest, "invalid"},
		{"/api/analytics/bogus", `{"cohort":"x"}`, http.StatusBadRequest, "invalid"},
		{"/api/analytics/mine", `not json`, http.StatusBadRequest, "invalid"},
		{"/api/analytics/scenario", `{"cohort":"x","scenario":{"steps":["T","K"],"relations":[{"i":0,"j":1,"rel":"sideways"}]}}`, http.StatusBadRequest, "invalid"},
		{"/api/analytics/episodes", `{"cohort":"x","gap_days":-3}`, http.StatusBadRequest, "invalid"},
		{"/api/cohorts/query", `{"all":[`, http.StatusBadRequest, "invalid"},
	}
	for _, c := range cases {
		rec := postJSON(t, s, c.path+"?pw=tromsø", c.body)
		if rec.Code != c.status {
			t.Errorf("%s %s: status %d, want %d (%s)", c.path, c.body, rec.Code, c.status, rec.Body)
			continue
		}
		envelope(t, rec.Body.Bytes(), c.code)
	}
}

// TestAnalyticsLocalConnectedParity: the same analytics request against
// the same population answers byte-identically from a single-process
// server and from one fronting remote shard servers — results and error
// envelopes both.
func TestAnalyticsLocalConnectedParity(t *testing.T) {
	remoteSrv, local, remote, _ := distributedServer(t, 120)
	localSrv := NewServer(local, Config{})

	expr := mustExpr(t, `{"has":{"type":"diagnosis"}}`)
	if _, err := local.SaveCohort("par", expr); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.SaveCohort("par", expr); err != nil {
		t.Fatal(err)
	}

	reqs := []struct{ path, body string }{
		{"/api/analytics/mine", `{"cohort":"par","system":"ICPC2","chapter":true,"top":10}`},
		{"/api/analytics/mine", `{"cohort":"par","sequential":true,"max_gap":3,"chapter":true}`},
		{"/api/analytics/episodes", `{"cohort":"par","gap_days":90}`},
		{"/api/analytics/scenario", `{"cohort":"par","scenario":{"steps":["T","K"],"relations":[{"i":0,"j":1,"rel":"b,m,o"}]}}`},
		{"/api/analytics/cluster", `{"cohort":"par","k":3}`},
		// Error envelopes must be byte-identical too.
		{"/api/analytics/mine", `{"cohort":"missing"}`},
		{"/api/analytics/bogus", `{"cohort":"par"}`},
	}
	for _, r := range reqs {
		lrec := postJSON(t, localSrv, r.path, r.body)
		rrec := postJSON(t, remoteSrv, r.path, r.body)
		if lrec.Code != rrec.Code {
			t.Errorf("%s %s: local %d vs connected %d\nlocal %s\nconnected %s",
				r.path, r.body, lrec.Code, rrec.Code, lrec.Body, rrec.Body)
			continue
		}
		if lrec.Body.String() != rrec.Body.String() {
			t.Errorf("%s %s: bodies differ\nlocal     %s\nconnected %s", r.path, r.body, lrec.Body, rrec.Body)
		}
	}

	// And the mine response actually carries rules over this population.
	rec := postJSON(t, remoteSrv, "/api/analytics/mine", `{"cohort":"par","system":"ICPC2","chapter":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("mine over connected server: %d %s", rec.Code, rec.Body)
	}
	var mined struct {
		Rules []ruleJSON `json:"rules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &mined); err != nil {
		t.Fatal(err)
	}
	if len(mined.Rules) == 0 {
		t.Fatal("no rules mined from the 120-patient population")
	}
}

// A dead shard server surfaces as the unavailable envelope with the
// missing shards named — never a 200 with silently partial counts.
func TestAnalyticsShardOutage(t *testing.T) {
	s, _, remote, listeners := distributedServer(t, 80)
	if _, err := remote.SaveCohort("out", mustExpr(t, `{"has":{"type":"diagnosis"}}`)); err != nil {
		t.Fatal(err)
	}
	listeners[1].kill()
	rec := postJSON(t, s, "/api/analytics/mine", `{"cohort":"out"}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("analytics with a dead shard server: %d %s", rec.Code, rec.Body)
	}
	envelope(t, rec.Body.Bytes(), "unavailable")
	var e struct {
		Error apiErrorBody `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if len(e.Error.ShardsMissing) == 0 {
		t.Fatalf("unavailable envelope should name the missing shards: %s", rec.Body)
	}
}
