package webapp

// The webapp over a connected (storeless) workbench: cohort queries and
// stats work across shard servers; history-level endpoints refuse
// clearly instead of panicking.

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/query"
	"pastas/internal/synth"
)

func distributedServer(t *testing.T, patients int) (*Server, *core.Workbench, *core.Workbench) {
	t.Helper()
	local, err := core.Synthesize(synth.DefaultConfig(patients))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wb.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Save(f, core.SnapshotOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := engine.NewShardServer(path, nil, engine.Options{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go srv.Serve(lis)
	remote, err := core.Connect([]string{lis.Addr().String()},
		engine.RemoteOptions{Timeout: 30 * time.Second}, engine.Options{Workers: 2}, local.Window)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return NewServer(remote, Config{}), local, remote
}

func TestDistributedStatsAndCohort(t *testing.T) {
	s, local, remote := distributedServer(t, 120)

	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if int(health["patients"].(float64)) != local.Patients() {
		t.Errorf("healthz patients = %v, want %d", health["patients"], local.Patients())
	}

	// Warm one query so the per-backend block has traffic to report.
	if _, err := remote.Query(query.Has{Pred: query.MustCode("", "T90")}); err != nil {
		t.Fatal(err)
	}
	rec = get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var stats struct {
		Patients int `json:"patients"`
		Shards   []struct {
			Backend string  `json:"backend"`
			Queries uint64  `json:"queries"`
			TotalMS float64 `json:"total_ms"`
		} `json:"shards"`
		Backends map[string]int `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Patients != local.Patients() {
		t.Errorf("stats patients = %d, want %d", stats.Patients, local.Patients())
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("stats shards = %d, want 3", len(stats.Shards))
	}
	for _, sh := range stats.Shards {
		if !strings.HasPrefix(sh.Backend, "remote(") {
			t.Errorf("shard backend = %q, want remote(...)", sh.Backend)
		}
		if sh.Queries == 0 || sh.TotalMS <= 0 {
			t.Errorf("shard reported no traffic: %+v", sh)
		}
	}
	if len(stats.Backends) == 0 {
		t.Error("per-backend block missing")
	}

	// Cohort queries answer across the wire, identical to local.
	spec := `{"op":"has","pattern":"T90|E11(\\..*)?"}`
	req := httptest.NewRequest(http.MethodPost, "/api/cohort", strings.NewReader(spec))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cohort = %d: %s", rec.Code, rec.Body)
	}
	var cohortResp struct {
		Count  int      `json:"count"`
		Sample []uint64 `json:"sample"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cohortResp); err != nil {
		t.Fatal(err)
	}
	localSrv := NewServer(local, Config{})
	rec = httptest.NewRecorder()
	localSrv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/cohort", strings.NewReader(spec)))
	var localResp struct {
		Count  int      `json:"count"`
		Sample []uint64 `json:"sample"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &localResp); err != nil {
		t.Fatal(err)
	}
	if cohortResp.Count != localResp.Count || len(cohortResp.Sample) != len(localResp.Sample) {
		t.Fatalf("remote cohort %d (%d sampled), local %d (%d sampled)",
			cohortResp.Count, len(cohortResp.Sample), localResp.Count, len(localResp.Sample))
	}
	for i := range cohortResp.Sample {
		if cohortResp.Sample[i] != localResp.Sample[i] {
			t.Fatalf("sample %d: remote %d, local %d", i, cohortResp.Sample[i], localResp.Sample[i])
		}
	}

	// History-level endpoints refuse with 503, not a panic.
	for _, path := range []string{"/api/patients", "/api/timeline?patient=1", "/api/details?patient=1&t=2011-01-01", "/", "/cohort-view?pattern=T90"} {
		if rec := get(t, s, path); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s = %d, want 503", path, rec.Code)
		}
	}
}
