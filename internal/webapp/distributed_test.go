package webapp

// The webapp over a connected (storeless) workbench: cohort queries,
// stats, and — since the fetch/render RPCs — the whole history-level
// endpoint family work across shard servers, byte-identical to a
// single-process deployment; a dead shard server is a loud 5xx, never a
// partial timeline.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/query"
	"pastas/internal/synth"
)

// killableListener records accepted connections so a test can take a
// shard server down the way a crashed process would: listener and every
// live connection torn down at once.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

func distributedServer(t *testing.T, patients int) (*Server, *core.Workbench, *core.Workbench, []*killableListener) {
	t.Helper()
	local, err := core.Synthesize(synth.DefaultConfig(patients))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wb.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Save(f, core.SnapshotOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Two servers of two shards each, so one can die while the other
	// keeps answering.
	var addrs []string
	var listeners []*killableListener
	for _, ids := range [][]int{{0, 1}, {2, 3}} {
		srv, err := engine.NewShardServer(path, ids, engine.Options{Shards: 2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		kl := &killableListener{Listener: lis}
		listeners = append(listeners, kl)
		t.Cleanup(kl.kill)
		go srv.Serve(kl)
		addrs = append(addrs, lis.Addr().String())
	}
	remote, err := core.Connect(addrs,
		engine.RemoteOptions{Timeout: 30 * time.Second}, engine.Options{Workers: 2}, local.Window)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return NewServer(remote, Config{}), local, remote, listeners
}

func TestDistributedStatsAndCohort(t *testing.T) {
	s, local, remote, _ := distributedServer(t, 120)

	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if int(health["patients"].(float64)) != local.Patients() {
		t.Errorf("healthz patients = %v, want %d", health["patients"], local.Patients())
	}

	// Warm one query so the per-backend block has traffic to report.
	if _, err := remote.Query(query.Has{Pred: query.MustCode("", "T90")}); err != nil {
		t.Fatal(err)
	}
	rec = get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var stats struct {
		Patients int `json:"patients"`
		Shards   []struct {
			Backend string  `json:"backend"`
			Queries uint64  `json:"queries"`
			TotalMS float64 `json:"total_ms"`
		} `json:"shards"`
		Backends map[string]int `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Patients != local.Patients() {
		t.Errorf("stats patients = %d, want %d", stats.Patients, local.Patients())
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats shards = %d, want 4", len(stats.Shards))
	}
	for _, sh := range stats.Shards {
		if !strings.HasPrefix(sh.Backend, "remote(") {
			t.Errorf("shard backend = %q, want remote(...)", sh.Backend)
		}
		if sh.Queries == 0 || sh.TotalMS <= 0 {
			t.Errorf("shard reported no traffic: %+v", sh)
		}
	}
	if len(stats.Backends) == 0 {
		t.Error("per-backend block missing")
	}

	// Cohort queries answer across the wire, identical to local.
	spec := `{"op":"has","pattern":"T90|E11(\\..*)?"}`
	req := httptest.NewRequest(http.MethodPost, "/api/cohort", strings.NewReader(spec))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cohort = %d: %s", rec.Code, rec.Body)
	}
	var cohortResp struct {
		Count  int      `json:"count"`
		Sample []uint64 `json:"sample"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cohortResp); err != nil {
		t.Fatal(err)
	}
	localSrv := NewServer(local, Config{})
	rec = httptest.NewRecorder()
	localSrv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/cohort", strings.NewReader(spec)))
	var localResp struct {
		Count  int      `json:"count"`
		Sample []uint64 `json:"sample"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &localResp); err != nil {
		t.Fatal(err)
	}
	if cohortResp.Count != localResp.Count || len(cohortResp.Sample) != len(localResp.Sample) {
		t.Fatalf("remote cohort %d (%d sampled), local %d (%d sampled)",
			cohortResp.Count, len(cohortResp.Sample), localResp.Count, len(localResp.Sample))
	}
	for i := range cohortResp.Sample {
		if cohortResp.Sample[i] != localResp.Sample[i] {
			t.Fatalf("sample %d: remote %d, local %d", i, cohortResp.Sample[i], localResp.Sample[i])
		}
	}

}

// TestDistributedHistoryEndpoints: every previously-503 route answers a
// connected workbench with 200 and a body byte-identical to the same
// request against a single-process server over the same data — the
// fetch/render RPCs make the two deployments indistinguishable from the
// outside.
func TestDistributedHistoryEndpoints(t *testing.T) {
	s, local, _, _ := distributedServer(t, 120)
	localSrv := NewServer(local, Config{})

	id := local.Store.Collection().IDs()[0]
	paths := []string{
		"/api/patients",
		"/api/patients?limit=7",
		fmt.Sprintf("/api/timeline?patient=%d", uint64(id)),
		fmt.Sprintf("/api/details?patient=%d&t=2011-01-01", uint64(id)),
		fmt.Sprintf("/timeline?patient=%d", uint64(id)),
		"/",
		"/cohort-view?pattern=T90",
	}
	for _, path := range paths {
		remoteRec := get(t, s, path)
		localRec := get(t, localSrv, path)
		if remoteRec.Code != http.StatusOK {
			t.Errorf("%s over shards = %d: %s", path, remoteRec.Code, remoteRec.Body)
			continue
		}
		if localRec.Code != http.StatusOK {
			t.Fatalf("%s locally = %d", path, localRec.Code)
		}
		if remoteRec.Body.String() != localRec.Body.String() {
			t.Errorf("%s: remote body diverges from local\nremote: %.200s\nlocal:  %.200s",
				path, remoteRec.Body, localRec.Body)
		}
	}

	// Indicators aggregate server-side; the JSON must still be
	// byte-identical (the tallies are integral, so merge order cannot
	// perturb a single bit of the finalized rates).
	spec := `{"op":"has","pattern":"T90|E11(\\..*)?"}`
	for _, body := range []string{"", spec} {
		remoteRec := httptest.NewRecorder()
		s.ServeHTTP(remoteRec, httptest.NewRequest(http.MethodPost, "/api/indicators", strings.NewReader(body)))
		localRec := httptest.NewRecorder()
		localSrv.ServeHTTP(localRec, httptest.NewRequest(http.MethodPost, "/api/indicators", strings.NewReader(body)))
		if remoteRec.Code != http.StatusOK || localRec.Code != http.StatusOK {
			t.Fatalf("indicators = %d remote / %d local: %s", remoteRec.Code, localRec.Code, remoteRec.Body)
		}
		if remoteRec.Body.String() != localRec.Body.String() {
			t.Errorf("indicators body diverges\nremote: %.300s\nlocal:  %.300s", remoteRec.Body, localRec.Body)
		}
	}

	// Unknown patients are a 404 from both deployments.
	if rec := get(t, s, "/api/timeline?patient=99999999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown patient over shards = %d, want 404", rec.Code)
	}
}

// TestDistributedHistoryFailureInjection: with one of the two shard
// servers dead, history endpoints fail loudly — never a partial timeline,
// a half-cohort render, or a false 404.
func TestDistributedHistoryFailureInjection(t *testing.T) {
	s, local, remote, listeners := distributedServer(t, 120)

	// A patient owned by the second server (shards 2,3 cover the upper
	// half of the ordinal space).
	n := local.Patients()
	upperID := local.Store.Collection().IDs()[n-1]

	listeners[1].kill()
	remote.Engine.ResetCache()

	for _, path := range []string{
		fmt.Sprintf("/api/timeline?patient=%d", uint64(upperID)),
		"/cohort-view?pattern=T90",
	} {
		rec := get(t, s, path)
		if rec.Code < 500 {
			t.Errorf("%s with a dead shard server = %d, want 5xx: %.200s", path, rec.Code, rec.Body)
		}
		if rec.Code == http.StatusNotFound {
			t.Errorf("%s: dead shard server reported as missing patient", path)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/indicators", strings.NewReader("")))
	if rec.Code < 500 {
		t.Errorf("indicators with a dead shard server = %d, want 5xx: %.200s", rec.Code, rec.Body)
	}
}
