package webapp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"pastas/internal/core"
	"pastas/internal/synth"
)

func testServer(t testing.TB, patients int) (*Server, *core.Workbench) {
	t.Helper()
	wb, err := core.Synthesize(synth.DefaultConfig(patients))
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(wb, DefaultConfig()), wb
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthOpen(t *testing.T) {
	s, wb := testServer(t, 20)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if int(body["patients"].(float64)) != wb.Patients() {
		t.Error("patient count wrong")
	}
}

func TestPasswordGate(t *testing.T) {
	s, _ := testServer(t, 10)
	if rec := get(t, s, "/api/patients"); rec.Code != http.StatusUnauthorized {
		t.Errorf("without password: %d", rec.Code)
	}
	if rec := get(t, s, "/api/patients?pw=wrong"); rec.Code != http.StatusUnauthorized {
		t.Errorf("wrong password: %d", rec.Code)
	}
	if rec := get(t, s, "/api/patients?pw=tromsø"); rec.Code != http.StatusOK {
		t.Errorf("right password: %d", rec.Code)
	}
	// Cookie path (cookie values are ASCII-only, so URL-escaped).
	req := httptest.NewRequest(http.MethodGet, "/api/patients", nil)
	req.AddCookie(&http.Cookie{Name: "pastas_pw", Value: url.QueryEscape("tromsø")})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("cookie auth: %d", rec.Code)
	}
}

func TestOpenAccessWhenNoPassword(t *testing.T) {
	wb, err := core.Synthesize(synth.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(wb, Config{})
	if rec := get(t, s, "/api/patients"); rec.Code != http.StatusOK {
		t.Errorf("open server rejected: %d", rec.Code)
	}
}

func TestPatientsEndpoint(t *testing.T) {
	s, _ := testServer(t, 30)
	rec := get(t, s, "/api/patients?pw=tromsø&limit=7")
	var body struct {
		Patients []uint64 `json:"patients"`
		Total    int      `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Patients) != 7 || body.Total != 30 {
		t.Errorf("patients = %d, total = %d", len(body.Patients), body.Total)
	}
	if rec := get(t, s, "/api/patients?pw=tromsø&limit=zero"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit accepted: %d", rec.Code)
	}
}

func TestTimelineJSON(t *testing.T) {
	s, _ := testServer(t, 10)
	rec := get(t, s, "/api/timeline?pw=tromsø&patient=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("timeline = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Patient uint64 `json:"patient"`
		Entries []struct {
			Kind  string `json:"kind"`
			Start string `json:"start"`
			Type  string `json:"type"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Patient != 1 {
		t.Error("wrong patient")
	}
	for _, e := range body.Entries {
		if e.Start == "" || e.Kind == "" || e.Type == "" {
			t.Fatalf("malformed entry: %+v", e)
		}
	}

	if rec := get(t, s, "/api/timeline?pw=tromsø&patient=99999"); rec.Code != http.StatusNotFound {
		t.Errorf("missing patient: %d", rec.Code)
	}
	if rec := get(t, s, "/api/timeline?pw=tromsø&patient=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad patient id: %d", rec.Code)
	}
}

func TestDetailsEndpoint(t *testing.T) {
	s, _ := testServer(t, 10)
	rec := get(t, s, "/api/details?pw=tromsø&patient=1&t=2010-06-01")
	if rec.Code != http.StatusOK {
		t.Fatalf("details = %d", rec.Code)
	}
	if rec := get(t, s, "/api/details?pw=tromsø&patient=1&t=junk"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad time accepted: %d", rec.Code)
	}
}

func TestCohortEndpoint(t *testing.T) {
	s, wb := testServer(t, 200)
	spec := `{"op":"has","pattern":"T90|E11(\\..*)?","type":"diagnosis"}`
	req := httptest.NewRequest(http.MethodPost, "/api/cohort?pw=tromsø", strings.NewReader(spec))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cohort = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Count  int      `json:"count"`
		Sample []uint64 `json:"sample"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count == 0 || len(body.Sample) == 0 {
		t.Error("empty diabetic cohort at n=200 is implausible")
	}
	if body.Count > wb.Patients() {
		t.Error("cohort bigger than population")
	}

	// Bad JSON and bad spec.
	for _, payload := range []string{"{broken", `{"op":"zzz"}`} {
		req := httptest.NewRequest(http.MethodPost, "/api/cohort?pw=tromsø", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("payload %q: %d", payload, rec.Code)
		}
	}
}

func TestTimelinePage(t *testing.T) {
	s, _ := testServer(t, 10)
	rec := get(t, s, "/timeline?pw=tromsø&patient=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("page = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "Personal health timeline", "P0000002"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := testServer(t, 10)
	rec := get(t, s, "/?pw=tromsø")
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "/timeline?patient=1") {
		t.Error("index missing timeline links")
	}
}

func TestIndicatorsEndpoint(t *testing.T) {
	s, _ := testServer(t, 150)
	// Whole population (empty body).
	req := httptest.NewRequest(http.MethodPost, "/api/indicators?pw=tromsø", strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("indicators = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Indicators struct {
			Patients   int     `json:"Patients"`
			GPContacts float64 `json:"GPContacts"`
		} `json:"indicators"`
		Table string `json:"table"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Indicators.Patients != 150 || body.Indicators.GPContacts <= 0 {
		t.Errorf("indicators = %+v", body.Indicators)
	}
	if !strings.Contains(body.Table, "per 100 patient-years") {
		t.Error("table missing")
	}

	// Cohort-scoped.
	spec := `{"op":"has","pattern":"T90|E11(\\..*)?","type":"diagnosis"}`
	req = httptest.NewRequest(http.MethodPost, "/api/indicators?pw=tromsø", strings.NewReader(spec))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("scoped indicators = %d", rec.Code)
	}
	var scoped struct {
		Indicators struct {
			Patients int `json:"Patients"`
		} `json:"indicators"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &scoped); err != nil {
		t.Fatal(err)
	}
	if scoped.Indicators.Patients == 0 || scoped.Indicators.Patients >= 150 {
		t.Errorf("scoped patients = %d", scoped.Indicators.Patients)
	}

	// Bad spec.
	req = httptest.NewRequest(http.MethodPost, "/api/indicators?pw=tromsø", strings.NewReader("{bad"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad spec = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, wb := testServer(t, 200)
	if rec := get(t, s, "/api/stats"); rec.Code != http.StatusUnauthorized {
		t.Errorf("stats open without password: %d", rec.Code)
	}

	// Run a scan-bearing cohort query so per-shard timings accumulate,
	// then once more so the plan cache registers a hit.
	spec := `{"op":"has","pattern":"K8.","minCount":2}`
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/api/cohort?pw=tromsø", strings.NewReader(spec))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("cohort = %d: %s", rec.Code, rec.Body.String())
		}
	}

	rec := get(t, s, "/api/stats?pw=tromsø")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Patients      int `json:"patients"`
		Entries       int `json:"entries"`
		DistinctCodes int `json:"distinct_codes"`
		BudgetMS      int `json:"budget_ms"`
		Shards        []struct {
			Shard    int     `json:"shard"`
			Patients int     `json:"patients"`
			Queries  uint64  `json:"queries"`
			TotalMS  float64 `json:"total_ms"`
		} `json:"shards"`
		Cache struct {
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Patients != 200 || body.Entries == 0 || body.DistinctCodes == 0 {
		t.Errorf("summary = %+v", body)
	}
	if body.BudgetMS != 100 {
		t.Errorf("budget_ms = %d", body.BudgetMS)
	}
	if len(body.Shards) != wb.Engine.NumShards() {
		t.Fatalf("shards = %d, want %d", len(body.Shards), wb.Engine.NumShards())
	}
	covered, queries := 0, uint64(0)
	for _, sh := range body.Shards {
		covered += sh.Patients
		queries += sh.Queries
	}
	if covered != 200 {
		t.Errorf("shards cover %d of 200 patients", covered)
	}
	if queries == 0 {
		t.Error("no shard recorded the scan query")
	}
	if body.Cache.Hits == 0 {
		t.Errorf("repeat query did not hit the plan cache: %+v", body.Cache)
	}
}

// TestStatsSnapshotProvenance: a workbench reopened from a sharded
// snapshot reports the snapshot's format and layout in /api/stats, and a
// workbench built from sources reports null.
func TestStatsSnapshotProvenance(t *testing.T) {
	_, wb := testServer(t, 120)
	var buf bytes.Buffer
	info, err := wb.Save(&buf, core.SnapshotOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := core.Open(&buf, wb.Window)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(reopened, DefaultConfig())

	rec := get(t, s, "/api/stats?pw=tromsø")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Snapshot *struct {
			Format   string `json:"format"`
			Version  int    `json:"version"`
			Shards   int    `json:"shards"`
			Patients int    `json:"patients"`
			Bytes    int64  `json:"bytes"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Snapshot == nil {
		t.Fatal("snapshot provenance missing for a reopened workbench")
	}
	if body.Snapshot.Format != "sharded-v3" || body.Snapshot.Shards != 4 {
		t.Errorf("snapshot = %+v", body.Snapshot)
	}
	if body.Snapshot.Patients != 120 || body.Snapshot.Bytes != info.Bytes {
		t.Errorf("snapshot = %+v, want %d patients, %d bytes", body.Snapshot, 120, info.Bytes)
	}

	// Built from sources: provenance must be null, not fabricated.
	fresh, _ := testServer(t, 20)
	rec = get(t, fresh, "/api/stats?pw=tromsø")
	var fromSources struct {
		Snapshot any `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fromSources); err != nil {
		t.Fatal(err)
	}
	if fromSources.Snapshot != nil {
		t.Errorf("source-built workbench claims snapshot provenance: %v", fromSources.Snapshot)
	}
}

func TestCohortViewPage(t *testing.T) {
	s, _ := testServer(t, 150)
	rec := get(t, s, "/cohort-view?pw=tromsø&pattern=T90%7CE11(%5C..*)%3F&rows=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("cohort view = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "<svg") || !strings.Contains(body, "patients match") {
		t.Error("cohort view malformed")
	}
	if rec := get(t, s, "/cohort-view?pw=tromsø"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing pattern accepted: %d", rec.Code)
	}
	if rec := get(t, s, "/cohort-view?pw=tromsø&pattern=("); rec.Code != http.StatusBadRequest {
		t.Errorf("bad pattern accepted: %d", rec.Code)
	}
}
