// Package webapp serves interactive personal health timelines over HTTP —
// the paper's patient-facing web deployment ("we have also used the tool to
// produce interactive personal health time-lines (for more than 10,000
// individuals) on the web", pastas.no, "sample password: tromsø"). It also
// exposes the cohort-query API the Query-Builder front end posts to.
package webapp

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"pastas/internal/core"
	"pastas/internal/engine"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/render"
	"pastas/internal/sources"
)

// Config tunes the service.
type Config struct {
	// Password gates every data endpoint (the paper's sample password is
	// "tromsø"). Empty means open access.
	Password string
	// MaxCohortSample bounds how many IDs a cohort query returns inline.
	MaxCohortSample int
}

// DefaultConfig mirrors the paper's demo deployment.
func DefaultConfig() Config {
	return Config{Password: "tromsø", MaxCohortSample: 100}
}

// Server is the HTTP service.
type Server struct {
	wb  *core.Workbench
	cfg Config
	mux *http.ServeMux
}

// NewServer builds the handler tree over a workbench.
func NewServer(wb *core.Workbench, cfg Config) *Server {
	if cfg.MaxCohortSample <= 0 {
		cfg.MaxCohortSample = 100
	}
	s := &Server{wb: wb, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/stats", s.auth(s.handleStats))
	s.mux.HandleFunc("GET /api/patients", s.auth(s.handlePatients))
	s.mux.HandleFunc("GET /api/timeline", s.auth(s.handleTimelineJSON))
	s.mux.HandleFunc("GET /api/details", s.auth(s.handleDetails))
	// POST /api/cohort is the deprecated spelling of POST
	// /api/cohorts/query — same handler, same bytes — kept so existing
	// Query-Builder deployments keep working.
	s.mux.HandleFunc("POST /api/cohort", s.auth(s.handleCohortQuery))
	s.mux.HandleFunc("GET /api/cohorts", s.auth(s.handleCohortList))
	s.mux.HandleFunc("POST /api/cohorts", s.auth(s.handleCohortSave))
	s.mux.HandleFunc("POST /api/cohorts/query", s.auth(s.handleCohortQuery))
	s.mux.HandleFunc("POST /api/cohorts/refine", s.auth(s.handleCohortRefine))
	s.mux.HandleFunc("POST /api/analytics/{kind}", s.auth(s.handleAnalytics))
	s.mux.HandleFunc("GET /api/cohorts/compare", s.auth(s.handleCohortCompare))
	s.mux.HandleFunc("GET /api/cohorts/{name}", s.auth(s.handleCohortProfile))
	s.mux.HandleFunc("DELETE /api/cohorts/{name}", s.auth(s.handleCohortDrop))
	s.mux.HandleFunc("POST /api/indicators", s.auth(s.handleIndicators))
	s.mux.HandleFunc("POST /api/ingest", s.auth(s.handleIngest))
	s.mux.HandleFunc("GET /timeline", s.auth(s.handleTimelinePage))
	s.mux.HandleFunc("GET /cohort-view", s.auth(s.handleCohortView))
	s.mux.HandleFunc("GET /{$}", s.auth(s.handleIndex))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// auth wraps a handler with the sample-password gate: password accepted
// via ?pw= or the pastas_pw cookie.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Password != "" {
			pw := r.URL.Query().Get("pw")
			if pw == "" {
				// Cookie values are ASCII-only, so the password is
				// stored URL-escaped ("tromsø" → "troms%C3%B8").
				if c, err := r.Cookie("pastas_pw"); err == nil {
					if v, err := url.QueryUnescape(c.Value); err == nil {
						pw = v
					}
				}
			}
			if pw != s.cfg.Password {
				http.Error(w, "password required (hint: the sample password)", http.StatusUnauthorized)
				return
			}
		}
		next(w, r)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"patients": s.wb.Patients(),
		"entries":  s.wb.Entries(),
	})
}

// handleStats reports the engine's per-backend evaluation timings, plan
// cache effectiveness and cardinality summary — the observability the
// paper's 0.1 s response-budget audits read. Each shard entry names the
// backend serving it ("local" or "remote(addr)"); a connected workbench
// reports its shard servers here.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type shardJSON struct {
		Shard    int     `json:"shard"`
		Offset   int     `json:"offset"`
		Patients int     `json:"patients"`
		Entries  int     `json:"entries"`
		Backend  string  `json:"backend"`
		Queries  uint64  `json:"queries"`
		TotalMS  float64 `json:"total_ms"`
		AvgMS    float64 `json:"avg_ms"`
		Failures uint64  `json:"failures,omitempty"`
		Skipped  uint64  `json:"skipped,omitempty"`
	}
	shardStats := s.wb.Engine.ShardStats()
	shards := make([]shardJSON, len(shardStats))
	backendKinds := map[string]int{}
	for i, sh := range shardStats {
		shards[i] = shardJSON{
			Shard: sh.Shard, Offset: sh.Offset, Patients: sh.Patients,
			Entries: sh.Entries, Backend: sh.Backend, Queries: sh.Queries,
			TotalMS:  float64(sh.Nanos) / 1e6,
			Failures: sh.Failures, Skipped: sh.Skipped,
		}
		if sh.Queries > 0 {
			shards[i].AvgMS = shards[i].TotalMS / float64(sh.Queries)
		}
		backendKinds[sh.Backend]++
	}
	cache := s.wb.Engine.CacheStats()
	hitRate := 0.0
	if cache.Hits+cache.Misses > 0 {
		hitRate = float64(cache.Hits) / float64(cache.Hits+cache.Misses)
	}
	// Snapshot provenance: which persisted format this workbench was
	// reopened from, if any (null when built from sources).
	var snapshot map[string]any
	if info := s.wb.Snapshot; info != nil {
		snapshot = map[string]any{
			"format":   info.Format(),
			"version":  info.Version,
			"shards":   info.Shards,
			"patients": info.Patients,
			"entries":  info.Entries,
			"bytes":    info.Bytes,
		}
	}
	// Engine statistics work for both topologies: the store's own for a
	// local workbench, the backends' merged cardinalities for a
	// connected one.
	st := s.wb.Engine.Stats()
	// Per-shard backend health: for replicated backends the per-member
	// states the health checker maintains; "degraded: true" means at
	// least one shard currently has no healthy replica.
	health := s.wb.Engine.Health()
	degraded := false
	for _, h := range health {
		if !h.Healthy {
			degraded = true
		}
	}
	// Live-ingest state: the store generation the engine is serving and
	// the cumulative append/compaction counters. Null for a connected
	// workbench, which has no local store to ingest into.
	var ingest map[string]any
	if ing, ok := s.wb.IngestStats(); ok {
		last := s.wb.Store.LastCompaction()
		ingest = map[string]any{
			"batches":         ing.Batches,
			"entries_applied": ing.EntriesApplied,
			"patients_added":  ing.PatientsAdded,
			"delta_entries":   ing.DeltaEntries,
			"delta_patients":  ing.DeltaPatients,
			"delta_lists":     ing.DeltaLists,
			"compactions":     ing.Compactions,
			"last_compaction": map[string]any{
				"entries":     last.LastEntries,
				"patients":    last.LastPatients,
				"lists":       last.LastLists,
				"duration_ms": float64(last.LastDuration.Nanoseconds()) / 1e6,
			},
		}
	}
	writeJSON(w, map[string]any{
		"patients":       st.Patients,
		"entries":        st.Entries,
		"distinct_codes": st.DistinctCodes,
		"budget_ms":      100,
		"policy":         s.wb.Engine.Policy().String(),
		"degraded":       degraded,
		"health":         health,
		"shards":         shards,
		"backends":       backendKinds,
		"snapshot":       snapshot,
		"generation":     s.wb.Engine.Generation(),
		"ingest":         ingest,
		"cache": map[string]any{
			"hits":     cache.Hits,
			"misses":   cache.Misses,
			"entries":  cache.Entries,
			"hit_rate": hitRate,
		},
	})
}

// handleIngest accepts one registry bundle as JSON and appends it to the
// live store: new persons become new patients, event records for known
// patients extend their histories, and in-flight queries keep answering
// over the pre-append generation. Responds with the post-append ingest
// counters. 409 for a workbench without a local store (connected to
// remote shards), 400 for a bundle integration rejects.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.wb.Store == nil {
		http.Error(w, "ingest requires a local store (this workbench coordinates remote shards)", http.StatusConflict)
		return
	}
	var bundle sources.Bundle
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bundle); err != nil {
		http.Error(w, fmt.Sprintf("bad bundle: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.wb.Append(&bundle); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ing, _ := s.wb.IngestStats()
	writeJSON(w, map[string]any{
		"generation":      ing.Generation,
		"batches":         ing.Batches,
		"entries_applied": ing.EntriesApplied,
		"patients_added":  ing.PatientsAdded,
		"delta_entries":   ing.DeltaEntries,
		"patients":        s.wb.Patients(),
	})
}

// maxIngestBytes bounds one POST /api/ingest body (64 MiB — roughly a
// 100k-patient bundle as JSON).
const maxIngestBytes = 64 << 20

// firstIDs resolves the first n patient IDs in collection order through
// the engine — the same bytes whether the histories are local or live in
// shard servers (only the sample's worth of IDs ever crosses the wire).
func (s *Server) firstIDs(n int) ([]model.PatientID, error) {
	bits, err := s.wb.Query(query.TrueExpr{})
	if err != nil {
		return nil, err
	}
	return s.wb.Engine.IDsOf(bits.FirstN(n))
}

func (s *Server) handlePatients(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	ids, err := s.firstIDs(limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	writeJSON(w, map[string]any{"patients": out, "total": s.wb.Patients()})
}

// entryJSON is the wire form of one entry.
type entryJSON struct {
	ID     uint64  `json:"id"`
	Kind   string  `json:"kind"`
	Start  string  `json:"start"`
	End    string  `json:"end,omitempty"`
	Source string  `json:"source"`
	Type   string  `json:"type"`
	Code   string  `json:"code,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Aux    float64 `json:"aux,omitempty"`
}

func (s *Server) patientFromQuery(w http.ResponseWriter, r *http.Request) (*model.History, bool) {
	idStr := r.URL.Query().Get("patient")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad patient id %q", idStr)
		return nil, false
	}
	// Local store or remote shard fetch behind one call; a shard-server
	// failure is a loud 502, never mistaken for a missing patient.
	h, err := s.wb.History(model.PatientID(id))
	switch {
	case err == nil:
		return h, true
	case errors.Is(err, engine.ErrNoPatient):
		httpError(w, http.StatusNotFound, "no patient %d", id)
	default:
		httpError(w, http.StatusBadGateway, "%v", err)
	}
	return nil, false
}

func (s *Server) handleTimelineJSON(w http.ResponseWriter, r *http.Request) {
	h, ok := s.patientFromQuery(w, r)
	if !ok {
		return
	}
	entries := make([]entryJSON, 0, h.Len())
	for i := range h.Entries {
		e := &h.Entries[i]
		ej := entryJSON{
			ID: e.ID, Kind: e.Kind.String(), Start: e.Start.String(),
			Source: e.Source.String(), Type: e.Type.String(),
			Value: e.Value, Aux: e.Aux,
		}
		if e.Kind == model.Interval {
			ej.End = e.End.String()
		}
		if !e.Code.IsZero() {
			ej.Code = e.Code.String()
		}
		entries = append(entries, ej)
	}
	writeJSON(w, map[string]any{
		"patient": uint64(h.Patient.ID),
		"birth":   h.Patient.Birth.String(),
		"sex":     h.Patient.Sex.String(),
		"entries": entries,
	})
}

func (s *Server) handleDetails(w http.ResponseWriter, r *http.Request) {
	h, ok := s.patientFromQuery(w, r)
	if !ok {
		return
	}
	at, err := model.ParseDate(r.URL.Query().Get("t"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad time: %v", err)
		return
	}
	writeJSON(w, map[string]any{"details": render.Details(h, at, 3*model.Day)})
}

// handleCohortQuery runs one ad-hoc cohort query — count plus an ID
// sample. Canonically POST /api/cohorts/query; also serves the
// deprecated POST /api/cohort alias.
func (s *Server) handleCohortQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.apiInvalid(w, "read body: %v", err)
		return
	}
	spec, err := query.ParseSpec(body)
	if err != nil {
		s.apiInvalid(w, "%v", err)
		return
	}
	expr, err := spec.Compile()
	if err != nil {
		s.apiInvalid(w, "%v", err)
		return
	}
	bits, status, err := s.wb.QueryStatus(expr)
	if err != nil {
		s.apiError(w, err)
		return
	}
	// Engine-side ID resolution works over remote backends too; only the
	// sample's worth of ordinals is resolved (and, for a connected
	// workbench, shipped over the wire) — the count comes off the bitset.
	count := bits.Count()
	sample, err := s.wb.Engine.IDsOf(bits.FirstN(s.cfg.MaxCohortSample))
	if err != nil {
		s.apiError(w, err)
		return
	}
	out := make([]uint64, len(sample))
	for i, id := range sample {
		out[i] = uint64(id)
	}
	resp := map[string]any{"count": count, "sample": out, "query": expr.String()}
	if inc := s.incompleteJSON(status); inc != nil {
		resp["incomplete"] = inc
	}
	writeJSON(w, resp)
}

// incompleteJSON renders a degraded operation's completeness report —
// the missing shards, the population they cover, and the incomplete
// bitmask over shard ids ('1' at position i ⇔ shard i did not answer).
// Nil when the answer is complete, so complete answers carry no field.
func (s *Server) incompleteJSON(status engine.QueryStatus) map[string]any {
	if status.Complete() {
		return nil
	}
	n := s.wb.Engine.NumShards()
	mask := status.IncompleteMask(n)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = '0'
	}
	mask.Range(func(i int) bool {
		buf[i] = '1'
		return true
	})
	return map[string]any{
		"missing_shards":   status.MissingShards,
		"missing_patients": status.MissingPatients,
		"mask":             string(buf),
	}
}

// handleIndicators computes utilization indicators for the cohort selected
// by the posted query spec (empty body or {"op":"true"} = everyone). The
// aggregation runs where the histories live: each shard backend tallies
// its slice of the cohort and the coordinator merges the partials — on a
// connected workbench nothing but fixed-size tallies crosses the wire,
// whatever the cohort size.
func (s *Server) handleIndicators(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	expr := query.Expr(query.TrueExpr{})
	if len(body) > 0 {
		spec, err := query.ParseSpec(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		expr, err = spec.Compile()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	bits, qstatus, err := s.wb.QueryStatus(expr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ind, istatus, err := s.wb.IndicatorsStatus(bits)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	// The aggregate is incomplete if either phase skipped shards: the
	// union names every shard absent from the numbers.
	status := s.mergeStatus(qstatus, istatus)
	resp := map[string]any{
		"query":      expr.String(),
		"indicators": ind,
		"table":      ind.Table(),
	}
	if inc := s.incompleteJSON(status); inc != nil {
		resp["incomplete"] = inc
	}
	writeJSON(w, resp)
}

// mergeStatus unions two completeness reports (e.g. the query's and the
// aggregation's) into one naming every shard missing from either, with
// the missing-population bound recomputed over the union.
func (s *Server) mergeStatus(a, b engine.QueryStatus) engine.QueryStatus {
	if a.Complete() {
		return b
	}
	if b.Complete() {
		return a
	}
	seen := map[int]bool{}
	out := engine.QueryStatus{}
	for _, st := range []engine.QueryStatus{a, b} {
		for _, id := range st.MissingShards {
			if !seen[id] {
				seen[id] = true
				out.MissingShards = append(out.MissingShards, id)
			}
		}
	}
	sort.Ints(out.MissingShards)
	for _, m := range s.wb.Engine.BackendInfo() {
		if seen[m.Shard] {
			out.MissingPatients += m.Patients
		}
	}
	return out
}

var pageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>body{font-family:sans-serif;margin:2em}svg{border:1px solid #ddd}</style>
</head><body>
<h1>{{.Title}}</h1>
{{.Body}}
</body></html>
`))

type pageData struct {
	Title string
	Body  template.HTML
}

func (s *Server) handleTimelinePage(w http.ResponseWriter, r *http.Request) {
	h, ok := s.patientFromQuery(w, r)
	if !ok {
		return
	}
	// The "simplified form" presented to patients: one history, enlarged,
	// with tooltips and legend.
	single := model.MustCollection(h)
	svg := render.Timeline(single, render.TimelineOptions{
		Width: 1000, Height: 220, ZoomY: 5, Tooltips: true, Legend: true,
	})
	body := fmt.Sprintf("<p>Your contacts with the health service. Hover any mark for details.</p>%s", svg)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, pageData{
		Title: "Personal health timeline — " + h.Patient.ID.String(),
		Body:  template.HTML(body), // svg is produced by our renderer, with escaped payloads
	}); err != nil {
		httpError(w, http.StatusInternalServerError, "render: %v", err)
	}
}

// handleCohortView renders the researcher-facing workbench view for a
// regex-identified cohort: ?pattern=T90|E11(\..*)? draws the first rows of
// the matching sub-collection as the Fig. 1 timeline.
func (s *Server) handleCohortView(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		httpError(w, http.StatusBadRequest, "need ?pattern=<code regex>")
		return
	}
	code, err := query.NewCode("", pattern)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	expr := query.Has{Pred: query.AllOf{query.TypeIs(model.TypeDiagnosis), code}}
	bits, err := s.wb.Query(expr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The render reads the whole sub-collection (its span sets the time
	// axis even for rows beyond MaxRows), so on a connected workbench the
	// cohort's histories ship from their shards — the ship-all path, by
	// design for a draw-the-cohort view. Cohort-wide numbers without the
	// freight belong to /api/indicators.
	col, err := s.wb.Histories(bits)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rows := 50
	if v := r.URL.Query().Get("rows"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 500 {
			rows = n
		}
	}
	svg := render.Timeline(col, render.TimelineOptions{
		MaxRows: rows, Tooltips: true, Legend: true,
	})
	body := fmt.Sprintf("<p>%d of %d patients match <code>%s</code>; first %d drawn.</p>%s",
		col.Len(), s.wb.Patients(), template.HTMLEscapeString(pattern), min(rows, col.Len()), svg)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, pageData{
		Title: "Cohort view — " + template.HTMLEscapeString(pattern),
		Body:  template.HTML(body),
	}); err != nil {
		httpError(w, http.StatusInternalServerError, "render: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	ids, err := s.firstIDs(25)
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	body := "<p>PaSTAs — patient story timelines. Sample patients:</p><ul>"
	for _, id := range ids {
		body += fmt.Sprintf(`<li><a href="/timeline?patient=%d&pw=%s">%s</a></li>`,
			uint64(id), template.URLQueryEscaper(s.cfg.Password), id)
	}
	body += "</ul>"
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, pageData{Title: "PaSTAs timelines", Body: template.HTML(body)}); err != nil {
		httpError(w, http.StatusInternalServerError, "render: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
