package webapp

// The cohort-analytics API: POST /api/analytics/{kind} runs one of the
// registered analytics over a saved cohort by name. Per-history kinds
// (mine, episodes, scenario) ride the engine's Analyze map-reduce — each
// shard tallies only its masked-in cohort members and fixed-size integer
// partials cross the wire — so a connected workbench answers byte-for-
// byte what a local one would. Clustering pages the cohort's histories
// in and runs coordinator-side. Every endpoint here (and every
// /api/cohorts* endpoint) reports failures through the shared error
// envelope written by apiError.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sort"

	"pastas/internal/abstraction"
	"pastas/internal/engine"
	"pastas/internal/mining"
	"pastas/internal/model"
	"pastas/internal/temporal"
)

// apiErrorBody is the shared JSON error envelope: a stable machine-
// readable code, the human-readable message, and — when the failure is a
// shard outage — the shards currently without a healthy backend.
type apiErrorBody struct {
	Code          string `json:"code"`
	Message       string `json:"message"`
	ShardsMissing []int  `json:"shards_missing,omitempty"`
}

// writeAPIError writes the envelope. Local and connected workbenches
// produce byte-identical envelopes for the same failure: the code and
// message depend only on the error, and shards_missing is only attached
// for outage-class failures, which a local workbench cannot have.
func (s *Server) writeAPIError(w http.ResponseWriter, status int, code, message string, shards []int) {
	body := apiErrorBody{Code: code, Message: message}
	if code == "unavailable" {
		body.ShardsMissing = shards
		// Fold in shards whose replica sets report no healthy member —
		// the outage may be wider than the one call that surfaced it.
		for _, h := range s.wb.Engine.Health() {
			if !h.Healthy && !slices.Contains(body.ShardsMissing, h.Shard) {
				body.ShardsMissing = append(body.ShardsMissing, h.Shard)
			}
		}
		sort.Ints(body.ShardsMissing)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": body})
}

// apiError classifies a workbench/engine error into the envelope: a bad
// name is invalid (400), a missing cohort no_cohort (404), an unreachable
// shard unavailable (502), anything else internal (500).
func (s *Server) apiError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, engine.ErrInvalidName):
		status, code = http.StatusBadRequest, "invalid"
	case errors.Is(err, engine.ErrNoCohort):
		status, code = http.StatusNotFound, "no_cohort"
	case engine.IsUnavailable(err):
		status, code = http.StatusBadGateway, "unavailable"
	}
	s.writeAPIError(w, status, code, err.Error(), engine.FailedShards(err))
}

// apiInvalid writes an invalid-request envelope (400) directly.
func (s *Server) apiInvalid(w http.ResponseWriter, format string, args ...any) {
	s.writeAPIError(w, http.StatusBadRequest, "invalid", fmt.Sprintf(format, args...), nil)
}

// analyticsRequest is the body of POST /api/analytics/{kind} — the union
// of every kind's parameters, keyed by the saved cohort to analyze.
type analyticsRequest struct {
	Cohort string `json:"cohort"`

	// mine
	Sequential bool    `json:"sequential"`
	MaxGap     int     `json:"max_gap"`
	System     string  `json:"system"`
	Chapter    bool    `json:"chapter"`
	MinSupport float64 `json:"min_support"`
	MinCount   int     `json:"min_count"`
	Top        int     `json:"top"`

	// episodes, scenario: episode gap in days (default 90).
	GapDays int `json:"gap_days"`

	// scenario
	Scenario *scenarioJSON `json:"scenario"`

	// cluster
	K int `json:"k"`
}

// scenarioJSON is the wire form of a temporal scenario: step labels plus
// pairwise Allen constraints with named relations ("before" or "b",
// comma-separated for a set).
type scenarioJSON struct {
	Steps     []string `json:"steps"`
	Relations []struct {
		I   int    `json:"i"`
		J   int    `json:"j"`
		Rel string `json:"rel"`
	} `json:"relations"`
}

func (sj *scenarioJSON) compile() (temporal.Scenario, error) {
	sc := temporal.Scenario{Steps: sj.Steps}
	for _, r := range sj.Relations {
		rel, err := temporal.ParseRel(r.Rel)
		if err != nil {
			return temporal.Scenario{}, err
		}
		sc.Relations = append(sc.Relations, temporal.StepRel{I: r.I, J: r.J, Rel: rel})
	}
	return sc, sc.Validate()
}

// ruleJSON is the wire form of one mined rule.
type ruleJSON struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Sequential bool    `json:"sequential"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
	CountPair  int     `json:"count_pair"`
	CountA     int     `json:"count_a"`
	CountB     int     `json:"count_b"`
	N          int     `json:"n"`
	Rule       string  `json:"rule"`
}

// handleAnalytics dispatches POST /api/analytics/{kind}.
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.apiInvalid(w, "read body: %v", err)
		return
	}
	var req analyticsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.apiInvalid(w, "bad request: %v", err)
		return
	}
	if req.Cohort == "" {
		s.apiInvalid(w, `need {"cohort": ...}`)
		return
	}
	if req.GapDays == 0 {
		req.GapDays = 90
	}
	if req.GapDays < 0 || req.MaxGap < 0 {
		s.apiInvalid(w, "gap_days and max_gap must be non-negative")
		return
	}
	gap := model.Time(req.GapDays) * model.Day

	switch kind := r.PathValue("kind"); kind {
	case "mine":
		p := engine.MineParams{
			Sequential: req.Sequential, MaxGap: req.MaxGap,
			System: req.System, Chapter: req.Chapter,
		}
		opt := mining.Options{MinSupport: req.MinSupport, MinCount: req.MinCount, MaxGap: req.MaxGap}
		rules, info, status, err := s.wb.MineRules(req.Cohort, p, opt)
		if err != nil {
			s.apiError(w, err)
			return
		}
		if req.Top > 0 {
			rules = mining.Top(rules, req.Top)
		}
		out := make([]ruleJSON, len(rules))
		for i, rl := range rules {
			out[i] = ruleJSON{
				A: rl.A, B: rl.B, Sequential: rl.Sequential,
				Support: rl.Support, Confidence: rl.Confidence, Lift: rl.Lift,
				CountPair: rl.CountPair, CountA: rl.CountA, CountB: rl.CountB,
				N: rl.N, Rule: rl.String(),
			}
		}
		resp := map[string]any{"cohort": info, "rules": out, "histories": historiesOf(rules)}
		if inc := s.incompleteJSON(status); inc != nil {
			resp["incomplete"] = inc
		}
		writeJSON(w, resp)

	case "episodes":
		tally, info, status, err := s.wb.Episodes(req.Cohort, gap)
		if err != nil {
			s.apiError(w, err)
			return
		}
		resp := map[string]any{"cohort": info, "episodes": episodesJSON(tally)}
		if inc := s.incompleteJSON(status); inc != nil {
			resp["incomplete"] = inc
		}
		writeJSON(w, resp)

	case "scenario":
		if req.Scenario == nil {
			s.apiInvalid(w, `need {"scenario": {"steps": [...], ...}}`)
			return
		}
		sc, err := req.Scenario.compile()
		if err != nil {
			s.apiInvalid(w, "%v", err)
			return
		}
		tally, info, status, err := s.wb.MatchScenario(req.Cohort, gap, sc)
		if err != nil {
			s.apiError(w, err)
			return
		}
		sj := map[string]any{
			"histories": tally.Histories,
			"bound":     tally.Bound,
			"matched":   tally.Matched,
		}
		if tally.Histories > 0 {
			sj["match_rate"] = float64(tally.Matched) / float64(tally.Histories)
		}
		resp := map[string]any{"cohort": info, "scenario": sj}
		if inc := s.incompleteJSON(status); inc != nil {
			resp["incomplete"] = inc
		}
		writeJSON(w, resp)

	case "cluster":
		if req.K == 0 {
			req.K = 2
		}
		if req.K < 1 {
			s.apiInvalid(w, "k must be at least 1, got %d", req.K)
			return
		}
		clusters, info, err := s.wb.ClusterCohort(req.Cohort, req.K)
		if err != nil {
			s.apiError(w, err)
			return
		}
		writeJSON(w, map[string]any{"cohort": info, "clusters": clusters})

	default:
		s.apiInvalid(w, "unknown analytics kind %q (want mine, episodes, scenario or cluster)", kind)
	}
}

// historiesOf reads the shared tally size off a finalized rule list (all
// rules carry the same N); 0 when no rule cleared the thresholds.
func historiesOf(rules []mining.Rule) int {
	if len(rules) == 0 {
		return 0
	}
	return rules[0].N
}

// episodesJSON renders the merged episode tally with derived means; the
// ratios are computed here, once, from the exactly-merged integers.
func episodesJSON(t *abstraction.EpisodeTally) map[string]any {
	out := map[string]any{
		"histories":     t.Histories,
		"with_episodes": t.WithEpisodes,
		"episodes":      t.Episodes,
		"entries":       t.Entries,
		"by_dominant":   t.ByDominant,
	}
	if t.Episodes > 0 {
		out["mean_entries_per_episode"] = float64(t.Entries) / float64(t.Episodes)
		out["mean_span_days"] = float64(t.SpanTotal) / float64(t.Episodes) / float64(model.Day)
	}
	return out
}
