package integrate

import (
	"strings"
	"testing"

	"pastas/internal/model"
	"pastas/internal/sources"
	"pastas/internal/synth"
)

func onePerson() []sources.Person {
	return []sources.Person{{ID: 1, BirthDate: "1950-06-01", Sex: "F", Municipality: 5001}}
}

func TestBuildBasicGPClaim(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		GPClaims: []sources.GPClaim{
			{Person: 1, Date: "2010-03-05", ICPC: "T90", Systolic: 145, Diastolic: 92, Amount: 150, Text: "kontroll"},
		},
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := col.Get(1)
	if h == nil {
		t.Fatal("patient missing")
	}
	// Contact + diagnosis + measurement.
	if h.Len() != 3 {
		t.Fatalf("entries = %d, want 3: %v", h.Len(), h.Entries)
	}
	var types []string
	for i := range h.Entries {
		types = append(types, h.Entries[i].Type.String())
	}
	joined := strings.Join(types, ",")
	for _, want := range []string{"contact", "diagnosis", "measurement"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s entry in %s", want, joined)
		}
	}
	if rep.EntriesOut != 3 || rep.Patients != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestPreBirthDropped(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		GPClaims: []sources.GPClaim{
			{Person: 1, Date: "1930-01-01", ICPC: "A04"}, // before 1950 birth
			{Person: 1, Date: "2010-01-01", ICPC: "A04"},
		},
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedPreBirth != 1 {
		t.Errorf("DroppedPreBirth = %d", rep.DroppedPreBirth)
	}
	if err := col.Validate(); err != nil {
		t.Errorf("collection invalid after pre-birth filtering: %v", err)
	}
}

func TestDuplicatesCollapsed(t *testing.T) {
	claim := sources.GPClaim{Person: 1, Date: "2010-03-05", ICPC: "K86", Text: "kontroll"}
	b := &sources.Bundle{
		Persons:  onePerson(),
		GPClaims: []sources.GPClaim{claim, claim, claim},
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicatesCollapsed != 2 {
		t.Errorf("DuplicatesCollapsed = %d", rep.DuplicatesCollapsed)
	}
	if got := col.Get(1).Count(func(e *model.Entry) bool { return e.Type == model.TypeContact }); got != 1 {
		t.Errorf("contacts after dedup = %d", got)
	}
}

func TestBPAndCodeFromText(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		GPClaims: []sources.GPClaim{
			{Person: 1, Date: "2010-03-05", ICPC: "", Text: "kontroll T90, BT 145/92"},
			{Person: 1, Date: "2010-04-05", ICPC: "", Text: "kontroll, BTT 14592"}, // typo: unrecoverable
		},
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CodesFromText != 1 {
		t.Errorf("CodesFromText = %d", rep.CodesFromText)
	}
	if rep.BPFromText != 1 {
		t.Errorf("BPFromText = %d", rep.BPFromText)
	}
	h := col.Get(1)
	m := h.First(func(e *model.Entry) bool { return e.Type == model.TypeMeasurement })
	if m == nil || m.Value != 145 || m.Aux != 92 {
		t.Errorf("extracted measurement = %v", m)
	}
	d := h.First(func(e *model.Entry) bool { return e.Type == model.TypeDiagnosis })
	if d == nil || d.Code.Value != "T90" {
		t.Errorf("extracted diagnosis = %v", d)
	}

	// With extraction disabled nothing is recovered.
	opts := DefaultOptions()
	opts.ExtractFromText = false
	col2, rep2, err := Build(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BPFromText != 0 || rep2.CodesFromText != 0 {
		t.Errorf("extraction happened while disabled: %+v", rep2)
	}
	if col2.Get(1).Count(func(e *model.Entry) bool { return e.Type == model.TypeMeasurement }) != 0 {
		t.Error("measurement created while extraction disabled")
	}
}

func TestEpisodeModes(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		Episodes: []sources.HospitalEpisode{
			{Person: 1, Admitted: "2010-03-01", Discharged: "2010-03-08", Mode: sources.ModeInpatient, MainICD: "I21.9", SecondaryICD: []string{"E11.9"}},
			{Person: 1, Admitted: "2010-05-01", Mode: sources.ModeOutpatient, MainICD: "I25"},
			{Person: 1, Admitted: "2010-06-01", Mode: sources.ModeDay, MainICD: "Z51.5"},
			{Person: 1, Admitted: "2010-07-01", Mode: "weird", MainICD: "I25"},
		},
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := col.Get(1)
	stays := h.Count(func(e *model.Entry) bool { return e.Type == model.TypeStay })
	if stays != 2 { // inpatient + day
		t.Errorf("stays = %d", stays)
	}
	contacts := h.Count(func(e *model.Entry) bool { return e.Type == model.TypeContact })
	if contacts != 1 { // outpatient
		t.Errorf("contacts = %d", contacts)
	}
	dx := h.Count(func(e *model.Entry) bool { return e.Type == model.TypeDiagnosis })
	if dx != 4 { // I21.9 + E11.9 + I25 + Z51.5
		t.Errorf("diagnoses = %d", dx)
	}
	if rep.DroppedUnparsable != 1 { // the "weird" mode
		t.Errorf("DroppedUnparsable = %d", rep.DroppedUnparsable)
	}
	stay := h.First(func(e *model.Entry) bool { return e.Type == model.TypeStay })
	if stay.Duration() != 7*model.Day {
		t.Errorf("stay duration = %v", stay.Duration())
	}
}

func TestMunicipalMergingAndOpenEnd(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		Municipal: []sources.MunicipalService{
			{Person: 1, Service: sources.ServiceHomeCare, From: "2010-01-01", To: "2010-03-01"},
			{Person: 1, Service: sources.ServiceHomeCare, From: "2010-02-01", To: "2010-05-01"}, // overlaps
			{Person: 1, Service: sources.ServiceNursing, From: "2010-06-01", To: ""},            // open
		},
		GPClaims: []sources.GPClaim{{Person: 1, Date: "2011-12-30"}}, // defines extract horizon
	}
	col, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := col.Get(1)
	services := h.Within(model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)})
	var homecare, nursing *model.Entry
	for _, e := range services {
		switch e.Type {
		case model.TypeService:
			homecare = e
		case model.TypeStay:
			nursing = e
		}
	}
	if homecare == nil || nursing == nil {
		t.Fatal("missing municipal entries")
	}
	if rep.MergedIntervals != 1 {
		t.Errorf("MergedIntervals = %d", rep.MergedIntervals)
	}
	if homecare.Start != model.Date(2010, 1, 1) || homecare.End != model.Date(2010, 5, 1) {
		t.Errorf("merged homecare = %v..%v", homecare.Start, homecare.End)
	}
	// Open interval closes one day past the latest bundle date.
	if nursing.End != model.Date(2011, 12, 31) {
		t.Errorf("open nursing end = %v", nursing.End)
	}
}

func TestUnknownPersonAndUnparsable(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		GPClaims: []sources.GPClaim{
			{Person: 99, Date: "2010-01-01"}, // unknown person
			{Person: 1, Date: "not-a-date"},  // unparsable
			{Person: 1, Date: "2010-01-01"},  // fine
		},
	}
	_, rep, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnknownPersons != 1 || rep.DroppedUnparsable != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestDuplicatePersonRejected(t *testing.T) {
	b := &sources.Bundle{
		Persons: []sources.Person{
			{ID: 1, BirthDate: "1950-06-01", Sex: "F"},
			{ID: 1, BirthDate: "1950-06-01", Sex: "F"},
		},
	}
	if _, _, err := Build(b, DefaultOptions()); err == nil {
		t.Error("duplicate person accepted")
	}
}

func TestPrescriptionsBecomeIntervals(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		Prescriptions: []sources.Prescription{
			{Person: 1, Date: "2010-01-01", ATC: "A10BA02", DurationDays: 90},
			{Person: 1, Date: "2010-02-01", ATC: "C07AB02", DurationDays: 0}, // degenerate
		},
	}
	col, _, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := col.Get(1)
	meds := 0
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Type == model.TypeMedication {
			meds++
			if e.Kind != model.Interval || e.Duration() < model.Day {
				t.Errorf("medication entry malformed: %v", e)
			}
		}
	}
	if meds != 2 {
		t.Errorf("medications = %d", meds)
	}
}

func TestEndToEndSyntheticPipeline(t *testing.T) {
	cfg := synth.DefaultConfig(300)
	bundle := synth.Generate(cfg)
	col, rep, err := Build(bundle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 300 {
		t.Fatalf("patients = %d", col.Len())
	}
	if err := col.Validate(); err != nil {
		t.Fatalf("integrated collection invalid: %v", err)
	}
	if rep.EntriesOut == 0 || rep.EntriesOut != col.TotalEntries() {
		t.Errorf("entry accounting wrong: %+v vs %d", rep, col.TotalEntries())
	}
	// The noise the generator injects must be visible in the report.
	if rep.DroppedPreBirth == 0 {
		t.Error("expected pre-birth drops from synthetic noise")
	}
	if rep.DuplicatesCollapsed == 0 {
		t.Error("expected duplicate collapses from synthetic noise")
	}
	if rep.BPFromText == 0 {
		t.Error("expected BP recovery from notes")
	}
	if !strings.Contains(rep.String(), "records -> ") {
		t.Error("report stringer broken")
	}
}

func TestHistoriesSortedAfterBuild(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(50))
	col, _, err := Build(bundle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range col.Histories() {
		for i := 1; i < len(h.Entries); i++ {
			if h.Entries[i].Start < h.Entries[i-1].Start {
				t.Fatalf("history %s not sorted", h.Patient.ID)
			}
		}
	}
}

func TestMergePeriods(t *testing.T) {
	ps := []model.Period{
		{Start: 100, End: 200},
		{Start: 150, End: 250},
		{Start: 250, End: 300}, // touching merges too
		{Start: 400, End: 500},
	}
	got := mergePeriods(ps)
	if len(got) != 2 {
		t.Fatalf("merged = %v", got)
	}
	if got[0].Start != 100 || got[0].End != 300 || got[1].Start != 400 {
		t.Errorf("merged = %v", got)
	}
	if out := mergePeriods(nil); len(out) != 0 {
		t.Error("empty merge broken")
	}
}

func TestOpenEndFlagPropagates(t *testing.T) {
	b := &sources.Bundle{
		Persons: onePerson(),
		Municipal: []sources.MunicipalService{
			{Person: 1, Service: sources.ServiceHomeCare, From: "2010-01-01", To: ""},
			{Person: 1, Service: sources.ServiceNursing, From: "2010-02-01", To: "2010-06-01"},
		},
		GPClaims: []sources.GPClaim{{Person: 1, Date: "2011-12-30"}},
	}
	col, _, err := Build(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := col.Get(1)
	var open, closed *model.Entry
	for i := range h.Entries {
		e := &h.Entries[i]
		switch e.Type {
		case model.TypeService:
			open = e
		case model.TypeStay:
			closed = e
		}
	}
	if open == nil || !open.OpenEnd {
		t.Error("still-running service must carry OpenEnd")
	}
	if closed == nil || closed.OpenEnd {
		t.Error("dated service must not carry OpenEnd")
	}
}

func TestMergeOpenPeriodsFlagPropagation(t *testing.T) {
	ps := []openPeriod{
		{Period: model.Period{Start: 0, End: 100}, open: false},
		{Period: model.Period{Start: 50, End: 300}, open: true}, // extends the tail
	}
	got := mergeOpenPeriods(ps)
	if len(got) != 1 || !got[0].open || got[0].End != 300 {
		t.Errorf("merged = %+v", got)
	}
	// Closed period extending past an open one clears the flag.
	ps = []openPeriod{
		{Period: model.Period{Start: 0, End: 100}, open: true},
		{Period: model.Period{Start: 50, End: 300}, open: false},
	}
	got = mergeOpenPeriods(ps)
	if len(got) != 1 || got[0].open {
		t.Errorf("merged = %+v", got)
	}
}
