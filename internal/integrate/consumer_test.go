package integrate

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"pastas/internal/model"
	"pastas/internal/sources"
	"pastas/internal/synth"
)

// applyBatch folds a consumer batch into a plain history map — the test
// stand-in for what the mutable store does with it.
func applyBatch(hists map[model.PatientID]*model.History, b *Batch) {
	for _, h := range b.NewPatients {
		hists[h.Patient.ID] = h
	}
	for _, u := range b.Updates {
		old := hists[u.ID]
		merged := model.NewHistory(old.Patient)
		for i := range old.Entries {
			merged.Add(old.Entries[i])
		}
		for i := range u.Entries {
			merged.Add(u.Entries[i])
		}
		merged.Sort()
		hists[u.ID] = merged
	}
}

// splitBundle partitions a bundle's event records into n round-robin
// slices while keeping all persons — and the municipal registry, whose
// overlapping-interval merge only sees one delivery at a time — in the
// first part: a crude but deterministic way to feed Build's input through
// Consume in pieces.
func splitBundle(b *sources.Bundle, n int) []*sources.Bundle {
	parts := make([]*sources.Bundle, n)
	for i := range parts {
		parts[i] = &sources.Bundle{}
	}
	parts[0].Persons = b.Persons
	parts[0].Municipal = b.Municipal
	for i, r := range b.GPClaims {
		parts[i%n].GPClaims = append(parts[i%n].GPClaims, r)
	}
	for i, r := range b.Prescriptions {
		parts[i%n].Prescriptions = append(parts[i%n].Prescriptions, r)
	}
	for i, r := range b.Episodes {
		parts[i%n].Episodes = append(parts[i%n].Episodes, r)
	}
	for i, r := range b.Specialist {
		parts[i%n].Specialist = append(parts[i%n].Specialist, r)
	}
	for i, r := range b.Physio {
		parts[i%n].Physio = append(parts[i%n].Physio, r)
	}
	return parts
}

// TestConsumerMatchesBatchBuild: consuming a bundle in pieces must
// produce the same histories (up to entry IDs) as one batch Build of the
// whole, with OpenIntervalEnd pinned so the horizon doesn't move.
func TestConsumerMatchesBatchBuild(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(60))
	opts := DefaultOptions()
	opts.OpenIntervalEnd = model.Date(2012, 6, 1)

	col, batchRep, err := Build(bundle, opts)
	if err != nil {
		t.Fatal(err)
	}

	c := NewConsumer(opts, nil, 0)
	hists := make(map[model.PatientID]*model.History)
	for _, part := range splitBundle(bundle, 3) {
		b, err := c.Consume(part)
		if err != nil {
			t.Fatal(err)
		}
		applyBatch(hists, b)
	}

	if len(hists) != col.Len() {
		t.Fatalf("incremental patients = %d, batch = %d", len(hists), col.Len())
	}
	total := c.TotalReport()
	if total.EntriesOut != batchRep.EntriesOut || total.Patients != batchRep.Patients ||
		total.DroppedPreBirth != batchRep.DroppedPreBirth || total.DuplicatesCollapsed != batchRep.DuplicatesCollapsed {
		t.Errorf("reports diverge:\nincremental %+v\nbatch       %+v", total, *batchRep)
	}
	for _, want := range col.Histories() {
		got := hists[want.Patient.ID]
		if got == nil {
			t.Fatalf("patient %d missing from incremental run", want.Patient.ID)
		}
		if got.Patient != want.Patient {
			t.Fatalf("patient %d demographics diverge", want.Patient.ID)
		}
		if len(got.Entries) != len(want.Entries) {
			t.Fatalf("patient %d: %d entries incremental, %d batch",
				want.Patient.ID, len(got.Entries), len(want.Entries))
		}
		// Entry IDs are assigned in a different order across the split, so
		// compare the ID-independent shape, order-insensitively.
		gk := entryKeys(got.Entries)
		wk := entryKeys(want.Entries)
		if !reflect.DeepEqual(gk, wk) {
			t.Fatalf("patient %d entry multisets diverge", want.Patient.ID)
		}
	}
}

// entryKeys renders each entry's ID-independent shape and sorts, so two
// runs that produced the same entries in different ID order compare equal.
func entryKeys(es []model.Entry) []string {
	out := make([]string, len(es))
	for i := range es {
		e := &es[i]
		out[i] = fmt.Sprintf("%v|%d-%d|%v|%v|%v|%g|%q",
			e.Kind, e.Start, e.End, e.Source, e.Type, e.Code, e.Value, e.Text)
	}
	sort.Strings(out)
	return out
}

// TestConsumerCrossBatchDedup: a claim re-delivered in a later bundle is
// collapsed exactly like an in-bundle duplicate.
func TestConsumerCrossBatchDedup(t *testing.T) {
	claim := sources.GPClaim{Person: 1, Date: "2010-03-05", ICPC: "T90", Amount: 150}
	c := NewConsumer(DefaultOptions(), nil, 0)
	first, err := c.Consume(&sources.Bundle{Persons: onePerson(), GPClaims: []sources.GPClaim{claim}})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.NewPatients) != 1 || first.Report.DuplicatesCollapsed != 0 {
		t.Fatalf("first batch: %+v", first.Report)
	}
	second, err := c.Consume(&sources.Bundle{GPClaims: []sources.GPClaim{claim}})
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.DuplicatesCollapsed != 1 {
		t.Errorf("cross-batch duplicate not collapsed: %+v", second.Report)
	}
	if !second.Empty() {
		t.Errorf("duplicate-only bundle produced a non-empty batch: %+v", second)
	}
}

// TestConsumerResolveFallback: events for a patient integrated before the
// consumer existed are admitted through the resolve callback and come out
// as updates, not new patients.
func TestConsumerResolveFallback(t *testing.T) {
	birth := model.Date(1950, 6, 1)
	resolve := func(person uint64) (model.Time, bool) {
		if person == 7 {
			return birth, true
		}
		return 0, false
	}
	c := NewConsumer(DefaultOptions(), resolve, 100)
	b, err := c.Consume(&sources.Bundle{GPClaims: []sources.GPClaim{
		{Person: 7, Date: "2011-01-10", ICPC: "K86", Amount: 120},
		{Person: 8, Date: "2011-01-10", ICPC: "K86", Amount: 120}, // unknown everywhere
		{Person: 7, Date: "1940-01-01", ICPC: "K86", Amount: 120}, // pre-birth
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.NewPatients) != 0 || len(b.Updates) != 1 || b.Updates[0].ID != 7 {
		t.Fatalf("batch shape: %+v", b)
	}
	if b.Report.UnknownPersons != 1 || b.Report.DroppedPreBirth != 1 {
		t.Errorf("report: %+v", b.Report)
	}
	for _, e := range b.Updates[0].Entries {
		if e.ID < 100 {
			t.Errorf("entry ID %d below the seeded counter", e.ID)
		}
	}
}

// TestConsumerRejectsReintegratedPerson: a person record for an
// already-known patient fails the bundle, whether known to the consumer
// itself or only to the pre-existing store via resolve.
func TestConsumerRejectsReintegratedPerson(t *testing.T) {
	c := NewConsumer(DefaultOptions(), nil, 0)
	if _, err := c.Consume(&sources.Bundle{Persons: onePerson()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Consume(&sources.Bundle{Persons: onePerson()}); err == nil {
		t.Error("re-delivered person accepted")
	}

	resolve := func(person uint64) (model.Time, bool) { return model.Date(1950, 6, 1), person == 1 }
	c2 := NewConsumer(DefaultOptions(), resolve, 0)
	if _, err := c2.Consume(&sources.Bundle{Persons: onePerson()}); err == nil {
		t.Error("person known to the base store accepted as new")
	}
}
