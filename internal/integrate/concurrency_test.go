package integrate

import (
	"testing"

	"pastas/internal/synth"
)

// TestBuildDeterministicAcrossConcurrency: the concurrent staging pipeline
// must produce byte-for-byte the same collection, entry IDs and report as
// the serial one, whatever the worker count.
func TestBuildDeterministicAcrossConcurrency(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(400))

	serialOpts := DefaultOptions()
	serialOpts.Concurrency = 1
	wantCol, wantRep, err := Build(bundle, serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 6, 16} {
		opts := DefaultOptions()
		opts.Concurrency = workers
		col, rep, err := Build(bundle, opts)
		if err != nil {
			t.Fatalf("concurrency %d: %v", workers, err)
		}
		if *rep != *wantRep {
			t.Fatalf("concurrency %d: report diverged\n got %s\nwant %s", workers, rep, wantRep)
		}
		if col.Len() != wantCol.Len() {
			t.Fatalf("concurrency %d: %d patients, want %d", workers, col.Len(), wantCol.Len())
		}
		for i := 0; i < col.Len(); i++ {
			got, want := col.At(i), wantCol.At(i)
			if got.Patient != want.Patient {
				t.Fatalf("concurrency %d: patient %d demographics diverged", workers, i)
			}
			if len(got.Entries) != len(want.Entries) {
				t.Fatalf("concurrency %d: patient %s has %d entries, want %d",
					workers, got.Patient.ID, len(got.Entries), len(want.Entries))
			}
			for j := range got.Entries {
				if got.Entries[j] != want.Entries[j] {
					t.Fatalf("concurrency %d: patient %s entry %d diverged:\n got %+v\nwant %+v",
						workers, got.Patient.ID, j, got.Entries[j], want.Entries[j])
				}
			}
		}
	}
}

// TestBuildEmptyBundle: a demographic-only bundle still produces one empty
// history per person under the concurrent pipeline.
func TestBuildEmptyBundle(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(5))
	bundle.GPClaims = nil
	bundle.Prescriptions = nil
	bundle.Episodes = nil
	bundle.Municipal = nil
	bundle.Specialist = nil
	bundle.Physio = nil
	col, rep, err := Build(bundle, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 5 || rep.EntriesOut != 0 {
		t.Errorf("got %d patients, %d entries", col.Len(), rep.EntriesOut)
	}
}
