package integrate

// Incremental integration. Build is a batch pipeline: one bundle in, one
// collection out. A live workbench instead receives follow-on extracts —
// new patients plus new events for patients it already holds — and must
// fold them in under exactly the rules Build enforces: linkage on the
// person number, the pre-birth drop, duplicate-claim collapsing, the
// interval derivations. Consumer is that re-cast: it keeps the linkage
// state (birth dates, dedup fingerprints, the next entry ID) across
// calls, and each Consume turns one bundle into a Batch of new histories
// and per-patient entry appends that a mutable store can apply.
//
// Determinism carries over from Build: the registries stage in the same
// fixed order and entry IDs are assigned sequentially during the merge,
// so consuming the same bundles in the same order always produces the
// same batches. Staging is sequential here (batches are small next to an
// initial load, and the persistent dedup maps and the birth-date resolver
// are single-threaded state); Build keeps its concurrent staging.

import (
	"fmt"
	"sort"

	"pastas/internal/model"
	"pastas/internal/sources"
)

// Update is the increment for one already-integrated patient: the entries
// a consumed bundle adds to its history. Entries are in staging order,
// not chronological order; the applier is expected to merge-and-sort.
type Update struct {
	ID      model.PatientID
	Entries []model.Entry
}

// Batch is the integrated form of one consumed bundle.
type Batch struct {
	// NewPatients are the histories of persons first seen in this bundle,
	// sorted by patient ID ascending, each already sorted chronologically.
	NewPatients []*model.History
	// Updates are the appends for previously-known patients, sorted by
	// patient ID ascending.
	Updates []Update
	// Report accounts for this bundle alone.
	Report Report
}

// Empty reports whether the batch carries nothing to apply.
func (b *Batch) Empty() bool { return len(b.NewPatients) == 0 && len(b.Updates) == 0 }

// Consumer integrates a stream of bundles incrementally.
type Consumer struct {
	opts   Options
	ctx    *stageCtx
	nextID uint64
	total  Report
}

// NewConsumer returns a consumer whose linkage state starts from an
// existing population: resolve answers the birth date of any patient
// integrated before this consumer existed (nil when starting empty), and
// nextEntryID seeds ID assignment — one past the highest entry ID already
// in use, or 1 on an empty store. Options follow Build's semantics;
// OpenIntervalEnd of zero closes open intervals at one day past the
// latest date of each consumed bundle (so the horizon moves with the
// feed — pin it explicitly when batch/incremental runs must agree).
func NewConsumer(opts Options, resolve func(uint64) (model.Time, bool), nextEntryID uint64) *Consumer {
	if nextEntryID == 0 {
		nextEntryID = 1
	}
	return &Consumer{
		opts: opts,
		ctx: &stageCtx{
			opts:    opts,
			birthOf: make(map[uint64]model.Time),
			resolve: resolve,
			seenGP:  make(map[string]bool),
			seenSp:  make(map[string]bool),
		},
		nextID: nextEntryID,
	}
}

// NextEntryID returns the ID the next staged entry will be assigned.
func (c *Consumer) NextEntryID() uint64 { return c.nextID }

// TotalReport returns the accumulated report over every consumed bundle.
func (c *Consumer) TotalReport() Report { return c.total }

// Consume integrates one bundle. A person record for an already-known
// patient is a linkage conflict and fails the whole bundle (nothing is
// recorded); event records for unknown persons are counted and dropped,
// exactly as in Build.
func (c *Consumer) Consume(b *sources.Bundle) (*Batch, error) {
	rep := Report{RecordsIn: b.TotalRecords()}

	newPatients := make(map[uint64]*model.History)
	var order []uint64
	for i := range b.Persons {
		p := &b.Persons[i]
		h, birth, err := personHistory(p)
		if err != nil {
			rep.DroppedUnparsable++
			continue
		}
		if _, dup := newPatients[p.ID]; dup {
			return nil, fmt.Errorf("integrate: duplicate person %d in demographic extract", p.ID)
		}
		if _, known := c.ctx.birthOf[p.ID]; known {
			return nil, fmt.Errorf("integrate: person %d already integrated", p.ID)
		}
		if c.ctx.resolve != nil {
			if _, known := c.ctx.resolve(p.ID); known {
				return nil, fmt.Errorf("integrate: person %d already integrated", p.ID)
			}
		}
		c.ctx.birthOf[p.ID] = birth
		newPatients[p.ID] = h
		order = append(order, p.ID)
	}

	openEnd := c.opts.OpenIntervalEnd
	if !openEnd.Valid() || openEnd == 0 {
		openEnd = latestDate(b).AddDays(1)
	}
	c.ctx.openEnd = openEnd

	// Same fixed registry order as Build; sequential because the ctx
	// carries mutable cross-batch state.
	results := []sourceResult{
		c.ctx.stageGPClaims(b.GPClaims),
		c.ctx.stagePrescriptions(b.Prescriptions),
		c.ctx.stageEpisodes(b.Episodes),
		c.ctx.stageMunicipal(b.Municipal),
		c.ctx.stageSpecialist(b.Specialist),
		c.ctx.stagePhysio(b.Physio),
	}

	updates := make(map[uint64][]model.Entry)
	var updateOrder []uint64
	for _, res := range results {
		rep.add(res.rep)
		for _, st := range res.staged {
			e := st.entry
			e.ID = c.nextID
			c.nextID++
			rep.EntriesOut++
			if h, isNew := newPatients[st.person]; isNew {
				h.Add(e)
				continue
			}
			if _, seen := updates[st.person]; !seen {
				updateOrder = append(updateOrder, st.person)
			}
			updates[st.person] = append(updates[st.person], e)
		}
	}
	rep.Patients = len(newPatients)

	out := &Batch{Report: rep}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		h := newPatients[id]
		h.Sort()
		out.NewPatients = append(out.NewPatients, h)
	}
	sort.Slice(updateOrder, func(i, j int) bool { return updateOrder[i] < updateOrder[j] })
	for _, id := range updateOrder {
		out.Updates = append(out.Updates, Update{ID: model.PatientID(id), Entries: updates[id]})
	}

	c.total.RecordsIn += rep.RecordsIn
	c.total.EntriesOut += rep.EntriesOut
	c.total.Patients += rep.Patients
	c.total.add(rep)
	return out, nil
}
