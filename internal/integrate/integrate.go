// Package integrate aggregates the heterogeneous registry extracts into
// unified per-patient trajectories — the paper's "integrates multiple,
// heterogeneous clinical data sources ... in a common workbench".
//
// Responsibilities: record linkage on the person number, date
// normalization, collapsing duplicate claims, dropping entries "with a
// clearly invalid date (prior to the birth of the patient)", recovering
// structure from free text with the limited regex extraction the paper
// describes, and deriving interval entries (stays, services, medication
// periods) alongside point events.
//
// The six registries are independent once the demographic extract is
// loaded, so Build stages them concurrently: each source is parsed,
// deduplicated and validated in its own goroutine into an ordered list of
// staged entries, then the staged lists merge serially in fixed registry
// order. Entry IDs are assigned during the merge, so the output —
// collection, entry IDs and report — is byte-for-byte identical whatever
// the concurrency level.
package integrate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pastas/internal/model"
	"pastas/internal/sources"
)

// Options tunes the integration pipeline.
type Options struct {
	// ExtractFromText enables regex recovery of blood pressures and
	// inline ICPC codes from GP notes (on by default via DefaultOptions).
	ExtractFromText bool
	// MergeOverlappingServices collapses overlapping municipal service
	// intervals of the same kind into one.
	MergeOverlappingServices bool
	// OpenIntervalEnd closes still-running service intervals (empty To
	// field). Zero means: one day past the latest date seen in the bundle.
	OpenIntervalEnd model.Time
	// Concurrency bounds how many registries stage at once: 0 means
	// GOMAXPROCS, 1 forces the serial pipeline (the ingest benchmark's
	// baseline). Output is identical at any setting.
	Concurrency int
}

// DefaultOptions returns the standard pipeline configuration.
func DefaultOptions() Options {
	return Options{ExtractFromText: true, MergeOverlappingServices: true}
}

// Report accounts for every record consumed and entry produced; the
// recognition survey (experiment E2) reads its error rates.
type Report struct {
	RecordsIn           int
	EntriesOut          int
	Patients            int
	DroppedPreBirth     int
	DroppedUnparsable   int
	DuplicatesCollapsed int
	MergedIntervals     int
	BPFromText          int
	CodesFromText       int
	UnknownPersons      int
}

func (r *Report) String() string {
	return fmt.Sprintf("integrate: %d records -> %d entries for %d patients (pre-birth %d, unparsable %d, duplicates %d, merged intervals %d, BP from text %d, codes from text %d, unknown persons %d)",
		r.RecordsIn, r.EntriesOut, r.Patients, r.DroppedPreBirth, r.DroppedUnparsable,
		r.DuplicatesCollapsed, r.MergedIntervals, r.BPFromText, r.CodesFromText, r.UnknownPersons)
}

// add accumulates a per-source report delta.
func (r *Report) add(d Report) {
	r.DroppedPreBirth += d.DroppedPreBirth
	r.DroppedUnparsable += d.DroppedUnparsable
	r.DuplicatesCollapsed += d.DuplicatesCollapsed
	r.MergedIntervals += d.MergedIntervals
	r.BPFromText += d.BPFromText
	r.CodesFromText += d.CodesFromText
	r.UnknownPersons += d.UnknownPersons
}

// staged is one validated entry awaiting its ID and its history append.
type staged struct {
	person uint64
	entry  model.Entry // ID assigned at merge time
}

// sourceResult is one registry's staging output.
type sourceResult struct {
	staged []staged
	rep    Report
}

// stageCtx is the context the stagers share. Build uses it read-only, so
// the six registries can stage concurrently. The incremental Consumer
// reuses one stageCtx across batches and sets the mutable extensions —
// persistent dedup maps (seenGP, seenSp) so a claim repeated in a later
// batch still collapses, and a resolve fallback that looks up birth dates
// of patients integrated before this consumer existed (cached into
// birthOf on first hit). A ctx with resolve set or persistent dedup maps
// must stage sequentially; Build leaves them nil.
type stageCtx struct {
	opts    Options
	openEnd model.Time
	birthOf map[uint64]model.Time
	resolve func(uint64) (model.Time, bool)
	seenGP  map[string]bool
	seenSp  map[string]bool
}

// admit validates linkage and the pre-birth rule.
func (c *stageCtx) admit(person uint64, t model.Time, rep *Report) bool {
	birth, ok := c.birthOf[person]
	if !ok && c.resolve != nil {
		if b, found := c.resolve(person); found {
			birth, ok = b, true
			c.birthOf[person] = b
		}
	}
	if !ok {
		rep.UnknownPersons++
		return false
	}
	if t < birth {
		rep.DroppedPreBirth++
		return false
	}
	return true
}

// Build runs the pipeline over a bundle.
func Build(b *sources.Bundle, opts Options) (*model.Collection, *Report, error) {
	report := Report{RecordsIn: b.TotalRecords()}
	patients, order, birthOf, err := loadPersons(b.Persons, &report)
	if err != nil {
		return nil, nil, err
	}

	openEnd := opts.OpenIntervalEnd
	if !openEnd.Valid() || openEnd == 0 {
		openEnd = latestDate(b).AddDays(1)
	}
	ctx := &stageCtx{opts: opts, openEnd: openEnd, birthOf: birthOf}

	// Stage the six registries concurrently; the slice order fixes the
	// merge order (and therefore entry IDs) regardless of which stager
	// finishes first.
	stagers := []func() sourceResult{
		func() sourceResult { return ctx.stageGPClaims(b.GPClaims) },
		func() sourceResult { return ctx.stagePrescriptions(b.Prescriptions) },
		func() sourceResult { return ctx.stageEpisodes(b.Episodes) },
		func() sourceResult { return ctx.stageMunicipal(b.Municipal) },
		func() sourceResult { return ctx.stageSpecialist(b.Specialist) },
		func() sourceResult { return ctx.stagePhysio(b.Physio) },
	}
	results := make([]sourceResult, len(stagers))
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, stage := range stagers {
			wg.Add(1)
			go func(i int, stage func() sourceResult) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = stage()
			}(i, stage)
		}
		wg.Wait()
	} else {
		for i, stage := range stagers {
			results[i] = stage()
		}
	}

	// Deterministic merge: fixed registry order, sequential ID assignment.
	nextID := uint64(1)
	for _, res := range results {
		report.add(res.rep)
		for _, st := range res.staged {
			e := st.entry
			e.ID = nextID
			nextID++
			patients[st.person].Add(e)
		}
	}

	col := &model.Collection{}
	ids := make([]uint64, 0, len(patients))
	ids = append(ids, order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := patients[id]
		h.Sort()
		if err := col.Add(h); err != nil {
			return nil, nil, fmt.Errorf("integrate: %w", err)
		}
		report.EntriesOut += h.Len()
	}
	report.Patients = col.Len()
	return col, &report, nil
}

// loadPersons builds the demographic skeleton: one empty history per
// person, plus the birth-date map the stagers validate against.
func loadPersons(ps []sources.Person, rep *Report) (map[uint64]*model.History, []uint64, map[uint64]model.Time, error) {
	patients := make(map[uint64]*model.History, len(ps))
	birthOf := make(map[uint64]model.Time, len(ps))
	var order []uint64
	for i := range ps {
		p := &ps[i]
		h, birth, err := personHistory(p)
		if err != nil {
			rep.DroppedUnparsable++
			continue
		}
		if _, dup := patients[p.ID]; dup {
			return nil, nil, nil, fmt.Errorf("integrate: duplicate person %d in demographic extract", p.ID)
		}
		patients[p.ID] = h
		birthOf[p.ID] = birth
		order = append(order, p.ID)
	}
	return patients, order, birthOf, nil
}

// personHistory parses one demographic record into an empty history; the
// single place the person → patient mapping rules live, shared by the
// batch Build and the incremental Consumer.
func personHistory(p *sources.Person) (*model.History, model.Time, error) {
	birth, err := model.ParseDate(p.BirthDate)
	if err != nil {
		return nil, 0, err
	}
	sex := model.SexUnknown
	switch p.Sex {
	case "F":
		sex = model.SexFemale
	case "M":
		sex = model.SexMale
	}
	h := model.NewHistory(model.Patient{
		ID:           model.PatientID(p.ID),
		Birth:        birth,
		Sex:          sex,
		Municipality: p.Municipality,
	})
	return h, birth, nil
}

func (c *stageCtx) stageGPClaims(claims []sources.GPClaim) sourceResult {
	var res sourceResult
	seen := c.seenGP
	if seen == nil {
		seen = make(map[string]bool)
	}
	for i := range claims {
		cl := &claims[i]
		t, err := model.ParseDate(cl.Date)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		key := fmt.Sprintf("gp|%d|%s|%s|%v|%s", cl.Person, cl.Date, cl.ICPC, cl.Emergency, cl.Text)
		if seen[key] {
			res.rep.DuplicatesCollapsed++
			continue
		}
		seen[key] = true

		if !c.admit(cl.Person, t, &res.rep) {
			continue
		}

		src := model.SourceGP
		res.staged = append(res.staged, staged{cl.Person, model.Entry{
			Kind: model.Point, Start: t, End: t,
			Source: src, Type: model.TypeContact,
			Value: cl.Amount, Text: cl.Text,
		}})

		code := cl.ICPC
		if code == "" && c.opts.ExtractFromText {
			if m := sources.ExtractICPCMention(cl.Text); m != "" {
				code = m
				res.rep.CodesFromText++
			}
		}
		if code != "" {
			res.staged = append(res.staged, staged{cl.Person, model.Entry{
				Kind: model.Point, Start: t, End: t,
				Source: src, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICPC2", Value: code},
			}})
		}

		sys, dia := cl.Systolic, cl.Diastolic
		if sys == 0 && c.opts.ExtractFromText {
			if s, d, ok := sources.ExtractBP(cl.Text); ok {
				sys, dia = s, d
				res.rep.BPFromText++
			}
		}
		if sys > 0 {
			res.staged = append(res.staged, staged{cl.Person, model.Entry{
				Kind: model.Point, Start: t, End: t,
				Source: src, Type: model.TypeMeasurement,
				Value: float64(sys), Aux: float64(dia),
			}})
		}
	}
	return res
}

func (c *stageCtx) stagePrescriptions(rxs []sources.Prescription) sourceResult {
	var res sourceResult
	for i := range rxs {
		rx := &rxs[i]
		t, err := model.ParseDate(rx.Date)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		if !c.admit(rx.Person, t, &res.rep) {
			continue
		}
		days := rx.DurationDays
		if days <= 0 {
			days = 1
		}
		res.staged = append(res.staged, staged{rx.Person, model.Entry{
			Kind: model.Interval, Start: t, End: t.AddDays(days),
			Source: model.SourceGP, Type: model.TypeMedication,
			Code: model.Code{System: "ATC", Value: rx.ATC},
		}})
	}
	return res
}

func (c *stageCtx) stageEpisodes(eps []sources.HospitalEpisode) sourceResult {
	var res sourceResult
	for i := range eps {
		e := &eps[i]
		start, err := model.ParseDate(e.Admitted)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		if !c.admit(e.Person, start, &res.rep) {
			continue
		}

		switch e.Mode {
		case sources.ModeInpatient, sources.ModeDay:
			end := start.AddDays(1)
			if e.Discharged != "" {
				d, err := model.ParseDate(e.Discharged)
				if err != nil {
					res.rep.DroppedUnparsable++
					continue
				}
				if d > start {
					end = d
				}
			}
			res.staged = append(res.staged, staged{e.Person, model.Entry{
				Kind: model.Interval, Start: start, End: end,
				Source: model.SourceHospital, Type: model.TypeStay,
				Code: model.Code{System: "ICD10", Value: e.MainICD},
			}})
		case sources.ModeOutpatient:
			res.staged = append(res.staged, staged{e.Person, model.Entry{
				Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeContact,
			}})
		default:
			res.rep.DroppedUnparsable++
			continue
		}

		if e.MainICD != "" {
			res.staged = append(res.staged, staged{e.Person, model.Entry{
				Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: e.MainICD},
			}})
		}
		for _, sec := range e.SecondaryICD {
			res.staged = append(res.staged, staged{e.Person, model.Entry{
				Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: sec},
			}})
		}
	}
	return res
}

func (c *stageCtx) stageMunicipal(svcs []sources.MunicipalService) sourceResult {
	var res sourceResult
	// Group per person+service so overlapping decisions can merge.
	type key struct {
		person  uint64
		service string
	}
	grouped := make(map[key][]openPeriod)
	for i := range svcs {
		s := &svcs[i]
		from, err := model.ParseDate(s.From)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		to := c.openEnd
		open := s.To == ""
		if !open {
			to, err = model.ParseDate(s.To)
			if err != nil {
				res.rep.DroppedUnparsable++
				continue
			}
		}
		if to <= from {
			to = from.AddDays(1)
		}
		grouped[key{s.Person, s.Service}] = append(grouped[key{s.Person, s.Service}],
			openPeriod{Period: model.Period{Start: from, End: to}, open: open})
	}

	// Deterministic iteration order.
	keys := make([]key, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].person != keys[j].person {
			return keys[i].person < keys[j].person
		}
		return keys[i].service < keys[j].service
	})

	for _, k := range keys {
		periods := grouped[k]
		if c.opts.MergeOverlappingServices {
			merged := mergeOpenPeriods(periods)
			res.rep.MergedIntervals += len(periods) - len(merged)
			periods = merged
		}
		typ := model.TypeService
		if k.service == sources.ServiceNursing {
			typ = model.TypeStay
		}
		for _, p := range periods {
			if !c.admit(k.person, p.Start, &res.rep) {
				continue
			}
			res.staged = append(res.staged, staged{k.person, model.Entry{
				Kind: model.Interval, Start: p.Start, End: p.End,
				Source: model.SourceMunicipal, Type: typ,
				Text: k.service, OpenEnd: p.open,
			}})
		}
	}
	return res
}

// openPeriod is a period whose end may be the extract horizon rather than
// a recorded date.
type openPeriod struct {
	model.Period
	open bool
}

// mergeOpenPeriods merges overlapping or touching periods, propagating the
// open-end flag when the merged tail came from an open record.
func mergeOpenPeriods(ps []openPeriod) []openPeriod {
	if len(ps) <= 1 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.Start <= last.End {
			if p.End > last.End {
				last.End = p.End
				last.open = p.open
			} else if p.End == last.End && p.open {
				last.open = true
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

func (c *stageCtx) stageSpecialist(claims []sources.SpecialistClaim) sourceResult {
	var res sourceResult
	seen := c.seenSp
	if seen == nil {
		seen = make(map[string]bool)
	}
	for i := range claims {
		cl := &claims[i]
		t, err := model.ParseDate(cl.Date)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		key := fmt.Sprintf("sp|%d|%s|%s|%s", cl.Person, cl.Date, cl.ICD, cl.Specialty)
		if seen[key] {
			res.rep.DuplicatesCollapsed++
			continue
		}
		seen[key] = true
		if !c.admit(cl.Person, t, &res.rep) {
			continue
		}
		res.staged = append(res.staged, staged{cl.Person, model.Entry{
			Kind: model.Point, Start: t, End: t,
			Source: model.SourceSpecialist, Type: model.TypeContact,
			Text: cl.Specialty,
		}})
		if cl.ICD != "" {
			res.staged = append(res.staged, staged{cl.Person, model.Entry{
				Kind: model.Point, Start: t, End: t,
				Source: model.SourceSpecialist, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: cl.ICD},
			}})
		}
	}
	return res
}

func (c *stageCtx) stagePhysio(claims []sources.PhysioClaim) sourceResult {
	var res sourceResult
	for i := range claims {
		cl := &claims[i]
		t, err := model.ParseDate(cl.Date)
		if err != nil {
			res.rep.DroppedUnparsable++
			continue
		}
		if !c.admit(cl.Person, t, &res.rep) {
			continue
		}
		res.staged = append(res.staged, staged{cl.Person, model.Entry{
			Kind: model.Point, Start: t, End: t,
			Source: model.SourcePhysio, Type: model.TypeContact,
			Value: float64(cl.Sessions),
		}})
		if cl.ICPC != "" {
			res.staged = append(res.staged, staged{cl.Person, model.Entry{
				Kind: model.Point, Start: t, End: t,
				Source: model.SourcePhysio, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICPC2", Value: cl.ICPC},
			}})
		}
	}
	return res
}

// mergePeriods merges overlapping or touching periods.
func mergePeriods(ps []model.Period) []model.Period {
	if len(ps) <= 1 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.Start <= last.End {
			if p.End > last.End {
				last.End = p.End
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// latestDate scans the bundle for the latest parsable date; used to close
// still-open service intervals.
func latestDate(b *sources.Bundle) model.Time {
	latest := model.Time(0)
	consider := func(s string) {
		if s == "" {
			return
		}
		if t, err := model.ParseDate(s); err == nil && t > latest {
			latest = t
		}
	}
	for i := range b.GPClaims {
		consider(b.GPClaims[i].Date)
	}
	for i := range b.Prescriptions {
		consider(b.Prescriptions[i].Date)
	}
	for i := range b.Episodes {
		consider(b.Episodes[i].Admitted)
		consider(b.Episodes[i].Discharged)
	}
	for i := range b.Municipal {
		consider(b.Municipal[i].From)
		consider(b.Municipal[i].To)
	}
	for i := range b.Specialist {
		consider(b.Specialist[i].Date)
	}
	for i := range b.Physio {
		consider(b.Physio[i].Date)
	}
	return latest
}
