// Package integrate aggregates the heterogeneous registry extracts into
// unified per-patient trajectories — the paper's "integrates multiple,
// heterogeneous clinical data sources ... in a common workbench".
//
// Responsibilities: record linkage on the person number, date
// normalization, collapsing duplicate claims, dropping entries "with a
// clearly invalid date (prior to the birth of the patient)", recovering
// structure from free text with the limited regex extraction the paper
// describes, and deriving interval entries (stays, services, medication
// periods) alongside point events.
package integrate

import (
	"fmt"
	"sort"

	"pastas/internal/model"
	"pastas/internal/sources"
)

// Options tunes the integration pipeline.
type Options struct {
	// ExtractFromText enables regex recovery of blood pressures and
	// inline ICPC codes from GP notes (on by default via DefaultOptions).
	ExtractFromText bool
	// MergeOverlappingServices collapses overlapping municipal service
	// intervals of the same kind into one.
	MergeOverlappingServices bool
	// OpenIntervalEnd closes still-running service intervals (empty To
	// field). Zero means: one day past the latest date seen in the bundle.
	OpenIntervalEnd model.Time
}

// DefaultOptions returns the standard pipeline configuration.
func DefaultOptions() Options {
	return Options{ExtractFromText: true, MergeOverlappingServices: true}
}

// Report accounts for every record consumed and entry produced; the
// recognition survey (experiment E2) reads its error rates.
type Report struct {
	RecordsIn           int
	EntriesOut          int
	Patients            int
	DroppedPreBirth     int
	DroppedUnparsable   int
	DuplicatesCollapsed int
	MergedIntervals     int
	BPFromText          int
	CodesFromText       int
	UnknownPersons      int
}

func (r *Report) String() string {
	return fmt.Sprintf("integrate: %d records -> %d entries for %d patients (pre-birth %d, unparsable %d, duplicates %d, merged intervals %d, BP from text %d, codes from text %d, unknown persons %d)",
		r.RecordsIn, r.EntriesOut, r.Patients, r.DroppedPreBirth, r.DroppedUnparsable,
		r.DuplicatesCollapsed, r.MergedIntervals, r.BPFromText, r.CodesFromText, r.UnknownPersons)
}

// builder carries pipeline state.
type builder struct {
	opts      Options
	report    Report
	patients  map[uint64]*model.History
	seen      map[string]bool // duplicate-claim keys
	nextID    uint64
	openEnd   model.Time
	birthOf   map[uint64]model.Time
	patientID []uint64 // insertion order of persons
}

// Build runs the pipeline over a bundle.
func Build(b *sources.Bundle, opts Options) (*model.Collection, *Report, error) {
	bl := &builder{
		opts:     opts,
		patients: make(map[uint64]*model.History, len(b.Persons)),
		seen:     make(map[string]bool),
		birthOf:  make(map[uint64]model.Time, len(b.Persons)),
		nextID:   1,
	}
	bl.report.RecordsIn = b.TotalRecords()

	if err := bl.loadPersons(b.Persons); err != nil {
		return nil, nil, err
	}
	bl.openEnd = opts.OpenIntervalEnd
	if !bl.openEnd.Valid() || bl.openEnd == 0 {
		bl.openEnd = latestDate(b).AddDays(1)
	}

	bl.loadGPClaims(b.GPClaims)
	bl.loadPrescriptions(b.Prescriptions)
	bl.loadEpisodes(b.Episodes)
	bl.loadMunicipal(b.Municipal)
	bl.loadSpecialist(b.Specialist)
	bl.loadPhysio(b.Physio)

	col := &model.Collection{}
	ids := make([]uint64, 0, len(bl.patients))
	ids = append(ids, bl.patientID...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := bl.patients[id]
		h.Sort()
		if err := col.Add(h); err != nil {
			return nil, nil, fmt.Errorf("integrate: %w", err)
		}
		bl.report.EntriesOut += h.Len()
	}
	bl.report.Patients = col.Len()
	return col, &bl.report, nil
}

func (bl *builder) loadPersons(ps []sources.Person) error {
	for i := range ps {
		p := &ps[i]
		birth, err := model.ParseDate(p.BirthDate)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		if _, dup := bl.patients[p.ID]; dup {
			return fmt.Errorf("integrate: duplicate person %d in demographic extract", p.ID)
		}
		sex := model.SexUnknown
		switch p.Sex {
		case "F":
			sex = model.SexFemale
		case "M":
			sex = model.SexMale
		}
		h := model.NewHistory(model.Patient{
			ID:           model.PatientID(p.ID),
			Birth:        birth,
			Sex:          sex,
			Municipality: p.Municipality,
		})
		bl.patients[p.ID] = h
		bl.birthOf[p.ID] = birth
		bl.patientID = append(bl.patientID, p.ID)
	}
	return nil
}

// admit validates linkage and the pre-birth rule; returns the history to
// append to, or nil when the record must be dropped.
func (bl *builder) admit(person uint64, t model.Time) *model.History {
	h, ok := bl.patients[person]
	if !ok {
		bl.report.UnknownPersons++
		return nil
	}
	if t < bl.birthOf[person] {
		bl.report.DroppedPreBirth++
		return nil
	}
	return h
}

func (bl *builder) id() uint64 {
	id := bl.nextID
	bl.nextID++
	return id
}

func (bl *builder) loadGPClaims(claims []sources.GPClaim) {
	for i := range claims {
		c := &claims[i]
		t, err := model.ParseDate(c.Date)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		key := fmt.Sprintf("gp|%d|%s|%s|%v|%s", c.Person, c.Date, c.ICPC, c.Emergency, c.Text)
		if bl.seen[key] {
			bl.report.DuplicatesCollapsed++
			continue
		}
		bl.seen[key] = true

		h := bl.admit(c.Person, t)
		if h == nil {
			continue
		}

		src := model.SourceGP
		h.Add(model.Entry{
			ID: bl.id(), Kind: model.Point, Start: t, End: t,
			Source: src, Type: model.TypeContact,
			Value: c.Amount, Text: c.Text,
		})

		code := c.ICPC
		if code == "" && bl.opts.ExtractFromText {
			if m := sources.ExtractICPCMention(c.Text); m != "" {
				code = m
				bl.report.CodesFromText++
			}
		}
		if code != "" {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: t, End: t,
				Source: src, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICPC2", Value: code},
			})
		}

		sys, dia := c.Systolic, c.Diastolic
		if sys == 0 && bl.opts.ExtractFromText {
			if s, d, ok := sources.ExtractBP(c.Text); ok {
				sys, dia = s, d
				bl.report.BPFromText++
			}
		}
		if sys > 0 {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: t, End: t,
				Source: src, Type: model.TypeMeasurement,
				Value: float64(sys), Aux: float64(dia),
			})
		}
	}
}

func (bl *builder) loadPrescriptions(rxs []sources.Prescription) {
	for i := range rxs {
		rx := &rxs[i]
		t, err := model.ParseDate(rx.Date)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		h := bl.admit(rx.Person, t)
		if h == nil {
			continue
		}
		days := rx.DurationDays
		if days <= 0 {
			days = 1
		}
		h.Add(model.Entry{
			ID: bl.id(), Kind: model.Interval, Start: t, End: t.AddDays(days),
			Source: model.SourceGP, Type: model.TypeMedication,
			Code: model.Code{System: "ATC", Value: rx.ATC},
		})
	}
}

func (bl *builder) loadEpisodes(eps []sources.HospitalEpisode) {
	for i := range eps {
		e := &eps[i]
		start, err := model.ParseDate(e.Admitted)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		h := bl.admit(e.Person, start)
		if h == nil {
			continue
		}

		switch e.Mode {
		case sources.ModeInpatient, sources.ModeDay:
			end := start.AddDays(1)
			if e.Discharged != "" {
				d, err := model.ParseDate(e.Discharged)
				if err != nil {
					bl.report.DroppedUnparsable++
					continue
				}
				if d > start {
					end = d
				}
			}
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Interval, Start: start, End: end,
				Source: model.SourceHospital, Type: model.TypeStay,
				Code: model.Code{System: "ICD10", Value: e.MainICD},
			})
		case sources.ModeOutpatient:
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeContact,
			})
		default:
			bl.report.DroppedUnparsable++
			continue
		}

		if e.MainICD != "" {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: e.MainICD},
			})
		}
		for _, sec := range e.SecondaryICD {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: start, End: start,
				Source: model.SourceHospital, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: sec},
			})
		}
	}
}

func (bl *builder) loadMunicipal(svcs []sources.MunicipalService) {
	// Group per person+service so overlapping decisions can merge.
	type key struct {
		person  uint64
		service string
	}
	grouped := make(map[key][]openPeriod)
	for i := range svcs {
		s := &svcs[i]
		from, err := model.ParseDate(s.From)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		to := bl.openEnd
		open := s.To == ""
		if !open {
			to, err = model.ParseDate(s.To)
			if err != nil {
				bl.report.DroppedUnparsable++
				continue
			}
		}
		if to <= from {
			to = from.AddDays(1)
		}
		grouped[key{s.Person, s.Service}] = append(grouped[key{s.Person, s.Service}],
			openPeriod{Period: model.Period{Start: from, End: to}, open: open})
	}

	// Deterministic iteration order.
	keys := make([]key, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].person != keys[j].person {
			return keys[i].person < keys[j].person
		}
		return keys[i].service < keys[j].service
	})

	for _, k := range keys {
		periods := grouped[k]
		if bl.opts.MergeOverlappingServices {
			merged := mergeOpenPeriods(periods)
			bl.report.MergedIntervals += len(periods) - len(merged)
			periods = merged
		}
		typ := model.TypeService
		if k.service == sources.ServiceNursing {
			typ = model.TypeStay
		}
		for _, p := range periods {
			h := bl.admit(k.person, p.Start)
			if h == nil {
				continue
			}
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Interval, Start: p.Start, End: p.End,
				Source: model.SourceMunicipal, Type: typ,
				Text: k.service, OpenEnd: p.open,
			})
		}
	}
}

// openPeriod is a period whose end may be the extract horizon rather than
// a recorded date.
type openPeriod struct {
	model.Period
	open bool
}

// mergeOpenPeriods merges overlapping or touching periods, propagating the
// open-end flag when the merged tail came from an open record.
func mergeOpenPeriods(ps []openPeriod) []openPeriod {
	if len(ps) <= 1 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.Start <= last.End {
			if p.End > last.End {
				last.End = p.End
				last.open = p.open
			} else if p.End == last.End && p.open {
				last.open = true
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

func (bl *builder) loadSpecialist(claims []sources.SpecialistClaim) {
	for i := range claims {
		c := &claims[i]
		t, err := model.ParseDate(c.Date)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		key := fmt.Sprintf("sp|%d|%s|%s|%s", c.Person, c.Date, c.ICD, c.Specialty)
		if bl.seen[key] {
			bl.report.DuplicatesCollapsed++
			continue
		}
		bl.seen[key] = true
		h := bl.admit(c.Person, t)
		if h == nil {
			continue
		}
		h.Add(model.Entry{
			ID: bl.id(), Kind: model.Point, Start: t, End: t,
			Source: model.SourceSpecialist, Type: model.TypeContact,
			Text: c.Specialty,
		})
		if c.ICD != "" {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: t, End: t,
				Source: model.SourceSpecialist, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICD10", Value: c.ICD},
			})
		}
	}
}

func (bl *builder) loadPhysio(claims []sources.PhysioClaim) {
	for i := range claims {
		c := &claims[i]
		t, err := model.ParseDate(c.Date)
		if err != nil {
			bl.report.DroppedUnparsable++
			continue
		}
		h := bl.admit(c.Person, t)
		if h == nil {
			continue
		}
		h.Add(model.Entry{
			ID: bl.id(), Kind: model.Point, Start: t, End: t,
			Source: model.SourcePhysio, Type: model.TypeContact,
			Value: float64(c.Sessions),
		})
		if c.ICPC != "" {
			h.Add(model.Entry{
				ID: bl.id(), Kind: model.Point, Start: t, End: t,
				Source: model.SourcePhysio, Type: model.TypeDiagnosis,
				Code: model.Code{System: "ICPC2", Value: c.ICPC},
			})
		}
	}
}

// mergePeriods merges overlapping or touching periods.
func mergePeriods(ps []model.Period) []model.Period {
	if len(ps) <= 1 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if p.Start <= last.End {
			if p.End > last.End {
				last.End = p.End
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// latestDate scans the bundle for the latest parsable date; used to close
// still-open service intervals.
func latestDate(b *sources.Bundle) model.Time {
	latest := model.Time(0)
	consider := func(s string) {
		if s == "" {
			return
		}
		if t, err := model.ParseDate(s); err == nil && t > latest {
			latest = t
		}
	}
	for i := range b.GPClaims {
		consider(b.GPClaims[i].Date)
	}
	for i := range b.Prescriptions {
		consider(b.Prescriptions[i].Date)
	}
	for i := range b.Episodes {
		consider(b.Episodes[i].Admitted)
		consider(b.Episodes[i].Discharged)
	}
	for i := range b.Municipal {
		consider(b.Municipal[i].From)
		consider(b.Municipal[i].To)
	}
	for i := range b.Specialist {
		consider(b.Specialist[i].Date)
	}
	for i := range b.Physio {
		consider(b.Physio[i].Date)
	}
	return latest
}
