package model

import "fmt"

// Kind distinguishes the two entry shapes the paper describes: events that
// "happen at a given time and have no duration" and intervals "defined by
// their start and end times".
type Kind uint8

const (
	Point Kind = iota
	Interval
)

func (k Kind) String() string {
	switch k {
	case Point:
		return "point"
	case Interval:
		return "interval"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Source identifies which of the heterogeneous registries an entry was
// aggregated from.
type Source uint8

const (
	SourceUnknown Source = iota
	// SourceGP: general practitioner and emergency primary care claims.
	SourceGP
	// SourceHospital: somatic hospital episodes (inpatient, outpatient,
	// day treatment).
	SourceHospital
	// SourceMunicipal: municipal services (home care, nursing home).
	SourceMunicipal
	// SourceSpecialist: private medical specialists with reimbursement
	// claims.
	SourceSpecialist
	// SourcePhysio: physiotherapists in primary care.
	SourcePhysio
)

var sourceNames = [...]string{
	SourceUnknown:    "unknown",
	SourceGP:         "gp",
	SourceHospital:   "hospital",
	SourceMunicipal:  "municipal",
	SourceSpecialist: "specialist",
	SourcePhysio:     "physio",
}

func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("Source(%d)", uint8(s))
}

// Sources lists all real sources (excluding SourceUnknown).
func Sources() []Source {
	return []Source{SourceGP, SourceHospital, SourceMunicipal, SourceSpecialist, SourcePhysio}
}

// Type classifies what an entry records. The workbench draws each type with
// a distinct visual encoding (Fig. 1): contacts as marks on the history bar,
// diagnoses as small rectangles, blood-pressure measurements as arrows,
// medication periods as background colorings, stays as intervals.
type Type uint8

const (
	TypeUnknown Type = iota
	// TypeContact is a single-day contact with a care provider.
	TypeContact
	// TypeDiagnosis is a coded diagnosis (ICPC-2 or ICD-10).
	TypeDiagnosis
	// TypeMeasurement is a clinical measurement (e.g. blood pressure).
	TypeMeasurement
	// TypeMedication is a medication period or prescription (ATC-coded).
	TypeMedication
	// TypeStay is an admission interval (hospital or nursing home).
	TypeStay
	// TypeService is a recurring municipal service interval (home care).
	TypeService
)

var typeNames = [...]string{
	TypeUnknown:     "unknown",
	TypeContact:     "contact",
	TypeDiagnosis:   "diagnosis",
	TypeMeasurement: "measurement",
	TypeMedication:  "medication",
	TypeStay:        "stay",
	TypeService:     "service",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Types lists all real entry types (excluding TypeUnknown).
func Types() []Type {
	return []Type{TypeContact, TypeDiagnosis, TypeMeasurement, TypeMedication, TypeStay, TypeService}
}

// Code is a reference into one of the clinical terminologies.
type Code struct {
	// System names the terminology: "ICPC2", "ICD10" or "ATC".
	System string
	// Value is the code itself, e.g. "T90", "E11.9", "C07A".
	Value string
}

// IsZero reports whether no code is attached.
func (c Code) IsZero() bool { return c.System == "" && c.Value == "" }

func (c Code) String() string {
	if c.IsZero() {
		return "-"
	}
	return c.System + ":" + c.Value
}

// Entry is one event or interval in a patient history. Entries are value
// types; collections hold them in contiguous slices so that scanning a
// 168,000-patient data set stays cache-friendly.
type Entry struct {
	// ID is unique within a collection and stable across snapshots.
	ID uint64
	// Patient is the owning patient.
	Patient PatientID
	// Kind says whether End is meaningful.
	Kind Kind
	// Start is when the event happened, or the interval began.
	Start Time
	// End is the interval end (exclusive); equals Start for point events.
	End Time
	// Source is the registry the entry was aggregated from.
	Source Source
	// Type classifies the entry.
	Type Type
	// Code is the clinical code, when coded.
	Code Code
	// Value carries a numeric payload: systolic blood pressure for
	// measurements, reimbursement amount for claims.
	Value float64
	// Aux carries a secondary numeric payload (diastolic pressure).
	Aux float64
	// Text is the free-text fragment attached to the record, when any.
	// The paper extracts limited structure from such text with regexes.
	Text string
	// OpenEnd marks intervals whose true end is unknown (a service still
	// running at extract time); End then holds the extract horizon. The
	// renderer draws these with an uncertainty fade, after the interval
	// metaphors of Chittaro & Combi the paper cites.
	OpenEnd bool
}

// Period returns the time extent of the entry; for point events it is the
// zero-length period at Start.
func (e *Entry) Period() Period {
	if e.Kind == Point {
		return Period{Start: e.Start, End: e.Start}
	}
	return Period{Start: e.Start, End: e.End}
}

// Duration is End-Start for intervals and 0 for points.
func (e *Entry) Duration() Time {
	if e.Kind == Point {
		return 0
	}
	return e.End - e.Start
}

// Validate reports structural problems with the entry.
func (e *Entry) Validate() error {
	if !e.Start.Valid() {
		return fmt.Errorf("model: entry %d: invalid start", e.ID)
	}
	switch e.Kind {
	case Point:
		if e.End != e.Start {
			return fmt.Errorf("model: entry %d: point event with end != start", e.ID)
		}
	case Interval:
		if !e.End.Valid() {
			return fmt.Errorf("model: entry %d: interval with invalid end", e.ID)
		}
		if e.End < e.Start {
			return fmt.Errorf("model: entry %d: interval ends before it starts", e.ID)
		}
	default:
		return fmt.Errorf("model: entry %d: unknown kind %d", e.ID, e.Kind)
	}
	return nil
}

func (e *Entry) String() string {
	if e.Kind == Point {
		return fmt.Sprintf("%s %s %s %s", e.Start, e.Source, e.Type, e.Code)
	}
	return fmt.Sprintf("%s..%s %s %s %s", e.Start, e.End, e.Source, e.Type, e.Code)
}
