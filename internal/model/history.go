package model

import (
	"fmt"
	"sort"
)

// History is one patient's trajectory: the patient record plus every entry
// aggregated for them, kept sorted by start time (ties broken by end, type,
// then ID so orderings are deterministic).
type History struct {
	Patient Patient
	Entries []Entry
	sorted  bool
}

// NewHistory creates an empty history for a patient.
func NewHistory(p Patient) *History {
	return &History{Patient: p, sorted: true}
}

// Add appends an entry, invalidating sort order until Sort is called.
func (h *History) Add(e Entry) {
	e.Patient = h.Patient.ID
	h.Entries = append(h.Entries, e)
	h.sorted = false
}

// Len returns the number of entries.
func (h *History) Len() int { return len(h.Entries) }

// entryLess is the chronological order of Sort: start, then end, type and
// ID as deterministic tie-breaks.
func entryLess(a, b *Entry) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	return a.ID < b.ID
}

// sortEntries orders a slice of entries chronologically (stable).
func sortEntries(es []Entry) {
	sort.SliceStable(es, func(i, j int) bool {
		return entryLess(&es[i], &es[j])
	})
}

// entriesSorted reports whether the slice is already in chronological
// order (one linear pass, no allocation).
func entriesSorted(es []Entry) bool {
	for i := 1; i < len(es); i++ {
		if entryLess(&es[i], &es[i-1]) {
			return false
		}
	}
	return true
}

// Sort orders entries chronologically; it is idempotent.
func (h *History) Sort() {
	if h.sorted {
		return
	}
	sortEntries(h.Entries)
	h.sorted = true
}

// SortedEntries returns the entries in chronological order without
// mutating the history: the live slice when already sorted, otherwise a
// sorted copy. Readers that must not reorder a shared history (snapshot
// save, concurrent scans) go through this instead of Sort.
func (h *History) SortedEntries() []Entry {
	if h.sorted {
		return h.Entries
	}
	c := make([]Entry, len(h.Entries))
	copy(c, h.Entries)
	sortEntries(c)
	return c
}

// RestoreHistory rebuilds a history from a decoded patient record and
// entry slice, adopting the slice without copying. Every entry is stamped
// with the owning patient (the invariant Add maintains), and the sorted
// flag is derived by a linear scan so a snapshot claiming order cannot
// smuggle an unsorted history past Sort's idempotence check.
func RestoreHistory(p Patient, entries []Entry) *History {
	for i := range entries {
		entries[i].Patient = p.ID
	}
	return &History{Patient: p, Entries: entries, sorted: entriesSorted(entries)}
}

// Sorted reports whether the entries are currently in chronological order.
func (h *History) Sorted() bool { return h.sorted }

// Span returns the period from the first start to the last end (or last
// start for point events). Returns an empty period for empty histories.
func (h *History) Span() Period {
	if len(h.Entries) == 0 {
		return Period{}
	}
	h.Sort()
	start := h.Entries[0].Start
	end := start
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Start > end {
			end = e.Start
		}
		if e.Kind == Interval && e.End > end {
			end = e.End
		}
	}
	return Period{Start: start, End: end}
}

// First returns the earliest entry matching pred, or nil.
func (h *History) First(pred func(*Entry) bool) *Entry {
	h.Sort()
	for i := range h.Entries {
		if pred(&h.Entries[i]) {
			return &h.Entries[i]
		}
	}
	return nil
}

// Nth returns the n-th (1-based) entry matching pred, or nil.
func (h *History) Nth(n int, pred func(*Entry) bool) *Entry {
	if n <= 0 {
		return nil
	}
	h.Sort()
	seen := 0
	for i := range h.Entries {
		if pred(&h.Entries[i]) {
			seen++
			if seen == n {
				return &h.Entries[i]
			}
		}
	}
	return nil
}

// Last returns the latest entry matching pred, or nil.
func (h *History) Last(pred func(*Entry) bool) *Entry {
	h.Sort()
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if pred(&h.Entries[i]) {
			return &h.Entries[i]
		}
	}
	return nil
}

// Count returns how many entries match pred.
func (h *History) Count(pred func(*Entry) bool) int {
	n := 0
	for i := range h.Entries {
		if pred(&h.Entries[i]) {
			n++
		}
	}
	return n
}

// Within returns the entries whose period intersects p, preserving order.
func (h *History) Within(p Period) []*Entry {
	h.Sort()
	var out []*Entry
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Kind == Point {
			if p.Contains(e.Start) {
				out = append(out, e)
			}
		} else if e.Period().Overlaps(p) {
			out = append(out, e)
		}
	}
	return out
}

// CodeSequence extracts the chronological sequence of code values for
// entries of the given type; this is the view NSEPter operated on
// ("the only information ... utilized was the diagnosis codes").
func (h *History) CodeSequence(t Type) []Code {
	h.Sort()
	var out []Code
	for i := range h.Entries {
		e := &h.Entries[i]
		if e.Type == t && !e.Code.IsZero() {
			out = append(out, e.Code)
		}
	}
	return out
}

// CodeSequenceStable is CodeSequence without mutating the history: it
// reads through SortedEntries, so concurrent readers of a shared history
// (shard servers running map steps over the same collection) never
// reorder entries under each other.
func (h *History) CodeSequenceStable(t Type) []Code {
	var out []Code
	entries := h.SortedEntries()
	for i := range entries {
		e := &entries[i]
		if e.Type == t && !e.Code.IsZero() {
			out = append(out, e.Code)
		}
	}
	return out
}

// Clone returns a deep copy of the history.
func (h *History) Clone() *History {
	c := &History{Patient: h.Patient, sorted: h.sorted}
	c.Entries = make([]Entry, len(h.Entries))
	copy(c.Entries, h.Entries)
	return c
}

// Validate checks the history and every entry, including the paper's
// pre-birth rule: entries dated before the patient's birth are invalid.
func (h *History) Validate() error {
	if err := h.Patient.Validate(); err != nil {
		return err
	}
	for i := range h.Entries {
		e := &h.Entries[i]
		if err := e.Validate(); err != nil {
			return err
		}
		if e.Patient != h.Patient.ID {
			return fmt.Errorf("model: history %s: entry %d owned by %s", h.Patient.ID, e.ID, e.Patient)
		}
		if e.Start < h.Patient.Birth {
			return fmt.Errorf("model: history %s: entry %d predates birth", h.Patient.ID, e.ID)
		}
	}
	return nil
}
