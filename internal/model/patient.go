package model

import "fmt"

// PatientID is the pseudonymized person number that links records across
// the heterogeneous sources. The workbench shows it on the vertical axis so
// individual patients can be addressed.
type PatientID uint64

func (id PatientID) String() string { return fmt.Sprintf("P%07d", uint64(id)) }

// Sex of a patient, as registered.
type Sex uint8

const (
	SexUnknown Sex = iota
	SexFemale
	SexMale
)

func (s Sex) String() string {
	switch s {
	case SexFemale:
		return "F"
	case SexMale:
		return "M"
	default:
		return "?"
	}
}

// Patient is the demographic record shared by all sources.
type Patient struct {
	ID PatientID
	// Birth is the date of birth. Entries dated before Birth are
	// "clearly invalid" per the paper and dropped during integration.
	Birth Time
	Sex   Sex
	// Municipality is the registered home municipality number.
	Municipality int
}

// AgeAt returns the patient's age in whole years at time t; negative if t
// precedes birth (floor semantics, so the day before birth is age -1).
func (p *Patient) AgeAt(t Time) int {
	diff := t - p.Birth
	age := diff / Year
	if diff < 0 && diff%Year != 0 {
		age--
	}
	return int(age)
}

// Validate reports structural problems with the patient record.
func (p *Patient) Validate() error {
	if p.ID == 0 {
		return fmt.Errorf("model: patient with zero ID")
	}
	if !p.Birth.Valid() {
		return fmt.Errorf("model: patient %s: invalid birth date", p.ID)
	}
	return nil
}
