package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeRoundTrip(t *testing.T) {
	cases := []time.Time{
		time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 6, 15, 13, 45, 0, 0, time.UTC),
		time.Date(1932, 2, 29, 0, 0, 0, 0, time.UTC),
		time.Date(2099, 12, 31, 23, 59, 0, 0, time.UTC),
	}
	for _, tt := range cases {
		got := FromTime(tt).AsTime()
		if !got.Equal(tt) {
			t.Errorf("round trip %v -> %v", tt, got)
		}
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(mins int32) bool {
		v := Time(mins)
		return FromTime(v.AsTime()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDate(t *testing.T) {
	d := Date(2010, time.March, 5)
	if d%Day != 0 {
		t.Fatalf("Date not day-aligned: %d", d)
	}
	if got := d.String(); got != "2010-03-05" {
		t.Errorf("String = %q", got)
	}
}

func TestDayFloor(t *testing.T) {
	d := Date(2010, time.March, 5)
	if got := (d + 13*Hour + 7*Minute).DayFloor(); got != d {
		t.Errorf("DayFloor = %v, want %v", got, d)
	}
	if got := d.DayFloor(); got != d {
		t.Errorf("DayFloor of aligned = %v, want %v", got, d)
	}
	// Before the epoch.
	neg := Date(1999, time.December, 31)
	if got := (neg + 5*Hour).DayFloor(); got != neg {
		t.Errorf("negative DayFloor = %v, want %v", got, neg)
	}
}

func TestDayFloorProperty(t *testing.T) {
	f := func(mins int32) bool {
		v := Time(mins)
		fl := v.DayFloor()
		return fl <= v && v-fl < Day && fl%Day == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("2012-11-30")
	if err != nil {
		t.Fatal(err)
	}
	if d != Date(2012, time.November, 30) {
		t.Errorf("ParseDate = %v", d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("want error for malformed date")
	}
}

func TestMonths(t *testing.T) {
	base := Date(2010, time.January, 1)
	if got := base.AddDays(60).Months(base); got != 2 {
		t.Errorf("Months = %v, want 2", got)
	}
	if got := base.AddDays(-30).Months(base); got != -1 {
		t.Errorf("Months = %v, want -1", got)
	}
}

func TestPeriod(t *testing.T) {
	p := Period{Start: 0, End: 100}
	if !p.Contains(0) || p.Contains(100) || !p.Contains(99) {
		t.Error("Contains half-open semantics broken")
	}
	if p.Duration() != 100 {
		t.Errorf("Duration = %d", p.Duration())
	}
	if !p.Overlaps(Period{Start: 99, End: 200}) {
		t.Error("expected overlap")
	}
	if p.Overlaps(Period{Start: 100, End: 200}) {
		t.Error("touching periods must not overlap")
	}
	got := Period{Start: -50, End: 500}.Clamp(p)
	if got != p {
		t.Errorf("Clamp = %v", got)
	}
	if !(Period{Start: 10, End: 10}).Empty() {
		t.Error("zero-length period should be empty")
	}
	if (Period{Start: 20, End: 10}).Duration() != 0 {
		t.Error("inverted period duration should be 0")
	}
}

func TestPeriodOverlapSymmetry(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		p := Period{Start: Time(min64(a1, a2)), End: Time(max64(a1, a2))}
		q := Period{Start: Time(min64(b1, b2)), End: Time(max64(b1, b2))}
		return p.Overlaps(q) == q.Overlaps(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min64(a, b int16) int64 {
	if a < b {
		return int64(a)
	}
	return int64(b)
}

func max64(a, b int16) int64 {
	if a > b {
		return int64(a)
	}
	return int64(b)
}

func TestNoTime(t *testing.T) {
	if NoTime.Valid() {
		t.Error("NoTime must not be valid")
	}
	if NoTime.String() != "-" {
		t.Errorf("NoTime string = %q", NoTime.String())
	}
	if !Time(0).Valid() {
		t.Error("epoch must be valid")
	}
}
