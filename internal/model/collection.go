package model

import (
	"fmt"
	"sort"
)

// Collection is an ordered set of histories — the unit the workbench
// visualizes, queries and extracts sub-collections from. Order is the
// vertical display order in the timeline view.
type Collection struct {
	histories []*History
	byID      map[PatientID]*History
}

// NewCollection builds a collection from histories; later duplicates of a
// patient ID are rejected.
func NewCollection(hs ...*History) (*Collection, error) {
	c := &Collection{byID: make(map[PatientID]*History, len(hs))}
	for _, h := range hs {
		if err := c.Add(h); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustCollection is NewCollection that panics on duplicates; for tests and
// generators that construct IDs themselves.
func MustCollection(hs ...*History) *Collection {
	c, err := NewCollection(hs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Add appends a history.
func (c *Collection) Add(h *History) error {
	if c.byID == nil {
		c.byID = make(map[PatientID]*History)
	}
	if _, dup := c.byID[h.Patient.ID]; dup {
		return fmt.Errorf("model: duplicate patient %s in collection", h.Patient.ID)
	}
	c.histories = append(c.histories, h)
	c.byID[h.Patient.ID] = h
	return nil
}

// Len returns the number of histories.
func (c *Collection) Len() int { return len(c.histories) }

// At returns the i-th history in display order.
func (c *Collection) At(i int) *History { return c.histories[i] }

// Get returns the history for a patient, or nil.
func (c *Collection) Get(id PatientID) *History { return c.byID[id] }

// Histories returns the underlying slice in display order. Callers must not
// mutate the slice structure (entries may be read freely).
func (c *Collection) Histories() []*History { return c.histories }

// IDs returns the patient IDs in display order.
func (c *Collection) IDs() []PatientID {
	ids := make([]PatientID, len(c.histories))
	for i, h := range c.histories {
		ids[i] = h.Patient.ID
	}
	return ids
}

// Filter returns a new collection with the histories for which keep returns
// true, preserving order. This is the paper's "extraction of
// sub-collections" primitive.
func (c *Collection) Filter(keep func(*History) bool) *Collection {
	out := &Collection{byID: make(map[PatientID]*History)}
	for _, h := range c.histories {
		if keep(h) {
			out.histories = append(out.histories, h)
			out.byID[h.Patient.ID] = h
		}
	}
	return out
}

// Subset returns a new collection containing the given patients, in the
// order given; unknown IDs are skipped.
func (c *Collection) Subset(ids []PatientID) *Collection {
	out := &Collection{byID: make(map[PatientID]*History, len(ids))}
	for _, id := range ids {
		if h := c.byID[id]; h != nil {
			if _, dup := out.byID[id]; !dup {
				out.histories = append(out.histories, h)
				out.byID[id] = h
			}
		}
	}
	return out
}

// SortBy reorders the display order by the given less function; the sort is
// stable so successive sorts compose predictably (sort by length, then by
// anchor, keeps anchor groups length-ordered).
func (c *Collection) SortBy(less func(a, b *History) bool) {
	sort.SliceStable(c.histories, func(i, j int) bool {
		return less(c.histories[i], c.histories[j])
	})
}

// TotalEntries sums entries over all histories.
func (c *Collection) TotalEntries() int {
	n := 0
	for _, h := range c.histories {
		n += len(h.Entries)
	}
	return n
}

// Span returns the union period covered by all histories.
func (c *Collection) Span() Period {
	var span Period
	first := true
	for _, h := range c.histories {
		s := h.Span()
		if s.Empty() && h.Len() == 0 {
			continue
		}
		if first {
			span = s
			first = false
			continue
		}
		if s.Start < span.Start {
			span.Start = s.Start
		}
		if s.End > span.End {
			span.End = s.End
		}
	}
	return span
}

// Validate validates every history.
func (c *Collection) Validate() error {
	for _, h := range c.histories {
		if err := h.Validate(); err != nil {
			return err
		}
	}
	return nil
}
