package model

import (
	"strings"
	"testing"
	"time"
)

func newTestPatient(id PatientID) Patient {
	return Patient{ID: id, Birth: Date(1950, time.June, 1), Sex: SexFemale, Municipality: 5001}
}

func pointEntry(id uint64, t Time, typ Type, code Code) Entry {
	return Entry{ID: id, Kind: Point, Start: t, End: t, Source: SourceGP, Type: typ, Code: code}
}

func TestEntryValidate(t *testing.T) {
	base := Date(2010, time.January, 1)
	ok := pointEntry(1, base, TypeDiagnosis, Code{"ICPC2", "T90"})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid point: %v", err)
	}

	bad := ok
	bad.End = base + Day
	if err := bad.Validate(); err == nil {
		t.Error("point with end != start must fail")
	}

	iv := Entry{ID: 2, Kind: Interval, Start: base, End: base + 3*Day, Type: TypeStay}
	if err := iv.Validate(); err != nil {
		t.Errorf("valid interval: %v", err)
	}
	iv.End = base - Day
	if err := iv.Validate(); err == nil {
		t.Error("inverted interval must fail")
	}
	iv.End = NoTime
	if err := iv.Validate(); err == nil {
		t.Error("interval without end must fail")
	}
}

func TestEntryPeriodAndDuration(t *testing.T) {
	base := Date(2010, time.January, 1)
	p := pointEntry(1, base, TypeContact, Code{})
	if p.Duration() != 0 || !p.Period().Empty() {
		t.Error("point event must have zero duration")
	}
	iv := Entry{ID: 2, Kind: Interval, Start: base, End: base + 5*Day, Type: TypeStay}
	if iv.Duration() != 5*Day {
		t.Errorf("Duration = %v", iv.Duration())
	}
}

func TestHistorySortDeterminism(t *testing.T) {
	h := NewHistory(newTestPatient(1))
	base := Date(2010, time.January, 1)
	// Insert out of order with ties.
	h.Add(pointEntry(3, base+2*Day, TypeDiagnosis, Code{"ICPC2", "K86"}))
	h.Add(pointEntry(1, base, TypeDiagnosis, Code{"ICPC2", "T90"}))
	h.Add(pointEntry(2, base, TypeContact, Code{}))
	h.Sort()
	if !h.Sorted() {
		t.Fatal("not sorted after Sort")
	}
	// Ties at same Start order by type: contact < diagnosis.
	if h.Entries[0].Type != TypeContact || h.Entries[1].Type != TypeDiagnosis {
		t.Errorf("tie-break order wrong: %v %v", h.Entries[0].Type, h.Entries[1].Type)
	}
	if h.Entries[2].ID != 3 {
		t.Errorf("chronological order wrong")
	}
}

func TestHistoryQueries(t *testing.T) {
	h := NewHistory(newTestPatient(1))
	base := Date(2010, time.January, 1)
	codes := []string{"A04", "T90", "K86", "T90", "R74"}
	for i, cv := range codes {
		h.Add(pointEntry(uint64(i+1), base.AddDays(i*30), TypeDiagnosis, Code{"ICPC2", cv}))
	}
	isT90 := func(e *Entry) bool { return e.Code.Value == "T90" }

	if got := h.First(isT90); got == nil || got.ID != 2 {
		t.Errorf("First = %v", got)
	}
	if got := h.Last(isT90); got == nil || got.ID != 4 {
		t.Errorf("Last = %v", got)
	}
	if got := h.Nth(2, isT90); got == nil || got.ID != 4 {
		t.Errorf("Nth(2) = %v", got)
	}
	if got := h.Nth(3, isT90); got != nil {
		t.Errorf("Nth(3) = %v, want nil", got)
	}
	if got := h.Nth(0, isT90); got != nil {
		t.Errorf("Nth(0) = %v, want nil", got)
	}
	if got := h.Count(isT90); got != 2 {
		t.Errorf("Count = %d", got)
	}

	// Entries sit at days 0, 30, 60, 90, 120; [25, 90) catches 30 and 60
	// only — the half-open end excludes day 90.
	within := h.Within(Period{Start: base.AddDays(25), End: base.AddDays(90)})
	if len(within) != 2 {
		t.Fatalf("Within = %d entries, want 2", len(within))
	}

	seq := h.CodeSequence(TypeDiagnosis)
	if len(seq) != 5 || seq[1].Value != "T90" {
		t.Errorf("CodeSequence = %v", seq)
	}
}

func TestHistorySpanIncludesIntervalEnds(t *testing.T) {
	h := NewHistory(newTestPatient(1))
	base := Date(2010, time.January, 1)
	h.Add(pointEntry(1, base.AddDays(10), TypeContact, Code{}))
	h.Add(Entry{ID: 2, Kind: Interval, Start: base, End: base.AddDays(40), Type: TypeStay})
	span := h.Span()
	if span.Start != base || span.End != base.AddDays(40) {
		t.Errorf("Span = %v", span)
	}
}

func TestHistoryValidatePreBirth(t *testing.T) {
	h := NewHistory(newTestPatient(1))
	h.Add(pointEntry(1, Date(1930, time.January, 1), TypeContact, Code{}))
	err := h.Validate()
	if err == nil || !strings.Contains(err.Error(), "predates birth") {
		t.Errorf("want pre-birth error, got %v", err)
	}
}

func TestHistoryClone(t *testing.T) {
	h := NewHistory(newTestPatient(1))
	h.Add(pointEntry(1, Date(2010, time.March, 1), TypeContact, Code{}))
	c := h.Clone()
	c.Entries[0].Text = "changed"
	if h.Entries[0].Text == "changed" {
		t.Error("clone shares entry storage")
	}
}

func TestCollectionBasics(t *testing.T) {
	h1 := NewHistory(newTestPatient(1))
	h2 := NewHistory(newTestPatient(2))
	c, err := NewCollection(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Get(2) != h2 || c.At(0) != h1 {
		t.Error("collection accessors broken")
	}
	if err := c.Add(NewHistory(newTestPatient(1))); err == nil {
		t.Error("duplicate patient must be rejected")
	}
	ids := c.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestCollectionFilterSubsetSort(t *testing.T) {
	var hs []*History
	base := Date(2010, time.January, 1)
	for i := 1; i <= 5; i++ {
		h := NewHistory(newTestPatient(PatientID(i)))
		for j := 0; j < i; j++ { // history i has i entries
			h.Add(pointEntry(uint64(i*10+j), base.AddDays(j), TypeContact, Code{}))
		}
		hs = append(hs, h)
	}
	c := MustCollection(hs...)

	big := c.Filter(func(h *History) bool { return h.Len() >= 3 })
	if big.Len() != 3 {
		t.Errorf("Filter = %d, want 3", big.Len())
	}

	sub := c.Subset([]PatientID{4, 2, 4, 99})
	if sub.Len() != 2 || sub.At(0).Patient.ID != 4 || sub.At(1).Patient.ID != 2 {
		t.Errorf("Subset order/dedup wrong: %v", sub.IDs())
	}

	c.SortBy(func(a, b *History) bool { return a.Len() > b.Len() })
	if c.At(0).Patient.ID != 5 || c.At(4).Patient.ID != 1 {
		t.Errorf("SortBy order wrong: %v", c.IDs())
	}

	if c.TotalEntries() != 1+2+3+4+5 {
		t.Errorf("TotalEntries = %d", c.TotalEntries())
	}
}

func TestCollectionSpan(t *testing.T) {
	h1 := NewHistory(newTestPatient(1))
	h1.Add(pointEntry(1, Date(2010, time.January, 5), TypeContact, Code{}))
	h2 := NewHistory(newTestPatient(2))
	h2.Add(Entry{ID: 2, Kind: Interval, Start: Date(2009, time.December, 1), End: Date(2010, time.February, 1), Type: TypeStay})
	c := MustCollection(h1, h2)
	span := c.Span()
	if span.Start != Date(2009, time.December, 1) || span.End != Date(2010, time.February, 1) {
		t.Errorf("Span = %v", span)
	}
}

func TestPatientAgeAt(t *testing.T) {
	p := newTestPatient(1)
	if got := p.AgeAt(p.Birth + 59*Year + 364*Day); got != 59 {
		t.Errorf("AgeAt = %d, want 59", got)
	}
	if got := p.AgeAt(p.Birth - Day); got >= 0 {
		t.Errorf("AgeAt before birth = %d, want negative", got)
	}
}

func TestStringers(t *testing.T) {
	if SourceHospital.String() != "hospital" || TypeDiagnosis.String() != "diagnosis" {
		t.Error("stringers broken")
	}
	if Point.String() != "point" || Interval.String() != "interval" {
		t.Error("kind stringer broken")
	}
	if (Code{"ICPC2", "T90"}).String() != "ICPC2:T90" {
		t.Error("code stringer broken")
	}
	if !(Code{}).IsZero() {
		t.Error("zero code not zero")
	}
	if PatientID(42).String() != "P0000042" {
		t.Errorf("patient id stringer: %s", PatientID(42))
	}
	if SexFemale.String() != "F" || SexMale.String() != "M" || SexUnknown.String() != "?" {
		t.Error("sex stringer broken")
	}
	if len(Sources()) != 5 || len(Types()) != 6 {
		t.Error("enum lists wrong")
	}
}
