// Package model defines the core data model of the workbench: patients,
// point and interval entries, per-patient histories and collections of
// histories.
//
// The paper pre-loads "all content to be visualized or queried ... into a
// data structure of Java objects" whose entries "are either intervals,
// defined by their start and end times, or events that happen at a given
// time and have no duration". This package is that structure, in Go.
package model

import (
	"fmt"
	"time"
)

// Time is a compact timestamp: minutes since 2000-01-01T00:00Z.
//
// Registry data is date-resolution for most sources and minute-resolution
// for admissions; minutes keep both exact while an int64 keeps collections
// of hundreds of thousands of histories cheap to hold and sort.
type Time int64

// Epoch is the zero Time as a time.Time.
var Epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// Common durations expressed in Time units (minutes).
const (
	Minute Time = 1
	Hour   Time = 60 * Minute
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
	// Month is a fixed 30-day visualization month. The paper's aligned
	// axis is labeled in "number of months before and after the
	// alignment point"; a fixed month keeps those labels linear.
	Month Time = 30 * Day
	Year  Time = 365 * Day
)

// NoTime marks an absent timestamp (e.g. unknown end of an open interval).
const NoTime Time = -1 << 62

// FromTime converts a time.Time to Time, flooring to whole minutes. It uses
// Unix-second arithmetic rather than time.Time.Sub, whose time.Duration
// result saturates roughly 292 years from the epoch.
func FromTime(t time.Time) Time {
	secs := t.Unix() - epochUnix
	mins := secs / 60
	if secs < 0 && secs%60 != 0 {
		mins--
	}
	return Time(mins)
}

// Date builds a day-resolution Time from a calendar date.
func Date(year int, month time.Month, day int) Time {
	return FromTime(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// AsTime converts back to a time.Time in UTC. It goes through Unix seconds
// rather than time.Duration so that times centuries away from the epoch do
// not overflow Duration's nanosecond range.
func (t Time) AsTime() time.Time {
	return time.Unix(epochUnix+int64(t)*60, 0).UTC()
}

var epochUnix = Epoch.Unix()

// DayFloor truncates to the start of the day.
func (t Time) DayFloor() Time {
	if t >= 0 {
		return t - t%Day
	}
	// Round toward negative infinity so days before the epoch align too.
	r := t % Day
	if r == 0 {
		return t
	}
	return t - r - Day
}

// AddDays returns the time n whole days later (or earlier if negative).
func (t Time) AddDays(n int) Time { return t + Time(n)*Day }

// Sub returns the difference t-u in minutes.
func (t Time) Sub(u Time) Time { return t - u }

// Months expresses the duration since u in fixed 30-day months, as used on
// the aligned horizontal axis.
func (t Time) Months(u Time) float64 { return float64(t-u) / float64(Month) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Valid reports whether t carries a real timestamp.
func (t Time) Valid() bool { return t != NoTime }

// String renders day-resolution times as dates and finer times as RFC 3339.
func (t Time) String() string {
	if t == NoTime {
		return "-"
	}
	tt := t.AsTime()
	if t%Day == 0 {
		return tt.Format("2006-01-02")
	}
	return tt.Format("2006-01-02T15:04")
}

// ParseDate parses a YYYY-MM-DD registry date.
func ParseDate(s string) (Time, error) {
	tt, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NoTime, fmt.Errorf("model: parse date %q: %w", s, err)
	}
	return FromTime(tt), nil
}

// Period is a half-open time range [Start, End).
type Period struct {
	Start Time
	End   Time
}

// Contains reports whether t falls inside the period.
func (p Period) Contains(t Time) bool { return t >= p.Start && t < p.End }

// Overlaps reports whether two periods share any time.
func (p Period) Overlaps(q Period) bool { return p.Start < q.End && q.Start < p.End }

// Duration is the length of the period in minutes; 0 if inverted.
func (p Period) Duration() Time {
	if p.End <= p.Start {
		return 0
	}
	return p.End - p.Start
}

// Clamp intersects the period with bounds.
func (p Period) Clamp(bounds Period) Period {
	if p.Start < bounds.Start {
		p.Start = bounds.Start
	}
	if p.End > bounds.End {
		p.End = bounds.End
	}
	return p
}

// Empty reports whether the period covers no time.
func (p Period) Empty() bool { return p.End <= p.Start }

func (p Period) String() string {
	return fmt.Sprintf("[%s, %s)", p.Start, p.End)
}
