package model

import (
	"reflect"
	"testing"
)

func unsortedEntries() []Entry {
	return []Entry{
		{ID: 2, Kind: Point, Start: Date(2011, 5, 1), End: Date(2011, 5, 1), Type: TypeContact, Source: SourceGP},
		{ID: 1, Kind: Point, Start: Date(2011, 1, 1), End: Date(2011, 1, 1), Type: TypeContact, Source: SourceGP},
		{ID: 3, Kind: Point, Start: Date(2011, 9, 1), End: Date(2011, 9, 1), Type: TypeContact, Source: SourceGP},
	}
}

func TestSortedEntriesDoesNotMutate(t *testing.T) {
	h := NewHistory(Patient{ID: 1, Birth: Date(1950, 1, 1)})
	for _, e := range unsortedEntries() {
		h.Add(e)
	}
	if h.Sorted() {
		t.Fatal("fixture must start unsorted")
	}
	got := h.SortedEntries()
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Errorf("SortedEntries order = %v", got)
	}
	if h.Sorted() {
		t.Error("SortedEntries flipped the sorted flag")
	}
	if h.Entries[0].ID != 2 {
		t.Error("SortedEntries reordered the live slice")
	}
	// On an already-sorted history it returns the live slice (no copy).
	h.Sort()
	if live := h.SortedEntries(); &live[0] != &h.Entries[0] {
		t.Error("sorted history should return the live slice")
	}
}

func TestRestoreHistory(t *testing.T) {
	p := Patient{ID: 42, Birth: Date(1960, 2, 2)}

	// Sorted input: flag set, entries adopted in place, owner stamped.
	sorted := []Entry{
		{ID: 1, Kind: Point, Start: Date(2011, 1, 1), End: Date(2011, 1, 1)},
		{ID: 2, Kind: Point, Start: Date(2011, 5, 1), End: Date(2011, 5, 1)},
	}
	h := RestoreHistory(p, sorted)
	if !h.Sorted() {
		t.Error("sorted entries not recognized")
	}
	if &h.Entries[0] != &sorted[0] {
		t.Error("RestoreHistory copied instead of adopting")
	}
	for i := range h.Entries {
		if h.Entries[i].Patient != p.ID {
			t.Errorf("entry %d owner = %v", i, h.Entries[i].Patient)
		}
	}

	// Unsorted input: the flag must stay false so Sort still works.
	h2 := RestoreHistory(p, unsortedEntries())
	if h2.Sorted() {
		t.Error("unsorted entries claimed sorted")
	}
	h2.Sort()
	want := []uint64{1, 2, 3}
	var got []uint64
	for i := range h2.Entries {
		got = append(got, h2.Entries[i].ID)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after Sort: %v", got)
	}
}
