// Package mining finds relations between diagnosis codes across a
// collection — the second predecessor project "mined for relations between
// the diagnosis codes themselves". Co-occurrence rules (A and B in the same
// history) and sequential rules (A followed by B) are scored with support,
// confidence and lift.
package mining

import (
	"fmt"
	"sort"
)

// Rule is one mined relation between codes A and B.
type Rule struct {
	A, B string
	// Sequential marks A-then-B ordering rules (vs. co-occurrence).
	Sequential bool
	// Support is the fraction of histories exhibiting the pair.
	Support float64
	// Confidence is P(pair | A present).
	Confidence float64
	// Lift is Confidence / P(B present); > 1 means positive association.
	Lift float64
	// Counts behind the ratios.
	CountPair, CountA, CountB, N int
}

func (r Rule) String() string {
	arrow := "∧"
	if r.Sequential {
		arrow = "→"
	}
	return fmt.Sprintf("%s %s %s (supp %.3f, conf %.2f, lift %.2f, n=%d)",
		r.A, arrow, r.B, r.Support, r.Confidence, r.Lift, r.CountPair)
}

// Options bounds the search.
type Options struct {
	// MinSupport is the minimum fraction of histories exhibiting the
	// pair (default 0.01).
	MinSupport float64
	// MinCount is an absolute floor on pair count (default 2).
	MinCount int
	// MaxGap bounds the position distance for sequential rules; 0 means
	// unbounded.
	MaxGap int
}

func (o *Options) defaults() {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.01
	}
	if o.MinCount <= 0 {
		o.MinCount = 2
	}
}

// CoOccurrence mines unordered pair rules over code sequences (one
// sequence per history). For each rule A∧B only the (A<B) orientation with
// the code-order normalized is emitted once, but confidence is computed
// for the A side; callers wanting both directions can swap.
func CoOccurrence(seqs [][]string, opt Options) []Rule {
	opt.defaults()
	n := len(seqs)
	if n == 0 {
		return nil
	}
	single := make(map[string]int)
	pair := make(map[[2]string]int)
	for _, seq := range seqs {
		present := make(map[string]bool)
		for _, c := range seq {
			present[c] = true
		}
		codes := make([]string, 0, len(present))
		for c := range present {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			single[c]++
		}
		for i := 0; i < len(codes); i++ {
			for j := i + 1; j < len(codes); j++ {
				pair[[2]string{codes[i], codes[j]}]++
			}
		}
	}
	var out []Rule
	for p, cnt := range pair {
		supp := float64(cnt) / float64(n)
		if supp < opt.MinSupport || cnt < opt.MinCount {
			continue
		}
		a, b := p[0], p[1]
		conf := float64(cnt) / float64(single[a])
		lift := conf / (float64(single[b]) / float64(n))
		out = append(out, Rule{
			A: a, B: b, Support: supp, Confidence: conf, Lift: lift,
			CountPair: cnt, CountA: single[a], CountB: single[b], N: n,
		})
	}
	sortRules(out)
	return out
}

// Sequential mines ordered rules: A appears and B appears later (within
// MaxGap positions when set). Each history contributes at most one count
// per ordered pair.
func Sequential(seqs [][]string, opt Options) []Rule {
	opt.defaults()
	n := len(seqs)
	if n == 0 {
		return nil
	}
	single := make(map[string]int)
	pair := make(map[[2]string]int)
	for _, seq := range seqs {
		present := make(map[string]bool)
		ordered := make(map[[2]string]bool)
		for i, a := range seq {
			present[a] = true
			for j := i + 1; j < len(seq); j++ {
				if opt.MaxGap > 0 && j-i > opt.MaxGap {
					break
				}
				if seq[j] != a {
					ordered[[2]string{a, seq[j]}] = true
				}
			}
		}
		for c := range present {
			single[c]++
		}
		for p := range ordered {
			pair[p]++
		}
	}
	var out []Rule
	for p, cnt := range pair {
		supp := float64(cnt) / float64(n)
		if supp < opt.MinSupport || cnt < opt.MinCount {
			continue
		}
		a, b := p[0], p[1]
		conf := float64(cnt) / float64(single[a])
		lift := conf / (float64(single[b]) / float64(n))
		out = append(out, Rule{
			A: a, B: b, Sequential: true,
			Support: supp, Confidence: conf, Lift: lift,
			CountPair: cnt, CountA: single[a], CountB: single[b], N: n,
		})
	}
	sortRules(out)
	return out
}

// sortRules orders by lift, then support, then lexicographically — the
// order an analyst reads the rule list in.
func sortRules(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Lift != rs[j].Lift {
			return rs[i].Lift > rs[j].Lift
		}
		if rs[i].Support != rs[j].Support {
			return rs[i].Support > rs[j].Support
		}
		if rs[i].A != rs[j].A {
			return rs[i].A < rs[j].A
		}
		return rs[i].B < rs[j].B
	})
}

// Top returns the first k rules (or all).
func Top(rs []Rule, k int) []Rule {
	if k >= len(rs) {
		return rs
	}
	return rs[:k]
}
