// Package mining finds relations between diagnosis codes across a
// collection — the second predecessor project "mined for relations between
// the diagnosis codes themselves". Co-occurrence rules (A and B in the same
// history) and sequential rules (A followed by B) are scored with support,
// confidence and lift.
package mining

import (
	"fmt"
	"sort"
)

// Rule is one mined relation between codes A and B.
type Rule struct {
	A, B string
	// Sequential marks A-then-B ordering rules (vs. co-occurrence).
	Sequential bool
	// Support is the fraction of histories exhibiting the pair.
	Support float64
	// Confidence is P(pair | A present).
	Confidence float64
	// Lift is Confidence / P(B present); > 1 means positive association.
	Lift float64
	// Counts behind the ratios.
	CountPair, CountA, CountB, N int
}

func (r Rule) String() string {
	arrow := "∧"
	if r.Sequential {
		arrow = "→"
	}
	return fmt.Sprintf("%s %s %s (supp %.3f, conf %.2f, lift %.2f, n=%d)",
		r.A, arrow, r.B, r.Support, r.Confidence, r.Lift, r.CountPair)
}

// Options bounds the search.
type Options struct {
	// MinSupport is the minimum fraction of histories exhibiting the
	// pair (default 0.01).
	MinSupport float64
	// MinCount is an absolute floor on pair count (default 2).
	MinCount int
	// MaxGap bounds the position distance for sequential rules; 0 means
	// unbounded.
	MaxGap int
}

func (o *Options) defaults() {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.01
	}
	if o.MinCount <= 0 {
		o.MinCount = 2
	}
}

// Counts is the mergeable map-step partial behind rule mining: per-code
// and per-pair presence tallies over disjoint history sets. Every field
// is an integer sum, so partials produced by different shards merge in
// any grouping to exactly what a sequential pass over the union would
// count — and because Rules derives every ratio once from the merged
// integers, a distributed mine is bit-identical to a local one at any
// shard count.
type Counts struct {
	// Sequential selects ordered (A-then-B) counting; false counts
	// unordered co-occurrence with A<B normalized.
	Sequential bool
	// MaxGap bounds the position distance for sequential pairs; 0 means
	// unbounded. Ignored for co-occurrence.
	MaxGap int
	// N is the number of sequences tallied.
	N int
	// Single counts histories where the code appears at least once.
	Single map[string]int
	// Pair counts histories exhibiting the pair.
	Pair map[[2]string]int
}

// NewCounts creates an empty partial for one counting mode.
func NewCounts(sequential bool, maxGap int) *Counts {
	return &Counts{
		Sequential: sequential,
		MaxGap:     maxGap,
		Single:     make(map[string]int),
		Pair:       make(map[[2]string]int),
	}
}

// AddSequence tallies one history's code sequence. Each history
// contributes at most one count per code and per pair, whatever the
// repetition inside the sequence.
func (c *Counts) AddSequence(seq []string) {
	c.N++
	if c.Sequential {
		present := make(map[string]bool)
		ordered := make(map[[2]string]bool)
		for i, a := range seq {
			present[a] = true
			for j := i + 1; j < len(seq); j++ {
				if c.MaxGap > 0 && j-i > c.MaxGap {
					break
				}
				if seq[j] != a {
					ordered[[2]string{a, seq[j]}] = true
				}
			}
		}
		for code := range present {
			c.Single[code]++
		}
		for p := range ordered {
			c.Pair[p]++
		}
		return
	}
	present := make(map[string]bool)
	for _, code := range seq {
		present[code] = true
	}
	codes := make([]string, 0, len(present))
	for code := range present {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		c.Single[code]++
	}
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			c.Pair[[2]string{codes[i], codes[j]}]++
		}
	}
}

// Merge folds another partial into the receiver. The partials must have
// been produced with the same counting mode: merging a sequential tally
// into a co-occurrence tally (or across MaxGap settings) would silently
// mix incompatible pair semantics, so it errors instead.
func (c *Counts) Merge(o *Counts) error {
	if o == nil {
		return nil
	}
	if c.Sequential != o.Sequential || c.MaxGap != o.MaxGap {
		return fmt.Errorf("mining: cannot merge counts (sequential=%v gap=%d) into (sequential=%v gap=%d)",
			o.Sequential, o.MaxGap, c.Sequential, c.MaxGap)
	}
	c.N += o.N
	if c.Single == nil {
		c.Single = make(map[string]int, len(o.Single))
	}
	if c.Pair == nil {
		c.Pair = make(map[[2]string]int, len(o.Pair))
	}
	for code, n := range o.Single {
		c.Single[code] += n
	}
	for p, n := range o.Pair {
		c.Pair[p] += n
	}
	return nil
}

// HistoryCount reports how many sequences the partial tallied — the
// sanity bound a transport checks a reply against.
func (c *Counts) HistoryCount() int { return c.N }

// Rules finalizes the tally into scored rules. All ratios are computed
// here, once, from the integer counts, so partials merged in any
// grouping finalize to the identical rule list.
func (c *Counts) Rules(opt Options) []Rule {
	opt.defaults()
	if c.N == 0 {
		return nil
	}
	n := c.N
	var out []Rule
	for p, cnt := range c.Pair {
		supp := float64(cnt) / float64(n)
		if supp < opt.MinSupport || cnt < opt.MinCount {
			continue
		}
		a, b := p[0], p[1]
		conf := float64(cnt) / float64(c.Single[a])
		lift := conf / (float64(c.Single[b]) / float64(n))
		out = append(out, Rule{
			A: a, B: b, Sequential: c.Sequential,
			Support: supp, Confidence: conf, Lift: lift,
			CountPair: cnt, CountA: c.Single[a], CountB: c.Single[b], N: n,
		})
	}
	sortRules(out)
	return out
}

// CoOccurrence mines unordered pair rules over code sequences (one
// sequence per history). For each rule A∧B only the (A<B) orientation with
// the code-order normalized is emitted once, but confidence is computed
// for the A side; callers wanting both directions can swap.
//
// This is the local-only convenience form over an in-memory sequence set;
// a connected workbench mines through the engine's Analyze map-reduce
// (core.Workbench.MineRules), which runs the same Counts tally per shard.
func CoOccurrence(seqs [][]string, opt Options) []Rule {
	c := NewCounts(false, 0)
	for _, seq := range seqs {
		c.AddSequence(seq)
	}
	return c.Rules(opt)
}

// Sequential mines ordered rules: A appears and B appears later (within
// MaxGap positions when set). Each history contributes at most one count
// per ordered pair.
//
// Like CoOccurrence, this is the local-only convenience form; distributed
// callers go through core.Workbench.MineRules.
func Sequential(seqs [][]string, opt Options) []Rule {
	c := NewCounts(true, opt.MaxGap)
	for _, seq := range seqs {
		c.AddSequence(seq)
	}
	return c.Rules(opt)
}

// sortRules orders by lift, then support, then lexicographically — the
// order an analyst reads the rule list in.
func sortRules(rs []Rule) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Lift != rs[j].Lift {
			return rs[i].Lift > rs[j].Lift
		}
		if rs[i].Support != rs[j].Support {
			return rs[i].Support > rs[j].Support
		}
		if rs[i].A != rs[j].A {
			return rs[i].A < rs[j].A
		}
		return rs[i].B < rs[j].B
	})
}

// Top returns the k highest-support rules. The cut is fully
// deterministic — support descending, then the rule key (A, B,
// sequential flag) — so two rule lists that carry the same rules in
// different orders truncate to the identical top-k, and distributed and
// local mines diff byte-identical.
func Top(rs []Rule, k int) []Rule {
	out := append([]Rule(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return !out[i].Sequential && out[j].Sequential
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
