package mining

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// Population: T90 and K86 strongly associated; R74 independent noise.
func assocSeqs() [][]string {
	return [][]string{
		{"T90", "K86"},
		{"T90", "K86", "R74"},
		{"K86", "T90"},
		{"T90", "K86"},
		{"R74"},
		{"L03", "R74"},
		{"T90", "K86", "F83"},
		{"U71"},
	}
}

func findRule(rs []Rule, a, b string) *Rule {
	for i := range rs {
		if rs[i].A == a && rs[i].B == b {
			return &rs[i]
		}
	}
	return nil
}

func TestCoOccurrenceCounts(t *testing.T) {
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.1})
	r := findRule(rules, "K86", "T90")
	if r == nil {
		t.Fatalf("K86∧T90 not mined: %v", rules)
	}
	if r.CountPair != 5 || r.N != 8 {
		t.Errorf("counts = %d/%d", r.CountPair, r.N)
	}
	if math.Abs(r.Support-5.0/8) > 1e-9 {
		t.Errorf("support = %f", r.Support)
	}
	if math.Abs(r.Confidence-1.0) > 1e-9 { // K86 always with T90
		t.Errorf("confidence = %f", r.Confidence)
	}
	wantLift := 1.0 / (5.0 / 8.0)
	if math.Abs(r.Lift-wantLift) > 1e-9 {
		t.Errorf("lift = %f, want %f", r.Lift, wantLift)
	}
}

func TestCoOccurrenceThresholds(t *testing.T) {
	// High support threshold prunes everything but the strong pair.
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.5})
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	// MinCount prunes singleton pairs.
	rules = CoOccurrence(assocSeqs(), Options{MinSupport: 0.01, MinCount: 3})
	for _, r := range rules {
		if r.CountPair < 3 {
			t.Errorf("rule below MinCount: %v", r)
		}
	}
}

func TestCoOccurrenceDedupWithinHistory(t *testing.T) {
	// Repeated codes in one history must count once.
	rules := CoOccurrence([][]string{
		{"T90", "T90", "K86", "K86", "K86"},
		{"T90", "K86"},
	}, Options{MinSupport: 0.1})
	r := findRule(rules, "K86", "T90")
	if r == nil || r.CountPair != 2 {
		t.Fatalf("rule = %v", r)
	}
}

func TestSequentialDirectionality(t *testing.T) {
	seqs := [][]string{
		{"K75", "K77"},
		{"K75", "A04", "K77"},
		{"K75", "K77"},
		{"K77"},
		{"K75"},
	}
	rules := Sequential(seqs, Options{MinSupport: 0.1})
	fwd := findRule(rules, "K75", "K77")
	if fwd == nil || fwd.CountPair != 3 {
		t.Fatalf("K75→K77 = %v", fwd)
	}
	if rev := findRule(rules, "K77", "K75"); rev != nil {
		t.Errorf("reverse rule mined without evidence: %v", rev)
	}
	if !fwd.Sequential || !strings.Contains(fwd.String(), "→") {
		t.Error("sequential marking broken")
	}
}

func TestSequentialMaxGap(t *testing.T) {
	seqs := [][]string{
		{"K75", "X", "X", "X", "K77"},
		{"K75", "X", "X", "X", "K77"},
	}
	// Gap 4 needed; MaxGap 2 must prune.
	rules := Sequential(seqs, Options{MinSupport: 0.1, MaxGap: 2})
	if findRule(rules, "K75", "K77") != nil {
		t.Error("MaxGap not enforced")
	}
	rules = Sequential(seqs, Options{MinSupport: 0.1, MaxGap: 4})
	if findRule(rules, "K75", "K77") == nil {
		t.Error("MaxGap 4 should allow the rule")
	}
}

func TestSortOrderAndTop(t *testing.T) {
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.01})
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Lift < rules[i].Lift {
			t.Fatal("rules not sorted by lift")
		}
	}
	if got := Top(rules, 1); len(got) != 1 {
		t.Error("Top broken")
	}
	if got := Top(rules, 1000); len(got) != len(rules) {
		t.Error("Top overflow broken")
	}
}

func TestEmptyInputs(t *testing.T) {
	if CoOccurrence(nil, Options{}) != nil {
		t.Error("nil seqs should mine nothing")
	}
	if Sequential(nil, Options{}) != nil {
		t.Error("nil seqs should mine nothing")
	}
	if len(CoOccurrence([][]string{{"A"}}, Options{})) != 0 {
		t.Error("single-code history should mine nothing")
	}
}

func TestStringer(t *testing.T) {
	r := Rule{A: "T90", B: "F83", Support: 0.1, Confidence: 0.5, Lift: 2, CountPair: 4}
	if !strings.Contains(r.String(), "∧") {
		t.Error("co-occurrence stringer broken")
	}
}

// Partials built over any partition of the histories must finalize to
// the identical rule list — the property distributed mining rests on.
func TestCountsMergeParity(t *testing.T) {
	seqs := assocSeqs()
	opt := Options{MinSupport: 0.01}
	want := CoOccurrence(seqs, opt)

	for _, cut := range [][]int{{3}, {1, 5}, {2, 4, 6}} {
		merged := NewCounts(false, 0)
		prev := 0
		for _, end := range append(cut, len(seqs)) {
			part := NewCounts(false, 0)
			for _, s := range seqs[prev:end] {
				part.AddSequence(s)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
			prev = end
		}
		if merged.HistoryCount() != len(seqs) {
			t.Fatalf("cut %v: merged %d histories, want %d", cut, merged.HistoryCount(), len(seqs))
		}
		if got := merged.Rules(opt); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %v: merged rules differ from direct mine\n got %v\nwant %v", cut, got, want)
		}
	}
}

func TestCountsMergeModeMismatch(t *testing.T) {
	if err := NewCounts(false, 0).Merge(NewCounts(true, 0)); err == nil {
		t.Error("merging sequential into co-occurrence counts should error")
	}
	if err := NewCounts(true, 2).Merge(NewCounts(true, 3)); err == nil {
		t.Error("merging across MaxGap settings should error")
	}
	c := NewCounts(true, 2)
	if err := c.Merge(nil); err != nil {
		t.Errorf("nil merge should be a no-op, got %v", err)
	}
}

// Top's cut must not depend on the incoming order: rules that tie on
// support break the tie on the rule key, so any permutation of the same
// rule list truncates to the identical top-k.
func TestTopDeterministicOnTies(t *testing.T) {
	tied := []Rule{
		{A: "T90", B: "K86", Support: 0.5, Lift: 3},
		{A: "A01", B: "B02", Support: 0.5, Lift: 1},
		{A: "A01", B: "B02", Support: 0.5, Lift: 2, Sequential: true},
		{A: "L03", B: "R74", Support: 0.7, Lift: 1},
		{A: "A01", B: "A09", Support: 0.5, Lift: 9},
	}
	want := Top(tied, 3)
	// Every rotation of the input must truncate identically.
	for shift := 1; shift < len(tied); shift++ {
		rotated := append(append([]Rule(nil), tied[shift:]...), tied[:shift]...)
		if got := Top(rotated, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("rotation %d: Top differs\n got %v\nwant %v", shift, got, want)
		}
	}
	if want[0].A != "L03" {
		t.Errorf("highest support rule should lead, got %v", want[0])
	}
	// Within the 0.5 tie, (A01,A09) sorts before (A01,B02), and the
	// co-occurrence form of (A01,B02) before its sequential twin.
	if want[1].B != "A09" || want[2].B != "B02" || want[2].Sequential {
		t.Errorf("tie-break order wrong: %v", want[1:])
	}
}
