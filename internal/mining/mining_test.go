package mining

import (
	"math"
	"strings"
	"testing"
)

// Population: T90 and K86 strongly associated; R74 independent noise.
func assocSeqs() [][]string {
	return [][]string{
		{"T90", "K86"},
		{"T90", "K86", "R74"},
		{"K86", "T90"},
		{"T90", "K86"},
		{"R74"},
		{"L03", "R74"},
		{"T90", "K86", "F83"},
		{"U71"},
	}
}

func findRule(rs []Rule, a, b string) *Rule {
	for i := range rs {
		if rs[i].A == a && rs[i].B == b {
			return &rs[i]
		}
	}
	return nil
}

func TestCoOccurrenceCounts(t *testing.T) {
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.1})
	r := findRule(rules, "K86", "T90")
	if r == nil {
		t.Fatalf("K86∧T90 not mined: %v", rules)
	}
	if r.CountPair != 5 || r.N != 8 {
		t.Errorf("counts = %d/%d", r.CountPair, r.N)
	}
	if math.Abs(r.Support-5.0/8) > 1e-9 {
		t.Errorf("support = %f", r.Support)
	}
	if math.Abs(r.Confidence-1.0) > 1e-9 { // K86 always with T90
		t.Errorf("confidence = %f", r.Confidence)
	}
	wantLift := 1.0 / (5.0 / 8.0)
	if math.Abs(r.Lift-wantLift) > 1e-9 {
		t.Errorf("lift = %f, want %f", r.Lift, wantLift)
	}
}

func TestCoOccurrenceThresholds(t *testing.T) {
	// High support threshold prunes everything but the strong pair.
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.5})
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	// MinCount prunes singleton pairs.
	rules = CoOccurrence(assocSeqs(), Options{MinSupport: 0.01, MinCount: 3})
	for _, r := range rules {
		if r.CountPair < 3 {
			t.Errorf("rule below MinCount: %v", r)
		}
	}
}

func TestCoOccurrenceDedupWithinHistory(t *testing.T) {
	// Repeated codes in one history must count once.
	rules := CoOccurrence([][]string{
		{"T90", "T90", "K86", "K86", "K86"},
		{"T90", "K86"},
	}, Options{MinSupport: 0.1})
	r := findRule(rules, "K86", "T90")
	if r == nil || r.CountPair != 2 {
		t.Fatalf("rule = %v", r)
	}
}

func TestSequentialDirectionality(t *testing.T) {
	seqs := [][]string{
		{"K75", "K77"},
		{"K75", "A04", "K77"},
		{"K75", "K77"},
		{"K77"},
		{"K75"},
	}
	rules := Sequential(seqs, Options{MinSupport: 0.1})
	fwd := findRule(rules, "K75", "K77")
	if fwd == nil || fwd.CountPair != 3 {
		t.Fatalf("K75→K77 = %v", fwd)
	}
	if rev := findRule(rules, "K77", "K75"); rev != nil {
		t.Errorf("reverse rule mined without evidence: %v", rev)
	}
	if !fwd.Sequential || !strings.Contains(fwd.String(), "→") {
		t.Error("sequential marking broken")
	}
}

func TestSequentialMaxGap(t *testing.T) {
	seqs := [][]string{
		{"K75", "X", "X", "X", "K77"},
		{"K75", "X", "X", "X", "K77"},
	}
	// Gap 4 needed; MaxGap 2 must prune.
	rules := Sequential(seqs, Options{MinSupport: 0.1, MaxGap: 2})
	if findRule(rules, "K75", "K77") != nil {
		t.Error("MaxGap not enforced")
	}
	rules = Sequential(seqs, Options{MinSupport: 0.1, MaxGap: 4})
	if findRule(rules, "K75", "K77") == nil {
		t.Error("MaxGap 4 should allow the rule")
	}
}

func TestSortOrderAndTop(t *testing.T) {
	rules := CoOccurrence(assocSeqs(), Options{MinSupport: 0.01})
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Lift < rules[i].Lift {
			t.Fatal("rules not sorted by lift")
		}
	}
	if got := Top(rules, 1); len(got) != 1 {
		t.Error("Top broken")
	}
	if got := Top(rules, 1000); len(got) != len(rules) {
		t.Error("Top overflow broken")
	}
}

func TestEmptyInputs(t *testing.T) {
	if CoOccurrence(nil, Options{}) != nil {
		t.Error("nil seqs should mine nothing")
	}
	if Sequential(nil, Options{}) != nil {
		t.Error("nil seqs should mine nothing")
	}
	if len(CoOccurrence([][]string{{"A"}}, Options{})) != 0 {
		t.Error("single-code history should mine nothing")
	}
}

func TestStringer(t *testing.T) {
	r := Rule{A: "T90", B: "F83", Support: 0.1, Confidence: 0.5, Lift: 2, CountPair: 4}
	if !strings.Contains(r.String(), "∧") {
		t.Error("co-occurrence stringer broken")
	}
}
