package stats

import (
	"fmt"
	"strings"

	"pastas/internal/model"
)

// Cohort characteristics as mergeable dimension breakdowns — the
// compare-cohorts half of the explore loop. Like IndicatorCounts, a
// CohortProfile is an integral tally: every field is an integer sum over
// disjoint patients, so per-shard partials merged in any grouping equal a
// sequential pass over the whole cohort bit for bit, and comparing two
// cohorts never ships a single history to the coordinator — each shard
// returns one fixed-size struct per cohort.

// profileAgeBands is the number of 15-year age bands (the last is open).
const profileAgeBands = 7

// profileSources and profileTypes size the dimension arrays: one slot per
// model constant including the zero "unknown" value, so any uint8 the
// wire could carry lands in a bucket or is dropped, never out of range.
const (
	profileSources = 6
	profileTypes   = 7
)

// CohortProfile is the dimension breakdown of one cohort over a window:
// demographics at window start, and in-window entry tallies by registry
// source and entry type.
type CohortProfile struct {
	Patients int

	// Demographics at window start.
	Females  int
	Males    int
	AgeYears int64                // sum of whole-year ages, for the mean
	AgeBands [profileAgeBands]int // 15-year bands: [0,15), [15,30), …, [90,∞)

	// In-window entry tallies.
	Entries  int
	BySource [profileSources]int // indexed by model.Source
	ByType   [profileTypes]int   // indexed by model.Type
}

// AddHistory tallies one patient into the profile. The in-window test is
// the same one IndicatorCounts uses: intervals count when their clamped
// period is non-empty, points when the window contains them.
func (p *CohortProfile) AddHistory(h *model.History, window model.Period) {
	p.Patients++
	switch h.Patient.Sex {
	case model.SexFemale:
		p.Females++
	case model.SexMale:
		p.Males++
	}
	age := h.Patient.AgeAt(window.Start)
	if age < 0 {
		age = 0
	}
	p.AgeYears += int64(age)
	band := age / 15
	if band >= profileAgeBands {
		band = profileAgeBands - 1
	}
	p.AgeBands[band]++
	for i := range h.Entries {
		e := &h.Entries[i]
		pd := e.Period().Clamp(window)
		inWindow := e.Kind == model.Interval && !pd.Empty() ||
			e.Kind == model.Point && window.Contains(e.Start)
		if !inWindow {
			continue
		}
		p.Entries++
		if int(e.Source) < profileSources {
			p.BySource[e.Source]++
		}
		if int(e.Type) < profileTypes {
			p.ByType[e.Type]++
		}
	}
}

// Merge folds another partial profile into the receiver. Integer sums
// over disjoint patients are exactly associative, so merge order and
// grouping can never change the result.
func (p *CohortProfile) Merge(o CohortProfile) {
	p.Patients += o.Patients
	p.Females += o.Females
	p.Males += o.Males
	p.AgeYears += o.AgeYears
	for i := range p.AgeBands {
		p.AgeBands[i] += o.AgeBands[i]
	}
	p.Entries += o.Entries
	for i := range p.BySource {
		p.BySource[i] += o.BySource[i]
	}
	for i := range p.ByType {
		p.ByType[i] += o.ByType[i]
	}
}

// MeanAge returns the mean whole-year age at window start.
func (p CohortProfile) MeanAge() float64 {
	if p.Patients == 0 {
		return 0
	}
	return float64(p.AgeYears) / float64(p.Patients)
}

// AgeBandLabel names band i ("0-14", …, "90+").
func AgeBandLabel(i int) string {
	if i >= profileAgeBands-1 {
		return fmt.Sprintf("%d+", (profileAgeBands-1)*15)
	}
	return fmt.Sprintf("%d-%d", i*15, i*15+14)
}

// ComputeCohortProfile tallies a whole collection sequentially — the
// reference the sharded aggregation is parity-tested against.
func ComputeCohortProfile(col *model.Collection, window model.Period) CohortProfile {
	var p CohortProfile
	for _, h := range col.Histories() {
		p.AddHistory(h, window)
	}
	return p
}

// Table renders the profile for terminal display.
func (p CohortProfile) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d patients (mean age %.1f; %d female / %d male), %d entries in window\n",
		p.Patients, p.MeanAge(), p.Females, p.Males, p.Entries)
	fmt.Fprintf(&b, "  age bands:\n")
	for i, n := range p.AgeBands {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-6s %8d\n", AgeBandLabel(i), n)
	}
	fmt.Fprintf(&b, "  entries by source:\n")
	for _, s := range model.Sources() {
		if p.BySource[s] == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-12s %8d\n", s, p.BySource[s])
	}
	fmt.Fprintf(&b, "  entries by type:\n")
	for _, t := range model.Types() {
		if p.ByType[t] == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-12s %8d\n", t, p.ByType[t])
	}
	return b.String()
}
