package stats

// The property the distributed indicator aggregation rests on: partial
// tallies accumulated over any partition of a cohort, merged in any
// grouping, finalize to bit-identical Indicators. The tallies are
// integral (counts, Time ticks, whole years), so the only floating-point
// arithmetic happens once in Finalize over exact sums — no partition can
// perturb a single bit.

import (
	"math/rand"
	"testing"
	"time"

	"pastas/internal/model"
)

func mergeFixture(n int, seed int64) []*model.History {
	r := rand.New(rand.NewSource(seed))
	hs := make([]*model.History, 0, n)
	for i := 0; i < n; i++ {
		h := model.NewHistory(model.Patient{
			ID:    model.PatientID(i + 1),
			Birth: model.Date(1920+r.Intn(80), time.Month(1+r.Intn(12)), 1+r.Intn(28)),
			Sex:   model.Sex(r.Intn(3)),
		})
		for j := 0; j < r.Intn(12); j++ {
			start := model.Date(2010, 1, 1) + model.Time(r.Intn(2*365*24*60)) // minute-resolution
			e := model.Entry{
				ID:     uint64(j + 1),
				Start:  start,
				Source: model.Source(r.Intn(6)),
				Type:   model.Type(r.Intn(7)),
			}
			if r.Intn(2) == 0 {
				e.Kind = model.Interval
				// Odd minute counts, so per-patient day fractions would
				// not be exactly representable — the case that breaks
				// divide-then-sum aggregation.
				e.End = start + model.Time(1+r.Intn(100000))
			}
			if r.Intn(4) == 0 {
				e.Text = "legevakt"
			}
			h.Add(e)
		}
		h.Sort()
		hs = append(hs, h)
	}
	return hs
}

func TestIndicatorCountsMergeParity(t *testing.T) {
	window := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2012, 1, 1)}
	hs := mergeFixture(157, 42)
	want := ComputeIndicators(model.MustCollection(hs...), window)

	for _, parts := range []int{1, 2, 4, 16, 157} {
		chunk := (len(hs) + parts - 1) / parts
		var merged IndicatorCounts
		for lo := 0; lo < len(hs); lo += chunk {
			hi := lo + chunk
			if hi > len(hs) {
				hi = len(hs)
			}
			var partial IndicatorCounts
			for _, h := range hs[lo:hi] {
				partial.AddHistory(h, window)
			}
			merged.Merge(partial)
		}
		if got := merged.Finalize(window); got != want {
			t.Fatalf("parts=%d: merged indicators diverge:\ngot  %+v\nwant %+v", parts, got, want)
		}
	}
}

func TestIndicatorCountsEmptyAndZeroWindow(t *testing.T) {
	var c IndicatorCounts
	if got := c.Finalize(model.Period{}); got.Patients != 0 || got.PatientYears != 0 {
		t.Errorf("empty finalize = %+v", got)
	}
	hs := mergeFixture(3, 7)
	for _, h := range hs {
		c.AddHistory(h, model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2011, 1, 1)})
	}
	if got := c.Finalize(model.Period{}); got.PatientYears != 0 {
		t.Errorf("zero-window finalize has patient-years: %+v", got)
	}
}
