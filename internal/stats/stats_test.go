package stats

import (
	"math"
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
)

func TestDescriptives(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("mean = %f", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("median = %f", Median(xs))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %f", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %f", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %f", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("sd = %f", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty input must be 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("interpolated median = %f", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := Histogram(xs, 5)
	if len(h) != 5 {
		t.Fatalf("buckets = %d", len(h))
	}
	total := 0
	for _, b := range h {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("histogram lost values: %d", total)
	}
	// Max value lands in the last bucket.
	if h[4].Count == 0 {
		t.Error("max value missing from last bucket")
	}
	if Histogram(nil, 3) != nil || Histogram(xs, 0) != nil {
		t.Error("degenerate histograms must be nil")
	}
	flat := Histogram([]float64{2, 2, 2}, 4)
	if len(flat) != 1 || flat[0].Count != 3 {
		t.Errorf("constant histogram = %v", flat)
	}
}

func TestProportion(t *testing.T) {
	if Proportion(1, 4) != "25.0%" {
		t.Errorf("Proportion = %s", Proportion(1, 4))
	}
	if Proportion(1, 0) != "n/a" {
		t.Error("division by zero unhandled")
	}
}

func surveyCollection(t *testing.T, n int, contactsEach int) *model.Collection {
	t.Helper()
	col := &model.Collection{}
	base := model.Date(2010, time.January, 1)
	id := uint64(1)
	for i := 0; i < n; i++ {
		h := model.NewHistory(model.Patient{ID: model.PatientID(i + 1), Birth: model.Date(1950, time.June, 1)})
		for c := 0; c < contactsEach; c++ {
			h.Add(model.Entry{
				ID: id, Kind: model.Point, Start: base.AddDays(c * 10), End: base.AddDays(c * 10),
				Source: model.SourceGP, Type: model.TypeContact,
			})
			id++
		}
		if err := col.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	return col
}

func TestSurveyDeterministic(t *testing.T) {
	col := surveyCollection(t, 500, 15)
	p := DefaultSurveyParams()
	a := SimulateSurvey(col, p)
	b := SimulateSurvey(col, p)
	if a != b {
		t.Error("survey not deterministic")
	}
	if a.N != 500 || a.Recognized+a.NotRemember+a.AllWrong != a.N {
		t.Errorf("outcome accounting broken: %+v", a)
	}
}

func TestSurveyShape(t *testing.T) {
	p := DefaultSurveyParams()
	// Patients with many contacts recognize more than patients with few.
	dense := SimulateSurvey(surveyCollection(t, 3000, 30), p)
	sparse := SimulateSurvey(surveyCollection(t, 3000, 2), p)
	dr, dn, _ := dense.Proportions()
	sr, sn, _ := sparse.Proportions()
	if dn >= sn {
		t.Errorf("forgetting should decrease with contacts: dense %.3f vs sparse %.3f", dn, sn)
	}
	if dr <= sr {
		t.Error("recognition should increase with contacts")
	}
	// Wrong-linkage rate is contact-independent and ≈1%.
	_, _, dw := dense.Proportions()
	if dw < 0.003 || dw > 0.03 {
		t.Errorf("all-wrong fraction = %.3f, want ≈0.011", dw)
	}
}

func TestSurveyStringer(t *testing.T) {
	r := SurveyResult{N: 100, Recognized: 92, NotRemember: 7, AllWrong: 1}
	s := r.String()
	for _, want := range []string{"92.0%", "7.0%", "1.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("stringer missing %q: %s", want, s)
		}
	}
	rec, notRem, wrong := (SurveyResult{}).Proportions()
	if rec != 0 || notRem != 0 || wrong != 0 {
		t.Error("empty proportions broken")
	}
}

func TestComputeIndicators(t *testing.T) {
	window := model.Period{Start: model.Date(2010, time.January, 1), End: model.Date(2012, time.January, 1)}
	col := &model.Collection{}
	h := model.NewHistory(model.Patient{ID: 1, Birth: model.Date(1950, time.June, 1), Sex: model.SexFemale})
	base := window.Start
	// 4 GP contacts, one admission of 10 days, one 90-day homecare span,
	// one prescription — over 2 patient-years.
	for i := 0; i < 4; i++ {
		h.Add(model.Entry{ID: uint64(i + 1), Kind: model.Point, Start: base.AddDays(i * 100), End: base.AddDays(i * 100),
			Source: model.SourceGP, Type: model.TypeContact})
	}
	h.Add(model.Entry{ID: 10, Kind: model.Interval, Start: base.AddDays(30), End: base.AddDays(40),
		Source: model.SourceHospital, Type: model.TypeStay})
	h.Add(model.Entry{ID: 11, Kind: model.Interval, Start: base.AddDays(100), End: base.AddDays(190),
		Source: model.SourceMunicipal, Type: model.TypeService})
	h.Add(model.Entry{ID: 12, Kind: model.Interval, Start: base.AddDays(5), End: base.AddDays(95),
		Source: model.SourceGP, Type: model.TypeMedication, Code: model.Code{System: "ATC", Value: "C07AB02"}})
	if err := col.Add(h); err != nil {
		t.Fatal(err)
	}

	ind := ComputeIndicators(col, window)
	if ind.Patients != 1 {
		t.Fatalf("patients = %d", ind.Patients)
	}
	if math.Abs(ind.PatientYears-2) > 0.02 {
		t.Errorf("patient-years = %f", ind.PatientYears)
	}
	// 4 contacts / 2 py = 200 per 100 py.
	if math.Abs(ind.GPContacts-200) > 5 {
		t.Errorf("GP contacts per 100py = %f", ind.GPContacts)
	}
	if math.Abs(ind.Admissions-50) > 2 {
		t.Errorf("admissions per 100py = %f", ind.Admissions)
	}
	if math.Abs(ind.AdmissionDays-500) > 15 {
		t.Errorf("bed-days per 100py = %f", ind.AdmissionDays)
	}
	if math.Abs(ind.HomeCareDays-4500) > 150 {
		t.Errorf("home-care days per 100py = %f", ind.HomeCareDays)
	}
	if ind.FemaleShare != 1 || ind.MeanAge < 59 || ind.MeanAge > 60 {
		t.Errorf("demographics: age %f female %f", ind.MeanAge, ind.FemaleShare)
	}
	table := ind.Table()
	for _, want := range []string{"GP contacts", "bed-days", "per 100 patient-years"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestComputeIndicatorsEmpty(t *testing.T) {
	ind := ComputeIndicators(&model.Collection{}, model.Period{})
	if ind.Patients != 0 || ind.PatientYears != 0 {
		t.Errorf("empty indicators = %+v", ind)
	}
}

func TestIndicatorsClampToWindow(t *testing.T) {
	window := model.Period{Start: model.Date(2010, time.January, 1), End: model.Date(2011, time.January, 1)}
	col := &model.Collection{}
	h := model.NewHistory(model.Patient{ID: 1, Birth: model.Date(1950, time.June, 1)})
	// A stay straddling the window end: only in-window days count.
	h.Add(model.Entry{ID: 1, Kind: model.Interval,
		Start: window.End.AddDays(-5), End: window.End.AddDays(5),
		Source: model.SourceHospital, Type: model.TypeStay})
	// A contact outside the window: not counted.
	h.Add(model.Entry{ID: 2, Kind: model.Point, Start: window.End.AddDays(30), End: window.End.AddDays(30),
		Source: model.SourceGP, Type: model.TypeContact})
	if err := col.Add(h); err != nil {
		t.Fatal(err)
	}
	ind := ComputeIndicators(col, window)
	if ind.GPContacts != 0 {
		t.Errorf("out-of-window contact counted: %f", ind.GPContacts)
	}
	if math.Abs(ind.AdmissionDays-500) > 15 { // 5 days / 1 py = 500 per 100py
		t.Errorf("clamped bed-days = %f", ind.AdmissionDays)
	}
}
