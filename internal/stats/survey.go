package stats

import (
	"fmt"
	"math"
	"math/rand"

	"pastas/internal/model"
)

// The recognition survey (experiment E2). Section IV: trajectories were
// presented to the patients "in a simplified form to get their feedback";
// "only 1% of the patients said that everything was wrong in the presented
// trajectories/contacts we thought they had had with the health service,
// while 92% could easily recognize their own trajectory and 7% did not
// remember."
//
// We cannot survey humans, so we model the two causal mechanisms the paper
// implies and regenerate the proportions:
//
//   - "everything wrong" ⇐ the aggregation linked the wrong person's
//     records (registry linkage error), a per-patient event with a small
//     fixed probability;
//   - "did not remember" ⇐ recall failure, more likely the fewer and the
//     older the patient's contacts are (recall decays with sparse recent
//     contact).
//
// Parameters are calibrated so the selected-cohort distribution of contact
// counts yields the published 92/7/1 split.

// SurveyOutcome is one respondent's answer.
type SurveyOutcome int

const (
	// Recognized: "could easily recognize their own trajectory".
	Recognized SurveyOutcome = iota
	// NotRemember: "did not remember".
	NotRemember
	// AllWrong: "everything was wrong in the presented trajectories".
	AllWrong
)

// SurveyParams configures the model.
type SurveyParams struct {
	Seed int64
	// WrongLinkageRate is the probability a presented trajectory was
	// assembled from mislinked records.
	WrongLinkageRate float64
	// ForgetBase and ForgetTau shape recall failure:
	// P(not remember) = ForgetBase · exp(-contacts/ForgetTau).
	ForgetBase float64
	ForgetTau  float64
}

// DefaultSurveyParams returns the calibrated parameters.
func DefaultSurveyParams() SurveyParams {
	return SurveyParams{
		Seed:             2014, // the survey year (Wågbø 2014)
		WrongLinkageRate: 0.011,
		ForgetBase:       0.25,
		ForgetTau:        12,
	}
}

// SurveyResult aggregates outcomes.
type SurveyResult struct {
	N           int
	Recognized  int
	NotRemember int
	AllWrong    int
}

// Proportions returns the three fractions in paper order (recognized, not
// remember, all wrong).
func (r SurveyResult) Proportions() (rec, notRem, wrong float64) {
	if r.N == 0 {
		return 0, 0, 0
	}
	n := float64(r.N)
	return float64(r.Recognized) / n, float64(r.NotRemember) / n, float64(r.AllWrong) / n
}

func (r SurveyResult) String() string {
	rec, notRem, wrong := r.Proportions()
	return fmt.Sprintf("survey n=%d: recognized %.1f%%, did not remember %.1f%%, everything wrong %.1f%%",
		r.N, 100*rec, 100*notRem, 100*wrong)
}

// SimulateSurvey presents each patient in the collection with their own
// trajectory and samples an outcome.
func SimulateSurvey(col *model.Collection, p SurveyParams) SurveyResult {
	rng := rand.New(rand.NewSource(p.Seed))
	var res SurveyResult
	for _, h := range col.Histories() {
		res.N++
		switch outcome(rng, h, p) {
		case AllWrong:
			res.AllWrong++
		case NotRemember:
			res.NotRemember++
		default:
			res.Recognized++
		}
	}
	return res
}

func outcome(rng *rand.Rand, h *model.History, p SurveyParams) SurveyOutcome {
	if rng.Float64() < p.WrongLinkageRate {
		return AllWrong
	}
	contacts := h.Count(func(e *model.Entry) bool { return e.Type == model.TypeContact })
	pForget := p.ForgetBase * math.Exp(-float64(contacts)/p.ForgetTau)
	if rng.Float64() < pForget {
		return NotRemember
	}
	return Recognized
}
