package stats

import (
	"fmt"
	"strings"

	"pastas/internal/model"
)

// Utilization indicators — the paper's introduction lists "statistical
// indicator analysis" as one of the established ways of extracting
// knowledge from the record databases; the workbench complements it, and
// analysts want both side by side. Indicators summarizes a cohort's
// utilization the way registry reports do: rates per 100 patient-years by
// source and type.

// Indicators is the utilization summary for a collection over a window.
type Indicators struct {
	Patients     int
	PatientYears float64

	// Per-100-patient-year rates.
	GPContacts         float64
	EmergencyShare     float64 // share of GP contacts flagged emergency (0..1)
	Admissions         float64
	AdmissionDays      float64
	OutpatientVisits   float64
	SpecialistContacts float64
	PhysioContacts     float64
	HomeCareDays       float64
	NursingDays        float64
	Prescriptions      float64

	// Demographics.
	MeanAge     float64
	FemaleShare float64
}

// IndicatorCounts is the mergeable form of the indicator aggregation: raw
// event tallies and duration sums in integral units (events counted,
// durations in Time ticks, ages in whole years). Integer sums are exactly
// associative, so partial counts accumulated per shard and merged in any
// grouping finalize to bit-identical Indicators — the property that lets
// shard servers aggregate their slice of a cohort server-side and a
// coordinator combine the partials without shipping a single history.
type IndicatorCounts struct {
	Patients int

	GPContacts         int
	EmergencyGP        int
	Admissions         int
	OutpatientVisits   int
	SpecialistContacts int
	PhysioContacts     int
	Prescriptions      int

	// Duration tallies in model.Time ticks (minutes), window-clamped.
	AdmissionTicks int64
	HomeCareTicks  int64
	NursingTicks   int64

	// Demographics: sum of whole-year ages at window start, female count.
	AgeYears int64
	Females  int
}

// AddHistory tallies one patient's history over the window.
func (c *IndicatorCounts) AddHistory(h *model.History, window model.Period) {
	c.Patients++
	c.AgeYears += int64(h.Patient.AgeAt(window.Start))
	if h.Patient.Sex == model.SexFemale {
		c.Females++
	}
	for i := range h.Entries {
		e := &h.Entries[i]
		p := e.Period().Clamp(window)
		inWindow := e.Kind == model.Interval && !p.Empty() ||
			e.Kind == model.Point && window.Contains(e.Start)
		if !inWindow {
			continue
		}
		switch e.Type {
		case model.TypeContact:
			switch e.Source {
			case model.SourceGP:
				c.GPContacts++
				if strings.Contains(e.Text, "legevakt") || strings.Contains(e.Text, "akutt") {
					c.EmergencyGP++
				}
			case model.SourceHospital:
				c.OutpatientVisits++
			case model.SourceSpecialist:
				c.SpecialistContacts++
			case model.SourcePhysio:
				c.PhysioContacts++
			}
		case model.TypeStay:
			switch e.Source {
			case model.SourceHospital:
				c.Admissions++
				c.AdmissionTicks += int64(p.Duration())
			case model.SourceMunicipal:
				c.NursingTicks += int64(p.Duration())
			}
		case model.TypeService:
			c.HomeCareTicks += int64(p.Duration())
		case model.TypeMedication:
			c.Prescriptions++
		}
	}
}

// Merge folds another partial tally into the receiver. Every field is an
// integer sum over disjoint patients, so merging is exact and
// order-independent.
func (c *IndicatorCounts) Merge(o IndicatorCounts) {
	c.Patients += o.Patients
	c.GPContacts += o.GPContacts
	c.EmergencyGP += o.EmergencyGP
	c.Admissions += o.Admissions
	c.OutpatientVisits += o.OutpatientVisits
	c.SpecialistContacts += o.SpecialistContacts
	c.PhysioContacts += o.PhysioContacts
	c.Prescriptions += o.Prescriptions
	c.AdmissionTicks += o.AdmissionTicks
	c.HomeCareTicks += o.HomeCareTicks
	c.NursingTicks += o.NursingTicks
	c.AgeYears += o.AgeYears
	c.Females += o.Females
}

// Finalize converts the tallies into per-100-patient-year rates. The only
// floating-point arithmetic in the whole aggregation happens here, once,
// over exact integer sums.
func (c IndicatorCounts) Finalize(window model.Period) Indicators {
	ind := Indicators{Patients: c.Patients}
	if c.Patients == 0 || window.Empty() {
		return ind
	}
	years := float64(window.Duration()) / float64(model.Year)
	ind.PatientYears = years * float64(c.Patients)
	per100 := func(n float64) float64 { return 100 * n / ind.PatientYears }
	days := func(ticks int64) float64 { return float64(ticks) / float64(model.Day) }
	ind.GPContacts = per100(float64(c.GPContacts))
	if c.GPContacts > 0 {
		ind.EmergencyShare = float64(c.EmergencyGP) / float64(c.GPContacts)
	}
	ind.Admissions = per100(float64(c.Admissions))
	ind.AdmissionDays = per100(days(c.AdmissionTicks))
	ind.OutpatientVisits = per100(float64(c.OutpatientVisits))
	ind.SpecialistContacts = per100(float64(c.SpecialistContacts))
	ind.PhysioContacts = per100(float64(c.PhysioContacts))
	ind.HomeCareDays = per100(days(c.HomeCareTicks))
	ind.NursingDays = per100(days(c.NursingTicks))
	ind.Prescriptions = per100(float64(c.Prescriptions))
	ind.MeanAge = float64(c.AgeYears) / float64(c.Patients)
	ind.FemaleShare = float64(c.Females) / float64(c.Patients)
	return ind
}

// ComputeIndicators derives the summary over the window.
func ComputeIndicators(col *model.Collection, window model.Period) Indicators {
	if col.Len() == 0 || window.Empty() {
		return Indicators{Patients: col.Len()}
	}
	var counts IndicatorCounts
	for _, h := range col.Histories() {
		counts.AddHistory(h, window)
	}
	return counts.Finalize(window)
}

// Table renders the indicator report (rates per 100 patient-years).
func (ind Indicators) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cohort: %d patients, %.0f patient-years (mean age %.1f, %.0f%% female)\n",
		ind.Patients, ind.PatientYears, ind.MeanAge, 100*ind.FemaleShare)
	fmt.Fprintf(&b, "  per 100 patient-years:\n")
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "GP contacts", ind.GPContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital admissions", ind.Admissions)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital bed-days", ind.AdmissionDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital outpatient visits", ind.OutpatientVisits)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "private specialist contacts", ind.SpecialistContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "physiotherapy contacts", ind.PhysioContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "home-care days", ind.HomeCareDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "nursing-home days", ind.NursingDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "prescriptions", ind.Prescriptions)
	return b.String()
}
