package stats

import (
	"fmt"
	"strings"

	"pastas/internal/model"
)

// Utilization indicators — the paper's introduction lists "statistical
// indicator analysis" as one of the established ways of extracting
// knowledge from the record databases; the workbench complements it, and
// analysts want both side by side. Indicators summarizes a cohort's
// utilization the way registry reports do: rates per 100 patient-years by
// source and type.

// Indicators is the utilization summary for a collection over a window.
type Indicators struct {
	Patients     int
	PatientYears float64

	// Per-100-patient-year rates.
	GPContacts         float64
	EmergencyShare     float64 // share of GP contacts flagged emergency (0..1)
	Admissions         float64
	AdmissionDays      float64
	OutpatientVisits   float64
	SpecialistContacts float64
	PhysioContacts     float64
	HomeCareDays       float64
	NursingDays        float64
	Prescriptions      float64

	// Demographics.
	MeanAge     float64
	FemaleShare float64
}

// ComputeIndicators derives the summary over the window.
func ComputeIndicators(col *model.Collection, window model.Period) Indicators {
	ind := Indicators{Patients: col.Len()}
	if col.Len() == 0 || window.Empty() {
		return ind
	}
	years := float64(window.Duration()) / float64(model.Year)
	ind.PatientYears = years * float64(col.Len())

	var gp, emergencyGP, admissions, outpatient, specialist, physio, rx int
	var admissionDays, homeCareDays, nursingDays float64
	var ages, females float64

	for _, h := range col.Histories() {
		ages += float64(h.Patient.AgeAt(window.Start))
		if h.Patient.Sex == model.SexFemale {
			females++
		}
		for i := range h.Entries {
			e := &h.Entries[i]
			p := e.Period().Clamp(window)
			inWindow := e.Kind == model.Interval && !p.Empty() ||
				e.Kind == model.Point && window.Contains(e.Start)
			if !inWindow {
				continue
			}
			switch e.Type {
			case model.TypeContact:
				switch e.Source {
				case model.SourceGP:
					gp++
					if strings.Contains(e.Text, "legevakt") || strings.Contains(e.Text, "akutt") {
						emergencyGP++
					}
				case model.SourceHospital:
					outpatient++
				case model.SourceSpecialist:
					specialist++
				case model.SourcePhysio:
					physio++
				}
			case model.TypeStay:
				switch e.Source {
				case model.SourceHospital:
					admissions++
					admissionDays += float64(p.Duration()) / float64(model.Day)
				case model.SourceMunicipal:
					nursingDays += float64(p.Duration()) / float64(model.Day)
				}
			case model.TypeService:
				homeCareDays += float64(p.Duration()) / float64(model.Day)
			case model.TypeMedication:
				rx++
			}
		}
	}

	per100 := func(n float64) float64 { return 100 * n / ind.PatientYears }
	ind.GPContacts = per100(float64(gp))
	if gp > 0 {
		ind.EmergencyShare = float64(emergencyGP) / float64(gp)
	}
	ind.Admissions = per100(float64(admissions))
	ind.AdmissionDays = per100(admissionDays)
	ind.OutpatientVisits = per100(float64(outpatient))
	ind.SpecialistContacts = per100(float64(specialist))
	ind.PhysioContacts = per100(float64(physio))
	ind.HomeCareDays = per100(homeCareDays)
	ind.NursingDays = per100(nursingDays)
	ind.Prescriptions = per100(float64(rx))
	ind.MeanAge = ages / float64(col.Len())
	ind.FemaleShare = females / float64(col.Len())
	return ind
}

// Table renders the indicator report (rates per 100 patient-years).
func (ind Indicators) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cohort: %d patients, %.0f patient-years (mean age %.1f, %.0f%% female)\n",
		ind.Patients, ind.PatientYears, ind.MeanAge, 100*ind.FemaleShare)
	fmt.Fprintf(&b, "  per 100 patient-years:\n")
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "GP contacts", ind.GPContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital admissions", ind.Admissions)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital bed-days", ind.AdmissionDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "hospital outpatient visits", ind.OutpatientVisits)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "private specialist contacts", ind.SpecialistContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "physiotherapy contacts", ind.PhysioContacts)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "home-care days", ind.HomeCareDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "nursing-home days", ind.NursingDays)
	fmt.Fprintf(&b, "  %-28s %8.1f\n", "prescriptions", ind.Prescriptions)
	return b.String()
}
