// Package stats provides the descriptive statistics the experiment harness
// reports and the recognition-survey model behind experiment E2.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median is the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Bucket is one histogram bin [Lo, Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram bins values into n equal-width buckets over [min, max].
func Histogram(xs []float64, n int) []Bucket {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return []Bucket{{Lo: lo, Hi: hi, Count: len(xs)}}
	}
	width := (hi - lo) / float64(n)
	out := make([]Bucket, n)
	for i := range out {
		out[i] = Bucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width}
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		out[idx].Count++
	}
	return out
}

// Proportion formats k/n as a percentage string.
func Proportion(k, n int) string {
	if n == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(k)/float64(n))
}
