package query

import (
	"reflect"
	"testing"

	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/store"
	"pastas/internal/synth"
)

func TestSpecCompileLeafOps(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"true", Spec{Op: "true"}, true},
		{"empty-op", Spec{}, true},
		{"has-code", Spec{Op: "has", Pattern: "T90", Type: "diagnosis"}, true},
		{"has-nothing", Spec{Op: "has"}, false},
		{"has-bad-pattern", Spec{Op: "has", Pattern: "("}, false},
		{"has-bad-type", Spec{Op: "has", Type: "nope"}, false},
		{"has-bad-source", Spec{Op: "has", Type: "contact", Source: "nope"}, false},
		{"has-bad-text", Spec{Op: "has", Text: "("}, false},
		{"age", Spec{Op: "age", LoAge: 10, HiAge: 20, AtISO: "2010-01-01"}, true},
		{"age-bad-date", Spec{Op: "age", AtISO: "nope"}, false},
		{"sex-f", Spec{Op: "sex", Sex: "F"}, true},
		{"sex-bad", Spec{Op: "sex", Sex: "X"}, false},
		{"not-wrong-arity", Spec{Op: "not"}, false},
		{"and-empty", Spec{Op: "and"}, false},
		{"seq-empty", Spec{Op: "sequence"}, false},
		{"during-missing", Spec{Op: "during"}, false},
		{"unknown", Spec{Op: "zzz"}, false},
	}
	for _, c := range cases {
		_, err := c.spec.Compile()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := NewBuilder().
		HasCodeIn("ICPC2", `F.*|H.*`).
		MinContacts("gp", 4).
		AgeBetween(18, 99, "2010-01-01").
		Spec()
	data, err := spec.MarshalJSONSpec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("JSON round trip mismatch:\n%+v\n%+v", spec, back)
	}
	if _, err := back.Compile(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec([]byte("{broken")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestBuilderSemantics(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "F92"),
		contact(2, 1, model.SourceGP),
		contact(3, 2, model.SourceGP),
	)
	expr, err := NewBuilder().HasCode(`F.*|H.*`).MinContacts("gp", 2).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !expr.Eval(h) {
		t.Error("builder query should match")
	}
	expr3, err := NewBuilder().MinContacts("gp", 3).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if expr3.Eval(h) {
		t.Error("MinContacts 3 must fail with 2 contacts")
	}

	// Exclusion.
	exSpec := &Spec{Op: "has", Pattern: "F92", Type: "diagnosis"}
	exExpr, err := NewBuilder().HasCode(`F.*`).Exclude(exSpec).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if exExpr.Eval(h) {
		t.Error("excluded code still matched")
	}

	// Empty builder = match-all.
	all, err := NewBuilder().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !all.Eval(h) {
		t.Error("empty builder must match everything")
	}
}

func TestSequenceSpecCompile(t *testing.T) {
	spec := &Spec{
		Op: "sequence",
		Steps: []*Spec{
			{Pattern: "K75", Type: "diagnosis"},
			{Type: "contact", Source: "gp", MinGapDays: 1, MaxGapDays: 90},
		},
	}
	expr, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	h := hist(1, model.SexMale,
		dx(1, 0, "ICPC2", "K75"),
		contact(2, 30, model.SourceGP),
	)
	if !expr.Eval(h) {
		t.Error("compiled sequence should match")
	}
}

func TestDuringSpecCompile(t *testing.T) {
	spec := &Spec{
		Op:       "during",
		Interval: &Spec{Type: "stay"},
		Event:    &Spec{Pattern: `E11.*`, Type: "diagnosis"},
	}
	expr, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	h := hist(1, model.SexMale,
		stay(1, 10, 7, "I21.9"),
		dx(2, 12, "ICD10", "E11.9"),
	)
	if !expr.Eval(h) {
		t.Error("compiled during should match")
	}
}

func TestIndexedMatchesScan(t *testing.T) {
	bundle := synth.Generate(synth.DefaultConfig(500))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(col)

	exprs := []Expr{
		Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("", "T90")}},
		Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("ICPC2", `K8.`)}},
		Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("ICD10", `I2.*`)}},
		Has{Pred: AllOf{TypeIs(model.TypeMedication), MustCode("", `A10.*`)}},
		Has{Pred: TypeIs(model.TypeStay)},
		Has{Pred: SourceIs(model.SourceMunicipal)},
		Has{Pred: MustCode("", `T90|E11(\..*)?`)},
		And{
			Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("", `T90`)}},
			Not{Has{Pred: TypeIs(model.TypeStay)}},
		},
		Or{
			Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("", `K90`)}},
			Has{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("", `K75`)}},
		},
		// Non-indexable leaves must agree through the fallback.
		Has{Pred: MustCode("", `K86`), MinCount: 3},
		Sequence{Steps: []Step{
			{Pred: AllOf{TypeIs(model.TypeDiagnosis), MustCode("", `K86`)}},
			{Pred: TypeIs(model.TypeMeasurement), MaxGap: Days(1)},
		}},
	}
	for _, e := range exprs {
		want := Select(col, e)
		got, err := SelectIndexed(st, e)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("indexed and scan disagree for %s:\n got %d ids\nwant %d ids", e, len(got), len(want))
		}
	}
}

func TestIndexedBadPattern(t *testing.T) {
	st := store.New(model.MustCollection())
	// Bad pattern inside Code predicate cannot be constructed via MustCode;
	// check EvalIndexed surfaces the All/Empty paths instead.
	b, err := EvalIndexed(st, TrueExpr{})
	if err != nil || b.Count() != 0 {
		t.Errorf("empty store All = %v, %v", b, err)
	}
}
