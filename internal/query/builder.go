package query

import (
	"encoding/json"
	"fmt"

	"pastas/internal/model"
)

// The Query-Builder (Fig. 4). "While being a useful tool for computer
// scientists, general practitioners cannot be expected to be acquainted
// with regular expressions. This means that a graphical user interface is
// needed." Spec is the serializable form that such a GUI edits: a tree of
// operators with regex leaves, which compiles into an Expr. The JSON wire
// form is what the web front end and the cohortctl tool exchange.

// Spec is the JSON-serializable query tree.
type Spec struct {
	// Op: "and", "or", "not", "has", "sequence", "age", "sex", "during",
	// "true".
	Op string `json:"op"`

	// Children of "and"/"or"; exactly one for "not".
	Children []*Spec `json:"children,omitempty"`

	// Leaf fields for "has" (and step predicates inside "sequence").
	System   string `json:"system,omitempty"`   // code system filter
	Pattern  string `json:"pattern,omitempty"`  // anchored code regex
	Type     string `json:"type,omitempty"`     // entry type name
	Source   string `json:"source,omitempty"`   // source name
	Text     string `json:"text,omitempty"`     // free-text regex
	MinCount int    `json:"minCount,omitempty"` // for "has"

	// "sequence" steps.
	Steps      []*Spec `json:"steps,omitempty"`
	MinGapDays int     `json:"minGapDays,omitempty"`
	MaxGapDays int     `json:"maxGapDays,omitempty"`

	// "age".
	LoAge int    `json:"loAge,omitempty"`
	HiAge int    `json:"hiAge,omitempty"`
	AtISO string `json:"at,omitempty"` // YYYY-MM-DD

	// "sex": "F" or "M".
	Sex string `json:"sex,omitempty"`

	// "during": interval predicate and event predicate.
	Interval *Spec `json:"interval,omitempty"`
	Event    *Spec `json:"event,omitempty"`
}

// ParseSpec decodes a JSON query tree.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("query: parse spec: %w", err)
	}
	return &s, nil
}

// MarshalJSONSpec encodes the spec (indented, stable).
func (s *Spec) MarshalJSONSpec() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Compile translates the spec into an executable expression.
func (s *Spec) Compile() (Expr, error) {
	switch s.Op {
	case "true", "":
		return TrueExpr{}, nil
	case "and", "or":
		if len(s.Children) == 0 {
			return nil, fmt.Errorf("query: %s with no children", s.Op)
		}
		kids := make([]Expr, len(s.Children))
		for i, c := range s.Children {
			e, err := c.Compile()
			if err != nil {
				return nil, err
			}
			kids[i] = e
		}
		if s.Op == "and" {
			return And(kids), nil
		}
		return Or(kids), nil
	case "not":
		if len(s.Children) != 1 {
			return nil, fmt.Errorf("query: not requires exactly one child")
		}
		e, err := s.Children[0].Compile()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	case "has":
		p, err := s.compileEventPred()
		if err != nil {
			return nil, err
		}
		return Has{Pred: p, MinCount: s.MinCount}, nil
	case "sequence":
		if len(s.Steps) == 0 {
			return nil, fmt.Errorf("query: sequence with no steps")
		}
		steps := make([]Step, len(s.Steps))
		for i, sp := range s.Steps {
			p, err := sp.compileEventPred()
			if err != nil {
				return nil, err
			}
			steps[i] = Step{
				Pred:   p,
				MinGap: Days(sp.MinGapDays),
				MaxGap: Days(sp.MaxGapDays),
			}
		}
		return Sequence{Steps: steps}, nil
	case "age":
		at, err := model.ParseDate(s.AtISO)
		if err != nil {
			return nil, fmt.Errorf("query: age: %w", err)
		}
		return AgeBetween{Lo: s.LoAge, Hi: s.HiAge, At: at}, nil
	case "sex":
		switch s.Sex {
		case "F":
			return SexIs(model.SexFemale), nil
		case "M":
			return SexIs(model.SexMale), nil
		default:
			return nil, fmt.Errorf("query: sex must be F or M, got %q", s.Sex)
		}
	case "during":
		if s.Interval == nil || s.Event == nil {
			return nil, fmt.Errorf("query: during requires interval and event")
		}
		iv, err := s.Interval.compileEventPred()
		if err != nil {
			return nil, err
		}
		ev, err := s.Event.compileEventPred()
		if err != nil {
			return nil, err
		}
		return During{Interval: iv, Event: ev}, nil
	default:
		return nil, fmt.Errorf("query: unknown op %q", s.Op)
	}
}

// compileEventPred builds the event predicate described by the leaf fields:
// the conjunction of whichever of pattern/type/source/text are set.
func (s *Spec) compileEventPred() (EventPred, error) {
	var preds AllOf
	if s.Pattern != "" {
		c, err := NewCode(s.System, s.Pattern)
		if err != nil {
			return nil, err
		}
		preds = append(preds, c)
	}
	if s.Type != "" {
		t, err := typeByName(s.Type)
		if err != nil {
			return nil, err
		}
		preds = append(preds, TypeIs(t))
	}
	if s.Source != "" {
		src, err := sourceByName(s.Source)
		if err != nil {
			return nil, err
		}
		preds = append(preds, SourceIs(src))
	}
	if s.Text != "" {
		tm, err := NewTextMatch(s.Text)
		if err != nil {
			return nil, err
		}
		preds = append(preds, tm)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("query: predicate with no constraints")
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return preds, nil
}

func typeByName(name string) (model.Type, error) {
	for _, t := range model.Types() {
		if t.String() == name {
			return t, nil
		}
	}
	return model.TypeUnknown, fmt.Errorf("query: unknown entry type %q", name)
}

func sourceByName(name string) (model.Source, error) {
	for _, s := range model.Sources() {
		if s.String() == name {
			return s, nil
		}
	}
	return model.SourceUnknown, fmt.Errorf("query: unknown source %q", name)
}

// Builder is the fluent construction API the examples and tests use; it
// accumulates a conjunctive spec the way a user assembles criteria in the
// Query-Builder dialog.
type Builder struct {
	root Spec
}

// NewBuilder starts an empty (match-all) conjunctive query.
func NewBuilder() *Builder {
	return &Builder{root: Spec{Op: "and"}}
}

// HasCode adds "has a code matching pattern" (any system).
func (b *Builder) HasCode(pattern string) *Builder {
	return b.add(&Spec{Op: "has", Pattern: pattern, Type: "diagnosis"})
}

// HasCodeIn adds a system-scoped code criterion.
func (b *Builder) HasCodeIn(system, pattern string) *Builder {
	return b.add(&Spec{Op: "has", System: system, Pattern: pattern, Type: "diagnosis"})
}

// MinContacts adds "at least n contacts from source".
func (b *Builder) MinContacts(source string, n int) *Builder {
	return b.add(&Spec{Op: "has", Type: "contact", Source: source, MinCount: n})
}

// HasAny adds "at least one entry of type from any source".
func (b *Builder) HasAny(entryType string) *Builder {
	return b.add(&Spec{Op: "has", Type: entryType})
}

// AgeBetween adds an age criterion at the given date.
func (b *Builder) AgeBetween(lo, hi int, atISO string) *Builder {
	return b.add(&Spec{Op: "age", LoAge: lo, HiAge: hi, AtISO: atISO})
}

// Exclude wraps a spec in NOT and adds it.
func (b *Builder) Exclude(s *Spec) *Builder {
	return b.add(&Spec{Op: "not", Children: []*Spec{s}})
}

// Add appends an arbitrary sub-spec.
func (b *Builder) Add(s *Spec) *Builder { return b.add(s) }

func (b *Builder) add(s *Spec) *Builder {
	b.root.Children = append(b.root.Children, s)
	return b
}

// Spec returns the accumulated tree.
func (b *Builder) Spec() *Spec {
	if len(b.root.Children) == 0 {
		return &Spec{Op: "true"}
	}
	return &b.root
}

// Compile compiles the accumulated tree.
func (b *Builder) Compile() (Expr, error) { return b.Spec().Compile() }
