package query

import (
	"fmt"
	"strings"

	"pastas/internal/model"
)

// Expr decides whether a whole history belongs to a cohort.
type Expr interface {
	Eval(h *model.History) bool
	String() string
}

// Has matches histories with at least MinCount entries satisfying Pred
// (MinCount 0 is treated as 1).
type Has struct {
	Pred     EventPred
	MinCount int
}

func (q Has) Eval(h *model.History) bool {
	need := q.MinCount
	if need <= 0 {
		need = 1
	}
	seen := 0
	for i := range h.Entries {
		if q.Pred.Match(&h.Entries[i]) {
			seen++
			if seen >= need {
				return true
			}
		}
	}
	return false
}

func (q Has) String() string {
	if q.MinCount > 1 {
		return fmt.Sprintf("has>=%d(%s)", q.MinCount, q.Pred)
	}
	return fmt.Sprintf("has(%s)", q.Pred)
}

// And matches histories satisfying every child.
type And []Expr

func (a And) Eval(h *model.History) bool {
	for _, e := range a {
		if !e.Eval(h) {
			return false
		}
	}
	return true
}

func (a And) String() string { return "(" + joinExprs([]Expr(a), " AND ") + ")" }

// Or matches histories satisfying at least one child.
type Or []Expr

func (o Or) Eval(h *model.History) bool {
	for _, e := range o {
		if e.Eval(h) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return "(" + joinExprs([]Expr(o), " OR ") + ")" }

// Not inverts a history expression.
type Not struct{ E Expr }

func (n Not) Eval(h *model.History) bool { return !n.E.Eval(h) }
func (n Not) String() string             { return "NOT " + n.E.String() }

// AgeBetween matches patients aged [Lo, Hi] (inclusive) at time At.
type AgeBetween struct {
	Lo, Hi int
	At     model.Time
}

func (a AgeBetween) Eval(h *model.History) bool {
	age := h.Patient.AgeAt(a.At)
	return age >= a.Lo && age <= a.Hi
}

func (a AgeBetween) String() string {
	return fmt.Sprintf("age in [%d,%d] at %s", a.Lo, a.Hi, a.At)
}

// SexIs matches patients of the given sex.
type SexIs model.Sex

func (s SexIs) Eval(h *model.History) bool { return h.Patient.Sex == model.Sex(s) }
func (s SexIs) String() string             { return "sex=" + model.Sex(s).String() }

// TrueExpr matches everything; the neutral element for builders.
type TrueExpr struct{}

func (TrueExpr) Eval(*model.History) bool { return true }
func (TrueExpr) String() string           { return "true" }

// During matches histories where some entry satisfying Event happens inside
// some interval entry satisfying Interval (e.g. a diagnosis during a
// hospital stay).
type During struct {
	Interval EventPred
	Event    EventPred
}

func (d During) Eval(h *model.History) bool {
	for i := range h.Entries {
		iv := &h.Entries[i]
		if iv.Kind != model.Interval || !d.Interval.Match(iv) {
			continue
		}
		p := iv.Period()
		for j := range h.Entries {
			e := &h.Entries[j]
			if e.Kind != model.Point || !d.Event.Match(e) {
				continue
			}
			if p.Contains(e.Start) {
				return true
			}
		}
	}
	return false
}

func (d During) String() string {
	return fmt.Sprintf("during(%s, %s)", d.Interval, d.Event)
}

func joinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}

// Select returns the patients (in collection order) whose histories satisfy
// the expression — plain scan evaluation; see EvalIndexed for the
// index-accelerated variant.
func Select(col *model.Collection, e Expr) []model.PatientID {
	var out []model.PatientID
	for _, h := range col.Histories() {
		if e.Eval(h) {
			out = append(out, h.Patient.ID)
		}
	}
	return out
}

// Filter returns the sub-collection satisfying the expression.
func Filter(col *model.Collection, e Expr) *model.Collection {
	return col.Filter(func(h *model.History) bool { return e.Eval(h) })
}

// FilterEvents returns a copy of the history keeping only entries matching
// pred — the paper's show/hide event filtering in the timeline view.
func FilterEvents(h *model.History, pred EventPred) *model.History {
	out := model.NewHistory(h.Patient)
	for i := range h.Entries {
		if pred.Match(&h.Entries[i]) {
			out.Add(h.Entries[i])
		}
	}
	out.Sort()
	return out
}
