package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pastas/internal/model"
)

// randomHistory builds a deterministic random history.
func randomHistory(seed int64) *model.History {
	rng := rand.New(rand.NewSource(seed))
	h := model.NewHistory(model.Patient{
		ID:    model.PatientID(1 + rng.Intn(1000)),
		Birth: model.Date(1940+rng.Intn(60), 1, 1),
		Sex:   model.Sex(1 + rng.Intn(2)),
	})
	codes := []string{"T90", "K86", "R74", "A04", "F92", "H71"}
	n := rng.Intn(12)
	for i := 0; i < n; i++ {
		h.Add(model.Entry{
			ID:     uint64(i + 1),
			Kind:   model.Point,
			Start:  model.Date(2010, 1, 1).AddDays(rng.Intn(700)),
			End:    model.NoTime, // fixed below
			Source: model.Source(1 + rng.Intn(5)),
			Type:   model.TypeDiagnosis,
			Code:   model.Code{System: "ICPC2", Value: codes[rng.Intn(len(codes))]},
		})
		h.Entries[len(h.Entries)-1].End = h.Entries[len(h.Entries)-1].Start
	}
	h.Sort()
	return h
}

// Boolean-algebra laws over Eval: De Morgan, double negation,
// distributivity spot-checks on random histories.
func TestExprAlgebraLaws(t *testing.T) {
	a := Has{Pred: MustCode("", "T90")}
	b := Has{Pred: MustCode("", `K8.`)}
	c := Has{Pred: MustCode("", `F.*|H.*`)}

	notAnd := Not{And{a, b}}
	orNots := Or{Not{a}, Not{b}}
	notOr := Not{Or{a, b}}
	andNots := And{Not{a}, Not{b}}
	doubleNeg := Not{Not{a}}
	distLHS := And{a, Or{b, c}}
	distRHS := Or{And{a, b}, And{a, c}}
	withTrue := And{a, TrueExpr{}}
	withFalse := Or{a, Not{TrueExpr{}}}

	f := func(seed int64) bool {
		h := randomHistory(seed)
		// De Morgan.
		if notAnd.Eval(h) != orNots.Eval(h) {
			return false
		}
		if notOr.Eval(h) != andNots.Eval(h) {
			return false
		}
		// Double negation.
		if doubleNeg.Eval(h) != a.Eval(h) {
			return false
		}
		// Distributivity.
		if distLHS.Eval(h) != distRHS.Eval(h) {
			return false
		}
		// Neutral elements.
		if withTrue.Eval(h) != a.Eval(h) {
			return false
		}
		if withFalse.Eval(h) != a.Eval(h) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FilterEvents then Has(pred) is equivalent to Has(pred) on the
// original (filtering preserves exactly the matching events).
func TestFilterEventsPreservesHas(t *testing.T) {
	pred := MustCode("", `T90|K8.`)
	f := func(seed int64) bool {
		h := randomHistory(seed)
		filtered := FilterEvents(h, pred)
		want := (Has{Pred: pred}).Eval(h)
		got := filtered.Len() > 0
		if want != got {
			return false
		}
		// Every surviving entry matches.
		for i := range filtered.Entries {
			if !pred.Match(&filtered.Entries[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a sequence of one step is equivalent to Has of its predicate.
func TestSingletonSequenceEqualsHas(t *testing.T) {
	pred := MustCode("", `R74|A04`)
	f := func(seed int64) bool {
		h := randomHistory(seed)
		return Sequence{Steps: []Step{{Pred: pred}}}.Eval(h) == (Has{Pred: pred}).Eval(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AllMatches count is bounded by the match count of the first
// step's predicate, and all matches are chronologically ordered witnesses.
func TestAllMatchesBounds(t *testing.T) {
	seq := Sequence{Steps: []Step{
		{Pred: MustCode("", `T90`)},
		{Pred: MustCode("", `K86`)},
	}}
	f := func(seed int64) bool {
		h := randomHistory(seed)
		ms := seq.AllMatches(h)
		firsts := h.Count(func(e *model.Entry) bool { return e.Code.Value == "T90" })
		if len(ms) > firsts {
			return false
		}
		for _, m := range ms {
			if len(m.Entries) != 2 {
				return false
			}
			if m.Entries[0].Start > m.Entries[1].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
