package query

import (
	"fmt"
	"strings"

	"pastas/internal/model"
)

// Temporal-pattern search: the workbench's "searching for temporal
// patterns" operation. A Sequence matches a history when entries
// e1 < e2 < ... < ek exist, step i matching step predicate i, with the gap
// between consecutive matches inside [MinGap, MaxGap].

// Step is one element of a temporal pattern.
type Step struct {
	Pred EventPred
	// MinGap/MaxGap constrain start-time distance to the previous step's
	// match. MaxGap 0 means unbounded. Both ignored on the first step.
	MinGap model.Time
	MaxGap model.Time
}

// Sequence is an ordered temporal pattern.
type Sequence struct {
	Steps []Step
}

func (s Sequence) String() string {
	parts := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		g := ""
		if i > 0 && (st.MinGap > 0 || st.MaxGap > 0) {
			if st.MaxGap > 0 {
				g = fmt.Sprintf(" [gap %s..%s]", fmtGap(st.MinGap), fmtGap(st.MaxGap))
			} else {
				g = fmt.Sprintf(" [gap >=%s]", fmtGap(st.MinGap))
			}
		}
		parts[i] = st.Pred.String() + g
	}
	return "seq(" + strings.Join(parts, " -> ") + ")"
}

// fmtGap renders a gap losslessly: whole days as "Nd", anything finer at
// minute resolution. Sub-day truncation here would make two different
// sequences render identically, which the query engine's plan cache and
// dedupe pass (keyed on String) must be able to rule out.
func fmtGap(t model.Time) string {
	if t%model.Day == 0 {
		return fmt.Sprintf("%dd", t/model.Day)
	}
	return fmt.Sprintf("%dm", int64(t))
}

// Eval reports whether the pattern matches anywhere in the history.
func (s Sequence) Eval(h *model.History) bool {
	return s.FirstMatch(h) != nil
}

// Match is one witness of the pattern: the matched entries per step.
type Match struct {
	Entries []*model.Entry
}

// Span returns the period from the first to the last matched entry.
func (m *Match) Span() model.Period {
	if len(m.Entries) == 0 {
		return model.Period{}
	}
	return model.Period{Start: m.Entries[0].Start, End: m.Entries[len(m.Entries)-1].Start}
}

// FirstMatch returns the earliest witness (lexicographically earliest by
// step times), or nil. Backtracking search: greedy earliest choice alone is
// wrong under MaxGap constraints, since a later step-i match can be the only
// one that leaves step i+1 feasible.
func (s Sequence) FirstMatch(h *model.History) *Match {
	if len(s.Steps) == 0 {
		return nil
	}
	h.Sort()
	witness := make([]*model.Entry, len(s.Steps))
	if s.search(h, 0, 0, witness) {
		return &Match{Entries: witness}
	}
	return nil
}

// AllMatches returns every non-overlapping witness, scanning left to right
// (after a match, the search resumes after its first entry, so overlapping
// later witnesses starting inside the previous span are still found only
// once per distinct start). This is the semantics event charts need: one
// line per hit.
func (s Sequence) AllMatches(h *model.History) []*Match {
	if len(s.Steps) == 0 {
		return nil
	}
	h.Sort()
	var out []*Match
	from := 0
	for from < len(h.Entries) {
		witness := make([]*model.Entry, len(s.Steps))
		if !s.search(h, 0, from, witness) {
			break
		}
		out = append(out, &Match{Entries: witness})
		// Resume after the first entry of this witness.
		first := witness[0]
		from = entryIndexAfter(h, first) // index just past the witness start
	}
	return out
}

func entryIndexAfter(h *model.History, e *model.Entry) int {
	for i := range h.Entries {
		if &h.Entries[i] == e {
			return i + 1
		}
	}
	return len(h.Entries)
}

// search tries to satisfy steps[step:] starting at entry index from;
// witness[step-1] (when step > 0) is the previous match.
func (s Sequence) search(h *model.History, step, from int, witness []*model.Entry) bool {
	if step == len(s.Steps) {
		return true
	}
	st := s.Steps[step]
	for i := from; i < len(h.Entries); i++ {
		e := &h.Entries[i]
		if step > 0 {
			gap := e.Start - witness[step-1].Start
			if gap < st.MinGap {
				continue
			}
			if st.MaxGap > 0 && gap > st.MaxGap {
				// Entries are time-sorted; all later ones only grow
				// the gap.
				return false
			}
		}
		if !st.Pred.Match(e) {
			continue
		}
		witness[step] = e
		if s.search(h, step+1, i+1, witness) {
			return true
		}
	}
	return false
}

// Days is a convenience for expressing gaps in days.
func Days(n int) model.Time { return model.Time(n) * model.Day }
