package query

import "testing"

// FuzzSpecCompile feeds arbitrary JSON to the Query-Builder wire format:
// parsing and compiling must never panic — they either produce a valid
// expression or an error.
func FuzzSpecCompile(f *testing.F) {
	for _, seed := range []string{
		`{"op":"true"}`,
		`{"op":"has","pattern":"T90","type":"diagnosis"}`,
		`{"op":"and","children":[{"op":"has","pattern":"F.*|H.*"}]}`,
		`{"op":"not","children":[{"op":"sex","sex":"F"}]}`,
		`{"op":"sequence","steps":[{"pattern":"K75"},{"type":"contact","maxGapDays":90}]}`,
		`{"op":"age","loAge":18,"hiAge":99,"at":"2010-01-01"}`,
		`{"op":"during","interval":{"type":"stay"},"event":{"pattern":"E11.*"}}`,
		`{"op":"has","pattern":"("}`,
		`{}`, `[]`, `null`, `{"op":`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		expr, err := spec.Compile()
		if err != nil {
			return
		}
		// A compiled expression must evaluate without panicking.
		h := randomHistory(1)
		_ = expr.Eval(h)
		_ = expr.String()
	})
}
