package query

import (
	"pastas/internal/model"
	"pastas/internal/store"
)

// Index-accelerated evaluation. The plain evaluator scans every entry of
// every history; at the paper's scale (100,000+ individuals) interactive
// filtering needs better. EvalIndexed rewrites the boolean skeleton of an
// expression into bitset algebra and answers single-code Has leaves from
// the store's inverted index, falling back to a per-history scan only for
// the sub-expressions the indexes cannot answer (counting, sequences,
// during). The E3 ablation benchmarks this against the scan evaluator.

// EvalIndexed evaluates the expression over the store, returning the
// matching patients as a bitset.
func EvalIndexed(s *store.Store, e Expr) (*store.Bitset, error) {
	switch q := e.(type) {
	case TrueExpr:
		return s.All(), nil
	case And:
		out := s.All()
		for _, child := range q {
			b, err := EvalIndexed(s, child)
			if err != nil {
				return nil, err
			}
			out.And(b)
		}
		return out, nil
	case Or:
		out := s.Empty()
		for _, child := range q {
			b, err := EvalIndexed(s, child)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	case Not:
		b, err := EvalIndexed(s, q.E)
		if err != nil {
			return nil, err
		}
		return b.Not(), nil
	case Has:
		if b, ok := hasFromIndex(s, q); ok {
			return b, nil
		}
	}
	// Fallback: per-history scan of this sub-expression.
	return s.Where(func(h *model.History) bool { return e.Eval(h) }), nil
}

// hasFromIndex answers Has(Code) and Has(TypeIs)/Has(SourceIs) leaves with
// MinCount <= 1 straight from the inverted indexes.
func hasFromIndex(s *store.Store, q Has) (*store.Bitset, bool) {
	if q.MinCount > 1 {
		return nil, false
	}
	switch p := q.Pred.(type) {
	case *Code:
		b, err := s.WithCodeRegex(p.System, p.Pattern)
		if err != nil {
			return nil, false
		}
		return b, true
	case TypeIs:
		return s.WithType(model.Type(p)), true
	case SourceIs:
		return s.WithSource(model.Source(p)), true
	case AllOf:
		// Has(TypeIs(t) & Code) can be answered from the code index only
		// when the code systems reachable under the type constraint make
		// the patient-level answer exact:
		//   - diagnosis + ICPC2/ICD10: ICPC-2 codes only occur on
		//     diagnosis entries; ICD-10 codes also occur on stay entries,
		//     but integration always emits a same-coded diagnosis entry
		//     alongside each stay, so the patient-level sets coincide.
		//   - medication + ATC: ATC codes only occur on medications.
		// Everything else falls back to the scan.
		var code *Code
		var typ *model.Type
		for _, atom := range p {
			switch a := atom.(type) {
			case *Code:
				if code != nil {
					return nil, false
				}
				code = a
			case TypeIs:
				if typ != nil {
					return nil, false
				}
				t := model.Type(a)
				typ = &t
			default:
				return nil, false
			}
		}
		if code == nil || typ == nil {
			return nil, false
		}
		union := func(systems ...string) (*store.Bitset, bool) {
			out := s.Empty()
			for _, sys := range systems {
				b, err := s.WithCodeRegex(sys, code.Pattern)
				if err != nil {
					return nil, false
				}
				out.Or(b)
			}
			return out, true
		}
		switch *typ {
		case model.TypeDiagnosis:
			switch code.System {
			case "ICPC2", "ICD10":
				return union(code.System)
			case "":
				return union("ICPC2", "ICD10")
			}
		case model.TypeMedication:
			if code.System == "ATC" || code.System == "" {
				return union("ATC")
			}
		}
		return nil, false
	}
	return nil, false
}

// SelectIndexed is EvalIndexed materialized as patient IDs.
func SelectIndexed(s *store.Store, e Expr) ([]model.PatientID, error) {
	b, err := EvalIndexed(s, e)
	if err != nil {
		return nil, err
	}
	return s.IDsOf(b), nil
}
