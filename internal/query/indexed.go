package query

import (
	"pastas/internal/model"
	"pastas/internal/store"
)

// Index-accelerated evaluation. The plain evaluator scans every entry of
// every history; at the paper's scale (100,000+ individuals) interactive
// filtering needs better. EvalIndexed rewrites the boolean skeleton of an
// expression into bitset algebra and answers single-code Has leaves from
// the store's inverted index, falling back to a per-history scan only for
// the sub-expressions the indexes cannot answer (counting, sequences,
// during). The E3 ablation benchmarks this against the scan evaluator.
//
// EvalIndexed is the legacy single-store interpreter, kept as the
// compatibility surface and as the reference the engine's parity tests
// compare against. New code should run queries through internal/engine
// (or Workbench.Query), which adds plan rewrites, sharded fan-out,
// candidate masking and a plan cache; engine cannot be re-exported here
// without an import cycle, hence the retained implementation.

// EvalIndexed evaluates the expression over the store, returning the
// matching patients as a bitset.
func EvalIndexed(s *store.Store, e Expr) (*store.Bitset, error) {
	switch q := e.(type) {
	case TrueExpr:
		return s.All(), nil
	case And:
		out := s.All()
		for _, child := range q {
			b, err := EvalIndexed(s, child)
			if err != nil {
				return nil, err
			}
			out.And(b)
		}
		return out, nil
	case Or:
		out := s.Empty()
		for _, child := range q {
			b, err := EvalIndexed(s, child)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	case Not:
		b, err := EvalIndexed(s, q.E)
		if err != nil {
			return nil, err
		}
		return b.Not(), nil
	case Has:
		if b, ok := hasFromIndex(s, q); ok {
			return b, nil
		}
	}
	// Fallback: per-history scan of this sub-expression.
	return s.Where(func(h *model.History) bool { return e.Eval(h) }), nil
}

// HasIndexKind says which inverted index answers a Has leaf.
type HasIndexKind int

const (
	// HasIndexCode: the code index, over HasIndexing.Systems.
	HasIndexCode HasIndexKind = iota
	// HasIndexType: the entry-type index.
	HasIndexType
	// HasIndexSource: the source index.
	HasIndexSource
)

// HasIndexing describes how a Has leaf maps onto the store's inverted
// indexes; produced by ClassifyHas.
type HasIndexing struct {
	Kind HasIndexKind
	// Systems restricts a code lookup; empty means any system.
	Systems []string
	Pattern string
	Type    model.Type
	Source  model.Source
}

// ClassifyHas reports whether a Has leaf is answerable exactly from the
// inverted indexes, and how. This single classification backs both the
// legacy interpreter below and the engine's plan compiler, so the two can
// never drift.
//
// Single-code, type and source predicates with MinCount <= 1 are always
// exact. Has(TypeIs(t) & Code) is exact only when the code systems
// reachable under the type constraint make the patient-level answer
// exact:
//   - diagnosis + ICPC2/ICD10: ICPC-2 codes only occur on diagnosis
//     entries; ICD-10 codes also occur on stay entries, but integration
//     always emits a same-coded diagnosis entry alongside each stay, so
//     the patient-level sets coincide.
//   - medication + ATC: ATC codes only occur on medications.
//
// Everything else falls back to the scan.
func ClassifyHas(q Has) (HasIndexing, bool) {
	if q.MinCount > 1 {
		return HasIndexing{}, false
	}
	switch p := q.Pred.(type) {
	case *Code:
		var systems []string
		if p.System != "" {
			systems = []string{p.System}
		}
		return HasIndexing{Kind: HasIndexCode, Systems: systems, Pattern: p.Pattern}, true
	case TypeIs:
		return HasIndexing{Kind: HasIndexType, Type: model.Type(p)}, true
	case SourceIs:
		return HasIndexing{Kind: HasIndexSource, Source: model.Source(p)}, true
	case AllOf:
		var code *Code
		var typ *model.Type
		for _, atom := range p {
			switch a := atom.(type) {
			case *Code:
				if code != nil {
					return HasIndexing{}, false
				}
				code = a
			case TypeIs:
				if typ != nil {
					return HasIndexing{}, false
				}
				t := model.Type(a)
				typ = &t
			default:
				return HasIndexing{}, false
			}
		}
		if code == nil || typ == nil {
			return HasIndexing{}, false
		}
		var systems []string
		switch *typ {
		case model.TypeDiagnosis:
			switch code.System {
			case "ICPC2", "ICD10":
				systems = []string{code.System}
			case "":
				systems = []string{"ICPC2", "ICD10"}
			default:
				return HasIndexing{}, false
			}
		case model.TypeMedication:
			if code.System != "ATC" && code.System != "" {
				return HasIndexing{}, false
			}
			systems = []string{"ATC"}
		default:
			return HasIndexing{}, false
		}
		return HasIndexing{Kind: HasIndexCode, Systems: systems, Pattern: code.Pattern}, true
	}
	return HasIndexing{}, false
}

// hasFromIndex answers index-answerable Has leaves (per ClassifyHas)
// straight from the inverted indexes.
func hasFromIndex(s *store.Store, q Has) (*store.Bitset, bool) {
	ix, ok := ClassifyHas(q)
	if !ok {
		return nil, false
	}
	switch ix.Kind {
	case HasIndexType:
		return s.WithType(ix.Type), true
	case HasIndexSource:
		return s.WithSource(ix.Source), true
	default:
		if len(ix.Systems) == 0 {
			b, err := s.WithCodeRegex("", ix.Pattern)
			if err != nil {
				return nil, false
			}
			return b, true
		}
		out := s.Empty()
		for _, sys := range ix.Systems {
			b, err := s.WithCodeRegex(sys, ix.Pattern)
			if err != nil {
				return nil, false
			}
			out.Or(b)
		}
		return out, true
	}
}

// SelectIndexed is EvalIndexed materialized as patient IDs.
func SelectIndexed(s *store.Store, e Expr) ([]model.PatientID, error) {
	b, err := EvalIndexed(s, e)
	if err != nil {
		return nil, err
	}
	return s.IDsOf(b), nil
}
