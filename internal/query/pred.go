// Package query implements the workbench's query layer: event-level
// predicates, a history-level expression AST, temporal-pattern search with
// gap constraints, and the serializable Query-Builder (Fig. 4) that fronts
// it all — regular expressions over the code hierarchies being the central
// device ("with a regular expression one may easily refer to any branch of
// the hierarchies ... combined using the disjunctive construct").
package query

import (
	"fmt"
	"regexp"
	"strings"

	"pastas/internal/model"
	"pastas/internal/terminology"
)

// EventPred decides whether a single entry matches.
type EventPred interface {
	Match(e *model.Entry) bool
	String() string
}

// Code matches entries whose code (in System; "" = any system) matches the
// anchored regular expression.
type Code struct {
	System  string
	Pattern string
	re      *regexp.Regexp
}

// NewCode compiles a code predicate.
func NewCode(system, pattern string) (*Code, error) {
	re, err := terminology.CompileCodePattern(pattern)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return &Code{System: system, Pattern: pattern, re: re}, nil
}

// MustCode is NewCode panicking on bad patterns; for literals in code.
func MustCode(system, pattern string) *Code {
	c, err := NewCode(system, pattern)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Code) Match(e *model.Entry) bool {
	if e.Code.IsZero() {
		return false
	}
	if c.System != "" && e.Code.System != c.System {
		return false
	}
	return c.re.MatchString(e.Code.Value)
}

func (c *Code) String() string {
	if c.System == "" {
		return fmt.Sprintf("code~%q", c.Pattern)
	}
	return fmt.Sprintf("%s~%q", c.System, c.Pattern)
}

// TypeIs matches entries of one type.
type TypeIs model.Type

func (t TypeIs) Match(e *model.Entry) bool { return e.Type == model.Type(t) }
func (t TypeIs) String() string            { return "type=" + model.Type(t).String() }

// SourceIs matches entries from one source.
type SourceIs model.Source

func (s SourceIs) Match(e *model.Entry) bool { return e.Source == model.Source(s) }
func (s SourceIs) String() string            { return "source=" + model.Source(s).String() }

// KindIs matches point or interval entries.
type KindIs model.Kind

func (k KindIs) Match(e *model.Entry) bool { return e.Kind == model.Kind(k) }
func (k KindIs) String() string            { return "kind=" + model.Kind(k).String() }

// ValueBetween matches entries with Value in [Lo, Hi].
type ValueBetween struct {
	Lo, Hi float64
}

func (v ValueBetween) Match(e *model.Entry) bool { return e.Value >= v.Lo && e.Value <= v.Hi }
func (v ValueBetween) String() string            { return fmt.Sprintf("value in [%g,%g]", v.Lo, v.Hi) }

// InPeriod matches entries intersecting the period (point events by
// containment, intervals by overlap).
type InPeriod model.Period

func (p InPeriod) Match(e *model.Entry) bool {
	pp := model.Period(p)
	if e.Kind == model.Point {
		return pp.Contains(e.Start)
	}
	return pp.Overlaps(e.Period())
}

func (p InPeriod) String() string { return "in " + model.Period(p).String() }

// TextMatch matches entries whose free text matches an (unanchored)
// regular expression — the paper's limited free-text querying.
type TextMatch struct {
	Pattern string
	re      *regexp.Regexp
}

// NewTextMatch compiles a text predicate.
func NewTextMatch(pattern string) (*TextMatch, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("query: text pattern %q: %w", pattern, err)
	}
	return &TextMatch{Pattern: pattern, re: re}, nil
}

func (t *TextMatch) Match(e *model.Entry) bool { return t.re.MatchString(e.Text) }
func (t *TextMatch) String() string            { return fmt.Sprintf("text~%q", t.Pattern) }

// AllOf matches entries satisfying every child predicate.
type AllOf []EventPred

func (a AllOf) Match(e *model.Entry) bool {
	for _, p := range a {
		if !p.Match(e) {
			return false
		}
	}
	return true
}

func (a AllOf) String() string { return "(" + joinPreds([]EventPred(a), " & ") + ")" }

// AnyOf matches entries satisfying at least one child predicate.
type AnyOf []EventPred

func (a AnyOf) Match(e *model.Entry) bool {
	for _, p := range a {
		if p.Match(e) {
			return true
		}
	}
	return false
}

func (a AnyOf) String() string { return "(" + joinPreds([]EventPred(a), " | ") + ")" }

// NotEv inverts an event predicate.
type NotEv struct{ P EventPred }

func (n NotEv) Match(e *model.Entry) bool { return !n.P.Match(e) }
func (n NotEv) String() string            { return "!" + n.P.String() }

func joinPreds(ps []EventPred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}

// MatchFunc adapts a function to EventPred, for ad-hoc predicates.
type MatchFunc struct {
	Fn   func(*model.Entry) bool
	Name string
}

func (m MatchFunc) Match(e *model.Entry) bool { return m.Fn(e) }
func (m MatchFunc) String() string {
	if m.Name != "" {
		return m.Name
	}
	return "fn"
}

// Diagnosis is shorthand for a coded-diagnosis predicate over a pattern in
// any system.
func Diagnosis(pattern string) (EventPred, error) {
	c, err := NewCode("", pattern)
	if err != nil {
		return nil, err
	}
	return AllOf{TypeIs(model.TypeDiagnosis), c}, nil
}
