package query

import (
	"reflect"
	"testing"
	"time"

	"pastas/internal/model"
)

func day(n int) model.Time { return model.Date(2010, time.January, 1).AddDays(n) }

func dx(id uint64, d int, system, code string) model.Entry {
	return model.Entry{
		ID: id, Kind: model.Point, Start: day(d), End: day(d),
		Source: model.SourceGP, Type: model.TypeDiagnosis,
		Code: model.Code{System: system, Value: code},
	}
}

func contact(id uint64, d int, src model.Source) model.Entry {
	return model.Entry{
		ID: id, Kind: model.Point, Start: day(d), End: day(d),
		Source: src, Type: model.TypeContact,
	}
}

func stay(id uint64, d, days int, code string) model.Entry {
	return model.Entry{
		ID: id, Kind: model.Interval, Start: day(d), End: day(d + days),
		Source: model.SourceHospital, Type: model.TypeStay,
		Code: model.Code{System: "ICD10", Value: code},
	}
}

func hist(id model.PatientID, sex model.Sex, entries ...model.Entry) *model.History {
	h := model.NewHistory(model.Patient{ID: id, Birth: model.Date(1950, time.June, 1), Sex: sex})
	for _, e := range entries {
		h.Add(e)
	}
	h.Sort()
	return h
}

func TestEventPreds(t *testing.T) {
	e := dx(1, 0, "ICPC2", "T90")
	if !MustCode("", "T9.").Match(&e) {
		t.Error("code wildcard should match")
	}
	if MustCode("ICD10", "T9.").Match(&e) {
		t.Error("system filter violated")
	}
	if MustCode("", "T9").Match(&e) {
		t.Error("anchoring violated")
	}
	c := contact(2, 0, model.SourceGP)
	if MustCode("", ".*").Match(&c) {
		t.Error("uncoded entry matched code predicate")
	}
	if !TypeIs(model.TypeDiagnosis).Match(&e) || TypeIs(model.TypeContact).Match(&e) {
		t.Error("TypeIs broken")
	}
	if !SourceIs(model.SourceGP).Match(&e) {
		t.Error("SourceIs broken")
	}
	if !KindIs(model.Point).Match(&e) || KindIs(model.Interval).Match(&e) {
		t.Error("KindIs broken")
	}

	bp := model.Entry{ID: 3, Kind: model.Point, Start: day(0), End: day(0), Type: model.TypeMeasurement, Value: 150}
	if !(ValueBetween{140, 200}).Match(&bp) || (ValueBetween{151, 200}).Match(&bp) {
		t.Error("ValueBetween broken")
	}

	iv := stay(4, 5, 3, "I21.9")
	p := InPeriod(model.Period{Start: day(6), End: day(7)})
	if !p.Match(&iv) {
		t.Error("interval overlap should match InPeriod")
	}
	pt := dxAt(0)
	if !(InPeriod(model.Period{Start: day(0), End: day(1)})).Match(&pt) {
		t.Error("point containment should match")
	}

	txt := model.Entry{ID: 5, Text: "kontroll, BT 140/90"}
	tm, err := NewTextMatch(`BT \d+/\d+`)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Match(&txt) {
		t.Error("TextMatch broken")
	}
	if _, err := NewTextMatch(`(`); err == nil {
		t.Error("bad text pattern accepted")
	}

	comb := AllOf{TypeIs(model.TypeDiagnosis), MustCode("", "T90")}
	if !comb.Match(&e) {
		t.Error("AllOf broken")
	}
	any := AnyOf{MustCode("", "X99"), TypeIs(model.TypeDiagnosis)}
	if !any.Match(&e) {
		t.Error("AnyOf broken")
	}
	if (NotEv{comb}).Match(&e) {
		t.Error("NotEv broken")
	}
	mf := MatchFunc{Fn: func(e *model.Entry) bool { return e.ID == 1 }, Name: "id=1"}
	if !mf.Match(&e) || mf.String() != "id=1" {
		t.Error("MatchFunc broken")
	}
}

func dxAt(d int) model.Entry { return dx(99, d, "ICPC2", "A04") }

func TestHasMinCount(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "T90"),
		dx(2, 30, "ICPC2", "T90"),
		dx(3, 60, "ICPC2", "K86"),
	)
	t90 := MustCode("", "T90")
	if !(Has{Pred: t90}).Eval(h) {
		t.Error("Has default count broken")
	}
	if !(Has{Pred: t90, MinCount: 2}).Eval(h) {
		t.Error("Has MinCount 2 should hold")
	}
	if (Has{Pred: t90, MinCount: 3}).Eval(h) {
		t.Error("Has MinCount 3 should fail")
	}
	if !(Has{Pred: t90, MinCount: 0}).Eval(h) {
		t.Error("MinCount 0 treated as 1")
	}
}

func TestBooleanExprs(t *testing.T) {
	h := hist(1, model.SexFemale, dx(1, 0, "ICPC2", "T90"))
	hasT90 := Has{Pred: MustCode("", "T90")}
	hasK86 := Has{Pred: MustCode("", "K86")}

	if !(And{hasT90, TrueExpr{}}).Eval(h) {
		t.Error("And broken")
	}
	if (And{hasT90, hasK86}).Eval(h) {
		t.Error("And must fail on missing code")
	}
	if !(Or{hasK86, hasT90}).Eval(h) {
		t.Error("Or broken")
	}
	if (Not{hasT90}).Eval(h) {
		t.Error("Not broken")
	}
	if !(SexIs(model.SexFemale)).Eval(h) || (SexIs(model.SexMale)).Eval(h) {
		t.Error("SexIs broken")
	}
	// Born 1950-06-01: on 2010-01-01 the patient is 59.
	if !(AgeBetween{Lo: 59, Hi: 59, At: day(0)}).Eval(h) {
		t.Errorf("AgeBetween broken: age=%d", h.Patient.AgeAt(day(0)))
	}
}

func TestDuring(t *testing.T) {
	h := hist(1, model.SexFemale,
		stay(1, 10, 7, "I21.9"),
		dx(2, 12, "ICD10", "E11.9"), // during the stay
		dx(3, 40, "ICPC2", "T90"),   // outside
	)
	d := During{
		Interval: AllOf{TypeIs(model.TypeStay), MustCode("", "I21.*")},
		Event:    MustCode("", "E11.*"),
	}
	if !d.Eval(h) {
		t.Error("During should match diagnosis inside stay")
	}
	d2 := During{
		Interval: TypeIs(model.TypeStay),
		Event:    MustCode("", "T90"),
	}
	if d2.Eval(h) {
		t.Error("During must not match event outside interval")
	}
}

func TestSequenceBasics(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "K86"),
		dx(2, 100, "ICPC2", "K74"),
		dx(3, 200, "ICPC2", "K75"),
	)
	seq := Sequence{Steps: []Step{
		{Pred: MustCode("", "K86")},
		{Pred: MustCode("", "K74")},
		{Pred: MustCode("", "K75")},
	}}
	m := seq.FirstMatch(h)
	if m == nil || len(m.Entries) != 3 {
		t.Fatal("sequence should match")
	}
	if m.Span().Start != day(0) || m.Span().End != day(200) {
		t.Errorf("span = %v", m.Span())
	}
	// Order matters.
	rev := Sequence{Steps: []Step{
		{Pred: MustCode("", "K75")},
		{Pred: MustCode("", "K86")},
	}}
	if rev.Eval(h) {
		t.Error("reversed sequence must not match")
	}
}

func TestSequenceGapConstraints(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "K75"),
		contact(2, 10, model.SourceGP),
		contact(3, 400, model.SourceGP),
	)
	// Follow-up within 90 days: matches via the day-10 contact.
	within := Sequence{Steps: []Step{
		{Pred: MustCode("", "K75")},
		{Pred: TypeIs(model.TypeContact), MaxGap: Days(90)},
	}}
	if !within.Eval(h) {
		t.Error("gap-constrained sequence should match")
	}
	// Contact at least 180 days later: only the day-400 one qualifies.
	late := Sequence{Steps: []Step{
		{Pred: MustCode("", "K75")},
		{Pred: TypeIs(model.TypeContact), MinGap: Days(180)},
	}}
	m := late.FirstMatch(h)
	if m == nil || m.Entries[1].ID != 3 {
		t.Fatalf("MinGap witness wrong: %v", m)
	}
	// Infeasible window.
	never := Sequence{Steps: []Step{
		{Pred: MustCode("", "K75")},
		{Pred: TypeIs(model.TypeContact), MinGap: Days(20), MaxGap: Days(30)},
	}}
	if never.Eval(h) {
		t.Error("infeasible gap matched")
	}
}

func TestSequenceBacktracking(t *testing.T) {
	// Greedy earliest choice at step 1 (day 0) makes step 2 infeasible
	// (MaxGap 50 reaches only day 50); the day-60 candidate works with
	// the day-100 event. Correct search must find it.
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "K86"),
		dx(2, 60, "ICPC2", "K86"),
		dx(3, 100, "ICPC2", "K75"),
	)
	seq := Sequence{Steps: []Step{
		{Pred: MustCode("", "K86")},
		{Pred: MustCode("", "K75"), MaxGap: Days(50)},
	}}
	m := seq.FirstMatch(h)
	if m == nil {
		t.Fatal("backtracking failed to find feasible witness")
	}
	if m.Entries[0].ID != 2 || m.Entries[1].ID != 3 {
		t.Errorf("witness = %d,%d", m.Entries[0].ID, m.Entries[1].ID)
	}
}

func TestSequenceAllMatches(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "R74"),
		dx(2, 50, "ICPC2", "R74"),
		dx(3, 100, "ICPC2", "R74"),
	)
	seq := Sequence{Steps: []Step{{Pred: MustCode("", "R74")}}}
	ms := seq.AllMatches(h)
	if len(ms) != 3 {
		t.Fatalf("AllMatches = %d, want 3", len(ms))
	}
	empty := Sequence{}
	if empty.AllMatches(h) != nil || empty.FirstMatch(h) != nil {
		t.Error("empty sequence must not match")
	}
}

func TestSelectAndFilter(t *testing.T) {
	col := model.MustCollection(
		hist(1, model.SexFemale, dx(1, 0, "ICPC2", "T90")),
		hist(2, model.SexMale, dx(2, 0, "ICPC2", "K86")),
		hist(3, model.SexFemale, dx(3, 0, "ICPC2", "T90"), dx(4, 10, "ICPC2", "K86")),
	)
	hasT90 := Has{Pred: MustCode("", "T90")}
	got := Select(col, hasT90)
	if !reflect.DeepEqual(got, []model.PatientID{1, 3}) {
		t.Errorf("Select = %v", got)
	}
	sub := Filter(col, hasT90)
	if sub.Len() != 2 {
		t.Errorf("Filter len = %d", sub.Len())
	}
}

func TestFilterEvents(t *testing.T) {
	h := hist(1, model.SexFemale,
		dx(1, 0, "ICPC2", "T90"),
		contact(2, 5, model.SourceGP),
		dx(3, 10, "ICPC2", "F92"),
	)
	// The paper's eye-or-ear filter.
	out := FilterEvents(h, AllOf{TypeIs(model.TypeDiagnosis), MustCode("", `F.*|H.*`)})
	if out.Len() != 1 || out.Entries[0].Code.Value != "F92" {
		t.Errorf("FilterEvents = %v", out.Entries)
	}
	if h.Len() != 3 {
		t.Error("FilterEvents mutated the original")
	}
}

func TestExprStringers(t *testing.T) {
	e := And{
		Has{Pred: MustCode("ICPC2", "T90"), MinCount: 2},
		Not{Or{SexIs(model.SexMale), TrueExpr{}}},
		During{Interval: TypeIs(model.TypeStay), Event: MustCode("", "E11.*")},
		Sequence{Steps: []Step{
			{Pred: MustCode("", "K75")},
			{Pred: TypeIs(model.TypeContact), MinGap: Days(1), MaxGap: Days(90)},
		}},
	}
	s := e.String()
	for _, want := range []string{"has>=2", "NOT", "during", "seq(", "gap 1d..90d", "AND"} {
		if !containsStr(s, want) {
			t.Errorf("stringer missing %q in %q", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
