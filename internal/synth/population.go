package synth

import (
	"runtime"
	"sync"
	"time"

	"pastas/internal/model"
	"pastas/internal/sources"
)

// Config controls the synthetic population.
type Config struct {
	// Seed drives all randomness; equal configs produce equal bundles.
	Seed int64
	// Patients is the population size (the paper's full data set: 168,000).
	Patients int
	// WindowStart/WindowEnd delimit the two-year observation window.
	WindowStart model.Time
	WindowEnd   model.Time
	// DuplicateRate is the chance a claim is delivered twice (registry
	// double-billing noise).
	DuplicateRate float64
	// InvalidDateRate is the chance a claim carries a clearly invalid
	// date (before the patient's birth), which integration must drop.
	InvalidDateRate float64
	// MissingCodeRate is the chance a GP claim lacks its structured ICPC
	// code; half of those mention the code in free text instead.
	MissingCodeRate float64
	// TypoRate is the chance a free-text blood-pressure reading uses a
	// convention the extraction regex cannot parse.
	TypoRate float64
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the calibrated configuration for n patients with
// the 2010–2011 observation window.
func DefaultConfig(n int) Config {
	return Config{
		Seed:            42,
		Patients:        n,
		WindowStart:     model.Date(2010, time.January, 1),
		WindowEnd:       model.Date(2012, time.January, 1),
		DuplicateRate:   0.010,
		InvalidDateRate: 0.002,
		MissingCodeRate: 0.050,
		TypoRate:        0.050,
	}
}

// Window returns the observation window as a period.
func (c *Config) Window() model.Period {
	return model.Period{Start: c.WindowStart, End: c.WindowEnd}
}

// Generate produces the full multi-registry bundle for the population.
// Generation is parallel across patients; output order and content are
// deterministic for a given config.
func Generate(cfg Config) *sources.Bundle {
	if cfg.Patients <= 0 {
		return &sources.Bundle{}
	}
	return GenerateRange(cfg, 1, uint64(cfg.Patients))
}

// GenerateRange produces the bundle slice for patient IDs first..last
// (1-based, inclusive). Every patient is seeded independently — personSeed
// mixes the config seed with the ID — so the records are byte-identical to
// the corresponding slice of Generate's output no matter how the range is
// chunked. This is what lets datagen's streaming mode build arbitrarily
// large extracts in constant memory.
func GenerateRange(cfg Config, first, last uint64) *sources.Bundle {
	if first == 0 || first > last {
		return &sources.Bundle{}
	}
	n := int(last - first + 1)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	parts := make([]*sources.Bundle, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := first + uint64(w*per)
		hi := first + uint64((w+1)*per) - 1
		if hi > last {
			hi = last
		}
		if lo > hi {
			parts[w] = &sources.Bundle{}
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			out := &sources.Bundle{}
			for id := lo; id <= hi; id++ {
				generatePatient(&cfg, id, out)
			}
			parts[w] = out
		}(w, lo, hi)
	}
	wg.Wait()

	total := &sources.Bundle{}
	for _, p := range parts {
		total.Persons = append(total.Persons, p.Persons...)
		total.GPClaims = append(total.GPClaims, p.GPClaims...)
		total.Prescriptions = append(total.Prescriptions, p.Prescriptions...)
		total.Episodes = append(total.Episodes, p.Episodes...)
		total.Municipal = append(total.Municipal, p.Municipal...)
		total.Specialist = append(total.Specialist, p.Specialist...)
		total.Physio = append(total.Physio, p.Physio...)
	}
	return total
}

// municipalities is a weighted pick of real Norwegian municipality numbers.
var municipalities = []int{301, 1103, 4601, 5001, 5401, 3401, 1108, 5035}

// patientCtx carries one patient's generation state; condition emitters
// append records through its helper methods, which also inject the
// configured noise.
type patientCtx struct {
	cfg    *Config
	r      *Rand
	id     uint64
	birth  model.Time
	sex    model.Sex
	age    int // at window start
	window model.Period
	out    *sources.Bundle
}

func generatePatient(cfg *Config, id uint64, out *sources.Bundle) {
	r := NewRand(personSeed(cfg.Seed, id))
	birth, sex, age := sampleDemographics(r, cfg.WindowStart)

	p := &patientCtx{
		cfg:    cfg,
		r:      r,
		id:     id,
		birth:  birth,
		sex:    sex,
		age:    age,
		window: cfg.Window(),
		out:    out,
	}

	out.Persons = append(out.Persons, sources.Person{
		ID:           id,
		BirthDate:    dateStr(birth),
		Sex:          sex.String(),
		Municipality: Pick(r, municipalities),
	})

	p.emitBackground()
	for _, c := range conditions {
		if r.Bernoulli(c.prev(age, sex)) {
			c.emit(p)
		}
	}
	p.emitAcuteEvents()
}

// sampleDemographics draws one patient's birth date, sex and age at
// window start. It is the first thing generatePatient draws from the
// person's stream, so redrawing it from a fresh Rand seeded with the
// same personSeed recovers the identical demographics — which is how
// append rounds (GenerateAppend) know an existing patient's birth date
// without regenerating their history.
func sampleDemographics(r *Rand, windowStart model.Time) (birth model.Time, sex model.Sex, age int) {
	// Age structure: [0-17], [18-39], [40-59], [60-74], [75-94].
	bracket := r.Weighted([]float64{22, 29, 26, 15, 8})
	var lo, hi int
	switch bracket {
	case 0:
		lo, hi = 0, 17
	case 1:
		lo, hi = 18, 39
	case 2:
		lo, hi = 40, 59
	case 3:
		lo, hi = 60, 74
	default:
		lo, hi = 75, 94
	}
	age = lo + r.Intn(hi-lo+1)
	birth = windowStart.AddDays(-age*365 - r.Intn(365))
	sex = model.SexFemale
	if r.Bernoulli(0.5) {
		sex = model.SexMale
	}
	return birth, sex, age
}

// years is the window length in (365-day) years.
func (p *patientCtx) years() float64 {
	return float64(p.window.Duration()) / float64(model.Year)
}

// visitDays samples Poisson(ratePerYear × window) day-aligned visit times.
func (p *patientCtx) visitDays(ratePerYear float64) []model.Time {
	n := p.r.Poisson(ratePerYear * p.years())
	out := make([]model.Time, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.r.DayIn(p.window))
	}
	return out
}

func dateStr(t model.Time) string {
	return t.AsTime().Format("2006-01-02")
}

// gpVisit appends a GP claim, applying the noise model: missing structured
// codes (half recoverable from text), typo'd BP conventions, pre-birth
// dates, and duplicate delivery.
func (p *patientCtx) gpVisit(t model.Time, icpc string, emergency bool, sys, dia int, phrases []string) {
	r := p.r
	date := t
	if r.Bernoulli(p.cfg.InvalidDateRate) {
		date = p.birth.AddDays(-(500 + r.Intn(5000)))
	}

	structured := icpc
	inline := ""
	if icpc != "" && r.Bernoulli(p.cfg.MissingCodeRate) {
		structured = ""
		if r.Bernoulli(0.5) {
			inline = icpc // recoverable from the note
		}
	}

	// Structured BP fields are filled 70% of the time; otherwise the
	// reading lives only in the note (and may be typo'd beyond recovery).
	sSys, sDia := sys, dia
	textSys, textDia := 0, 0
	if sys > 0 {
		if r.Bernoulli(0.7) {
			textSys, textDia = sys, dia // both structured and noted
		} else {
			sSys, sDia = 0, 0
			textSys, textDia = sys, dia // note only
		}
	}

	claim := sources.GPClaim{
		Person:    p.id,
		Date:      dateStr(date),
		Emergency: emergency,
		ICPC:      structured,
		Systolic:  sSys,
		Diastolic: sDia,
		Amount:    140 + float64(r.Intn(220)),
		Text:      visitNote(r, phrases, inline, textSys, textDia, p.cfg.TypoRate),
	}
	p.out.GPClaims = append(p.out.GPClaims, claim)
	if r.Bernoulli(p.cfg.DuplicateRate) {
		p.out.GPClaims = append(p.out.GPClaims, claim)
	}
}

// refills appends prescriptions of the ATC code every intervalDays through
// the window, starting at from.
func (p *patientCtx) refills(from model.Time, atc string, intervalDays int) {
	for t := from; t.Before(p.window.End); t = t.AddDays(intervalDays) {
		if !t.Before(p.window.Start) {
			p.out.Prescriptions = append(p.out.Prescriptions, sources.Prescription{
				Person: p.id, Date: dateStr(t), ATC: atc, DurationDays: intervalDays,
			})
		}
	}
}

// inpatient appends an inpatient episode of the given length.
func (p *patientCtx) inpatient(t model.Time, days int, mainICD string, secondary ...string) {
	end := t.AddDays(days)
	if end.After(p.window.End) {
		end = p.window.End
	}
	p.out.Episodes = append(p.out.Episodes, sources.HospitalEpisode{
		Person: p.id, Admitted: dateStr(t), Discharged: dateStr(end),
		Mode: sources.ModeInpatient, MainICD: mainICD, SecondaryICD: secondary,
	})
}

// outpatient appends a single-day hospital outpatient visit.
func (p *patientCtx) outpatient(t model.Time, icd string) {
	p.out.Episodes = append(p.out.Episodes, sources.HospitalEpisode{
		Person: p.id, Admitted: dateStr(t), Mode: sources.ModeOutpatient, MainICD: icd,
	})
}

// dayTreatment appends a day-treatment episode.
func (p *patientCtx) dayTreatment(t model.Time, mainICD string, secondary ...string) {
	p.out.Episodes = append(p.out.Episodes, sources.HospitalEpisode{
		Person: p.id, Admitted: dateStr(t), Mode: sources.ModeDay,
		MainICD: mainICD, SecondaryICD: secondary,
	})
}

// municipal appends a service interval; pass model.NoTime as to for a
// service still running at extract time.
func (p *patientCtx) municipal(from, to model.Time, service string) {
	toStr := ""
	if to.Valid() {
		toStr = dateStr(to)
	}
	p.out.Municipal = append(p.out.Municipal, sources.MunicipalService{
		Person: p.id, Service: service, From: dateStr(from), To: toStr,
	})
}

// specialist appends a private-specialist claim, with duplicate noise.
func (p *patientCtx) specialist(t model.Time, icd, specialty string) {
	claim := sources.SpecialistClaim{Person: p.id, Date: dateStr(t), ICD: icd, Specialty: specialty}
	p.out.Specialist = append(p.out.Specialist, claim)
	if p.r.Bernoulli(p.cfg.DuplicateRate) {
		p.out.Specialist = append(p.out.Specialist, claim)
	}
}

// physio appends a physiotherapy claim.
func (p *patientCtx) physio(t model.Time, icpc string, sessions int) {
	p.out.Physio = append(p.out.Physio, sources.PhysioClaim{
		Person: p.id, Date: dateStr(t), ICPC: icpc, Sessions: sessions,
	})
}
