// Package synth generates the synthetic Norwegian-style registry population
// the experiments run on. The paper's data — "somatic primary and specialist
// health care utilization for a two-year period" for 168,000 patients — is
// unobtainable (privacy), so this package substitutes a seeded generator
// that reproduces its statistical shape: age-dependent chronic-disease
// prevalence, heavy-tailed contact counts, multi-source duplication, free-
// text notes with typos, and a small rate of clearly invalid (pre-birth)
// dates for the integration layer to drop.
//
// All randomness derives from (Config.Seed, patient ID), so output is
// deterministic and independent of generation order or parallelism.
package synth

import (
	"math"
	"math/rand"

	"pastas/internal/model"
)

// Rand wraps math/rand with the distribution helpers the generator needs.
type Rand struct {
	*rand.Rand
}

// NewRand returns a seeded generator.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// personSeed mixes the config seed with a patient ID (splitmix64 finalizer)
// so each patient's stream is independent of every other's.
func personSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + id*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson samples a Poisson-distributed count (Knuth's method; fine for the
// small lambdas used here).
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological lambdas
			return k
		}
	}
}

// NormalInt samples round(N(mean, sd)) clamped to [lo, hi].
func (r *Rand) NormalInt(mean, sd float64, lo, hi int) int {
	v := int(math.Round(r.NormFloat64()*sd + mean))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// DayIn picks a uniform day-aligned time in [p.Start, p.End).
func (r *Rand) DayIn(p model.Period) model.Time {
	days := int64(p.Duration() / model.Day)
	if days <= 0 {
		return p.Start.DayFloor()
	}
	return p.Start.DayFloor().AddDays(int(r.Int63n(days)))
}

// Pick returns a uniformly chosen element.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Weighted returns an index sampled proportionally to weights (which need
// not be normalized). Returns len(weights)-1 as a safe fallback.
func (r *Rand) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
