package synth

import (
	"reflect"
	"testing"

	"pastas/internal/model"
	"pastas/internal/sources"
	"pastas/internal/terminology"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(200)
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config must generate identical bundles")
	}
}

func TestGenerateParallelismInvariant(t *testing.T) {
	cfg := DefaultConfig(150)
	cfg.Workers = 1
	serial := Generate(cfg)
	cfg.Workers = 7
	parallel := Generate(cfg)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count must not change output")
	}
}

// TestGenerateRangeChunksEqualWhole: stitching arbitrary chunk splits of
// GenerateRange must reproduce Generate exactly — the invariant datagen's
// -stream mode relies on for byte-identical output.
func TestGenerateRangeChunksEqualWhole(t *testing.T) {
	cfg := DefaultConfig(170)
	whole := Generate(cfg)
	for _, chunk := range []uint64{1, 7, 64, 170, 500} {
		got := &totalBundle{}
		for first := uint64(1); first <= uint64(cfg.Patients); first += chunk {
			last := first + chunk - 1
			if last > uint64(cfg.Patients) {
				last = uint64(cfg.Patients)
			}
			got.add(GenerateRange(cfg, first, last))
		}
		if !reflect.DeepEqual(whole.Persons, got.b.Persons) ||
			!reflect.DeepEqual(whole.GPClaims, got.b.GPClaims) ||
			!reflect.DeepEqual(whole.Prescriptions, got.b.Prescriptions) ||
			!reflect.DeepEqual(whole.Episodes, got.b.Episodes) ||
			!reflect.DeepEqual(whole.Municipal, got.b.Municipal) ||
			!reflect.DeepEqual(whole.Specialist, got.b.Specialist) ||
			!reflect.DeepEqual(whole.Physio, got.b.Physio) {
			t.Fatalf("chunk size %d: stitched output differs from Generate", chunk)
		}
	}
	if out := GenerateRange(cfg, 5, 4); out.TotalRecords() != 0 {
		t.Error("inverted range must be empty")
	}
	if out := GenerateRange(cfg, 0, 3); out.TotalRecords() != 0 {
		t.Error("id 0 is not a patient; range starting at 0 must be empty")
	}
}

type totalBundle struct{ b sources.Bundle }

func (t *totalBundle) add(p *sources.Bundle) {
	t.b.Persons = append(t.b.Persons, p.Persons...)
	t.b.GPClaims = append(t.b.GPClaims, p.GPClaims...)
	t.b.Prescriptions = append(t.b.Prescriptions, p.Prescriptions...)
	t.b.Episodes = append(t.b.Episodes, p.Episodes...)
	t.b.Municipal = append(t.b.Municipal, p.Municipal...)
	t.b.Specialist = append(t.b.Specialist, p.Specialist...)
	t.b.Physio = append(t.b.Physio, p.Physio...)
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(DefaultConfig(100))
	cfg := DefaultConfig(100)
	cfg.Seed = 43
	b := Generate(cfg)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(2000)
	b := Generate(cfg)
	if len(b.Persons) != 2000 {
		t.Fatalf("persons = %d", len(b.Persons))
	}
	// Rough utilization sanity: at least one GP claim per person on
	// average, and all registries populated.
	if len(b.GPClaims) < 2000 {
		t.Errorf("GP claims suspiciously few: %d", len(b.GPClaims))
	}
	if len(b.Prescriptions) == 0 || len(b.Episodes) == 0 ||
		len(b.Municipal) == 0 || len(b.Specialist) == 0 || len(b.Physio) == 0 {
		t.Errorf("registries not all populated: rx=%d ep=%d mun=%d spec=%d phy=%d",
			len(b.Prescriptions), len(b.Episodes), len(b.Municipal), len(b.Specialist), len(b.Physio))
	}
}

func TestGeneratedCodesAreKnown(t *testing.T) {
	b := Generate(DefaultConfig(500))
	icpc := terminology.ForICPC2()
	icd := terminology.ForICD10()
	atc := terminology.ForATC()
	for _, c := range b.GPClaims {
		if c.ICPC != "" && !icpc.Known(c.ICPC) {
			t.Fatalf("unknown ICPC code generated: %s", c.ICPC)
		}
	}
	for _, e := range b.Episodes {
		if !icd.Known(e.MainICD) {
			t.Fatalf("unknown ICD code generated: %s", e.MainICD)
		}
		for _, s := range e.SecondaryICD {
			if !icd.Known(s) {
				t.Fatalf("unknown secondary ICD generated: %s", s)
			}
		}
	}
	for _, rx := range b.Prescriptions {
		if !atc.Known(rx.ATC) {
			t.Fatalf("unknown ATC code generated: %s", rx.ATC)
		}
	}
	for _, s := range b.Specialist {
		if !icd.Known(s.ICD) {
			t.Fatalf("unknown specialist ICD generated: %s", s.ICD)
		}
	}
	for _, p := range b.Physio {
		if !icpc.Known(p.ICPC) {
			t.Fatalf("unknown physio ICPC generated: %s", p.ICPC)
		}
	}
}

func TestNoiseInjection(t *testing.T) {
	cfg := DefaultConfig(3000)
	b := Generate(cfg)

	// Pre-birth dates must occur at roughly InvalidDateRate.
	birth := make(map[uint64]string)
	for _, p := range b.Persons {
		birth[p.ID] = p.BirthDate
	}
	invalid := 0
	for _, c := range b.GPClaims {
		if c.Date < birth[c.Person] {
			invalid++
		}
	}
	if invalid == 0 {
		t.Error("no invalid (pre-birth) dates injected")
	}
	if frac := float64(invalid) / float64(len(b.GPClaims)); frac > 0.01 {
		t.Errorf("invalid-date fraction too high: %f", frac)
	}

	// Exact duplicates must exist.
	seen := make(map[string]int)
	dups := 0
	for _, c := range b.GPClaims {
		k := c.Date + "|" + c.Text + "|" + c.ICPC
		key := string(rune(c.Person)) + k
		seen[key]++
		if seen[key] == 2 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicate claims injected")
	}

	// Some claims must be missing their structured code.
	missing := 0
	for _, c := range b.GPClaims {
		if c.ICPC == "" {
			missing++
		}
	}
	if missing == 0 {
		t.Error("no missing-code claims injected")
	}
}

func TestBloodPressureChannels(t *testing.T) {
	b := Generate(DefaultConfig(3000))
	structured, textOnly := 0, 0
	for _, c := range b.GPClaims {
		hasText := false
		for _, tok := range []string{"BT", "bp", "Blodtrykk", "trykk", "B T"} {
			if contains(c.Text, tok) {
				hasText = true
				break
			}
		}
		if c.Systolic > 0 {
			structured++
			if c.Diastolic <= 0 || c.Diastolic >= c.Systolic {
				t.Fatalf("implausible structured BP %d/%d", c.Systolic, c.Diastolic)
			}
		} else if hasText {
			textOnly++
		}
	}
	if structured == 0 || textOnly == 0 {
		t.Errorf("BP channels missing: structured=%d textOnly=%d", structured, textOnly)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEpisodeDatesOrdered(t *testing.T) {
	b := Generate(DefaultConfig(2000))
	for _, e := range b.Episodes {
		if e.Discharged != "" && e.Discharged < e.Admitted {
			t.Fatalf("episode discharged before admitted: %+v", e)
		}
	}
	for _, m := range b.Municipal {
		if m.To != "" && m.To < m.From {
			t.Fatalf("municipal interval inverted: %+v", m)
		}
	}
}

func TestOpenEndedServicesExist(t *testing.T) {
	b := Generate(DefaultConfig(5000))
	open := 0
	for _, m := range b.Municipal {
		if m.To == "" {
			open++
		}
	}
	if open == 0 {
		t.Error("expected some still-running municipal services")
	}
}

func TestRandHelpers(t *testing.T) {
	r := NewRand(1)
	// Poisson mean ≈ lambda.
	total := 0
	n := 5000
	for i := 0; i < n; i++ {
		total += r.Poisson(3.0)
	}
	mean := float64(total) / float64(n)
	if mean < 2.7 || mean > 3.3 {
		t.Errorf("Poisson(3) mean = %f", mean)
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda must be 0")
	}

	// NormalInt respects clamps.
	for i := 0; i < 1000; i++ {
		v := r.NormalInt(100, 50, 90, 110)
		if v < 90 || v > 110 {
			t.Fatalf("NormalInt out of range: %d", v)
		}
	}

	// Bernoulli extremes.
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Error("Bernoulli extremes broken")
	}

	// DayIn stays in period and is day-aligned.
	p := model.Period{Start: model.Date(2010, 1, 1), End: model.Date(2010, 2, 1)}
	for i := 0; i < 100; i++ {
		d := r.DayIn(p)
		if !p.Contains(d) || d%model.Day != 0 {
			t.Fatalf("DayIn out of range or misaligned: %v", d)
		}
	}

	// Weighted respects zero weights.
	counts := [3]int{}
	for i := 0; i < 1000; i++ {
		counts[r.Weighted([]float64{1, 0, 1})]++
	}
	if counts[1] != 0 {
		t.Errorf("Weighted picked zero-weight element %d times", counts[1])
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Error("Weighted never picked positive-weight elements")
	}
}

func TestPersonSeedSpread(t *testing.T) {
	// Neighbouring patient IDs must get well-separated seeds.
	seen := make(map[int64]bool)
	for id := uint64(1); id <= 1000; id++ {
		s := personSeed(42, id)
		if seen[s] {
			t.Fatalf("seed collision at id %d", id)
		}
		seen[s] = true
	}
}

func TestConditionNames(t *testing.T) {
	names := ConditionNames()
	if len(names) != len(conditions) {
		t.Fatal("ConditionNames length mismatch")
	}
	want := map[string]bool{"hypertension": true, "diabetes2": true, "dementia": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing condition modules: %v", want)
	}
}

func TestChronicPrevalenceShape(t *testing.T) {
	// Prevalence must be monotone in age for the age-banded conditions.
	for _, c := range conditions {
		if c.name == "asthma" || c.name == "depression" || c.name == "hypothyroid" {
			continue
		}
		p40 := c.prev(30, model.SexFemale)
		p70 := c.prev(70, model.SexFemale)
		if p70 < p40 {
			t.Errorf("%s: prevalence not increasing with age (%f < %f)", c.name, p70, p40)
		}
	}
}
