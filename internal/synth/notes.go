package synth

import (
	"fmt"
	"strings"
)

// Free-text note synthesis. Notes follow the conventions the extraction
// regexes expect, except for a configurable typo rate that breaks them —
// reproducing the paper's observation that free-text extraction "is limited
// because of differing conventions and many typing errors".

var visitPhrases = []string{
	"kontroll",
	"oppfølging",
	"rutinekontroll",
	"time bestilt av pasient",
	"årskontroll",
	"telefonkonsultasjon",
}

var acutePhrases = []string{
	"akutt forverring",
	"nyoppstått",
	"pasienten oppsøker lege",
	"henvist fra legevakt",
}

// bpNote renders a blood-pressure reading in one of the recognized
// conventions.
func bpNote(r *Rand, sys, dia int) string {
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("BT %d/%d", sys, dia)
	case 1:
		return fmt.Sprintf("BT: %d/%d", sys, dia)
	case 2:
		return fmt.Sprintf("bp %d/%d", sys, dia)
	default:
		return fmt.Sprintf("Blodtrykk %d/%d", sys, dia)
	}
}

// typoBP renders a reading in a convention the extractor cannot parse.
func typoBP(r *Rand, sys, dia int) string {
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("BTT %d%d", sys, dia) // doubled letter, no slash
	case 1:
		return fmt.Sprintf("B T %d-%d", sys, dia) // split token, dash
	default:
		return fmt.Sprintf("trykk %d over %d", sys, dia) // prose
	}
}

// visitNote composes a GP note: a phrase, optionally the ICPC code inline,
// optionally a BP reading (typo'd at typoRate).
func visitNote(r *Rand, phraseSet []string, inlineCode string, sys, dia int, typoRate float64) string {
	var b strings.Builder
	b.WriteString(Pick(r, phraseSet))
	if inlineCode != "" {
		b.WriteString(" ")
		b.WriteString(inlineCode)
	}
	if sys > 0 {
		b.WriteString(", ")
		if r.Bernoulli(typoRate) {
			b.WriteString(typoBP(r, sys, dia))
		} else {
			b.WriteString(bpNote(r, sys, dia))
		}
	}
	return b.String()
}
