package synth

import (
	"pastas/internal/model"
	"pastas/internal/sources"
)

// Chronic-condition modules. Each condition carries an age/sex prevalence
// and an emitter that writes the condition's two-year utilization pattern
// into the patient's registry records: GP control visits, prescriptions,
// hospital episodes, municipal services and physiotherapy, coded in ICPC-2
// on the primary-care side and ICD-10 on the specialist side.

// condition is one chronic-disease module.
type condition struct {
	name string
	// prev returns point prevalence for the patient.
	prev func(age int, sex model.Sex) float64
	// emit writes the condition's records for the window.
	emit func(p *patientCtx)
}

// ageBand returns prevalence from under-40 / 40-59 / 60-74 / 75+ bands.
func ageBand(age int, under40, mid, senior, old float64) float64 {
	switch {
	case age < 40:
		return under40
	case age < 60:
		return mid
	case age < 75:
		return senior
	default:
		return old
	}
}

// conditions is the module registry. Prevalences approximate Norwegian
// general-practice figures; together they are calibrated so the paper's
// cohort criteria select ≈13k of 168k patients (experiment E1).
var conditions = []condition{
	{"hypertension", func(age int, _ model.Sex) float64 { return ageBand(age, 0.02, 0.12, 0.30, 0.40) }, (*patientCtx).emitHypertension},
	{"diabetes2", func(age int, _ model.Sex) float64 { return ageBand(age, 0.01, 0.05, 0.12, 0.14) }, (*patientCtx).emitDiabetes2},
	{"copd", func(age int, _ model.Sex) float64 { return ageBand(age, 0.005, 0.03, 0.08, 0.10) }, (*patientCtx).emitCOPD},
	{"asthma", func(_ int, _ model.Sex) float64 { return 0.06 }, (*patientCtx).emitAsthma},
	{"depression", func(age int, _ model.Sex) float64 {
		if age < 18 {
			return 0.01
		}
		return 0.07
	}, (*patientCtx).emitDepression},
	{"ihd", func(age int, _ model.Sex) float64 { return ageBand(age, 0.002, 0.04, 0.12, 0.18) }, (*patientCtx).emitIHD},
	{"heartfailure", func(age int, _ model.Sex) float64 { return ageBand(age, 0.002, 0.005, 0.04, 0.10) }, (*patientCtx).emitHeartFailure},
	{"afib", func(age int, _ model.Sex) float64 { return ageBand(age, 0.002, 0.005, 0.06, 0.12) }, (*patientCtx).emitAfib},
	{"osteoarthritis", func(age int, _ model.Sex) float64 { return ageBand(age, 0.005, 0.06, 0.15, 0.20) }, (*patientCtx).emitOsteoarthritis},
	{"hypothyroid", func(age int, sex model.Sex) float64 {
		if age < 18 {
			return 0.002
		}
		if sex == model.SexFemale {
			return 0.06
		}
		return 0.015
	}, (*patientCtx).emitHypothyroid},
	{"dementia", func(age int, _ model.Sex) float64 {
		switch {
		case age < 75:
			return 0.002
		case age < 85:
			return 0.12
		default:
			return 0.30
		}
	}, (*patientCtx).emitDementia},
	{"cancer", func(age int, _ model.Sex) float64 {
		if age < 50 {
			return 0.002
		}
		return 0.015
	}, (*patientCtx).emitCancer},
}

// ConditionNames lists the chronic-condition modules, for reports.
func ConditionNames() []string {
	out := make([]string, len(conditions))
	for i, c := range conditions {
		out[i] = c.name
	}
	return out
}

// --- chronic-condition emitters ------------------------------------------

// emitHypertension: regular GP controls with blood-pressure readings
// (these are Fig. 1's measurement arrows) plus antihypertensive refills.
func (p *patientCtx) emitHypertension() {
	icpc := "K86"
	if p.r.Bernoulli(0.15) {
		icpc = "K87" // complicated hypertension
	}
	for _, t := range p.visitDays(3.0) {
		sys := p.r.NormalInt(150, 15, 110, 210)
		dia := p.r.NormalInt(90, 8, 60, 120)
		p.gpVisit(t, icpc, false, sys, dia, visitPhrases)
	}
	classes := []string{"C03A", "C07AB02", "C09AA05", "C08C"}
	n := 1 + p.r.Intn(2)
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 90*model.Day})
	for i := 0; i < n; i++ {
		p.refills(start.AddDays(i*7), Pick(p.r, classes), 90)
	}
}

// emitDiabetes2: quarterly T90 controls, metformin (sometimes insulin)
// refills, annual ophthalmology outpatient check.
func (p *patientCtx) emitDiabetes2() {
	for _, t := range p.visitDays(4.0) {
		sys, dia := 0, 0
		if p.r.Bernoulli(0.5) {
			sys = p.r.NormalInt(140, 14, 105, 200)
			dia = p.r.NormalInt(85, 8, 55, 115)
		}
		p.gpVisit(t, "T90", false, sys, dia, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 90*model.Day})
	p.refills(start, "A10BA02", 90)
	if p.r.Bernoulli(0.10) {
		p.refills(start.AddDays(30), "A10A", 90)
	}
	for year := 0; year < int(p.years()); year++ {
		if p.r.Bernoulli(0.7) {
			t := p.r.DayIn(model.Period{
				Start: p.window.Start + model.Time(year)*model.Year,
				End:   p.window.Start + model.Time(year+1)*model.Year,
			})
			p.outpatient(t, "E11.3")
		}
	}
}

// emitCOPD: R95 controls, inhaler refills, and exacerbations that arrive
// via the emergency GP service and end as inpatient J44.1 stays.
func (p *patientCtx) emitCOPD() {
	for _, t := range p.visitDays(3.0) {
		p.gpVisit(t, "R95", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 120*model.Day})
	p.refills(start, "R03AC02", 90)
	if p.r.Bernoulli(0.5) {
		p.refills(start.AddDays(14), "R03B", 90)
	}
	n := p.r.Poisson(0.4 * p.years())
	for i := 0; i < n; i++ {
		t := p.r.DayIn(p.window)
		p.gpVisit(t, "R95", true, 0, 0, acutePhrases)
		p.inpatient(t, 3+p.r.Intn(8), "J44.1", "J44")
	}
}

// emitAsthma: R96 controls and salbutamol refills; rare emergency visits.
func (p *patientCtx) emitAsthma() {
	for _, t := range p.visitDays(1.5) {
		p.gpVisit(t, "R96", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 120*model.Day})
	p.refills(start, "R03AC02", 120)
	if p.r.Bernoulli(0.2 * p.years()) {
		p.gpVisit(p.r.DayIn(p.window), "R96", true, 0, 0, acutePhrases)
	}
}

// emitDepression: frequent GP contact, SSRI refills, psychiatrist claims.
func (p *patientCtx) emitDepression() {
	for _, t := range p.visitDays(4.0) {
		p.gpVisit(t, "P76", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 120*model.Day})
	p.refills(start, "N06AB04", 90)
	n := p.r.Poisson(1.5)
	for i := 0; i < n; i++ {
		p.specialist(p.r.DayIn(p.window), "F32", "psychiatry")
	}
}

// emitIHD: angina controls, statin + antithrombotic refills, and a possible
// acute myocardial infarction with inpatient stay and cardiology follow-up.
func (p *patientCtx) emitIHD() {
	for _, t := range p.visitDays(2.0) {
		p.gpVisit(t, "K74", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 90*model.Day})
	p.refills(start, "C10AA01", 90)
	p.refills(start.AddDays(7), "B01A", 90)
	if p.r.Bernoulli(0.06 * p.years()) {
		t := p.r.DayIn(p.window)
		p.gpVisit(t, "K75", true, 0, 0, acutePhrases)
		p.inpatient(t, 5+p.r.Intn(6), "I21.9", "E78")
		for _, off := range []int{30, 90} {
			ft := t.AddDays(off)
			if ft.Before(p.window.End) {
				p.outpatient(ft, "I25")
			}
		}
	}
}

// emitHeartFailure: tight GP follow-up with BP, loop-diuretic refills,
// decompensation admissions.
func (p *patientCtx) emitHeartFailure() {
	for _, t := range p.visitDays(4.0) {
		sys := p.r.NormalInt(135, 18, 90, 200)
		dia := p.r.NormalInt(80, 10, 50, 110)
		p.gpVisit(t, "K77", false, sys, dia, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 60*model.Day})
	p.refills(start, "C03C", 60)
	if p.r.Bernoulli(0.22 * p.years()) {
		t := p.r.DayIn(p.window)
		p.inpatient(t, 4+p.r.Intn(9), "I50.9", "I50")
	}
}

// emitAfib: rate controls, anticoagulation, annual cardiology outpatient,
// occasional electroconversion day treatment.
func (p *patientCtx) emitAfib() {
	for _, t := range p.visitDays(2.0) {
		p.gpVisit(t, "K78", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 90*model.Day})
	p.refills(start, "B01A", 90)
	for year := 0; year < int(p.years()); year++ {
		if p.r.Bernoulli(0.8) {
			t := p.r.DayIn(model.Period{
				Start: p.window.Start + model.Time(year)*model.Year,
				End:   p.window.Start + model.Time(year+1)*model.Year,
			})
			p.outpatient(t, "I48")
		}
	}
	if p.r.Bernoulli(0.05) {
		p.dayTreatment(p.r.DayIn(p.window), "I48")
	}
}

// emitOsteoarthritis: hip or knee arthrosis with NSAID refills, physio
// series, and a possible joint replacement with rehabilitation.
func (p *patientCtx) emitOsteoarthritis() {
	icpc, icd := "L89", "M16"
	if p.r.Bernoulli(0.5) {
		icpc, icd = "L90", "M17"
	}
	for _, t := range p.visitDays(2.0) {
		p.gpVisit(t, icpc, false, 0, 0, visitPhrases)
	}
	if p.r.Bernoulli(0.6) {
		start := p.r.DayIn(p.window)
		p.refills(start, "M01A", 60)
	}
	if p.r.Bernoulli(0.5) {
		p.physio(p.r.DayIn(p.window), icpc, 6+p.r.Intn(8))
	}
	if p.r.Bernoulli(0.08) {
		t := p.r.DayIn(p.window)
		p.inpatient(t, 5+p.r.Intn(4), icd)
		after := t.AddDays(14)
		if after.Before(p.window.End) {
			p.physio(after, icpc, 10+p.r.Intn(10))
		}
		ctrl := t.AddDays(90)
		if ctrl.Before(p.window.End) {
			p.outpatient(ctrl, icd)
		}
	}
}

// emitHypothyroid: T86 controls with levothyroxine refills.
func (p *patientCtx) emitHypothyroid() {
	for _, t := range p.visitDays(1.5) {
		p.gpVisit(t, "T86", false, 0, 0, visitPhrases)
	}
	start := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + 120*model.Day})
	p.refills(start, "H03A", 90)
}

// emitDementia: P70 follow-up, home care escalating to an open-ended
// nursing-home stay for the oldest.
func (p *patientCtx) emitDementia() {
	for _, t := range p.visitDays(3.0) {
		p.gpVisit(t, "P70", false, 0, 0, visitPhrases)
	}
	if p.r.Bernoulli(0.6) {
		from := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.Start + model.Year})
		if p.age >= 80 && p.r.Bernoulli(0.5) {
			// Home care, then a nursing-home admission that is still
			// running at extract time.
			mid := from.AddDays(120 + p.r.Intn(240))
			p.municipal(from, mid, sources.ServiceHomeCare)
			p.municipal(mid, model.NoTime, sources.ServiceNursing)
		} else {
			p.municipal(from, model.NoTime, sources.ServiceHomeCare)
		}
	}
	if p.r.Bernoulli(0.4) {
		p.outpatient(p.r.DayIn(p.window), "F03")
	}
}

// emitCancer: diagnosis, surgical admission, a weekly day-treatment series
// (Z51.5 with the tumour as secondary code), and outpatient follow-up —
// breast cancer for women, prostate for men.
func (p *patientCtx) emitCancer() {
	icpc, icd := "X76", "C50"
	if p.sex == model.SexMale {
		icpc, icd = "Y77", "C61"
	}
	dx := p.r.DayIn(model.Period{Start: p.window.Start, End: p.window.End - 120*model.Day})
	p.gpVisit(dx, icpc, false, 0, 0, acutePhrases)
	surgery := dx.AddDays(14 + p.r.Intn(21))
	p.inpatient(surgery, 3+p.r.Intn(5), icd)
	series := 10 + p.r.Intn(7)
	for i := 0; i < series; i++ {
		t := surgery.AddDays(21 + i*7)
		if !t.Before(p.window.End) {
			break
		}
		p.dayTreatment(t, "Z51.5", icd)
	}
	for _, off := range []int{180, 330} {
		t := surgery.AddDays(off)
		if t.Before(p.window.End) {
			p.outpatient(t, icd)
		}
	}
}

// --- acute incident events ------------------------------------------------

// emitAcuteEvents adds incidence-based events: stroke, hip fracture,
// pneumonia and appendicitis — the acute-care trajectories the paper's
// title points at (emergency contact → admission → rehabilitation →
// municipal services).
func (p *patientCtx) emitAcuteEvents() {
	p.emitPneumonia()
	p.emitAppendicitis()
	// Stroke.
	strokeP := ageBand(p.age, 0.0005, 0.004, 0.008, 0.024) * p.years()
	if p.r.Bernoulli(strokeP) {
		t := p.r.DayIn(p.window)
		p.inpatient(t, 10+p.r.Intn(11), "I63.9", "I10")
		disch := t.AddDays(12)
		if disch.Before(p.window.End) {
			p.gpVisit(disch.AddDays(7), "K90", false, 0, 0, visitPhrases)
			p.physio(disch.AddDays(10), "K90", 8+p.r.Intn(12))
			p.refills(disch, "B01A", 90)
			if p.age >= 70 && p.r.Bernoulli(0.6) {
				if p.r.Bernoulli(0.3) {
					p.municipal(disch, model.NoTime, sources.ServiceHomeCare)
				} else {
					p.municipal(disch, disch.AddDays(90+p.r.Intn(210)), sources.ServiceHomeCare)
				}
			}
		}
	}

	// Hip fracture.
	var fracP float64
	switch {
	case p.age < 60:
		fracP = 0.001
	case p.age < 75:
		fracP = 0.006
	default:
		if p.sex == model.SexFemale {
			fracP = 0.03
		} else {
			fracP = 0.014
		}
	}
	if p.r.Bernoulli(fracP * p.years()) {
		t := p.r.DayIn(p.window)
		p.gpVisit(t, "L75", true, 0, 0, acutePhrases)
		p.inpatient(t, 7+p.r.Intn(8), "S72.0", "S72")
		after := t.AddDays(14 + p.r.Intn(7))
		if after.Before(p.window.End) {
			p.physio(after, "L75", 10+p.r.Intn(10))
			p.gpVisit(after.AddDays(30), "L75", false, 0, 0, visitPhrases)
			p.refills(after, "M05B", 90)
			if p.age >= 83 && p.r.Bernoulli(0.3) {
				p.municipal(after, model.NoTime, sources.ServiceNursing)
			}
		}
	}
}

// emitPneumonia: winter-season pneumonia, mostly in the elderly — the
// classic acute pathway: emergency GP contact, same-day admission, GP
// follow-up, antibiotics.
func (p *patientCtx) emitPneumonia() {
	rate := ageBand(p.age, 0.002, 0.004, 0.010, 0.030)
	if !p.r.Bernoulli(rate * p.years()) {
		return
	}
	// Bias toward winter: pick a day in Nov-Mar of a random window year.
	year := p.r.Intn(int(p.years()))
	winterStart := p.window.Start + model.Time(year)*model.Year + 300*model.Day
	t := p.r.DayIn(model.Period{Start: winterStart, End: winterStart + 120*model.Day})
	if !p.window.Contains(t) {
		t = p.r.DayIn(p.window)
	}
	p.gpVisit(t, "R81", true, 0, 0, acutePhrases)
	if p.age >= 60 || p.r.Bernoulli(0.3) {
		p.inpatient(t, 4+p.r.Intn(7), "J18")
	}
	p.out.Prescriptions = append(p.out.Prescriptions, sources.Prescription{
		Person: p.id, Date: dateStr(t), ATC: "J01C", DurationDays: 10,
	})
	follow := t.AddDays(14)
	if follow.Before(p.window.End) {
		p.gpVisit(follow, "R81", false, 0, 0, visitPhrases)
	}
}

// emitAppendicitis: the young person's acute abdomen — emergency contact
// and a short surgical stay.
func (p *patientCtx) emitAppendicitis() {
	var rate float64
	switch {
	case p.age < 30:
		rate = 0.002
	case p.age < 50:
		rate = 0.001
	default:
		rate = 0.0004
	}
	if !p.r.Bernoulli(rate * p.years()) {
		return
	}
	t := p.r.DayIn(p.window)
	p.gpVisit(t, "D06", true, 0, 0, acutePhrases)
	p.inpatient(t, 2+p.r.Intn(3), "K35")
}

// --- background utilization ------------------------------------------------

// backgroundCodes are the everyday acute reasons for GP contact, weighted;
// age- and sex-specific entries are appended in emitBackground.
var backgroundCodes = []struct {
	icpc   string
	weight float64
}{
	{"R74", 0.25}, // acute URI
	{"L03", 0.12}, // low back
	{"A04", 0.08}, // fatigue
	{"D73", 0.06}, // gastroenteritis
	{"N01", 0.05}, // headache
	{"S18", 0.05}, // laceration
	{"L77", 0.04}, // ankle sprain
	{"P06", 0.04}, // sleep disturbance
	{"R80", 0.07}, // influenza
	{"S88", 0.03}, // contact dermatitis
	{"D01", 0.04}, // abdominal pain
	{"R05", 0.05}, // cough
}

// emitBackground writes the population-wide utilization floor: everyday GP
// contacts, annual checkups with BP, occasional physiotherapy and private
// specialists.
func (p *patientCtx) emitBackground() {
	rate := 1.2
	switch {
	case p.age < 18:
		rate = 1.5
	case p.age >= 75:
		rate = 2.0
	case p.age >= 60:
		rate = 1.6
	}

	codes := make([]string, 0, len(backgroundCodes)+2)
	weights := make([]float64, 0, len(backgroundCodes)+2)
	for _, c := range backgroundCodes {
		codes = append(codes, c.icpc)
		weights = append(weights, c.weight)
	}
	if p.sex == model.SexFemale && p.age >= 16 {
		codes = append(codes, "U71")
		weights = append(weights, 0.08)
	}
	if p.age < 15 {
		codes = append(codes, "H71")
		weights = append(weights, 0.15)
	}

	for _, t := range p.visitDays(rate) {
		icpc := codes[p.r.Weighted(weights)]
		emergency := p.r.Bernoulli(0.10)
		p.gpVisit(t, icpc, emergency, 0, 0, acutePhrases)
	}

	// Annual checkup with a blood-pressure reading.
	for year := 0; year < int(p.years()); year++ {
		if p.age >= 18 && p.r.Bernoulli(0.25) {
			t := p.r.DayIn(model.Period{
				Start: p.window.Start + model.Time(year)*model.Year,
				End:   p.window.Start + model.Time(year+1)*model.Year,
			})
			sys := p.r.NormalInt(128, 12, 95, 180)
			dia := p.r.NormalInt(80, 8, 55, 110)
			p.gpVisit(t, "A30", false, sys, dia, visitPhrases)
		}
	}

	if p.age >= 18 && p.r.Bernoulli(0.05) {
		p.physio(p.r.DayIn(p.window), "L03", 6+p.r.Intn(6))
	}
	if p.r.Bernoulli(0.04) {
		kind := Pick(p.r, []struct{ icd, spec string }{
			{"L20", "dermatology"},
			{"H25", "ophthalmology"},
			{"H66", "otolaryngology"},
			{"M54", "orthopedics"},
		})
		p.specialist(p.r.DayIn(p.window), kind.icd, kind.spec)
	}
}
