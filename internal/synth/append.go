package synth

// Follow-on feed generation for the live-ingest path. An append round is
// one bundle a running workbench would receive after its initial load:
// some brand-new persons (with their full registry history, exactly as
// GenerateRange would have produced them) plus fresh events for a sample
// of the patients already loaded. Rounds are keyed off (Config.Seed,
// patient ID, round), so the feed is deterministic: the same config and
// round numbers always produce the same bundles, independent of what was
// consumed before.

import (
	"pastas/internal/model"
	"pastas/internal/sources"
)

// appendFollowRate is the chance an existing patient receives follow-on
// events in a given round.
const appendFollowRate = 0.10

// roundSeed derives the per-(patient, round) stream: the person's base
// seed re-mixed with the round number, so each round's events are
// independent of the base history and of every other round.
func roundSeed(seed int64, id uint64, round int) int64 {
	return personSeed(personSeed(seed, id), uint64(round)+1)
}

// GenerateAppend produces one follow-on bundle for a population built
// from cfg: new persons firstNew..lastNew (1-based, inclusive; pass
// firstNew > lastNew for none), plus new events for a deterministic
// ~10% sample of the base patients 1..cfg.Patients, drawn for the given
// round (1-based). Follow-on events always postdate the patient's birth,
// so integration admits them; duplicate-delivery noise applies like in
// the base feed.
func GenerateAppend(cfg Config, firstNew, lastNew uint64, round int) *sources.Bundle {
	out := &sources.Bundle{}
	if firstNew != 0 && firstNew <= lastNew {
		out = GenerateRange(cfg, firstNew, lastNew)
	}
	window := cfg.Window()
	for id := uint64(1); id <= uint64(cfg.Patients); id++ {
		r := NewRand(roundSeed(cfg.Seed, id, round))
		if !r.Bernoulli(appendFollowRate) {
			continue
		}
		// Recover the patient's deterministic birth date so every
		// follow-on event is admissible.
		birth, _, _ := sampleDemographics(NewRand(personSeed(cfg.Seed, id)), cfg.WindowStart)
		emitFollowOn(&cfg, r, id, birth, window, out)
	}
	return out
}

// followICPC/followATC/followICD are the code pools follow-on events draw
// from — common primary-care presentations, not tied to the base
// condition emitters.
var (
	followICPC = []string{"R74", "L03", "K86", "T90", "A04", "L89"}
	followATC  = []string{"M01AE01", "C07AB02", "N02BE01", "J01CA04"}
	followICD  = []string{"J06", "M54", "I10", "E11"}
)

// emitFollowOn writes one round's events for one existing patient: one
// to three GP visits, sometimes a prescription, occasionally a
// specialist contact. Dates are drawn from the window but clamped past
// birth (a patient born mid-window only gets post-birth events).
func emitFollowOn(cfg *Config, r *Rand, id uint64, birth model.Time, window model.Period, out *sources.Bundle) {
	day := func() model.Time {
		t := r.DayIn(window)
		if t < birth {
			t = birth.AddDays(r.Intn(30) + 1)
		}
		return t
	}
	visits := 1 + r.Intn(3)
	for i := 0; i < visits; i++ {
		claim := sources.GPClaim{
			Person: id,
			Date:   dateStr(day()),
			ICPC:   Pick(r, followICPC),
			Amount: 140 + float64(r.Intn(220)),
			Text:   "follow-up consultation",
		}
		out.GPClaims = append(out.GPClaims, claim)
		if r.Bernoulli(cfg.DuplicateRate) {
			out.GPClaims = append(out.GPClaims, claim)
		}
	}
	if r.Bernoulli(0.4) {
		out.Prescriptions = append(out.Prescriptions, sources.Prescription{
			Person: id, Date: dateStr(day()), ATC: Pick(r, followATC), DurationDays: 30,
		})
	}
	if r.Bernoulli(0.15) {
		out.Specialist = append(out.Specialist, sources.SpecialistClaim{
			Person: id, Date: dateStr(day()), ICD: Pick(r, followICD), Specialty: "internal medicine",
		})
	}
}
