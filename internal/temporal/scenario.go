package temporal

// Scenario search — the paper's stated future work: "Currently, we are
// investigating the use of constraint logic programming to handle interval
// reasoning." A scenario is a consistent assignment of one basic relation
// to every edge; Solve finds one by backtracking with path-consistency
// propagation (the standard CLP labeling loop), and Scenarios enumerates
// up to a cap.

// Solve returns a consistent scenario of the network as a new network with
// every edge basic, or nil when the network is unsatisfiable. The input is
// not modified.
func (net *Network) Solve() *Network {
	work := net.Clone()
	if !work.PathConsistency() {
		return nil
	}
	if s := work.label(); s != nil {
		return s
	}
	return nil
}

// label recursively assigns basic relations to non-basic edges.
func (net *Network) label() *Network {
	i, j, found := net.firstAmbiguous()
	if !found {
		return net
	}
	rel := net.c[i][j]
	for _, b := range Basics() {
		if rel&b == 0 {
			continue
		}
		trial := net.Clone()
		trial.c[i][j] = b
		trial.c[j][i] = Converse(b)
		if !trial.PathConsistency() {
			continue
		}
		if s := trial.label(); s != nil {
			return s
		}
	}
	return nil
}

// firstAmbiguous returns the lexicographically first non-basic edge.
func (net *Network) firstAmbiguous() (int, int, bool) {
	n := len(net.c)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !net.c[i][j].IsBasic() {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// Scenarios enumerates up to max consistent scenarios (distinct basic
// labelings). max <= 0 means just test satisfiability (returns at most 1).
func (net *Network) Scenarios(max int) []*Network {
	if max <= 0 {
		max = 1
	}
	work := net.Clone()
	if !work.PathConsistency() {
		return nil
	}
	var out []*Network
	work.enumerate(&out, max)
	return out
}

func (net *Network) enumerate(out *[]*Network, max int) {
	if len(*out) >= max {
		return
	}
	i, j, found := net.firstAmbiguous()
	if !found {
		*out = append(*out, net.Clone())
		return
	}
	rel := net.c[i][j]
	for _, b := range Basics() {
		if rel&b == 0 {
			continue
		}
		trial := net.Clone()
		trial.c[i][j] = b
		trial.c[j][i] = Converse(b)
		if !trial.PathConsistency() {
			continue
		}
		trial.enumerate(out, max)
		if len(*out) >= max {
			return
		}
	}
}

// Satisfiable reports whether at least one scenario exists. Path
// consistency alone is incomplete for general Allen networks; this is the
// complete check.
func (net *Network) Satisfiable() bool {
	return net.Solve() != nil
}
