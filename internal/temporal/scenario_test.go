package temporal

import (
	"testing"

	"pastas/internal/model"
)

func TestSolveAlreadyBasic(t *testing.T) {
	net, err := FromPeriods([]string{"a", "b"}, []model.Period{p(0, 10), p(20, 30)})
	if err != nil {
		t.Fatal(err)
	}
	s := net.Solve()
	if s == nil {
		t.Fatal("exact network unsolvable")
	}
	if s.Relation(0, 1) != Before {
		t.Errorf("scenario relation = %v", s.Relation(0, 1))
	}
}

func TestSolvePicksConsistentLabeling(t *testing.T) {
	// A before B, C unconstrained: Solve must return all-basic edges.
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Before)
	s := net.Solve()
	if s == nil {
		t.Fatal("satisfiable network unsolved")
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !s.Relation(i, j).IsBasic() {
				t.Errorf("edge %d-%d not basic: %v", i, j, s.Relation(i, j))
			}
		}
	}
	// The solved scenario itself must be path-consistent.
	if !s.Clone().PathConsistency() {
		t.Error("scenario not path-consistent")
	}
	if s.Relation(0, 1) != Before {
		t.Error("solver changed a fixed edge")
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Before)
	net.Constrain(1, 2, Before)
	net.Constrain(2, 0, Before)
	if net.Solve() != nil {
		t.Error("inconsistent cycle solved")
	}
	if net.Satisfiable() {
		t.Error("Satisfiable true for cycle")
	}
}

func TestSolveRequiresSearchBeyondPC(t *testing.T) {
	// A disjunctive network PC alone does not finish: A {before,after} B,
	// B {before,after} C, A {before,after} C — satisfiable, needs labeling.
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Before|After)
	net.Constrain(1, 2, Before|After)
	net.Constrain(0, 2, Before|After)
	s := net.Solve()
	if s == nil {
		t.Fatal("satisfiable disjunctive network unsolved")
	}
	// Transitivity must hold in the found scenario.
	ab, bc, ac := s.Relation(0, 1), s.Relation(1, 2), s.Relation(0, 2)
	if ab == Before && bc == Before && ac != Before {
		t.Error("scenario violates transitivity")
	}
	if ab == After && bc == After && ac != After {
		t.Error("scenario violates transitivity")
	}
}

func TestScenariosEnumeration(t *testing.T) {
	net := NewNetwork("A", "B")
	net.Constrain(0, 1, Before|Meets|Overlaps)
	ss := net.Scenarios(10)
	if len(ss) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(ss))
	}
	seen := map[Rel]bool{}
	for _, s := range ss {
		seen[s.Relation(0, 1)] = true
	}
	if !seen[Before] || !seen[Meets] || !seen[Overlaps] {
		t.Errorf("scenario set = %v", seen)
	}
	// Cap respected.
	if got := net.Scenarios(2); len(got) != 2 {
		t.Errorf("capped scenarios = %d", len(got))
	}
	// Satisfiability-only mode.
	if got := net.Scenarios(0); len(got) != 1 {
		t.Errorf("max<=0 scenarios = %d", len(got))
	}
}

func TestScenariosOfUnsatisfiable(t *testing.T) {
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Before)
	net.Constrain(1, 2, Before)
	net.Constrain(2, 0, Before)
	if got := net.Scenarios(5); got != nil {
		t.Errorf("scenarios of unsat = %v", got)
	}
}

func TestSolveDoesNotMutateInput(t *testing.T) {
	net := NewNetwork("A", "B")
	net.Constrain(0, 1, Before|After)
	_ = net.Solve()
	if net.Relation(0, 1) != Before|After {
		t.Error("Solve mutated its input")
	}
}

func TestSolveEpisodeScale(t *testing.T) {
	// An 8-interval network with half its edges erased must still solve
	// quickly (propagation prunes the search).
	periods := make([]model.Period, 8)
	names := make([]string, 8)
	for i := range periods {
		start := model.Time(i) * 100
		periods[i] = model.Period{Start: start, End: start + 150} // overlapping chain
		names[i] = string(rune('A' + i))
	}
	net, err := FromPeriods(names, periods)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := i + 2; j < 8; j++ {
			net.Erase(i, j)
		}
	}
	s := net.Solve()
	if s == nil {
		t.Fatal("erased chain unsolvable")
	}
	// Kept edges survive.
	if s.Relation(0, 1) != Overlaps {
		t.Errorf("kept edge changed: %v", s.Relation(0, 1))
	}
}
