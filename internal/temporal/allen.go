// Package temporal implements Allen's interval algebra and a qualitative
// constraint network with path consistency. The paper's prototype
// "represents and reasons with patient events" and cites CNTRO's temporal
// semantics; its conclusion reports "investigating the use of constraint
// logic programming to handle interval reasoning" — this package is that
// reasoning substrate, used over episodes derived from histories.
package temporal

import (
	"strings"

	"pastas/internal/model"
)

// Rel is a set of Allen relations (a bitmask over the 13 basics). A
// constraint "A r B" with several bits set means the true relation is one
// of them.
type Rel uint16

// The 13 basic Allen relations, A relative to B.
const (
	Before       Rel = 1 << iota // A ends before B starts
	Meets                        // A ends exactly where B starts
	Overlaps                     // A starts first, they overlap, B ends last
	Starts                       // same start, A ends first
	During                       // A strictly inside B
	Finishes                     // same end, A starts last
	Equal                        // identical intervals
	FinishedBy                   // same end, A starts first (conv. Finishes)
	Contains                     // B strictly inside A (conv. During)
	StartedBy                    // same start, A ends last (conv. Starts)
	OverlappedBy                 // conv. Overlaps
	MetBy                        // conv. Meets
	After                        // conv. Before

	// Full is the vacuous constraint (anything possible).
	Full Rel = 1<<13 - 1
	// None is the inconsistent constraint.
	None Rel = 0
)

var basicNames = map[Rel]string{
	Before: "b", Meets: "m", Overlaps: "o", Starts: "s", During: "d",
	Finishes: "f", Equal: "e", FinishedBy: "fi", Contains: "di",
	StartedBy: "si", OverlappedBy: "oi", MetBy: "mi", After: "bi",
}

// Basics lists the 13 basic relations in declaration order.
func Basics() []Rel {
	out := make([]Rel, 0, 13)
	for r := Before; r <= After; r <<= 1 {
		out = append(out, r)
	}
	return out
}

// IsBasic reports whether exactly one relation bit is set.
func (r Rel) IsBasic() bool { return r != 0 && r&(r-1) == 0 }

// Has reports whether all of q's bits are included in r.
func (r Rel) Has(q Rel) bool { return r&q == q }

// Count returns the number of basic relations in the set.
func (r Rel) Count() int {
	n := 0
	for _, b := range Basics() {
		if r&b != 0 {
			n++
		}
	}
	return n
}

func (r Rel) String() string {
	if r == None {
		return "⊥"
	}
	if r == Full {
		return "⊤"
	}
	var parts []string
	for _, b := range Basics() {
		if r&b != 0 {
			parts = append(parts, basicNames[b])
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Converse returns the relation of B to A given A to B.
func Converse(r Rel) Rel {
	pairs := [...][2]Rel{
		{Before, After}, {Meets, MetBy}, {Overlaps, OverlappedBy},
		{Starts, StartedBy}, {During, Contains}, {Finishes, FinishedBy},
	}
	out := r & Equal
	for _, p := range pairs {
		if r&p[0] != 0 {
			out |= p[1]
		}
		if r&p[1] != 0 {
			out |= p[0]
		}
	}
	return out
}

// Between computes the basic relation between two concrete periods.
// Periods must be non-empty (Start < End).
func Between(a, b model.Period) Rel {
	switch {
	case a.End < b.Start:
		return Before
	case a.End == b.Start:
		return Meets
	case b.End < a.Start:
		return After
	case b.End == a.Start:
		return MetBy
	}
	// They overlap in time; discriminate on endpoints.
	switch {
	case a.Start == b.Start && a.End == b.End:
		return Equal
	case a.Start == b.Start:
		if a.End < b.End {
			return Starts
		}
		return StartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return Finishes
		}
		return FinishedBy
	case a.Start > b.Start && a.End < b.End:
		return During
	case a.Start < b.Start && a.End > b.End:
		return Contains
	case a.Start < b.Start:
		return Overlaps
	default:
		return OverlappedBy
	}
}

// --- composition ------------------------------------------------------------

// Point-algebra relation masks over {<, =, >}.
type pointRel uint8

const (
	ptLT pointRel = 1 << iota
	ptEQ
	ptGT
	ptAll = ptLT | ptEQ | ptGT
)

// composePoint is transitivity in the point algebra, lifted to masks.
func composePoint(a, b pointRel) pointRel {
	var out pointRel
	for _, x := range [3]pointRel{ptLT, ptEQ, ptGT} {
		if a&x == 0 {
			continue
		}
		for _, y := range [3]pointRel{ptLT, ptEQ, ptGT} {
			if b&y == 0 {
				continue
			}
			out |= composeBasicPoint(x, y)
		}
	}
	return out
}

func composeBasicPoint(x, y pointRel) pointRel {
	switch {
	case x == ptEQ:
		return y
	case y == ptEQ:
		return x
	case x == y: // < then <, or > then >
		return x
	default: // < then >, or > then <
		return ptAll
	}
}

// endpointSig is the signature of a basic Allen relation as the four point
// relations (A⁻B⁻, A⁻B⁺, A⁺B⁻, A⁺B⁺).
type endpointSig struct{ ss, se, es, ee pointRel }

var signatures = map[Rel]endpointSig{
	Before:       {ptLT, ptLT, ptLT, ptLT},
	Meets:        {ptLT, ptLT, ptEQ, ptLT},
	Overlaps:     {ptLT, ptLT, ptGT, ptLT},
	Starts:       {ptEQ, ptLT, ptGT, ptLT},
	During:       {ptGT, ptLT, ptGT, ptLT},
	Finishes:     {ptGT, ptLT, ptGT, ptEQ},
	Equal:        {ptEQ, ptLT, ptGT, ptEQ},
	FinishedBy:   {ptLT, ptLT, ptGT, ptEQ},
	Contains:     {ptLT, ptLT, ptGT, ptGT},
	StartedBy:    {ptEQ, ptLT, ptGT, ptGT},
	OverlappedBy: {ptGT, ptLT, ptGT, ptGT},
	MetBy:        {ptGT, ptEQ, ptGT, ptGT},
	After:        {ptGT, ptGT, ptGT, ptGT},
}

// basicComposition[i][j] is the composition of basic relations 1<<i ∘ 1<<j,
// derived from endpoint signatures at package init. Deriving the table
// (rather than transcribing the published 13×13 matrix) eliminates
// transcription errors; the tests pin the published identities.
var basicComposition [13][13]Rel

func init() {
	basics := Basics()
	for i, r1 := range basics {
		s1 := signatures[r1]
		for j, r2 := range basics {
			s2 := signatures[r2]
			// Derive A-vs-C endpoint masks through B's endpoints,
			// intersecting the two derivation paths (via B⁻ and via
			// B⁺): e.g. A⁻C⁻ ⊆ (A⁻B⁻ ∘ B⁻C⁻) ∩ (A⁻B⁺ ∘ B⁺C⁻).
			ss := composePoint(s1.ss, s2.ss) & composePoint(s1.se, s2.es)
			se := composePoint(s1.ss, s2.se) & composePoint(s1.se, s2.ee)
			es := composePoint(s1.es, s2.ss) & composePoint(s1.ee, s2.es)
			ee := composePoint(s1.es, s2.se) & composePoint(s1.ee, s2.ee)
			var out Rel
			for _, r3 := range basics {
				s3 := signatures[r3]
				if s3.ss&ss != 0 && s3.se&se != 0 && s3.es&es != 0 && s3.ee&ee != 0 {
					out |= r3
				}
			}
			basicComposition[i][j] = out
		}
	}
}

// Compose returns the composition r1 ∘ r2 (unions over the basic table).
func Compose(r1, r2 Rel) Rel {
	var out Rel
	for i, b1 := range Basics() {
		if r1&b1 == 0 {
			continue
		}
		for j, b2 := range Basics() {
			if r2&b2 == 0 {
				continue
			}
			out |= basicComposition[i][j]
			if out == Full {
				return Full
			}
		}
	}
	return out
}
