package temporal

// Per-history scenario matching — the map step of the distributed
// analytics tier. A scenario names a sequence of episode steps (chapter
// labels of the dominant diagnosis) and constrains pairs of them with
// Allen relations; a history matches when its episodes bind to the steps
// and the observed interval network, tightened by the constraints, still
// has a consistent scenario. Matching is per history and returns integer
// tallies, so shards run it server-side over only masked-in histories and
// the partials merge exactly.

import (
	"fmt"
	"strings"

	"pastas/internal/abstraction"
)

// relNames maps every accepted spelling of a basic relation — the short
// Allen mnemonics the String form prints and the long aliases API and
// CLI callers write — to its bit.
var relNames = map[string]Rel{
	"b": Before, "before": Before,
	"m": Meets, "meets": Meets,
	"o": Overlaps, "overlaps": Overlaps,
	"s": Starts, "starts": Starts,
	"d": During, "during": During,
	"f": Finishes, "finishes": Finishes,
	"e": Equal, "equal": Equal, "equals": Equal,
	"fi": FinishedBy, "finished-by": FinishedBy,
	"di": Contains, "contains": Contains,
	"si": StartedBy, "started-by": StartedBy,
	"oi": OverlappedBy, "overlapped-by": OverlappedBy,
	"mi": MetBy, "met-by": MetBy,
	"bi": After, "after": After,
}

// ParseRel parses a relation set written as comma-separated relation
// names — short mnemonics ("b,m") or long aliases ("before,meets") — into
// the union of their bits. The empty string is rejected: an absent
// constraint should be expressed by omitting the relation, not by an
// accidental ⊥ or ⊤.
func ParseRel(s string) (Rel, error) {
	var out Rel
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		if tok == "" {
			return None, fmt.Errorf("temporal: empty relation name in %q", s)
		}
		r, ok := relNames[tok]
		if !ok {
			return None, fmt.Errorf("temporal: unknown relation %q (want e.g. before, meets, overlaps, during)", tok)
		}
		out |= r
	}
	return out, nil
}

// StepRel constrains scenario steps I and J (0-based) with an Allen
// relation set: the episode bound to step I must relate to step J's by
// one of the basic relations in Rel.
type StepRel struct {
	I, J int
	Rel  Rel
}

// Scenario is a temporal pattern over episode steps. Steps are chapter
// labels matched against the chapter of an episode's dominant diagnosis
// (or the raw code value when the chapter is unknown); each step binds to
// the earliest unbound episode with that label, in step order.
type Scenario struct {
	Steps     []string
	Relations []StepRel
}

// Validate rejects scenarios that could not possibly match or would
// index out of range — the loud-error half of the hostile-params
// contract: a malformed scenario never panics mid-map.
func (s Scenario) Validate() error {
	if len(s.Steps) == 0 {
		return fmt.Errorf("temporal: scenario has no steps")
	}
	for i, st := range s.Steps {
		if st == "" {
			return fmt.Errorf("temporal: scenario step %d is empty", i)
		}
	}
	for _, r := range s.Relations {
		if r.I < 0 || r.I >= len(s.Steps) || r.J < 0 || r.J >= len(s.Steps) {
			return fmt.Errorf("temporal: relation references step %d..%d, scenario has %d steps", r.I, r.J, len(s.Steps))
		}
		if r.I == r.J {
			return fmt.Errorf("temporal: relation constrains step %d against itself", r.I)
		}
		if r.Rel == None || r.Rel > Full {
			return fmt.Errorf("temporal: relation %d-%d carries invalid relation set %#x", r.I, r.J, uint16(r.Rel))
		}
	}
	return nil
}

// episodeLabel is the label a scenario step matches against: the chapter
// of the dominant diagnosis, falling back to the raw code value.
func episodeLabel(ep *abstraction.Episode) string {
	if ep.Dominant.IsZero() {
		return ""
	}
	if ch := abstraction.ChapterOf(ep.Dominant); ch != "" {
		return ch
	}
	return ep.Dominant.Value
}

// MatchEpisodes binds the scenario's steps to a history's episodes and
// checks the constraints. bound reports whether every step found an
// episode; matched whether the bound intervals satisfy the relations
// (path consistency plus the complete backtracking check). The binding is
// deterministic — step k takes the earliest episode with its label not
// claimed by steps 0..k-1 — so a distributed match tallies exactly what a
// local pass would.
func (s Scenario) MatchEpisodes(eps []abstraction.Episode) (bound, matched bool) {
	chosen := make([]int, len(s.Steps))
	used := make([]bool, len(eps))
	for k, step := range s.Steps {
		found := -1
		for i := range eps {
			if !used[i] && episodeLabel(&eps[i]) == step {
				found = i
				break
			}
		}
		if found < 0 {
			return false, false
		}
		used[found] = true
		chosen[k] = found
	}
	net := NewNetwork(s.Steps...)
	for i := range s.Steps {
		for j := range s.Steps {
			if i == j {
				continue
			}
			if !net.Constrain(i, j, Between(eps[chosen[i]].Period, eps[chosen[j]].Period)) {
				return true, false
			}
		}
	}
	for _, r := range s.Relations {
		if !net.Constrain(r.I, r.J, r.Rel) {
			return true, false
		}
	}
	return true, net.Satisfiable()
}

// ScenarioTally is the mergeable map-step partial for distributed
// scenario matching: pure integer sums over disjoint history sets.
type ScenarioTally struct {
	// Histories is how many histories were tallied; Bound how many had an
	// episode for every step; Matched how many satisfied the relations.
	Histories int
	Bound     int
	Matched   int
}

// Add folds one history's match outcome into the tally.
func (t *ScenarioTally) Add(bound, matched bool) {
	t.Histories++
	if bound {
		t.Bound++
	}
	if matched {
		t.Matched++
	}
}

// Merge folds another partial into the receiver.
func (t *ScenarioTally) Merge(o *ScenarioTally) {
	if o == nil {
		return
	}
	t.Histories += o.Histories
	t.Bound += o.Bound
	t.Matched += o.Matched
}

// HistoryCount reports how many histories the partial tallied.
func (t *ScenarioTally) HistoryCount() int { return t.Histories }
