package temporal

import (
	"testing"

	"pastas/internal/abstraction"
	"pastas/internal/model"
)

func p(a, b model.Time) model.Period { return model.Period{Start: a, End: b} }

func TestBetweenAllThirteen(t *testing.T) {
	cases := []struct {
		a, b model.Period
		want Rel
	}{
		{p(0, 1), p(2, 3), Before},
		{p(0, 2), p(2, 3), Meets},
		{p(0, 3), p(2, 5), Overlaps},
		{p(0, 2), p(0, 5), Starts},
		{p(2, 3), p(0, 5), During},
		{p(3, 5), p(0, 5), Finishes},
		{p(0, 5), p(0, 5), Equal},
		{p(0, 5), p(3, 5), FinishedBy},
		{p(0, 5), p(2, 3), Contains},
		{p(0, 5), p(0, 2), StartedBy},
		{p(2, 5), p(0, 3), OverlappedBy},
		{p(2, 3), p(0, 2), MetBy},
		{p(2, 3), p(0, 1), After},
	}
	seen := Rel(0)
	for _, c := range cases {
		got := Between(c.a, c.b)
		if got != c.want {
			t.Errorf("Between(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		seen |= got
	}
	if seen != Full {
		t.Error("test cases do not cover all 13 relations")
	}
}

func TestConverse(t *testing.T) {
	for _, b := range Basics() {
		if Converse(Converse(b)) != b {
			t.Errorf("converse not involutive for %v", b)
		}
	}
	if Converse(Before) != After || Converse(Equal) != Equal {
		t.Error("converse values wrong")
	}
	if Converse(Full) != Full {
		t.Error("converse of Full must be Full")
	}
	// Converse must agree with swapped Between.
	a, b := p(0, 3), p(2, 5)
	if Converse(Between(a, b)) != Between(b, a) {
		t.Error("converse disagrees with Between")
	}
}

// TestCompositionAgainstBruteForce verifies the derived 13×13 composition
// table against exhaustive enumeration of concrete configurations over a
// small integer domain (8 endpoint values suffice to realize every ordering
// of six endpoints).
func TestCompositionAgainstBruteForce(t *testing.T) {
	var intervals []model.Period
	const dom = 8
	for s := model.Time(0); s < dom; s++ {
		for e := s + 1; e <= dom; e++ {
			intervals = append(intervals, p(s, e))
		}
	}
	brute := map[[2]Rel]Rel{}
	for _, A := range intervals {
		for _, B := range intervals {
			r1 := Between(A, B)
			for _, C := range intervals {
				r2 := Between(B, C)
				brute[[2]Rel{r1, r2}] |= Between(A, C)
			}
		}
	}
	for _, r1 := range Basics() {
		for _, r2 := range Basics() {
			want := brute[[2]Rel{r1, r2}]
			got := Compose(r1, r2)
			if got != want {
				t.Errorf("Compose(%v,%v) = %v, want %v", r1, r2, got, want)
			}
		}
	}
}

func TestCompositionIdentities(t *testing.T) {
	// Published table entries.
	if Compose(Before, Before) != Before {
		t.Error("b∘b must be b")
	}
	if Compose(Meets, Meets) != Before {
		t.Error("m∘m must be b")
	}
	if Compose(During, During) != During {
		t.Error("d∘d must be d")
	}
	for _, r := range Basics() {
		if Compose(Equal, r) != r || Compose(r, Equal) != r {
			t.Errorf("e is not neutral for %v", r)
		}
	}
	// Converse anti-homomorphism: (r1∘r2)⁻¹ = r2⁻¹∘r1⁻¹.
	for _, r1 := range Basics() {
		for _, r2 := range Basics() {
			if Converse(Compose(r1, r2)) != Compose(Converse(r2), Converse(r1)) {
				t.Fatalf("converse anti-homomorphism fails at %v,%v", r1, r2)
			}
		}
	}
	// o∘o is the published {b,m,o}.
	if got := Compose(Overlaps, Overlaps); got != Before|Meets|Overlaps {
		t.Errorf("o∘o = %v", got)
	}
	// b∘bi is the full relation.
	if Compose(Before, After) != Full {
		t.Error("b∘bi must be ⊤")
	}
}

func TestRelHelpers(t *testing.T) {
	r := Before | Meets
	if !r.Has(Before) || r.Has(After) || r.Count() != 2 {
		t.Error("Rel helpers broken")
	}
	if !Before.IsBasic() || r.IsBasic() || None.IsBasic() {
		t.Error("IsBasic broken")
	}
	if None.String() != "⊥" || Full.String() != "⊤" {
		t.Error("extreme stringers broken")
	}
	if r.String() != "{b,m}" {
		t.Errorf("stringer = %q", r.String())
	}
	if len(Basics()) != 13 {
		t.Error("Basics length wrong")
	}
}

func TestNetworkConsistentChain(t *testing.T) {
	// A meets B, B meets C ⇒ A before C must be inferable.
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Meets)
	net.Constrain(1, 2, Meets)
	if !net.PathConsistency() {
		t.Fatal("consistent network reported inconsistent")
	}
	if got := net.Relation(0, 2); got != Before {
		t.Errorf("inferred A?C = %v, want b", got)
	}
	if net.InferredBasics() != 3 {
		t.Errorf("InferredBasics = %d", net.InferredBasics())
	}
}

func TestNetworkInconsistency(t *testing.T) {
	// A before B, B before C, C before A is a cycle: inconsistent.
	net := NewNetwork("A", "B", "C")
	net.Constrain(0, 1, Before)
	net.Constrain(1, 2, Before)
	net.Constrain(2, 0, Before)
	if net.PathConsistency() {
		t.Error("inconsistent cycle accepted")
	}
}

func TestConstrainDirectConflict(t *testing.T) {
	net := NewNetwork("A", "B")
	if !net.Constrain(0, 1, Before) {
		t.Fatal("first constrain failed")
	}
	if net.Constrain(0, 1, After) {
		t.Error("contradictory constrain must report empty")
	}
}

func TestFromPeriodsAndErase(t *testing.T) {
	names := []string{"admission", "homecare", "rehab"}
	periods := []model.Period{p(0, 10), p(10, 100), p(20, 50)}
	net, err := FromPeriods(names, periods)
	if err != nil {
		t.Fatal(err)
	}
	if net.Relation(0, 1) != Meets {
		t.Errorf("admission vs homecare = %v", net.Relation(0, 1))
	}
	if net.Relation(2, 1) != During {
		t.Errorf("rehab vs homecare = %v", net.Relation(2, 1))
	}

	// Erase admission-rehab and recover it by propagation:
	// admission meets homecare, rehab during homecare gives a disjunction
	// containing before (the true relation).
	truth := net.Relation(0, 2)
	net.Erase(0, 2)
	if net.Relation(0, 2) != Full {
		t.Error("erase did not clear edge")
	}
	if !net.PathConsistency() {
		t.Fatal("network became inconsistent")
	}
	if !net.Relation(0, 2).Has(truth) {
		t.Errorf("propagation lost the true relation: %v missing %v", net.Relation(0, 2), truth)
	}
	if net.Relation(0, 2) == Full {
		t.Error("propagation inferred nothing")
	}

	// Error paths.
	if _, err := FromPeriods([]string{"x"}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromPeriods([]string{"x"}, []model.Period{p(5, 5)}); err == nil {
		t.Error("empty period accepted")
	}
}

func TestFromEpisodes(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: 0})
	d0 := model.Date(2010, 1, 1)
	h.Add(model.Entry{ID: 1, Kind: model.Interval, Start: d0, End: d0.AddDays(10), Type: model.TypeStay, Source: model.SourceHospital})
	h.Add(model.Entry{ID: 2, Kind: model.Point, Start: d0.AddDays(60), End: d0.AddDays(60), Type: model.TypeContact, Source: model.SourceGP})
	h.Sort()
	eps := abstraction.Episodes(h, 14*model.Day)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d", len(eps))
	}
	net := FromEpisodes(eps)
	if net.Size() != 2 {
		t.Fatal("network size wrong")
	}
	if net.Relation(0, 1) != Before {
		t.Errorf("episode relation = %v", net.Relation(0, 1))
	}
	if !net.PathConsistency() {
		t.Error("exact network must be consistent")
	}
}

func TestNetworkClone(t *testing.T) {
	net := NewNetwork("A", "B")
	net.Constrain(0, 1, Before)
	c := net.Clone()
	c.Constrain(0, 1, After) // empties the clone's edge
	if net.Relation(0, 1) != Before {
		t.Error("clone shares storage")
	}
	if c.Name(0) != "A" {
		t.Error("clone lost names")
	}
}
