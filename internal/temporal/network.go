package temporal

import (
	"fmt"

	"pastas/internal/abstraction"
	"pastas/internal/model"
)

// Network is a qualitative constraint network: variables are intervals,
// edges carry Rel constraints. Path consistency tightens every edge through
// every third variable; an empty edge proves inconsistency.
type Network struct {
	names []string
	c     [][]Rel
}

// NewNetwork creates a network with the given interval names and vacuous
// constraints.
func NewNetwork(names ...string) *Network {
	n := len(names)
	net := &Network{names: names, c: make([][]Rel, n)}
	for i := range net.c {
		net.c[i] = make([]Rel, n)
		for j := range net.c[i] {
			if i == j {
				net.c[i][j] = Equal
			} else {
				net.c[i][j] = Full
			}
		}
	}
	return net
}

// Size returns the number of intervals.
func (net *Network) Size() int { return len(net.names) }

// Name returns the i-th interval's name.
func (net *Network) Name(i int) string { return net.names[i] }

// Constrain intersects the (i,j) edge with r (and (j,i) with its converse).
// It returns false if the edge becomes empty (direct inconsistency).
func (net *Network) Constrain(i, j int, r Rel) bool {
	net.c[i][j] &= r
	net.c[j][i] &= Converse(r)
	return net.c[i][j] != None
}

// Relation returns the current constraint from i to j.
func (net *Network) Relation(i, j int) Rel { return net.c[i][j] }

// Clone deep-copies the network.
func (net *Network) Clone() *Network {
	out := &Network{names: net.names, c: make([][]Rel, len(net.c))}
	for i := range net.c {
		out.c[i] = make([]Rel, len(net.c[i]))
		copy(out.c[i], net.c[i])
	}
	return out
}

// PathConsistency runs PC-1 to fixpoint. It returns false when the network
// is inconsistent (some edge became empty). A true result means
// path-consistent (for Allen's algebra this does not guarantee global
// consistency in general, but it is the standard propagation step and
// exact for the pointizable fragment the workbench generates).
func (net *Network) PathConsistency() bool {
	n := len(net.c)
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					tight := net.c[i][j] & Compose(net.c[i][k], net.c[k][j])
					if tight != net.c[i][j] {
						net.c[i][j] = tight
						net.c[j][i] = Converse(tight)
						changed = true
						if tight == None {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// InferredBasics counts edges that path consistency reduced to a single
// basic relation (excluding the diagonal), a measure of inferential yield.
func (net *Network) InferredBasics() int {
	n := 0
	for i := range net.c {
		for j := range net.c[i] {
			if i < j && net.c[i][j].IsBasic() {
				n++
			}
		}
	}
	return n
}

// FromEpisodes builds the fully-specified network of a history's episodes:
// every pairwise edge carries the exact basic relation observed. This is
// the "ground truth" network; reasoning experiments erase edges and measure
// what propagation recovers.
func FromEpisodes(eps []abstraction.Episode) *Network {
	names := make([]string, len(eps))
	for i, ep := range eps {
		label := ep.Dominant.Value
		if label == "" {
			label = "episode"
		}
		names[i] = fmt.Sprintf("%s@%s", label, ep.Period.Start)
	}
	net := NewNetwork(names...)
	for i := range eps {
		for j := range eps {
			if i == j {
				continue
			}
			net.Constrain(i, j, Between(eps[i].Period, eps[j].Period))
		}
	}
	return net
}

// FromPeriods builds the exact network over named concrete periods.
func FromPeriods(names []string, periods []model.Period) (*Network, error) {
	if len(names) != len(periods) {
		return nil, fmt.Errorf("temporal: %d names for %d periods", len(names), len(periods))
	}
	for i, p := range periods {
		if p.Empty() {
			return nil, fmt.Errorf("temporal: period %d (%s) is empty", i, names[i])
		}
	}
	net := NewNetwork(names...)
	for i := range periods {
		for j := range periods {
			if i != j {
				net.Constrain(i, j, Between(periods[i], periods[j]))
			}
		}
	}
	return net, nil
}

// Erase replaces the (i,j) edge (and converse) with Full — "forget" what we
// knew, for reconstruction experiments.
func (net *Network) Erase(i, j int) {
	if i == j {
		return
	}
	net.c[i][j] = Full
	net.c[j][i] = Full
}
