package terminology

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestTablesLoad(t *testing.T) {
	if n := ForICPC2().Len(); n < 150 {
		t.Errorf("ICPC2 table suspiciously small: %d", n)
	}
	if n := ForICD10().Len(); n < 100 {
		t.Errorf("ICD10 table suspiciously small: %d", n)
	}
	if n := ForATC().Len(); n < 50 {
		t.Errorf("ATC table suspiciously small: %d", n)
	}
}

func TestICPC2Chapters(t *testing.T) {
	cs := ForICPC2()
	chapters := cs.AtLevel(LevelChapter)
	if len(chapters) != 17 {
		t.Fatalf("ICPC-2 has %d chapters, want 17", len(chapters))
	}
	for _, want := range []string{"A", "B", "D", "F", "H", "K", "L", "N", "P", "R", "S", "T", "U", "W", "X", "Y", "Z"} {
		if !cs.Known(want) {
			t.Errorf("missing chapter %s", want)
		}
	}
	// No C, E, G, I etc. chapters in ICPC-2.
	for _, absent := range []string{"C", "E", "G", "I", "J", "M", "O", "Q", "V"} {
		if cs.Known(absent) {
			t.Errorf("ICPC-2 must not have chapter %s", absent)
		}
	}
}

func TestHierarchyNavigation(t *testing.T) {
	cs := ForICPC2()
	if got := cs.Parent("T90"); got != "T" {
		t.Errorf("Parent(T90) = %q", got)
	}
	if got := cs.Chapter("T90"); got != "T" {
		t.Errorf("Chapter(T90) = %q", got)
	}
	if !cs.IsA("T90", "T") || !cs.IsA("T90", "T90") {
		t.Error("IsA broken for T90")
	}
	if cs.IsA("T90", "K") {
		t.Error("T90 must not be cardiovascular")
	}
	if cs.IsA("NOPE", "NOPE") {
		t.Error("unknown codes must not IsA themselves")
	}
	kids := cs.Children("T")
	if len(kids) == 0 {
		t.Fatal("chapter T has no children")
	}
	found := false
	for _, k := range kids {
		if k == "T90" {
			found = true
		}
	}
	if !found {
		t.Error("T90 not among children of T")
	}
}

func TestICD10Hierarchy(t *testing.T) {
	cs := ForICD10()
	if got := cs.Chapter("E11.9"); got != "IV" {
		t.Errorf("Chapter(E11.9) = %q, want IV", got)
	}
	anc := cs.Ancestors("E11.9")
	want := []string{"E11", "E10-E14", "IV"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(E11.9) = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("Ancestors[%d] = %q, want %q", i, anc[i], want[i])
		}
	}
	if !cs.IsA("E11.9", "E10-E14") {
		t.Error("E11.9 should be a diabetes-block code")
	}
}

func TestATCHierarchy(t *testing.T) {
	cs := ForATC()
	if got := cs.Chapter("A10BA02"); got != "A" {
		t.Errorf("Chapter(A10BA02) = %q", got)
	}
	if !cs.IsA("A10BA02", "A10") {
		t.Error("metformin must be a diabetes drug")
	}
	if cs.IsA("C07AB02", "A10") {
		t.Error("metoprolol is not a diabetes drug")
	}
}

func TestExpandEyeOrEar(t *testing.T) {
	// The paper's canonical example: F.*|H.* = eye or ear diagnoses.
	cs := ForICPC2()
	codes, err := cs.Expand(`F.*|H.*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) == 0 {
		t.Fatal("no matches for F.*|H.*")
	}
	for _, c := range codes {
		if c[0] != 'F' && c[0] != 'H' {
			t.Errorf("Expand leaked %q", c)
		}
	}
	// Must include both chapters' content.
	joined := strings.Join(codes, ",")
	for _, want := range []string{"F92", "H71", "F", "H"} {
		if !strings.Contains(","+joined+",", ","+want+",") {
			t.Errorf("Expand missing %s", want)
		}
	}
}

func TestExpandAnchored(t *testing.T) {
	cs := ForICPC2()
	// "T9" without a wildcard must not match T90 (whole-code anchoring).
	codes, err := cs.Expand(`T9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 0 {
		t.Errorf("unanchored match leaked: %v", codes)
	}
	codes, err = cs.Expand(`T9.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range codes {
		if !strings.HasPrefix(c, "T9") || len(c) != 3 {
			t.Errorf("T9. matched %q", c)
		}
	}
}

func TestExpandBadPattern(t *testing.T) {
	if _, err := ForICPC2().Expand(`(`); err == nil {
		t.Error("want error for bad pattern")
	}
}

func TestCompileCodePatternCache(t *testing.T) {
	a, err := CompileCodePattern(`K8[67]`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCodePattern(`K8[67]`)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache did not return the same compiled pattern")
	}
	if !a.MatchString("K86") || a.MatchString("K86X") || a.MatchString("XK86") {
		t.Error("anchoring broken")
	}
}

func TestDisjunction(t *testing.T) {
	pat := Disjunction(`F.*`, `H.*`, `T90`)
	re, err := CompileCodePattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	for _, yes := range []string{"F92", "H03", "T90"} {
		if !re.MatchString(yes) {
			t.Errorf("disjunction should match %s", yes)
		}
	}
	if re.MatchString("T89") {
		t.Error("disjunction must not match T89")
	}
}

func TestMappingRoundTrip(t *testing.T) {
	// Every mapped ICD target must exist in the ICD table, and inverse
	// lookups must return the original.
	icd := ForICD10()
	icpc := ForICPC2()
	for from, tos := range icpcToICD {
		if !icpc.Known(from) {
			t.Errorf("mapping source %s not in ICPC table", from)
		}
		for _, to := range tos {
			if !icd.Known(to) {
				t.Errorf("mapping target %s not in ICD table", to)
			}
			back := ICDToICPC(to)
			found := false
			for _, b := range back {
				if b == from {
					found = true
				}
			}
			if !found {
				t.Errorf("inverse mapping of %s missing %s", to, from)
			}
		}
	}
}

func TestMappingSubcodeFallback(t *testing.T) {
	got := ICDToICPC("E11.9")
	if len(got) != 1 || got[0] != "T90" {
		t.Errorf("ICDToICPC(E11.9) = %v, want [T90]", got)
	}
	if ICDToICPC("Q99") != nil {
		t.Error("unmapped code must return nil")
	}
}

func TestSameCondition(t *testing.T) {
	cases := []struct {
		sysA, codeA, sysB, codeB string
		want                     bool
	}{
		{"ICPC2", "T90", "ICD10", "E11", true},
		{"ICPC2", "T90", "ICD10", "E11.9", true},
		{"ICPC2", "T90", "ICD10", "I10", false},
		{"ICPC2", "K90", "ICD10", "I63", true},
		{"ICPC2", "K90", "ICD10", "I64", true},
		{"ICPC2", "T90", "ICPC2", "T90", true},
		{"ICPC2", "T90", "ICPC2", "T", true}, // hierarchy subsumption
		{"ICPC2", "T90", "ICPC2", "K86", false},
		{"ICD10", "E11.9", "ICD10", "E11", true},
	}
	for _, c := range cases {
		if got := SameCondition(c.sysA, c.codeA, c.sysB, c.codeB); got != c.want {
			t.Errorf("SameCondition(%s:%s, %s:%s) = %v, want %v",
				c.sysA, c.codeA, c.sysB, c.codeB, got, c.want)
		}
	}
}

func TestCanonicalICPC(t *testing.T) {
	if got := CanonicalICPC("ICD10", "E11.9"); got != "T90" {
		t.Errorf("CanonicalICPC(E11.9) = %q", got)
	}
	if got := CanonicalICPC("ICPC2", "K86"); got != "K86" {
		t.Errorf("CanonicalICPC(K86) = %q", got)
	}
	if got := CanonicalICPC("ICD10", "Q99"); got != "" {
		t.Errorf("CanonicalICPC(unmapped) = %q", got)
	}
}

func TestLeavesAndLevels(t *testing.T) {
	cs := ForICPC2()
	leaves := cs.Leaves()
	for _, l := range leaves {
		if len(cs.Children(l)) != 0 {
			t.Errorf("leaf %s has children", l)
		}
	}
	if len(leaves)+len(cs.AtLevel(LevelChapter)) != cs.Len() {
		t.Error("ICPC-2: every non-chapter should be a leaf")
	}
}

func TestExpandMatchesManualRegexp(t *testing.T) {
	// Property: Expand agrees with a manually anchored regexp.
	cs := ForICPC2()
	patterns := []string{`K.*`, `T90|T89`, `[FH]..`, `.9.`}
	for _, p := range patterns {
		re := regexp.MustCompile(`\A(?:` + p + `)\z`)
		want := map[string]bool{}
		for _, c := range cs.All() {
			if re.MatchString(c) {
				want[c] = true
			}
		}
		got, err := cs.Expand(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("Expand(%q) = %d codes, want %d", p, len(got), len(want))
		}
		for _, c := range got {
			if !want[c] {
				t.Errorf("Expand(%q) leaked %s", p, c)
			}
		}
	}
}

func TestIsAReflexiveForKnown(t *testing.T) {
	cs := ForICPC2()
	all := cs.All()
	f := func(i uint16) bool {
		c := all[int(i)%len(all)]
		return cs.IsA(c, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsATransitivity(t *testing.T) {
	// For ICD-10: code → block → chapter chains must be transitive.
	cs := ForICD10()
	for _, code := range cs.All() {
		for _, anc := range cs.Ancestors(code) {
			if !cs.IsA(code, anc) {
				t.Errorf("IsA(%s, %s) = false for ancestor", code, anc)
			}
		}
	}
}

func TestSystemsRegistry(t *testing.T) {
	for _, sys := range Systems() {
		if For(sys) == nil {
			t.Errorf("For(%s) = nil", sys)
		}
	}
	if For("BOGUS") != nil {
		t.Error("unknown system must return nil")
	}
}

func TestSortCodes(t *testing.T) {
	got := SortCodes([]string{"T90", "A04", "K86"})
	if got[0] != "A04" || got[2] != "T90" {
		t.Errorf("SortCodes = %v", got)
	}
}
