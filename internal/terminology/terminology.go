// Package terminology embeds the clinical code systems the workbench reasons
// over: ICPC-2 (primary care diagnoses), ICD-10 (specialist diagnoses) and
// ATC (medication classes), each with its hierarchy, plus the ICPC-2↔ICD-10
// cross-mapping used when aggregating primary- and specialist-care records.
//
// The paper's data is "coded in a standard way ... mainly using ICPC-2
// and/or ICD-10", and its regular-expression queries address "any branch of
// the hierarchies by listing the first few letters or digits and appending a
// wildcard" (e.g. F.*|H.* for eye-or-ear). The tables here are curated
// subsets of the real classifications: every chapter is present, and the
// code-level subset covers the conditions the synthetic registry generates.
package terminology

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// System names a code system.
type System string

const (
	ICPC2 System = "ICPC2"
	ICD10 System = "ICD10"
	ATC   System = "ATC"
)

// Level describes where in its hierarchy a concept sits.
type Level uint8

const (
	LevelRoot Level = iota
	LevelChapter
	LevelBlock
	LevelCode
	LevelSubCode
)

func (l Level) String() string {
	switch l {
	case LevelRoot:
		return "root"
	case LevelChapter:
		return "chapter"
	case LevelBlock:
		return "block"
	case LevelCode:
		return "code"
	case LevelSubCode:
		return "subcode"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Concept is one coded entity in a system.
type Concept struct {
	System System
	Code   string
	Title  string
	Parent string // parent code, "" for chapters
	Level  Level
}

// CodeSystem is an immutable hierarchy of concepts.
type CodeSystem struct {
	System   System
	concepts map[string]*Concept
	children map[string][]string
	ordered  []string // all codes in table order
}

func newCodeSystem(sys System, concepts []Concept) *CodeSystem {
	cs := &CodeSystem{
		System:   sys,
		concepts: make(map[string]*Concept, len(concepts)),
		children: make(map[string][]string),
	}
	for i := range concepts {
		c := &concepts[i]
		if _, dup := cs.concepts[c.Code]; dup {
			panic(fmt.Sprintf("terminology: duplicate %s code %s", sys, c.Code))
		}
		cs.concepts[c.Code] = c
		cs.ordered = append(cs.ordered, c.Code)
		cs.children[c.Parent] = append(cs.children[c.Parent], c.Code)
	}
	// Validate parent links.
	for _, c := range cs.concepts {
		if c.Parent == "" {
			continue
		}
		if _, ok := cs.concepts[c.Parent]; !ok {
			panic(fmt.Sprintf("terminology: %s code %s has unknown parent %s", sys, c.Code, c.Parent))
		}
	}
	return cs
}

// Lookup returns the concept for a code, or nil if unknown.
func (cs *CodeSystem) Lookup(code string) *Concept { return cs.concepts[code] }

// Known reports whether the code exists in the system.
func (cs *CodeSystem) Known(code string) bool { return cs.concepts[code] != nil }

// Title returns the concept title, or "" for unknown codes.
func (cs *CodeSystem) Title(code string) string {
	if c := cs.concepts[code]; c != nil {
		return c.Title
	}
	return ""
}

// Parent returns the parent code, or "" at the top.
func (cs *CodeSystem) Parent(code string) string {
	if c := cs.concepts[code]; c != nil {
		return c.Parent
	}
	return ""
}

// Children returns the direct children of a code, in table order. Pass ""
// for the chapters.
func (cs *CodeSystem) Children(code string) []string {
	kids := cs.children[code]
	out := make([]string, len(kids))
	copy(out, kids)
	return out
}

// Ancestors returns the chain of parents from the code's parent up to the
// chapter, nearest first.
func (cs *CodeSystem) Ancestors(code string) []string {
	var out []string
	for c := cs.concepts[code]; c != nil && c.Parent != ""; c = cs.concepts[c.Parent] {
		out = append(out, c.Parent)
	}
	return out
}

// IsA reports whether code equals ancestor or descends from it.
func (cs *CodeSystem) IsA(code, ancestor string) bool {
	if code == ancestor {
		return cs.Known(code)
	}
	for c := cs.concepts[code]; c != nil && c.Parent != ""; c = cs.concepts[c.Parent] {
		if c.Parent == ancestor {
			return true
		}
	}
	return false
}

// Chapter returns the chapter-level ancestor of a code (or the code itself
// if it is a chapter), "" if unknown.
func (cs *CodeSystem) Chapter(code string) string {
	c := cs.concepts[code]
	for c != nil {
		if c.Level == LevelChapter {
			return c.Code
		}
		c = cs.concepts[c.Parent]
	}
	return ""
}

// All returns every code in table order.
func (cs *CodeSystem) All() []string {
	out := make([]string, len(cs.ordered))
	copy(out, cs.ordered)
	return out
}

// Leaves returns codes with no children, in table order.
func (cs *CodeSystem) Leaves() []string {
	var out []string
	for _, code := range cs.ordered {
		if len(cs.children[code]) == 0 {
			out = append(out, code)
		}
	}
	return out
}

// AtLevel returns all codes at the given level, in table order.
func (cs *CodeSystem) AtLevel(l Level) []string {
	var out []string
	for _, code := range cs.ordered {
		if cs.concepts[code].Level == l {
			out = append(out, code)
		}
	}
	return out
}

// Expand returns the codes matching an anchored regular expression over the
// code strings — the paper's querying device ("F.*|H.*" addresses the eye
// and ear chapters). The pattern is implicitly anchored to the whole code.
func (cs *CodeSystem) Expand(pattern string) ([]string, error) {
	re, err := CompileCodePattern(pattern)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, code := range cs.ordered {
		if re.MatchString(code) {
			out = append(out, code)
		}
	}
	return out, nil
}

// Len returns the number of concepts.
func (cs *CodeSystem) Len() int { return len(cs.ordered) }

// patternCache memoizes compiled anchored code patterns; the workbench
// evaluates the same user-entered pattern against hundreds of thousands of
// entries, so compilation must happen once.
var patternCache sync.Map // string -> *regexp.Regexp

// CompileCodePattern compiles a code regular expression anchored to match
// the entire code, with a process-wide cache.
func CompileCodePattern(pattern string) (*regexp.Regexp, error) {
	if v, ok := patternCache.Load(pattern); ok {
		return v.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(`\A(?:` + pattern + `)\z`)
	if err != nil {
		return nil, fmt.Errorf("terminology: pattern %q: %w", pattern, err)
	}
	patternCache.Store(pattern, re)
	return re, nil
}

// CompileCodePatternUncached compiles without consulting the cache; used by
// the ablation benchmark that quantifies what the cache buys.
func CompileCodePatternUncached(pattern string) (*regexp.Regexp, error) {
	re, err := regexp.Compile(`\A(?:` + pattern + `)\z`)
	if err != nil {
		return nil, fmt.Errorf("terminology: pattern %q: %w", pattern, err)
	}
	return re, nil
}

// Disjunction builds the regex pattern matching any of the given codes or
// prefixes-with-wildcards, the "disjunctive construct" of the paper.
func Disjunction(patterns ...string) string {
	return strings.Join(patterns, "|")
}

var (
	onceICPC2 sync.Once
	onceICD10 sync.Once
	onceATC   sync.Once
	csICPC2   *CodeSystem
	csICD10   *CodeSystem
	csATC     *CodeSystem
)

// ForICPC2 returns the ICPC-2 code system.
func ForICPC2() *CodeSystem {
	onceICPC2.Do(func() { csICPC2 = newCodeSystem(ICPC2, icpc2Concepts()) })
	return csICPC2
}

// ForICD10 returns the ICD-10 code system.
func ForICD10() *CodeSystem {
	onceICD10.Do(func() { csICD10 = newCodeSystem(ICD10, icd10Concepts()) })
	return csICD10
}

// ForATC returns the ATC code system.
func ForATC() *CodeSystem {
	onceATC.Do(func() { csATC = newCodeSystem(ATC, atcConcepts()) })
	return csATC
}

// For returns the code system by name, or nil.
func For(sys System) *CodeSystem {
	switch sys {
	case ICPC2:
		return ForICPC2()
	case ICD10:
		return ForICD10()
	case ATC:
		return ForATC()
	default:
		return nil
	}
}

// Systems lists the available systems.
func Systems() []System { return []System{ICPC2, ICD10, ATC} }

// SortCodes sorts codes lexicographically in place and returns them;
// convenient for deterministic output in reports.
func SortCodes(codes []string) []string {
	sort.Strings(codes)
	return codes
}
