package terminology

import "strings"

// The ICPC-2 ↔ ICD-10 cross-mapping. Primary-care records arrive coded in
// ICPC-2 and specialist records in ICD-10; the integration layer uses this
// mapping to recognize that a GP's T90 and a hospital's E11.9 describe the
// same condition when aggregating a trajectory.
//
// The table is the diagnosis-level subset of the official ICPC-2→ICD-10
// conversion covering the embedded code tables. It is many-to-many: one
// ICPC code can map to several ICD categories (K90 → I61/I63/I64) and
// vice versa.
var icpcToICD = map[string][]string{
	"T89": {"E10"},
	"T90": {"E11"},
	"T85": {"E05"},
	"T86": {"E03"},
	"T93": {"E78"},
	"T82": {"E66"},
	"K74": {"I20"},
	"K75": {"I21"},
	"K76": {"I25"},
	"K77": {"I50"},
	"K78": {"I48"},
	"K86": {"I10"},
	"K87": {"I11"},
	"K89": {"G45"},
	"K90": {"I61", "I63", "I64"},
	"K92": {"I70"},
	"K95": {"I83"},
	"R74": {"J06"},
	"R80": {"J10"},
	"R81": {"J18"},
	"R95": {"J44"},
	"R96": {"J45"},
	"N86": {"G35"},
	"N87": {"G20"},
	"N88": {"G40"},
	"N89": {"G43"},
	"P70": {"F03"},
	"P74": {"F41"},
	"P76": {"F32"},
	"L72": {"S52"},
	"L73": {"S82"},
	"L75": {"S72"},
	"L84": {"M54"},
	"L89": {"M16"},
	"L90": {"M17"},
	"L95": {"M81"},
	"U71": {"N39"},
	"Y85": {"N40"},
	"Y77": {"C61"},
	"X76": {"C50"},
	"F92": {"H25"},
	"F93": {"H40"},
	"H71": {"H66"},
	"D73": {"A09"},
	"D85": {"K25"},
	"D86": {"K25"},
	"D93": {"K58"},
	"B80": {"D50"},
	"S87": {"L20"},
	"S91": {"L40"},
	"A77": {"B34"},
	"A04": {"R53"},
	"A11": {"R07"},
}

var icdToICPC = func() map[string][]string {
	inv := make(map[string][]string, len(icpcToICD))
	for icpc, icds := range icpcToICD {
		for _, icd := range icds {
			inv[icd] = append(inv[icd], icpc)
		}
	}
	return inv
}()

// ICPCToICD maps an ICPC-2 code to its ICD-10 categories; nil if unmapped.
func ICPCToICD(code string) []string {
	out := icpcToICD[code]
	if out == nil {
		return nil
	}
	cp := make([]string, len(out))
	copy(cp, out)
	return cp
}

// ICDToICPC maps an ICD-10 code to its ICPC-2 codes. Subcategory codes
// (E11.9) fall back to their category (E11); nil if unmapped.
func ICDToICPC(code string) []string {
	out := icdToICPC[code]
	if out == nil {
		if dot := strings.IndexByte(code, '.'); dot > 0 {
			out = icdToICPC[code[:dot]]
		}
	}
	if out == nil {
		return nil
	}
	cp := make([]string, len(out))
	copy(cp, out)
	return cp
}

// SameCondition reports whether two codes — possibly from different
// systems — plausibly describe the same condition: equal codes, one being
// an ancestor of the other within a system, or linked by the cross-mapping.
func SameCondition(sysA, codeA, sysB, codeB string) bool {
	if sysA == sysB {
		cs := For(System(sysA))
		if cs == nil {
			return codeA == codeB
		}
		return cs.IsA(codeA, codeB) || cs.IsA(codeB, codeA)
	}
	// Cross-system: normalize both to ICPC-2 space.
	aICPC := toICPCSet(sysA, codeA)
	bICPC := toICPCSet(sysB, codeB)
	for c := range aICPC {
		if bICPC[c] {
			return true
		}
	}
	return false
}

func toICPCSet(sys, code string) map[string]bool {
	set := make(map[string]bool)
	switch System(sys) {
	case ICPC2:
		set[code] = true
	case ICD10:
		for _, c := range ICDToICPC(code) {
			set[c] = true
		}
	}
	return set
}

// CanonicalICPC returns the preferred ICPC-2 code for a coded entry from
// any system ("" when no mapping exists). Integration uses it to give every
// diagnosis a primary-care-comparable code for cohort queries.
func CanonicalICPC(sys, code string) string {
	switch System(sys) {
	case ICPC2:
		return code
	case ICD10:
		if m := ICDToICPC(code); len(m) > 0 {
			return m[0]
		}
	}
	return ""
}
