package terminology

// atcConcepts returns the embedded ATC table: all 14 anatomical main groups
// and the therapeutic/pharmacological/chemical subset the synthetic
// prescriptions draw from. Fig. 1's "colors in the visualization show
// different classes of medication" — the classes are ATC level-2 groups.
func atcConcepts() []Concept {
	level1 := []struct{ code, title string }{
		{"A", "Alimentary tract and metabolism"},
		{"B", "Blood and blood forming organs"},
		{"C", "Cardiovascular system"},
		{"D", "Dermatologicals"},
		{"G", "Genito-urinary system and sex hormones"},
		{"H", "Systemic hormonal preparations"},
		{"J", "Antiinfectives for systemic use"},
		{"L", "Antineoplastic and immunomodulating agents"},
		{"M", "Musculo-skeletal system"},
		{"N", "Nervous system"},
		{"P", "Antiparasitic products"},
		{"R", "Respiratory system"},
		{"S", "Sensory organs"},
		{"V", "Various"},
	}
	level2 := []struct{ code, title string }{
		{"A02", "Drugs for acid related disorders"},
		{"A10", "Drugs used in diabetes"},
		{"B01", "Antithrombotic agents"},
		{"B03", "Antianemic preparations"},
		{"C01", "Cardiac therapy"},
		{"C03", "Diuretics"},
		{"C07", "Beta blocking agents"},
		{"C08", "Calcium channel blockers"},
		{"C09", "Agents acting on the renin-angiotensin system"},
		{"C10", "Lipid modifying agents"},
		{"H03", "Thyroid therapy"},
		{"J01", "Antibacterials for systemic use"},
		{"M01", "Antiinflammatory and antirheumatic products"},
		{"M05", "Drugs for treatment of bone diseases"},
		{"N02", "Analgesics"},
		{"N05", "Psycholeptics"},
		{"N06", "Psychoanaleptics"},
		{"R03", "Drugs for obstructive airway diseases"},
	}
	level3 := []struct{ code, title string }{
		{"A02B", "Drugs for peptic ulcer and GORD"},
		{"A10A", "Insulins and analogues"},
		{"A10B", "Blood glucose lowering drugs, excl. insulins"},
		{"B01A", "Antithrombotic agents"},
		{"B03A", "Iron preparations"},
		{"C01D", "Vasodilators used in cardiac diseases"},
		{"C03A", "Low-ceiling diuretics, thiazides"},
		{"C03C", "High-ceiling diuretics"},
		{"C07A", "Beta blocking agents"},
		{"C08C", "Selective calcium channel blockers, vascular"},
		{"C09A", "ACE inhibitors, plain"},
		{"C09C", "Angiotensin II receptor blockers, plain"},
		{"C10A", "Lipid modifying agents, plain"},
		{"H03A", "Thyroid preparations"},
		{"J01C", "Beta-lactam antibacterials, penicillins"},
		{"M01A", "Antiinflammatory/antirheumatic products, non-steroids"},
		{"M05B", "Drugs affecting bone structure and mineralization"},
		{"N02B", "Other analgesics and antipyretics"},
		{"N05C", "Hypnotics and sedatives"},
		{"N06A", "Antidepressants"},
		{"R03A", "Adrenergics, inhalants"},
		{"R03B", "Other drugs for obstructive airway diseases, inhalants"},
	}
	level4 := []struct{ code, title string }{
		{"A10BA", "Biguanides"},
		{"C07AB", "Beta blocking agents, selective"},
		{"C09AA", "ACE inhibitors, plain"},
		{"C10AA", "HMG CoA reductase inhibitors"},
		{"N06AB", "Selective serotonin reuptake inhibitors"},
		{"R03AC", "Selective beta-2-adrenoreceptor agonists"},
	}
	level5 := []struct{ code, title string }{
		{"A10BA02", "Metformin"},
		{"C07AB02", "Metoprolol"},
		{"C09AA05", "Ramipril"},
		{"C10AA01", "Simvastatin"},
		{"N06AB04", "Citalopram"},
		{"R03AC02", "Salbutamol"},
	}

	out := make([]Concept, 0, len(level1)+len(level2)+len(level3)+len(level4)+len(level5))
	for _, c := range level1 {
		out = append(out, Concept{System: ATC, Code: c.code, Title: c.title, Level: LevelChapter})
	}
	for _, c := range level2 {
		out = append(out, Concept{System: ATC, Code: c.code, Title: c.title, Parent: c.code[:1], Level: LevelBlock})
	}
	for _, c := range level3 {
		out = append(out, Concept{System: ATC, Code: c.code, Title: c.title, Parent: c.code[:3], Level: LevelCode})
	}
	for _, c := range level4 {
		out = append(out, Concept{System: ATC, Code: c.code, Title: c.title, Parent: c.code[:4], Level: LevelSubCode})
	}
	for _, c := range level5 {
		out = append(out, Concept{System: ATC, Code: c.code, Title: c.title, Parent: c.code[:5], Level: LevelSubCode})
	}
	return out
}
