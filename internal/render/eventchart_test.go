package render

import (
	"strings"
	"testing"
	"time"

	"pastas/internal/model"
	"pastas/internal/query"
)

func chartHistory(id model.PatientID, days []int, codes []string) *model.History {
	h := model.NewHistory(model.Patient{ID: id, Birth: model.Date(1950, time.June, 1)})
	for i, d := range days {
		h.Add(model.Entry{
			ID: uint64(id)*100 + uint64(i), Kind: model.Point,
			Start:  model.Date(2010, time.January, 1).AddDays(d),
			End:    model.Date(2010, time.January, 1).AddDays(d),
			Source: model.SourceGP, Type: model.TypeDiagnosis,
			Code: model.Code{System: "ICPC2", Value: codes[i]},
		})
	}
	h.Sort()
	return h
}

func heartSeq() query.Sequence {
	return query.Sequence{Steps: []query.Step{
		{Pred: query.MustCode("", "K75")},
		{Pred: query.MustCode("", "K77"), MaxGap: query.Days(365)},
	}}
}

func TestEventChartHits(t *testing.T) {
	col := model.MustCollection(
		chartHistory(1, []int{0, 30, 60}, []string{"K75", "A04", "K77"}), // one hit, one unmatched inside
		chartHistory(2, []int{10, 20}, []string{"K75", "K77"}),           // one hit, nothing else
		chartHistory(3, []int{5}, []string{"R74"}),                       // no hit
	)
	svg := EventChart(col, heartSeq(), EventChartOptions{Tooltips: true})
	if !strings.Contains(svg, "event chart: 2 hits") {
		t.Errorf("hit count wrong in: %s", firstLine(svg, "event chart"))
	}
	// The unmatched A04 inside patient 1's span is counted, not drawn.
	if !strings.Contains(svg, ">+1</text>") {
		t.Error("unmatched-event count missing")
	}
	if !strings.Contains(svg, ">+0</text>") {
		t.Error("zero-count annotation missing")
	}
	// Matched entries drawn as dots, two per hit.
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("dots = %d, want 4", got)
	}
	// Relative axis labels.
	if !strings.Contains(svg, "+0d") {
		t.Error("relative axis missing")
	}
	if !strings.Contains(svg, "<title>") {
		t.Error("tooltips missing")
	}
}

func firstLine(s, containing string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, containing) {
			return l
		}
	}
	return ""
}

func TestEventChartMultipleHitsPerHistory(t *testing.T) {
	col := model.MustCollection(
		chartHistory(1, []int{0, 30, 200, 230}, []string{"K75", "K77", "K75", "K77"}),
	)
	svg := EventChart(col, heartSeq(), EventChartOptions{})
	if !strings.Contains(svg, "event chart: 2 hits") {
		t.Error("per-history multiple hits not found")
	}
	capped := EventChart(col, heartSeq(), EventChartOptions{MaxLines: 1})
	if strings.Count(capped, "<circle") != 2 {
		t.Error("MaxLines not enforced")
	}
}

func TestEventChartEmpty(t *testing.T) {
	col := model.MustCollection(chartHistory(1, []int{0}, []string{"R74"}))
	svg := EventChart(col, heartSeq(), EventChartOptions{})
	if !strings.Contains(svg, "event chart: 0 hits") {
		t.Error("empty chart mislabeled")
	}
	if !strings.Contains(svg, "</svg>") {
		t.Error("malformed empty chart")
	}
}

func TestDiffAndHighlights(t *testing.T) {
	before := model.MustCollection(
		chartHistory(1, []int{0}, []string{"T90"}),
		chartHistory(2, []int{0, 10}, []string{"T90", "K86"}),
		chartHistory(3, []int{0}, []string{"R74"}),
	)
	after := model.MustCollection(
		chartHistory(1, []int{0}, []string{"T90"}),           // same
		chartHistory(2, []int{0}, []string{"T90"}),           // changed (fewer entries)
		chartHistory(4, []int{0, 5}, []string{"K75", "K77"}), // added
	)
	svg, sum := TimelineDiff(before, after, TimelineOptions{})
	if sum.Added != 1 || sum.Removed != 1 || sum.Changed != 1 || sum.Same != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(svg, ColorAdded) || !strings.Contains(svg, ColorChanged) {
		t.Error("highlight markers missing")
	}
	if !strings.Contains(svg, "1 added, 1 removed, 1 changed, 1 unchanged") {
		t.Errorf("banner missing: %s", firstLine(svg, "changes:"))
	}
}

func TestHighlightsOnlyMarkListed(t *testing.T) {
	col := model.MustCollection(
		chartHistory(1, []int{0}, []string{"T90"}),
		chartHistory(2, []int{0}, []string{"K86"}),
	)
	svg := Timeline(col, TimelineOptions{
		Highlights: map[model.PatientID]string{2: ColorAdded},
	})
	if got := strings.Count(svg, ColorAdded); got != 1 {
		t.Errorf("highlight count = %d", got)
	}
}

func TestOpenIntervalFadeRendered(t *testing.T) {
	h := model.NewHistory(model.Patient{ID: 1, Birth: model.Date(1940, time.June, 1)})
	h.Add(model.Entry{
		ID: 1, Kind: model.Interval,
		Start: model.Date(2010, time.March, 1), End: model.Date(2011, time.December, 31),
		Source: model.SourceMunicipal, Type: model.TypeService,
		Text: "homecare", OpenEnd: true,
	})
	h.Sort()
	col := model.MustCollection(h)
	svg := Timeline(col, TimelineOptions{Tooltips: true})
	if !strings.Contains(svg, "(ongoing)") {
		t.Error("open interval missing ongoing label")
	}
	// The fading tail uses decreasing opacities.
	if !strings.Contains(svg, `fill-opacity="0.45"`) || !strings.Contains(svg, `fill-opacity="0.15"`) {
		t.Errorf("fade steps missing")
	}
}

func TestDetailPanelRendered(t *testing.T) {
	h := chartHistory(1, []int{0, 5}, []string{"T90", "K86"})
	col := model.MustCollection(h)
	svg := Timeline(col, TimelineOptions{
		DetailPatient: 1,
		DetailAt:      model.Date(2010, time.January, 1),
	})
	if !strings.Contains(svg, "detail panel") {
		t.Fatal("detail panel missing")
	}
	if !strings.Contains(svg, "details: P0000001") {
		t.Error("panel header missing")
	}
	if !strings.Contains(svg, "T90") {
		t.Error("panel content missing")
	}
	// Unknown patient: no panel.
	svg = Timeline(col, TimelineOptions{DetailPatient: 99, DetailAt: 0})
	if strings.Contains(svg, "detail panel") {
		t.Error("panel for unknown patient")
	}
}
