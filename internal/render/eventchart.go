package render

import (
	"fmt"

	"pastas/internal/model"
	"pastas/internal/query"
)

// EventChart renders the Fails et al. view the paper relates its design
// to: "the visualisation shows only the time spanned by the search hits, as
// opposed to the traditional event chart showing the entire histories ...
// multiple lines per history, one for each hit of a temporal query. Also,
// events not part of a search hit are only counted."
//
// Each temporal-pattern hit becomes one line: matched entries as filled
// dots at their relative offsets, with the count of unmatched events inside
// the hit span annotated at the line's end.

// EventChartOptions configures the view.
type EventChartOptions struct {
	// Width is the viewport width in pixels (default 900).
	Width float64
	// MaxLines caps the hit lines drawn (0 = all).
	MaxLines int
	// Tooltips embeds details per matched entry.
	Tooltips bool
}

// EventChart renders every hit of the pattern across the collection.
func EventChart(col *model.Collection, seq query.Sequence, opt EventChartOptions) string {
	if opt.Width <= 0 {
		opt.Width = 900
	}

	type hit struct {
		h     *model.History
		match *query.Match
	}
	var hits []hit
	maxSpan := model.Time(0)
	for _, h := range col.Histories() {
		for _, m := range seq.AllMatches(h) {
			hits = append(hits, hit{h, m})
			if d := m.Span().Duration(); d > maxSpan {
				maxSpan = d
			}
		}
	}
	if opt.MaxLines > 0 && len(hits) > opt.MaxLines {
		hits = hits[:opt.MaxLines]
	}
	if maxSpan == 0 {
		maxSpan = model.Day
	}

	rowH := 16.0
	plotW := opt.Width - marginLeft - marginRight - 60 // room for the count
	docH := marginTop + rowH*float64(len(hits)) + marginBottom
	if docH < marginTop+marginBottom+rowH {
		docH = marginTop + marginBottom + rowH
	}
	s := NewSVG(opt.Width, docH)
	s.Rect(0, 0, opt.Width, docH, "fill", "#ffffff")
	s.Comment(fmt.Sprintf("event chart: %d hits of %s", len(hits), seq.String()))

	x := func(rel model.Time) float64 {
		return marginLeft + float64(rel)/float64(maxSpan)*plotW
	}

	for i, ht := range hits {
		y := marginTop + float64(i)*rowH + rowH/2
		span := ht.match.Span()
		s.Text(4, y+3, ht.h.Patient.ID.String(), "font-size", "8", "fill", ColorAxis)
		s.Line(x(0), y, x(span.Duration()), y, "stroke", ColorContact, "stroke-width", "1.2")

		// Matched entries as dots.
		for _, e := range ht.match.Entries {
			cx := x(e.Start - span.Start)
			title := e.String()
			if opt.Tooltips {
				end := s.TitledGroup(title)
				s.Circle(cx, y, 3.2, "fill", ColorDiagnosis)
				end()
			} else {
				s.Circle(cx, y, 3.2, "fill", ColorDiagnosis)
			}
		}

		// Unmatched events inside the span: counted, not drawn.
		matched := make(map[uint64]bool, len(ht.match.Entries))
		for _, e := range ht.match.Entries {
			matched[e.ID] = true
		}
		other := 0
		for _, e := range ht.h.Within(model.Period{Start: span.Start, End: span.End + 1}) {
			if !matched[e.ID] {
				other++
			}
		}
		s.Text(x(span.Duration())+8, y+3, fmt.Sprintf("+%d", other),
			"font-size", "8", "fill", ColorArrow)
	}

	// Relative time axis in days.
	axisY := marginTop + rowH*float64(len(hits)) + 6
	s.Line(marginLeft, axisY, marginLeft+plotW, axisY, "stroke", ColorAxis, "stroke-width", "1")
	days := int(maxSpan / model.Day)
	step := niceStep(days+1, int(plotW/60))
	for d := 0; d <= days; d += step {
		tick(s, x(model.Time(d)*model.Day), axisY, fmt.Sprintf("+%dd", d))
	}
	return s.String()
}
