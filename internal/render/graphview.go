package render

import (
	"fmt"
	"sort"

	"pastas/internal/graph"
)

// GraphOptions configures the Fig. 2 NSEPter view.
type GraphOptions struct {
	// NodeSpacingX/Y are pixels between layers and stacked nodes.
	NodeSpacingX, NodeSpacingY float64
	// Labels draws code labels inside nodes (off for zoomed-out views,
	// where the paper notes "context was lost").
	Labels bool
	// MaxEdgeWidth is the stroke width of the heaviest edge ("common
	// edges ... were scaled according to the number of histories").
	MaxEdgeWidth float64
}

func (o *GraphOptions) defaults() {
	if o.NodeSpacingX <= 0 {
		o.NodeSpacingX = 90
	}
	if o.NodeSpacingY <= 0 {
		o.NodeSpacingY = 34
	}
	if o.MaxEdgeWidth <= 0 {
		o.MaxEdgeWidth = 6
	}
}

// Graph renders a merged NSEPter graph with its layered layout.
func Graph(g *graph.Graph, l *graph.Layout, opt GraphOptions) string {
	opt.defaults()

	margin := 50.0
	w := margin*2 + float64(l.Cols-1)*opt.NodeSpacingX
	maxY := 0.0
	for _, y := range l.Y {
		if y > maxY {
			maxY = y
		}
	}
	h := margin*2 + maxY*opt.NodeSpacingY
	if w < 2*margin {
		w = 2 * margin
	}
	if h < 2*margin {
		h = 2 * margin
	}

	s := NewSVG(w, h)
	s.Rect(0, 0, w, h, "fill", "#ffffff")

	px := func(id int) float64 { return margin + l.X[id]*opt.NodeSpacingX }
	py := func(id int) float64 { return margin + l.Y[id]*opt.NodeSpacingY }

	// Edges under nodes, heaviest last so they stay visible.
	s.Comment("edges")
	edges := append([]*graph.Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Weight < edges[j].Weight })
	maxW := g.MaxEdgeWeight()
	for _, e := range edges {
		width := 0.8
		if maxW > 1 {
			width = 0.8 + (opt.MaxEdgeWidth-0.8)*float64(e.Weight-1)/float64(maxW-1)
		}
		s.Line(px(e.From), py(e.From), px(e.To), py(e.To),
			"stroke", "#555555", "stroke-width", num(width), "stroke-opacity", "0.7")
	}

	s.Comment("nodes")
	for _, n := range g.Nodes {
		fill := "#ffffff"
		stroke := "#333333"
		if n.Anchor {
			fill = "#ffe08a" // the merge seed stands out
			stroke = "#a07000"
		} else if len(n.Members) > 1 {
			fill = "#dcedc8" // merged nodes tinted
		}
		rx := 16.0 + 4*float64(min(n.Histories()-1, 4))
		end := s.TitledGroup(fmt.Sprintf("%s: %d occurrence(s) in %d history(ies)",
			n.Label, len(n.Members), n.Histories()))
		s.Ellipse(px(n.ID), py(n.ID), rx, 12,
			"fill", fill, "stroke", stroke, "stroke-width", "1")
		if opt.Labels {
			s.Text(px(n.ID), py(n.ID)+3.5, n.Label,
				"font-size", "9", "text-anchor", "middle", "fill", "#111111")
		}
		end()
	}
	return s.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
