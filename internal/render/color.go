package render

import (
	"fmt"
	"hash/fnv"
)

// Color assignment. The background colorings of Fig. 1 distinguish
// medication classes; Section II demands encodings that stay preattentive:
// "choosing good colors and distinct forms, and avoiding the need for
// conjunction search". The class palette below uses well-separated hues
// (Okabe-Ito colorblind-safe set first) so any one class pops out against
// the others, and fixed role colors keep non-class marks achromatic.

// Role colors for the structural elements of the timeline.
const (
	ColorHistoryBar = "#d9d9d9" // the gray patient bar
	ColorDiagnosis  = "#1a1a1a" // small diagnosis rectangles
	ColorArrow      = "#c02020" // blood-pressure arrows
	ColorContact    = "#707070" // contact ticks
	ColorStay       = "#f4a582" // admission band
	ColorService    = "#92c5de" // municipal service band
	ColorAxis       = "#404040"
	ColorGridLine   = "#e8e8e8"
	ColorAnchorLine = "#c02020" // alignment-point rule
)

// classPalette is the medication-class hue set (Okabe-Ito plus extensions),
// ordered by assignment priority.
var classPalette = []string{
	"#E69F00", // orange
	"#56B4E9", // sky blue
	"#009E73", // bluish green
	"#F0E442", // yellow
	"#0072B2", // blue
	"#D55E00", // vermillion
	"#CC79A7", // reddish purple
	"#999933", // olive
	"#882255", // wine
	"#44AA99", // teal
	"#AA4499", // purple
	"#6699CC", // steel blue
}

// ClassColors deterministically assigns palette colors to class labels in
// first-seen order; overflow labels hash into the palette.
type ClassColors struct {
	assigned map[string]string
	next     int
}

// NewClassColors creates an empty assignment.
func NewClassColors() *ClassColors {
	return &ClassColors{assigned: make(map[string]string)}
}

// Color returns the class's color, assigning one on first use.
func (c *ClassColors) Color(class string) string {
	if col, ok := c.assigned[class]; ok {
		return col
	}
	var col string
	if c.next < len(classPalette) {
		col = classPalette[c.next]
		c.next++
	} else {
		h := fnv.New32a()
		h.Write([]byte(class))
		col = classPalette[h.Sum32()%uint32(len(classPalette))]
	}
	c.assigned[class] = col
	return col
}

// Classes returns the labels assigned so far (unordered count only matters
// for legends; callers sort).
func (c *ClassColors) Len() int { return len(c.assigned) }

// RGB builds an rgb() literal; convenience for computed shades.
func RGB(r, g, b int) string { return fmt.Sprintf("rgb(%d,%d,%d)", r, g, b) }
