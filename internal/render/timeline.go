package render

import (
	"fmt"
	"sort"

	"pastas/internal/abstraction"
	"pastas/internal/align"
	"pastas/internal/model"
	"pastas/internal/terminology"
)

// Timeline renders the Fig. 1 workbench view: "Each gray bar ... constitutes
// a patient history, with small rectangles and arrows indicating diagnoses
// and blood pressure measurements ... The colors in the visualization show
// different classes of medication." The horizontal axis is calendar time,
// or months relative to the alignment point when an aligned result is
// supplied; the two zoom factors are the paper's two sliders.

// TimelineOptions configures the view.
type TimelineOptions struct {
	// Width/Height are the nominal viewport in pixels (defaults 1200×700).
	Width, Height float64
	// ZoomX/ZoomY are the two sliders: multiply the drawn time scale and
	// row height. 1.0 fits the viewport; larger values grow the canvas
	// (the workbench scrolls). Minimum 1.
	ZoomX, ZoomY float64
	// Aligned switches the axis to months-relative mode.
	Aligned *align.Result
	// MaxRows caps the histories drawn (0 = all).
	MaxRows int
	// ATCLevel controls medication-band abstraction (default therapeutic).
	ATCLevel abstraction.ATCLevel
	// Tooltips embeds <title> details-on-demand on each mark.
	Tooltips bool
	// Legend draws the medication-class legend.
	Legend bool
	// Highlights marks rows with a colored margin bar — the change
	// indication Section II.C demands ("the visualization should not
	// presume that a user is able to detect changes between views
	// without a way of highlighting the change"). Keyed by patient.
	Highlights map[model.PatientID]string
	// Banner is an optional annotation line drawn above the plot (the
	// diff summary uses it).
	Banner string
	// DetailPatient/DetailAt render the paper's detail panel ("dynamic
	// displays showing detailed information about the history content
	// under the mouse cursor") for a cursor position at the bottom of
	// the image. Zero values disable the panel.
	DetailPatient model.PatientID
	DetailAt      model.Time
}

func (o *TimelineOptions) defaults() {
	if o.Width <= 0 {
		o.Width = 1200
	}
	if o.Height <= 0 {
		o.Height = 700
	}
	if o.ZoomX < 1 {
		o.ZoomX = 1
	}
	if o.ZoomY < 1 {
		o.ZoomY = 1
	}
	if o.ATCLevel == 0 {
		o.ATCLevel = abstraction.ATCTherapeutic
	}
}

const (
	marginLeft   = 78.0
	marginRight  = 14.0
	marginTop    = 26.0
	marginBottom = 34.0
	legendWidth  = 170.0
)

// Timeline renders the collection.
func Timeline(col *model.Collection, opt TimelineOptions) string {
	opt.defaults()

	rows := col.Histories()
	if opt.MaxRows > 0 && len(rows) > opt.MaxRows {
		rows = rows[:opt.MaxRows]
	}

	// Time domain.
	var domain model.Period
	if opt.Aligned != nil {
		domain = opt.Aligned.Span()
	} else {
		domain = col.Span()
	}
	if domain.Empty() {
		domain.End = domain.Start + model.Day
	}

	legendW := 0.0
	if opt.Legend {
		legendW = legendWidth
	}
	plotW := (opt.Width - marginLeft - marginRight - legendW) * opt.ZoomX
	rowH := 14.0 * opt.ZoomY
	plotH := rowH * float64(len(rows))
	if plotH < rowH {
		plotH = rowH
	}

	// Detail panel content, sized before the canvas is fixed.
	var detailLines []string
	if opt.DetailPatient != 0 {
		if h := col.Get(opt.DetailPatient); h != nil {
			detailLines = Details(h, opt.DetailAt, 3*model.Day)
			header := fmt.Sprintf("details: %s @ %s", opt.DetailPatient, opt.DetailAt)
			detailLines = append([]string{header}, detailLines...)
		}
	}
	panelH := 0.0
	if len(detailLines) > 0 {
		panelH = float64(len(detailLines))*13 + 16
	}

	docW := marginLeft + plotW + marginRight + legendW
	docH := marginTop + plotH + marginBottom + panelH

	s := NewSVG(docW, docH)
	s.Rect(0, 0, docW, docH, "fill", "#ffffff")

	offset := func(h *model.History) model.Time {
		if opt.Aligned != nil {
			return opt.Aligned.Offsets[h.Patient.ID]
		}
		return 0
	}
	x := func(t model.Time) float64 {
		frac := float64(t-domain.Start) / float64(domain.Duration())
		return marginLeft + frac*plotW
	}

	colors := NewClassColors()
	drawAxes(s, domain, opt, plotW, plotH)

	if opt.Banner != "" {
		s.Comment("banner")
		s.Text(marginLeft, marginTop-10, opt.Banner, "font-size", "11", "fill", ColorAxis, "font-style", "italic")
	}

	s.Comment("patient histories")
	for i, h := range rows {
		top := marginTop + float64(i)*rowH
		if color, ok := opt.Highlights[h.Patient.ID]; ok {
			s.Rect(marginLeft-6, top+rowH*0.1, 3, rowH*0.8, "fill", color)
		}
		drawHistoryRow(s, h, top, rowH, x, offset(h), domain, colors, opt)
	}

	// Y axis labels: patient IDs, thinned when crowded.
	s.Comment("patient id axis")
	step := 1
	if maxLabels := int(plotH / 12); maxLabels > 0 && len(rows) > maxLabels {
		step = (len(rows) + maxLabels - 1) / maxLabels
	}
	for i := 0; i < len(rows); i += step {
		top := marginTop + float64(i)*rowH
		s.Text(4, top+rowH*0.7, rows[i].Patient.ID.String(),
			"font-size", "9", "fill", ColorAxis)
	}

	// Alignment rule at relative time zero.
	if opt.Aligned != nil {
		s.Comment("alignment point")
		s.Line(x(0), marginTop, x(0), marginTop+plotH,
			"stroke", ColorAnchorLine, "stroke-width", "1.2", "stroke-dasharray", "4 2")
	}

	if opt.Legend {
		drawLegend(s, colors, marginLeft+plotW+marginRight, marginTop)
	}

	if len(detailLines) > 0 {
		s.Comment("detail panel")
		panelTop := marginTop + plotH + marginBottom - 6
		s.Rect(marginLeft, panelTop, plotW, panelH, "fill", "#f6f6f6", "stroke", ColorGridLine)
		for i, line := range detailLines {
			weight := "normal"
			if i == 0 {
				weight = "bold"
			}
			s.Text(marginLeft+6, panelTop+16+float64(i)*13, line,
				"font-size", "10", "fill", ColorAxis, "font-weight", weight)
		}
	}
	return s.String()
}

// drawHistoryRow draws one gray bar with its bands and marks.
func drawHistoryRow(s *SVG, h *model.History, top, rowH float64,
	x func(model.Time) float64, off model.Time, domain model.Period,
	colors *ClassColors, opt TimelineOptions) {

	rel := func(t model.Time) model.Time { return t - off }
	span := h.Span()
	barY := top + rowH*0.25
	barH := rowH * 0.5

	// The gray history bar.
	x0, x1 := x(rel(span.Start)), x(rel(span.End))
	if x1 <= x0 {
		x1 = x0 + 1
	}
	s.Rect(x0, barY, x1-x0, barH, "fill", ColorHistoryBar)

	// Background colorings: stays, services, medication classes.
	for _, b := range abstraction.ServiceBands(h) {
		color := ColorStay
		if b.Class == "municipal service" {
			color = ColorService
		}
		bx0, bx1 := x(rel(b.Period.Start)), x(rel(b.Period.End))
		if b.OpenEnd {
			// Uncertain end: solid body plus a fading tail — the
			// "strip of paint" metaphor (Chittaro & Combi) for an
			// interval of unknown length.
			solidEnd := bx0 + (bx1-bx0)*0.7
			drawBand(s, bx0, solidEnd, top+rowH*0.1, rowH*0.8, color, b.Title+" (ongoing)", opt)
			steps := 4
			for i := 0; i < steps; i++ {
				fx0 := solidEnd + (bx1-solidEnd)*float64(i)/float64(steps)
				fx1 := solidEnd + (bx1-solidEnd)*float64(i+1)/float64(steps)
				op := 0.6 * (1 - float64(i)/float64(steps))
				s.Rect(fx0, top+rowH*0.1, fx1-fx0, rowH*0.8,
					"fill", color, "fill-opacity", num(op))
			}
			continue
		}
		drawBand(s, bx0, bx1, top+rowH*0.1, rowH*0.8, color, b.Title, opt)
	}
	for _, b := range abstraction.MedicationBands(h, opt.ATCLevel, 14*model.Day) {
		color := colors.Color(b.Class)
		title := b.Class
		if b.Title != "" {
			title = b.Class + " " + b.Title
		}
		bx0, bx1 := x(rel(b.Period.Start)), x(rel(b.Period.End))
		drawBand(s, bx0, bx1, top+rowH*0.72, rowH*0.22, color, title, opt)
	}

	// Marks.
	icpc := terminology.ForICPC2()
	icd := terminology.ForICD10()
	for i := range h.Entries {
		e := &h.Entries[i]
		ex := x(rel(e.Start))
		switch e.Type {
		case model.TypeContact:
			s.Line(ex, barY, ex, barY+barH, "stroke", ColorContact, "stroke-width", "0.6")
		case model.TypeDiagnosis:
			size := rowH * 0.32
			title := e.Code.String()
			switch e.Code.System {
			case "ICPC2":
				if t := icpc.Title(e.Code.Value); t != "" {
					title += " " + t
				}
			case "ICD10":
				if t := icd.Title(e.Code.Value); t != "" {
					title += " " + t
				}
			}
			drawMark(s, opt, title, func() {
				s.Rect(ex-size/2, top+rowH*0.08, size, size,
					"fill", ColorDiagnosis)
			})
		case model.TypeMeasurement:
			// The blood-pressure arrow: an upward triangle.
			sz := rowH * 0.35
			title := fmt.Sprintf("BP %.0f/%.0f", e.Value, e.Aux)
			drawMark(s, opt, title, func() {
				s.Polygon([]float64{
					ex, top + rowH*0.58,
					ex - sz/2, top + rowH*0.58 + sz,
					ex + sz/2, top + rowH*0.58 + sz,
				}, "fill", ColorArrow)
			})
		}
	}
}

func drawBand(s *SVG, x0, x1, y, h float64, color, title string, opt TimelineOptions) {
	if x1 <= x0 {
		x1 = x0 + 0.5
	}
	if opt.Tooltips && title != "" {
		end := s.TitledGroup(title)
		s.Rect(x0, y, x1-x0, h, "fill", color, "fill-opacity", "0.75")
		end()
		return
	}
	s.Rect(x0, y, x1-x0, h, "fill", color, "fill-opacity", "0.75")
}

func drawMark(s *SVG, opt TimelineOptions, title string, draw func()) {
	if opt.Tooltips && title != "" {
		end := s.TitledGroup(title)
		draw()
		end()
		return
	}
	draw()
}

// drawAxes renders the horizontal axis: calendar dates, or month offsets in
// aligned mode ("the axis shows the number of months before and after the
// alignment point").
func drawAxes(s *SVG, domain model.Period, opt TimelineOptions, plotW, plotH float64) {
	s.Comment("time axis")
	axisY := marginTop + plotH
	s.Line(marginLeft, axisY, marginLeft+plotW, axisY, "stroke", ColorAxis, "stroke-width", "1")

	x := func(t model.Time) float64 {
		frac := float64(t-domain.Start) / float64(domain.Duration())
		return marginLeft + frac*plotW
	}

	if opt.Aligned != nil {
		// Month ticks around zero.
		startM := int(domain.Start / model.Month)
		endM := int(domain.End/model.Month) + 1
		stepM := niceStep(endM-startM, int(plotW/55))
		for m := startM; m <= endM; m += stepM {
			t := model.Time(m) * model.Month
			if t < domain.Start || t > domain.End {
				continue
			}
			tick(s, x(t), axisY, fmt.Sprintf("%+d mo", m))
			s.Line(x(t), marginTop, x(t), axisY, "stroke", ColorGridLine, "stroke-width", "0.5")
		}
		return
	}

	// Calendar ticks at month boundaries, thinned to fit.
	first := domain.Start.DayFloor()
	var months []model.Time
	t := firstOfMonth(first)
	for ; t < domain.End; t = nextMonth(t) {
		if t >= domain.Start {
			months = append(months, t)
		}
	}
	stepM := niceStep(len(months), int(plotW/70))
	for i := 0; i < len(months); i += stepM {
		m := months[i]
		tick(s, x(m), axisY, m.AsTime().Format("2006-01"))
		s.Line(x(m), marginTop, x(m), axisY, "stroke", ColorGridLine, "stroke-width", "0.5")
	}
}

func tick(s *SVG, x, axisY float64, label string) {
	s.Line(x, axisY, x, axisY+4, "stroke", ColorAxis, "stroke-width", "1")
	s.Text(x, axisY+16, label, "font-size", "10", "fill", ColorAxis, "text-anchor", "middle")
}

// niceStep thins n items to at most maxTicks.
func niceStep(n, maxTicks int) int {
	if maxTicks <= 0 {
		maxTicks = 1
	}
	step := 1
	for n/step > maxTicks {
		step++
	}
	return step
}

func firstOfMonth(t model.Time) model.Time {
	tt := t.AsTime()
	return model.Date(tt.Year(), tt.Month(), 1)
}

func nextMonth(t model.Time) model.Time {
	tt := t.AsTime()
	y, m := tt.Year(), tt.Month()
	if m == 12 {
		return model.Date(y+1, 1, 1)
	}
	return model.Date(y, m+1, 1)
}

// drawLegend renders the medication-class legend in assignment order.
func drawLegend(s *SVG, colors *ClassColors, xpos, ypos float64) {
	s.Comment("legend")
	s.Text(xpos, ypos, "Medication classes", "font-size", "11", "fill", ColorAxis, "font-weight", "bold")
	classes := make([]string, 0, colors.Len())
	for class := range colors.assigned {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	atc := terminology.ForATC()
	for i, class := range classes {
		y := ypos + 14 + float64(i)*16
		s.Rect(xpos, y, 12, 10, "fill", colors.assigned[class], "fill-opacity", "0.75")
		label := class
		if t := atc.Title(class); t != "" {
			label += " " + truncate(t, 18)
		}
		s.Text(xpos+16, y+9, label, "font-size", "9", "fill", ColorAxis)
	}
	// Fixed roles.
	base := ypos + 22 + float64(len(classes))*16
	s.Rect(xpos, base, 12, 10, "fill", ColorStay, "fill-opacity", "0.75")
	s.Text(xpos+16, base+9, "hospital stay", "font-size", "9", "fill", ColorAxis)
	s.Rect(xpos, base+16, 12, 10, "fill", ColorService, "fill-opacity", "0.75")
	s.Text(xpos+16, base+25, "municipal service", "font-size", "9", "fill", ColorAxis)
}

func truncate(t string, n int) string {
	if len(t) <= n {
		return t
	}
	return t[:n-1] + "…"
}

// Details returns the details-on-demand text for a history around a time
// point: the paper's "dynamic displays showing detailed information about
// the history content under the mouse cursor". radius bounds the lookup.
func Details(h *model.History, at model.Time, radius model.Time) []string {
	var out []string
	icpc := terminology.ForICPC2()
	icd := terminology.ForICD10()
	atc := terminology.ForATC()
	window := model.Period{Start: at - radius, End: at + radius}
	for _, e := range h.Within(window) {
		line := fmt.Sprintf("%s  %s %s", e.Start, e.Source, e.Type)
		if !e.Code.IsZero() {
			line += " " + e.Code.String()
			var title string
			switch e.Code.System {
			case "ICPC2":
				title = icpc.Title(e.Code.Value)
			case "ICD10":
				title = icd.Title(e.Code.Value)
			case "ATC":
				title = atc.Title(e.Code.Value)
			}
			if title != "" {
				line += " (" + title + ")"
			}
		}
		if e.Type == model.TypeMeasurement {
			line += fmt.Sprintf(" BP %.0f/%.0f", e.Value, e.Aux)
		}
		if e.Kind == model.Interval {
			line += fmt.Sprintf(" [%s → %s]", e.Start, e.End)
		}
		out = append(out, line)
	}
	return out
}
