package render

import (
	"math/rand"
)

// PreattentiveStimulus renders the Fig. 3 display: "Find the red circle".
// In feature mode the target differs from the distractors in color alone
// (preattentive pop-out); in conjunction mode half the distractors share
// the target's color and half its shape, so only the color∧shape
// conjunction identifies it — the search the paper's encoding guidelines
// exist to avoid.
type StimulusOptions struct {
	// Distractors is the number of non-target elements.
	Distractors int
	// Conjunction switches to the color+shape conjunction display.
	Conjunction bool
	// Seed positions the elements deterministically.
	Seed int64
	// Size is the square canvas edge in pixels (default 360).
	Size float64
}

// PreattentiveStimulus renders the display and returns the SVG plus the
// target's index (for harnesses that simulate search over the elements).
func PreattentiveStimulus(opt StimulusOptions) (svg string, targetIndex int) {
	if opt.Size <= 0 {
		opt.Size = 360
	}
	n := opt.Distractors + 1
	rng := rand.New(rand.NewSource(opt.Seed))

	s := NewSVG(opt.Size, opt.Size)
	s.Rect(0, 0, opt.Size, opt.Size, "fill", "#ffffff")

	// Jittered grid placement avoids overlaps without a physics pass.
	cols := 1
	for cols*cols < n {
		cols++
	}
	cell := opt.Size / float64(cols)
	r := cell * 0.22
	if r > 14 {
		r = 14
	}
	positions := make([][2]float64, 0, cols*cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			positions = append(positions, [2]float64{
				(float64(i)+0.5)*cell + (rng.Float64()-0.5)*cell*0.4,
				(float64(j)+0.5)*cell + (rng.Float64()-0.5)*cell*0.4,
			})
		}
	}
	rng.Shuffle(len(positions), func(i, j int) {
		positions[i], positions[j] = positions[j], positions[i]
	})
	positions = positions[:n]
	targetIndex = rng.Intn(n)

	const (
		red  = "#cc2222"
		blue = "#2244cc"
	)
	for i, p := range positions {
		switch {
		case i == targetIndex:
			s.Circle(p[0], p[1], r, "fill", red) // the red circle
		case !opt.Conjunction:
			s.Circle(p[0], p[1], r, "fill", blue)
		case i%2 == 0:
			s.Circle(p[0], p[1], r, "fill", blue) // shares shape
		default:
			s.Rect(p[0]-r, p[1]-r, 2*r, 2*r, "fill", red) // shares color
		}
	}
	return s.String(), targetIndex
}
