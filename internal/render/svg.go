// Package render draws the workbench's views as SVG documents: the Fig. 1
// timeline workbench, the Fig. 2 NSEPter graphs and the Fig. 3 preattentive
// stimulus. SVG substitutes for the paper's Swing canvas: every visual
// encoding (bars, rectangles, arrows, background colorings, axes, zoom) is
// preserved, and because output is deterministic text it is testable.
package render

import (
	"fmt"
	"strings"
)

// SVG is a minimal scene writer. Coordinates are pixels.
type SVG struct {
	w, h  float64
	body  strings.Builder
	defs  strings.Builder
	depth int
}

// NewSVG creates a document of the given pixel size.
func NewSVG(width, height float64) *SVG {
	return &SVG{w: width, h: height}
}

// Width returns the document width.
func (s *SVG) Width() float64 { return s.w }

// Height returns the document height.
func (s *SVG) Height() float64 { return s.h }

func (s *SVG) indent() string { return strings.Repeat("  ", s.depth+1) }

// esc escapes text content and attribute values.
func esc(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}

// num formats coordinates compactly.
func num(v float64) string {
	out := fmt.Sprintf("%.2f", v)
	out = strings.TrimRight(out, "0")
	out = strings.TrimRight(out, ".")
	if out == "" || out == "-" {
		return "0"
	}
	return out
}

// Attrs is a list of attribute key-value pairs (order preserved).
type Attrs []string

// attrString renders pairs; panics on odd length (programmer error).
func attrString(attrs Attrs) string {
	if len(attrs)%2 != 0 {
		panic("render: odd attribute list")
	}
	var b strings.Builder
	for i := 0; i < len(attrs); i += 2 {
		fmt.Fprintf(&b, ` %s="%s"`, attrs[i], esc(attrs[i+1]))
	}
	return b.String()
}

// Rect draws a rectangle.
func (s *SVG) Rect(x, y, w, h float64, attrs ...string) {
	fmt.Fprintf(&s.body, "%s<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\"%s/>\n",
		s.indent(), num(x), num(y), num(w), num(h), attrString(attrs))
}

// Circle draws a circle.
func (s *SVG) Circle(cx, cy, r float64, attrs ...string) {
	fmt.Fprintf(&s.body, "%s<circle cx=\"%s\" cy=\"%s\" r=\"%s\"%s/>\n",
		s.indent(), num(cx), num(cy), num(r), attrString(attrs))
}

// Ellipse draws an ellipse.
func (s *SVG) Ellipse(cx, cy, rx, ry float64, attrs ...string) {
	fmt.Fprintf(&s.body, "%s<ellipse cx=\"%s\" cy=\"%s\" rx=\"%s\" ry=\"%s\"%s/>\n",
		s.indent(), num(cx), num(cy), num(rx), num(ry), attrString(attrs))
}

// Line draws a line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, attrs ...string) {
	fmt.Fprintf(&s.body, "%s<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"%s/>\n",
		s.indent(), num(x1), num(y1), num(x2), num(y2), attrString(attrs))
}

// Polygon draws a closed polygon from x,y pairs.
func (s *SVG) Polygon(points []float64, attrs ...string) {
	if len(points)%2 != 0 {
		panic("render: odd point list")
	}
	var pts []string
	for i := 0; i < len(points); i += 2 {
		pts = append(pts, num(points[i])+","+num(points[i+1]))
	}
	fmt.Fprintf(&s.body, "%s<polygon points=\"%s\"%s/>\n",
		s.indent(), strings.Join(pts, " "), attrString(attrs))
}

// Text draws a text label.
func (s *SVG) Text(x, y float64, text string, attrs ...string) {
	fmt.Fprintf(&s.body, "%s<text x=\"%s\" y=\"%s\"%s>%s</text>\n",
		s.indent(), num(x), num(y), attrString(attrs), esc(text))
}

// Title attaches a tooltip to the previous element by wrapping — SVG
// renderers show <title> children on hover; our details-on-demand in the
// static artifacts. It must be called via the WithTitle helpers below, so
// as a primitive we expose a titled group instead.
func (s *SVG) TitledGroup(title string, attrs ...string) func() {
	fmt.Fprintf(&s.body, "%s<g%s>\n", s.indent(), attrString(attrs))
	s.depth++
	fmt.Fprintf(&s.body, "%s<title>%s</title>\n", s.indent(), esc(title))
	return s.endGroup
}

// Group opens a <g>; the returned func closes it (use with defer).
func (s *SVG) Group(attrs ...string) func() {
	fmt.Fprintf(&s.body, "%s<g%s>\n", s.indent(), attrString(attrs))
	s.depth++
	return s.endGroup
}

func (s *SVG) endGroup() {
	s.depth--
	fmt.Fprintf(&s.body, "%s</g>\n", s.indent())
}

// Comment inserts an XML comment (section markers for tests and humans).
func (s *SVG) Comment(text string) {
	fmt.Fprintf(&s.body, "%s<!-- %s -->\n", s.indent(), strings.ReplaceAll(text, "--", "—"))
}

// String renders the complete document.
func (s *SVG) String() string {
	var out strings.Builder
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" font-family="sans-serif">`,
		num(s.w), num(s.h), num(s.w), num(s.h))
	out.WriteString("\n")
	if s.defs.Len() > 0 {
		out.WriteString("  <defs>\n" + s.defs.String() + "  </defs>\n")
	}
	out.WriteString(s.body.String())
	out.WriteString("</svg>\n")
	return out.String()
}
