package render

import (
	"fmt"

	"pastas/internal/model"
)

// Change highlighting between successive views. The paper (citing Simons &
// Ambinder): "If the user blinks or changes focus ... it is probable that
// the user will be unable to detect the difference between the views ...
// the visualization should not presume that a user is able to detect
// changes between views without a way of highlighting the change."
// TimelineDiff renders the after-view with per-row change markers and a
// summary banner, so the difference survives a blink.

// Diff change colors.
const (
	ColorAdded   = "#2e7d32" // row new in the after-view
	ColorChanged = "#f9a825" // row present in both but with different entries
)

// DiffSummary quantifies the change between two views.
type DiffSummary struct {
	Added   int // histories only in after
	Removed int // histories only in before
	Changed int // histories in both with differing entry counts
	Same    int
}

func (d DiffSummary) String() string {
	return fmt.Sprintf("changes: %d added, %d removed, %d changed, %d unchanged",
		d.Added, d.Removed, d.Changed, d.Same)
}

// Diff computes the change summary and the per-patient highlight map for
// the after-view.
func Diff(before, after *model.Collection) (DiffSummary, map[model.PatientID]string) {
	var sum DiffSummary
	high := make(map[model.PatientID]string)
	for _, h := range after.Histories() {
		prev := before.Get(h.Patient.ID)
		switch {
		case prev == nil:
			sum.Added++
			high[h.Patient.ID] = ColorAdded
		case prev.Len() != h.Len():
			sum.Changed++
			high[h.Patient.ID] = ColorChanged
		default:
			sum.Same++
		}
	}
	for _, h := range before.Histories() {
		if after.Get(h.Patient.ID) == nil {
			sum.Removed++
		}
	}
	return sum, high
}

// TimelineDiff renders the after-view with change markers and the summary
// banner. Options' Highlights and Banner fields are overwritten.
func TimelineDiff(before, after *model.Collection, opt TimelineOptions) (string, DiffSummary) {
	sum, high := Diff(before, after)
	opt.Highlights = high
	opt.Banner = sum.String()
	return Timeline(after, opt), sum
}
