package render

import (
	"strings"
	"testing"
	"time"

	"pastas/internal/align"
	"pastas/internal/graph"
	"pastas/internal/integrate"
	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/synth"
)

func testCollection(t testing.TB, n int) *model.Collection {
	t.Helper()
	bundle := synth.Generate(synth.DefaultConfig(n))
	col, _, err := integrate.Build(bundle, integrate.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestSVGPrimitives(t *testing.T) {
	s := NewSVG(100, 50)
	s.Rect(1, 2, 3, 4, "fill", "#fff")
	s.Circle(5, 5, 2)
	s.Ellipse(5, 5, 4, 2)
	s.Line(0, 0, 10, 10, "stroke", "red")
	s.Polygon([]float64{0, 0, 5, 0, 2.5, 5})
	s.Text(10, 10, `label <with> "specials" & stuff`)
	end := s.Group("class", "g1")
	s.Comment("inside -- group")
	end()
	end = s.TitledGroup("tool tip")
	s.Circle(1, 1, 1)
	end()
	out := s.String()

	for _, want := range []string{
		"<svg", `width="100"`, "<rect", "<circle", "<ellipse", "<line",
		"<polygon", "&lt;with&gt;", "&quot;specials&quot;", "&amp;",
		"<g class=\"g1\">", "<title>tool tip</title>", "</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(out, "inside -- group") {
		t.Error("double dash must not survive in comments")
	}
}

func TestNumFormatting(t *testing.T) {
	cases := map[float64]string{
		1.0: "1", 1.5: "1.5", 0.25: "0.25", -2.0: "-2", 0.0: "0",
	}
	for in, want := range cases {
		if got := num(in); got != want {
			t.Errorf("num(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestClassColorsDeterministic(t *testing.T) {
	c := NewClassColors()
	a := c.Color("A10")
	b := c.Color("C07")
	if a == b {
		t.Error("distinct classes share a color")
	}
	if c.Color("A10") != a {
		t.Error("assignment not stable")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	// Overflow assignment still returns a palette color.
	many := NewClassColors()
	for i := 0; i < 30; i++ {
		col := many.Color(string(rune('A'+i)) + "01")
		if col == "" {
			t.Fatal("empty color")
		}
	}
}

func TestTimelineCalendarMode(t *testing.T) {
	col := testCollection(t, 30)
	svg := Timeline(col, TimelineOptions{Tooltips: true, Legend: true})
	for _, want := range []string{
		"patient histories", "time axis", "patient id axis",
		ColorHistoryBar, "Medication classes", "<title>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// Calendar labels look like YYYY-MM.
	if !strings.Contains(svg, "2010-") && !strings.Contains(svg, "2011-") {
		t.Error("calendar tick labels missing")
	}
}

func TestTimelineAlignedMode(t *testing.T) {
	col := testCollection(t, 60)
	res := align.Align(col, align.First(query.AllOf{
		query.TypeIs(model.TypeDiagnosis), query.MustCode("", "K86|T90")}))
	if res.Col.Len() == 0 {
		t.Skip("no anchored histories in this sample")
	}
	svg := Timeline(res.Col, TimelineOptions{Aligned: res})
	if !strings.Contains(svg, "alignment point") {
		t.Error("alignment rule missing")
	}
	if !strings.Contains(svg, "mo</text>") {
		t.Error("month-offset labels missing")
	}
}

func TestTimelineZoomGrowsCanvas(t *testing.T) {
	col := testCollection(t, 10)
	base := Timeline(col, TimelineOptions{})
	zoomed := Timeline(col, TimelineOptions{ZoomX: 3, ZoomY: 2})
	if len(zoomed) <= len(base) {
		t.Error("zoom produced no growth")
	}
	if !strings.Contains(zoomed, `width="3`) && len(zoomed) < len(base) {
		t.Error("zoomed canvas did not grow")
	}
}

func TestTimelineMaxRows(t *testing.T) {
	col := testCollection(t, 30)
	svg := Timeline(col, TimelineOptions{MaxRows: 5})
	count := strings.Count(svg, `fill="`+ColorHistoryBar+`"`)
	if count != 5 {
		t.Errorf("history bars = %d, want 5", count)
	}
}

func TestDetails(t *testing.T) {
	col := testCollection(t, 50)
	var h *model.History
	var at model.Time
	for _, cand := range col.Histories() {
		if e := cand.First(func(e *model.Entry) bool { return e.Type == model.TypeDiagnosis }); e != nil {
			h, at = cand, e.Start
			break
		}
	}
	if h == nil {
		t.Skip("no diagnoses in sample")
	}
	lines := Details(h, at, 7*model.Day)
	if len(lines) == 0 {
		t.Fatal("no details returned")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "diagnosis") {
		t.Errorf("details lack diagnosis line: %s", joined)
	}
	// Far-away time returns nothing.
	if got := Details(h, at+50*model.Year, model.Day); len(got) != 0 {
		t.Error("details leaked outside radius")
	}
}

func TestGraphView(t *testing.T) {
	seqs := [][]string{
		{"A04", "T90", "K86"},
		{"A04", "T90", "K86"},
		{"D01", "T90", "F92"},
	}
	g, err := graph.SerialMerge(seqs, graph.SerialOptions{Pattern: "T90", Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := graph.Layered(g)
	svg := Graph(g, l, GraphOptions{Labels: true})
	for _, want := range []string{"<ellipse", "edges", "nodes", "#ffe08a", "T90"} {
		if !strings.Contains(svg, want) {
			t.Errorf("graph view missing %q", want)
		}
	}
	// Edge widths vary with weight.
	if !strings.Contains(svg, `stroke-width="0.8"`) {
		t.Error("light edges missing")
	}
}

func TestPreattentiveStimulus(t *testing.T) {
	svg, target := PreattentiveStimulus(StimulusOptions{Distractors: 20, Seed: 1})
	if target < 0 || target > 20 {
		t.Errorf("target index = %d", target)
	}
	if got := strings.Count(svg, "#cc2222"); got != 1 {
		t.Errorf("feature display has %d red elements, want 1", got)
	}
	if got := strings.Count(svg, "<circle"); got != 21 {
		t.Errorf("feature display has %d circles, want 21", got)
	}

	conj, _ := PreattentiveStimulus(StimulusOptions{Distractors: 20, Conjunction: true, Seed: 1})
	reds := strings.Count(conj, "#cc2222")
	if reds < 2 {
		t.Errorf("conjunction display has %d red elements, want several", reds)
	}
	if !strings.Contains(conj, "<rect") || !strings.Contains(conj, "<circle") {
		t.Error("conjunction display needs both shapes")
	}

	// Determinism.
	svg2, target2 := PreattentiveStimulus(StimulusOptions{Distractors: 20, Seed: 1})
	if svg != svg2 || target != target2 {
		t.Error("stimulus not deterministic")
	}
}

func TestTimelineDeterministic(t *testing.T) {
	col := testCollection(t, 15)
	a := Timeline(col, TimelineOptions{Legend: true, Tooltips: true})
	b := Timeline(col, TimelineOptions{Legend: true, Tooltips: true})
	if a != b {
		t.Error("timeline rendering not deterministic")
	}
}

func TestTimelineScalesTo1000(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	col := testCollection(t, 1000)
	start := time.Now()
	svg := Timeline(col, TimelineOptions{})
	elapsed := time.Since(start)
	if len(svg) == 0 {
		t.Fatal("empty render")
	}
	// Generous bound; the E5 bench measures precisely.
	if elapsed > 5*time.Second {
		t.Errorf("1000-patient render took %v", elapsed)
	}
}
