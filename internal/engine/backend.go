package engine

// Transport-agnostic shard access. The executor never touches shard data
// directly: every shard is behind a ShardBackend, whether it lives in this
// process (a store.View over the global store's postings) or in another
// one (a shard server reached over RPC). The semantics contract is that a
// backend evaluates plan fragments over its contiguous slice of the
// population and answers in shard-local ordinal space — local bit i is
// global bit Meta().Offset+i — so any mix of transports merges into the
// same global bitset a single-process engine would produce.

import (
	"context"
	"fmt"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// ShardMeta describes one shard of the population.
type ShardMeta struct {
	// Shard is the shard's id within its topology.
	Shard int
	// Offset is the global patient ordinal of the shard's first history.
	Offset int
	// Patients is the shard's population slice size.
	Patients int
	// Entries is the total entry count inside the shard.
	Entries int
	// Backend names the transport serving the shard: "local" for an
	// in-process view, "remote(addr)" for a shard server.
	Backend string
}

// ShardBackend evaluates plan fragments over one contiguous shard.
//
// Every data operation takes a context carrying the coordinator's query
// deadline: a transport honors it per call (a slow shard cannot pin a
// worker past the query budget), an in-process view may ignore it. All
// operations are read-only and idempotent — the property that makes
// retrying a call on another replica of the same shard safe.
//
// EvalPlan runs a plan fragment — a single scan leaf or a whole plan
// tree — over the shard's patients and returns the matches in shard-local
// ordinal space. A non-nil mask (also shard-local) restricts the
// candidates: the result must equal eval(p) ∩ mask, and implementations
// may exploit the mask to skip work.
//
// Stats returns the shard's exact index cardinalities; a coordinating
// planner merges them into the population-level cardinality bounds its
// cost model estimates from.
//
// IDsOf resolves shard-local ordinals to patient IDs, in ordinal order.
//
// The history-level operations complete the contract: FetchHistories
// materializes the histories at strictly increasing shard-local ordinals
// (the workbench's timeline and details views), LocateID resolves a
// patient ID to its shard-local ordinal (ok=false when the patient lives
// elsewhere), and Indicators tallies the mergeable utilization counts for
// the shard's slice of a cohort — the server-side aggregate that keeps
// large cohorts from shipping every history over a wire transport.
//
// Analyze generalizes that server-side aggregation into a map-reduce: a
// registered analyzer kind maps over only the masked-in histories and
// returns a mergeable partial the coordinator reduces exactly (see
// analyze.go). Like Indicators and Profile, no history crosses the wire.
type ShardBackend interface {
	Meta() ShardMeta
	Stats(ctx context.Context) (*store.Stats, error)
	EvalPlan(ctx context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error)
	IDsOf(ctx context.Context, b *store.Bitset) ([]model.PatientID, error)
	FetchHistories(ctx context.Context, ordinals []int) ([]*model.History, error)
	LocateID(ctx context.Context, id model.PatientID) (int, bool, error)
	Indicators(ctx context.Context, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error)
	Profile(ctx context.Context, mask *store.Bitset, window model.Period) (stats.CohortProfile, error)
	Analyze(ctx context.Context, args AnalyzeArgs) (Partial, error)
	Close() error
}

// Prober is an optional ShardBackend capability: a cheap liveness probe.
// The replica set's health checker prefers it over Stats — a probe must
// be O(1) on the far side (the remote transport answers it with the
// Describe handshake, no payload). A backend without Probe is probed
// with Stats instead.
type Prober interface {
	Probe(ctx context.Context) error
}

// validateOrdinals enforces the FetchHistories argument contract for both
// transports: strictly increasing, in [0, patients). Shared so a hostile
// or buggy client fails identically against a local view and a server.
func validateOrdinals(ordinals []int, patients int) error {
	prev := -1
	for _, o := range ordinals {
		if o <= prev {
			return fmt.Errorf("engine: fetch ordinals must be strictly increasing (%d after %d)", o, prev)
		}
		if o >= patients {
			return fmt.Errorf("engine: fetch ordinal %d out of range (shard has %d patients)", o, patients)
		}
		prev = o
	}
	return nil
}

// LocalBackend serves a shard from an in-process store view: index
// lookups slice the parent store's postings, scans walk the view's
// histories. It is the transport the single-process engine fans out over.
type LocalBackend struct {
	v    *store.View
	meta ShardMeta
}

// NewLocalBackend wraps a store view as shard `shard` of a topology.
func NewLocalBackend(v *store.View, shard int) *LocalBackend {
	return &LocalBackend{
		v: v,
		meta: ShardMeta{
			Shard:    shard,
			Offset:   v.Offset(),
			Patients: v.Len(),
			Entries:  v.Entries(),
			Backend:  "local",
		},
	}
}

// Meta implements ShardBackend.
func (b *LocalBackend) Meta() ShardMeta { return b.meta }

// Stats implements ShardBackend by popcounting the parent postings over
// the view's range.
func (b *LocalBackend) Stats(context.Context) (*store.Stats, error) { return b.v.Stats(), nil }

// IDsOf implements ShardBackend.
func (b *LocalBackend) IDsOf(_ context.Context, bits *store.Bitset) ([]model.PatientID, error) {
	out := make([]model.PatientID, 0, bits.Count())
	bits.Range(func(i int) bool {
		out = append(out, b.v.PatientAt(i))
		return true
	})
	return out, nil
}

// FetchHistories implements ShardBackend straight off the view's slice of
// the collection.
func (b *LocalBackend) FetchHistories(_ context.Context, ordinals []int) ([]*model.History, error) {
	if err := validateOrdinals(ordinals, b.v.Len()); err != nil {
		return nil, err
	}
	out := make([]*model.History, len(ordinals))
	for i, o := range ordinals {
		out[i] = b.v.HistoryAt(o)
	}
	return out, nil
}

// LocateID implements ShardBackend via the parent store's ordinal map.
func (b *LocalBackend) LocateID(_ context.Context, id model.PatientID) (int, bool, error) {
	o, ok := b.v.Ordinal(id)
	return o, ok, nil
}

// Indicators implements ShardBackend: one pass over the view's histories,
// restricted to the mask's cohort members (nil = every patient).
func (b *LocalBackend) Indicators(_ context.Context, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error) {
	return tallyIndicators(b.v.HistoryAt, b.v.Len(), mask, window)
}

// tallyIndicators is the one tally loop both transports run — the local
// view directly, the shard server over its own collection — so the
// mask contract and the per-history accounting can never diverge
// between them.
func tallyIndicators(history func(int) *model.History, patients int, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error) {
	var counts stats.IndicatorCounts
	if mask != nil && mask.Len() != patients {
		return counts, fmt.Errorf("engine: indicator mask covers %d patients, shard has %d", mask.Len(), patients)
	}
	if mask != nil {
		mask.Range(func(i int) bool {
			counts.AddHistory(history(i), window)
			return true
		})
	} else {
		for i := 0; i < patients; i++ {
			counts.AddHistory(history(i), window)
		}
	}
	return counts, nil
}

// Profile implements ShardBackend: the cohort-characteristics analogue
// of Indicators — one pass over the masked histories producing the
// fixed-size dimension tally compare-cohorts merges.
func (b *LocalBackend) Profile(_ context.Context, mask *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	return tallyProfile(b.v.HistoryAt, b.v.Len(), mask, window)
}

// tallyProfile mirrors tallyIndicators for cohort characteristics: the
// one loop both transports run, so the mask contract and the per-history
// accounting can never diverge between them.
func tallyProfile(history func(int) *model.History, patients int, mask *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	var prof stats.CohortProfile
	if mask != nil && mask.Len() != patients {
		return prof, fmt.Errorf("engine: profile mask covers %d patients, shard has %d", mask.Len(), patients)
	}
	if mask != nil {
		mask.Range(func(i int) bool {
			prof.AddHistory(history(i), window)
			return true
		})
	} else {
		for i := 0; i < patients; i++ {
			prof.AddHistory(history(i), window)
		}
	}
	return prof, nil
}

// Analyze implements ShardBackend: the registered map step runs over the
// view's masked-in histories through the same shared loop the shard
// server uses (tallyAnalyze), so the two transports cannot diverge.
func (b *LocalBackend) Analyze(_ context.Context, args AnalyzeArgs) (Partial, error) {
	return tallyAnalyze(b.v.HistoryAt, b.v.Len(), args)
}

// Probe implements Prober; an in-process view is always alive.
func (b *LocalBackend) Probe(context.Context) error { return nil }

// Close implements ShardBackend; a view holds no resources.
func (b *LocalBackend) Close() error { return nil }

// EvalPlan implements ShardBackend: a straightforward recursive evaluator
// in shard-local ordinal space. The coordinating executor keeps the
// clever parts — candidate masking, bound derivation, sub-plan caching —
// for itself and sends leaves here; whole trees are handled too, so a
// backend set is a complete execution target on its own.
func (b *LocalBackend) EvalPlan(_ context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	if mask != nil && mask.Len() != b.v.Len() {
		return nil, fmt.Errorf("engine: shard %d: mask capacity %d, shard has %d patients",
			b.meta.Shard, mask.Len(), b.v.Len())
	}
	return evalOnView(b.v, p, mask)
}

// evalOnView evaluates eval(p) ∩ mask over a view (nil mask = all).
func evalOnView(v *store.View, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	switch n := p.(type) {
	case All:
		if mask != nil {
			return mask.Clone(), nil
		}
		return v.Empty().Not(), nil
	case None:
		return v.Empty(), nil
	case IndexScan:
		out, err := evalIndexOnView(v, n)
		if err != nil {
			return nil, err
		}
		if mask != nil {
			out.And(mask)
		}
		return out, nil
	case Scan:
		out := v.Empty()
		if mask != nil {
			// Iterate the mask's set bits instead of probing it per
			// history: with containerized bitsets a sparse mask makes
			// this a handful of array-container walks, and whole
			// 65k-patient chunks of non-candidates are skipped outright.
			mask.Range(func(i int) bool {
				if n.Expr.Eval(v.HistoryAt(i)) {
					out.Set(i)
				}
				return true
			})
			return out, nil
		}
		for i, h := range v.Histories() {
			if n.Expr.Eval(h) {
				out.Set(i)
			}
		}
		return out, nil
	case Not:
		inner, err := evalOnView(v, n.Child, nil)
		if err != nil {
			return nil, err
		}
		inner.Not()
		if mask != nil {
			inner.And(mask)
		}
		return inner, nil
	case And:
		// Thread the accumulator as the next child's mask, so each child
		// only considers the candidates still alive.
		var acc *store.Bitset
		if mask != nil {
			acc = mask.Clone()
		} else {
			acc = v.Empty().Not()
		}
		for _, c := range n.Children {
			if acc.Count() == 0 {
				return acc, nil
			}
			next, err := evalOnView(v, c, acc)
			if err != nil {
				return nil, err
			}
			acc = next
		}
		return acc, nil
	case Or:
		acc := v.Empty()
		for _, c := range n.Children {
			b, err := evalOnView(v, c, mask)
			if err != nil {
				return nil, err
			}
			acc.Or(b)
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// evalIndexOnView answers an index leaf from the view's sliced postings.
func evalIndexOnView(v *store.View, n IndexScan) (*store.Bitset, error) {
	switch n.Op {
	case OpType:
		return v.WithType(n.Type), nil
	case OpSource:
		return v.WithSource(n.Source), nil
	default:
		if len(n.Systems) == 0 {
			return v.WithCodeRegex("", n.Pattern)
		}
		out := v.Empty()
		for _, sys := range n.Systems {
			b, err := v.WithCodeRegex(sys, n.Pattern)
			if err != nil {
				return nil, err
			}
			out.Or(b)
		}
		return out, nil
	}
}
