package engine

import (
	"strings"
	"testing"

	"pastas/internal/model"
	"pastas/internal/query"
	"pastas/internal/store"
)

// memoKeys snapshots the plan memo's key set (white-box).
func memoKeys(m *planMemo) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byKey))
	for k := range m.byKey {
		out = append(out, k)
	}
	return out
}

// TestPlanMemoEpochedByGeneration: a plan memoized before an append must
// never answer a query after it — the memo key carries the store
// generation, so the post-append execution plans (and caches) under a
// fresh key, and the engine's answer reflects the appended patient
// immediately. This is the no-stale-answers contract observed directly
// on the memo rather than through timing.
func TestPlanMemoEpochedByGeneration(t *testing.T) {
	st := store.New(fbCollection(200))
	e := New(st, Options{Shards: 2, CacheSize: 8})
	q := query.And{valueScan(0, 50), valueScan(1000, 1040)}

	before, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	keys0 := memoKeys(e.plans)
	if len(keys0) == 0 {
		t.Fatal("no plan memoized by the first execution")
	}
	for _, k := range keys0 {
		if !strings.HasPrefix(k, "0\x00") {
			t.Fatalf("pre-append memo key %q not under generation 0", k)
		}
	}

	// Append one patient matching both conjuncts.
	base := model.Date(2012, 1, 1)
	h := model.NewHistory(model.Patient{ID: 10001, Birth: model.Date(1960, 1, 1)})
	h.Add(model.Entry{ID: 100001, Kind: model.Point, Start: base, End: base,
		Type: model.TypeMeasurement, Source: model.Source(1), Value: 25})
	h.Add(model.Entry{ID: 100002, Kind: model.Point, Start: base, End: base,
		Type: model.TypeMeasurement, Source: model.Source(1), Value: 1020})
	if _, err := st.Append(store.AppendBatch{NewHistories: []*model.History{h}}); err != nil {
		t.Fatal(err)
	}

	after, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != st.Len() {
		t.Fatalf("post-append bitset spans %d patients, store has %d", after.Len(), st.Len())
	}
	if got, want := after.Count(), before.Count()+1; got != want {
		t.Fatalf("post-append count = %d, want %d — stale answer served", got, want)
	}
	i, ok := st.Ordinal(10001)
	if !ok || !after.Get(i) {
		t.Fatal("appended patient missing from the post-append answer")
	}

	gen1 := false
	for _, k := range memoKeys(e.plans) {
		if strings.HasPrefix(k, "1\x00") {
			gen1 = true
			break
		}
	}
	if !gen1 {
		t.Error("post-append execution did not memoize under generation 1")
	}
}

// TestResultCacheEpochedByGeneration: the result cache keyed at the old
// generation must miss after an append even for the identical expression.
func TestResultCacheEpochedByGeneration(t *testing.T) {
	st := store.New(fbCollection(100))
	e := New(st, Options{Shards: 1, CacheSize: 8})
	q := valueScan(0, 30)

	first, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm hit at the same generation.
	again, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Count() != first.Count() {
		t.Fatalf("warm re-execution diverged: %d vs %d", again.Count(), first.Count())
	}

	base := model.Date(2012, 1, 1)
	h := model.NewHistory(model.Patient{ID: 20001, Birth: model.Date(1960, 1, 1)})
	h.Add(model.Entry{ID: 200001, Kind: model.Point, Start: base, End: base,
		Type: model.TypeMeasurement, Source: model.Source(1), Value: 10})
	if _, err := st.Append(store.AppendBatch{NewHistories: []*model.History{h}}); err != nil {
		t.Fatal(err)
	}

	fresh, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Count(), first.Count()+1; got != want {
		t.Fatalf("post-append count = %d, want %d — result cache served a stale generation", got, want)
	}
}
