package engine

// The remote shard transport: a net/rpc wire protocol (gob-framed over
// TCP) between a coordinating engine and shard servers. A shard server
// pages its assigned shards out of a sharded v2 snapshot with
// store.OpenShards — only those segments are ever read — indexes each as
// a dedicated store, and answers plan evaluations through a per-shard
// engine, re-optimized against the shard's own statistics. The client
// side wraps each served shard as a ShardBackend with per-call timeout
// and bounded redial-retry; server-side evaluation errors are returned
// verbatim and never retried (they are deterministic), while transport
// errors reset the connection.
//
// Payloads that have their own codecs (plans, bitsets, statistics) cross
// the wire as opaque byte slices, so the RPC layer adds no second
// serialization semantics on top of wire.go and the store codecs.

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"net/rpc"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pastas/internal/model"
	"pastas/internal/stats"
	"pastas/internal/store"
)

// rpcServiceName is the registered net/rpc service.
const rpcServiceName = "PastasShard"

// maskCRCTable checksums container-encoded masks shipped to shards
// (crc32c, the same polynomial the snapshot format uses). The bitset
// codec validates structure; the checksum catches the corruption class
// structure validation can miss — a bit flip inside a container payload
// that still decodes to a plausible bitset would silently evaluate the
// delta over the wrong candidates.
var maskCRCTable = crc32.MakeTable(crc32.Castagnoli)

// checkMaskCRC validates a shipped mask's checksum before any decode
// work; crc 0 with a non-empty mask means the client predates the
// checksum, which no supported client does — refuse loudly.
func checkMaskCRC(data []byte, crc uint32) error {
	if got := crc32.Checksum(data, maskCRCTable); got != crc {
		return fmt.Errorf("engine: mask checksum mismatch (got %08x, want %08x): corrupt or truncated mask", got, crc)
	}
	return nil
}

// servedShard is one shard a server answers for.
type servedShard struct {
	meta ShardMeta
	eng  *Engine
}

// ShardServer serves one or more shards of a snapshot over net/rpc.
type ShardServer struct {
	rpc    *rpc.Server
	shards map[int]*servedShard
	metas  []ShardMeta
	// totalPatients is the snapshot's full population — what every
	// server of the same snapshot reports, so a client can verify its
	// assembled topology covers the whole ordinal space.
	totalPatients int

	// Graceful-shutdown state: Shutdown flips closing, closes the
	// listeners Serve registered, and drains the in-flight RPCs so a
	// SIGTERM mid-call finishes the call instead of killing it.
	closing   atomic.Bool
	inflight  sync.WaitGroup
	mu        sync.Mutex
	listeners []net.Listener
}

// NewShardServer opens the given shards of a sharded snapshot (no ids
// = every shard) and builds a per-shard engine over each. Only the
// header and the assigned segments are read from the file; on v3
// snapshots each shard's indexes are restored from its postings segment
// instead of being rebuilt from the entries.
func NewShardServer(snapshotPath string, ids []int, opts Options) (*ShardServer, error) {
	opened, info, err := store.OpenShards(snapshotPath, ids...)
	if err != nil {
		return nil, err
	}
	s := &ShardServer{
		rpc:           rpc.NewServer(),
		shards:        make(map[int]*servedShard, len(opened)),
		totalPatients: info.Patients,
	}
	for _, sh := range opened {
		st, err := sh.Store()
		if err != nil {
			return nil, fmt.Errorf("engine: shard server: shard %d: %w", sh.Shard, err)
		}
		served := &servedShard{
			meta: ShardMeta{
				Shard:    sh.Shard,
				Offset:   sh.Offset,
				Patients: st.Len(),
				Entries:  sh.Col.TotalEntries(),
			},
			eng: New(st, opts),
		}
		s.shards[sh.Shard] = served
		s.metas = append(s.metas, served.meta)
	}
	if err := s.rpc.RegisterName(rpcServiceName, &ShardRPC{s: s}); err != nil {
		return nil, fmt.Errorf("engine: shard server: %w", err)
	}
	return s, nil
}

// Metas returns the served shards' metadata (offsets are global patient
// ordinals from the snapshot's shard table).
func (s *ShardServer) Metas() []ShardMeta { return append([]ShardMeta(nil), s.metas...) }

// ErrServerClosed is what Serve returns after Shutdown closed its
// listener — the clean-exit signal, mirroring net/http.ErrServerClosed.
var ErrServerClosed = errors.New("engine: shard server closed")

// Serve accepts connections until the listener closes; each connection
// gets its own goroutine. After Shutdown, Serve returns ErrServerClosed
// instead of the listener's close error.
func (s *ShardServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, lis)
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closing.Load() {
				return ErrServerClosed
			}
			return err
		}
		go s.rpc.ServeConn(conn)
	}
}

// Shutdown stops the server gracefully: no new connections are accepted
// (every listener Serve registered is closed), RPCs arriving after the
// call are refused, and in-flight RPCs get up to `timeout` to finish so
// their responses are flushed to the client. Returns an error if the
// drain deadline passes with calls still running.
func (s *ShardServer) Shutdown(timeout time.Duration) error {
	// closing is flipped under the same mutex begin takes, so once this
	// critical section ends no new inflight.Add can ever happen — the
	// Wait below can never race an Add from a zero counter (the
	// documented WaitGroup misuse).
	s.mu.Lock()
	s.closing.Store(true)
	for _, lis := range s.listeners {
		lis.Close()
	}
	s.listeners = nil
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("engine: shutdown: in-flight RPCs still running after %s", timeout)
	}
}

// begin gates one RPC against shutdown; end must be deferred when it
// returns nil. The check-and-Add runs under the mutex Shutdown flips
// closing under, so every Add strictly precedes Shutdown's Wait.
func (s *ShardServer) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		// The distinct drain refusal: clients match drainingMarker in the
		// flattened rpc.ServerError and fail over instead of erroring —
		// an RPC racing Shutdown gets a clean redirect, not a torn
		// connection.
		return fmt.Errorf("engine: shard %s (shutting down)", drainingMarker)
	}
	s.inflight.Add(1)
	return nil
}

func (s *ShardServer) end() { s.inflight.Done() }

func (s *ShardServer) shard(id int) (*servedShard, error) {
	sh, ok := s.shards[id]
	if !ok {
		return nil, fmt.Errorf("engine: shard server does not serve shard %d", id)
	}
	return sh, nil
}

// ShardRPC is the net/rpc service surface of a ShardServer.
type ShardRPC struct{ s *ShardServer }

// DescribeArgs/DescribeReply: topology handshake. TotalPatients is the
// full population of the snapshot the server loads from — not just its
// own shards — so a client assembling servers can detect incomplete
// coverage.
type DescribeArgs struct{}
type DescribeReply struct {
	Shards        []ShardMeta
	TotalPatients int
}

// Describe lists the shards this server answers for.
func (r *ShardRPC) Describe(_ *DescribeArgs, reply *DescribeReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	reply.Shards = r.s.Metas()
	reply.TotalPatients = r.s.totalPatients
	return nil
}

// StatsArgs/StatsReply: per-shard planner statistics.
type StatsArgs struct{ Shard int }
type StatsReply struct{ Stats []byte }

// Stats returns one shard's marshaled exact cardinalities.
func (r *ShardRPC) Stats(args *StatsArgs, reply *StatsReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	data, err := sh.eng.Stats().MarshalBinary()
	if err != nil {
		return err
	}
	reply.Stats = data
	return nil
}

// EvalArgs/EvalReply: plan evaluation. Plan is a wire.go-encoded plan;
// Mask, when non-empty, is a container-encoded shard-local bitset
// restricting candidates, with MaskCRC its crc32c — validated server-side
// before the mask is decoded, so a corrupted mask is a loud error, never
// a silently wrong cohort.
type EvalArgs struct {
	Shard   int
	Plan    []byte
	Mask    []byte
	MaskCRC uint32
}
type EvalReply struct{ Bits []byte }

// Eval decodes the plan, re-optimizes it against the shard's own
// statistics and executes it over the shard's engine, returning matches
// in shard-local ordinal space. A shipped candidate mask is validated
// before any evaluation work and fed through the engine's masked path,
// so the server exploits it to skip non-candidates (the ShardBackend
// contract) instead of paying for the full shard and intersecting after.
func (r *ShardRPC) Eval(args *EvalArgs, reply *EvalReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	var mask *store.Bitset
	if len(args.Mask) > 0 {
		if err := checkMaskCRC(args.Mask, args.MaskCRC); err != nil {
			return err
		}
		mask = new(store.Bitset)
		if err := mask.UnmarshalBinary(args.Mask); err != nil {
			return err
		}
		if mask.Len() != sh.meta.Patients {
			return fmt.Errorf("engine: mask covers %d patients, shard has %d", mask.Len(), sh.meta.Patients)
		}
	}
	p, err := DecodePlan(args.Plan)
	if err != nil {
		return err
	}
	t := sh.eng.topoNow()
	p = sh.eng.optimize(t, p)
	var bits *store.Bitset
	if mask != nil {
		bits, err = sh.eng.evalMasked(context.Background(), t, p, mask)
	} else {
		bits, err = sh.eng.ExecutePlan(p)
	}
	if err != nil {
		return err
	}
	data, err := bits.MarshalBinary()
	if err != nil {
		return err
	}
	reply.Bits = data
	return nil
}

// IDsArgs/IDsReply: ordinal → patient ID resolution.
type IDsArgs struct {
	Shard int
	Bits  []byte
}
type IDsReply struct{ IDs []model.PatientID }

// IDs resolves a shard-local bitset to patient IDs in ordinal order.
func (r *ShardRPC) IDs(args *IDsArgs, reply *IDsReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	var bits store.Bitset
	if err := bits.UnmarshalBinary(args.Bits); err != nil {
		return err
	}
	if bits.Len() != sh.meta.Patients {
		return fmt.Errorf("engine: bitset covers %d patients, shard has %d", bits.Len(), sh.meta.Patients)
	}
	reply.IDs = sh.eng.Store().IDsOf(&bits)
	return nil
}

// FetchArgs/FetchReply: history materialization. Ordinals are strictly
// increasing shard-local positions; the reply carries the histories in
// the snapshot segment codec (store.EncodeHistories) with a crc32c, so
// the client's defensive decoder validates structure and integrity
// before a single history object is built.
type FetchArgs struct {
	Shard    int
	Ordinals []int
}
type FetchReply struct {
	Histories []byte
	Checksum  uint32
}

// Fetch materializes the histories at the given shard-local ordinals —
// the wire behind timelines and details-on-demand on a connected
// workbench. Ordinals are validated against the shard bounds before any
// encoding work.
func (r *ShardRPC) Fetch(args *FetchArgs, reply *FetchReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	if err := validateOrdinals(args.Ordinals, sh.meta.Patients); err != nil {
		return err
	}
	col := sh.eng.Store().Collection()
	hs := make([]*model.History, len(args.Ordinals))
	for i, o := range args.Ordinals {
		hs[i] = col.At(o)
	}
	reply.Histories, reply.Checksum = store.EncodeHistories(hs)
	return nil
}

// LocateArgs/LocateReply: patient ID → shard-local ordinal resolution.
type LocateArgs struct {
	Shard int
	ID    model.PatientID
}
type LocateReply struct {
	Ordinal int
	Found   bool
}

// Locate reports whether the shard holds the patient and at which local
// ordinal; a coordinator probes every shard and fetches from the one
// that answers.
func (r *ShardRPC) Locate(args *LocateArgs, reply *LocateReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	reply.Ordinal, reply.Found = sh.eng.Store().Ordinal(args.ID)
	return nil
}

// IndicatorsArgs/IndicatorsReply: server-side indicator aggregation.
// Mask, when non-empty, is a shard-local cohort bitset; the reply is the
// shard's mergeable integral tally, a few dozen bytes whatever the
// cohort size — the aggregate that replaces shipping every history.
type IndicatorsArgs struct {
	Shard  int
	Mask   []byte
	Window model.Period
}
type IndicatorsReply struct {
	Counts stats.IndicatorCounts
}

// Indicators tallies the utilization indicators over the shard's slice
// of the cohort.
func (r *ShardRPC) Indicators(args *IndicatorsArgs, reply *IndicatorsReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	var mask *store.Bitset
	if len(args.Mask) > 0 {
		mask = new(store.Bitset)
		if err := mask.UnmarshalBinary(args.Mask); err != nil {
			return err
		}
	}
	col := sh.eng.Store().Collection()
	counts, err := tallyIndicators(col.At, col.Len(), mask, args.Window)
	if err != nil {
		return err
	}
	reply.Counts = counts
	return nil
}

// ProfileArgs/ProfileReply: server-side cohort-characteristics
// aggregation. Mask, when non-empty, is a container-encoded shard-local
// cohort bitset with its crc32c; the reply is the shard's mergeable
// dimension tally — fixed size whatever the cohort, so compare-cohorts
// never ships a history.
type ProfileArgs struct {
	Shard   int
	Mask    []byte
	MaskCRC uint32
	Window  model.Period
}
type ProfileReply struct {
	Profile stats.CohortProfile
}

// Profile tallies the cohort characteristics over the shard's slice of
// the cohort.
func (r *ShardRPC) Profile(args *ProfileArgs, reply *ProfileReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	var mask *store.Bitset
	if len(args.Mask) > 0 {
		if err := checkMaskCRC(args.Mask, args.MaskCRC); err != nil {
			return err
		}
		mask = new(store.Bitset)
		if err := mask.UnmarshalBinary(args.Mask); err != nil {
			return err
		}
	}
	col := sh.eng.Store().Collection()
	prof, err := tallyProfile(col.At, col.Len(), mask, args.Window)
	if err != nil {
		return err
	}
	reply.Profile = prof
	return nil
}

// AnalyzeRPCArgs/AnalyzeRPCReply: the generic map-reduce RPC. Kind names
// a registered analyzer, Params its gob-encoded parameters (validated
// server-side before any map work), and Mask, when non-empty, is the
// container-encoded shard-local cohort mask with its crc32c — the same
// push-down discipline Eval and Profile use. The reply is the shard's
// gob-encoded mergeable partial: integer tallies whose size depends on
// the code vocabulary, never on the cohort, so the map step ships no
// history to the coordinator.
type AnalyzeRPCArgs struct {
	Shard   int
	Kind    string
	Params  []byte
	Mask    []byte
	MaskCRC uint32
}
type AnalyzeRPCReply struct {
	Partial []byte
}

// Analyze runs the registered map step over the shard's slice of the
// cohort. A hostile request — unknown kind, truncated params, corrupt
// mask — is refused loudly before any per-history work.
func (r *ShardRPC) Analyze(args *AnalyzeRPCArgs, reply *AnalyzeRPCReply) error {
	if err := r.s.begin(); err != nil {
		return err
	}
	defer r.s.end()
	sh, err := r.s.shard(args.Shard)
	if err != nil {
		return err
	}
	var mask *store.Bitset
	if len(args.Mask) > 0 {
		if err := checkMaskCRC(args.Mask, args.MaskCRC); err != nil {
			return err
		}
		mask = new(store.Bitset)
		if err := mask.UnmarshalBinary(args.Mask); err != nil {
			return err
		}
	}
	col := sh.eng.Store().Collection()
	part, err := tallyAnalyze(col.At, col.Len(), AnalyzeArgs{Kind: args.Kind, Params: args.Params, Mask: mask})
	if err != nil {
		return err
	}
	data, err := encodeAnalyzePartial(args.Kind, part)
	if err != nil {
		return err
	}
	reply.Partial = data
	return nil
}

// RemoteOptions tunes the client side of the shard transport.
type RemoteOptions struct {
	// Timeout bounds each dial and each RPC round trip. 0 means
	// DefaultRemoteTimeout.
	Timeout time.Duration
	// Retries is how many extra attempts a transport-failed call gets
	// (each after a redial). Negative means none; 0 means
	// DefaultRemoteRetries.
	Retries int
}

// DefaultRemoteTimeout bounds one RPC round trip unless overridden.
const DefaultRemoteTimeout = 10 * time.Second

// DefaultRemoteRetries is the redial-retry budget unless overridden.
const DefaultRemoteRetries = 1

func (o RemoteOptions) timeout() time.Duration {
	if o.Timeout <= 0 {
		return DefaultRemoteTimeout
	}
	return o.Timeout
}

func (o RemoteOptions) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return DefaultRemoteRetries
	}
	return o.Retries
}

// remoteConn is one client connection to a shard server, shared by every
// RemoteBackend the server's shards map to. It lazily (re)dials and is
// safe for concurrent calls — net/rpc multiplexes by sequence number.
type remoteConn struct {
	addr string
	opts RemoteOptions

	// expect, when non-nil, is the shard table this server must
	// advertise before any RPC is allowed through. It is set for
	// connections built without a live handshake (DeferredShards):
	// every fresh dial re-runs the Describe validation DialShards
	// would have done, so a server that comes back serving a
	// different snapshot is refused, not trusted.
	expect      []ShardMeta
	expectTotal int

	mu     sync.Mutex
	client *rpc.Client
	closed bool
}

func (c *remoteConn) get(budget time.Duration) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("engine: connection to %s is closed: %w", c.addr, ErrUnavailable)
	}
	if c.client != nil {
		return c.client, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, budget)
	if err != nil {
		return nil, fmt.Errorf("engine: dial %s: %w: %w", c.addr, ErrUnavailable, err)
	}
	client := rpc.NewClient(conn)
	if c.expect != nil {
		if err := verifyIdentity(client, budget, c.addr, c.expect, c.expectTotal); err != nil {
			client.Close()
			return nil, err
		}
	}
	c.client = client
	return c.client, nil
}

// verifyIdentity performs the Describe handshake on a freshly dialed
// connection and checks the server still advertises exactly the shard
// geometry the replica set was assembled with. Mismatches are wrapped as
// ErrUnavailable on purpose: to the replica set a wrong-snapshot member
// is indistinguishable from a down one — fail over, keep probing, and
// let it rejoin only once it advertises the right data again.
func verifyIdentity(client *rpc.Client, budget time.Duration, addr string, expect []ShardMeta, total int) error {
	var reply DescribeReply
	call := client.Go(rpcServiceName+".Describe", &DescribeArgs{}, &reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case done := <-call.Done:
		if done.Error != nil {
			return fmt.Errorf("engine: describe %s: %w: %w", addr, ErrUnavailable, done.Error)
		}
	case <-timer.C:
		return fmt.Errorf("engine: describe %s: %w: timeout after %s", addr, ErrUnavailable, budget)
	}
	if reply.TotalPatients != total {
		return fmt.Errorf("engine: %s: %w: identity mismatch: server population %d, expected %d (different snapshot?)",
			addr, ErrUnavailable, reply.TotalPatients, total)
	}
	byShard := make(map[int]ShardMeta, len(reply.Shards))
	for _, m := range reply.Shards {
		byShard[m.Shard] = m
	}
	for _, want := range expect {
		got, ok := byShard[want.Shard]
		if !ok {
			return fmt.Errorf("engine: %s: %w: identity mismatch: server no longer serves shard %d",
				addr, ErrUnavailable, want.Shard)
		}
		if got.Offset != want.Offset || got.Patients != want.Patients || got.Entries != want.Entries {
			return fmt.Errorf("engine: %s: %w: identity mismatch: shard %d advertised as offset %d, %d patients, %d entries; expected offset %d, %d patients, %d entries",
				addr, ErrUnavailable, want.Shard, got.Offset, got.Patients, got.Entries, want.Offset, want.Patients, want.Entries)
		}
	}
	return nil
}

// reset discards a client after a transport failure so the next call
// redials. Only the failed client is discarded: a concurrent call may
// already have replaced it.
func (c *remoteConn) reset(failed *rpc.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.client == failed && c.client != nil {
		c.client.Close()
		c.client = nil
	}
}

func (c *remoteConn) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.client != nil {
		err := c.client.Close()
		c.client = nil
		return err
	}
	return nil
}

// attemptBudget bounds one attempt (dial or RPC round trip): the
// per-call option, shrunk to whatever remains of the caller's context
// deadline. Returns 0 when the deadline already passed.
func (c *remoteConn) attemptBudget(ctx context.Context) time.Duration {
	budget := c.opts.timeout()
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining < budget {
			budget = remaining
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// call performs one RPC under the caller's context deadline with bounded
// redial-retry. The coordinator threads its query budget through ctx, so
// a slow replica can never pin a worker past it: each attempt is bounded
// by min(per-call timeout, remaining deadline), and an expired context
// stops the retry loop outright. Server-side errors (rpc.ServerError)
// are deterministic and returned immediately — except the drain refusal,
// which comes back as ErrDraining so replica sets fail over on it.
// Transport errors and timeouts reset the connection, are marked
// ErrUnavailable (safe to retry elsewhere: every RPC is read-only and
// idempotent), and retry up to the budget. Each attempt decodes into its
// own fresh reply value — an abandoned attempt's response may still be
// mid-decode on the old connection when the retry runs, so sharing the
// caller's reply across attempts would race (and gob's skip-zero-fields
// decoding could blend stale bytes into the retried answer). The winning
// attempt's reply is copied out once.
func (c *remoteConn) call(ctx context.Context, method string, args, reply any) error {
	var lastErr error
	out := reflect.ValueOf(reply).Elem()
	for attempt := 0; attempt <= c.opts.retries(); attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: call %s: %w: %w", c.addr, ErrUnavailable, err)
		}
		budget := c.attemptBudget(ctx)
		client, err := c.get(budget)
		if err != nil {
			lastErr = err
			continue
		}
		attemptReply := reflect.New(out.Type())
		call := client.Go(rpcServiceName+"."+method, args, attemptReply.Interface(), make(chan *rpc.Call, 1))
		timer := time.NewTimer(budget)
		select {
		case done := <-call.Done:
			timer.Stop()
			if done.Error == nil {
				out.Set(attemptReply.Elem())
				return nil
			}
			var serverErr rpc.ServerError
			if errors.As(done.Error, &serverErr) {
				if strings.Contains(string(serverErr), drainingMarker) {
					c.reset(client) // the listener is closing; force a redial next time
					return fmt.Errorf("engine: %s: %w", c.addr, ErrDraining)
				}
				return fmt.Errorf("engine: %s: %s", c.addr, serverErr)
			}
			lastErr = fmt.Errorf("engine: call %s: %w: %w", c.addr, ErrUnavailable, done.Error)
			c.reset(client)
		case <-timer.C:
			lastErr = fmt.Errorf("engine: call %s: %w: timeout after %s", c.addr, ErrUnavailable, budget)
			c.reset(client)
		case <-ctx.Done():
			timer.Stop()
			c.reset(client)
			return fmt.Errorf("engine: call %s: %w: %w", c.addr, ErrUnavailable, ctx.Err())
		}
	}
	return lastErr
}

// RemoteBackend is the client stub for one shard on one shard server.
type RemoteBackend struct {
	conn *remoteConn
	meta ShardMeta
}

// DialShards connects to a shard server and returns one backend per
// shard it serves, all sharing the connection, plus the total population
// of the snapshot the server loads from. The returned backends' metadata
// carries the server's global ordinal offsets, so they plug straight
// into NewFromBackends; the total lets a caller assembling several
// servers verify the shards cover the whole population (see
// core.Connect) rather than silently answering over a prefix of it.
//
// The advertised shard identities are validated here, at dial time: a
// server announcing duplicate shard ids, negative sizes, overlapping
// ordinal ranges or shards outside the snapshot's population is a
// misconfiguration (or a different snapshot), and the error names it now
// instead of surfacing as a confusing per-query failure later.
func DialShards(addr string, opts RemoteOptions) ([]ShardBackend, int, error) {
	conn := &remoteConn{addr: addr, opts: opts}
	var reply DescribeReply
	if err := conn.call(context.Background(), "Describe", &DescribeArgs{}, &reply); err != nil {
		conn.close() // the dial may have succeeded even though the call failed
		return nil, 0, err
	}
	if len(reply.Shards) == 0 {
		conn.close()
		return nil, 0, fmt.Errorf("engine: %s serves no shards", addr)
	}
	if err := validateShardMetas(reply.Shards, reply.TotalPatients); err != nil {
		conn.close()
		return nil, 0, fmt.Errorf("engine: %s: %w", addr, err)
	}
	backends := make([]ShardBackend, len(reply.Shards))
	for i, m := range reply.Shards {
		m.Backend = fmt.Sprintf("remote(%s)", addr)
		backends[i] = &RemoteBackend{conn: conn, meta: m}
	}
	return backends, reply.TotalPatients, nil
}

// DeferredShards builds backends for a replica-group member that is
// unreachable right now, cloning the already-validated shard table of a
// live sibling (group members serve identical shard sets by contract).
// Nothing is dialed here: the member joins its replica sets marked
// healthy, fails fast on first contact, and rejoins via health probes
// once it is back — at which point the first successful dial re-runs
// the identity validation DialShards would have done (see verifyIdentity),
// so a member resurrected with a different snapshot stays out.
func DeferredShards(addr string, opts RemoteOptions, like []ShardBackend, total int) []ShardBackend {
	expect := make([]ShardMeta, len(like))
	for i, b := range like {
		expect[i] = b.Meta()
	}
	conn := &remoteConn{addr: addr, opts: opts, expect: expect, expectTotal: total}
	out := make([]ShardBackend, len(expect))
	for i, m := range expect {
		m.Backend = fmt.Sprintf("remote(%s)", addr)
		out[i] = &RemoteBackend{conn: conn, meta: m}
	}
	return out
}

// validateShardMetas sanity-checks one server's advertised shard table
// against the snapshot total it reports.
func validateShardMetas(metas []ShardMeta, total int) error {
	if total < 0 {
		return fmt.Errorf("server reports negative population %d", total)
	}
	seen := make(map[int]bool, len(metas))
	ordered := append([]ShardMeta(nil), metas...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Offset < ordered[j].Offset })
	prevEnd, prevShard := -1, -1
	for _, m := range ordered {
		if m.Shard < 0 {
			return fmt.Errorf("server advertises negative shard id %d", m.Shard)
		}
		if seen[m.Shard] {
			return fmt.Errorf("server advertises shard %d twice", m.Shard)
		}
		seen[m.Shard] = true
		if m.Patients < 0 || m.Entries < 0 || m.Offset < 0 {
			return fmt.Errorf("server advertises shard %d with negative geometry (offset %d, %d patients, %d entries)",
				m.Shard, m.Offset, m.Patients, m.Entries)
		}
		if m.Offset+m.Patients > total {
			return fmt.Errorf("server advertises shard %d covering ordinals [%d, %d) beyond its own population of %d",
				m.Shard, m.Offset, m.Offset+m.Patients, total)
		}
		if m.Offset < prevEnd {
			return fmt.Errorf("server advertises overlapping shards %d and %d (shard %d starts at ordinal %d, before shard %d ends at %d)",
				prevShard, m.Shard, m.Shard, m.Offset, prevShard, prevEnd)
		}
		prevEnd, prevShard = m.Offset+m.Patients, m.Shard
	}
	return nil
}

// Meta implements ShardBackend.
func (b *RemoteBackend) Meta() ShardMeta { return b.meta }

// Probe implements Prober with the Describe handshake — a payload-free
// round trip the replica set's health checker can afford to send every
// interval.
func (b *RemoteBackend) Probe(ctx context.Context) error {
	var reply DescribeReply
	return b.conn.call(ctx, "Describe", &DescribeArgs{}, &reply)
}

// Stats implements ShardBackend by fetching the shard's marshaled
// cardinalities.
func (b *RemoteBackend) Stats(ctx context.Context) (*store.Stats, error) {
	var reply StatsReply
	if err := b.conn.call(ctx, "Stats", &StatsArgs{Shard: b.meta.Shard}, &reply); err != nil {
		return nil, err
	}
	st := new(store.Stats)
	if err := st.UnmarshalBinary(reply.Stats); err != nil {
		return nil, err
	}
	return st, nil
}

// EvalPlan implements ShardBackend: the plan (and candidate mask, if
// any) crosses the wire, the shard's engine evaluates, and the matches
// come back in shard-local ordinal space.
func (b *RemoteBackend) EvalPlan(ctx context.Context, p Plan, mask *store.Bitset) (*store.Bitset, error) {
	plan, err := EncodePlan(p)
	if err != nil {
		return nil, err
	}
	args := EvalArgs{Shard: b.meta.Shard, Plan: plan}
	if mask != nil {
		if args.Mask, err = mask.MarshalBinary(); err != nil {
			return nil, err
		}
		args.MaskCRC = crc32.Checksum(args.Mask, maskCRCTable)
	}
	var reply EvalReply
	if err := b.conn.call(ctx, "Eval", &args, &reply); err != nil {
		return nil, err
	}
	bits := new(store.Bitset)
	if err := bits.UnmarshalBinary(reply.Bits); err != nil {
		return nil, err
	}
	return bits, nil
}

// FetchHistories implements ShardBackend: the ordinals cross the wire,
// the histories come back in the checksummed segment codec, and the
// defensive decoder (store.DecodeHistories) holds a hostile or corrupt
// reply to an error — the count promised by the request is enforced, so
// a server cannot answer with more or fewer histories than asked.
func (b *RemoteBackend) FetchHistories(ctx context.Context, ordinals []int) ([]*model.History, error) {
	if err := validateOrdinals(ordinals, b.meta.Patients); err != nil {
		return nil, err
	}
	var reply FetchReply
	if err := b.conn.call(ctx, "Fetch", &FetchArgs{Shard: b.meta.Shard, Ordinals: ordinals}, &reply); err != nil {
		return nil, err
	}
	hs, err := store.DecodeHistories(reply.Histories, reply.Checksum, len(ordinals))
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", b.conn.addr, err)
	}
	return hs, nil
}

// LocateID implements ShardBackend.
func (b *RemoteBackend) LocateID(ctx context.Context, id model.PatientID) (int, bool, error) {
	var reply LocateReply
	if err := b.conn.call(ctx, "Locate", &LocateArgs{Shard: b.meta.Shard, ID: id}, &reply); err != nil {
		return 0, false, err
	}
	if reply.Found && (reply.Ordinal < 0 || reply.Ordinal >= b.meta.Patients) {
		return 0, false, fmt.Errorf("engine: %s: located ordinal %d outside shard of %d patients",
			b.conn.addr, reply.Ordinal, b.meta.Patients)
	}
	return reply.Ordinal, reply.Found, nil
}

// Indicators implements ShardBackend: the cohort mask crosses the wire,
// a fixed-size integral tally comes back — constant reply size whatever
// the cohort.
func (b *RemoteBackend) Indicators(ctx context.Context, mask *store.Bitset, window model.Period) (stats.IndicatorCounts, error) {
	args := IndicatorsArgs{Shard: b.meta.Shard, Window: window}
	if mask != nil {
		if mask.Len() != b.meta.Patients {
			return stats.IndicatorCounts{}, fmt.Errorf("engine: indicator mask covers %d patients, shard has %d",
				mask.Len(), b.meta.Patients)
		}
		data, err := mask.MarshalBinary()
		if err != nil {
			return stats.IndicatorCounts{}, err
		}
		args.Mask = data
	}
	var reply IndicatorsReply
	if err := b.conn.call(ctx, "Indicators", &args, &reply); err != nil {
		return stats.IndicatorCounts{}, err
	}
	if got := reply.Counts.Patients; got < 0 || got > b.meta.Patients {
		return stats.IndicatorCounts{}, fmt.Errorf("engine: %s: indicator tally covers %d patients, shard has %d",
			b.conn.addr, got, b.meta.Patients)
	}
	return reply.Counts, nil
}

// Profile implements ShardBackend: the cohort mask crosses the wire
// crc-checked, a fixed-size dimension tally comes back.
func (b *RemoteBackend) Profile(ctx context.Context, mask *store.Bitset, window model.Period) (stats.CohortProfile, error) {
	args := ProfileArgs{Shard: b.meta.Shard, Window: window}
	if mask != nil {
		if mask.Len() != b.meta.Patients {
			return stats.CohortProfile{}, fmt.Errorf("engine: profile mask covers %d patients, shard has %d",
				mask.Len(), b.meta.Patients)
		}
		data, err := mask.MarshalBinary()
		if err != nil {
			return stats.CohortProfile{}, err
		}
		args.Mask = data
		args.MaskCRC = crc32.Checksum(data, maskCRCTable)
	}
	var reply ProfileReply
	if err := b.conn.call(ctx, "Profile", &args, &reply); err != nil {
		return stats.CohortProfile{}, err
	}
	if got := reply.Profile.Patients; got < 0 || got > b.meta.Patients {
		return stats.CohortProfile{}, fmt.Errorf("engine: %s: profile tally covers %d patients, shard has %d",
			b.conn.addr, got, b.meta.Patients)
	}
	return reply.Profile, nil
}

// Analyze implements ShardBackend: the kind, parameters and crc-checked
// cohort mask cross the wire, the shard runs the map step server-side,
// and a validated mergeable partial comes back — the reply is bounded by
// the code vocabulary, never the cohort size.
func (b *RemoteBackend) Analyze(ctx context.Context, a AnalyzeArgs) (Partial, error) {
	args := AnalyzeRPCArgs{Shard: b.meta.Shard, Kind: a.Kind, Params: a.Params}
	if a.Mask != nil {
		if a.Mask.Len() != b.meta.Patients {
			return nil, fmt.Errorf("engine: analyze mask covers %d patients, shard has %d",
				a.Mask.Len(), b.meta.Patients)
		}
		data, err := a.Mask.MarshalBinary()
		if err != nil {
			return nil, err
		}
		args.Mask = data
		args.MaskCRC = crc32.Checksum(data, maskCRCTable)
	}
	var reply AnalyzeRPCReply
	if err := b.conn.call(ctx, "Analyze", &args, &reply); err != nil {
		return nil, err
	}
	part, err := decodeAnalyzePartial(a.Kind, reply.Partial)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", b.conn.addr, err)
	}
	if got := part.HistoryCount(); got < 0 || got > b.meta.Patients {
		return nil, fmt.Errorf("engine: %s: analyze partial covers %d histories, shard has %d",
			b.conn.addr, got, b.meta.Patients)
	}
	return part, nil
}

// IDsOf implements ShardBackend.
func (b *RemoteBackend) IDsOf(ctx context.Context, bits *store.Bitset) ([]model.PatientID, error) {
	data, err := bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var reply IDsReply
	if err := b.conn.call(ctx, "IDs", &IDsArgs{Shard: b.meta.Shard, Bits: data}, &reply); err != nil {
		return nil, err
	}
	return reply.IDs, nil
}

// Close implements ShardBackend. The connection is shared by every
// backend from the same DialShards call; the first Close closes it and
// the rest are no-ops.
func (b *RemoteBackend) Close() error { return b.conn.close() }
